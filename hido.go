// Package hido — High-dimensional Outlier Detection — implements
// outlier detection by sparse subspace projections, reproducing
// Aggarwal & Yu, "Outlier Detection for High Dimensional Data"
// (SIGMOD 2001), together with the distance-based baselines the paper
// evaluates against.
//
// The package is a façade over the implementation packages; it
// re-exports everything a downstream user needs:
//
//	ds, _ := hido.ReadCSVFile("data.csv", hido.ReadCSVOptions{Header: true, LabelColumn: -1})
//	det := hido.NewDetector(ds, 8)
//	advice := det.Advise(-3)                     // §2.4 parameter advisor
//	res, _ := det.Evolutionary(hido.EvoOptions{  // Figure 3's genetic search
//		K: advice.K, M: 20, Seed: 1,
//	})
//	for _, p := range res.Projections {          // interpretable findings
//		fmt.Println(p.Describe(det))
//	}
//	fmt.Println(res.Outliers)                    // covered records (§2.3)
//
// A record is an outlier when it lies in a k-dimensional grid cube
// whose record count is abnormally far below the count expected under
// attribute independence — the sparsity coefficient of Equation 1.
// Cubes are discretized with equi-depth ranges (φ per attribute) so
// locality adapts to density, and the exponential space of cubes is
// searched either exhaustively (BruteForce, Figure 2) or by a genetic
// algorithm with a problem-specific optimized crossover (Evolutionary,
// Figures 3-6).
package hido

import (
	"hido/internal/baseline/dbout"
	"hido/internal/baseline/dod"
	"hido/internal/baseline/knnout"
	"hido/internal/baseline/lof"
	"hido/internal/baseline/neighbors"
	"hido/internal/core"
	"hido/internal/cube"
	"hido/internal/dataset"
	"hido/internal/discretize"
	"hido/internal/ensemble"
	"hido/internal/evo"
	"hido/internal/stats"
	"hido/internal/stream"
)

// Core detector API (the paper's contribution).
type (
	// Detector binds a data set to its grid and counting index.
	Detector = core.Detector
	// Result is a search outcome: projections, outliers, telemetry.
	Result = core.Result
	// Projection is one mined sparse cube.
	Projection = core.Projection
	// BruteForceOptions configures Figure 2's exhaustive search.
	BruteForceOptions = core.BruteForceOptions
	// EvoOptions configures Figure 3's evolutionary search.
	EvoOptions = core.EvoOptions
	// CrossoverKind selects the recombination operator.
	CrossoverKind = core.CrossoverKind
	// Advice is the §2.4 parameter recommendation.
	Advice = core.Advice
	// Cube is a subspace descriptor (0 = don't care, 1..φ = range).
	Cube = cube.Cube
	// IslandOptions configures the island-model evolutionary search.
	IslandOptions = core.IslandOptions
	// Explanation is a minimal sparse sub-cube explaining one record.
	Explanation = core.Explanation
	// SampledScoreOptions configures subspace-sampled scoring.
	SampledScoreOptions = core.SampledScoreOptions
	// SampledScores holds per-record continuous outlier scores.
	SampledScores = core.SampledScores
	// Monitor scores a stream of records against an offline-mined
	// model (see the intrusion example).
	Monitor = stream.Monitor
	// MonitorOptions configures stream-model fitting.
	MonitorOptions = stream.Options
	// Alert is one scored record's outcome.
	Alert = stream.Alert
)

// NewMonitor fits a streaming model on a reference window.
func NewMonitor(reference *Dataset, opt MonitorOptions) (*Monitor, error) {
	return stream.NewMonitor(reference, opt)
}

// LoadMonitor reconstructs a persisted streaming model (see
// Monitor.Save); the loaded monitor scores without the reference data.
var LoadMonitor = stream.Load

// Dataset layer.
type (
	// Dataset is the N×D table consumed by every detector.
	Dataset = dataset.Dataset
	// ReadCSVOptions configures CSV ingestion.
	ReadCSVOptions = dataset.ReadCSVOptions
	// ImputeStrategy selects how missing values are filled for the
	// full-dimensional baselines.
	ImputeStrategy = dataset.ImputeStrategy
)

// Subspace ensemble mode.
type (
	// EnsembleOptions configures a feature-bagged search ensemble.
	EnsembleOptions = ensemble.Options
	// Ensemble holds the fitted members and their combined scores.
	Ensemble = ensemble.Result
	// EnsembleMember is one bagged search and its evidence.
	EnsembleMember = ensemble.Member
	// Combiner selects how per-member evidence is aggregated.
	Combiner = ensemble.Combiner
	// EnsembleAlgo selects the per-member search algorithm.
	EnsembleAlgo = ensemble.Algo
)

// Ensemble combiners and member algorithms.
const (
	// RankCombiner averages ECDF positions across members (default).
	RankCombiner = ensemble.RankCombiner
	// ZScoreCombiner averages standardized evidence.
	ZScoreCombiner = ensemble.ZScoreCombiner
	// MaxCombiner keeps the strongest single-member evidence.
	MaxCombiner = ensemble.MaxCombiner
	// EvoAlgo and BruteAlgo pick the per-member search.
	EvoAlgo   = ensemble.EvoAlgo
	BruteAlgo = ensemble.BruteAlgo
)

// FitEnsemble runs an ensemble of independent searches over sampled
// feature bags and aggregates per-record sparsity evidence with the
// configured combiner. Combined scores are bit-identical per seed at
// any worker count.
func FitEnsemble(det *Detector, opt EnsembleOptions) (*Ensemble, error) {
	return ensemble.Fit(det, opt)
}

// Baselines.
type (
	// KNNOutlierOptions configures the Ramaswamy et al. [25] baseline.
	KNNOutlierOptions = knnout.Options
	// KNNOutlier is one kNN-distance outlier.
	KNNOutlier = knnout.Outlier
	// DBOutlierOptions configures the Knorr & Ng [22] baseline.
	DBOutlierOptions = dbout.Options
	// LOFOptions configures the Breunig et al. [10] baseline.
	LOFOptions = lof.Options
	// LOFResult holds per-point LOF scores.
	LOFResult = lof.Result
	// Metric selects the distance function for the baselines.
	Metric = neighbors.Metric
)

// Re-exported constants.
const (
	// OptimizedCrossover is the paper's recombination operator.
	OptimizedCrossover = core.OptimizedCrossover
	// TwoPointCrossover is the unbiased baseline operator.
	TwoPointCrossover = core.TwoPointCrossover
	// DontCare marks an unconstrained cube position ('*').
	DontCare = cube.DontCare
	// Euclidean, Manhattan and Chebyshev select baseline metrics.
	Euclidean = neighbors.Euclidean
	Manhattan = neighbors.Manhattan
	Chebyshev = neighbors.Chebyshev
	// ImputeMean, ImputeMedian and ImputeZero select imputation.
	ImputeMean   = dataset.ImputeMean
	ImputeMedian = dataset.ImputeMedian
	ImputeZero   = dataset.ImputeZero
)

// NewDetector discretizes the data set into phi equi-depth ranges per
// attribute and builds the counting index.
func NewDetector(ds *Dataset, phi int) *Detector { return core.NewDetector(ds, phi) }

// NewDetectorEquiWidth is NewDetector with equi-width ranges (the
// ablation alternative; the paper argues for equi-depth).
func NewDetectorEquiWidth(ds *Dataset, phi int) *Detector {
	return core.NewDetectorMethod(ds, phi, discretize.EquiWidth)
}

// Advise computes the §2.4 parameter recommendation for N records, a
// grid resolution phi, and a negative target sparsity coefficient s.
func Advise(n, phi int, s float64) Advice { return core.Advise(n, phi, s) }

// Sparsity evaluates Equation 1: the sparsity coefficient of a
// k-dimensional cube holding n of total records under resolution phi.
func Sparsity(n, total, k, phi int) float64 { return stats.Sparsity(n, total, k, phi) }

// KStar returns §2.4's advised projection dimensionality.
func KStar(n, phi int, s float64) int { return stats.KStar(n, phi, s) }

// Significance returns the one-sided probability, under the paper's
// normal approximation, of a cube at the given sparsity coefficient.
func Significance(s float64) float64 { return stats.Significance(s) }

// ExactSignificance returns the exact binomial tail probability of a
// k-dimensional cube holding n of total points — the honest version
// of Significance where the normal approximation is crude (near-empty
// cubes with small expected counts).
func ExactSignificance(n, total, k, phi int) float64 {
	return stats.ExactSignificance(n, total, k, phi)
}

// DBFractionOutliers applies the original fraction form of the
// Knorr-Ng definition: at least a fraction p of the data set lies
// beyond distance lambda.
func DBFractionOutliers(ds *Dataset, p, lambda float64, metric Metric) ([]int, error) {
	return dbout.FractionOutliers(ds, p, lambda, metric)
}

// ReadCSV parses a CSV stream into a Dataset; see dataset.ReadCSV.
var ReadCSV = dataset.ReadCSV

// ReadCSVFile parses a CSV file into a Dataset.
var ReadCSVFile = dataset.ReadCSVFile

// NewDataset returns an empty dataset with the given column names.
func NewDataset(names []string, rowCap int) *Dataset { return dataset.New(names, rowCap) }

// DatasetFromRows builds a dataset from rows.
func DatasetFromRows(names []string, rows [][]float64) *Dataset {
	return dataset.FromRows(names, rows)
}

// KNNOutliers runs the Ramaswamy et al. top-n kNN-distance baseline.
func KNNOutliers(ds *Dataset, opt KNNOutlierOptions) ([]KNNOutlier, error) {
	return knnout.TopN(ds, opt)
}

// KNNOutlierPartitionOptions configures the partition-based variant.
type KNNOutlierPartitionOptions = knnout.PartitionOptions

// KNNOutliersPartitioned runs the partition-pruned variant of the
// Ramaswamy et al. algorithm (identical output, whole partitions
// pruned through MBR distance bounds before exact scoring).
func KNNOutliersPartitioned(ds *Dataset, opt KNNOutlierPartitionOptions) ([]KNNOutlier, error) {
	return knnout.PartitionTopN(ds, opt)
}

// DBOutliers runs the Knorr-Ng DB(k, λ) nested-loop baseline.
func DBOutliers(ds *Dataset, opt DBOutlierOptions) ([]int, error) {
	return dbout.NestedLoop(ds, opt)
}

// DBOutliersCellBased runs the Knorr-Ng cell-based algorithm
// (low-dimensional data, Euclidean metric only).
func DBOutliersCellBased(ds *Dataset, opt DBOutlierOptions) ([]int, error) {
	return dbout.CellBased(ds, opt)
}

// LOF computes Local Outlier Factor scores.
func LOF(ds *Dataset, opt LOFOptions) (*LOFResult, error) { return lof.Compute(ds, opt) }

// DODOptions configures the distance-of-distances baseline.
type DODOptions = dod.Options

// DODScores computes distance-of-distances outlier scores: each
// record's profile is its distance vector to every other record, and
// the score is the kNN distance between profiles. A full-dimensional
// comparator; requires complete (imputed) data.
func DODScores(ds *Dataset, opt DODOptions) ([]float64, error) { return dod.Scores(ds, opt) }

// ParseCube parses the paper's string notation ("*3*9") into a Cube.
func ParseCube(s string) (Cube, error) { return cube.Parse(s) }

// Selection strategies for EvoOptions.Selection.
const (
	RankRoulette = evo.RankRoulette
	Tournament   = evo.Tournament
	Uniform      = evo.Uniform
)
