package hido_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"hido"
	"hido/internal/synth"
)

// TestIntegrationCSVToOutliers walks the full offline pipeline through
// the public façade: generate → write CSV → read CSV → detect →
// explain → compare against every baseline.
func TestIntegrationCSVToOutliers(t *testing.T) {
	ds, err := synth.Generate(synth.Config{
		Name: "integration", N: 600, D: 10,
		Groups:   []synth.Group{{Dims: []int{0, 1, 2}, Noise: 0.03}},
		Outliers: 4,
	}, 99)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := ds.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := hido.ReadCSVFile(path, hido.ReadCSVOptions{Header: true, LabelColumn: 10})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != ds.N() || loaded.D() != 10 {
		t.Fatalf("reloaded shape %dx%d", loaded.N(), loaded.D())
	}

	det := hido.NewDetector(loaded, 5)
	advice := det.Advise(-3)
	res, err := det.EvolutionaryRestarts(hido.EvoOptions{
		K: advice.K, M: 25, Seed: 1,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := synth.OutlierIndices(ds)
	if rec := synth.Recall(res.Outliers, truth); rec < 0.75 {
		t.Errorf("integration recall = %.0f%%", rec*100)
	}
	for _, i := range truth {
		if !res.OutlierSet.Test(i) {
			continue
		}
		if exps := res.MinimalExplanations(det, i, -2.5); len(exps) == 0 {
			t.Errorf("planted record %d has no explanation", i)
		}
	}

	// Baselines run on the same loaded data.
	std := loaded.ImputeMissing(hido.ImputeMean).Standardize()
	if _, err := hido.KNNOutliers(std, hido.KNNOutlierOptions{K: 3, N: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := hido.LOF(std, hido.LOFOptions{K: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := hido.DBOutliers(std, hido.DBOutlierOptions{K: 2, Lambda: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationModelLifecycle exercises fit → save → load → score
// through the façade, with missing values in the scored stream.
func TestIntegrationModelLifecycle(t *testing.T) {
	ref, err := synth.Generate(synth.Config{
		Name: "ref", N: 700, D: 8,
		Groups: []synth.Group{{Dims: []int{0, 1}, Noise: 0.03}},
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := hido.NewMonitor(ref, hido.MonitorOptions{Phi: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mon.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := hido.LoadMonitor(&buf)
	if err != nil {
		t.Fatal(err)
	}

	contrarian := []float64{0.02, 0.98, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	a := loaded.Score(contrarian)
	if !a.Flagged() {
		t.Error("loaded monitor missed the contrarian")
	}
	if len(loaded.Explain(a)) == 0 {
		t.Error("no explanation from loaded monitor")
	}
}

// TestIntegrationSampledScoresAgainstEval ties the continuous scorer
// to the evaluation metrics through the façade types.
func TestIntegrationSampledScoresAgainstEval(t *testing.T) {
	ds, err := synth.Generate(synth.Config{
		Name: "scored", N: 500, D: 12,
		Groups:   []synth.Group{{Dims: []int{0, 1, 2}, Noise: 0.03}},
		Outliers: 5,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	det := hido.NewDetector(ds, 5)
	sc, err := det.SampleScores(hido.SampledScoreOptions{K: 2, Samples: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	truthSet := map[int]bool{}
	for _, i := range synth.OutlierIndices(ds) {
		truthSet[i] = true
	}
	// Planted records must rank near the top by tail score.
	worse := 0
	for _, i := range synth.OutlierIndices(ds) {
		for j := 0; j < ds.N(); j++ {
			if !truthSet[j] && sc.TailMean[j] < sc.TailMean[i] {
				worse++
			}
		}
	}
	if worse > ds.N()/2 {
		t.Errorf("planted records poorly ranked (%d inversions)", worse)
	}
}
