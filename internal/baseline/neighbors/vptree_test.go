package neighbors

import (
	"math"
	"testing"
	"testing/quick"

	"hido/internal/xrand"
)

func TestVPTreeMatchesLinearScan(t *testing.T) {
	for _, m := range []Metric{Euclidean, Manhattan} {
		ds := randomDS(200, 4, 1)
		tree := NewVPTree(ds, m, 7)
		scan := NewSearch(ds, m)
		for _, i := range []int{0, 50, 199} {
			for _, k := range []int{1, 5, 15} {
				got := tree.KNN(i, k)
				want := scan.KNN(i, k)
				if len(got) != len(want) {
					t.Fatalf("%v i=%d k=%d: lengths %d vs %d", m, i, k, len(got), len(want))
				}
				for x := range got {
					if math.Abs(got[x].Dist-want[x].Dist) > 1e-9 {
						t.Errorf("%v i=%d k=%d pos %d: %v vs %v", m, i, k, x, got[x], want[x])
					}
				}
			}
		}
	}
}

func TestVPTreePrunesInLowDimensions(t *testing.T) {
	ds := randomDS(2000, 2, 2)
	tree := NewVPTree(ds, Euclidean, 3)
	total := 0.0
	for i := 0; i < 50; i++ {
		tree.KNN(i, 3)
		total += tree.PruningRate()
	}
	if avg := total / 50; avg < 0.5 {
		t.Errorf("2-d pruning rate %.2f, want > 0.5", avg)
	}
}

func TestVPTreePruningCollapsesInHighDimensions(t *testing.T) {
	// The §1 phenomenon: with concentrated distances the triangle
	// inequality prunes almost nothing.
	lowDS := randomDS(1000, 2, 4)
	highDS := randomDS(1000, 64, 4)
	low := NewVPTree(lowDS, Euclidean, 5)
	high := NewVPTree(highDS, Euclidean, 5)
	lowRate, highRate := 0.0, 0.0
	for i := 0; i < 30; i++ {
		low.KNN(i, 5)
		lowRate += low.PruningRate()
		high.KNN(i, 5)
		highRate += high.PruningRate()
	}
	lowRate /= 30
	highRate /= 30
	if highRate >= lowRate {
		t.Errorf("pruning did not degrade with dimensionality: low-d %.2f, high-d %.2f",
			lowRate, highRate)
	}
	if highRate > 0.3 {
		t.Errorf("high-d pruning rate %.2f; expected near-total collapse", highRate)
	}
}

func TestVPTreePanics(t *testing.T) {
	ds := randomDS(10, 2, 6)
	tree := NewVPTree(ds, Euclidean, 1)
	for _, k := range []int{0, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KNN(k=%d) did not panic", k)
				}
			}()
			tree.KNN(0, k)
		}()
	}
	bad := ds.Clone()
	bad.SetAt(0, 0, math.NaN())
	defer func() {
		if recover() == nil {
			t.Error("NaN dataset did not panic")
		}
	}()
	NewVPTree(bad, Euclidean, 1)
}

// Property: tree results equal scan results on random data and seeds.
func TestQuickVPTreeOracle(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		ds := randomDS(100, 3, seed)
		k := int(kRaw)%10 + 1
		tree := NewVPTree(ds, Euclidean, seed^0xff)
		scan := NewSearch(ds, Euclidean)
		r := xrand.New(seed)
		i := r.Intn(100)
		got := tree.KNN(i, k)
		want := scan.KNN(i, k)
		for x := range got {
			if math.Abs(got[x].Dist-want[x].Dist) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkVPTreeKNNLowDim(b *testing.B) {
	ds := randomDS(5000, 2, 1)
	tree := NewVPTree(ds, Euclidean, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tree.KNN(i%5000, 5)
	}
}

func BenchmarkVPTreeKNNHighDim(b *testing.B) {
	ds := randomDS(5000, 64, 1)
	tree := NewVPTree(ds, Euclidean, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tree.KNN(i%5000, 5)
	}
}
