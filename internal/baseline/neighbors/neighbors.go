// Package neighbors provides the full-dimensional distance machinery
// shared by the baseline outlier detectors the paper compares against:
// the kNN-distance method of Ramaswamy et al. [25], the DB(k, λ)
// outliers of Knorr & Ng [22], and LOF [10].
//
// All of these operate on complete vectors — they are exactly the
// methods whose full-dimensional distances the paper argues lose
// meaning in high dimensionality — so inputs containing NaN must be
// imputed first (dataset.ImputeMissing); distance computations panic
// on NaN to surface pipeline mistakes early.
package neighbors

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"hido/internal/dataset"
)

// Metric is a distance function over equal-length vectors.
type Metric int

const (
	// Euclidean is the L2 norm, the paper's default for the baselines.
	Euclidean Metric = iota
	// Manhattan is the L1 norm.
	Manhattan
	// Chebyshev is the L∞ norm.
	Chebyshev
)

func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "euclidean"
	case Manhattan:
		return "manhattan"
	case Chebyshev:
		return "chebyshev"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Dist returns the distance between two vectors under the metric. It
// panics on length mismatch or NaN input.
func Dist(m Metric, a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("neighbors: vector lengths %d vs %d", len(a), len(b)))
	}
	switch m {
	case Euclidean:
		return math.Sqrt(SqDist(a, b))
	case Manhattan:
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			if math.IsNaN(d) {
				panic("neighbors: NaN in distance computation (impute missing values first)")
			}
			s += math.Abs(d)
		}
		return s
	case Chebyshev:
		s := 0.0
		for i := range a {
			d := math.Abs(a[i] - b[i])
			if math.IsNaN(d) {
				panic("neighbors: NaN in distance computation (impute missing values first)")
			}
			if d > s {
				s = d
			}
		}
		return s
	default:
		panic("neighbors: unknown metric")
	}
}

// SqDist returns the squared Euclidean distance — the monotone
// surrogate used in all pruning loops, saving the sqrt.
func SqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		if math.IsNaN(d) {
			panic("neighbors: NaN in distance computation (impute missing values first)")
		}
		s += d * d
	}
	return s
}

// Neighbor is one (index, distance) result.
type Neighbor struct {
	Index int
	Dist  float64
}

// maxHeap keeps the k closest candidates; the root is the farthest of
// them, so a closer candidate evicts it in O(log k).
type maxHeap []Neighbor

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Search answers exact k-nearest-neighbor queries over a dataset by
// linear scan with a bounded max-heap. The scan is the honest
// comparator for the paper's baselines: spatial indexes degrade to
// linear behaviour at the dimensionalities under study.
type Search struct {
	ds     *dataset.Dataset
	metric Metric
}

// NewSearch builds a searcher over the dataset. The dataset must be
// free of missing values.
func NewSearch(ds *dataset.Dataset, metric Metric) *Search {
	if ds.MissingCount() > 0 {
		panic("neighbors: dataset has missing values; impute first")
	}
	return &Search{ds: ds, metric: metric}
}

// KNN returns the k nearest neighbors of record i (excluding i
// itself), ordered by increasing distance. It panics if k is out of
// range.
func (s *Search) KNN(i, k int) []Neighbor {
	n := s.ds.N()
	if k < 1 || k > n-1 {
		panic(fmt.Sprintf("neighbors: k=%d outside [1,%d]", k, n-1))
	}
	return s.KNNVector(s.ds.RowView(i), k, i)
}

// KNNVector returns the k nearest records to an arbitrary query
// vector, excluding the record index skip (pass -1 to exclude none).
func (s *Search) KNNVector(q []float64, k, skip int) []Neighbor {
	h := make(maxHeap, 0, k+1)
	sq := s.metric == Euclidean
	for j := 0; j < s.ds.N(); j++ {
		if j == skip {
			continue
		}
		var d float64
		if sq {
			d = SqDist(q, s.ds.RowView(j))
		} else {
			d = Dist(s.metric, q, s.ds.RowView(j))
		}
		if len(h) < k {
			heap.Push(&h, Neighbor{j, d})
		} else if d < h[0].Dist {
			h[0] = Neighbor{j, d}
			heap.Fix(&h, 0)
		}
	}
	out := make([]Neighbor, len(h))
	copy(out, h)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Index < out[b].Index
	})
	if sq {
		for i := range out {
			out[i].Dist = math.Sqrt(out[i].Dist)
		}
	}
	return out
}

// KDist returns the distance from record i to its kth nearest
// neighbor.
func (s *Search) KDist(i, k int) float64 {
	nn := s.KNN(i, k)
	return nn[len(nn)-1].Dist
}

// RangeCount counts the records (excluding i) within distance radius
// of record i, stopping early once the count exceeds stopAfter
// (pass a negative stopAfter to count exactly). Early termination is
// the core trick of the Knorr-Ng nested-loop algorithm: a point is
// declared a non-outlier as soon as k+1 neighbors are seen.
func (s *Search) RangeCount(i int, radius float64, stopAfter int) int {
	q := s.ds.RowView(i)
	sqRad := radius * radius
	useSq := s.metric == Euclidean
	count := 0
	for j := 0; j < s.ds.N(); j++ {
		if j == i {
			continue
		}
		var within bool
		if useSq {
			within = SqDist(q, s.ds.RowView(j)) <= sqRad
		} else {
			within = Dist(s.metric, q, s.ds.RowView(j)) <= radius
		}
		if within {
			count++
			if stopAfter >= 0 && count > stopAfter {
				return count
			}
		}
	}
	return count
}

// AllKDist returns every record's kth-NN distance. The scan for
// record i abandons early when its running kth-NN upper bound cannot
// influence callers that only need the top-n largest values; that
// pruning lives in the knnout package — here the values are exact.
func (s *Search) AllKDist(k int) []float64 {
	out := make([]float64, s.ds.N())
	for i := range out {
		out[i] = s.KDist(i, k)
	}
	return out
}

// AllKDistParallel is AllKDist computed on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). The searcher is read-only, so
// records partition freely across goroutines and each output slot is
// written exactly once; the result is identical to AllKDist.
func (s *Search) AllKDistParallel(k, workers int) []float64 {
	n := s.ds.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return s.AllKDist(k)
	}
	out := make([]float64, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for t := 0; t < workers; t++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = s.KDist(i, k)
			}
		}()
	}
	wg.Wait()
	return out
}

// N returns the number of records indexed.
func (s *Search) N() int { return s.ds.N() }

// Metric returns the searcher's metric.
func (s *Search) MetricKind() Metric { return s.metric }
