package neighbors

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"hido/internal/dataset"
	"hido/internal/xrand"
)

// VPTree is a vantage-point tree for exact nearest-neighbor queries
// under a metric: each node picks a vantage point and splits the rest
// by median distance to it; queries prune subtrees with the triangle
// inequality.
//
// The tree exists as much for the experiment it powers as for speed:
// §1 of the paper rests on distance concentration, and the same
// effect destroys metric-tree pruning — when all distances look
// alike, |d(q,v) − μ| < τ holds for every node and the "index"
// degenerates into a slow linear scan. The IndexEffectiveness
// experiment measures exactly that collapse.
type VPTree struct {
	ds     *dataset.Dataset
	metric Metric
	root   *vpNode
	// Visited counts distance evaluations of the most recent query
	// (not concurrency-safe; the measurement hook for the experiment).
	Visited int
}

type vpNode struct {
	point         int // index of the vantage point
	radius        float64
	inside, outer *vpNode
}

// NewVPTree builds the tree over the full dataset. The dataset must
// have no missing values.
func NewVPTree(ds *dataset.Dataset, metric Metric, seed uint64) *VPTree {
	if ds.MissingCount() > 0 {
		panic("neighbors: dataset has missing values; impute first")
	}
	t := &VPTree{ds: ds, metric: metric}
	idx := make([]int, ds.N())
	for i := range idx {
		idx[i] = i
	}
	rng := xrand.New(seed)
	t.root = t.build(idx, rng)
	return t
}

func (t *VPTree) build(idx []int, rng *xrand.RNG) *vpNode {
	if len(idx) == 0 {
		return nil
	}
	// Random vantage point: move it to the end and slice it off.
	v := rng.Intn(len(idx))
	idx[v], idx[len(idx)-1] = idx[len(idx)-1], idx[v]
	node := &vpNode{point: idx[len(idx)-1]}
	rest := idx[:len(idx)-1]
	if len(rest) == 0 {
		return node
	}
	vp := t.ds.RowView(node.point)
	dists := make([]float64, len(rest))
	for i, j := range rest {
		dists[i] = Dist(t.metric, vp, t.ds.RowView(j))
	}
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	mid := len(order) / 2
	node.radius = dists[order[mid]]
	inside := make([]int, 0, mid+1)
	outer := make([]int, 0, len(order)-mid)
	for _, oi := range order {
		if dists[oi] <= node.radius {
			inside = append(inside, rest[oi])
		} else {
			outer = append(outer, rest[oi])
		}
	}
	node.inside = t.build(inside, rng)
	node.outer = t.build(outer, rng)
	return node
}

// KNN returns the k nearest neighbors of record i (excluding i),
// ordered by increasing distance — the same contract as Search.KNN.
func (t *VPTree) KNN(i, k int) []Neighbor {
	if k < 1 || k > t.ds.N()-1 {
		panic(fmt.Sprintf("neighbors: k=%d outside [1,%d]", k, t.ds.N()-1))
	}
	t.Visited = 0
	h := make(maxHeap, 0, k+1)
	q := t.ds.RowView(i)
	tau := math.Inf(1)
	var search func(n *vpNode)
	search = func(n *vpNode) {
		if n == nil {
			return
		}
		d := Dist(t.metric, q, t.ds.RowView(n.point))
		t.Visited++
		if n.point != i {
			if len(h) < k {
				heap.Push(&h, Neighbor{n.point, d})
			} else if d < h[0].Dist {
				h[0] = Neighbor{n.point, d}
				heap.Fix(&h, 0)
			}
			if len(h) == k {
				tau = h[0].Dist
			}
		}
		// Visit the more promising side first; prune with the triangle
		// inequality.
		if d <= n.radius {
			if d-tau <= n.radius {
				search(n.inside)
			}
			if d+tau > n.radius {
				search(n.outer)
			}
		} else {
			if d+tau > n.radius {
				search(n.outer)
			}
			if d-tau <= n.radius {
				search(n.inside)
			}
		}
	}
	search(t.root)
	out := make([]Neighbor, len(h))
	copy(out, h)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// PruningRate reports, for the most recent query, the fraction of
// records whose distance computation the tree avoided (0 = the tree
// degenerated to a linear scan).
func (t *VPTree) PruningRate() float64 {
	n := t.ds.N()
	if n == 0 {
		return 0
	}
	return 1 - float64(t.Visited)/float64(n)
}
