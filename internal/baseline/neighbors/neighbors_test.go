package neighbors

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hido/internal/dataset"
	"hido/internal/xrand"
)

func randomDS(n, d int, seed uint64) *dataset.Dataset {
	r := xrand.New(seed)
	names := make([]string, d)
	for j := range names {
		names[j] = "x"
	}
	ds := dataset.New(names, n)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = r.Float64()
		}
		ds.AppendRow(row, "")
	}
	return ds
}

func TestDistKnownValues(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := Dist(Euclidean, a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("euclidean = %v", got)
	}
	if got := Dist(Manhattan, a, b); got != 7 {
		t.Errorf("manhattan = %v", got)
	}
	if got := Dist(Chebyshev, a, b); got != 4 {
		t.Errorf("chebyshev = %v", got)
	}
	if got := SqDist(a, b); got != 25 {
		t.Errorf("sqdist = %v", got)
	}
}

func TestDistPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"length":     func() { Dist(Euclidean, []float64{1}, []float64{1, 2}) },
		"nan eucl":   func() { Dist(Euclidean, []float64{math.NaN()}, []float64{1}) },
		"nan man":    func() { Dist(Manhattan, []float64{math.NaN()}, []float64{1}) },
		"nan cheb":   func() { Dist(Chebyshev, []float64{math.NaN()}, []float64{1}) },
		"bad metric": func() { Dist(Metric(42), []float64{1}, []float64{1}) },
		"nan sq":     func() { SqDist([]float64{math.NaN()}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMetricString(t *testing.T) {
	if Euclidean.String() != "euclidean" || Manhattan.String() != "manhattan" ||
		Chebyshev.String() != "chebyshev" || Metric(9).String() == "" {
		t.Error("Metric.String wrong")
	}
}

func TestNewSearchRejectsMissing(t *testing.T) {
	ds := dataset.FromRows([]string{"x"}, [][]float64{{1}, {math.NaN()}})
	defer func() {
		if recover() == nil {
			t.Fatal("NewSearch with NaN did not panic")
		}
	}()
	NewSearch(ds, Euclidean)
}

// bruteKNN is the oracle: sort all distances.
func bruteKNN(ds *dataset.Dataset, m Metric, i, k int) []Neighbor {
	var all []Neighbor
	for j := 0; j < ds.N(); j++ {
		if j == i {
			continue
		}
		all = append(all, Neighbor{j, Dist(m, ds.RowView(i), ds.RowView(j))})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Index < all[b].Index
	})
	return all[:k]
}

func TestKNNMatchesOracle(t *testing.T) {
	for _, m := range []Metric{Euclidean, Manhattan, Chebyshev} {
		ds := randomDS(100, 5, 1)
		s := NewSearch(ds, m)
		for _, i := range []int{0, 50, 99} {
			for _, k := range []int{1, 3, 10} {
				got := s.KNN(i, k)
				want := bruteKNN(ds, m, i, k)
				if len(got) != len(want) {
					t.Fatalf("%v: lengths %d vs %d", m, len(got), len(want))
				}
				for x := range got {
					if math.Abs(got[x].Dist-want[x].Dist) > 1e-9 {
						t.Errorf("%v i=%d k=%d pos %d: dist %v vs %v", m, i, k, x, got[x].Dist, want[x].Dist)
					}
				}
			}
		}
	}
}

func TestKNNOrderedAndExcludesSelf(t *testing.T) {
	ds := randomDS(60, 4, 2)
	s := NewSearch(ds, Euclidean)
	nn := s.KNN(7, 10)
	prev := -1.0
	for _, x := range nn {
		if x.Index == 7 {
			t.Error("KNN includes the query point")
		}
		if x.Dist < prev {
			t.Error("KNN not sorted")
		}
		prev = x.Dist
	}
}

func TestKNNPanics(t *testing.T) {
	s := NewSearch(randomDS(10, 2, 3), Euclidean)
	for _, k := range []int{0, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KNN(k=%d) did not panic", k)
				}
			}()
			s.KNN(0, k)
		}()
	}
}

func TestKNNVectorNoSkip(t *testing.T) {
	ds := randomDS(30, 3, 4)
	s := NewSearch(ds, Euclidean)
	q := ds.Row(5)
	nn := s.KNNVector(q, 1, -1)
	if nn[0].Index != 5 || nn[0].Dist != 0 {
		t.Errorf("nearest to own vector = %+v, want self at 0", nn[0])
	}
}

func TestKDist(t *testing.T) {
	ds := randomDS(50, 3, 5)
	s := NewSearch(ds, Euclidean)
	nn := s.KNN(3, 7)
	if got := s.KDist(3, 7); got != nn[6].Dist {
		t.Errorf("KDist = %v, want %v", got, nn[6].Dist)
	}
}

func TestRangeCountExact(t *testing.T) {
	ds := randomDS(80, 4, 6)
	s := NewSearch(ds, Euclidean)
	for _, i := range []int{0, 40} {
		for _, rad := range []float64{0.2, 0.5, 1.0} {
			want := 0
			for j := 0; j < 80; j++ {
				if j != i && Dist(Euclidean, ds.RowView(i), ds.RowView(j)) <= rad {
					want++
				}
			}
			if got := s.RangeCount(i, rad, -1); got != want {
				t.Errorf("RangeCount(%d, %v) = %d, want %d", i, rad, got, want)
			}
		}
	}
}

func TestRangeCountEarlyStop(t *testing.T) {
	ds := randomDS(200, 2, 7)
	s := NewSearch(ds, Euclidean)
	exact := s.RangeCount(0, 1.5, -1) // nearly everything
	if exact < 50 {
		t.Skip("unexpectedly sparse")
	}
	if got := s.RangeCount(0, 1.5, 5); got != 6 {
		t.Errorf("early-stopped count = %d, want 6 (k+1)", got)
	}
}

func TestAllKDist(t *testing.T) {
	ds := randomDS(40, 3, 8)
	s := NewSearch(ds, Euclidean)
	all := s.AllKDist(3)
	if len(all) != 40 {
		t.Fatalf("len = %d", len(all))
	}
	for i, v := range all {
		if want := s.KDist(i, 3); v != want {
			t.Errorf("AllKDist[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestAccessors(t *testing.T) {
	s := NewSearch(randomDS(10, 2, 9), Manhattan)
	if s.N() != 10 || s.MetricKind() != Manhattan {
		t.Error("accessors wrong")
	}
}

// Property: triangle inequality for all metrics on random vectors.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a, b, c := make([]float64, 4), make([]float64, 4), make([]float64, 4)
		for i := 0; i < 4; i++ {
			a[i], b[i], c[i] = r.Float64(), r.Float64(), r.Float64()
		}
		for _, m := range []Metric{Euclidean, Manhattan, Chebyshev} {
			if Dist(m, a, c) > Dist(m, a, b)+Dist(m, b, c)+1e-12 {
				return false
			}
			if math.Abs(Dist(m, a, b)-Dist(m, b, a)) > 1e-12 {
				return false
			}
			if Dist(m, a, a) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKNN(b *testing.B) {
	ds := randomDS(2000, 20, 1)
	s := NewSearch(ds, Euclidean)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.KNN(i%2000, 5)
	}
}
