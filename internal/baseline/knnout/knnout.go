// Package knnout implements the distance-based outlier definition of
// Ramaswamy, Rastogi & Shim (SIGMOD 2000) — reference [25] of the
// paper, and its head-to-head comparator in the arrhythmia study:
//
//	Given k and n, a point p is an outlier if the distance to its kth
//	nearest neighbor is smaller than the corresponding value for no
//	more than n−1 other points.
//
// Equivalently: rank all points by their kth-NN distance, descending;
// the top n are the outliers. The implementation is the optimized
// nested loop: while scanning candidates it maintains the current
// top-n threshold and abandons a point's neighbor scan as soon as its
// kth-NN distance provably falls below the threshold — the pruning
// described in the original paper.
package knnout

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"hido/internal/baseline/neighbors"
	"hido/internal/dataset"
)

// Outlier is one detected outlier with its score.
type Outlier struct {
	Index int
	// KDist is the distance to the point's kth nearest neighbor —
	// larger means more outlying.
	KDist float64
}

// Options configures the detector.
type Options struct {
	// K is the neighbor rank used for the distance score (the paper's
	// arrhythmia comparison uses the 1-nearest neighbor and notes
	// k-nearest results were no better).
	K int
	// N is the number of outliers to report.
	N int
	// Metric defaults to Euclidean.
	Metric neighbors.Metric
	// NoPrune disables the threshold-based early abandon; used by tests
	// and the pruning ablation bench.
	NoPrune bool
}

// TopN returns the n points with the largest kth-NN distances,
// descending. The dataset must have no missing values.
func TopN(ds *dataset.Dataset, opt Options) ([]Outlier, error) {
	if opt.K < 1 || opt.K > ds.N()-1 {
		return nil, fmt.Errorf("knnout: k=%d outside [1,%d]", opt.K, ds.N()-1)
	}
	if opt.N < 1 || opt.N > ds.N() {
		return nil, fmt.Errorf("knnout: n=%d outside [1,%d]", opt.N, ds.N())
	}
	if ds.MissingCount() > 0 {
		return nil, fmt.Errorf("knnout: dataset has %d missing values; impute first", ds.MissingCount())
	}

	useSq := opt.Metric == neighbors.Euclidean
	// top keeps the n best (largest kth-NN distance) outliers found so
	// far as a min-heap on the score; its root is the admission
	// threshold.
	top := make(minHeap, 0, opt.N+1)

	// kbuf holds the k smallest distances seen so far for the current
	// candidate, as a max-heap: its root is the running upper bound on
	// the candidate's kth-NN distance.
	kbuf := make(maxHeap, 0, opt.K+1)

	for i := 0; i < ds.N(); i++ {
		q := ds.RowView(i)
		kbuf = kbuf[:0]
		threshold := math.Inf(-1)
		if len(top) == opt.N {
			threshold = top[0].KDist
		}
		pruned := false
		for j := 0; j < ds.N(); j++ {
			if j == i {
				continue
			}
			var d float64
			if useSq {
				d = neighbors.SqDist(q, ds.RowView(j))
			} else {
				d = neighbors.Dist(opt.Metric, q, ds.RowView(j))
			}
			if len(kbuf) < opt.K {
				heap.Push(&kbuf, d)
			} else if d < kbuf[0] {
				kbuf[0] = d
				heap.Fix(&kbuf, 0)
			}
			// Once k neighbors are buffered, kbuf[0] can only decrease;
			// if it is already below the admission threshold, this point
			// cannot enter the top-n.
			if !opt.NoPrune && len(kbuf) == opt.K && score(kbuf[0], useSq) <= threshold {
				pruned = true
				break
			}
		}
		if pruned || len(kbuf) < opt.K {
			continue
		}
		sc := score(kbuf[0], useSq)
		if len(top) < opt.N {
			heap.Push(&top, Outlier{i, sc})
		} else if sc > top[0].KDist {
			top[0] = Outlier{i, sc}
			heap.Fix(&top, 0)
		}
	}

	out := make([]Outlier, len(top))
	copy(out, top)
	sort.Slice(out, func(a, b int) bool {
		if out[a].KDist != out[b].KDist {
			return out[a].KDist > out[b].KDist
		}
		return out[a].Index < out[b].Index
	})
	return out, nil
}

func score(d float64, sq bool) float64 {
	if sq {
		return math.Sqrt(d)
	}
	return d
}

// Scores returns every point's kth-NN distance (no top-n pruning), for
// tests and score-distribution studies.
func Scores(ds *dataset.Dataset, k int, metric neighbors.Metric) ([]float64, error) {
	if k < 1 || k > ds.N()-1 {
		return nil, fmt.Errorf("knnout: k=%d outside [1,%d]", k, ds.N()-1)
	}
	if ds.MissingCount() > 0 {
		return nil, fmt.Errorf("knnout: dataset has %d missing values; impute first", ds.MissingCount())
	}
	s := neighbors.NewSearch(ds, metric)
	return s.AllKDist(k), nil
}

// ScoresParallel is Scores computed on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). Every record's kth-NN scan is
// independent, so the scores are identical to the serial path.
func ScoresParallel(ds *dataset.Dataset, k int, metric neighbors.Metric, workers int) ([]float64, error) {
	if k < 1 || k > ds.N()-1 {
		return nil, fmt.Errorf("knnout: k=%d outside [1,%d]", k, ds.N()-1)
	}
	if ds.MissingCount() > 0 {
		return nil, fmt.Errorf("knnout: dataset has %d missing values; impute first", ds.MissingCount())
	}
	s := neighbors.NewSearch(ds, metric)
	return s.AllKDistParallel(k, workers), nil
}

// minHeap orders outliers by ascending score (root = weakest member).
type minHeap []Outlier

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].KDist < h[j].KDist }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Outlier)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// maxHeap keeps candidate neighbor distances; root is the largest.
type maxHeap []float64

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i] > h[j] }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
