package knnout

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"hido/internal/baseline/neighbors"
	"hido/internal/dataset"
	"hido/internal/xrand"
)

// PartitionOptions configures the partition-based algorithm of
// Ramaswamy, Rastogi & Shim — the third algorithm of their paper,
// which first groups points into partitions, bounds every partition's
// possible kth-NN distances through MBR distance bounds, and computes
// exact distances only for points in partitions that could still
// contain a top-n outlier. The original uses BIRCH for partitioning;
// this implementation uses deterministic k-means, which preserves the
// algorithm's structure (any space partitioning works — only the
// bounds matter for correctness).
type PartitionOptions struct {
	Options
	// Partitions is the number of k-means cells (default ~sqrt(N)).
	Partitions int
	// Seed drives the k-means initialization.
	Seed uint64
}

// PartitionTopN returns exactly the same outliers as TopN, pruning
// whole partitions first. The Euclidean metric is required (MBR
// bounds assume it).
func PartitionTopN(ds *dataset.Dataset, opt PartitionOptions) ([]Outlier, error) {
	if opt.Metric != neighbors.Euclidean {
		return nil, fmt.Errorf("knnout: partition algorithm requires the Euclidean metric")
	}
	if opt.K < 1 || opt.K > ds.N()-1 {
		return nil, fmt.Errorf("knnout: k=%d outside [1,%d]", opt.K, ds.N()-1)
	}
	if opt.N < 1 || opt.N > ds.N() {
		return nil, fmt.Errorf("knnout: n=%d outside [1,%d]", opt.N, ds.N())
	}
	if ds.MissingCount() > 0 {
		return nil, fmt.Errorf("knnout: dataset has %d missing values; impute first", ds.MissingCount())
	}
	if opt.Partitions == 0 {
		opt.Partitions = int(math.Sqrt(float64(ds.N())))
	}
	if opt.Partitions < 1 {
		return nil, fmt.Errorf("knnout: partitions=%d must be positive", opt.Partitions)
	}

	parts := kmeansPartition(ds, opt.Partitions, opt.Seed)

	// Pairwise MBR bounds. MINDIST is the smallest possible distance
	// between a point of P and a point of Q; MAXDIST the largest.
	np := len(parts)
	lower := make([]float64, np)
	upper := make([]float64, np)
	for pi, p := range parts {
		minB := make([]bound2, 0, np)
		maxB := make([]bound2, 0, np)
		for qi, q := range parts {
			c := len(q.points)
			if qi == pi {
				// Same partition: a point's neighbors inside its own
				// partition are at least 0 and at most the MBR diameter
				// apart; exclude the point itself from the count.
				c--
				if c > 0 {
					minB = append(minB, bound2{0, c})
					maxB = append(maxB, bound2{mbrDiameter(p), c})
				}
				continue
			}
			minB = append(minB, bound2{mbrMinDist(p, q), c})
			maxB = append(maxB, bound2{mbrMaxDist(p, q), c})
		}
		lower[pi] = kthBound(minB, opt.K)
		upper[pi] = kthBound(maxB, opt.K)
	}

	// minDkDist: take partitions by descending lower bound until their
	// points could fill the top n; the smallest lower bound among them
	// bounds the n-th outlier's score from below.
	order := make([]int, np)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return lower[order[a]] > lower[order[b]] })
	total := 0
	minDkDist := 0.0
	for _, pi := range order {
		total += len(parts[pi].points)
		minDkDist = lower[pi]
		if total >= opt.N {
			break
		}
	}

	// Candidate points: those in partitions whose upper bound reaches
	// minDkDist.
	var candidates []int
	for pi, p := range parts {
		if upper[pi] >= minDkDist {
			candidates = append(candidates, p.points...)
		}
	}

	// Exact phase: kth-NN distance for each candidate (scanning all
	// points), keeping the top n — the pruned nested loop restricted to
	// the candidate set.
	top := make(minHeap, 0, opt.N+1)
	kbuf := make(maxHeap, 0, opt.K+1)
	for _, i := range candidates {
		q := ds.RowView(i)
		kbuf = kbuf[:0]
		threshold := math.Inf(-1)
		if len(top) == opt.N {
			threshold = top[0].KDist
		}
		pruned := false
		for j := 0; j < ds.N(); j++ {
			if j == i {
				continue
			}
			d := neighbors.SqDist(q, ds.RowView(j))
			if len(kbuf) < opt.K {
				heap.Push(&kbuf, d)
			} else if d < kbuf[0] {
				kbuf[0] = d
				heap.Fix(&kbuf, 0)
			}
			if !opt.NoPrune && len(kbuf) == opt.K && math.Sqrt(kbuf[0]) <= threshold {
				pruned = true
				break
			}
		}
		if pruned || len(kbuf) < opt.K {
			continue
		}
		sc := math.Sqrt(kbuf[0])
		if len(top) < opt.N {
			heap.Push(&top, Outlier{i, sc})
		} else if sc > top[0].KDist {
			top[0] = Outlier{i, sc}
			heap.Fix(&top, 0)
		}
	}
	out := make([]Outlier, len(top))
	copy(out, top)
	sort.Slice(out, func(a, b int) bool {
		if out[a].KDist != out[b].KDist {
			return out[a].KDist > out[b].KDist
		}
		return out[a].Index < out[b].Index
	})
	return out, nil
}

// bound2 pairs an MBR distance bound with the point count it covers.
type bound2 struct {
	dist  float64
	count int
}

// kthBound returns the distance at which the cumulative point count
// reaches k when bounds are visited in ascending distance order — the
// generic lower/upper bound on a partition's kth-NN distances.
func kthBound(bs []bound2, k int) float64 {
	sort.Slice(bs, func(a, b int) bool { return bs[a].dist < bs[b].dist })
	total := 0
	for _, b := range bs {
		total += b.count
		if total >= k {
			return b.dist
		}
	}
	return math.Inf(1) // fewer than k other points exist
}

// partition is one k-means cell with its MBR.
type partition struct {
	points   []int
	min, max []float64
}

// kmeansPartition runs deterministic Lloyd k-means (random-point
// initialization, fixed iteration cap) and returns the non-empty
// partitions with their bounding boxes.
func kmeansPartition(ds *dataset.Dataset, k int, seed uint64) []partition {
	n, d := ds.N(), ds.D()
	if k > n {
		k = n
	}
	rng := xrand.New(seed)
	centers := make([][]float64, k)
	for i, idx := range rng.Sample(n, k) {
		centers[i] = ds.Row(idx)
	}
	assign := make([]int, n)
	const iters = 12
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			row := ds.RowView(i)
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if dist := neighbors.SqDist(row, centers[c]); dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, d)
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			row := ds.RowView(i)
			for j := 0; j < d; j++ {
				sums[c][j] += row[j]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				continue // empty cluster keeps its center
			}
			for j := 0; j < d; j++ {
				centers[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}

	byCluster := make(map[int]*partition)
	for i := 0; i < n; i++ {
		c := assign[i]
		p, ok := byCluster[c]
		if !ok {
			p = &partition{
				min: append([]float64(nil), ds.RowView(i)...),
				max: append([]float64(nil), ds.RowView(i)...),
			}
			byCluster[c] = p
		}
		p.points = append(p.points, i)
		row := ds.RowView(i)
		for j := 0; j < d; j++ {
			if row[j] < p.min[j] {
				p.min[j] = row[j]
			}
			if row[j] > p.max[j] {
				p.max[j] = row[j]
			}
		}
	}
	out := make([]partition, 0, len(byCluster))
	for c := 0; c < k; c++ {
		if p, ok := byCluster[c]; ok {
			out = append(out, *p)
		}
	}
	return out
}

// mbrMinDist returns the smallest possible Euclidean distance between
// a point in p's MBR and a point in q's MBR.
func mbrMinDist(p, q partition) float64 {
	s := 0.0
	for j := range p.min {
		var gap float64
		switch {
		case q.min[j] > p.max[j]:
			gap = q.min[j] - p.max[j]
		case p.min[j] > q.max[j]:
			gap = p.min[j] - q.max[j]
		}
		s += gap * gap
	}
	return math.Sqrt(s)
}

// mbrMaxDist returns the largest possible Euclidean distance between
// a point in p's MBR and a point in q's MBR.
func mbrMaxDist(p, q partition) float64 {
	s := 0.0
	for j := range p.min {
		a := math.Abs(q.max[j] - p.min[j])
		if b := math.Abs(p.max[j] - q.min[j]); b > a {
			a = b
		}
		s += a * a
	}
	return math.Sqrt(s)
}

// mbrDiameter returns the diagonal of a partition's MBR.
func mbrDiameter(p partition) float64 {
	s := 0.0
	for j := range p.min {
		d := p.max[j] - p.min[j]
		s += d * d
	}
	return math.Sqrt(s)
}
