package knnout_test

import (
	"fmt"

	"hido/internal/baseline/knnout"
	"hido/internal/dataset"
)

// The Ramaswamy et al. definition: rank points by the distance to
// their kth nearest neighbor and report the top n.
func ExampleTopN() {
	ds := dataset.FromRows([]string{"x"}, [][]float64{
		{1}, {1.1}, {0.9}, {1.05}, {10},
	})
	out, err := knnout.TopN(ds, knnout.Options{K: 2, N: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("record %d, 2-NN distance %.2f\n", out[0].Index, out[0].KDist)
	// Output:
	// record 4, 2-NN distance 8.95
}
