package knnout

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hido/internal/baseline/neighbors"
	"hido/internal/dataset"
	"hido/internal/xrand"
)

func randomDS(n, d int, seed uint64) *dataset.Dataset {
	r := xrand.New(seed)
	names := make([]string, d)
	for j := range names {
		names[j] = "x"
	}
	ds := dataset.New(names, n)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = r.Float64()
		}
		ds.AppendRow(row, "")
	}
	return ds
}

// withOutlier appends one point far away from the unit cube.
func withOutlier(ds *dataset.Dataset) *dataset.Dataset {
	out := ds.Clone()
	row := make([]float64, ds.D())
	for j := range row {
		row[j] = 10
	}
	out.AppendRow(row, "outlier")
	return out
}

func TestTopNFindsFarPoint(t *testing.T) {
	ds := withOutlier(randomDS(200, 4, 1))
	res, err := TopN(ds, Options{K: 3, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d outliers", len(res))
	}
	if res[0].Index != 200 {
		t.Errorf("top outlier = %d, want the planted far point 200", res[0].Index)
	}
	for i := 1; i < len(res); i++ {
		if res[i].KDist > res[i-1].KDist {
			t.Error("results not sorted by descending kth-NN distance")
		}
	}
}

func TestTopNMatchesScoresOracle(t *testing.T) {
	ds := randomDS(150, 5, 2)
	const k, n = 4, 10
	res, err := TopN(ds, Options{K: k, N: n})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := Scores(ds, k, neighbors.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	for i := 0; i < n; i++ {
		if math.Abs(res[i].KDist-scores[idx[i]]) > 1e-9 {
			t.Errorf("pos %d: pruned %v (idx %d), oracle %v (idx %d)",
				i, res[i].KDist, res[i].Index, scores[idx[i]], idx[i])
		}
	}
}

func TestPrunedEqualsUnpruned(t *testing.T) {
	ds := withOutlier(randomDS(120, 6, 3))
	for _, m := range []neighbors.Metric{neighbors.Euclidean, neighbors.Manhattan} {
		pruned, err := TopN(ds, Options{K: 2, N: 8, Metric: m})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := TopN(ds, Options{K: 2, N: 8, Metric: m, NoPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(pruned) != len(plain) {
			t.Fatalf("%v: lengths differ", m)
		}
		for i := range pruned {
			if math.Abs(pruned[i].KDist-plain[i].KDist) > 1e-9 {
				t.Errorf("%v pos %d: pruned %v vs plain %v", m, i, pruned[i], plain[i])
			}
		}
	}
}

func TestValidation(t *testing.T) {
	ds := randomDS(20, 2, 4)
	if _, err := TopN(ds, Options{K: 0, N: 5}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopN(ds, Options{K: 20, N: 5}); err == nil {
		t.Error("k=N accepted")
	}
	if _, err := TopN(ds, Options{K: 1, N: 0}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := TopN(ds, Options{K: 1, N: 21}); err == nil {
		t.Error("n>N accepted")
	}
	bad := ds.Clone()
	bad.SetAt(0, 0, math.NaN())
	if _, err := TopN(bad, Options{K: 1, N: 5}); err == nil {
		t.Error("missing values accepted")
	}
	if _, err := Scores(bad, 1, neighbors.Euclidean); err == nil {
		t.Error("Scores with missing values accepted")
	}
	if _, err := Scores(ds, 0, neighbors.Euclidean); err == nil {
		t.Error("Scores k=0 accepted")
	}
}

func TestTopNAllPoints(t *testing.T) {
	ds := randomDS(30, 3, 5)
	res, err := TopN(ds, Options{K: 1, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 30 {
		t.Fatalf("got %d results, want all 30", len(res))
	}
	seen := map[int]bool{}
	for _, o := range res {
		if seen[o.Index] {
			t.Fatal("duplicate index in results")
		}
		seen[o.Index] = true
	}
}

func BenchmarkTopNPruned(b *testing.B) {
	ds := withOutlier(randomDS(1000, 10, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopN(ds, Options{K: 5, N: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopNUnpruned(b *testing.B) {
	ds := withOutlier(randomDS(1000, 10, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopN(ds, Options{K: 5, N: 10, NoPrune: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPartitionTopNMatchesTopN(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		ds := withOutlier(randomDS(300, 6, seed))
		want, err := TopN(ds, Options{K: 3, N: 8})
		if err != nil {
			t.Fatal(err)
		}
		got, err := PartitionTopN(ds, PartitionOptions{
			Options: Options{K: 3, N: 8}, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d vs %d outliers", seed, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].KDist-want[i].KDist) > 1e-9 {
				t.Errorf("seed %d pos %d: %v vs %v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestPartitionTopNClusteredData(t *testing.T) {
	// Two tight clusters plus scattered outliers: partition bounds
	// should prune aggressively without changing the answer.
	r := xrand.New(5)
	ds := dataset.New([]string{"x", "y"}, 0)
	for i := 0; i < 200; i++ {
		ds.AppendRow([]float64{r.NormMS(0, 0.2), r.NormMS(0, 0.2)}, "")
	}
	for i := 0; i < 200; i++ {
		ds.AppendRow([]float64{r.NormMS(10, 0.2), r.NormMS(10, 0.2)}, "")
	}
	for i := 0; i < 5; i++ {
		ds.AppendRow([]float64{r.NormMS(5, 0.1), r.NormMS(5, 0.1)}, "")
	}
	want, err := TopN(ds, Options{K: 4, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := PartitionTopN(ds, PartitionOptions{Options: Options{K: 4, N: 5}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Index != want[i].Index {
			t.Errorf("pos %d: record %d vs %d", i, got[i].Index, want[i].Index)
		}
	}
}

func TestPartitionTopNValidation(t *testing.T) {
	ds := randomDS(30, 2, 6)
	if _, err := PartitionTopN(ds, PartitionOptions{
		Options: Options{K: 1, N: 5, Metric: neighbors.Manhattan},
	}); err == nil {
		t.Error("manhattan accepted")
	}
	if _, err := PartitionTopN(ds, PartitionOptions{Options: Options{K: 0, N: 5}}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PartitionTopN(ds, PartitionOptions{Options: Options{K: 1, N: 0}}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := PartitionTopN(ds, PartitionOptions{
		Options: Options{K: 1, N: 5}, Partitions: -1,
	}); err == nil {
		t.Error("negative partitions accepted")
	}
}

func BenchmarkPartitionTopN(b *testing.B) {
	ds := withOutlier(randomDS(1000, 10, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PartitionTopN(ds, PartitionOptions{
			Options: Options{K: 5, N: 10}, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: the partition algorithm returns identical scores to the
// nested loop on arbitrary random data.
func TestQuickPartitionOracle(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		ds := withOutlier(randomDS(120, 4, seed))
		parts := int(pRaw)%20 + 1
		want, err := TopN(ds, Options{K: 2, N: 6})
		if err != nil {
			return false
		}
		got, err := PartitionTopN(ds, PartitionOptions{
			Options: Options{K: 2, N: 6}, Partitions: parts, Seed: seed,
		})
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].KDist-want[i].KDist) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The parallel scoring path must be bit-identical to the serial one:
// every record's kth-NN scan is independent and the distance sums are
// accumulated in the same order regardless of which goroutine runs
// them.
func TestScoresParallelMatchesSerial(t *testing.T) {
	ds := withOutlier(randomDS(300, 6, 9))
	for _, metric := range []neighbors.Metric{neighbors.Euclidean, neighbors.Manhattan} {
		want, err := Scores(ds, 4, metric)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 8} {
			got, err := ScoresParallel(ds, 4, metric, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("metric %v workers=%d: %d scores, want %d", metric, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("metric %v workers=%d: score[%d]=%v, serial %v",
						metric, workers, i, got[i], want[i])
				}
			}
		}
	}
	if _, err := ScoresParallel(ds, 0, neighbors.Euclidean, 2); err == nil {
		t.Error("k=0 accepted")
	}
}
