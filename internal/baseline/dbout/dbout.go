// Package dbout implements the distance-based outlier definition of
// Knorr & Ng (VLDB 1998) — reference [22] of the paper:
//
//	A point p in a data set is an outlier with respect to parameters
//	k and λ, if no more than k points in the data set are at a
//	distance of λ or less from p.
//
// Two algorithms are provided: the nested loop with early termination
// (a point is exonerated the moment its (k+1)th neighbor within λ is
// found), and the cell-based algorithm that made the original paper's
// low-dimensional experiments fast — cells of side λ/(2√d), with whole
// cells classified through their level-1 and level-2 neighborhoods so
// most points never compute a distance at all. The cell structure is
// practical only for small d (its cell count grows exponentially),
// which is itself one of the observations motivating the projection
// method.
//
// §1 of the paper discusses how choosing λ in high dimensions is
// nearly impossible (all points lie in a thin distance shell); the
// LambdaSweep helper quantifies exactly that effect for the
// reproduction of that argument.
package dbout

import (
	"fmt"
	"math"

	"hido/internal/baseline/neighbors"
	"hido/internal/dataset"
)

// Options configures the detector.
type Options struct {
	// K is the neighbor-count threshold: outliers have at most K
	// points within Lambda.
	K int
	// Lambda is the distance threshold.
	Lambda float64
	// Metric defaults to Euclidean. The cell-based algorithm supports
	// Euclidean only.
	Metric neighbors.Metric
}

func validate(ds *dataset.Dataset, opt Options) error {
	if opt.K < 0 || opt.K >= ds.N() {
		return fmt.Errorf("dbout: k=%d outside [0,%d)", opt.K, ds.N())
	}
	if opt.Lambda <= 0 || math.IsNaN(opt.Lambda) {
		return fmt.Errorf("dbout: lambda=%v must be positive", opt.Lambda)
	}
	if ds.MissingCount() > 0 {
		return fmt.Errorf("dbout: dataset has %d missing values; impute first", ds.MissingCount())
	}
	return nil
}

// NestedLoop returns the DB(k, λ) outliers by the nested-loop
// algorithm with early termination, in increasing index order.
func NestedLoop(ds *dataset.Dataset, opt Options) ([]int, error) {
	if err := validate(ds, opt); err != nil {
		return nil, err
	}
	s := neighbors.NewSearch(ds, opt.Metric)
	var out []int
	for i := 0; i < ds.N(); i++ {
		// Stop counting as soon as k+1 neighbors are inside λ.
		if s.RangeCount(i, opt.Lambda, opt.K) <= opt.K {
			out = append(out, i)
		}
	}
	return out, nil
}

// CellBased returns the DB(k, λ) outliers using the cell-based
// algorithm. It requires the Euclidean metric and is intended for
// small dimensionality; it returns an error if the cell grid would
// exceed maxCells (a safety valve for the exponential growth that
// makes the approach unusable in high dimensions).
func CellBased(ds *dataset.Dataset, opt Options) ([]int, error) {
	if err := validate(ds, opt); err != nil {
		return nil, err
	}
	if opt.Metric != neighbors.Euclidean {
		return nil, fmt.Errorf("dbout: cell-based algorithm requires the Euclidean metric")
	}
	d := ds.D()
	// Cell side λ/(2√d): any two points in the same or adjacent cells
	// are within λ; points ≥ ⌈2√d⌉+1 cells apart in some coordinate are
	// beyond λ.
	side := opt.Lambda / (2 * math.Sqrt(float64(d)))
	l2reach := int(math.Ceil(2 * math.Sqrt(float64(d))))

	// Assign points to cells.
	type cellKey string
	coordsOf := func(row []float64) []int {
		c := make([]int, d)
		for j, v := range row {
			c[j] = int(math.Floor(v / side))
		}
		return c
	}
	keyOf := func(c []int) cellKey {
		b := make([]byte, 0, len(c)*4)
		for _, v := range c {
			b = appendInt(b, v)
			b = append(b, ',')
		}
		return cellKey(b)
	}
	cells := map[cellKey]*cell{}
	for i := 0; i < ds.N(); i++ {
		co := coordsOf(ds.RowView(i))
		k := keyOf(co)
		c, ok := cells[k]
		if !ok {
			c = &cell{coords: co}
			cells[k] = c
		}
		c.points = append(c.points, i)
	}
	const maxCells = 1 << 22
	// Worst-case enumeration cost per cell is (2·l2reach+1)^d neighbor
	// probes; refuse configurations where that would dwarf the nested
	// loop (the regime the original authors restricted to d ≤ 4).
	probes := math.Pow(float64(2*l2reach+1), float64(d))
	if float64(len(cells))*probes > maxCells {
		return nil, fmt.Errorf("dbout: cell-based algorithm infeasible at d=%d (≈%.0f cell probes); use NestedLoop", d, float64(len(cells))*probes)
	}

	// neighborsWithin enumerates existing cells whose Chebyshev
	// distance from c is in (lo, hi].
	neighborsWithin := func(c *cell, lo, hi int, fn func(*cell)) {
		cur := make([]int, d)
		var rec func(j, maxAbs int)
		rec = func(j, maxAbs int) {
			if j == d {
				if maxAbs > lo {
					if n, ok := cells[keyOf(cur)]; ok {
						fn(n)
					}
				}
				return
			}
			for delta := -hi; delta <= hi; delta++ {
				cur[j] = c.coords[j] + delta
				abs := delta
				if abs < 0 {
					abs = -abs
				}
				m := maxAbs
				if abs > m {
					m = abs
				}
				rec(j+1, m)
			}
		}
		rec(0, 0)
	}

	sqLambda := opt.Lambda * opt.Lambda
	var out []int
	for _, c := range cells {
		// Rule 1: a cell with more than k points (beyond the point
		// itself) exonerates all its points: same-cell points are always
		// within λ.
		if len(c.points) > opt.K+1 {
			continue
		}
		// Count c ∪ L1.
		countL1 := len(c.points)
		neighborsWithin(c, 0, 1, func(n *cell) { countL1 += len(n.points) })
		if countL1 > opt.K+1 {
			continue // Rule 2: enough guaranteed-close points
		}
		// Count c ∪ L1 ∪ L2 (upper bound on points within λ).
		countL2 := countL1
		var l2cells []*cell
		neighborsWithin(c, 1, l2reach, func(n *cell) {
			countL2 += len(n.points)
			l2cells = append(l2cells, n)
		})
		if countL2 <= opt.K+1 {
			// Rule 3: even the upper bound keeps every point at ≤ k
			// neighbors; the whole cell is outliers. (The +1 accounts for
			// the point itself being in the count.)
			out = append(out, c.points...)
			continue
		}
		// Undecided: points in c ∪ L1 are within λ for sure; check the
		// L2 points individually.
		for _, i := range c.points {
			count := countL1 - 1 // exclude the point itself
			if count > opt.K {
				break // cannot happen (rule 2), defensive
			}
			q := ds.RowView(i)
			isOutlier := true
			for _, n := range l2cells {
				for _, j := range n.points {
					if neighbors.SqDist(q, ds.RowView(j)) <= sqLambda {
						count++
						if count > opt.K {
							isOutlier = false
							break
						}
					}
				}
				if !isOutlier {
					break
				}
			}
			if isOutlier {
				out = append(out, i)
			}
		}
	}
	sortInts(out)
	return out, nil
}

type cell struct {
	coords []int
	points []int
}

func appendInt(b []byte, v int) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	if v >= 10 {
		b = appendInt(b, v/10)
		v %= 10
	}
	return append(b, byte('0'+v))
}

func sortInts(xs []int) {
	// insertion sort: outlier lists are short
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// LambdaSweep reports, for each λ in lambdas, the number of DB(k, λ)
// outliers. §1 of the paper argues that in high dimensions the count
// collapses from "everything" to "nothing" over a tiny λ window (the
// thin-shell effect); this helper reproduces that figure-level
// argument.
func LambdaSweep(ds *dataset.Dataset, k int, lambdas []float64, metric neighbors.Metric) ([]int, error) {
	out := make([]int, len(lambdas))
	for li, l := range lambdas {
		o, err := NestedLoop(ds, Options{K: k, Lambda: l, Metric: metric})
		if err != nil {
			return nil, err
		}
		out[li] = len(o)
	}
	return out, nil
}

// FractionOutliers applies the original fraction form of the Knorr-Ng
// definition: a DB(p, λ) outlier has at least a fraction p of the
// data set at distance greater than λ (equivalently, at most
// (1−p)·(N−1) points within λ). p must lie in (0, 1].
func FractionOutliers(ds *dataset.Dataset, p, lambda float64, metric neighbors.Metric) ([]int, error) {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("dbout: fraction p=%v outside (0,1]", p)
	}
	k := int(math.Floor((1 - p) * float64(ds.N()-1)))
	return NestedLoop(ds, Options{K: k, Lambda: lambda, Metric: metric})
}
