package dbout

import (
	"math"
	"testing"
	"testing/quick"

	"hido/internal/baseline/neighbors"
	"hido/internal/dataset"
	"hido/internal/xrand"
)

func randomDS(n, d int, seed uint64) *dataset.Dataset {
	r := xrand.New(seed)
	names := make([]string, d)
	for j := range names {
		names[j] = "x"
	}
	ds := dataset.New(names, n)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = r.Float64()
		}
		ds.AppendRow(row, "")
	}
	return ds
}

// bruteDB is the literal-definition oracle.
func bruteDB(ds *dataset.Dataset, k int, lambda float64, m neighbors.Metric) []int {
	var out []int
	for i := 0; i < ds.N(); i++ {
		count := 0
		for j := 0; j < ds.N(); j++ {
			if j != i && neighbors.Dist(m, ds.RowView(i), ds.RowView(j)) <= lambda {
				count++
			}
		}
		if count <= k {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNestedLoopMatchesOracle(t *testing.T) {
	ds := randomDS(150, 3, 1)
	for _, k := range []int{0, 2, 5} {
		for _, lambda := range []float64{0.1, 0.25, 0.5} {
			got, err := NestedLoop(ds, Options{K: k, Lambda: lambda})
			if err != nil {
				t.Fatal(err)
			}
			want := bruteDB(ds, k, lambda, neighbors.Euclidean)
			if !equalInts(got, want) {
				t.Errorf("k=%d λ=%v: got %d outliers, oracle %d", k, lambda, len(got), len(want))
			}
		}
	}
}

func TestNestedLoopManhattan(t *testing.T) {
	ds := randomDS(100, 2, 2)
	got, err := NestedLoop(ds, Options{K: 1, Lambda: 0.2, Metric: neighbors.Manhattan})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteDB(ds, 1, 0.2, neighbors.Manhattan)
	if !equalInts(got, want) {
		t.Errorf("manhattan mismatch: %v vs %v", got, want)
	}
}

func TestCellBasedMatchesNestedLoop(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		ds := randomDS(300, d, uint64(d)+10)
		for _, k := range []int{1, 4} {
			for _, lambda := range []float64{0.15, 0.3} {
				nl, err := NestedLoop(ds, Options{K: k, Lambda: lambda})
				if err != nil {
					t.Fatal(err)
				}
				cb, err := CellBased(ds, Options{K: k, Lambda: lambda})
				if err != nil {
					t.Fatal(err)
				}
				if !equalInts(nl, cb) {
					t.Errorf("d=%d k=%d λ=%v: nested %v vs cell %v", d, k, lambda, nl, cb)
				}
			}
		}
	}
}

func TestCellBasedRefusesHighDim(t *testing.T) {
	ds := randomDS(100, 20, 3)
	if _, err := CellBased(ds, Options{K: 1, Lambda: 0.5}); err == nil {
		t.Error("cell-based accepted d=20")
	}
}

func TestCellBasedRequiresEuclidean(t *testing.T) {
	ds := randomDS(50, 2, 4)
	if _, err := CellBased(ds, Options{K: 1, Lambda: 0.3, Metric: neighbors.Manhattan}); err == nil {
		t.Error("cell-based accepted manhattan")
	}
}

func TestValidation(t *testing.T) {
	ds := randomDS(20, 2, 5)
	if _, err := NestedLoop(ds, Options{K: -1, Lambda: 0.5}); err == nil {
		t.Error("k=-1 accepted")
	}
	if _, err := NestedLoop(ds, Options{K: 20, Lambda: 0.5}); err == nil {
		t.Error("k=N accepted")
	}
	if _, err := NestedLoop(ds, Options{K: 1, Lambda: 0}); err == nil {
		t.Error("lambda=0 accepted")
	}
	if _, err := NestedLoop(ds, Options{K: 1, Lambda: math.NaN()}); err == nil {
		t.Error("lambda=NaN accepted")
	}
	bad := ds.Clone()
	bad.SetAt(0, 0, math.NaN())
	if _, err := NestedLoop(bad, Options{K: 1, Lambda: 0.5}); err == nil {
		t.Error("missing values accepted")
	}
}

func TestLambdaExtremes(t *testing.T) {
	// §1's argument: tiny λ → everything is an outlier; huge λ → nothing.
	ds := randomDS(100, 5, 6)
	all, err := NestedLoop(ds, Options{K: 1, Lambda: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 100 {
		t.Errorf("tiny λ: %d outliers, want all 100", len(all))
	}
	none, err := NestedLoop(ds, Options{K: 1, Lambda: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("huge λ: %d outliers, want 0", len(none))
	}
}

func TestLambdaSweepMonotone(t *testing.T) {
	ds := randomDS(200, 8, 7)
	lambdas := []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2}
	counts, err := LambdaSweep(ds, 2, lambdas, neighbors.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Errorf("outlier count increased with λ: %v", counts)
		}
	}
	if counts[0] != 200 && counts[len(counts)-1] != 0 {
		t.Logf("sweep did not span full range: %v (acceptable, depends on shell location)", counts)
	}
}

// Property: cell-based equals nested loop on random 2-d data.
func TestQuickCellOracle(t *testing.T) {
	f := func(seed uint64, kRaw uint8, lRaw uint8) bool {
		k := int(kRaw) % 6
		lambda := 0.05 + float64(lRaw%40)/100
		ds := randomDS(120, 2, seed)
		nl, err := NestedLoop(ds, Options{K: k, Lambda: lambda})
		if err != nil {
			return false
		}
		cb, err := CellBased(ds, Options{K: k, Lambda: lambda})
		if err != nil {
			return false
		}
		return equalInts(nl, cb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNestedLoop(b *testing.B) {
	ds := randomDS(1000, 10, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NestedLoop(ds, Options{K: 3, Lambda: 0.8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCellBased2D(b *testing.B) {
	ds := randomDS(1000, 2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CellBased(ds, Options{K: 3, Lambda: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFractionOutliersMatchesCountForm(t *testing.T) {
	ds := randomDS(120, 3, 9)
	// p = 1: no point may be within λ ⇒ k = 0.
	got, err := FractionOutliers(ds, 1, 0.3, neighbors.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NestedLoop(ds, Options{K: 0, Lambda: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, want) {
		t.Errorf("p=1 fraction form != k=0 count form")
	}
	// p = 0.95 over N=120: k = floor(0.05·119) = 5.
	got, err = FractionOutliers(ds, 0.95, 0.3, neighbors.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	want, err = NestedLoop(ds, Options{K: 5, Lambda: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, want) {
		t.Errorf("p=0.95 fraction form != k=5 count form")
	}
}

func TestFractionOutliersValidation(t *testing.T) {
	ds := randomDS(20, 2, 10)
	for _, p := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := FractionOutliers(ds, p, 0.3, neighbors.Euclidean); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
}
