package dod

import (
	"math"
	"testing"

	"hido/internal/dataset"
	"hido/internal/xrand"
)

func mkDataset(t *testing.T, rows [][]float64) *dataset.Dataset {
	t.Helper()
	names := make([]string, len(rows[0]))
	for j := range names {
		names[j] = "x"
	}
	ds := dataset.New(names, len(rows))
	for _, r := range rows {
		ds.AppendRow(r, "")
	}
	return ds
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// Hand-computed geometry: three collinear points at 0, 1, 2 and a far
// point at 10. Profiles (excluding self/other coordinates) are
// dominated by the far point's shifted distances, so it must score
// highest at k=1.
func TestIsolatedPoint1D(t *testing.T) {
	ds := mkDataset(t, [][]float64{{0}, {1}, {2}, {10}})
	got, err := Scores(ds, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if argmax(got) != 3 {
		t.Fatalf("isolated point not top-scored: %v", got)
	}
	// Exact value for point 0 vs point 1: profiles over {2, 3} are
	// (2, 10) and (1, 9) → distance sqrt(1+1) = sqrt(2); vs point 2:
	// profiles over {1, 3} are (1, 10) and (1, 8) → distance 2. The
	// 1-NN profile distance of point 0 is sqrt(2).
	if want := math.Sqrt(2); math.Abs(got[0]-want) > 1e-12 {
		t.Fatalf("score[0] = %v, want %v", got[0], want)
	}
}

// A tight cluster plus one point far away in every dimension: the
// outlier's profile is uniformly shifted and must dominate.
func TestClusterPlusOutlier(t *testing.T) {
	rng := xrand.New(5)
	var rows [][]float64
	for i := 0; i < 40; i++ {
		rows = append(rows, []float64{rng.Norm() * 0.1, rng.Norm() * 0.1, rng.Norm() * 0.1})
	}
	rows = append(rows, []float64{5, 5, 5})
	ds := mkDataset(t, rows)
	got, err := Scores(ds, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if argmax(got) != 40 {
		t.Fatalf("planted outlier scored %v, max at %d", got[40], argmax(got))
	}
}

// The DOD selling point: a point midway between two clusters has
// ordinary distances (comparable to cross-cluster member distances)
// but a unique profile — no other point is near-equidistant to both
// clusters — so profile-space kNN must still flag it.
func TestBetweenClusters(t *testing.T) {
	rng := xrand.New(9)
	var rows [][]float64
	for i := 0; i < 25; i++ {
		rows = append(rows, []float64{rng.Norm() * 0.05, rng.Norm() * 0.05})
	}
	for i := 0; i < 25; i++ {
		rows = append(rows, []float64{10 + rng.Norm()*0.05, rng.Norm() * 0.05})
	}
	rows = append(rows, []float64{5, 0}) // midway: unique profile
	ds := mkDataset(t, rows)
	got, err := Scores(ds, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if argmax(got) != 50 {
		t.Fatalf("midway point scored %v, max at %d (score %v)",
			got[50], argmax(got), got[argmax(got)])
	}
}

// Symmetric geometries must score symmetrically: the vertices of a
// square are mutually exchangeable, so all scores are equal.
func TestSquareSymmetry(t *testing.T) {
	ds := mkDataset(t, [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	got, err := Scores(ds, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if math.Abs(got[i]-got[0]) > 1e-12 {
			t.Fatalf("square vertices scored unequally: %v", got)
		}
	}
}

func TestScoresValidation(t *testing.T) {
	if _, err := Scores(mkDataset(t, [][]float64{{1}, {2}}), Options{}); err == nil {
		t.Fatal("accepted n < 3")
	}
	ds := mkDataset(t, [][]float64{{1}, {2}, {math.NaN()}})
	if _, err := Scores(ds, Options{}); err == nil {
		t.Fatal("accepted missing values")
	}
	// K clamps to n-2, so a huge K still works on a small set.
	ds = mkDataset(t, [][]float64{{0}, {1}, {2}, {10}})
	if _, err := Scores(ds, Options{K: 100}); err != nil {
		t.Fatalf("clamped K rejected: %v", err)
	}
}

func TestScoresDeterministic(t *testing.T) {
	rng := xrand.New(11)
	var rows [][]float64
	for i := 0; i < 30; i++ {
		rows = append(rows, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
	}
	ds := mkDataset(t, rows)
	a, err := Scores(ds, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scores(ds, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("score[%d] not deterministic", i)
		}
	}
}
