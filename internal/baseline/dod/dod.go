// Package dod implements the distance-of-distances outlier scorer
// (Lee & Jeon, PAPERS.md) — the modern full-dimensional comparator the
// detection-quality harness reports next to the paper's subspace
// methods.
//
// Plain distances concentrate in high dimensions: every point becomes
// roughly equidistant from every other, which is exactly the failure
// mode the source paper's §1 argues defeats kNN-style baselines. DOD's
// observation is that a point's *distance profile* — the vector of its
// distances to every other point — remains discriminative after the
// raw distances have concentrated: an outlier's profile is shifted and
// shaped differently from the profiles of cluster members, even when
// each individual distance looks unremarkable. Scoring is then kNN
// distance in profile space, i.e. a distance of distances.
//
// The implementation is the direct O(n²·d + n³) form: a full distance
// matrix, then pairwise profile distances excluding the two
// self-referential coordinates. That is deliberate — the harness runs
// at n ≤ a few hundred, and the direct form is trivially deterministic.
package dod

import (
	"fmt"
	"math"
	"sort"

	"hido/internal/baseline/neighbors"
	"hido/internal/dataset"
)

// Options configures the scorer. Zero values select the defaults.
type Options struct {
	// K is the neighbor rank in profile space (default 10, clamped to
	// n−2): the score is the distance to the Kth nearest profile.
	K int
	// Metric is the base-distance metric building the profiles
	// (default Euclidean). Profile space itself is always Euclidean.
	Metric neighbors.Metric
}

// Scores returns one outlierness score per record, higher = more
// outlying: the kth-nearest-neighbor distance between distance
// profiles. The dataset must have no missing values (impute first,
// like the other full-dimensional baselines) and at least 3 records.
func Scores(ds *dataset.Dataset, opt Options) ([]float64, error) {
	n := ds.N()
	if n < 3 {
		return nil, fmt.Errorf("dod: need at least 3 records, have %d", n)
	}
	if ds.MissingCount() > 0 {
		return nil, fmt.Errorf("dod: dataset has %d missing values; impute first", ds.MissingCount())
	}
	k := opt.K
	if k == 0 {
		k = 10
	}
	if k > n-2 {
		k = n - 2
	}
	if k < 1 {
		return nil, fmt.Errorf("dod: k=%d must be positive", opt.K)
	}

	// Base distance matrix: profiles are its rows.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := neighbors.Dist(opt.Metric, ds.RowView(i), ds.RowView(j))
			dist[i][j], dist[j][i] = d, d
		}
	}

	scores := make([]float64, n)
	prof := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		prof = prof[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			prof = append(prof, profileDist(dist, i, j))
		}
		sort.Float64s(prof)
		scores[i] = prof[k-1]
	}
	return scores, nil
}

// profileDist is the Euclidean distance between the distance profiles
// of records i and j, excluding the two self-referential coordinates
// (dist[i][i] and dist[j][j] are zero by construction, not evidence,
// and dist[i][j] appears in both profiles at swapped positions).
func profileDist(dist [][]float64, i, j int) float64 {
	s := 0.0
	for l := range dist {
		if l == i || l == j {
			continue
		}
		d := dist[i][l] - dist[j][l]
		s += d * d
	}
	return math.Sqrt(s)
}
