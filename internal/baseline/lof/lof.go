// Package lof implements the Local Outlier Factor of Breunig,
// Kriegel, Ng & Sander (SIGMOD 2000) — reference [10] of the paper,
// whose density-based scores the introduction discusses at length: in
// high dimensionality the locality LOF depends on loses meaning, which
// the benchmarks in this repository reproduce by comparing LOF's
// rare-class recall against the projection method's.
//
// Definitions (MinPts abbreviated to its conventional k):
//
//	k-distance(p)   distance to p's kth nearest neighbor
//	N_k(p)          all points within k-distance(p) (≥ k with ties)
//	reach-dist_k(p,o) = max(k-distance(o), dist(p,o))
//	lrd_k(p)        = 1 / mean_{o ∈ N_k(p)} reach-dist_k(p, o)
//	LOF_k(p)        = mean_{o ∈ N_k(p)} lrd_k(o) / lrd_k(p)
//
// Scores near 1 mark inliers; substantially larger values mark
// outliers.
package lof

import (
	"fmt"
	"math"
	"sort"

	"hido/internal/baseline/neighbors"
	"hido/internal/dataset"
)

// Options configures the LOF computation.
type Options struct {
	// K is MinPts, the neighborhood size.
	K int
	// Metric defaults to Euclidean.
	Metric neighbors.Metric
}

// Result holds the per-point LOF state.
type Result struct {
	// Scores[i] is LOF_k(i).
	Scores []float64
	// KDist[i] is k-distance(i).
	KDist []float64
	// LRD[i] is the local reachability density of i.
	LRD []float64
	// neighborhood[i] is N_k(i) including distance ties.
	neighborhoods [][]neighbors.Neighbor
}

// Compute returns LOF scores for every record. The dataset must have
// no missing values.
func Compute(ds *dataset.Dataset, opt Options) (*Result, error) {
	n := ds.N()
	if opt.K < 1 || opt.K > n-1 {
		return nil, fmt.Errorf("lof: k=%d outside [1,%d]", opt.K, n-1)
	}
	if ds.MissingCount() > 0 {
		return nil, fmt.Errorf("lof: dataset has %d missing values; impute first", ds.MissingCount())
	}
	s := neighbors.NewSearch(ds, opt.Metric)

	res := &Result{
		Scores:        make([]float64, n),
		KDist:         make([]float64, n),
		LRD:           make([]float64, n),
		neighborhoods: make([][]neighbors.Neighbor, n),
	}

	// Pass 1: k-distance and N_k (with ties: every point at exactly
	// k-distance belongs to the neighborhood).
	for i := 0; i < n; i++ {
		// Fetch a few extra neighbors to detect ties at the k-distance.
		fetch := opt.K
		var nn []neighbors.Neighbor
		for {
			if fetch > n-1 {
				fetch = n - 1
			}
			nn = s.KNN(i, fetch)
			kd := nn[opt.K-1].Dist
			if fetch == n-1 || nn[fetch-1].Dist > kd {
				// All ties at kd are inside the fetched window.
				cut := opt.K
				for cut < len(nn) && nn[cut].Dist == kd {
					cut++
				}
				nn = nn[:cut]
				break
			}
			fetch *= 2
		}
		res.KDist[i] = nn[opt.K-1].Dist
		res.neighborhoods[i] = nn
	}

	// Pass 2: local reachability density.
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, o := range res.neighborhoods[i] {
			rd := o.Dist
			if res.KDist[o.Index] > rd {
				rd = res.KDist[o.Index]
			}
			sum += rd
		}
		mean := sum / float64(len(res.neighborhoods[i]))
		if mean == 0 {
			// Duplicate-point cluster: density is infinite.
			res.LRD[i] = math.Inf(1)
		} else {
			res.LRD[i] = 1 / mean
		}
	}

	// Pass 3: LOF.
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, o := range res.neighborhoods[i] {
			sum += res.LRD[o.Index]
		}
		meanNeighborLRD := sum / float64(len(res.neighborhoods[i]))
		switch {
		case math.IsInf(res.LRD[i], 1) && math.IsInf(meanNeighborLRD, 1):
			res.Scores[i] = 1 // deep inside a duplicate cluster
		case math.IsInf(res.LRD[i], 1):
			res.Scores[i] = 0 // denser than its neighbors can measure
		default:
			res.Scores[i] = meanNeighborLRD / res.LRD[i]
		}
	}
	return res, nil
}

// TopN returns the indices of the n highest-LOF points, descending by
// score with index tie-break.
func (r *Result) TopN(n int) []int {
	idx := make([]int, len(r.Scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if r.Scores[idx[a]] != r.Scores[idx[b]] {
			return r.Scores[idx[a]] > r.Scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n:n]
}

// Neighborhood returns N_k(i) (with ties), ordered by distance.
func (r *Result) Neighborhood(i int) []neighbors.Neighbor {
	return append([]neighbors.Neighbor(nil), r.neighborhoods[i]...)
}
