package lof

import (
	"math"
	"testing"

	"hido/internal/baseline/neighbors"
	"hido/internal/dataset"
	"hido/internal/xrand"
)

// clusterWithOutlier builds a tight Gaussian cluster plus one point
// far outside it; index n is the planted outlier.
func clusterWithOutlier(n int, seed uint64) *dataset.Dataset {
	r := xrand.New(seed)
	ds := dataset.New([]string{"x", "y"}, n+1)
	for i := 0; i < n; i++ {
		ds.AppendRow([]float64{r.NormMS(0, 1), r.NormMS(0, 1)}, "in")
	}
	ds.AppendRow([]float64{15, 15}, "out")
	return ds
}

func TestOutlierScoresHigh(t *testing.T) {
	ds := clusterWithOutlier(200, 1)
	res, err := Compute(ds, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[200] < 2 {
		t.Errorf("planted outlier LOF = %v, want >> 1", res.Scores[200])
	}
	// Bulk of the cluster scores near 1.
	near1 := 0
	for i := 0; i < 200; i++ {
		if res.Scores[i] > 0.8 && res.Scores[i] < 1.5 {
			near1++
		}
	}
	if near1 < 150 {
		t.Errorf("only %d/200 inliers score near 1", near1)
	}
	if got := res.TopN(1); got[0] != 200 {
		t.Errorf("TopN(1) = %v, want [200]", got)
	}
}

func TestUniformDataScoresNearOne(t *testing.T) {
	r := xrand.New(2)
	ds := dataset.New([]string{"x", "y", "z"}, 300)
	for i := 0; i < 300; i++ {
		ds.AppendRow([]float64{r.Float64(), r.Float64(), r.Float64()}, "")
	}
	res, err := Compute(ds, Options{K: 15})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range res.Scores {
		sum += s
	}
	mean := sum / 300
	if mean < 0.9 || mean > 1.4 {
		t.Errorf("mean LOF on uniform data = %v, want ≈1", mean)
	}
}

func TestTwoDensityClusters(t *testing.T) {
	// A point on the edge of a sparse cluster should not outscore a
	// point wedged between clusters; the classic LOF motivation is that
	// a point just outside the *dense* cluster gets a high score even
	// though its absolute distance is small.
	r := xrand.New(3)
	ds := dataset.New([]string{"x", "y"}, 0)
	for i := 0; i < 100; i++ { // dense cluster at (0,0), sd 0.1
		ds.AppendRow([]float64{r.NormMS(0, 0.1), r.NormMS(0, 0.1)}, "")
	}
	for i := 0; i < 100; i++ { // sparse cluster at (10,0), sd 2
		ds.AppendRow([]float64{r.NormMS(10, 2), r.NormMS(0, 2)}, "")
	}
	// planted: just outside the dense cluster (absolute distance small)
	ds.AppendRow([]float64{1.0, 0}, "planted")
	res, err := Compute(ds, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[200] < 2 {
		t.Errorf("locality-sensitive outlier LOF = %v, want >> 1", res.Scores[200])
	}
}

func TestDuplicatePointsNoNaN(t *testing.T) {
	ds := dataset.New([]string{"x"}, 0)
	for i := 0; i < 20; i++ {
		ds.AppendRow([]float64{5}, "") // all identical
	}
	ds.AppendRow([]float64{9}, "")
	res, err := Compute(ds, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Scores {
		if math.IsNaN(s) {
			t.Errorf("Scores[%d] = NaN", i)
		}
	}
	// Points inside the duplicate cluster score 1.
	if res.Scores[0] != 1 {
		t.Errorf("duplicate-cluster LOF = %v, want 1", res.Scores[0])
	}
	// The separated point is the worst.
	if res.TopN(1)[0] != 20 {
		t.Errorf("TopN = %v, want [20]", res.TopN(1))
	}
}

func TestKDistanceTiesExpandNeighborhood(t *testing.T) {
	// Four points at identical distance from the query: with K=2 the
	// neighborhood must include all ties at the 2-distance.
	ds := dataset.New([]string{"x", "y"}, 0)
	ds.AppendRow([]float64{0, 0}, "") // query
	ds.AppendRow([]float64{1, 0}, "") // all at distance 1
	ds.AppendRow([]float64{-1, 0}, "")
	ds.AppendRow([]float64{0, 1}, "")
	ds.AppendRow([]float64{0, -1}, "")
	res, err := Compute(ds, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Neighborhood(0)); got != 4 {
		t.Errorf("neighborhood size = %d, want 4 (ties included)", got)
	}
	if res.KDist[0] != 1 {
		t.Errorf("k-distance = %v, want 1", res.KDist[0])
	}
}

func TestValidation(t *testing.T) {
	ds := clusterWithOutlier(20, 4)
	if _, err := Compute(ds, Options{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Compute(ds, Options{K: 21}); err == nil {
		t.Error("k=N accepted")
	}
	bad := ds.Clone()
	bad.SetAt(0, 0, math.NaN())
	if _, err := Compute(bad, Options{K: 2}); err == nil {
		t.Error("missing values accepted")
	}
}

func TestTopNBounds(t *testing.T) {
	ds := clusterWithOutlier(30, 5)
	res, err := Compute(ds, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TopN(1000); len(got) != 31 {
		t.Errorf("TopN over-asked returned %d", len(got))
	}
	top := res.TopN(10)
	for i := 1; i < len(top); i++ {
		if res.Scores[top[i]] > res.Scores[top[i-1]] {
			t.Error("TopN not descending")
		}
	}
}

func TestManhattanMetric(t *testing.T) {
	ds := clusterWithOutlier(100, 6)
	res, err := Compute(ds, Options{K: 5, Metric: neighbors.Manhattan})
	if err != nil {
		t.Fatal(err)
	}
	if res.TopN(1)[0] != 100 {
		t.Errorf("manhattan TopN = %v, want [100]", res.TopN(1))
	}
}

func BenchmarkLOF(b *testing.B) {
	ds := clusterWithOutlier(500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(ds, Options{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
