package lof_test

import (
	"fmt"

	"hido/internal/baseline/lof"
	"hido/internal/dataset"
)

// LOF scores near 1 mark inliers; the point far from the cluster
// scores much higher.
func ExampleCompute() {
	ds := dataset.FromRows([]string{"x", "y"}, [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}, {0.05, 0.05},
		{5, 5}, // the outlier
	})
	res, err := lof.Compute(ds, lof.Options{K: 3})
	if err != nil {
		panic(err)
	}
	top := res.TopN(1)[0]
	fmt.Println("most outlying record:", top)
	fmt.Println("its LOF is above 5:", res.Scores[top] > 5)
	// Output:
	// most outlying record: 5
	// its LOF is above 5: true
}
