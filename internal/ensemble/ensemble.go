// Package ensemble aggregates many cheap subspace searches into one
// outlier ranking — the feature-bagging / subspace-ensemble extension
// of the paper's single best-projection search (ROADMAP item 4; cf.
// Lazarevic & Kumar's feature bagging and He et al.'s unified subspace
// outlier ensemble in PAPERS.md).
//
// Each member draws a random feature bag (a subset of the data's
// dimensions), runs the existing brute-force or evolutionary search
// restricted to that bag (core.BruteForceOptions.Dims /
// core.EvoOptions.Dims), and scores every record by the most negative
// sparsity coefficient among its covering projections. The per-member
// evidence columns are then aggregated by a pluggable Combiner.
//
// Determinism matches the rest of the library: bags and member seeds
// are derived serially from the master seed before any parallel work
// starts, members run in fixed result slots on a shared worker pool
// (surplus workers fan out inside each member's search), all members
// share one projection-count cache, and combiners are deterministic —
// so ensemble scores are bit-identical for a given seed at every
// worker count.
package ensemble

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hido/internal/core"
	"hido/internal/grid"
	"hido/internal/obs"
	"hido/internal/xrand"
)

// Algo selects the per-member search algorithm.
type Algo int

const (
	// EvoAlgo runs the Figure 3 evolutionary search per member — the
	// default: cheap per member, and member diversity compensates for
	// the stochastic misses of any single run.
	EvoAlgo Algo = iota
	// BruteAlgo enumerates each bag exhaustively. With small bags the
	// per-member space C(bag, k)·phi^k stays tractable even when the
	// full enumeration would not be.
	BruteAlgo
)

func (a Algo) String() string {
	switch a {
	case EvoAlgo:
		return "evo"
	case BruteAlgo:
		return "brute"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// ParseAlgo maps the CLI/API spelling to an Algo.
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "evo", "":
		return EvoAlgo, nil
	case "brute":
		return BruteAlgo, nil
	default:
		return 0, fmt.Errorf("ensemble: unknown algo %q (want evo or brute)", s)
	}
}

// Options configures an ensemble fit. Zero values select the
// documented defaults.
type Options struct {
	// Members is the number of independent searches (default 10).
	Members int
	// BagSize is the number of dimensions each member's feature bag
	// samples. Zero selects the default (D+1)/2 clamped to [K, D]; a
	// bag of D dims disables subspace sampling (every member sees all
	// features and differs only by seed — pointless for brute force,
	// where all members would then be identical).
	BagSize int
	// Algo selects the per-member search (default EvoAlgo).
	Algo Algo
	// K is the projection dimensionality; M the number of projections
	// each member retains. Required.
	K, M int
	// MinCoverage is forwarded to the member searches (see
	// core.EvoOptions.MinCoverage).
	MinCoverage int
	// Combiner aggregates the evidence (default RankCombiner).
	Combiner Combiner
	// Workers sizes the pool: up to Members searches run concurrently
	// and surplus workers fan out inside each search. Zero runs
	// serially; negative selects GOMAXPROCS. Scores are bit-identical
	// at every worker count.
	Workers int
	// Seed drives bag sampling and the member searches; runs are
	// reproducible per seed. Member r's search seed is derived with the
	// golden-ratio increment, so member 0 of a 1-member ensemble runs
	// with exactly this seed (the differential tests rely on it).
	Seed uint64
	// Cache optionally shares a projection-count cache across members
	// (auto-created when nil and more than one member runs). Cube keys
	// are global to the detector, so members with different bags still
	// share counts.
	Cache *grid.Cache
	// PopSize, MaxGenerations, and Patience tune the evolutionary
	// member searches (ignored under BruteAlgo); zero keeps the
	// core defaults.
	PopSize, MaxGenerations, Patience int
	// Observer, when set, receives each member's events under derived
	// run IDs ("ens.m0", "ens.m1", …) plus one aggregate summary under
	// the parent ID. Implementations must be safe for concurrent use.
	Observer obs.Observer
	// RunID labels observer events (default "ens").
	RunID string
}

// Member is one fitted ensemble member: its feature bag, its derived
// seed, and the projections its search retained.
type Member struct {
	// Dims is the member's feature bag, strictly increasing.
	Dims []int
	// Seed is the member's derived search seed (meaningful under
	// EvoAlgo; brute force is deterministic without one).
	Seed uint64
	// Projections are the member's retained sparse projections, most
	// negative sparsity first.
	Projections []core.Projection
	// Evaluations counts the member search's distinct fitness
	// computations.
	Evaluations int
}

// Result is a fitted ensemble.
type Result struct {
	// Members holds the fitted members in fixed order.
	Members []Member
	// Evidence[r][i] is member r's outlierness for record i: the
	// negated Result.Score, so 0 means "covered by nothing" and larger
	// means more outlying.
	Evidence [][]float64
	// Combined is the per-record ensemble score (higher = more
	// outlying), Evidence aggregated by the configured Combiner.
	Combined []float64
	// Evaluations sums the member searches' distinct fitness
	// computations; Elapsed is wall clock.
	Evaluations int
	Elapsed     time.Duration
}

// Ranked returns record indices ordered most-outlying first, ties
// broken by record index (ascending) so the ordering is total and
// deterministic under the heavy ties rank aggregation produces.
func (r *Result) Ranked() []int {
	idx := make([]int, len(r.Combined))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if r.Combined[idx[a]] != r.Combined[idx[b]] {
			return r.Combined[idx[a]] > r.Combined[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

func (o Options) withDefaults(d *core.Detector) Options {
	if o.Members == 0 {
		o.Members = 10
	}
	if o.BagSize == 0 {
		o.BagSize = (d.D() + 1) / 2
		if o.BagSize < o.K {
			o.BagSize = o.K
		}
	}
	if o.RunID == "" {
		o.RunID = "ens"
	}
	return o
}

func validateOptions(d *core.Detector, opt Options) error {
	if opt.Members < 1 {
		return fmt.Errorf("ensemble: members=%d must be positive", opt.Members)
	}
	if opt.BagSize < 0 || opt.BagSize > d.D() {
		return fmt.Errorf("ensemble: bag size %d outside [1,%d]", opt.BagSize, d.D())
	}
	if opt.BagSize != 0 && opt.BagSize < opt.K {
		return fmt.Errorf("ensemble: bag size %d smaller than projection dimensionality k=%d", opt.BagSize, opt.K)
	}
	switch opt.Algo {
	case EvoAlgo, BruteAlgo:
	default:
		return fmt.Errorf("ensemble: unknown algo %v", opt.Algo)
	}
	switch opt.Combiner {
	case RankCombiner, ZScoreCombiner, MaxCombiner:
	default:
		return fmt.Errorf("ensemble: unknown combiner %v", opt.Combiner)
	}
	return nil
}

// SampleBags draws members' feature bags: sorted BagSize-subsets of
// [0, D), sampled serially from a stream derived from seed (separate
// from the member search streams, so adding members never perturbs
// existing bags or searches). A full-size bag comes out as [0..D),
// which the core searches treat bit-identically to "no restriction".
func SampleBags(d, members, bagSize int, seed uint64) [][]int {
	// Offset the stream so a bag sampler never aliases a member search
	// seeded with the same master seed.
	rng := xrand.New(seed ^ 0xba9b0a6e35f3f0c7)
	bags := make([][]int, members)
	for r := range bags {
		bag := rng.Sample(d, bagSize)
		sort.Ints(bag)
		bags[r] = bag
	}
	return bags
}

// memberSeed derives member r's search seed with the golden-ratio
// increment (the EvolutionaryRestarts scheme), so member 0 keeps the
// base seed and successive members never collide.
func memberSeed(base uint64, r int) uint64 {
	return base + uint64(r)*0x9e3779b97f4a7c15
}

// Fit runs the ensemble against a fitted detector and returns the
// per-member evidence and combined scores. Scores are bit-identical
// for a fixed seed at every worker count.
func Fit(d *core.Detector, opt Options) (*Result, error) {
	if opt.Members < 0 {
		return nil, fmt.Errorf("ensemble: members=%d must be positive", opt.Members)
	}
	if opt.Cache != nil && opt.Cache.Index() != d.Index {
		return nil, fmt.Errorf("ensemble: count cache was built over a different index")
	}
	opt = opt.withDefaults(d)
	if err := validateOptions(d, opt); err != nil {
		return nil, err
	}
	start := time.Now()

	if opt.Cache == nil && opt.Members > 1 {
		opt.Cache = grid.NewCache(d.Index)
	}
	bags := SampleBags(d.D(), opt.Members, opt.BagSize, opt.Seed)

	w := resolveWorkers(opt.Workers)
	outer := w
	if outer > opt.Members {
		outer = opt.Members
	}
	inner := w / outer
	if inner < 1 {
		inner = 1
	}

	res := &Result{
		Members:  make([]Member, opt.Members),
		Evidence: make([][]float64, opt.Members),
	}
	errs := make([]error, opt.Members)
	parallelFor(opt.Members, outer, func(r int) {
		bag := bags[r]
		seed := memberSeed(opt.Seed, r)
		runID := fmt.Sprintf("%s.m%d", opt.RunID, r)
		var sr *core.Result
		var err error
		switch opt.Algo {
		case BruteAlgo:
			sr, err = d.BruteForce(core.BruteForceOptions{
				K: opt.K, M: opt.M, Dims: bag,
				MinCoverage: opt.MinCoverage,
				Workers:     inner,
				Cache:       opt.Cache,
				Observer:    opt.Observer,
				RunID:       runID,
			})
		default:
			sr, err = d.Evolutionary(core.EvoOptions{
				K: opt.K, M: opt.M, Dims: bag,
				MinCoverage:    opt.MinCoverage,
				PopSize:        opt.PopSize,
				MaxGenerations: opt.MaxGenerations,
				Patience:       opt.Patience,
				Workers:        inner,
				Cache:          opt.Cache,
				Seed:           seed,
				Observer:       opt.Observer,
				RunID:          runID,
			})
		}
		if err != nil {
			errs[r] = err
			return
		}
		res.Members[r] = Member{
			Dims:        bag,
			Seed:        seed,
			Projections: sr.Projections,
			Evaluations: sr.Evaluations,
		}
		// Evidence: flip the "most negative covering sparsity" score to
		// an outlierness (0 = uncovered, larger = sparser subspace).
		col := make([]float64, d.N())
		for i := range col {
			col[i] = -sr.Score(d, i)
		}
		res.Evidence[r] = col
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	for _, m := range res.Members {
		res.Evaluations += m.Evaluations
	}
	combined, err := Combine(opt.Combiner, res.Evidence)
	if err != nil {
		return nil, err
	}
	res.Combined = combined
	res.Elapsed = time.Since(start)
	notifySummary(opt, res, d)
	return res, nil
}

// notifySummary emits the aggregate terminal record: the sum of the
// member searches, labeled "ensemble" under the parent run ID.
func notifySummary(opt Options, res *Result, d *core.Detector) {
	if opt.Observer == nil {
		return
	}
	distinct := map[string]bool{}
	for _, m := range res.Members {
		for _, p := range m.Projections {
			distinct[p.Cube.Key()] = true
		}
	}
	opt.Observer.OnDone(obs.SummaryEvent{
		Run:         opt.RunID,
		Algo:        "ensemble",
		Evaluations: res.Evaluations,
		Projections: len(distinct),
		Elapsed:     res.Elapsed,
	})
}

// resolveWorkers and parallelFor mirror internal/core's pool helpers
// (unexported there; the ensemble layer needs the same semantics for
// its outer member loop).
func resolveWorkers(w int) int {
	switch {
	case w == 0:
		return 1
	case w < 0:
		return runtime.GOMAXPROCS(0)
	}
	return w
}

func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for t := 0; t < workers; t++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
