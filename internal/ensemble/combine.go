package ensemble

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Combiner selects how per-member outlierness evidence is aggregated
// into one ensemble score per record. All combiners emit scores where
// higher means more outlying, are invariant under member permutation,
// and map finite evidence to finite scores.
type Combiner int

const (
	// RankCombiner averages each record's normalized ECDF mid-rank
	// across members. Ranks discard the members' incomparable raw
	// scales (a sparsity of −4 in a 3-dim bag is not the same evidence
	// as −4 in a 12-dim bag), which is why rank aggregation is the
	// default in the subspace-ensemble literature — and the default
	// here. Scores lie in [0, 1].
	RankCombiner Combiner = iota
	// ZScoreCombiner standardizes each member's evidence to zero mean
	// and unit variance, then averages. A member with zero variance
	// (e.g. no projection covers anything) contributes 0 — no
	// information, no vote.
	ZScoreCombiner
	// MaxCombiner takes the strongest single-member evidence. Raw
	// sparsity coefficients are already normalized deviations (Eq. 1),
	// so the max is meaningful across bags; it is also the combiner
	// under which a 1-member ensemble reproduces its single search
	// exactly, which the differential tests exploit.
	MaxCombiner
)

func (c Combiner) String() string {
	switch c {
	case RankCombiner:
		return "rank"
	case ZScoreCombiner:
		return "zscore"
	case MaxCombiner:
		return "max"
	default:
		return fmt.Sprintf("Combiner(%d)", int(c))
	}
}

// ParseCombiner maps the CLI/API spelling to a Combiner.
func ParseCombiner(s string) (Combiner, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "rank", "":
		return RankCombiner, nil
	case "zscore", "z-score", "z":
		return ZScoreCombiner, nil
	case "max":
		return MaxCombiner, nil
	default:
		return 0, fmt.Errorf("ensemble: unknown combiner %q (want rank, zscore, or max)", s)
	}
}

// Combine aggregates evidence[member][record] into one score per
// record, higher = more outlying. Rows must have equal length; an
// empty evidence set yields an empty score slice.
func Combine(kind Combiner, evidence [][]float64) ([]float64, error) {
	if len(evidence) == 0 {
		return nil, nil
	}
	n := len(evidence[0])
	for r, col := range evidence {
		if len(col) != n {
			return nil, fmt.Errorf("ensemble: member %d has %d records, member 0 has %d", r, len(col), n)
		}
	}
	out := make([]float64, n)
	switch kind {
	case MaxCombiner:
		for i := range out {
			out[i] = math.Inf(-1)
		}
		for _, col := range evidence {
			for i, x := range col {
				if x > out[i] {
					out[i] = x
				}
			}
		}
	case ZScoreCombiner:
		for _, col := range evidence {
			mu, sigma := MeanStd(col)
			for i, x := range col {
				out[i] += zScore(x, mu, sigma)
			}
		}
		for i := range out {
			out[i] /= float64(len(evidence))
		}
	case RankCombiner:
		sorted := make([]float64, n)
		for _, col := range evidence {
			copy(sorted, col)
			sort.Float64s(sorted)
			for i, x := range col {
				out[i] += RankWithin(sorted, x)
			}
		}
		for i := range out {
			out[i] /= float64(len(evidence))
		}
	default:
		return nil, fmt.Errorf("ensemble: unknown combiner %v", kind)
	}
	return out, nil
}

// MeanStd returns the mean and population standard deviation of v —
// the z-score calibration a served ensemble model persists per member.
func MeanStd(v []float64) (mu, sigma float64) {
	if len(v) == 0 {
		return 0, 0
	}
	for _, x := range v {
		mu += x
	}
	mu /= float64(len(v))
	for _, x := range v {
		d := x - mu
		sigma += d * d
	}
	return mu, math.Sqrt(sigma / float64(len(v)))
}

// zScore standardizes one value; a degenerate member (sigma == 0)
// carries no information and contributes 0.
func zScore(x, mu, sigma float64) float64 {
	if sigma == 0 {
		return 0
	}
	return (x - mu) / sigma
}

// RankWithin returns the normalized ECDF mid-rank of x within the
// ascending-sorted sample v: ties share the average of their rank
// positions (so heavy tie groups — the norm under rank aggregation —
// get one deterministic value), and the result is scaled to [0, 1].
// The same formula serves both fit time (x is an element of v) and
// serving time (x is a new observation ranked against the stored
// training sample); out-of-range queries clamp to the bounds.
func RankWithin(v []float64, x float64) float64 {
	n := len(v)
	if n == 0 {
		return 0.5
	}
	less := sort.SearchFloat64s(v, x)
	equal := sort.Search(n, func(i int) bool { return v[i] > x }) - less
	// Mid-rank among n samples, 1-based: ranks less+1 .. less+equal
	// average to less + (equal+1)/2. A new value (equal == 0) sits half
	// a rank past its insertion point.
	rank := float64(less) + (float64(equal)+1)/2
	if n == 1 {
		return 0.5
	}
	u := (rank - 1) / float64(n-1)
	return math.Max(0, math.Min(1, u))
}
