package ensemble

import (
	"math"
	"testing"

	"hido/internal/xrand"
)

// FuzzCombine feeds pseudo-random evidence matrices (shaped and filled
// from the fuzzed seed) to every combiner and asserts the combiner
// contract: finite evidence maps to finite scores, rank scores stay in
// [0,1], and permuting the members never changes the combined scores.
func FuzzCombine(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(8))
	f.Add(uint64(42), uint8(1), uint8(1))
	f.Add(uint64(7), uint8(10), uint8(2))
	f.Add(uint64(0), uint8(4), uint8(50))
	f.Fuzz(func(t *testing.T, seed uint64, membersRaw, recordsRaw uint8) {
		members := int(membersRaw%12) + 1
		records := int(recordsRaw%64) + 1
		rng := xrand.New(seed)
		evidence := make([][]float64, members)
		for r := range evidence {
			col := make([]float64, records)
			for i := range col {
				// Mix scales, exact ties, and zeros — the shapes member
				// evidence actually takes (0 = uncovered is common).
				switch rng.Intn(4) {
				case 0:
					col[i] = 0
				case 1:
					col[i] = float64(rng.Intn(5))
				default:
					col[i] = rng.Float64() * math.Exp(float64(rng.Intn(8)))
				}
			}
			evidence[r] = col
		}

		permuted := make([][]float64, members)
		copy(permuted, evidence)
		prm := rng.Perm(members)
		for i, j := range prm {
			permuted[i] = evidence[j]
		}

		for _, kind := range []Combiner{RankCombiner, ZScoreCombiner, MaxCombiner} {
			got, err := Combine(kind, evidence)
			if err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			if len(got) != records {
				t.Fatalf("%v: %d scores for %d records", kind, len(got), records)
			}
			for i, s := range got {
				if math.IsNaN(s) || math.IsInf(s, 0) {
					t.Fatalf("%v: non-finite score %v at record %d", kind, s, i)
				}
				if kind == RankCombiner && (s < 0 || s > 1) {
					t.Fatalf("rank: score %v outside [0,1] at record %d", s, i)
				}
			}
			again, err := Combine(kind, permuted)
			if err != nil {
				t.Fatalf("%v permuted: %v", kind, err)
			}
			for i := range got {
				// Averaging combiners sum member contributions in member
				// order, so permutation invariance holds up to float
				// summation order, not bit-exactly (member order is fixed
				// inside an ensemble, so this never weakens the ensemble's
				// own determinism contract).
				diff := math.Abs(got[i] - again[i])
				scale := math.Max(math.Abs(got[i]), math.Abs(again[i]))
				if diff > 1e-9*math.Max(scale, 1) {
					t.Fatalf("%v: member permutation changed score %d: %v vs %v",
						kind, i, got[i], again[i])
				}
			}
		}
	})
}
