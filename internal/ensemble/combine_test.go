package ensemble

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestParseCombiner(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Combiner
		ok   bool
	}{
		{"rank", RankCombiner, true},
		{"", RankCombiner, true},
		{"ZSCORE", ZScoreCombiner, true},
		{"z-score", ZScoreCombiner, true},
		{"max", MaxCombiner, true},
		{"median", 0, false},
	} {
		got, err := ParseCombiner(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseCombiner(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// Hand-computed fixtures for each combiner.
func TestCombineFixtures(t *testing.T) {
	evidence := [][]float64{
		{0, 1, 2, 3},
		{4, 0, 0, 2},
	}

	t.Run("max", func(t *testing.T) {
		got, err := Combine(MaxCombiner, evidence)
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{4, 1, 2, 3}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("max[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	})

	t.Run("rank", func(t *testing.T) {
		got, err := Combine(RankCombiner, evidence)
		if err != nil {
			t.Fatal(err)
		}
		// Member 0 ranks (n=4, distinct): 0→0, 1→1/3, 2→2/3, 3→1.
		// Member 1 values {4,0,0,2}: the two zeros mid-rank to 1.5 →
		// u=1/6; 2 → rank 3 → u=2/3; 4 → rank 4 → u=1.
		want := []float64{
			(0 + 1.0) / 2,
			(1.0/3 + 1.0/6) / 2,
			(2.0/3 + 1.0/6) / 2,
			(1.0 + 2.0/3) / 2,
		}
		for i := range want {
			if !almost(got[i], want[i]) {
				t.Fatalf("rank[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	})

	t.Run("zscore", func(t *testing.T) {
		got, err := Combine(ZScoreCombiner, evidence)
		if err != nil {
			t.Fatal(err)
		}
		z := func(x, mu, sd float64) float64 { return (x - mu) / sd }
		mu0, sd0 := MeanStd(evidence[0])
		mu1, sd1 := MeanStd(evidence[1])
		for i := range got {
			want := (z(evidence[0][i], mu0, sd0) + z(evidence[1][i], mu1, sd1)) / 2
			if !almost(got[i], want) {
				t.Fatalf("zscore[%d] = %v, want %v", i, got[i], want)
			}
		}
	})
}

// A member with constant evidence must contribute nothing under
// z-score (no information) and a flat mid-rank under rank.
func TestCombineDegenerateMember(t *testing.T) {
	evidence := [][]float64{
		{5, 5, 5},
		{0, 1, 2},
	}
	z, err := Combine(ZScoreCombiner, evidence)
	if err != nil {
		t.Fatal(err)
	}
	mu, sd := MeanStd(evidence[1])
	for i := range z {
		want := (evidence[1][i] - mu) / sd / 2
		if !almost(z[i], want) {
			t.Fatalf("zscore[%d] = %v, want %v (constant member must add 0)", i, z[i], want)
		}
	}
	r, err := Combine(RankCombiner, evidence)
	if err != nil {
		t.Fatal(err)
	}
	// Constant member: every record mid-ranks to 2 of 3 → u = 0.5.
	want := []float64{(0.5 + 0) / 2, (0.5 + 0.5) / 2, (0.5 + 1) / 2}
	for i := range want {
		if !almost(r[i], want[i]) {
			t.Fatalf("rank[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

// All-tied evidence — the distribution rank aggregation must survive.
func TestCombineAllTies(t *testing.T) {
	evidence := [][]float64{{1, 1, 1, 1}}
	for _, kind := range []Combiner{RankCombiner, ZScoreCombiner, MaxCombiner} {
		got, err := Combine(kind, evidence)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(got); i++ {
			if got[i] != got[0] {
				t.Fatalf("%v: tied inputs got distinct scores %v", kind, got)
			}
		}
	}
}

func TestCombineRagged(t *testing.T) {
	if _, err := Combine(RankCombiner, [][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged evidence accepted")
	}
}

func TestCombineEmpty(t *testing.T) {
	got, err := Combine(RankCombiner, nil)
	if err != nil || got != nil {
		t.Fatalf("empty evidence: %v, %v", got, err)
	}
}

func TestRankWithin(t *testing.T) {
	v := []float64{1, 2, 2, 4}
	for _, tc := range []struct {
		x, want float64
	}{
		{1, 0},            // rank 1 → (1-1)/3
		{2, 0.5},          // mid-rank 2.5 → 1.5/3
		{4, 1},            // rank 4 → 3/3
		{3, 2.5 / 3},      // new interior value: rank 3.5
		{0, 0},            // below the sample: clamps to 0
		{5, 1},            // above the sample: clamps to 1
		{math.Inf(1), 1},  // serving-time extreme stays bounded
		{math.Inf(-1), 0}, // ditto
	} {
		if got := RankWithin(v, tc.x); !almost(got, tc.want) {
			t.Errorf("RankWithin(%v, %v) = %v, want %v", v, tc.x, got, tc.want)
		}
	}
	if got := RankWithin([]float64{7}, 7); got != 0.5 {
		t.Errorf("single-sample rank = %v, want 0.5", got)
	}
	if got := RankWithin(nil, 3); got != 0.5 {
		t.Errorf("empty-sample rank = %v, want 0.5", got)
	}
}

func TestMeanStd(t *testing.T) {
	mu, sd := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(mu, 5) || !almost(sd, 2) {
		t.Fatalf("MeanStd = %v, %v, want 5, 2", mu, sd)
	}
	mu, sd = MeanStd(nil)
	if mu != 0 || sd != 0 {
		t.Fatalf("empty MeanStd = %v, %v", mu, sd)
	}
}
