package ensemble

import (
	"strings"
	"testing"

	"hido/internal/core"
	"hido/internal/dataset"
	"hido/internal/synth"
)

// testDetector builds a small planted data set with correlated groups
// so restricted searches have real sparse structure to find.
func testDetector(t *testing.T, n, d, phi int, seed uint64) (*core.Detector, *dataset.Dataset) {
	t.Helper()
	ds, err := synth.Generate(synth.Config{
		Name: "ens-test", N: n, D: d,
		Groups:   []synth.Group{{Dims: []int{0, 1, 2}}, {Dims: []int{3, 4}}},
		Outliers: 3,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewDetector(ds, phi), ds
}

func fitOrDie(t *testing.T, det *core.Detector, opt Options) *Result {
	t.Helper()
	res, err := Fit(det, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Ensemble scores must be bit-identical for a fixed seed at workers
// 1, 4, and 8 — run under -race in CI.
func TestEnsembleWorkerDeterminism(t *testing.T) {
	det, _ := testDetector(t, 220, 8, 4, 41)
	for _, algo := range []Algo{EvoAlgo, BruteAlgo} {
		for _, comb := range []Combiner{RankCombiner, ZScoreCombiner, MaxCombiner} {
			opt := Options{
				Members: 6, BagSize: 5, Algo: algo, K: 2, M: 5,
				Combiner: comb, Seed: 99,
				PopSize: 24, MaxGenerations: 25,
			}
			base := fitOrDie(t, det, opt)
			for _, w := range []int{4, 8} {
				o := opt
				o.Workers = w
				got := fitOrDie(t, det, o)
				for i := range base.Combined {
					if base.Combined[i] != got.Combined[i] {
						t.Fatalf("%v/%v: workers=%d changed score[%d]: %v vs %v",
							algo, comb, w, i, base.Combined[i], got.Combined[i])
					}
				}
				for r := range base.Evidence {
					for i := range base.Evidence[r] {
						if base.Evidence[r][i] != got.Evidence[r][i] {
							t.Fatalf("%v/%v: workers=%d changed evidence[%d][%d]",
								algo, comb, w, r, i)
						}
					}
				}
			}
		}
	}
}

// Seed sweep: distinct seeds must produce distinct bags (with
// overwhelming probability at this shape), same seed identical runs.
func TestEnsembleSeedReproducibility(t *testing.T) {
	det, _ := testDetector(t, 200, 8, 3, 43)
	opt := Options{Members: 4, BagSize: 4, K: 2, M: 4, Seed: 7,
		PopSize: 20, MaxGenerations: 20}
	a := fitOrDie(t, det, opt)
	b := fitOrDie(t, det, opt)
	for i := range a.Combined {
		if a.Combined[i] != b.Combined[i] {
			t.Fatalf("same seed, different score[%d]", i)
		}
	}
	opt.Seed = 8
	c := fitOrDie(t, det, opt)
	differs := false
	for r := range a.Members {
		if len(a.Members[r].Dims) != len(c.Members[r].Dims) {
			differs = true
			break
		}
		for j := range a.Members[r].Dims {
			if a.Members[r].Dims[j] != c.Members[r].Dims[j] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("seeds 7 and 8 drew identical bags for every member")
	}
}

// Differential satellite: a 1-member ensemble over the full feature
// set must reproduce the corresponding single search exactly — brute
// and evo, at workers 1, 4, and 8 (run under -race in CI). Under the
// max combiner the combined score is exactly the negated single-search
// score.
func TestSingleMemberDifferential(t *testing.T) {
	det, _ := testDetector(t, 240, 7, 4, 47)
	const k, m = 3, 6

	singleBrute, err := det.BruteForce(core.BruteForceOptions{K: k, M: m})
	if err != nil {
		t.Fatal(err)
	}
	singleEvo, err := det.Evolutionary(core.EvoOptions{K: k, M: m, Seed: 5,
		PopSize: 30, MaxGenerations: 40})
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{1, 4, 8} {
		for _, tc := range []struct {
			algo   Algo
			single *core.Result
		}{
			{BruteAlgo, singleBrute},
			{EvoAlgo, singleEvo},
		} {
			ens := fitOrDie(t, det, Options{
				Members: 1, BagSize: det.D(), Algo: tc.algo,
				K: k, M: m, Combiner: MaxCombiner, Seed: 5, Workers: w,
				PopSize: 30, MaxGenerations: 40,
			})
			if len(ens.Members[0].Projections) != len(tc.single.Projections) {
				t.Fatalf("%v w=%d: member retained %d projections, single %d",
					tc.algo, w, len(ens.Members[0].Projections), len(tc.single.Projections))
			}
			for pi, p := range ens.Members[0].Projections {
				sp := tc.single.Projections[pi]
				if !p.Cube.Equal(sp.Cube) || p.Sparsity != sp.Sparsity || p.Count != sp.Count {
					t.Fatalf("%v w=%d: projection %d differs: %v vs %v", tc.algo, w, pi, p, sp)
				}
			}
			for i := range ens.Combined {
				if ens.Combined[i] != -tc.single.Score(det, i) {
					t.Fatalf("%v w=%d: score[%d] = %v, single = %v",
						tc.algo, w, i, ens.Combined[i], tc.single.Score(det, i))
				}
			}
		}
	}
}

// Every member must honor its bag: no retained projection may
// constrain a dimension outside it.
func TestMembersHonorBags(t *testing.T) {
	det, _ := testDetector(t, 200, 9, 3, 53)
	res := fitOrDie(t, det, Options{Members: 8, BagSize: 4, K: 2, M: 5, Seed: 3,
		PopSize: 20, MaxGenerations: 25})
	for r, m := range res.Members {
		if len(m.Dims) != 4 {
			t.Fatalf("member %d bag size %d, want 4", r, len(m.Dims))
		}
		inBag := map[int]bool{}
		for _, j := range m.Dims {
			inBag[j] = true
		}
		for _, p := range m.Projections {
			for _, dim := range p.Cube.Dims() {
				if !inBag[dim] {
					t.Fatalf("member %d projection %v constrains dim %d outside bag %v",
						r, p.Cube, dim, m.Dims)
				}
			}
		}
	}
}

// SampleBags must be serially derived: the first r bags never change
// when more members are added.
func TestSampleBagsPrefixStable(t *testing.T) {
	a := SampleBags(12, 3, 5, 77)
	b := SampleBags(12, 9, 5, 77)
	for r := range a {
		for j := range a[r] {
			if a[r][j] != b[r][j] {
				t.Fatalf("bag %d changed when members grew: %v vs %v", r, a[r], b[r])
			}
		}
	}
	for _, bag := range b {
		for j := 1; j < len(bag); j++ {
			if bag[j] <= bag[j-1] {
				t.Fatalf("bag %v not strictly increasing", bag)
			}
		}
	}
}

func TestEnsembleRanked(t *testing.T) {
	r := &Result{Combined: []float64{0.2, 0.9, 0.2, 0.5}}
	got := r.Ranked()
	want := []int{1, 3, 0, 2} // ties broken by ascending index
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranked() = %v, want %v", got, want)
		}
	}
}

func TestEnsembleValidation(t *testing.T) {
	det, _ := testDetector(t, 120, 6, 3, 59)
	for _, tc := range []struct {
		name string
		opt  Options
		want string
	}{
		{"neg members", Options{Members: -1, K: 2, M: 3}, "members"},
		{"bag too big", Options{Members: 2, BagSize: 7, K: 2, M: 3}, "bag size"},
		{"bag under k", Options{Members: 2, BagSize: 2, K: 3, M: 3}, "bag size"},
		{"bad algo", Options{Members: 2, K: 2, M: 3, Algo: Algo(9)}, "algo"},
		{"bad combiner", Options{Members: 2, K: 2, M: 3, Combiner: Combiner(9)}, "combiner"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Fit(det, tc.opt)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// Detection sanity: on the planted generator the ensemble's top-ranked
// records should include the planted outliers.
func TestEnsembleFindsPlanted(t *testing.T) {
	det, ds := testDetector(t, 300, 10, 4, 61)
	res := fitOrDie(t, det, Options{Members: 12, BagSize: 5, K: 2, M: 10, Seed: 13,
		PopSize: 30, MaxGenerations: 40})
	truth := synth.OutlierIndices(ds)
	top := res.Ranked()[:len(truth)*4]
	if rec := synth.Recall(top, truth); rec < 2.0/3 {
		t.Fatalf("recall@%d = %v, want >= 2/3 (truth %v, top %v)", len(top), rec, truth, top[:10])
	}
}
