package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		s := New(n)
		if s.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, s.Len())
		}
		if s.Count() != 0 {
			t.Errorf("New(%d).Count() = %d, want 0", n, s.Count())
		}
		if s.Any() {
			t.Errorf("New(%d).Any() = true", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		s.Clear(i)
		if s.Test(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"Set(10)":   func() { s.Set(10) },
		"Set(-1)":   func() { s.Set(-1) },
		"Test(10)":  func() { s.Test(10) },
		"Clear(10)": func() { s.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCount(t *testing.T) {
	s := New(200)
	want := 0
	for i := 0; i < 200; i += 3 {
		s.Set(i)
		want++
	}
	if got := s.Count(); got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
}

func TestFillRespectsCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if got := s.Count(); got != n {
			t.Errorf("Fill on capacity %d: Count() = %d", n, got)
		}
	}
}

func TestResetClearsAll(t *testing.T) {
	s := New(100)
	s.Fill()
	s.Reset()
	if s.Any() {
		t.Error("Any() = true after Reset")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromIndices(100, []int{1, 5, 99})
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Set(50)
	if s.Test(50) {
		t.Error("mutating clone changed original")
	}
}

func TestCopyFrom(t *testing.T) {
	s := FromIndices(70, []int{3, 69})
	d := New(70)
	d.CopyFrom(s)
	if !d.Equal(s) {
		t.Error("CopyFrom did not copy contents")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(64), New(65)
	for name, fn := range map[string]func(){
		"And":            func() { a.And(b) },
		"Or":             func() { a.Or(b) },
		"Xor":            func() { a.Xor(b) },
		"AndNot":         func() { a.AndNot(b) },
		"IntersectCount": func() { a.IntersectCount(b) },
		"CopyFrom":       func() { a.CopyFrom(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched capacity did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBooleanOps(t *testing.T) {
	a := FromIndices(100, []int{1, 2, 3, 50, 99})
	b := FromIndices(100, []int{2, 3, 4, 99})

	and := a.Clone()
	and.And(b)
	if got, want := and.Indices(), []int{2, 3, 99}; !equalInts(got, want) {
		t.Errorf("And = %v, want %v", got, want)
	}

	or := a.Clone()
	or.Or(b)
	if got, want := or.Indices(), []int{1, 2, 3, 4, 50, 99}; !equalInts(got, want) {
		t.Errorf("Or = %v, want %v", got, want)
	}

	andnot := a.Clone()
	andnot.AndNot(b)
	if got, want := andnot.Indices(), []int{1, 50}; !equalInts(got, want) {
		t.Errorf("AndNot = %v, want %v", got, want)
	}

	xor := a.Clone()
	xor.Xor(b)
	if got, want := xor.Indices(), []int{1, 4, 50}; !equalInts(got, want) {
		t.Errorf("Xor = %v, want %v", got, want)
	}
}

func TestIntersectCountMatchesAnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		want := a.Clone()
		want.And(b)
		if got := a.IntersectCount(b); got != want.Count() {
			t.Fatalf("n=%d: IntersectCount = %d, want %d", n, got, want.Count())
		}
	}
}

func TestAndFromMatchesAndPlusCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		want := a.Clone()
		want.And(b)
		dst := New(n)
		dst.Fill() // stale contents must be overwritten, not merged
		if got := dst.AndFrom(a, b); got != want.Count() {
			t.Fatalf("n=%d: AndFrom count = %d, want %d", n, got, want.Count())
		}
		if !dst.Equal(want) {
			t.Fatalf("n=%d: AndFrom words differ from And", n)
		}
	}
	// Aliasing dst with an operand is allowed: a.AndFrom(a, b) == a.And(b).
	a, b := FromIndices(100, []int{1, 4, 50, 99}), FromIndices(100, []int{4, 50, 80})
	want := a.Clone()
	want.And(b)
	if got := a.AndFrom(a, b); got != 2 || !a.Equal(want) {
		t.Errorf("aliased AndFrom = %d (%v), want 2 (%v)", got, a.Indices(), want.Indices())
	}
}

func TestAndFromCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AndFrom across capacities did not panic")
		}
	}()
	New(64).AndFrom(New(64), New(128))
}

func TestIndicesRoundTrip(t *testing.T) {
	idx := []int{0, 7, 63, 64, 128, 199}
	s := FromIndices(200, idx)
	if got := s.Indices(); !equalInts(got, idx) {
		t.Errorf("Indices() = %v, want %v", got, idx)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(100, []int{10, 20, 30})
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !equalInts(seen, []int{10, 20}) {
		t.Errorf("ForEach early stop saw %v", seen)
	}
}

func TestNextSet(t *testing.T) {
	s := FromIndices(200, []int{5, 64, 190})
	cases := []struct{ from, want int }{
		{-3, 5}, {0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 190},
		{190, 190}, {191, -1}, {200, -1}, {500, -1},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestIntersectCountMany(t *testing.T) {
	a := FromIndices(128, []int{1, 2, 3, 4, 100})
	b := FromIndices(128, []int{2, 3, 4, 100, 101})
	c := FromIndices(128, []int{3, 4, 100, 127})
	if got := IntersectCountMany(nil); got != 0 {
		t.Errorf("IntersectCountMany(nil) = %d", got)
	}
	if got := IntersectCountMany([]*Set{a}); got != 5 {
		t.Errorf("one set: %d, want 5", got)
	}
	if got := IntersectCountMany([]*Set{a, b}); got != 4 {
		t.Errorf("two sets: %d, want 4", got)
	}
	if got := IntersectCountMany([]*Set{a, b, c}); got != 3 {
		t.Errorf("three sets: %d, want 3", got)
	}
}

func TestIntersectInto(t *testing.T) {
	a := FromIndices(64, []int{1, 2, 3})
	b := FromIndices(64, []int{2, 3, 4})
	dst := New(64)
	if got := IntersectInto(dst, []*Set{a, b}); got != 2 {
		t.Errorf("IntersectInto count = %d, want 2", got)
	}
	if got := dst.Indices(); !equalInts(got, []int{2, 3}) {
		t.Errorf("dst = %v, want [2 3]", got)
	}
	if got := IntersectInto(dst, nil); got != 0 || dst.Any() {
		t.Errorf("IntersectInto(nil) left dst=%v count=%d", dst.Indices(), got)
	}
}

func TestString(t *testing.T) {
	s := FromIndices(10, []int{1, 3})
	if got := s.String(); got != "{1 3}" {
		t.Errorf("String() = %q", got)
	}
	if got := New(5).String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
}

// Property: for random index sets, the set behaves like a map[int]bool.
func TestQuickSetSemantics(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 1 << 16
		s := New(n)
		ref := map[int]bool{}
		for _, r := range raw {
			i := int(r)
			if ref[i] {
				s.Clear(i)
				delete(ref, i)
			} else {
				s.Set(i)
				ref[i] = true
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for i := range ref {
			if !s.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan over AND/OR via XOR identity a^b = (a|b) &^ (a&b).
func TestQuickXorIdentity(t *testing.T) {
	f := func(ai, bi []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, i := range ai {
			a.Set(int(i))
		}
		for _, i := range bi {
			b.Set(int(i))
		}
		left := a.Clone()
		left.Xor(b)
		union := a.Clone()
		union.Or(b)
		inter := a.Clone()
		inter.And(b)
		union.AndNot(inter)
		return left.Equal(union)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: intersection count is commutative and bounded.
func TestQuickIntersectBounds(t *testing.T) {
	f := func(ai, bi []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, i := range ai {
			a.Set(int(i))
		}
		for _, i := range bi {
			b.Set(int(i))
		}
		ab, ba := a.IntersectCount(b), b.IntersectCount(a)
		if ab != ba {
			return false
		}
		min := a.Count()
		if bc := b.Count(); bc < min {
			min = bc
		}
		return ab <= min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkIntersectCount(b *testing.B) {
	n := 1 << 16
	rng := rand.New(rand.NewSource(1))
	x, y := New(n), New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(10) == 0 {
			x.Set(i)
		}
		if rng.Intn(10) == 0 {
			y.Set(i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectCount(y)
	}
}

func BenchmarkIntersectCountMany4(b *testing.B) {
	n := 1 << 16
	rng := rand.New(rand.NewSource(1))
	sets := make([]*Set, 4)
	for j := range sets {
		sets[j] = New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(10) == 0 {
				sets[j].Set(i)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = IntersectCountMany(sets)
	}
}
