// Package bitset provides dense, fixed-capacity bitmaps used as the
// counting substrate for subspace cube queries.
//
// A Set is a slice of 64-bit words. All sets participating in a binary
// operation must have been created with the same capacity; this is the
// invariant maintained by the grid index, which owns one Set per
// (dimension, range) pair over a fixed number of records.
//
// The performance-critical operations are IntersectCount (cardinality
// of an AND without materializing it) and IntersectCountWith (the same
// against a scratch accumulator), because the sparsity coefficient of a
// k-dimensional cube is computed as the cardinality of the intersection
// of k per-range bitmaps.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitmap. The zero value is an empty set of
// capacity zero; use New to create a set with room for n bits.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for bits 0..n-1.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a set of capacity n with the given bits set.
// Indices out of range cause a panic.
func FromIndices(n int, idx []int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Set(i)
	}
	return s
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i. It panics if i is out of range.
func (s *Set) Set(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Set(%d) out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i. It panics if i is out of range.
func (s *Set) Clear(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Clear(%d) out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set. It panics if i is out of range.
func (s *Set) Test(i int) bool {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Test(%d) out of range [0,%d)", i, s.n))
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears every bit, keeping the capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets every bit in 0..n-1.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim clears the unused bits of the last word so Count stays exact.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o. The capacities must match.
func (s *Set) CopyFrom(o *Set) {
	s.mustMatch(o)
	copy(s.words, o.words)
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}

// And replaces s with s AND o.
func (s *Set) And(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// Or replaces s with s OR o.
func (s *Set) Or(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// AndNot replaces s with s AND NOT o.
func (s *Set) AndNot(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Xor replaces s with s XOR o.
func (s *Set) Xor(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] ^= w
	}
}

// AndFrom stores a AND b into s and returns the resulting
// cardinality, in a single pass over the words — the fused form of
// CopyFrom + And + Count used at the interior levels of the
// brute-force enumeration, where the count feeds the coverage-pruning
// decision. All three sets must share a capacity; s may alias a or b.
func (s *Set) AndFrom(a, b *Set) int {
	s.mustMatch(a)
	s.mustMatch(b)
	c := 0
	for i, w := range a.words {
		w &= b.words[i]
		s.words[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// IntersectCount returns |s AND o| without allocating.
func (s *Set) IntersectCount(o *Set) int {
	s.mustMatch(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// Equal reports whether s and o have the same capacity and contents.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Indices returns the positions of all set bits in increasing order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn with the index of every set bit in increasing order.
// It stops early if fn returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// NextSet returns the index of the first set bit at or after i, or -1
// if there is none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// String renders the set as a compact list of indices, for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// IntersectCountMany returns the cardinality of the intersection of all
// the given sets. With zero sets it returns 0. All sets must share a
// capacity. The loop is arranged word-major so each 64-record block is
// resolved with one pass over the sets, which keeps the working set in
// cache for large N.
func IntersectCountMany(sets []*Set) int {
	switch len(sets) {
	case 0:
		return 0
	case 1:
		return sets[0].Count()
	case 2:
		return sets[0].IntersectCount(sets[1])
	}
	first := sets[0]
	for _, o := range sets[1:] {
		first.mustMatch(o)
	}
	c := 0
	for wi := range first.words {
		w := first.words[wi]
		if w == 0 {
			continue
		}
		for _, o := range sets[1:] {
			w &= o.words[wi]
			if w == 0 {
				break
			}
		}
		c += bits.OnesCount64(w)
	}
	return c
}

// IntersectInto stores the intersection of all sets into dst and
// returns its cardinality. dst must share the sets' capacity and may
// alias one of them. With zero sets, dst is reset and 0 is returned.
func IntersectInto(dst *Set, sets []*Set) int {
	if len(sets) == 0 {
		dst.Reset()
		return 0
	}
	dst.CopyFrom(sets[0])
	for _, o := range sets[1:] {
		dst.And(o)
	}
	return dst.Count()
}
