package obs

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"
)

// CacheStats is a point-in-time snapshot of a shared projection-count
// cache (grid.Cache), decoupled from the grid package so obs stays a
// leaf dependency.
type CacheStats struct {
	Hits, Misses uint64
	Size         int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c CacheStats) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// GenerationEvent summarizes one evolutionary generation: the fitness
// distribution, the De Jong convergence fraction, population diversity
// (distinct genomes), and the shared count-cache counters when a cache
// is attached.
type GenerationEvent struct {
	Run         string
	Gen         int
	PopSize     int
	BestFit     float64 // lowest fitness in this generation's population
	MeanFit     float64
	WorstFit    float64
	BestSoFar   float64 // mean fitness of the best-set so far
	Best        string  // best retained cube, empty until one is retained
	Converged   float64 // fraction of genes meeting the De Jong criterion
	Distinct    int     // distinct genomes in the population
	Evaluations int     // cumulative distinct fitness evaluations
	Cache       *CacheStats
}

// ProgressEvent is a brute-force heartbeat: subtree tasks completed,
// leaves evaluated, subtrees pruned, and the evaluation rate since the
// search started.
type ProgressEvent struct {
	Run         string
	TasksDone   int
	TasksTotal  int
	Evaluations uint64 // leaves evaluated so far
	Pruned      uint64 // subtrees skipped by coverage pruning so far
	EvalsPerSec float64
	Elapsed     time.Duration
	Cache       *CacheStats
}

// SummaryEvent is the terminal record of one search run.
type SummaryEvent struct {
	Run             string
	Algo            string // "evo" or "brute"
	Evaluations     int
	Pruned          int
	Generations     int
	Projections     int
	Outliers        int
	BestSparsity    float64 // most negative retained sparsity (0 when none)
	MeanSparsity    float64 // mean retained sparsity (0 when none)
	ConvergedDeJong bool
	BudgetExceeded  bool
	Elapsed         time.Duration
	Cache           *CacheStats
}

// Observer receives search progress. Implementations must be safe for
// concurrent use: restarts, islands and brute-force heartbeats deliver
// events from multiple goroutines, distinguished by the Run field.
// Observers must treat events as read-only snapshots; nothing an
// observer does can influence the search, so results stay bit-identical
// with or without one attached.
type Observer interface {
	// OnGeneration is delivered once per evolutionary generation.
	OnGeneration(GenerationEvent)
	// OnProgress is delivered periodically by long-running brute-force
	// enumerations (and once at completion).
	OnProgress(ProgressEvent)
	// OnDone is delivered once per search run, after the result is
	// assembled.
	OnDone(SummaryEvent)
}

// Funcs adapts optional callbacks to the Observer interface; nil
// fields ignore their events.
type Funcs struct {
	Generation func(GenerationEvent)
	Progress   func(ProgressEvent)
	Done       func(SummaryEvent)
}

// OnGeneration implements Observer.
func (f Funcs) OnGeneration(e GenerationEvent) {
	if f.Generation != nil {
		f.Generation(e)
	}
}

// OnProgress implements Observer.
func (f Funcs) OnProgress(e ProgressEvent) {
	if f.Progress != nil {
		f.Progress(e)
	}
}

// OnDone implements Observer.
func (f Funcs) OnDone(e SummaryEvent) {
	if f.Done != nil {
		f.Done(e)
	}
}

// Multi fans events out to several observers in order, skipping nils.
// It returns nil when no non-nil observer remains, preserving the
// zero-cost nil fast path for callers composing optional sinks.
func Multi(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multi(kept)
}

type multi []Observer

func (m multi) OnGeneration(e GenerationEvent) {
	for _, o := range m {
		o.OnGeneration(e)
	}
}

func (m multi) OnProgress(e ProgressEvent) {
	for _, o := range m {
		o.OnProgress(e)
	}
}

func (m multi) OnDone(e SummaryEvent) {
	for _, o := range m {
		o.OnDone(e)
	}
}

// NewLogObserver returns an observer printing compact single-line
// progress to w — the -v view of a search. Safe for concurrent use;
// lines from interleaved runs are distinguished by their run ID.
func NewLogObserver(w io.Writer) Observer {
	return &logObserver{w: w}
}

type logObserver struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *logObserver) printf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, format, args...)
}

func (l *logObserver) OnGeneration(e GenerationEvent) {
	cache := ""
	if e.Cache != nil {
		cache = fmt.Sprintf(" cache=%.0f%%", 100*e.Cache.HitRate())
	}
	l.printf("[%s] gen %-3d best=%.3f mean=%.3f conv=%.0f%% distinct=%d evals=%d%s\n",
		e.Run, e.Gen, e.BestFit, e.MeanFit, 100*e.Converged, e.Distinct, e.Evaluations, cache)
}

func (l *logObserver) OnProgress(e ProgressEvent) {
	cache := ""
	if e.Cache != nil {
		cache = fmt.Sprintf(" cache=%.0f%%", 100*e.Cache.HitRate())
	}
	l.printf("[%s] %d/%d tasks  %d leaves  %d pruned  %.0f evals/s%s\n",
		e.Run, e.TasksDone, e.TasksTotal, e.Evaluations, e.Pruned, e.EvalsPerSec, cache)
}

func (l *logObserver) OnDone(e SummaryEvent) {
	l.printf("[%s] done %s: %d projections (best S=%.3f, mean S=%.3f), %d outliers, %d evals, %s\n",
		e.Run, e.Algo, e.Projections, e.BestSparsity, e.MeanSparsity,
		e.Outliers, e.Evaluations, e.Elapsed.Round(time.Millisecond))
}

// NewSlogObserver routes search events through a structured logger:
// per-generation events at debug (they are high-volume), brute-force
// heartbeats and run summaries at info. Safe for concurrent use (slog
// loggers are).
func NewSlogObserver(l *slog.Logger) Observer {
	return slogObserver{l}
}

type slogObserver struct{ l *slog.Logger }

func (s slogObserver) OnGeneration(e GenerationEvent) {
	args := []any{"run", e.Run, "gen", e.Gen, "best", e.BestFit, "mean", e.MeanFit,
		"converged", e.Converged, "distinct", e.Distinct, "evals", e.Evaluations}
	if e.Cache != nil {
		args = append(args, "cache_hit_rate", e.Cache.HitRate())
	}
	s.l.Debug("generation", args...)
}

func (s slogObserver) OnProgress(e ProgressEvent) {
	s.l.Info("progress", "run", e.Run, "tasks_done", e.TasksDone, "tasks_total", e.TasksTotal,
		"evals", e.Evaluations, "pruned", e.Pruned, "evals_per_sec", e.EvalsPerSec)
}

func (s slogObserver) OnDone(e SummaryEvent) {
	args := []any{"run", e.Run, "algo", e.Algo, "projections", e.Projections,
		"outliers", e.Outliers, "best_sparsity", e.BestSparsity, "evals", e.Evaluations,
		"elapsed", e.Elapsed.Round(time.Millisecond).String()}
	if e.Cache != nil {
		args = append(args, "cache_hit_rate", e.Cache.HitRate())
	}
	s.l.Info("search done", args...)
}
