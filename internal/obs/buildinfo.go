package obs

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: module version, Go
// toolchain, and the VCS revision baked in by `go build` when the
// module is built from a checkout.
type BuildInfo struct {
	// Version is the main module's version ("(devel)" for source
	// builds, a semver tag for released builds).
	Version string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
	// Revision is the VCS commit hash, possibly truncated; empty when
	// the build carried no VCS stamp (e.g. `go test` binaries).
	Revision string
	// Modified reports whether the checkout had uncommitted changes.
	Modified bool
}

// Build returns the binary's build information, read once from
// debug.ReadBuildInfo.
var Build = sync.OnceValue(func() BuildInfo {
	b := BuildInfo{Version: "unknown", GoVersion: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Version = info.Main.Version
	if b.Version == "" {
		b.Version = "(devel)"
	}
	b.GoVersion = info.GoVersion
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
			if len(b.Revision) > 12 {
				b.Revision = b.Revision[:12]
			}
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
})

// String renders the build info on one line:
// "(devel) go1.24.0 rev 1a2b3c4d5e6f+dirty".
func (b BuildInfo) String() string {
	s := b.Version + " " + b.GoVersion
	if b.Revision != "" {
		s += " rev " + b.Revision
		if b.Modified {
			s += "+dirty"
		}
	}
	return s
}

// VersionLine renders the standard `-version` output for a binary.
func VersionLine(binary string) string {
	return fmt.Sprintf("%s %s", binary, Build())
}
