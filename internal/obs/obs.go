// Package obs is hido's observability layer: a leveled structured
// logger, a JSON-lines trace writer with run-scoped IDs and monotonic
// timestamps, a search Observer contract shared by the brute-force and
// evolutionary searches, request-ID propagation for the serving
// daemon, and build/version introspection.
//
// The package is dependency-free (standard library only) and sits
// below every other hido package except the leaf utilities: core,
// stream, server and the cmd/ binaries all emit through it, so one
// trace file interleaves search telemetry and serving telemetry with a
// shared clock and ID scheme.
//
// Two contracts shape the design:
//
//   - A nil Observer costs nothing. Search hot paths guard every
//     emission with a nil check and build event payloads only behind
//     it, so detectors without an observer attached run the exact
//     pre-observability machine code: zero allocations, zero atomics
//     beyond the telemetry counters that already existed.
//   - Observation never perturbs results. Observers receive copies of
//     derived statistics; nothing they do can reach back into search
//     state, so the bit-identical Result guarantees across worker
//     counts hold with or without an observer attached.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger returns a leveled structured logger writing to w: JSON
// objects (one per line) when json is true, logfmt-style key=value
// text otherwise. Every hido daemon and CLI builds its logger here so
// field names and level handling stay consistent across binaries.
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// NopLogger returns a logger that discards everything — the default
// when a component is handed no logger.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// ParseLevel maps a -log-level flag value (debug, info, warn, error;
// case-insensitive) to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return slog.LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}
