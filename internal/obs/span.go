package obs

import (
	"context"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync"
	"time"
)

// This file is the distributed-tracing half of the observability
// layer: a span model on top of the request-ID plumbing. A request
// produces one trace — a tree of spans named by trace ID — whose root
// the serving middleware opens, whose children mark request phases
// (decode, score, encode) and per-peer cluster RPCs, and whose
// storage-side spans are continued on other nodes from the trace
// context carried in the hcp1 frame envelope.
//
// Two contracts mirror the Observer design:
//
//   - A nil *SpanRecorder (tracing disabled, the default) costs
//     nothing: every method is nil-safe, returns a nil *Span whose
//     methods are also nil-safe no-ops, and allocates nothing — the
//     serving hot path keeps its allocation budget with tracing
//     compiled in but disabled.
//   - Completed spans land in a fixed-size ring with pooled span
//     scratch, so steady traced traffic reuses the same memory: the
//     ring can drop history (oldest first), never grow without bound.

// SpanContext is the cross-process half of a span: the trace it
// belongs to and the span ID a remote continuation should use as its
// parent. It travels in HTTP headers and in the hcp1 trace envelope.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// SpanAttr is one key-value annotation on a span. Values are strings
// so the wire form and the JSON form stay trivial.
type SpanAttr struct {
	Key   string
	Value string
}

// SpanAttrs marshals as a flat JSON object, keeping debug-endpoint
// output jq-friendly ({"peer":"http://...","attempt":"2"}).
type SpanAttrs []SpanAttr

// MarshalJSON renders the attrs as one object in insertion order.
func (a SpanAttrs) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 16*len(a)+2)
	b = append(b, '{')
	for i, kv := range a {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, kv.Key)
		b = append(b, ':')
		b = strconv.AppendQuote(b, kv.Value)
	}
	return append(b, '}'), nil
}

// SpanData is one completed span: the storage, wire and JSON form.
type SpanData struct {
	TraceID  string    `json:"trace"`
	SpanID   string    `json:"span"`
	ParentID string    `json:"parent,omitempty"`
	Name     string    `json:"name"`
	Node     string    `json:"node,omitempty"`
	Start    time.Time `json:"start"`
	DurMS    float64   `json:"duration_ms"`
	Attrs    SpanAttrs `json:"attrs,omitempty"`
}

// Span is one in-flight operation. Create roots and continuations
// through a SpanRecorder, children through Child, and complete with
// End — an unended span never reaches the ring (roots do appear in
// the live view). All methods are safe on a nil receiver and safe for
// concurrent use.
type Span struct {
	rec  *SpanRecorder
	root bool

	mu    sync.Mutex
	data  SpanData
	phase string // most recent child name; the live view's "where is it now"
}

// SpanRecorderConfig tunes a recorder.
type SpanRecorderConfig struct {
	// Node labels every span this recorder produces (e.g. "select
	// :8080"), so a cross-node trace says which process ran what.
	Node string
	// Ring is how many completed spans are retained (default 4096).
	Ring int
	// Sample is the fraction of new traces recorded, in [0,1]
	// (default 1). Continuations are never re-sampled: the root's
	// decision rides the trace context, so a trace is whole or absent.
	Sample float64
}

// SpanRecorder records completed spans into a fixed ring and tracks
// live root spans. The zero value is not usable; nil means tracing
// disabled and is a valid, zero-cost receiver for every method.
type SpanRecorder struct {
	node   string
	sample float64
	ids    *IDSource

	pool sync.Pool // *Span

	mu    sync.Mutex
	ring  []SpanData // fixed capacity, len == cap once warmed
	next  int        // ring write cursor
	total uint64     // completed spans ever recorded

	liveMu sync.Mutex
	live   map[*Span]struct{}
}

// NewSpanRecorder builds a recorder.
func NewSpanRecorder(cfg SpanRecorderConfig) *SpanRecorder {
	if cfg.Ring <= 0 {
		cfg.Ring = 4096
	}
	if cfg.Sample <= 0 {
		cfg.Sample = 1
	}
	r := &SpanRecorder{
		node:   cfg.Node,
		sample: cfg.Sample,
		ids:    NewIDSource("s"),
		ring:   make([]SpanData, 0, cfg.Ring),
		live:   map[*Span]struct{}{},
	}
	r.pool.New = func() any { return new(Span) }
	return r
}

// Enabled reports whether spans are being recorded at all.
func (r *SpanRecorder) Enabled() bool { return r != nil }

// Node returns the recorder's node label ("" for nil).
func (r *SpanRecorder) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// sampled decides once per new trace.
func (r *SpanRecorder) sampled() bool {
	return r.sample >= 1 || rand.Float64() < r.sample
}

// start initializes a pooled span. The attrs backing survives pool
// round-trips, so steady traced traffic settles into ring-slot reuse.
func (r *SpanRecorder) start(name, traceID, parentID string, root bool) *Span {
	s := r.pool.Get().(*Span)
	s.rec = r
	s.root = root
	s.phase = ""
	s.data = SpanData{
		TraceID:  traceID,
		SpanID:   r.ids.Next(),
		ParentID: parentID,
		Name:     name,
		Node:     r.node,
		Start:    time.Now(),
		Attrs:    s.data.Attrs[:0],
	}
	if root {
		r.liveMu.Lock()
		r.live[s] = struct{}{}
		r.liveMu.Unlock()
	}
	return s
}

// StartRoot opens the root span of a new trace, subject to sampling.
// traceID is the caller's correlation ID (the request ID, or an
// inbound X-Trace-Id); it must be non-empty. Returns nil — record
// nothing, cost nothing — when the recorder is nil or the trace is
// sampled out.
func (r *SpanRecorder) StartRoot(name, traceID string) *Span {
	if r == nil || traceID == "" || !r.sampled() {
		return nil
	}
	return r.start(name, traceID, "", true)
}

// Continue joins a trace started on another node: the incoming trace
// context names the trace and the remote parent span. Sampling was
// the root's call — an arriving context means the trace is recorded.
// The continuation counts as a live request on this node too.
func (r *SpanRecorder) Continue(name string, sc SpanContext) *Span {
	if r == nil || sc.TraceID == "" {
		return nil
	}
	return r.start(name, sc.TraceID, sc.SpanID, true)
}

// Child opens a sub-span of s and advances s's live phase to the
// child's name. Nil-safe: a nil parent yields a nil child.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.phase = name
	tid, sid := s.data.TraceID, s.data.SpanID
	s.mu.Unlock()
	return s.rec.start(name, tid, sid, false)
}

// Context returns the span's cross-process trace context (zero for
// nil): remote continuations parent onto this span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpanContext{TraceID: s.data.TraceID, SpanID: s.data.SpanID}
}

// TraceID returns the span's trace ID ("" for nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data.TraceID
}

// SetAttr annotates the span. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Attrs = append(s.data.Attrs, SpanAttr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value. Nil-safe.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Attrs = append(s.data.Attrs, SpanAttr{Key: key, Value: strconv.FormatInt(value, 10)})
	s.mu.Unlock()
}

// SetPhase sets the live view's phase label directly (Child does it
// implicitly). Nil-safe.
func (s *Span) SetPhase(phase string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.phase = phase
	s.mu.Unlock()
}

// End completes the span: its data is copied into the recorder's
// ring (overwriting the oldest entry once full) and the span object
// returns to the pool. Nil-safe. A span must not be used after End.
func (s *Span) End() {
	if s == nil {
		return
	}
	r := s.rec
	s.mu.Lock()
	s.data.DurMS = float64(time.Since(s.data.Start).Microseconds()) / 1000
	data := s.data
	root := s.root
	s.mu.Unlock()

	if root {
		r.liveMu.Lock()
		delete(r.live, s)
		r.liveMu.Unlock()
	}

	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, SpanData{})
	}
	slot := &r.ring[r.next]
	attrs := slot.Attrs[:0] // reuse the evicted slot's attr backing
	*slot = data
	slot.Attrs = append(attrs, data.Attrs...)
	r.next = (r.next + 1) % cap(r.ring)
	r.total++
	r.mu.Unlock()

	// data.Attrs stays with the span for reuse; the slot holds a copy.
	r.pool.Put(s)
}

// Trace returns the completed spans of one trace, oldest first.
// Returns nil for a nil recorder or an unknown (or evicted) trace.
func (r *SpanRecorder) Trace(traceID string) []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SpanData
	for i := range r.ring {
		if r.ring[i].TraceID == traceID {
			out = append(out, cloneSpan(r.ring[i]))
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Start.Before(out[b].Start) })
	return out
}

// cloneSpan copies a ring slot so callers never alias the reused
// attr backing.
func cloneSpan(s SpanData) SpanData {
	s.Attrs = append(SpanAttrs(nil), s.Attrs...)
	return s
}

// TraceSummary is one row of the recent-traces listing.
type TraceSummary struct {
	TraceID string    `json:"trace"`
	Name    string    `json:"name"` // root span name when retained, else first seen
	Node    string    `json:"node"`
	Start   time.Time `json:"start"`
	DurMS   float64   `json:"duration_ms"`
	Spans   int       `json:"spans"`
}

// Recent lists the most recently completed traces, newest first, at
// most limit (default 20). A trace is summarized by its root span
// when the ring still holds it, by its earliest retained span
// otherwise.
func (r *SpanRecorder) Recent(limit int) []TraceSummary {
	if r == nil {
		return nil
	}
	if limit <= 0 {
		limit = 20
	}
	r.mu.Lock()
	byTrace := make(map[string]*TraceSummary)
	order := make([]string, 0, 16)
	// Walk the ring oldest → newest so later spans refresh recency.
	n := len(r.ring)
	for i := 0; i < n; i++ {
		sd := &r.ring[(r.next+i)%n]
		if sd.TraceID == "" {
			continue
		}
		ts, ok := byTrace[sd.TraceID]
		if !ok {
			ts = &TraceSummary{TraceID: sd.TraceID, Name: sd.Name, Node: sd.Node, Start: sd.Start, DurMS: sd.DurMS}
			byTrace[sd.TraceID] = ts
			order = append(order, sd.TraceID)
		}
		ts.Spans++
		if sd.ParentID == "" || sd.Start.Before(ts.Start) {
			ts.Name, ts.Node, ts.Start, ts.DurMS = sd.Name, sd.Node, sd.Start, sd.DurMS
		}
	}
	r.mu.Unlock()
	out := make([]TraceSummary, 0, len(order))
	for i := len(order) - 1; i >= 0 && len(out) < limit; i-- {
		out = append(out, *byTrace[order[i]])
	}
	return out
}

// LiveRequest is one in-flight root span: what the node is doing
// right now.
type LiveRequest struct {
	TraceID string    `json:"trace"`
	SpanID  string    `json:"span"`
	Name    string    `json:"name"`
	Node    string    `json:"node,omitempty"`
	Phase   string    `json:"phase,omitempty"`
	Start   time.Time `json:"start"`
	AgeMS   float64   `json:"age_ms"`
}

// Live snapshots the in-flight root spans, oldest first — the
// longest-running request leads, since it is the one an operator is
// hunting.
func (r *SpanRecorder) Live() []LiveRequest {
	if r == nil {
		return nil
	}
	now := time.Now()
	r.liveMu.Lock()
	out := make([]LiveRequest, 0, len(r.live))
	for s := range r.live {
		s.mu.Lock()
		out = append(out, LiveRequest{
			TraceID: s.data.TraceID,
			SpanID:  s.data.SpanID,
			Name:    s.data.Name,
			Node:    s.data.Node,
			Phase:   s.phase,
			Start:   s.data.Start,
			AgeMS:   float64(now.Sub(s.data.Start).Microseconds()) / 1000,
		})
		s.mu.Unlock()
	}
	r.liveMu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Start.Before(out[b].Start) })
	return out
}

// TotalSpans returns how many spans have completed into the ring
// (including since-evicted ones); 0 for nil.
func (r *SpanRecorder) TotalSpans() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// SpanNode is a span with its children — the tree form the debug
// endpoints serve.
type SpanNode struct {
	SpanData
	Children []*SpanNode `json:"children,omitempty"`
}

// BuildSpanTree assembles spans (from any mix of nodes) into forest
// form: children sorted by start time under their parents, spans
// whose parent is missing (evicted, or still in flight) promoted to
// roots. The root of a healthy trace is the span with no parent ID.
func BuildSpanTree(spans []SpanData) []*SpanNode {
	nodes := make(map[string]*SpanNode, len(spans))
	for _, sd := range spans {
		nodes[sd.SpanID] = &SpanNode{SpanData: sd}
	}
	var roots []*SpanNode
	for _, sd := range spans {
		n := nodes[sd.SpanID]
		if p, ok := nodes[sd.ParentID]; ok && sd.ParentID != sd.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortKids func(n *SpanNode)
	sortKids = func(n *SpanNode) {
		sort.SliceStable(n.Children, func(a, b int) bool {
			return n.Children[a].Start.Before(n.Children[b].Start)
		})
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	sort.SliceStable(roots, func(a, b int) bool { return roots[a].Start.Before(roots[b].Start) })
	for _, r := range roots {
		sortKids(r)
	}
	return roots
}

// spanKey carries the active span through a request context.
type spanKey struct{}

// ContextWithSpan attaches a span to the context; a nil span returns
// ctx unchanged so the disabled path allocates nothing.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's active span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
