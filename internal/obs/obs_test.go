package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want slog.Level
		ok   bool
	}{
		{"debug", slog.LevelDebug, true},
		{"Info", slog.LevelInfo, true},
		{"", slog.LevelInfo, true},
		{"WARN", slog.LevelWarn, true},
		{"warning", slog.LevelWarn, true},
		{"error", slog.LevelError, true},
		{"verbose", slog.LevelInfo, false},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseLevel(%q) err=%v, want ok=%v", c.in, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNewLoggerLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelWarn, true)
	log.Info("dropped")
	log.Warn("kept", "key", "value")
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("info line survived a warn-level logger: %q", out)
	}
	var line map[string]any
	if err := json.Unmarshal([]byte(out), &line); err != nil {
		t.Fatalf("JSON logger wrote non-JSON %q: %v", out, err)
	}
	if line["msg"] != "kept" || line["key"] != "value" {
		t.Errorf("unexpected JSON log line: %v", line)
	}

	buf.Reset()
	NewLogger(&buf, slog.LevelInfo, false).Info("text", "k", 1)
	if !strings.Contains(buf.String(), "k=1") {
		t.Errorf("text logger lost the keyed field: %q", buf.String())
	}
}

func TestTracerEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	run := tr.RunID("evo")
	if run != "evo-1" {
		t.Errorf("first run ID = %q, want evo-1", run)
	}
	if tr.RunID("evo") == run {
		t.Error("run IDs not unique")
	}

	tr.Emit(run, "generation", map[string]any{"gen": 0, "best": -3.5})
	tr.Emit(run, "summary", map[string]any{"evals": 42})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	lastTS := -1.0
	for i, l := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %q: %v", i, l, err)
		}
		if ev["run"] != run {
			t.Errorf("line %d run = %v", i, ev["run"])
		}
		ts, ok := ev["ts_ms"].(float64)
		if !ok || ts < lastTS {
			t.Errorf("line %d ts_ms = %v, want monotone nondecreasing", i, ev["ts_ms"])
		}
		lastTS = ts
	}
}

func TestTracerObserverEventShapes(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	o := tr.Observer()
	cache := &CacheStats{Hits: 3, Misses: 1, Size: 4}
	o.OnGeneration(GenerationEvent{Run: "r1", Gen: 7, BestFit: -2, Cache: cache})
	o.OnProgress(ProgressEvent{Run: "r1", TasksDone: 2, TasksTotal: 10, Evaluations: 100})
	o.OnDone(SummaryEvent{Run: "r1", Algo: "brute", Evaluations: 100, Elapsed: time.Second})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var gen map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &gen); err != nil {
		t.Fatal(err)
	}
	if gen["ev"] != "generation" || gen["gen"] != 7.0 || gen["cache_hit_rate"] != 0.75 {
		t.Errorf("generation line: %v", gen)
	}
	for i, want := range []string{"generation", "progress", "summary"} {
		var ev map[string]any
		if err := json.Unmarshal([]byte(lines[i]), &ev); err != nil {
			t.Fatal(err)
		}
		if ev["ev"] != want {
			t.Errorf("line %d ev = %v, want %s", i, ev["ev"], want)
		}
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			run := tr.RunID("w")
			for i := 0; i < 50; i++ {
				tr.Emit(run, "progress", map[string]any{"i": i, "g": g})
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50)
	}
	for _, l := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("interleaved write produced invalid JSON: %q", l)
		}
	}
}

func TestCacheStatsHitRate(t *testing.T) {
	if r := (CacheStats{}).HitRate(); r != 0 {
		t.Errorf("empty hit rate = %v", r)
	}
	if r := (CacheStats{Hits: 9, Misses: 1}).HitRate(); r != 0.9 {
		t.Errorf("hit rate = %v, want 0.9", r)
	}
}

func TestMulti(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils should be nil")
	}
	var calls []string
	a := Funcs{Done: func(SummaryEvent) { calls = append(calls, "a") }}
	b := Funcs{Done: func(SummaryEvent) { calls = append(calls, "b") }}
	if got := Multi(nil, a); got == nil {
		t.Fatal("Multi dropped the only observer")
	}
	m := Multi(a, nil, b)
	m.OnDone(SummaryEvent{})
	m.OnGeneration(GenerationEvent{}) // nil callbacks ignore
	m.OnProgress(ProgressEvent{})
	if strings.Join(calls, ",") != "a,b" {
		t.Errorf("fan-out order: %v", calls)
	}
}

func TestLogObserverLines(t *testing.T) {
	var buf bytes.Buffer
	o := NewLogObserver(&buf)
	o.OnGeneration(GenerationEvent{Run: "evo-1", Gen: 3, BestFit: -2.5, Converged: 0.5,
		Cache: &CacheStats{Hits: 1, Misses: 1}})
	o.OnProgress(ProgressEvent{Run: "brute-1", TasksDone: 1, TasksTotal: 4, Evaluations: 10})
	o.OnDone(SummaryEvent{Run: "evo-1", Algo: "evo", Projections: 5})
	out := buf.String()
	for _, want := range []string{"[evo-1] gen 3", "cache=50%", "[brute-1] 1/4 tasks", "done evo: 5 projections"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestIDSource(t *testing.T) {
	s := NewIDSource("req")
	a, b := s.Next(), s.Next()
	if a == b {
		t.Errorf("IDs collide: %q", a)
	}
	if !strings.HasPrefix(a, "req-") {
		t.Errorf("ID %q missing prefix", a)
	}
	if NewIDSource("req").Next() == a {
		t.Error("fresh sources should salt differently")
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion == "" || b.GoVersion == "unknown" {
		// go test binaries always carry a build info block.
		t.Errorf("GoVersion = %q", b.GoVersion)
	}
	if got := VersionLine("hido"); !strings.HasPrefix(got, "hido ") || !strings.Contains(got, b.GoVersion) {
		t.Errorf("VersionLine = %q", got)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := t.Context()
	if got := RequestID(ctx); got != "" {
		t.Errorf("empty context carries ID %q", got)
	}
	ctx = WithRequestID(ctx, "req-1")
	if got := RequestID(ctx); got != "req-1" {
		t.Errorf("RequestID = %q", got)
	}
}
