package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeRecording(t *testing.T) {
	r := NewSpanRecorder(SpanRecorderConfig{Node: "select", Ring: 64})

	root := r.StartRoot("score", "trace-1")
	if root == nil {
		t.Fatal("StartRoot returned nil with sampling=1")
	}
	root.SetAttrInt("batch", 100)
	decode := root.Child("decode")
	decode.End()
	score := root.Child("score")
	rpc := score.Child("rpc:score")
	rpc.SetAttr("peer", "http://s1")
	rpc.End()
	score.End()
	root.End()

	spans := r.Trace("trace-1")
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	for _, sd := range spans {
		if sd.TraceID != "trace-1" {
			t.Fatalf("span %q has trace %q", sd.Name, sd.TraceID)
		}
		if sd.Node != "select" {
			t.Fatalf("span %q has node %q", sd.Name, sd.Node)
		}
	}

	roots := BuildSpanTree(spans)
	if len(roots) != 1 || roots[0].Name != "score" {
		t.Fatalf("tree roots = %+v, want single root 'score'", roots)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Name != "decode" || kids[1].Name != "score" {
		t.Fatalf("root children = %+v, want [decode score]", kids)
	}
	if len(kids[1].Children) != 1 || kids[1].Children[0].Name != "rpc:score" {
		t.Fatalf("score children = %+v, want [rpc:score]", kids[1].Children)
	}

	// Attrs marshal as a flat object.
	b, err := json.Marshal(kids[1].Children[0].Attrs)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"peer":"http://s1"}` {
		t.Fatalf("attrs JSON = %s", b)
	}
}

func TestSpanContinueJoinsTrace(t *testing.T) {
	sel := NewSpanRecorder(SpanRecorderConfig{Node: "select", Ring: 16})
	sto := NewSpanRecorder(SpanRecorderConfig{Node: "storage", Ring: 16})

	root := sel.StartRoot("score", "t1")
	rpc := root.Child("rpc:score")
	cont := sto.Continue("storage:score", rpc.Context())
	cont.End()
	rpc.End()
	root.End()

	all := append(sel.Trace("t1"), sto.Trace("t1")...)
	roots := BuildSpanTree(all)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1 (continuation should parent under the rpc span)", len(roots))
	}
	var rpcNode *SpanNode
	for _, c := range roots[0].Children {
		if c.Name == "rpc:score" {
			rpcNode = c
		}
	}
	if rpcNode == nil || len(rpcNode.Children) != 1 || rpcNode.Children[0].Node != "storage" {
		t.Fatalf("storage continuation not under rpc span: %+v", roots[0])
	}
}

func TestSpanNilSafety(t *testing.T) {
	var r *SpanRecorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	s := r.StartRoot("x", "t")
	if s != nil {
		t.Fatal("nil recorder returned non-nil span")
	}
	// Every method must be a no-op on nil.
	s.SetAttr("k", "v")
	s.SetAttrInt("k", 1)
	s.SetPhase("p")
	c := s.Child("child")
	if c != nil {
		t.Fatal("nil span returned non-nil child")
	}
	if sc := s.Context(); sc != (SpanContext{}) {
		t.Fatalf("nil span context = %+v", sc)
	}
	if id := s.TraceID(); id != "" {
		t.Fatalf("nil span trace ID = %q", id)
	}
	s.End()
	if got := r.Trace("t"); got != nil {
		t.Fatalf("nil recorder Trace = %v", got)
	}
	if got := r.Recent(5); got != nil {
		t.Fatalf("nil recorder Recent = %v", got)
	}
	if got := r.Live(); got != nil {
		t.Fatalf("nil recorder Live = %v", got)
	}
	if got := r.TotalSpans(); got != 0 {
		t.Fatalf("nil recorder TotalSpans = %d", got)
	}
	if r.Continue("x", SpanContext{TraceID: "t"}) != nil {
		t.Fatal("nil recorder Continue returned span")
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if ctx != context.Background() {
		t.Fatal("nil span changed the context")
	}
	if SpanFrom(ctx) != nil {
		t.Fatal("SpanFrom on bare context not nil")
	}
}

func TestSpanDisabledPathZeroAlloc(t *testing.T) {
	var r *SpanRecorder
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		s := r.StartRoot("score", "t")
		s.SetAttrInt("batch", 100)
		c := s.Child("decode")
		c.End()
		ctx2 := ContextWithSpan(ctx, s)
		_ = SpanFrom(ctx2)
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f/op, want 0", allocs)
	}
}

func TestSpanSampling(t *testing.T) {
	r := NewSpanRecorder(SpanRecorderConfig{Ring: 16, Sample: 0.000001})
	sampledOut := 0
	for i := 0; i < 100; i++ {
		if r.StartRoot("x", "t") == nil {
			sampledOut++
		}
	}
	if sampledOut < 95 {
		t.Fatalf("sample=1e-6 recorded %d/100 roots", 100-sampledOut)
	}
	// Continuations ignore sampling: the root already decided.
	c := r.Continue("y", SpanContext{TraceID: "t2", SpanID: "s1"})
	if c == nil {
		t.Fatal("Continue was sampled out")
	}
	c.End()
	if got := r.Trace("t2"); len(got) != 1 || got[0].ParentID != "s1" {
		t.Fatalf("continuation spans = %+v", got)
	}
}

func TestSpanRingWrapAndRecent(t *testing.T) {
	r := NewSpanRecorder(SpanRecorderConfig{Ring: 8})
	for i := 0; i < 20; i++ {
		s := r.StartRoot("req", fmt.Sprintf("t%d", i))
		s.SetAttr("i", fmt.Sprint(i))
		s.End()
	}
	if got := r.TotalSpans(); got != 20 {
		t.Fatalf("TotalSpans = %d, want 20", got)
	}
	// Oldest traces were evicted.
	if got := r.Trace("t0"); got != nil {
		t.Fatalf("evicted trace still present: %+v", got)
	}
	last := r.Trace("t19")
	if len(last) != 1 || len(last[0].Attrs) != 1 || last[0].Attrs[0].Value != "19" {
		t.Fatalf("newest trace = %+v", last)
	}
	recent := r.Recent(3)
	if len(recent) != 3 || recent[0].TraceID != "t19" || recent[2].TraceID != "t17" {
		t.Fatalf("Recent(3) = %+v", recent)
	}
	all := r.Recent(100)
	if len(all) != 8 {
		t.Fatalf("Recent(100) returned %d traces, want ring size 8", len(all))
	}
}

func TestSpanLiveRequests(t *testing.T) {
	r := NewSpanRecorder(SpanRecorderConfig{Node: "n1", Ring: 8})
	a := r.StartRoot("score", "ta")
	time.Sleep(time.Millisecond)
	b := r.StartRoot("fit", "tb")
	b.SetPhase("gather")

	live := r.Live()
	if len(live) != 2 {
		t.Fatalf("Live = %d entries, want 2", len(live))
	}
	if live[0].TraceID != "ta" {
		t.Fatalf("oldest-first order violated: %+v", live)
	}
	if live[1].Phase != "gather" {
		t.Fatalf("phase not reported: %+v", live[1])
	}
	if live[0].AgeMS <= 0 {
		t.Fatalf("age not positive: %+v", live[0])
	}
	a.End()
	b.End()
	if got := r.Live(); len(got) != 0 {
		t.Fatalf("ended spans still live: %+v", got)
	}
}

// TestSpanRingConcurrent hammers one recorder from many goroutines —
// run under -race. Child spans, attrs, live snapshots and trace reads
// all interleave with ring wraps.
func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRecorder(SpanRecorderConfig{Node: "n", Ring: 32})
	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				root := r.StartRoot("req", fmt.Sprintf("g%d-%d", g, i))
				root.SetAttrInt("iter", int64(i))
				c := root.Child("work")
				c.SetAttr("k", "v")
				c.End()
				root.End()
				if i%17 == 0 {
					_ = r.Recent(5)
					_ = r.Live()
					_ = r.Trace(fmt.Sprintf("g%d-%d", g, i))
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.TotalSpans(); got != goroutines*iters*2 {
		t.Fatalf("TotalSpans = %d, want %d", got, goroutines*iters*2)
	}
	// Every retained slot must be internally consistent (attr copy not
	// shared with another slot).
	for _, ts := range r.Recent(32) {
		spans := r.Trace(ts.TraceID)
		for _, sd := range spans {
			if sd.TraceID != ts.TraceID {
				t.Fatalf("slot aliasing: span %+v under trace %s", sd, ts.TraceID)
			}
		}
	}
}

func TestBuildSpanTreeOrphans(t *testing.T) {
	// A span whose parent was evicted becomes a root rather than
	// disappearing.
	now := time.Now()
	spans := []SpanData{
		{TraceID: "t", SpanID: "b", ParentID: "missing", Name: "child", Start: now.Add(time.Millisecond)},
		{TraceID: "t", SpanID: "a", Name: "root", Start: now},
	}
	roots := BuildSpanTree(spans)
	if len(roots) != 2 || roots[0].Name != "root" || roots[1].Name != "child" {
		t.Fatalf("orphan handling wrong: %+v", roots)
	}
}

func TestTracerEmitAfterStickyError(t *testing.T) {
	fw := &failingWriter{failAfter: 1}
	tr := NewTracer(fw)
	tr.Emit("r", "a", map[string]any{"x": 1}) // succeeds
	tr.Emit("r", "b", map[string]any{"x": 2}) // write fails → sticky
	if tr.Err() == nil {
		t.Fatal("expected sticky error")
	}
	writes := fw.writes
	// Subsequent emits must be dropped before encoding: no more writes,
	// and (checked separately) no allocations.
	tr.Emit("r", "c", map[string]any{"x": 3})
	if fw.writes != writes {
		t.Fatal("emit after sticky error reached the writer")
	}
	allocs := testing.AllocsPerRun(50, func() {
		tr.Emit("r", "d", map[string]any{"x": 4})
	})
	if allocs != 0 {
		t.Fatalf("dead tracer Emit allocates %.1f/op, want 0", allocs)
	}
}

type failingWriter struct {
	writes    int
	failAfter int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.failAfter {
		return 0, fmt.Errorf("boom")
	}
	return len(p), nil
}
