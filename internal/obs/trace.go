package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer writes JSON-lines trace events: one JSON object per line with
// a monotonic timestamp (ts_ms, milliseconds since the tracer was
// created, from the runtime's monotonic clock so wall-clock steps never
// reorder a trace), a run ID and an event name, plus event-specific
// fields. The format is jq-friendly by construction:
//
//	jq -c 'select(.ev=="generation") | [.run,.gen,.best]' trace.jsonl
//
// All methods are safe for concurrent use; lines are written atomically
// under one mutex. Write errors are sticky and reported by Err rather
// than interrupting the traced computation.
type Tracer struct {
	start time.Time
	seq   atomic.Uint64

	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewTracer returns a tracer writing to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{start: time.Now(), w: w}
}

// RunID mints a tracer-unique run identifier with the given prefix
// ("evo-1", "brute-2", ...). Distinct concurrent runs sharing one
// tracer label their events with distinct IDs.
func (t *Tracer) RunID(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, t.seq.Add(1))
}

// Emit writes one event line. fields must not contain the reserved
// keys ts_ms, run and ev (they would be overwritten).
func (t *Tracer) Emit(run, ev string, fields map[string]any) {
	// Once the error is sticky (or there is no writer) every later event
	// is dropped anyway — skip the map copy and marshal, not just the
	// write, so a dead tracer stops costing allocations.
	t.mu.Lock()
	dead := t.w == nil || t.err != nil
	t.mu.Unlock()
	if dead {
		return
	}
	line := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		line[k] = v
	}
	line["ts_ms"] = float64(time.Since(t.start).Microseconds()) / 1000
	line["run"] = run
	line["ev"] = ev
	buf, err := json.Marshal(line)
	if err != nil {
		// Only non-serializable field values can land here; record and
		// drop rather than corrupt the trace.
		t.recordErr(fmt.Errorf("obs: encoding trace event %q: %w", ev, err))
		return
	}
	buf = append(buf, '\n')
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(buf); err != nil {
		t.err = fmt.Errorf("obs: writing trace: %w", err)
	}
}

func (t *Tracer) recordErr(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = err
	}
}

// Err returns the first write or encoding error, if any. CLIs check it
// once after the traced run instead of handling an error per event.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Observer returns an observer that records every search event as a
// trace line. Events carry their own run IDs, so one trace observer
// serves any number of concurrent searches.
func (t *Tracer) Observer() Observer {
	return traceObserver{t}
}

type traceObserver struct{ t *Tracer }

// cacheFields flattens an optional cache snapshot into the line.
func cacheFields(line map[string]any, c *CacheStats) {
	if c == nil {
		return
	}
	line["cache_hits"] = c.Hits
	line["cache_misses"] = c.Misses
	line["cache_size"] = c.Size
	line["cache_hit_rate"] = c.HitRate()
}

func (o traceObserver) OnGeneration(e GenerationEvent) {
	fields := map[string]any{
		"gen":         e.Gen,
		"pop":         e.PopSize,
		"best":        e.BestFit,
		"mean":        e.MeanFit,
		"worst":       e.WorstFit,
		"best_so_far": e.BestSoFar,
		"best_cube":   e.Best,
		"converged":   e.Converged,
		"distinct":    e.Distinct,
		"evals":       e.Evaluations,
	}
	cacheFields(fields, e.Cache)
	o.t.Emit(e.Run, "generation", fields)
}

func (o traceObserver) OnProgress(e ProgressEvent) {
	fields := map[string]any{
		"tasks_done":    e.TasksDone,
		"tasks_total":   e.TasksTotal,
		"evals":         e.Evaluations,
		"pruned":        e.Pruned,
		"evals_per_sec": e.EvalsPerSec,
		"elapsed_ms":    float64(e.Elapsed.Microseconds()) / 1000,
	}
	cacheFields(fields, e.Cache)
	o.t.Emit(e.Run, "progress", fields)
}

func (o traceObserver) OnDone(e SummaryEvent) {
	fields := map[string]any{
		"algo":             e.Algo,
		"evals":            e.Evaluations,
		"pruned":           e.Pruned,
		"generations":      e.Generations,
		"projections":      e.Projections,
		"outliers":         e.Outliers,
		"best_s":           e.BestSparsity,
		"mean_s":           e.MeanSparsity,
		"converged_dejong": e.ConvergedDeJong,
		"budget_exceeded":  e.BudgetExceeded,
		"elapsed_ms":       float64(e.Elapsed.Microseconds()) / 1000,
	}
	cacheFields(fields, e.Cache)
	o.t.Emit(e.Run, "summary", fields)
}

// IDSource mints short process-unique IDs ("req-5f21c3-42"): a random
// per-source salt so IDs from different processes or restarts never
// collide in aggregated logs, plus an atomic counter so IDs stay cheap
// and ordered within a process.
type IDSource struct {
	prefix string
	n      atomic.Uint64
}

// NewIDSource returns an ID source whose IDs carry the given prefix.
func NewIDSource(prefix string) *IDSource {
	var salt [3]byte
	_, _ = rand.Read(salt[:])
	return &IDSource{prefix: prefix + "-" + hex.EncodeToString(salt[:])}
}

// Next returns the next ID.
func (s *IDSource) Next() string {
	return fmt.Sprintf("%s-%d", s.prefix, s.n.Add(1))
}
