package obs

import "context"

// requestIDKey is the context key carrying a request-scoped ID.
type requestIDKey struct{}

// WithRequestID returns a context carrying the request ID. The serving
// middleware attaches one per request; everything downstream (handlers,
// fit jobs, error logs) reads it back with RequestID so one ID threads
// through every log line and trace event a request produces.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request ID, or "" when none is set.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
