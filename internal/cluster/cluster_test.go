package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hido/internal/core"
	"hido/internal/cube"
	"hido/internal/dataset"
	"hido/internal/discretize"
	"hido/internal/server"
	"hido/internal/stream"
	"hido/internal/synth"
)

// testData generates a reference window with planted structure so the
// fitted models are non-trivial.
func testData(t testing.TB, n int) *dataset.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.Config{
		Name: "ref", N: n, D: 6,
		Groups: []synth.Group{
			{Dims: []int{0, 1}, Noise: 0.03},
			{Dims: []int{2, 3}, Noise: 0.05},
		},
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// splitAt carves ds into contiguous shards at the given boundaries.
// Concatenating the shards in order reproduces ds row for row — the
// cluster's global row order invariant.
func splitAt(ds *dataset.Dataset, bounds []int) []*dataset.Dataset {
	var shards []*dataset.Dataset
	lo := 0
	for _, hi := range append(bounds, ds.N()) {
		sh := dataset.New(ds.Names, hi-lo)
		for i := lo; i < hi; i++ {
			sh.AppendRow(ds.RowView(i), "")
		}
		shards = append(shards, sh)
		lo = hi
	}
	return shards
}

// randomSplit picks 0..3 random interior split points: a 1- to 4-way
// sharding of the rows.
func randomSplit(rng *rand.Rand, ds *dataset.Dataset) []*dataset.Dataset {
	parts := 1 + rng.Intn(4)
	cut := map[int]bool{}
	for len(cut) < parts-1 {
		cut[1+rng.Intn(ds.N()-1)] = true
	}
	var bounds []int
	for b := range cut {
		bounds = append(bounds, b)
	}
	for i := range bounds {
		for j := i + 1; j < len(bounds); j++ {
			if bounds[j] < bounds[i] {
				bounds[i], bounds[j] = bounds[j], bounds[i]
			}
		}
	}
	return splitAt(ds, bounds)
}

// startCluster boots one in-process storage server per shard and a
// coordinator over them. Retries are disabled so failure tests run at
// full speed; correctness must not depend on retry luck anyway.
func startCluster(t testing.TB, shards []*dataset.Dataset, quorum int) (*Coordinator, []*httptest.Server) {
	t.Helper()
	var peers []string
	var servers []*httptest.Server
	for _, sh := range shards {
		srv := httptest.NewServer(NewStorage(sh, nil).Handler())
		t.Cleanup(srv.Close)
		servers = append(servers, srv)
		peers = append(peers, srv.URL)
	}
	co, err := NewCoordinator(CoordinatorConfig{
		Peers:  peers,
		Quorum: quorum,
		Client: ClientConfig{Timeout: 10 * time.Second, Retries: -1, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return co, servers
}

// TestRemoteCountsBitIdentical is the count half of the merge
// property: over random 1..4-way row splits, every cube count summed
// across the shards equals the single-node bitmap index count.
func TestRemoteCountsBitIdentical(t *testing.T) {
	full := testData(t, 300)
	const phi = 4
	det := core.NewDetector(full, phi)
	cuts := det.Grid.AllCuts()
	rng := rand.New(rand.NewSource(42))

	for round := 0; round < 3; round++ {
		shards := randomSplit(rng, full)
		co, _ := startCluster(t, shards, 1)
		ctx := context.Background()
		sh, _, _, err := co.topology(ctx)
		if err != nil {
			t.Fatal(err)
		}
		gid := gridID(phi, cuts, sh)
		if err := co.pushGrid(ctx, gid, phi, cuts, sh); err != nil {
			t.Fatal(err)
		}
		src := co.newSource(ctx, gid, full.N(), full.D(), phi)

		var cs []cube.Cube
		var keys []string
		cube.Enumerate(full.D(), 2, phi, func(c cube.Cube) bool {
			if rng.Intn(4) == 0 {
				cc := c.Clone()
				cs = append(cs, cc)
				keys = append(keys, cc.Key())
			}
			return len(cs) < 64
		})
		got := src.CountBatch(cs, keys, 0)
		if err := src.Err(); err != nil {
			t.Fatalf("split %d-way: %v", len(shards), err)
		}
		for i, c := range cs {
			if want := det.Index.Count(c); got[i] != want {
				t.Errorf("split %d-way: cube %v: remote sum %d, single-node %d",
					len(shards), c, got[i], want)
			}
			// The memoized single-cube path must agree with the batch path.
			if single := src.CountKey(c, keys[i]); single != got[i] {
				t.Errorf("cube %v: CountKey %d != CountBatch %d", c, single, got[i])
			}
			// Cover must be the ascending global index list.
			gotCover := src.Cover(c)
			wantCover := det.Index.Cover(c).Indices()
			if len(gotCover) != len(wantCover) {
				t.Fatalf("cube %v: cover size %d != %d", c, len(gotCover), len(wantCover))
			}
			for j := range gotCover {
				if gotCover[j] != wantCover[j] {
					t.Fatalf("cube %v: cover[%d] = %d, want %d", c, j, gotCover[j], wantCover[j])
				}
			}
			if i >= 7 {
				break // covers are O(n) per cube; a handful suffices
			}
		}
	}
}

// TestClusterFitBitIdentical is the tentpole acceptance property: a
// distributed fit over 1..4 shards produces byte-identical model JSON
// to a single-node fit on the concatenated data.
func TestClusterFitBitIdentical(t *testing.T) {
	full := testData(t, 240)
	opt := stream.Options{Phi: 4, Seed: 7}
	single, err := stream.NewMonitor(full, opt)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := single.Save(&want); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	for parts := 1; parts <= 4; parts++ {
		t.Run(fmt.Sprintf("%d-way", parts), func(t *testing.T) {
			var bounds []int
			cut := map[int]bool{}
			for len(cut) < parts-1 {
				cut[1+rng.Intn(full.N()-1)] = true
			}
			for b := range cut {
				bounds = append(bounds, b)
			}
			for i := range bounds {
				for j := i + 1; j < len(bounds); j++ {
					if bounds[j] < bounds[i] {
						bounds[i], bounds[j] = bounds[j], bounds[i]
					}
				}
			}
			co, _ := startCluster(t, splitAt(full, bounds), 1)
			mon, js, err := co.Fit(context.Background(), FitOptions{Phi: 4, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(js, want.Bytes()) {
				t.Errorf("cluster fit differs from single-node fit:\ncluster: %s\nsingle:  %s",
					js, want.Bytes())
			}
			if mon.K() != single.K() || len(mon.Projections()) != len(single.Projections()) {
				t.Errorf("reloaded monitor differs: k=%d/%d projections=%d/%d",
					mon.K(), single.K(), len(mon.Projections()), len(single.Projections()))
			}
		})
	}
}

// installModel registers a fitted monitor under "default".
func installModel(t *testing.T, s *server.Server, mon *stream.Monitor) {
	t.Helper()
	if err := s.Registry().Set("default", server.Entry{
		Monitor: mon, FittedAt: time.Unix(1700000000, 0), Source: "test",
	}); err != nil {
		t.Fatal(err)
	}
}

// get returns status and body for a GET.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// post returns status and body for a POST.
func post(t *testing.T, url, ctype, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, ctype, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// scoreBody builds an NDJSON batch: some reference rows plus an
// outlying one.
func scoreBody(t *testing.T, ds *dataset.Dataset) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < 5; i++ {
		row, err := json.Marshal(ds.RowView(i * 7))
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("[0.01,0.99,0.01,0.99,0.5,0.5]\n")
	return sb.String()
}

// TestClusterAPIEndToEnd boots a 3-shard cluster behind a stock
// internal/server select node and byte-diffs the public API against a
// single-node server over the concatenated data: /api/v1/score,
// /api/v1/topn and /api/v1/models/{name} must be indistinguishable.
// Then it kills one storage node and requires: score still
// byte-identical (local failover), top-n well-formed with
// partial=true, and top-n under an all-shards quorum a clean 503.
func TestClusterAPIEndToEnd(t *testing.T) {
	full := testData(t, 240)
	mon, err := stream.NewMonitor(full, stream.Options{Phi: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	// Single-node truth.
	sSingle := server.New(server.Config{TopNer: server.NewDatasetTopN(full, 0)})
	installModel(t, sSingle, mon)
	single := httptest.NewServer(sSingle.Handler())
	defer single.Close()

	// 3-shard cluster behind a select node.
	shards := splitAt(full, []int{70, 151})
	co, storageSrvs := startCluster(t, shards, 1)
	sSel := server.New(server.Config{})
	sSel.SetBatchScorer(co)
	sSel.SetTopNer(co)
	installModel(t, sSel, mon)
	sel := httptest.NewServer(sSel.Handler())
	defer sel.Close()

	// Strict quorum coordinator over the same shards, connected while
	// everything is still alive.
	var peers []string
	for _, srv := range storageSrvs {
		peers = append(peers, srv.URL)
	}
	coStrict, err := NewCoordinator(CoordinatorConfig{
		Peers: peers, Quorum: len(peers),
		Client: ClientConfig{Timeout: 10 * time.Second, Retries: -1, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coStrict.TopN(context.Background(), "default", mon, 3); err != nil {
		t.Fatalf("strict-quorum top-n with all shards up: %v", err)
	}

	batch := scoreBody(t, full)
	for _, q := range []string{"?all=1&explain=1", "?all=0"} {
		wantCode, wantBody := post(t, single.URL+"/api/v1/score"+q, "application/x-ndjson", batch)
		gotCode, gotBody := post(t, sel.URL+"/api/v1/score"+q, "application/x-ndjson", batch)
		if wantCode != http.StatusOK || gotCode != wantCode || gotBody != wantBody {
			t.Errorf("score%s: cluster (%d) %q\nsingle (%d) %q", q, gotCode, gotBody, wantCode, wantBody)
		}
	}
	for _, q := range []string{"?n=7", "?n=500"} {
		wantCode, wantBody := get(t, single.URL+"/api/v1/topn"+q)
		gotCode, gotBody := get(t, sel.URL+"/api/v1/topn"+q)
		if wantCode != http.StatusOK || gotCode != wantCode || gotBody != wantBody {
			t.Errorf("topn%s: cluster (%d) %q\nsingle (%d) %q", q, gotCode, gotBody, wantCode, wantBody)
		}
	}
	{
		wantCode, wantBody := get(t, single.URL+"/api/v1/models/default")
		gotCode, gotBody := get(t, sel.URL+"/api/v1/models/default")
		if wantCode != http.StatusOK || gotCode != wantCode || gotBody != wantBody {
			t.Errorf("model download: cluster (%d) vs single (%d) differ", gotCode, wantCode)
		}
	}

	// Kill the middle storage node.
	storageSrvs[1].Close()

	// Scoring fails over to local chunks: bytes still identical.
	wantCode, wantBody := post(t, single.URL+"/api/v1/score?all=1", "application/x-ndjson", batch)
	gotCode, gotBody := post(t, sel.URL+"/api/v1/score?all=1", "application/x-ndjson", batch)
	if wantCode != http.StatusOK || gotCode != wantCode || gotBody != wantBody {
		t.Errorf("score after shard death: cluster (%d) %q\nsingle (%d) %q",
			gotCode, gotBody, wantCode, wantBody)
	}

	// Top-n degrades to a well-formed partial answer.
	gotCode, gotBody = get(t, sel.URL+"/api/v1/topn?n=5")
	if gotCode != http.StatusOK {
		t.Fatalf("partial topn: %d %s", gotCode, gotBody)
	}
	var partial struct {
		Partial bool `json:"partial"`
		Rows    int  `json:"rows"`
		Results []struct {
			Index int     `json:"index"`
			Score float64 `json:"score"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(gotBody), &partial); err != nil {
		t.Fatalf("partial topn not JSON: %v in %q", err, gotBody)
	}
	if !partial.Partial {
		t.Errorf("topn with a dead shard not marked partial: %q", gotBody)
	}
	if partial.Rows != full.N()-shards[1].N() {
		t.Errorf("partial rows = %d, want %d", partial.Rows, full.N()-shards[1].N())
	}
	if len(partial.Results) == 0 {
		t.Error("partial topn returned no results")
	}
	for _, r := range partial.Results {
		if r.Index >= 70 && r.Index < 151 {
			t.Errorf("partial topn contains index %d from the dead shard", r.Index)
		}
	}

	// Under an all-shards quorum the same failure is an error, which
	// the serving layer turns into a 503.
	if _, err := coStrict.TopN(context.Background(), "default", mon, 3); err == nil {
		t.Error("strict-quorum top-n succeeded with a dead shard")
	}

	// A distributed fit must refuse to run against a dead shard rather
	// than mine a wrong model.
	if _, _, err := co.Fit(context.Background(), FitOptions{Phi: 4, Seed: 7}); err == nil {
		t.Error("cluster fit succeeded with a dead shard")
	}

	// Drain with nothing in flight returns promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := co.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}

// TestStorageRejectsMismatchedPushes exercises the shard-compat
// checks: wrong data fingerprint and wrong dimensionality are
// conflicts (409), an unknown model fingerprint is a precondition
// failure (412), and a tampered model push is rejected outright.
func TestStorageRejectsMismatchedPushes(t *testing.T) {
	ds := testData(t, 60)
	st := NewStorage(ds, nil)
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()
	client := NewClient(ClientConfig{Timeout: 5 * time.Second, Retries: -1})
	ctx := context.Background()

	cuts := discretize.Fit(ds, 3, discretize.EquiDepth).AllCuts()
	req := gridReq{GridID: "g-x", DataFP: "d-bogus", Phi: 3, Cuts: cuts}
	_, err := client.Call(ctx, srv.URL, "grid", req.encode(), msgGridAck)
	if !IsGridMiss(err) {
		t.Errorf("bogus fingerprint: got %v, want grid-miss conflict", err)
	}

	count := countReq{GridID: "g-never-pushed", D: ds.D(),
		Cubes: []cube.Cube{cube.New(ds.D()).With(0, 1)}}
	_, err = client.Call(ctx, srv.URL, "count", count.encode(), msgCountResp)
	if !IsGridMiss(err) {
		t.Errorf("unknown grid: got %v, want grid-miss conflict", err)
	}

	top := topNReq{ModelFP: "m-unknown", N: 5}
	_, err = client.Call(ctx, srv.URL, "topn", top.encode(), msgTopNResp)
	if !IsModelMiss(err) {
		t.Errorf("unknown model: got %v, want model-miss", err)
	}

	push := modelPush{FP: "m-lying-fingerprint", JSON: []byte(`{"version":1}`)}
	_, err = client.Call(ctx, srv.URL, "model", push.encode(), msgModelAck)
	if err == nil {
		t.Error("model push with wrong fingerprint accepted")
	}
}
