package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryDelaySchedule pins the full backoff schedule: doubling from
// the base, capped at 8× it, jittered by ±25% — the fix for retries
// that used to double without bound and fire in lockstep.
func TestRetryDelaySchedule(t *testing.T) {
	c := NewClient(ClientConfig{Backoff: 100 * time.Millisecond, Retries: 10})
	base := 100 * time.Millisecond
	uncapped := []time.Duration{base, 2 * base, 4 * base, 8 * base, 8 * base, 8 * base}
	// jitter pinned to the midpoint: delays equal the uncapped schedule.
	c.jitter = func() float64 { return 0.5 }
	for n, want := range uncapped {
		if got := c.retryDelay(n + 1); got != want {
			t.Errorf("retry %d: delay %v, want %v", n+1, got, want)
		}
	}
	// Jitter extremes stay inside the ±25% band around the capped value.
	for _, j := range []float64{0, 0.999} {
		j := j
		c.jitter = func() float64 { return j }
		for n := 1; n <= 12; n++ {
			got := c.retryDelay(n)
			lo := time.Duration(0.75 * float64(base))
			hi := time.Duration(1.25 * float64(8*base))
			if got < lo || got > hi {
				t.Errorf("retry %d with jitter %v: delay %v outside [%v,%v]", n, j, got, lo, hi)
			}
			if got > time.Duration(1.25*float64(8*base)) {
				t.Errorf("retry %d: delay %v exceeds the 8x cap band", n, got)
			}
		}
	}
	// The default jitter source is live randomness in the band.
	c2 := NewClient(ClientConfig{Backoff: base})
	for i := 0; i < 100; i++ {
		got := c2.retryDelay(1)
		if got < time.Duration(0.75*float64(base)) || got >= time.Duration(1.25*float64(base)) {
			t.Fatalf("default jitter delay %v outside ±25%% of %v", got, base)
		}
	}
}

// TestCallRetrySchedule verifies Call actually sleeps the capped
// schedule end to end: with a tiny base backoff and many retries
// against an always-500 peer, total wall time must stay near the
// capped sum, far below what unbounded doubling would take.
func TestCallRetrySchedule(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	base := 2 * time.Millisecond
	retries := 12
	c := NewClient(ClientConfig{Backoff: base, Retries: retries, Timeout: time.Second})
	start := time.Now()
	_, err := c.Call(context.Background(), srv.URL, "score", encodeFrame(msgScoreReq, nil), msgScoreResp)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against an always-500 peer succeeded")
	}
	if got := attempts.Load(); got != int64(retries+1) {
		t.Fatalf("%d attempts, want %d", got, retries+1)
	}
	// Capped schedule (jitter high bound): 1.25 * (1+2+4+8+8+8+8+8+8+8+8+8)·base ≈ 0.2s.
	// Unbounded doubling would exceed 2^12·base = 8s on the last sleep alone.
	var capped time.Duration
	for n := 1; n <= retries; n++ {
		d := base
		for i := 1; i < n && d < maxBackoffFactor*base; i++ {
			d *= 2
		}
		if d > maxBackoffFactor*base {
			d = maxBackoffFactor * base
		}
		capped += time.Duration(1.25 * float64(d))
	}
	if elapsed > capped+2*time.Second {
		t.Fatalf("call took %v; capped schedule allows ~%v plus overhead", elapsed, capped)
	}
}
