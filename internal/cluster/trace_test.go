package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hido/internal/obs"
	"hido/internal/server"
	"hido/internal/stream"
)

// TestTraceProtoRoundTrip drives the trace messages and the envelope
// through encode → decode and requires them back unchanged.
func TestTraceProtoRoundTrip(t *testing.T) {
	req := &traceReq{TraceID: "t-cafe"}
	typ, payload, err := decodeFrame(req.encode())
	if err != nil || typ != msgTraceReq {
		t.Fatalf("traceReq frame: type %d err %v", typ, err)
	}
	var gotReq traceReq
	if err := gotReq.decode(payload); err != nil || gotReq.TraceID != "t-cafe" {
		t.Fatalf("traceReq: got %+v err %v", gotReq, err)
	}

	// Starts built via time.Unix: the wire carries UTC unix nanos, so
	// monotonic-clock-free times round-trip exactly.
	resp := &traceResp{Spans: []obs.SpanData{
		{TraceID: "t-1", SpanID: "s-1", Name: "storage:score", Node: "storage :9001",
			Start: time.Unix(1700000000, 12345).UTC(), DurMS: 1.5,
			Attrs: obs.SpanAttrs{{Key: "code", Value: "200"}, {Key: "rows", Value: "80"}}},
		{TraceID: "t-1", SpanID: "s-2", ParentID: "s-1", Name: "storage:count",
			Start: time.Unix(1700000001, 0).UTC(), DurMS: math.Inf(1)},
	}}
	typ, payload, err = decodeFrame(resp.encode())
	if err != nil || typ != msgTraceResp {
		t.Fatalf("traceResp frame: type %d err %v", typ, err)
	}
	var gotResp traceResp
	if err := gotResp.decode(payload); err != nil {
		t.Fatalf("traceResp decode: %v", err)
	}
	if !reflect.DeepEqual(resp.Spans, gotResp.Spans) {
		t.Errorf("traceResp: got %+v want %+v", gotResp.Spans, resp.Spans)
	}

	// Envelope: wrap → unwrap returns the context and the inner frame.
	inner := (&traceReq{TraceID: "t-1"}).encode()
	sc, body, err := unwrapTraceFrame(wrapTraceFrame("t-1", "s-root", inner))
	if err != nil || sc.TraceID != "t-1" || sc.SpanID != "s-root" {
		t.Fatalf("unwrap: sc %+v err %v", sc, err)
	}
	if !reflect.DeepEqual(body, inner) {
		t.Errorf("unwrap did not return the inner frame")
	}

	// A bare frame — an old client, or tracing off — passes through
	// unchanged with a zero context.
	sc, body, err = unwrapTraceFrame(inner)
	if err != nil || sc.TraceID != "" || !reflect.DeepEqual(body, inner) {
		t.Errorf("bare frame: sc %+v err %v", sc, err)
	}

	// Claiming the magic but truncating the header is an error, for
	// every strict prefix.
	wrapped := wrapTraceFrame("t-1", "s-root", inner)
	for i := len(traceMagic); i < len(traceMagic)+12; i++ {
		if _, _, err := unwrapTraceFrame(wrapped[:i]); err == nil {
			t.Errorf("truncated envelope of %d bytes accepted", i)
		}
	}

	// Hostile ID length: longer than maxTraceField must be rejected.
	long := wrapTraceFrame(strings.Repeat("x", maxTraceField+1), "s", inner)
	if _, _, err := unwrapTraceFrame(long); err == nil {
		t.Error("oversized trace ID accepted")
	}
}

// FuzzUnwrapTraceFrame throws hostile bytes at the envelope parser.
// Total property: no panic, and a body without the envelope magic is
// always passed through byte-identical.
func FuzzUnwrapTraceFrame(f *testing.F) {
	inner := (&traceReq{TraceID: "t-1"}).encode()
	f.Add(wrapTraceFrame("t-1", "s-1", inner))
	f.Add(wrapTraceFrame("", "", nil))
	f.Add([]byte(traceMagic))
	f.Add(append([]byte(traceMagic), 0xff, 0xff, 0xff, 0xff))
	f.Add(inner)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, body, err := unwrapTraceFrame(data)
		if len(data) < len(traceMagic) || string(data[:len(traceMagic)]) != traceMagic {
			if err != nil || sc.TraceID != "" || sc.SpanID != "" || !reflect.DeepEqual(body, data) {
				t.Fatalf("bare body not passed through: sc %+v err %v", sc, err)
			}
		}
	})
}

// spanTreeJSON mirrors the debug endpoint's tree nodes.
type spanTreeJSON struct {
	Trace    string         `json:"trace"`
	Span     string         `json:"span"`
	Parent   string         `json:"parent"`
	Name     string         `json:"name"`
	Node     string         `json:"node"`
	Children []spanTreeJSON `json:"children"`
}

// flattenTree lists every node in the forest.
func flattenTree(nodes []spanTreeJSON) []spanTreeJSON {
	var out []spanTreeJSON
	for _, n := range nodes {
		out = append(out, n)
		out = append(out, flattenTree(n.Children)...)
	}
	return out
}

// TestClusterTraceEndToEnd is the tentpole acceptance test: one score
// request against a traced 3-shard cluster yields, via a single GET
// on the select node's debug endpoint, a span tree under one trace ID
// holding the root, the serving phases, a per-peer RPC span per
// shard, and the storage-side spans each shard recorded. After a
// shard dies, the next trace shows the local failover span.
func TestClusterTraceEndToEnd(t *testing.T) {
	full := testData(t, 240)
	mon, err := stream.NewMonitor(full, stream.Options{Phi: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	shards := splitAt(full, []int{70, 151})
	var peers []string
	var storageSrvs []*httptest.Server
	var storageRecs []*obs.SpanRecorder
	for i, sh := range shards {
		rec := obs.NewSpanRecorder(obs.SpanRecorderConfig{Node: "storage-" + string(rune('a'+i))})
		st := NewStorage(sh, nil)
		st.SetSpans(rec)
		srv := httptest.NewServer(st.Handler())
		t.Cleanup(srv.Close)
		storageSrvs = append(storageSrvs, srv)
		storageRecs = append(storageRecs, rec)
		peers = append(peers, srv.URL)
	}
	co, err := NewCoordinator(CoordinatorConfig{
		Peers:  peers,
		Quorum: 1,
		Client: ClientConfig{Timeout: 10 * time.Second, Retries: -1, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	selRec := obs.NewSpanRecorder(obs.SpanRecorderConfig{Node: "select"})
	sSel := server.New(server.Config{Spans: selRec})
	sSel.SetBatchScorer(co)
	sSel.SetTopNer(co)
	sSel.SetTraceFetcher(co)
	installModel(t, sSel, mon)
	sel := httptest.NewServer(sSel.Handler())
	defer sel.Close()

	scoreOnce := func() string {
		t.Helper()
		resp, err := http.Post(sel.URL+"/api/v1/score?all=1", "application/x-ndjson",
			strings.NewReader(scoreBody(t, full)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("score: %d", resp.StatusCode)
		}
		traceID := resp.Header.Get("X-Trace-Id")
		if traceID == "" {
			t.Fatal("score response carries no X-Trace-Id")
		}
		return traceID
	}

	// fetchTree pulls the assembled cross-node tree, polling briefly:
	// the root span lands in the ring in the middleware's deferred
	// cleanup, which can trail the response by a scheduler beat.
	fetchTree := func(traceID string) []spanTreeJSON {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			code, body := get(t, sel.URL+"/api/v1/debug/traces/"+traceID)
			if code == http.StatusOK {
				var tr struct {
					Trace string         `json:"trace"`
					Spans int            `json:"spans"`
					Tree  []spanTreeJSON `json:"tree"`
				}
				if err := json.Unmarshal([]byte(body), &tr); err != nil {
					t.Fatalf("trace response not JSON: %v in %q", err, body)
				}
				flat := flattenTree(tr.Tree)
				rooted := false
				for _, n := range flat {
					if n.Parent == "" && n.Name == "/api/v1/score" {
						rooted = true
					}
				}
				if rooted {
					return tr.Tree
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("trace %s never became complete (last: %d)", traceID, code)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	traceID := scoreOnce()
	flat := flattenTree(fetchTree(traceID))

	names := map[string]int{}
	for _, n := range flat {
		if n.Trace != traceID {
			t.Fatalf("span %s carries trace %s, want %s", n.Span, n.Trace, traceID)
		}
		names[n.Name]++
	}
	for _, want := range []string{"/api/v1/score", "decode", "score", "encode"} {
		if names[want] == 0 {
			t.Errorf("trace lacks a %q span (have %v)", want, names)
		}
	}
	// One score RPC per shard, each continued on its shard: the
	// storage-side span rode back through the trace RPC.
	if names["rpc:score"] < len(shards) {
		t.Errorf("trace has %d rpc:score spans, want >= %d (have %v)", names["rpc:score"], len(shards), names)
	}
	if names["storage:score"] < len(shards) {
		t.Errorf("trace has %d storage:score spans, want >= %d (have %v)", names["storage:score"], len(shards), names)
	}
	// Storage spans must say which node ran them, and each shard must
	// actually hold its own spans locally.
	for i, rec := range storageRecs {
		if len(rec.Trace(traceID)) == 0 {
			t.Errorf("shard %d retained no spans for trace %s", i, traceID)
		}
	}
	for _, n := range flat {
		if strings.HasPrefix(n.Name, "storage:") && !strings.HasPrefix(n.Node, "storage-") {
			t.Errorf("storage span %q attributed to node %q", n.Name, n.Node)
		}
	}
	// Parentage: storage:score spans hang under rpc:score spans — the
	// tree is connected across the process boundary.
	var checkParent func(nodes []spanTreeJSON, parent string)
	checkParent = func(nodes []spanTreeJSON, parent string) {
		for _, n := range nodes {
			if n.Name == "storage:score" && parent != "rpc:score" {
				t.Errorf("storage:score parented under %q, want rpc:score", parent)
			}
			checkParent(n.Children, n.Name)
		}
	}
	checkParent(fetchTree(traceID), "")

	// Kill a shard: scoring fails over to a local chunk, and the trace
	// shows it.
	storageSrvs[1].Close()
	failTrace := scoreOnce()
	flat = flattenTree(fetchTree(failTrace))
	found := false
	for _, n := range flat {
		if n.Name == "failover:score" {
			found = true
			if n.Node != "select" {
				t.Errorf("failover span attributed to %q, want select", n.Node)
			}
		}
	}
	if !found {
		t.Errorf("trace after shard death lacks a failover:score span")
	}

	// The listing endpoint knows both traces.
	code, body := get(t, sel.URL+"/api/v1/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("debug/traces: %d %s", code, body)
	}
	var listing struct {
		Enabled bool `json:"enabled"`
		Traces  []struct {
			TraceID string `json:"trace"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("traces listing not JSON: %v", err)
	}
	if !listing.Enabled {
		t.Error("traces listing says tracing disabled")
	}
	got := map[string]bool{}
	for _, tr := range listing.Traces {
		got[tr.TraceID] = true
	}
	if !got[traceID] || !got[failTrace] {
		t.Errorf("traces listing lacks %s or %s: %+v", traceID, failTrace, listing.Traces)
	}
}

// TestClientRetrySpans requires every attempt — including retries — to
// appear in the trace as its own RPC span with an attempt counter.
func TestClientRetrySpans(t *testing.T) {
	ds := testData(t, 40)
	st := NewStorage(ds, nil)
	real := st.Handler()
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	rec := obs.NewSpanRecorder(obs.SpanRecorderConfig{Node: "select"})
	root := rec.StartRoot("test", "t-retry")
	ctx := obs.ContextWithSpan(context.Background(), root)

	client := NewClient(ClientConfig{Timeout: 5 * time.Second, Retries: 1, Backoff: time.Millisecond})
	if _, err := client.Call(ctx, flaky.URL, "info", emptyFrame(msgInfoReq), msgInfoResp); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := rec.Trace("t-retry")
	attempts := map[string]bool{}
	erred := 0
	for _, sd := range spans {
		if sd.Name != "rpc:info" {
			continue
		}
		for _, a := range sd.Attrs {
			if a.Key == "attempt" {
				attempts[a.Value] = true
			}
			if a.Key == "error" {
				erred++
			}
		}
		if sd.ParentID == "" {
			t.Error("rpc span has no parent")
		}
	}
	if !attempts["1"] || !attempts["2"] {
		t.Errorf("retry attempts missing from trace: %v", spans)
	}
	if erred != 1 {
		t.Errorf("%d rpc spans carry an error attr, want exactly the failed first attempt", erred)
	}
}

// TestTraceEnvelopeCompat pins both directions of wire compatibility:
// a new client against a pre-tracing server falls back to bare frames
// and caches the verdict; an old client's bare frames work against a
// new server; and a genuine bad request through the envelope stays a
// bad request without poisoning the capability cache.
func TestTraceEnvelopeCompat(t *testing.T) {
	ds := testData(t, 40)

	t.Run("new-client-old-server", func(t *testing.T) {
		// A pre-tracing storage node: decodes the frame directly, so the
		// envelope magic is a 400, exactly like the old serveRPC.
		var bare, wrapped atomic.Int32
		old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			body, _ := io.ReadAll(r.Body)
			if strings.HasPrefix(string(body), traceMagic) {
				wrapped.Add(1)
			} else {
				bare.Add(1)
			}
			if _, _, err := decodeFrame(body); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write((&infoResp{N: ds.N(), Names: ds.Names, Fingerprint: "d-x"}).encode())
		}))
		defer old.Close()

		rec := obs.NewSpanRecorder(obs.SpanRecorderConfig{Node: "select"})
		root := rec.StartRoot("test", "t-compat")
		defer root.End()
		ctx := obs.ContextWithSpan(context.Background(), root)
		client := NewClient(ClientConfig{Timeout: 5 * time.Second, Retries: -1})

		for i := 0; i < 3; i++ {
			payload, err := client.Call(ctx, old.URL, "info", emptyFrame(msgInfoReq), msgInfoResp)
			if err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
			var info infoResp
			if err := info.decode(payload); err != nil || info.N != ds.N() {
				t.Fatalf("call %d: bad answer %+v %v", i, info, err)
			}
		}
		// The probe costs exactly one wrapped exchange; every call after
		// the verdict goes bare directly.
		if wrapped.Load() != 1 || bare.Load() != 3 {
			t.Errorf("wrapped=%d bare=%d, want 1 probe then bare-only", wrapped.Load(), bare.Load())
		}
		if client.peerCap(old.URL) != capLegacy {
			t.Errorf("peer cap = %d, want capLegacy", client.peerCap(old.URL))
		}
	})

	t.Run("old-client-new-server", func(t *testing.T) {
		rec := obs.NewSpanRecorder(obs.SpanRecorderConfig{Node: "storage"})
		st := NewStorage(ds, nil)
		st.SetSpans(rec)
		srv := httptest.NewServer(st.Handler())
		defer srv.Close()

		// An old client has no envelope: post the bare frame raw.
		resp, err := http.Post(srv.URL+"/rpc/v1/info", "application/octet-stream",
			strings.NewReader(string(emptyFrame(msgInfoReq))))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bare frame against new server: %d", resp.StatusCode)
		}
		// No envelope, no trace: nothing lands in the ring.
		if n := rec.TotalSpans(); n != 0 {
			t.Errorf("bare RPC recorded %d spans, want 0", n)
		}
	})

	t.Run("genuine-bad-request", func(t *testing.T) {
		st := NewStorage(ds, nil)
		st.SetSpans(obs.NewSpanRecorder(obs.SpanRecorderConfig{Node: "storage"}))
		srv := httptest.NewServer(st.Handler())
		defer srv.Close()

		rec := obs.NewSpanRecorder(obs.SpanRecorderConfig{Node: "select"})
		root := rec.StartRoot("test", "t-bad")
		defer root.End()
		ctx := obs.ContextWithSpan(context.Background(), root)
		client := NewClient(ClientConfig{Timeout: 5 * time.Second, Retries: -1})

		// An info frame on the count endpoint is a 400 from the inner
		// dispatcher whether or not the envelope is understood, so the
		// bare retry answers 400 too: the capability stays unknown.
		_, err := client.Call(ctx, srv.URL, "count", emptyFrame(msgInfoReq), msgCountResp)
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
			t.Fatalf("got %v, want a 400 StatusError", err)
		}
		if client.peerCap(srv.URL) != capUnknown {
			t.Errorf("genuine 400 poisoned the capability cache: %d", client.peerCap(srv.URL))
		}

		// The next well-formed call still negotiates modern.
		if _, err := client.Call(ctx, srv.URL, "info", emptyFrame(msgInfoReq), msgInfoResp); err != nil {
			t.Fatal(err)
		}
		if client.peerCap(srv.URL) != capModern {
			t.Errorf("peer cap = %d after clean call, want capModern", client.peerCap(srv.URL))
		}
	})
}
