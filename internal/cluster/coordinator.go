package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"

	"hido/internal/core"
	"hido/internal/dataset"
	"hido/internal/discretize"
	"hido/internal/obs"
	"hido/internal/server"
	"hido/internal/stream"
)

// CoordinatorConfig tunes a select node's fan-out.
type CoordinatorConfig struct {
	// Peers are the storage node base URLs. Their order is load-bearing:
	// it defines the global row order (shard 0's rows come first), the
	// chunk assignment for scatter-gather scoring, and the deterministic
	// merge order — every select node configured with the same peer list
	// gives byte-identical answers.
	Peers []string
	// Quorum is the minimum number of shards that must answer a top-n
	// fan-out; with at least Quorum but not all shards answering, the
	// response is served with partial=true. Default 1. Fit and cover
	// always require every shard — a distributed fit is exact or it
	// fails.
	Quorum int
	// Client tunes per-peer timeouts, retries and backoff.
	Client ClientConfig
	// Logger receives structured fan-out logs; nil discards.
	Logger *slog.Logger
	// Metrics, when set, receives the hidod_cluster_* series.
	Metrics *Metrics
}

// shard is one connected storage node's identity within the cluster.
type shard struct {
	peer   string
	n      int
	offset int // position of the shard's row 0 in the global order
	fp     string
}

// Coordinator is the select node's brain: it fans score, top-n and
// count requests out to the storage peers and merges the partial
// answers deterministically. It implements server.BatchScorer and
// server.TopNer, so a stock internal/server fronts it unchanged — the
// public API stays byte-identical to a single-node hidod.
type Coordinator struct {
	cfg    CoordinatorConfig
	client *Client
	logger *slog.Logger
	m      *Metrics

	mu     sync.Mutex
	shards []shard // nil until the first successful connect
	totalN int
	names  []string
	wires  map[string]wireEntry
}

// wireEntry is a model marshalled for shard replication, cached per
// registry name and invalidated when the monitor pointer changes (a
// hot swap installs a new monitor).
type wireEntry struct {
	mon *stream.Monitor
	fp  string
	js  []byte
}

// NewCoordinator builds a coordinator over a fixed peer list.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: a coordinator needs at least one storage peer")
	}
	if cfg.Quorum == 0 {
		cfg.Quorum = 1
	}
	if cfg.Quorum < 1 || cfg.Quorum > len(cfg.Peers) {
		return nil, fmt.Errorf("cluster: quorum %d outside [1,%d]", cfg.Quorum, len(cfg.Peers))
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	ccfg := cfg.Client
	ccfg.Logger = cfg.Logger
	ccfg.Metrics = cfg.Metrics
	if cfg.Metrics != nil {
		cfg.Metrics.Peers.Set(float64(len(cfg.Peers)))
	}
	return &Coordinator{
		cfg:    cfg,
		client: NewClient(ccfg),
		logger: cfg.Logger,
		m:      cfg.Metrics,
		wires:  map[string]wireEntry{},
	}, nil
}

// Peers returns the configured peer list (shared; do not mutate).
func (co *Coordinator) Peers() []string { return co.cfg.Peers }

// Drain blocks until in-flight storage RPCs complete or ctx expires —
// the select half of graceful shutdown, called after the public HTTP
// listener has drained.
func (co *Coordinator) Drain(ctx context.Context) error { return co.client.Drain(ctx) }

// eachPeer runs f concurrently for every peer and returns the
// per-peer errors (nil entries for successes).
func (co *Coordinator) eachPeer(f func(i int, peer string) error) []error {
	errs := make([]error, len(co.cfg.Peers))
	var wg sync.WaitGroup
	for i, peer := range co.cfg.Peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			errs[i] = f(i, peer)
		}(i, peer)
	}
	wg.Wait()
	return errs
}

// Connect fans an info RPC out to every peer, validates that the
// shards agree on dimensionality and attribute names, and fixes the
// global row order (prefix sums of shard sizes in peer order). All
// peers must answer — a cluster whose membership is unknown cannot
// place offsets. Idempotent; later calls return the cached topology.
func (co *Coordinator) Connect(ctx context.Context) error {
	co.mu.Lock()
	if co.shards != nil {
		co.mu.Unlock()
		return nil
	}
	co.mu.Unlock()

	infos := make([]infoResp, len(co.cfg.Peers))
	namesByPeer := make([][]string, len(co.cfg.Peers))
	errs := co.eachPeer(func(i int, peer string) error {
		payload, err := co.client.Call(ctx, peer, "info", emptyFrame(msgInfoReq), msgInfoResp)
		if err != nil {
			return err
		}
		if err := infos[i].decode(payload); err != nil {
			return err
		}
		namesByPeer[i] = infos[i].Names
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: connect to %s: %w", co.cfg.Peers[i], err)
		}
	}
	names := infos[0].Names
	for i := 1; i < len(infos); i++ {
		if len(infos[i].Names) != len(names) {
			return fmt.Errorf("cluster: shard %s has %d dims, shard %s has %d",
				co.cfg.Peers[i], len(infos[i].Names), co.cfg.Peers[0], len(names))
		}
		for j := range names {
			if infos[i].Names[j] != names[j] {
				return fmt.Errorf("cluster: shard %s attribute %d is %q, shard %s has %q",
					co.cfg.Peers[i], j, infos[i].Names[j], co.cfg.Peers[0], names[j])
			}
		}
	}
	shards := make([]shard, len(infos))
	total := 0
	for i, info := range infos {
		shards[i] = shard{peer: co.cfg.Peers[i], n: info.N, offset: total, fp: info.Fingerprint}
		total += info.N
	}
	co.mu.Lock()
	co.shards = shards
	co.totalN = total
	co.names = names
	co.mu.Unlock()
	co.logger.Info("cluster connected", "peers", len(shards), "rows", total, "dims", len(names))
	return nil
}

// forget drops the cached topology so the next use reconnects — called
// when a shard's data fingerprint no longer matches what Connect saw.
func (co *Coordinator) forget() {
	co.mu.Lock()
	co.shards = nil
	co.mu.Unlock()
}

// topology returns the connected shard list (connecting on first use).
func (co *Coordinator) topology(ctx context.Context) ([]shard, int, []string, error) {
	if err := co.Connect(ctx); err != nil {
		return nil, 0, nil, err
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.shards, co.totalN, co.names, nil
}

// Info describes the connected cluster for introspection
// (GET /api/v1/cluster/info on the select node).
type Info struct {
	Peers  []PeerInfo `json:"peers"`
	Rows   int        `json:"rows"`
	Dims   int        `json:"dims"`
	Quorum int        `json:"quorum"`
}

// PeerInfo is one storage node's slice of the global row order.
type PeerInfo struct {
	URL         string `json:"url"`
	Rows        int    `json:"rows"`
	Offset      int    `json:"offset"`
	Fingerprint string `json:"fingerprint"`
}

// Info connects (if needed) and reports the cluster topology.
func (co *Coordinator) Info(ctx context.Context) (Info, error) {
	shards, total, names, err := co.topology(ctx)
	if err != nil {
		return Info{}, err
	}
	out := Info{Rows: total, Dims: len(names), Quorum: co.cfg.Quorum}
	for _, sh := range shards {
		out.Peers = append(out.Peers, PeerInfo{URL: sh.peer, Rows: sh.n, Offset: sh.offset, Fingerprint: sh.fp})
	}
	return out, nil
}

// wireModel marshals (and caches) a monitor for shard replication.
func (co *Coordinator) wireModel(name string, mon *stream.Monitor) (wireEntry, error) {
	co.mu.Lock()
	if e, ok := co.wires[name]; ok && e.mon == mon {
		co.mu.Unlock()
		return e, nil
	}
	co.mu.Unlock()
	var buf bytes.Buffer
	if err := mon.Save(&buf); err != nil {
		return wireEntry{}, err
	}
	e := wireEntry{mon: mon, fp: ModelFingerprint(buf.Bytes()), js: buf.Bytes()}
	co.mu.Lock()
	co.wires[name] = e
	co.mu.Unlock()
	return e, nil
}

// callWithModel issues an RPC that names a model fingerprint,
// answering a shard's 412 model-miss with a push and one retry —
// model replication is lazy, so a freshly restarted shard heals on
// first use.
func (co *Coordinator) callWithModel(ctx context.Context, peer, rpc string, frame []byte, want msgType, wm wireEntry) ([]byte, error) {
	payload, err := co.client.Call(ctx, peer, rpc, frame, want)
	if err == nil || !IsModelMiss(err) {
		return payload, err
	}
	co.logger.Info("replicating model to shard", "peer", peer, "fingerprint", wm.fp)
	push := modelPush{FP: wm.fp, JSON: wm.js}
	if _, perr := co.client.Call(ctx, peer, "model", push.encode(), msgModelAck); perr != nil {
		return nil, fmt.Errorf("cluster: pushing model to %s: %w", peer, perr)
	}
	return co.client.Call(ctx, peer, rpc, frame, want)
}

// chunkBounds splits n rows into len(peers) contiguous chunks in
// fixed peer order (earlier chunks absorb the remainder), so the same
// batch always lands on the same peers.
func chunkBounds(n, parts int) [][2]int {
	out := make([][2]int, parts)
	lo := 0
	for p := 0; p < parts; p++ {
		size := n / parts
		if p < n%parts {
			size++
		}
		out[p] = [2]int{lo, lo + size}
		lo += size
	}
	return out
}

// ScoreBatch is the scatter-gather implementation of
// server.BatchScorer: the batch splits into contiguous per-peer
// chunks, each shard scores its chunk against the replicated model,
// and the alerts reassemble in row order. A failed chunk fails over
// to local scoring on the select node's own model copy — scoring
// degrades in latency, never in completeness or content, so the
// /api/v1/score response stays byte-identical to a single-node hidod
// even with shards down.
func (co *Coordinator) ScoreBatch(ctx context.Context, model string, mon *stream.Monitor, ds *dataset.Dataset, workers int) ([]stream.Alert, error) {
	n := ds.N()
	out := make([]stream.Alert, n)
	wm, err := co.wireModel(model, mon)
	if err != nil {
		return nil, err
	}
	bounds := chunkBounds(n, len(co.cfg.Peers))
	errs := co.eachPeer(func(p int, peer string) error {
		lo, hi := bounds[p][0], bounds[p][1]
		if lo >= hi {
			return nil
		}
		if err := co.scoreChunkInto(ctx, peer, wm, ds, lo, hi, workers, out); err != nil {
			co.logger.Warn("score chunk failing over to local scoring",
				"peer", peer, "rows", hi-lo, "error", err)
			if co.m != nil {
				co.m.Fallback.Inc()
			}
			// The failover is its own span, so a trace of a degraded
			// request shows both the failed RPC attempts and the local
			// re-scoring that replaced them.
			sp := obs.SpanFrom(ctx).Child("failover:score")
			sp.SetAttr("peer", peer)
			sp.SetAttrInt("rows", int64(hi-lo))
			ferr := scoreLocalInto(ctx, mon, ds, lo, hi, out)
			sp.End()
			return ferr
		}
		return nil
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// chunkScratch pools the row-flattening buffer scoreChunkInto builds
// each request frame from, so steady scatter-gather traffic reuses one
// buffer per concurrent chunk instead of allocating per request.
var chunkScratch = sync.Pool{New: func() any { return new([]float64) }}

// scoreChunkInto ships rows [lo,hi) to one peer and decodes its alerts
// straight into out[lo:hi].
func (co *Coordinator) scoreChunkInto(ctx context.Context, peer string, wm wireEntry, ds *dataset.Dataset, lo, hi, workers int, out []stream.Alert) error {
	d := ds.D()
	vp := chunkScratch.Get().(*[]float64)
	vals := (*vp)[:0]
	for i := lo; i < hi; i++ {
		vals = append(vals, ds.RowView(i)...)
	}
	req := scoreReq{ModelFP: wm.fp, N: hi - lo, D: d, Workers: workers, Values: vals}
	frame := req.encode()
	// The frame owns its own bytes; the scratch can go back before the
	// network round-trip.
	*vp = vals
	chunkScratch.Put(vp)
	payload, err := co.callWithModel(ctx, peer, "score", frame, msgScoreResp, wm)
	if err != nil {
		return err
	}
	var resp scoreResp
	if err := resp.decode(payload); err != nil {
		return err
	}
	if len(resp.Alerts) != hi-lo {
		return fmt.Errorf("cluster: peer %s scored %d of %d rows", peer, len(resp.Alerts), hi-lo)
	}
	for i, a := range resp.Alerts {
		out[lo+i] = stream.Alert{Score: a.Score, Matches: a.Matches}
	}
	return nil
}

// scoreLocalInto scores rows [lo,hi) on the local model copy — the
// failover path. Alert content is identical to what the shard would
// have returned: scoring is a pure function of (model, record). One
// scorer serves the whole range, so the per-record scratch is
// allocated once.
func scoreLocalInto(ctx context.Context, mon *stream.Monitor, ds *dataset.Dataset, lo, hi int, out []stream.Alert) error {
	sc := mon.NewScorer()
	for i := lo; i < hi; i++ {
		if (i-lo)%256 == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		out[i] = sc.Score(ds.RowView(i))
	}
	return nil
}

// TopN implements server.TopNer: every shard ranks its own rows
// against the replicated model and returns its local top n; the
// merged answer re-sorts the union under the same (score, global
// index) comparator, so it equals the single-node ranking over the
// concatenated data. With at least Quorum but not all shards
// answering, the response is marked partial instead of failing — the
// ISSUE's degraded mode for reference-set exploration.
func (co *Coordinator) TopN(ctx context.Context, model string, mon *stream.Monitor, n int) (server.TopNResult, error) {
	shards, _, _, err := co.topology(ctx)
	if err != nil {
		return server.TopNResult{}, err
	}
	wm, err := co.wireModel(model, mon)
	if err != nil {
		return server.TopNResult{}, err
	}
	req := topNReq{ModelFP: wm.fp, N: n}
	frame := req.encode()
	resps := make([]topNResp, len(shards))
	errs := co.eachPeer(func(i int, peer string) error {
		payload, err := co.callWithModel(ctx, peer, "topn", frame, msgTopNResp, wm)
		if err != nil {
			return err
		}
		return resps[i].decode(payload)
	})
	answered := 0
	rows := 0
	var entries []server.TopNEntry
	for i, err := range errs {
		if err != nil {
			co.logger.Warn("shard missing from top-n merge", "peer", shards[i].peer, "error", err)
			continue
		}
		answered++
		rows += resps[i].Rows
		for _, it := range resps[i].Items {
			entries = append(entries, server.TopNEntry{
				Index:   shards[i].offset + it.Index,
				Score:   it.Score,
				Flagged: it.Flagged,
			})
		}
	}
	if answered < co.cfg.Quorum {
		return server.TopNResult{}, fmt.Errorf(
			"cluster: only %d of %d shards answered (quorum %d)",
			answered, len(shards), co.cfg.Quorum)
	}
	server.SortTopN(entries)
	if n < len(entries) {
		entries = entries[:n]
	}
	partial := answered < len(shards)
	if partial && co.m != nil {
		co.m.Partials.Inc()
	}
	return server.TopNResult{Rows: rows, Partial: partial, Results: entries}, nil
}

// FetchTrace implements server.TraceFetcher: it fans the trace RPC
// out to every storage peer and concatenates whatever spans their
// rings still hold. Per-peer failures are tolerated — a dead shard or
// a pre-tracing binary (whose strict decoder 400s the unknown message
// type) contributes nothing, and the select node still serves the
// spans it has. The error reports the first per-peer failure for the
// caller's log; spans and error can both be non-nil.
func (co *Coordinator) FetchTrace(ctx context.Context, traceID string) ([]obs.SpanData, error) {
	req := traceReq{TraceID: traceID}
	frame := req.encode()
	perPeer := make([][]obs.SpanData, len(co.cfg.Peers))
	errs := co.eachPeer(func(i int, peer string) error {
		payload, err := co.client.Call(ctx, peer, "trace", frame, msgTraceResp)
		if err != nil {
			return err
		}
		var resp traceResp
		if err := resp.decode(payload); err != nil {
			return err
		}
		perPeer[i] = resp.Spans
		return nil
	})
	var out []obs.SpanData
	var firstErr error
	for i, err := range errs {
		if err != nil {
			co.logger.Debug("trace fetch skipped peer", "peer", co.cfg.Peers[i],
				"trace", traceID, "error", err)
			if firstErr == nil {
				firstErr = fmt.Errorf("peer %s: %w", co.cfg.Peers[i], err)
			}
			continue
		}
		out = append(out, perPeer[i]...)
	}
	return out, firstErr
}

// FitOptions mirror the single-node fit parameters
// (stream.Options): same defaults, same advisor, same searches — the
// point of the distributed fit is that only the counting moves.
type FitOptions struct {
	// Phi is the grid resolution (required, >= 2).
	Phi int
	// TargetS is the §2.4 advisor target and retention threshold
	// (default -3).
	TargetS float64
	// M is how many best projections each run tracks (default 100).
	M int
	// Restarts unions this many evolutionary runs (default 3).
	Restarts int
	// Seed drives the searches.
	Seed uint64
	// Observer receives the searches' generation events (see
	// internal/obs); never changes the fitted model.
	Observer obs.Observer
}

func (o FitOptions) withDefaults() FitOptions {
	if o.TargetS == 0 {
		o.TargetS = -3
	}
	if o.M == 0 {
		o.M = 100
	}
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	return o
}

// Fit mines a model over the union of the shards without ever
// assembling their data on one node for the search: global equi-depth
// cuts are placed exactly (a transient row gather — quantiles need a
// global view), each shard builds its bitmap index under those cuts,
// and the evolutionary search runs on the select node against a
// CountSource whose every cube count is the sum of per-shard counts.
// Because the searches are a pure function of those counts, the
// fitted model is bit-identical to a single-node fit on the
// concatenated data — same projections, same model JSON.
//
// Fit requires every shard: a missing shard makes the counts wrong,
// not just incomplete, so the fit fails instead of degrading.
func (co *Coordinator) Fit(ctx context.Context, opt FitOptions) (*stream.Monitor, []byte, error) {
	opt = opt.withDefaults()
	if opt.Phi < 2 {
		return nil, nil, fmt.Errorf("cluster: phi=%d must be at least 2", opt.Phi)
	}
	if opt.TargetS >= 0 {
		return nil, nil, fmt.Errorf("cluster: target sparsity %v must be negative", opt.TargetS)
	}
	shards, totalN, names, err := co.topology(ctx)
	if err != nil {
		return nil, nil, err
	}
	if totalN == 0 {
		return nil, nil, fmt.Errorf("cluster: shards hold no rows")
	}

	// Exact global cuts: equi-depth boundaries are order statistics of
	// the full column, which no per-shard summary reproduces exactly,
	// so the rows are gathered once, discretized, and discarded.
	concat, err := co.gatherRows(ctx, shards, names)
	if err != nil {
		return nil, nil, err
	}
	g := discretize.Fit(concat, opt.Phi, discretize.EquiDepth)
	cuts := g.AllCuts()
	concat = nil // the gather was transient; counting happens on the shards
	g = nil

	gid := gridID(opt.Phi, cuts, shards)
	if err := co.pushGrid(ctx, gid, opt.Phi, cuts, shards); err != nil {
		return nil, nil, err
	}

	src := co.newSource(ctx, gid, totalN, len(names), opt.Phi)
	advice := core.Advise(totalN, opt.Phi, opt.TargetS)
	res, err := core.EvolutionaryRestartsOver(src, core.EvoOptions{
		K: advice.K, M: opt.M, Seed: opt.Seed, MinCoverage: -1,
		Observer: opt.Observer, RunID: "fit",
	}, opt.Restarts)
	if err != nil {
		return nil, nil, err
	}
	res = res.FilterProjectionsOver(src, opt.TargetS)
	if err := src.Err(); err != nil {
		return nil, nil, fmt.Errorf("cluster: distributed count failed: %w", err)
	}

	model := stream.Model{
		Version: 1,
		Phi:     opt.Phi,
		K:       advice.K,
		Options: stream.Options{Phi: opt.Phi, TargetS: opt.TargetS, M: opt.M,
			Restarts: opt.Restarts, Seed: opt.Seed},
		Names: append([]string(nil), names...),
		Cuts:  cuts,
	}
	for _, p := range res.Projections {
		model.Projections = append(model.Projections, stream.ModelProjection{
			Cube: p.Cube, Sparsity: p.Sparsity, Count: p.Count,
		})
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(model); err != nil {
		return nil, nil, fmt.Errorf("cluster: encoding fitted model: %w", err)
	}
	mon, err := stream.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: reloading fitted model: %w", err)
	}
	hits, misses, size := src.Stats()
	co.logger.Info("cluster fit done", "rows", totalN, "k", advice.K,
		"projections", len(mon.Projections()),
		"count_cache_hits", hits, "count_cache_misses", misses, "distinct_cubes", size)
	return mon, buf.Bytes(), nil
}

// gatherRows pulls every shard's rows and concatenates them in peer
// order — the transient global view the cut placement needs.
func (co *Coordinator) gatherRows(ctx context.Context, shards []shard, names []string) (*dataset.Dataset, error) {
	resps := make([]rowsResp, len(shards))
	errs := co.eachPeer(func(i int, peer string) error {
		payload, err := co.client.Call(ctx, peer, "rows", emptyFrame(msgRowsReq), msgRowsResp)
		if err != nil {
			return err
		}
		if err := resps[i].decode(payload); err != nil {
			return err
		}
		if resps[i].N != shards[i].n || resps[i].D != len(names) {
			co.forget()
			return fmt.Errorf("cluster: shard %s now holds %dx%d, connected as %dx%d — reconnect",
				peer, resps[i].N, resps[i].D, shards[i].n, len(names))
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: gathering rows from %s: %w", shards[i].peer, err)
		}
	}
	ds := dataset.New(append([]string(nil), names...), 0)
	d := len(names)
	for i := range resps {
		for r := 0; r < resps[i].N; r++ {
			ds.AppendRow(resps[i].Values[r*d:(r+1)*d], "")
		}
	}
	return ds, nil
}

// gridID names a pushed discretization by everything that defines it:
// resolution, exact cut bits, and the shard set it was placed over.
func gridID(phi int, cuts [][]float64, shards []shard) string {
	var e enc
	e.u32(uint32(phi))
	for _, c := range cuts {
		for _, v := range c {
			e.f64(v)
		}
	}
	for _, sh := range shards {
		e.str(sh.fp)
	}
	return "g-" + ModelFingerprint(e.b)[2:]
}

// pushGrid installs the global cuts on every shard. All must ack.
func (co *Coordinator) pushGrid(ctx context.Context, gid string, phi int, cuts [][]float64, shards []shard) error {
	errs := co.eachPeer(func(i int, peer string) error {
		req := gridReq{GridID: gid, DataFP: shards[i].fp, Phi: phi, Cuts: cuts}
		_, err := co.client.Call(ctx, peer, "grid", req.encode(), msgGridAck)
		return err
	})
	for i, err := range errs {
		if err != nil {
			if IsGridMiss(err) {
				co.forget() // the shard's data changed under us
			}
			return fmt.Errorf("cluster: pushing grid to %s: %w", shards[i].peer, err)
		}
	}
	co.logger.Info("grid pushed", "grid", gid, "phi", phi, "peers", len(shards))
	return nil
}
