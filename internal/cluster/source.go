package cluster

import (
	"context"
	"fmt"
	"sync"

	"hido/internal/core"
	"hido/internal/cube"
)

// Source is a core.CountSource whose cube counts come from the
// shards: every count is the sum of per-shard counts for the same
// cube under the same global cuts, which is exact because the shards
// partition the rows. The evolutionary and brute-force searches are
// pure functions of these counts, so running them over a Source
// yields bit-identical results to a single-node run over the
// concatenated data.
//
// Counts are memoized (searches revisit cubes constantly; an RPC per
// revisit would be pathological) and misses are resolved in one
// batched RPC per shard per CountBatch call — one round trip per
// search generation, not one per cube.
//
// core.CountSource has no error returns: a search cannot surface an
// RPC failure mid-generation. Source therefore latches the first
// failure and answers 0 from then on; Fit checks Err() after the
// search and discards the result if anything failed. Wrong-but-known
// beats a panic in a worker goroutine.
type Source struct {
	co     *Coordinator
	ctx    context.Context
	gridID string
	n, d   int
	phi    int

	mu     sync.Mutex
	memo   map[string]int
	hits   int
	misses int
	fail   error
}

func (co *Coordinator) newSource(ctx context.Context, gridID string, n, d, phi int) *Source {
	return &Source{co: co, ctx: ctx, gridID: gridID, n: n, d: d, phi: phi,
		memo: map[string]int{}}
}

func (s *Source) N() int   { return s.n }
func (s *Source) D() int   { return s.d }
func (s *Source) Phi() int { return s.phi }

// Err returns the first RPC failure, if any. A search result is only
// trustworthy when Err() is nil.
func (s *Source) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fail
}

// Stats reports memo effectiveness: (hits, misses, distinct cubes).
func (s *Source) Stats() (hits, misses, size int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, len(s.memo)
}

func (s *Source) latch(err error) {
	s.mu.Lock()
	if s.fail == nil {
		s.fail = err
	}
	s.mu.Unlock()
}

// CountKey returns the global count of rows inside c.
func (s *Source) CountKey(c cube.Cube, key string) int {
	s.mu.Lock()
	if n, ok := s.memo[key]; ok {
		s.hits++
		s.mu.Unlock()
		return n
	}
	s.mu.Unlock()
	counts, err := s.co.remoteCounts(s.ctx, s.gridID, []cube.Cube{c})
	if err != nil {
		s.latch(err)
		return 0
	}
	s.mu.Lock()
	s.memo[key] = counts[0]
	s.misses++
	s.mu.Unlock()
	return counts[0]
}

// CountBatch resolves a generation's worth of cubes: memo hits are
// answered locally, the distinct misses travel in a single count RPC
// per shard, and the sums land back in the memo.
func (s *Source) CountBatch(cs []cube.Cube, keys []string, workers int) []int {
	out := make([]int, len(cs))
	var missCubes []cube.Cube
	var missKeys []string
	pending := map[string]bool{}
	s.mu.Lock()
	for i, k := range keys {
		if n, ok := s.memo[k]; ok {
			out[i] = n
			s.hits++
		} else if !pending[k] {
			pending[k] = true
			missCubes = append(missCubes, cs[i])
			missKeys = append(missKeys, k)
		}
	}
	s.mu.Unlock()
	if len(missCubes) == 0 {
		return out
	}
	counts, err := s.co.remoteCounts(s.ctx, s.gridID, missCubes)
	if err != nil {
		s.latch(err)
		counts = make([]int, len(missCubes))
	}
	s.mu.Lock()
	for i, k := range missKeys {
		s.memo[k] = counts[i]
		s.misses++
	}
	for i, k := range keys {
		out[i] = s.memo[k]
	}
	s.mu.Unlock()
	return out
}

// Cover returns the global row indices inside c: each shard's local
// cover shifted by its offset, concatenated in peer order. Local
// covers are ascending and shard ranges are disjoint and ordered, so
// the concatenation is the ascending global cover — the same order a
// single-node index produces.
func (s *Source) Cover(c cube.Cube) []int {
	shards, _, _, err := s.co.topology(s.ctx)
	if err != nil {
		s.latch(err)
		return nil
	}
	covers := make([][]int, len(shards))
	errs := s.co.eachPeer(func(i int, peer string) error {
		req := coverReq{GridID: s.gridID, Cube: c}
		payload, err := s.co.client.Call(s.ctx, peer, "cover", req.encode(), msgCoverResp)
		if err != nil {
			return err
		}
		var resp coverResp
		if err := resp.decode(payload); err != nil {
			return err
		}
		covers[i] = resp.Indices
		return nil
	})
	var all []int
	for i, err := range errs {
		if err != nil {
			s.latch(fmt.Errorf("cover from %s: %w", shards[i].peer, err))
			return nil
		}
		for _, idx := range covers[i] {
			all = append(all, shards[i].offset+idx)
		}
	}
	return all
}

// NewPartial returns a Partial over the distributed counts. Every
// search constrains each dimension at most once between Resets, so a
// partial is faithfully represented by the cube of its constraints —
// each Count/Extend resolves through the memoized CountKey, hitting
// the wire only for cubes this fit has never counted.
func (s *Source) NewPartial() core.Partial {
	return &remotePartial{s: s}
}

// remotePartial accumulates constraints as a cube and counts through
// the Source. The cube is dense (one position per dimension); cur()
// allocates it on first touch and With clones on every constraint, so
// partials never alias each other's state.
type remotePartial struct {
	s *Source
	c cube.Cube
}

func (p *remotePartial) cur() cube.Cube {
	if p.c == nil {
		p.c = cube.New(p.s.d)
	}
	return p.c
}

func (p *remotePartial) Reset() { p.c = cube.New(p.s.d) }

func (p *remotePartial) Constrain(j int, r uint16) {
	p.c = p.cur().With(j, r)
}

func (p *remotePartial) ConstrainFrom(parent core.Partial, j int, r uint16) int {
	p.c = parent.(*remotePartial).cur().With(j, r)
	return p.Count()
}

func (p *remotePartial) Count() int {
	if p.c == nil || p.c.K() == 0 {
		return p.s.n
	}
	return p.s.CountKey(p.c, p.c.Key())
}

func (p *remotePartial) Extend(j int, r uint16) int {
	ext := p.cur().With(j, r)
	return p.s.CountKey(ext, ext.Key())
}

func (p *remotePartial) CopyFrom(other core.Partial) {
	o := other.(*remotePartial)
	if o.c == nil {
		p.c = nil
		return
	}
	p.c = o.c.Clone()
}

// remoteCounts sums one batch of cube counts across every shard. All
// shards must answer — a partial sum is not a lower-confidence count,
// it is a wrong count.
func (co *Coordinator) remoteCounts(ctx context.Context, gridID string, cs []cube.Cube) ([]int, error) {
	shards, _, names, err := co.topology(ctx)
	if err != nil {
		return nil, err
	}
	req := countReq{GridID: gridID, D: len(names), Cubes: cs}
	frame := req.encode()
	perShard := make([][]int, len(shards))
	errs := co.eachPeer(func(i int, peer string) error {
		payload, err := co.client.Call(ctx, peer, "count", frame, msgCountResp)
		if err != nil {
			return err
		}
		var resp countResp
		if err := resp.decode(payload); err != nil {
			return err
		}
		if len(resp.Counts) != len(cs) {
			return fmt.Errorf("cluster: peer %s counted %d of %d cubes", peer, len(resp.Counts), len(cs))
		}
		perShard[i] = resp.Counts
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: counting on %s: %w", shards[i].peer, err)
		}
	}
	totals := make([]int, len(cs))
	for _, counts := range perShard {
		for j, n := range counts {
			totals[j] += n
		}
	}
	return totals, nil
}
