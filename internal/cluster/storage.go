package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"hido/internal/dataset"
	"hido/internal/discretize"
	"hido/internal/grid"
	"hido/internal/metrics"
	"hido/internal/obs"
	"hido/internal/stream"
)

// Storage caps: how many pushed grids and model replicas a node keeps
// resident. Oldest entries are evicted FIFO — a re-push rebuilds them,
// so eviction costs latency, never correctness.
const (
	maxStoredGrids  = 4
	maxStoredModels = 16
)

// Storage is a storage node: it owns one row shard and answers the
// binary RPCs a coordinator fans out — shard info, transient row
// gather, grid push, cube count/cover (the distributed-search seam),
// model replication, chunk scoring, and local top-n.
//
// It holds no public-API state: models arrive as replicas pushed by
// the coordinator, keyed by fingerprint, and grids are built on push
// from the coordinator's globally fitted cut points.
type Storage struct {
	ds     *dataset.Dataset
	fp     string
	logger *slog.Logger
	reg    *metrics.Registry
	spans  *obs.SpanRecorder

	mRPCs *metrics.Counter
	mLat  *metrics.Histogram

	mu         sync.RWMutex
	grids      map[string]*grid.Index
	gridPhi    map[string]int
	gridOrder  []string
	models     map[string]*stream.Monitor
	modelOrder []string

	started time.Time
}

// NewStorage builds a storage node over its row shard. The logger
// receives one structured line per RPC at debug level; nil discards.
func NewStorage(ds *dataset.Dataset, logger *slog.Logger) *Storage {
	if logger == nil {
		logger = obs.NopLogger()
	}
	reg := metrics.NewRegistry()
	return &Storage{
		ds:     ds,
		fp:     DataFingerprint(ds),
		logger: logger,
		reg:    reg,
		mRPCs: reg.Counter("hidod_cluster_storage_rpcs_total",
			"Storage-node RPCs served, by rpc and status code.", "rpc", "code"),
		mLat: reg.Histogram("hidod_cluster_storage_rpc_seconds",
			"Storage-node RPC latency in seconds, by rpc.", nil, "rpc"),
		grids:   map[string]*grid.Index{},
		gridPhi: map[string]int{},
		models:  map[string]*stream.Monitor{},
		started: time.Now(),
	}
}

// Fingerprint returns the shard data fingerprint.
func (st *Storage) Fingerprint() string { return st.fp }

// SetSpans enables distributed tracing on this node: RPCs arriving
// with a trace envelope continue the caller's trace as spans in r's
// ring, served back through the trace RPC and the node's own debug
// endpoints. nil (the default) disables tracing. Must be set before
// the node starts serving.
func (st *Storage) SetSpans(r *obs.SpanRecorder) { st.spans = r }

// DataFingerprint hashes a dataset's shape, attribute names and exact
// value bits. It is the shard-compatibility check: a coordinator
// records it at connect time and a grid push names it, so a shard
// restarted over different data is detected instead of silently
// miscounted.
func DataFingerprint(ds *dataset.Dataset) string {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(ds.N()))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(ds.D()))
	h.Write(buf[:])
	for _, name := range ds.Names {
		io.WriteString(h, name)
		h.Write([]byte{0})
	}
	for i := 0; i < ds.N(); i++ {
		for _, v := range ds.RowView(i) {
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return "d-" + hex.EncodeToString(h.Sum(nil)[:16])
}

// Handler returns the node's HTTP handler: the /rpc/v1/ endpoints
// plus /healthz and /metrics.
func (st *Storage) Handler() http.Handler {
	mux := http.NewServeMux()
	rpc := func(name string, want msgType, h func(payload []byte) ([]byte, error)) {
		mux.HandleFunc("POST /rpc/v1/"+name, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			code, traceID := st.serveRPC(w, r, name, want, h)
			st.mRPCs.Inc(name, fmt.Sprint(code))
			st.mLat.Observe(time.Since(start).Seconds(), name)
			if traceID == "" {
				st.logger.Debug("rpc", "rpc", name, "code", code,
					"duration_ms", float64(time.Since(start).Microseconds())/1000,
					"remote", r.RemoteAddr)
			} else {
				st.logger.Debug("rpc", "rpc", name, "code", code, "trace", traceID,
					"duration_ms", float64(time.Since(start).Microseconds())/1000,
					"remote", r.RemoteAddr)
			}
		})
	}
	rpc("info", msgInfoReq, st.rpcInfo)
	rpc("rows", msgRowsReq, st.rpcRows)
	rpc("grid", msgGridReq, st.rpcGrid)
	rpc("count", msgCountReq, st.rpcCount)
	rpc("cover", msgCoverReq, st.rpcCover)
	rpc("model", msgModelPush, st.rpcModel)
	rpc("score", msgScoreReq, st.rpcScore)
	rpc("topn", msgTopNReq, st.rpcTopN)
	rpc("trace", msgTraceReq, st.rpcTrace)
	// Local debug introspection, mirroring the select node's endpoints:
	// an operator can ask any storage node directly what it holds.
	mux.HandleFunc("GET /api/v1/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		writeStorageJSON(w, http.StatusOK, map[string]any{
			"enabled": st.spans.Enabled(), "node": st.spans.Node(),
			"traces": st.spans.Recent(0),
		})
	})
	mux.HandleFunc("GET /api/v1/debug/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		spans := st.spans.Trace(id)
		if len(spans) == 0 {
			writeStorageJSON(w, http.StatusNotFound, map[string]string{"error": "trace not held on this node"})
			return
		}
		writeStorageJSON(w, http.StatusOK, map[string]any{
			"trace": id, "spans": len(spans), "tree": obs.BuildSpanTree(spans),
		})
	})
	mux.HandleFunc("GET /api/v1/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		writeStorageJSON(w, http.StatusOK, map[string]any{
			"enabled": st.spans.Enabled(), "node": st.spans.Node(),
			"requests": st.spans.Live(),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		b := obs.Build()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","role":"storage","rows":%d,"dims":%d,"fingerprint":%q,"version":%q,"uptime_seconds":%g}`+"\n",
			st.ds.N(), st.ds.D(), st.fp, b.Version, time.Since(st.started).Seconds())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := st.reg.WriteText(w); err != nil {
			st.logger.Error("metrics write failed", "error", err)
		}
	})
	return mux
}

// rpcError carries an HTTP status with a message; handlers use it to
// distinguish client faults (bad frame, unknown grid) from the 412
// model-miss signal the coordinator reacts to.
type rpcError struct {
	code int
	msg  string
}

func (e *rpcError) Error() string { return e.msg }

func rpcErrorf(code int, format string, args ...any) error {
	return &rpcError{code: code, msg: fmt.Sprintf(format, args...)}
}

// serveRPC reads, validates and dispatches one frame, writing either
// the handler's response frame or a plain-text error. A trace
// envelope around the frame continues the caller's trace as a span on
// this node. Returns the status code for metrics and the trace ID
// (if any) for the debug log.
func (st *Storage) serveRPC(w http.ResponseWriter, r *http.Request, name string, want msgType, h func([]byte) ([]byte, error)) (int, string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxFramePayload+64))
	if err != nil {
		return writeRPCError(w, http.StatusRequestEntityTooLarge, err.Error()), ""
	}
	sc, body, err := unwrapTraceFrame(body)
	if err != nil {
		return writeRPCError(w, http.StatusBadRequest, err.Error()), ""
	}
	// Continue the select node's trace; nil st.spans or a bare frame
	// yields a nil span and every call below is a no-op.
	sp := st.spans.Continue("storage:"+name, sc)
	t, payload, err := decodeFrame(body)
	if err != nil {
		code := writeRPCError(w, http.StatusBadRequest, err.Error())
		endRPCSpan(sp, code)
		return code, sc.TraceID
	}
	if t != want {
		code := writeRPCError(w, http.StatusBadRequest,
			fmt.Sprintf("cluster: message type %d on a type-%d endpoint", t, want))
		endRPCSpan(sp, code)
		return code, sc.TraceID
	}
	resp, err := h(payload)
	if err != nil {
		code := http.StatusInternalServerError
		var re *rpcError
		if errors.As(err, &re) {
			code = re.code
		}
		code = writeRPCError(w, code, err.Error())
		endRPCSpan(sp, code)
		return code, sc.TraceID
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(resp)
	endRPCSpan(sp, http.StatusOK)
	return http.StatusOK, sc.TraceID
}

// endRPCSpan stamps the outcome on a storage-side span. Nil-safe.
func endRPCSpan(sp *obs.Span, code int) {
	sp.SetAttrInt("code", int64(code))
	sp.End()
}

func writeStorageJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeRPCError(w http.ResponseWriter, code int, msg string) int {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	fmt.Fprintln(w, msg)
	return code
}

func (st *Storage) rpcInfo(payload []byte) ([]byte, error) {
	resp := infoResp{N: st.ds.N(), Names: st.ds.Names, Fingerprint: st.fp}
	return resp.encode(), nil
}

func (st *Storage) rpcRows(payload []byte) ([]byte, error) {
	n, d := st.ds.N(), st.ds.D()
	resp := rowsResp{N: n, D: d, Values: make([]float64, 0, n*d)}
	for i := 0; i < n; i++ {
		resp.Values = append(resp.Values, st.ds.RowView(i)...)
	}
	return resp.encode(), nil
}

func (st *Storage) rpcGrid(payload []byte) ([]byte, error) {
	var req gridReq
	if err := req.decode(payload); err != nil {
		return nil, rpcErrorf(http.StatusBadRequest, "%v", err)
	}
	if req.DataFP != st.fp {
		return nil, rpcErrorf(http.StatusConflict,
			"cluster: grid push expects shard %s, this shard is %s", req.DataFP, st.fp)
	}
	if len(req.Cuts) != st.ds.D() {
		return nil, rpcErrorf(http.StatusConflict,
			"cluster: grid push has %d dims, shard has %d", len(req.Cuts), st.ds.D())
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.grids[req.GridID]; !ok {
		// Discretize this shard's rows under the coordinator's global
		// cuts: cell assignment depends only on (cuts, value), so the
		// shards' assignments concatenate to exactly what a single-node
		// fit over all rows would produce — the invariant the whole
		// distributed search rests on.
		g := discretize.Apply(st.ds, req.Phi, req.Cuts)
		st.grids[req.GridID] = grid.Build(g)
		st.gridPhi[req.GridID] = req.Phi
		st.gridOrder = append(st.gridOrder, req.GridID)
		if len(st.gridOrder) > maxStoredGrids {
			old := st.gridOrder[0]
			st.gridOrder = st.gridOrder[1:]
			delete(st.grids, old)
			delete(st.gridPhi, old)
		}
		st.logger.Info("grid built", "grid", req.GridID, "phi", req.Phi, "rows", st.ds.N())
	}
	return emptyFrame(msgGridAck), nil
}

// lookupGrid fetches a pushed grid; unknown IDs are 409 so the
// coordinator re-pushes (e.g. after this node restarted or evicted).
func (st *Storage) lookupGrid(id string) (*grid.Index, int, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	ix, ok := st.grids[id]
	if !ok {
		return nil, 0, rpcErrorf(http.StatusConflict, "cluster: unknown grid %q", id)
	}
	return ix, st.gridPhi[id], nil
}

func (st *Storage) rpcCount(payload []byte) ([]byte, error) {
	var req countReq
	if err := req.decode(payload); err != nil {
		return nil, rpcErrorf(http.StatusBadRequest, "%v", err)
	}
	ix, phi, err := st.lookupGrid(req.GridID)
	if err != nil {
		return nil, err
	}
	if req.D != st.ds.D() {
		return nil, rpcErrorf(http.StatusConflict,
			"cluster: count over %d dims, shard has %d", req.D, st.ds.D())
	}
	resp := countResp{Counts: make([]int, len(req.Cubes))}
	for i, c := range req.Cubes {
		if !c.Valid(phi) {
			return nil, rpcErrorf(http.StatusBadRequest,
				"cluster: cube %d has cells outside [0,%d]", i, phi)
		}
		resp.Counts[i] = ix.Count(c)
	}
	return resp.encode(), nil
}

func (st *Storage) rpcCover(payload []byte) ([]byte, error) {
	var req coverReq
	if err := req.decode(payload); err != nil {
		return nil, rpcErrorf(http.StatusBadRequest, "%v", err)
	}
	ix, phi, err := st.lookupGrid(req.GridID)
	if err != nil {
		return nil, err
	}
	if len(req.Cube) != st.ds.D() {
		return nil, rpcErrorf(http.StatusConflict,
			"cluster: cover cube has %d dims, shard has %d", len(req.Cube), st.ds.D())
	}
	if !req.Cube.Valid(phi) {
		return nil, rpcErrorf(http.StatusBadRequest, "cluster: cover cube has out-of-range cells")
	}
	resp := coverResp{Indices: ix.Cover(req.Cube).Indices()}
	return resp.encode(), nil
}

func (st *Storage) rpcModel(payload []byte) ([]byte, error) {
	var req modelPush
	if err := req.decode(payload); err != nil {
		return nil, rpcErrorf(http.StatusBadRequest, "%v", err)
	}
	if got := ModelFingerprint(req.JSON); got != req.FP {
		return nil, rpcErrorf(http.StatusBadRequest,
			"cluster: model bytes hash to %s, push names %s", got, req.FP)
	}
	mon, err := stream.Load(bytes.NewReader(req.JSON))
	if err != nil {
		return nil, rpcErrorf(http.StatusBadRequest, "%v", err)
	}
	if mon.D() != st.ds.D() {
		return nil, rpcErrorf(http.StatusConflict,
			"cluster: model has %d dims, shard has %d", mon.D(), st.ds.D())
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.models[req.FP]; !ok {
		st.models[req.FP] = mon
		st.modelOrder = append(st.modelOrder, req.FP)
		if len(st.modelOrder) > maxStoredModels {
			old := st.modelOrder[0]
			st.modelOrder = st.modelOrder[1:]
			delete(st.models, old)
		}
		st.logger.Info("model replica installed", "fingerprint", req.FP,
			"projections", len(mon.Projections()))
	}
	return emptyFrame(msgModelAck), nil
}

// lookupModel fetches a model replica; a miss is 412, the signal the
// coordinator answers with a push-and-retry.
func (st *Storage) lookupModel(fp string) (*stream.Monitor, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	mon, ok := st.models[fp]
	if !ok {
		return nil, rpcErrorf(http.StatusPreconditionFailed, "cluster: model %q not replicated", fp)
	}
	return mon, nil
}

func (st *Storage) rpcScore(payload []byte) ([]byte, error) {
	var req scoreReq
	if err := req.decode(payload); err != nil {
		return nil, rpcErrorf(http.StatusBadRequest, "%v", err)
	}
	mon, err := st.lookupModel(req.ModelFP)
	if err != nil {
		return nil, err
	}
	if req.D != mon.D() {
		return nil, rpcErrorf(http.StatusConflict,
			"cluster: score rows have %d dims, model has %d", req.D, mon.D())
	}
	resp := scoreResp{Alerts: make([]wireAlert, req.N)}
	sc := mon.NewScorer()
	for i := 0; i < req.N; i++ {
		a := sc.Score(req.Values[i*req.D : (i+1)*req.D])
		resp.Alerts[i] = wireAlert{Score: a.Score, Matches: a.Matches}
	}
	return resp.encode(), nil
}

func (st *Storage) rpcTopN(payload []byte) ([]byte, error) {
	var req topNReq
	if err := req.decode(payload); err != nil {
		return nil, rpcErrorf(http.StatusBadRequest, "%v", err)
	}
	if req.N < 1 {
		return nil, rpcErrorf(http.StatusBadRequest, "cluster: top-n with n=%d", req.N)
	}
	mon, err := st.lookupModel(req.ModelFP)
	if err != nil {
		return nil, err
	}
	if mon.D() != st.ds.D() {
		return nil, rpcErrorf(http.StatusConflict,
			"cluster: model has %d dims, shard has %d", mon.D(), st.ds.D())
	}
	n := st.ds.N()
	items := make([]topNItem, n)
	sc := mon.NewScorer()
	for i := 0; i < n; i++ {
		a := sc.Score(st.ds.RowView(i))
		items[i] = topNItem{Index: i, Score: a.Score, Flagged: a.Flagged()}
	}
	// Most outlying first: ascending score (sparsity coefficients are
	// negative for outliers), row index as the stable tie-break — the
	// same comparator the coordinator merges with and the single-node
	// top-n sorts with, which is what makes the merge exact.
	sort.Slice(items, func(a, b int) bool {
		if items[a].Score != items[b].Score {
			return items[a].Score < items[b].Score
		}
		return items[a].Index < items[b].Index
	})
	if req.N < len(items) {
		items = items[:req.N]
	}
	resp := topNResp{Rows: n, Items: items}
	return resp.encode(), nil
}

// rpcTrace answers with this node's retained spans for one trace —
// the scatter half of cross-node span-tree assembly. A node without
// tracing enabled (or whose ring evicted the trace) answers an empty
// list, never an error: observability gaps degrade the tree, not the
// request.
func (st *Storage) rpcTrace(payload []byte) ([]byte, error) {
	var req traceReq
	if err := req.decode(payload); err != nil {
		return nil, rpcErrorf(http.StatusBadRequest, "%v", err)
	}
	resp := traceResp{Spans: st.spans.Trace(req.TraceID)}
	return resp.encode(), nil
}

// ModelFingerprint names a model by its exact serialized bytes.
func ModelFingerprint(modelJSON []byte) string {
	h := sha256.Sum256(modelJSON)
	return "m-" + hex.EncodeToString(h[:16])
}
