// Package cluster is hido's sharded serving and fitting subsystem: a
// set of storage nodes that each own a disjoint row shard, and a
// select node (the coordinator) that fans requests out to them and
// merges the partial answers deterministically.
//
// The design exploits the one property that makes the paper's method
// data-parallel for free: the sparsity coefficient (Equation 1) is a
// pure function of cube *counts*, and cube counts are additive across
// disjoint row shards. A coordinator that sums per-shard counts
// through the core.CountSource seam therefore reproduces a
// single-node search bit for bit on the concatenated data — no
// approximation, no re-tuning.
//
// Nodes speak a compact length-prefixed binary protocol carried as
// HTTP POST bodies under /rpc/v1/. Binary framing (rather than JSON)
// keeps float64 payloads exact — NaN encodes its IEEE bits, so
// missing attributes survive the wire — and makes hostile-input
// limits enforceable at the decoder: every length prefix is checked
// against the bytes actually present before anything is allocated.
package cluster

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"hido/internal/cube"
	"hido/internal/obs"
)

// Frame layout: 4-byte magic, 1-byte message type, 4-byte big-endian
// payload length, payload. The magic rejects accidental cross-wiring
// (a JSON API client hitting an RPC path) before any parsing happens.
const frameMagic = "hcp1"

// Decode limits. Every limit is enforced before allocation, so a
// hostile frame can never make a node allocate more than its actual
// byte size.
const (
	maxFramePayload = 64 << 20 // one frame's payload
	maxWireString   = 1 << 20  // any single string field
	maxWireDims     = 4096     // dimensions per record/cube
)

type msgType uint8

const (
	msgInfoReq msgType = iota + 1
	msgInfoResp
	msgRowsReq
	msgRowsResp
	msgGridReq
	msgGridAck
	msgCountReq
	msgCountResp
	msgCoverReq
	msgCoverResp
	msgModelPush
	msgModelAck
	msgScoreReq
	msgScoreResp
	msgTopNReq
	msgTopNResp
	msgTraceReq
	msgTraceResp
	msgTypeEnd // sentinel: first invalid type
)

// encodeFrame wraps a payload in the wire framing.
func encodeFrame(t msgType, payload []byte) []byte {
	out := make([]byte, 0, len(frameMagic)+5+len(payload))
	out = append(out, frameMagic...)
	out = append(out, byte(t))
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

// decodeFrame validates the framing and returns the message type and
// payload. The payload aliases b.
func decodeFrame(b []byte) (msgType, []byte, error) {
	if len(b) < len(frameMagic)+5 {
		return 0, nil, fmt.Errorf("cluster: frame truncated (%d bytes)", len(b))
	}
	if string(b[:len(frameMagic)]) != frameMagic {
		return 0, nil, fmt.Errorf("cluster: bad frame magic")
	}
	t := msgType(b[len(frameMagic)])
	if t == 0 || t >= msgTypeEnd {
		return 0, nil, fmt.Errorf("cluster: unknown message type %d", t)
	}
	n := binary.BigEndian.Uint32(b[len(frameMagic)+1:])
	payload := b[len(frameMagic)+5:]
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("cluster: declared payload %d exceeds limit %d", n, maxFramePayload)
	}
	if int(n) != len(payload) {
		return 0, nil, fmt.Errorf("cluster: declared payload %d bytes, frame carries %d", n, len(payload))
	}
	return t, payload, nil
}

// enc builds a payload with fixed-width big-endian primitives.
type enc struct{ b []byte }

func (e *enc) u8(v byte)     { e.b = append(e.b, v) }
func (e *enc) u16(v uint16)  { e.b = binary.BigEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.b = append(e.b, b...)
}

// dec consumes a payload, recording the first violation instead of
// panicking: all getters return zero values after a failure, and the
// caller checks err() once at the end. Length prefixes are validated
// against the bytes that remain, never trusted for allocation sizes.
type dec struct {
	b    []byte
	off  int
	fail string
}

func (d *dec) bad(format string, args ...any) {
	if d.fail == "" {
		d.fail = fmt.Sprintf(format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.fail != "" {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.bad("payload truncated at offset %d (want %d more bytes)", d.off, n)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str(max int) string {
	n := d.u32()
	if int64(n) > int64(max) {
		d.bad("string of %d bytes exceeds limit %d", n, max)
		return ""
	}
	return string(d.take(int(n)))
}

// count reads a u32 element count and validates it against the bytes
// remaining (elemSize is the minimum encoding of one element), so a
// huge declared count on a short payload fails before allocation.
func (d *dec) count(elemSize int, what string) int {
	n := d.u32()
	if d.fail != "" {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(d.remaining()) {
		d.bad("%s count %d exceeds payload (%d bytes left)", what, n, d.remaining())
		return 0
	}
	return int(n)
}

func (d *dec) err() error {
	if d.fail != "" {
		return fmt.Errorf("cluster: %s", d.fail)
	}
	if d.remaining() != 0 {
		return fmt.Errorf("cluster: %d trailing bytes after payload", d.remaining())
	}
	return nil
}

// dims reads a dimension count shared by several messages.
func (d *dec) dims() int {
	v := d.u32()
	if d.fail != "" {
		return 0
	}
	if v == 0 || v > maxWireDims {
		d.bad("dimension count %d outside [1,%d]", v, maxWireDims)
		return 0
	}
	return int(v)
}

// ---- info ----

// infoResp describes a storage node's shard: row count, attribute
// names, and the shard data fingerprint the coordinator uses as the
// compatibility check when pushing grids.
type infoResp struct {
	N           int
	Names       []string
	Fingerprint string
}

func (m *infoResp) encode() []byte {
	var e enc
	e.u32(uint32(m.N))
	e.u32(uint32(len(m.Names)))
	for _, s := range m.Names {
		e.str(s)
	}
	e.str(m.Fingerprint)
	return encodeFrame(msgInfoResp, e.b)
}

func (m *infoResp) decode(p []byte) error {
	d := dec{b: p}
	m.N = int(d.u32())
	nd := d.count(4, "name")
	if nd > maxWireDims {
		d.bad("name count %d exceeds %d dims", nd, maxWireDims)
	}
	if d.fail == "" {
		m.Names = make([]string, nd)
		for i := range m.Names {
			m.Names[i] = d.str(maxWireString)
		}
	}
	m.Fingerprint = d.str(maxWireString)
	return d.err()
}

// ---- rows ----

// rowsResp carries a shard's raw records row-major; the coordinator
// gathers them transiently to place exact global equi-depth cuts.
type rowsResp struct {
	N, D   int
	Values []float64 // len N*D, row-major; NaN = missing
}

func (m *rowsResp) encode() []byte {
	var e enc
	e.u32(uint32(m.N))
	e.u32(uint32(m.D))
	for _, v := range m.Values {
		e.f64(v)
	}
	return encodeFrame(msgRowsResp, e.b)
}

func (m *rowsResp) decode(p []byte) error {
	d := dec{b: p}
	m.N = int(d.u32())
	m.D = d.dims()
	if d.fail == "" {
		if need := int64(m.N) * int64(m.D) * 8; need != int64(d.remaining()) {
			d.bad("rows payload carries %d bytes for %dx%d values", d.remaining(), m.N, m.D)
		}
	}
	if d.fail == "" {
		m.Values = make([]float64, m.N*m.D)
		for i := range m.Values {
			m.Values[i] = d.f64()
		}
	}
	return d.err()
}

// ---- grid ----

// gridReq pushes a discretization onto a shard: the coordinator's
// globally fitted cut points plus the data fingerprint it believes the
// shard holds. The shard discretizes its rows under the cuts and
// builds its bitmap index, keyed by GridID.
type gridReq struct {
	GridID string
	DataFP string
	Phi    int
	Cuts   [][]float64 // D × (Phi-1) ascending boundaries
}

func (m *gridReq) encode() []byte {
	var e enc
	e.str(m.GridID)
	e.str(m.DataFP)
	e.u32(uint32(m.Phi))
	e.u32(uint32(len(m.Cuts)))
	for _, c := range m.Cuts {
		for _, v := range c {
			e.f64(v)
		}
	}
	return encodeFrame(msgGridReq, e.b)
}

func (m *gridReq) decode(p []byte) error {
	d := dec{b: p}
	m.GridID = d.str(maxWireString)
	m.DataFP = d.str(maxWireString)
	m.Phi = int(d.u32())
	if d.fail == "" && (m.Phi < 2 || m.Phi > math.MaxUint16) {
		d.bad("phi %d outside [2,%d]", m.Phi, math.MaxUint16)
	}
	nd := d.dims()
	if d.fail == "" {
		if need := int64(nd) * int64(m.Phi-1) * 8; need != int64(d.remaining()) {
			d.bad("grid payload carries %d bytes for %d dims of %d cuts", d.remaining(), nd, m.Phi-1)
		}
	}
	if d.fail == "" {
		m.Cuts = make([][]float64, nd)
		for j := range m.Cuts {
			c := make([]float64, m.Phi-1)
			for i := range c {
				c[i] = d.f64()
			}
			m.Cuts[j] = c
		}
	}
	return d.err()
}

// ---- count ----

// countReq asks a shard for the cardinality of each cube on one of
// its pushed grids — the scatter half of the distributed search; the
// coordinator sums the per-shard answers.
type countReq struct {
	GridID string
	D      int
	Cubes  []cube.Cube
}

func (m *countReq) encode() []byte {
	var e enc
	e.str(m.GridID)
	e.u32(uint32(m.D))
	e.u32(uint32(len(m.Cubes)))
	for _, c := range m.Cubes {
		for _, r := range c {
			e.u16(r)
		}
	}
	return encodeFrame(msgCountReq, e.b)
}

func (m *countReq) decode(p []byte) error {
	d := dec{b: p}
	m.GridID = d.str(maxWireString)
	m.D = d.dims()
	if d.fail == "" {
		nc := d.count(2*m.D, "cube")
		if d.fail == "" {
			m.Cubes = make([]cube.Cube, nc)
			for i := range m.Cubes {
				c := cube.New(m.D)
				for j := range c {
					c[j] = d.u16()
				}
				m.Cubes[i] = c
			}
		}
	}
	return d.err()
}

type countResp struct {
	Counts []int
}

func (m *countResp) encode() []byte {
	var e enc
	e.u32(uint32(len(m.Counts)))
	for _, n := range m.Counts {
		e.u64(uint64(n))
	}
	return encodeFrame(msgCountResp, e.b)
}

func (m *countResp) decode(p []byte) error {
	d := dec{b: p}
	n := d.count(8, "count")
	if d.fail == "" {
		m.Counts = make([]int, n)
		for i := range m.Counts {
			v := d.u64()
			if v > math.MaxInt32 {
				d.bad("count %d exceeds any plausible shard size", v)
				break
			}
			m.Counts[i] = int(v)
		}
	}
	return d.err()
}

// ---- cover ----

// coverReq asks for the local row indices inside one cube; the
// coordinator offsets them into the global row order.
type coverReq struct {
	GridID string
	Cube   cube.Cube
}

func (m *coverReq) encode() []byte {
	var e enc
	e.str(m.GridID)
	e.u32(uint32(len(m.Cube)))
	for _, r := range m.Cube {
		e.u16(r)
	}
	return encodeFrame(msgCoverReq, e.b)
}

func (m *coverReq) decode(p []byte) error {
	d := dec{b: p}
	m.GridID = d.str(maxWireString)
	nd := d.dims()
	if d.fail == "" {
		if int64(nd)*2 != int64(d.remaining()) {
			d.bad("cover payload carries %d bytes for a %d-dim cube", d.remaining(), nd)
		}
	}
	if d.fail == "" {
		m.Cube = cube.New(nd)
		for j := range m.Cube {
			m.Cube[j] = d.u16()
		}
	}
	return d.err()
}

type coverResp struct {
	Indices []int // local, increasing
}

func (m *coverResp) encode() []byte {
	var e enc
	e.u32(uint32(len(m.Indices)))
	for _, i := range m.Indices {
		e.u32(uint32(i))
	}
	return encodeFrame(msgCoverResp, e.b)
}

func (m *coverResp) decode(p []byte) error {
	d := dec{b: p}
	n := d.count(4, "index")
	if d.fail == "" {
		m.Indices = make([]int, n)
		for i := range m.Indices {
			m.Indices[i] = int(d.u32())
		}
	}
	return d.err()
}

// ---- model push ----

// modelPush replicates a fitted model (hidomon-format JSON) onto a
// shard, keyed by its fingerprint. Pushes are lazy: score/top-n RPCs
// name the fingerprint they expect, a shard answers 412 for an
// unknown one, and the coordinator pushes then retries.
type modelPush struct {
	FP   string
	JSON []byte
}

func (m *modelPush) encode() []byte {
	var e enc
	e.str(m.FP)
	e.bytes(m.JSON)
	return encodeFrame(msgModelPush, e.b)
}

func (m *modelPush) decode(p []byte) error {
	d := dec{b: p}
	m.FP = d.str(maxWireString)
	n := d.count(1, "model byte")
	if d.fail == "" {
		m.JSON = append([]byte(nil), d.take(n)...)
	}
	return d.err()
}

// ---- score ----

// scoreReq carries one contiguous chunk of a score batch: raw rows
// (labels stay on the coordinator) plus the model fingerprint to
// score them against.
type scoreReq struct {
	ModelFP string
	N, D    int
	Workers int
	Values  []float64 // N*D row-major
}

func (m *scoreReq) encode() []byte {
	var e enc
	e.str(m.ModelFP)
	e.u32(uint32(m.N))
	e.u32(uint32(m.D))
	e.u32(uint32(m.Workers))
	for _, v := range m.Values {
		e.f64(v)
	}
	return encodeFrame(msgScoreReq, e.b)
}

func (m *scoreReq) decode(p []byte) error {
	d := dec{b: p}
	m.ModelFP = d.str(maxWireString)
	m.N = int(d.u32())
	m.D = d.dims()
	m.Workers = int(d.u32())
	if d.fail == "" {
		if need := int64(m.N) * int64(m.D) * 8; need != int64(d.remaining()) {
			d.bad("score payload carries %d bytes for %dx%d values", d.remaining(), m.N, m.D)
		}
	}
	if d.fail == "" {
		m.Values = make([]float64, m.N*m.D)
		for i := range m.Values {
			m.Values[i] = d.f64()
		}
	}
	return d.err()
}

// wireAlert is one scored record on the wire: the alert score (exact
// float64 bits) and the matching projection indices.
type wireAlert struct {
	Score   float64
	Matches []int
}

type scoreResp struct {
	Alerts []wireAlert
}

func (m *scoreResp) encode() []byte {
	var e enc
	e.u32(uint32(len(m.Alerts)))
	for _, a := range m.Alerts {
		e.f64(a.Score)
		e.u32(uint32(len(a.Matches)))
		for _, mi := range a.Matches {
			e.u32(uint32(mi))
		}
	}
	return encodeFrame(msgScoreResp, e.b)
}

func (m *scoreResp) decode(p []byte) error {
	d := dec{b: p}
	n := d.count(12, "alert")
	if d.fail == "" {
		m.Alerts = make([]wireAlert, n)
		for i := range m.Alerts {
			m.Alerts[i].Score = d.f64()
			nm := d.count(4, "match")
			if d.fail != "" {
				break
			}
			if nm > 0 {
				m.Alerts[i].Matches = make([]int, nm)
				for j := range m.Alerts[i].Matches {
					m.Alerts[i].Matches[j] = int(d.u32())
				}
			}
		}
	}
	return d.err()
}

// ---- top-n ----

// topNReq asks a shard to score its own stored rows against a model
// and return its local top N (most outlying first).
type topNReq struct {
	ModelFP string
	N       int
}

func (m *topNReq) encode() []byte {
	var e enc
	e.str(m.ModelFP)
	e.u32(uint32(m.N))
	return encodeFrame(msgTopNReq, e.b)
}

func (m *topNReq) decode(p []byte) error {
	d := dec{b: p}
	m.ModelFP = d.str(maxWireString)
	m.N = int(d.u32())
	return d.err()
}

// topNItem is one candidate outlier: the shard-local row index, its
// alert score, and whether any projection matched.
type topNItem struct {
	Index   int
	Score   float64
	Flagged bool
}

type topNResp struct {
	Rows  int // shard's total row count (for the merged response)
	Items []topNItem
}

func (m *topNResp) encode() []byte {
	var e enc
	e.u32(uint32(m.Rows))
	e.u32(uint32(len(m.Items)))
	for _, it := range m.Items {
		e.u32(uint32(it.Index))
		e.f64(it.Score)
		if it.Flagged {
			e.u8(1)
		} else {
			e.u8(0)
		}
	}
	return encodeFrame(msgTopNResp, e.b)
}

func (m *topNResp) decode(p []byte) error {
	d := dec{b: p}
	m.Rows = int(d.u32())
	n := d.count(13, "top-n item")
	if d.fail == "" {
		m.Items = make([]topNItem, n)
		for i := range m.Items {
			m.Items[i].Index = int(d.u32())
			m.Items[i].Score = d.f64()
			m.Items[i].Flagged = d.u8() != 0
		}
	}
	return d.err()
}

// ---- trace envelope ----

// The trace envelope carries distributed-tracing context around an
// unmodified hcp1 frame: "hct1" magic, length-prefixed trace ID,
// length-prefixed parent span ID, then the complete inner frame
// (which self-validates through decodeFrame, so it needs no second
// length prefix).
//
// An out-of-band wrapper — rather than any in-band frame extension —
// is what keeps the protocol change backward compatible in both
// directions: the strict hcp1 decoder rejects unknown types, length
// mismatches and trailing bytes, so there is no in-band slot to hide
// context in. An old server answers a wrapped frame with 400 ("bad
// frame magic"); the client hears that once, falls back to the bare
// frame, and remembers the peer is pre-tracing (see Client.attempt).
// An old client's bare frames pass through a new server untouched.
const traceMagic = "hct1"

// maxTraceField bounds the envelope's ID strings; real IDs are ~20
// bytes, so anything bigger is hostile.
const maxTraceField = 256

// wrapTraceFrame wraps a frame in the trace envelope.
func wrapTraceFrame(traceID, parentSpan string, frame []byte) []byte {
	e := enc{b: make([]byte, 0, len(traceMagic)+8+len(traceID)+len(parentSpan)+len(frame))}
	e.b = append(e.b, traceMagic...)
	e.str(traceID)
	e.str(parentSpan)
	e.b = append(e.b, frame...)
	return e.b
}

// unwrapTraceFrame strips the trace envelope if present. A body that
// does not start with the envelope magic — an old client, or tracing
// off — is returned unchanged with a zero context. A body that
// claims the magic but truncates the header is an error.
func unwrapTraceFrame(b []byte) (obs.SpanContext, []byte, error) {
	if len(b) < len(traceMagic) || string(b[:len(traceMagic)]) != traceMagic {
		return obs.SpanContext{}, b, nil
	}
	d := dec{b: b, off: len(traceMagic)}
	sc := obs.SpanContext{
		TraceID: d.str(maxTraceField),
		SpanID:  d.str(maxTraceField),
	}
	if d.fail != "" {
		return obs.SpanContext{}, nil, fmt.Errorf("cluster: trace envelope: %s", d.fail)
	}
	return sc, b[d.off:], nil
}

// ---- trace ----

// traceReq asks a node for the completed spans it still holds for one
// trace — the cross-node assembly behind
// GET /api/v1/debug/traces/{id} on the select node.
type traceReq struct {
	TraceID string
}

func (m *traceReq) encode() []byte {
	var e enc
	e.str(m.TraceID)
	return encodeFrame(msgTraceReq, e.b)
}

func (m *traceReq) decode(p []byte) error {
	d := dec{b: p}
	m.TraceID = d.str(maxTraceField)
	return d.err()
}

// traceResp carries a node's retained spans for the requested trace.
// Span times travel as UTC unix nanoseconds; durations as exact
// float64 milliseconds.
type traceResp struct {
	Spans []obs.SpanData
}

func (m *traceResp) encode() []byte {
	var e enc
	e.u32(uint32(len(m.Spans)))
	for i := range m.Spans {
		s := &m.Spans[i]
		e.str(s.TraceID)
		e.str(s.SpanID)
		e.str(s.ParentID)
		e.str(s.Name)
		e.str(s.Node)
		e.u64(uint64(s.Start.UnixNano()))
		e.f64(s.DurMS)
		e.u32(uint32(len(s.Attrs)))
		for _, a := range s.Attrs {
			e.str(a.Key)
			e.str(a.Value)
		}
	}
	return encodeFrame(msgTraceResp, e.b)
}

func (m *traceResp) decode(p []byte) error {
	d := dec{b: p}
	// Minimum span encoding: five empty strings (5×4), start (8),
	// duration (8), attr count (4).
	n := d.count(40, "span")
	if d.fail == "" && n > 0 {
		m.Spans = make([]obs.SpanData, n)
		for i := range m.Spans {
			s := &m.Spans[i]
			s.TraceID = d.str(maxWireString)
			s.SpanID = d.str(maxWireString)
			s.ParentID = d.str(maxWireString)
			s.Name = d.str(maxWireString)
			s.Node = d.str(maxWireString)
			s.Start = time.Unix(0, int64(d.u64())).UTC()
			s.DurMS = d.f64()
			na := d.count(8, "attr")
			if d.fail != "" {
				break
			}
			if na > 0 {
				s.Attrs = make(obs.SpanAttrs, na)
				for j := range s.Attrs {
					s.Attrs[j].Key = d.str(maxWireString)
					s.Attrs[j].Value = d.str(maxWireString)
				}
			}
		}
	}
	return d.err()
}

// emptyFrame builds a payload-less frame (info/rows requests, acks).
func emptyFrame(t msgType) []byte { return encodeFrame(t, nil) }
