package cluster

import (
	"context"
	"fmt"
	"testing"

	"hido/internal/dataset"
	"hido/internal/stream"
)

// benchCluster boots a parts-way cluster over a fixed reference
// window, fits a model on it, and returns everything a benchmark
// needs. Shards are even contiguous slices so 1/2/4-way runs rank the
// same rows under the same model.
func benchCluster(b *testing.B, full *dataset.Dataset, parts int) (*Coordinator, *stream.Monitor) {
	b.Helper()
	var bounds []int
	for _, r := range chunkBounds(full.N(), parts) {
		if r[0] > 0 {
			bounds = append(bounds, r[0])
		}
	}
	co, _ := startCluster(b, splitAt(full, bounds), 1)
	mon, err := stream.NewMonitor(full, stream.Options{Phi: 4, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return co, mon
}

// BenchmarkClusterScore measures one scatter-gather score round trip
// for a 512-row batch across 1, 2, and 4 in-process storage shards.
// Transport is loopback HTTP, so the numbers isolate protocol, chunk
// split, and merge overhead rather than network latency.
func BenchmarkClusterScore(b *testing.B) {
	full := testData(b, 4000)
	batch := splitAt(full, []int{512})[0]
	for _, parts := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", parts), func(b *testing.B) {
			co, mon := benchCluster(b, full, parts)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := co.ScoreBatch(ctx, "bench", mon, batch, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterTopN measures ranking the full reference window and
// merging per-shard top-25 sets.
func BenchmarkClusterTopN(b *testing.B) {
	full := testData(b, 4000)
	for _, parts := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", parts), func(b *testing.B) {
			co, mon := benchCluster(b, full, parts)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := co.TopN(ctx, "bench", mon, 25); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterFit measures a full distributed fit: row gather for
// the global cuts, grid push, and the evolutionary search counting
// through batched per-shard RPCs.
func BenchmarkClusterFit(b *testing.B) {
	full := testData(b, 4000)
	for _, parts := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", parts), func(b *testing.B) {
			co, _ := benchCluster(b, full, parts)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := co.Fit(ctx, FitOptions{Phi: 4, Seed: 7}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
