package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"time"

	"hido/internal/metrics"
	"hido/internal/obs"
)

// ClientConfig tunes the peer client. The zero value gets sane
// defaults.
type ClientConfig struct {
	// Timeout is the per-attempt deadline for one RPC. Default 5s.
	Timeout time.Duration
	// Retries is how many times a failed attempt is retried (network
	// errors and 5xx only — a 4xx is the shard's answer, not noise).
	// Default 2; negative means no retries.
	Retries int
	// Backoff is the delay before the first retry; it doubles per
	// attempt, capped at maxBackoffFactor× this value, with ±25% jitter
	// so peers that failed together do not retry together. Default 50ms.
	Backoff time.Duration
	// Logger receives per-failure structured logs; nil discards.
	Logger *slog.Logger
	// Metrics, when set, receives per-peer RPC counters/latency.
	Metrics *Metrics
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.Backoff == 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// Metrics is the select-side cluster metrics bundle, registered on
// the serving registry so /metrics on the select node exposes the
// fan-out's health next to the request metrics.
type Metrics struct {
	RPCs     *metrics.Counter   // hidod_cluster_rpc_total{peer,rpc,outcome}
	Retries  *metrics.Counter   // hidod_cluster_rpc_retries_total{peer,rpc}
	Latency  *metrics.Histogram // hidod_cluster_rpc_seconds{peer,rpc}
	Partials *metrics.Counter   // hidod_cluster_partial_responses_total
	Fallback *metrics.Counter   // hidod_cluster_local_fallback_chunks_total
	Peers    *metrics.Gauge     // hidod_cluster_peers
}

// NewMetrics registers the cluster RPC series on a metrics registry.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		RPCs: reg.Counter("hidod_cluster_rpc_total",
			"Storage RPC attempts issued by the select node, by peer, rpc and outcome.",
			"peer", "rpc", "outcome"),
		Retries: reg.Counter("hidod_cluster_rpc_retries_total",
			"Storage RPC retries issued after failed attempts, by peer and rpc.",
			"peer", "rpc"),
		Latency: reg.Histogram("hidod_cluster_rpc_seconds",
			"Storage RPC latency in seconds (successful attempts), by peer and rpc.",
			nil, "peer", "rpc"),
		Partials: reg.Counter("hidod_cluster_partial_responses_total",
			"Fan-out responses served in degraded partial mode (a quorum, not all, of shards answered)."),
		Fallback: reg.Counter("hidod_cluster_local_fallback_chunks_total",
			"Score chunks scored locally on the select node after their storage peer failed."),
		Peers: reg.Gauge("hidod_cluster_peers",
			"Configured storage peers."),
	}
}

// StatusError is a non-200 RPC answer: the shard spoke, the request
// was the problem. It is never retried.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("cluster: peer answered %d: %s", e.Code, strings.TrimSpace(e.Msg))
}

// IsModelMiss reports whether an RPC failed because the shard lacks
// the model replica (HTTP 412) — the coordinator's cue to push the
// model and retry.
func IsModelMiss(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusPreconditionFailed
}

// IsGridMiss reports whether an RPC failed because the shard lacks
// the pushed grid (HTTP 409 on count/cover paths).
func IsGridMiss(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusConflict
}

// peerCap is what the client has learned about a peer's protocol
// vintage, for trace-envelope negotiation.
type peerCap uint8

const (
	capUnknown peerCap = iota // not probed yet: try the envelope
	capModern                 // parsed a wrapped frame: keep wrapping
	capLegacy                 // rejected the envelope magic: send bare frames
)

// Client issues framed RPCs to storage peers with per-peer attempt
// timeouts, bounded retries with exponential backoff, and in-flight
// tracking for graceful drain. When the calling context carries a
// span (obs.SpanFrom), every attempt gets a child span and the
// request frame is wrapped in the trace envelope — unless the peer
// has been learned to predate it.
type Client struct {
	cfg   ClientConfig
	httpc *http.Client
	wg    sync.WaitGroup

	// jitter yields a uniform value in [0,1) for retry-delay spreading;
	// swapped for a deterministic source in tests.
	jitter func() float64

	capMu sync.Mutex
	caps  map[string]peerCap
}

// NewClient builds a peer client.
func NewClient(cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	return &Client{cfg: cfg, httpc: &http.Client{}, jitter: rand.Float64, caps: map[string]peerCap{}}
}

// maxBackoffFactor caps the exponential retry backoff at this multiple
// of the configured initial delay: a caller-raised Retries budget then
// degrades into steady polling instead of unbounded multi-second waits.
const maxBackoffFactor = 8

// retryDelay returns the sleep before retry n (1-based): exponential
// doubling from the configured base, capped at maxBackoffFactor× it,
// then spread by ±25% jitter so synchronized failures do not produce
// synchronized retry stampedes.
func (c *Client) retryDelay(n int) time.Duration {
	d := c.cfg.Backoff
	for i := 1; i < n && d < maxBackoffFactor*c.cfg.Backoff; i++ {
		d *= 2
	}
	if capped := maxBackoffFactor * c.cfg.Backoff; d > capped {
		d = capped
	}
	return time.Duration(float64(d) * (0.75 + 0.5*c.jitter()))
}

func (c *Client) peerCap(peer string) peerCap {
	c.capMu.Lock()
	defer c.capMu.Unlock()
	return c.caps[peer]
}

func (c *Client) setPeerCap(peer string, pc peerCap) {
	c.capMu.Lock()
	if c.caps[peer] != pc {
		c.caps[peer] = pc
		c.capMu.Unlock()
		c.cfg.Logger.Info("peer trace capability learned", "peer", peer, "modern", pc == capModern)
		return
	}
	c.capMu.Unlock()
}

// Call posts one request frame to peer's rpc endpoint and returns the
// response frame payload after verifying its type. Transport errors
// and 5xx answers are retried with backoff up to the configured
// budget; 4xx answers return a *StatusError immediately.
func (c *Client) Call(ctx context.Context, peer, rpc string, reqFrame []byte, wantResp msgType) ([]byte, error) {
	c.wg.Add(1)
	defer c.wg.Done()

	// Each attempt — including every retry — gets its own child span of
	// whatever span the request context carries, so a retried RPC shows
	// up in the trace as distinct attempts with their own durations.
	// parent is nil when tracing is off; all span calls are then no-ops.
	parent := obs.SpanFrom(ctx)
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			if c.cfg.Metrics != nil {
				c.cfg.Metrics.Retries.Inc(peer, rpc)
			}
			select {
			case <-time.After(c.retryDelay(attempt)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		start := time.Now()
		sp := parent.Child("rpc:" + rpc)
		sp.SetAttr("peer", peer)
		sp.SetAttrInt("attempt", int64(attempt+1))
		payload, err := c.attempt(ctx, peer, rpc, reqFrame, wantResp, sp)
		if err == nil {
			sp.End()
			if c.cfg.Metrics != nil {
				c.cfg.Metrics.RPCs.Inc(peer, rpc, "ok")
				c.cfg.Metrics.Latency.Observe(time.Since(start).Seconds(), peer, rpc)
			}
			return payload, nil
		}
		sp.SetAttr("error", err.Error())
		sp.End()
		lastErr = err
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.RPCs.Inc(peer, rpc, "error")
		}
		c.cfg.Logger.Warn("storage rpc failed", "peer", peer, "rpc", rpc,
			"attempt", attempt+1, "error", err)
		var se *StatusError
		if errors.As(err, &se) && se.Code < 500 {
			return nil, err // the shard's verdict, not transient noise
		}
		if ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("cluster: %s %s failed after %d attempts: %w",
		peer, rpc, c.cfg.Retries+1, lastErr)
}

// attempt runs one RPC exchange, negotiating the trace envelope. With
// a span in hand and a peer not known to be legacy, the frame goes
// out wrapped; a 400 from an unprobed peer triggers one bare-frame
// fallback in the same attempt — if that gets a definitive answer the
// peer is remembered as legacy, so the probe costs one extra exchange
// per peer per process lifetime, not per request.
func (c *Client) attempt(ctx context.Context, peer, rpc string, reqFrame []byte, wantResp msgType, sp *obs.Span) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	sc := sp.Context()
	if sc.TraceID == "" || c.peerCap(peer) == capLegacy {
		return c.post(actx, peer, rpc, reqFrame, wantResp)
	}
	payload, err := c.post(actx, peer, rpc, wrapTraceFrame(sc.TraceID, sc.SpanID, reqFrame), wantResp)
	var se *StatusError
	switch {
	case err == nil:
		c.setPeerCap(peer, capModern)
		return payload, nil
	case errors.As(err, &se) && se.Code == http.StatusBadRequest && c.peerCap(peer) == capUnknown:
		// Either a pre-tracing server choked on the envelope magic, or
		// the inner request is genuinely bad. The bare retry separates
		// the two: a non-400 verdict means the envelope was the problem.
		payload, err = c.post(actx, peer, rpc, reqFrame, wantResp)
		var bare *StatusError
		if err == nil || (errors.As(err, &bare) && bare.Code != http.StatusBadRequest && bare.Code < 500) {
			c.setPeerCap(peer, capLegacy)
		}
		return payload, err
	case errors.As(err, &se) && (se.Code == http.StatusConflict || se.Code == http.StatusPreconditionFailed):
		// Grid-miss and model-miss verdicts come from the inner handler:
		// the peer unwrapped the envelope fine.
		c.setPeerCap(peer, capModern)
		return nil, err
	default:
		return nil, err
	}
}

// post runs one HTTP exchange: request frame out, response frame (or
// *StatusError) back.
func (c *Client) post(ctx context.Context, peer, rpc string, body []byte, wantResp msgType) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		peer+"/rpc/v1/"+rpc, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxFramePayload+64))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Msg: string(respBody)}
	}
	t, payload, err := decodeFrame(respBody)
	if err != nil {
		return nil, err
	}
	if t != wantResp {
		return nil, fmt.Errorf("cluster: peer %s answered type %d, want %d", peer, t, wantResp)
	}
	return payload, nil
}

// Drain blocks until every in-flight RPC has completed, or ctx
// expires. The select node calls it during graceful shutdown, after
// the HTTP listener has drained, so no fan-out is abandoned mid-merge.
func (c *Client) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() { defer close(done); c.wg.Wait() }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
