package cluster

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"hido/internal/cube"
	"hido/internal/obs"
)

// TestProtoRoundTrip drives every message through encode → frame →
// decode and requires the struct back unchanged, including NaN
// payloads (their IEEE bits must survive — the reason the protocol is
// binary).
func TestProtoRoundTrip(t *testing.T) {
	nan := math.Float64frombits(0x7ff8000000000001)
	c1 := cube.New(6).With(0, 3).With(4, 1)
	c2 := cube.New(6).With(2, 2)

	check := func(name string, in interface {
		encode() []byte
	}, out interface {
		decode([]byte) error
	}) {
		t.Helper()
		typ, payload, err := decodeFrame(in.encode())
		if err != nil {
			t.Fatalf("%s: decodeFrame: %v", name, err)
		}
		if typ < msgInfoReq || typ >= msgTypeEnd {
			t.Fatalf("%s: bad type %d", name, typ)
		}
		if err := out.decode(payload); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
	}

	info := &infoResp{N: 42, Names: []string{"a", "b", "c"}, Fingerprint: "d-cafe"}
	gotInfo := &infoResp{}
	check("info", info, gotInfo)
	if !reflect.DeepEqual(info, gotInfo) {
		t.Errorf("info: got %+v want %+v", gotInfo, info)
	}

	rows := &rowsResp{N: 2, D: 3, Values: []float64{1, nan, -3.5, 0, math.Inf(1), 6}}
	gotRows := &rowsResp{}
	check("rows", rows, gotRows)
	if gotRows.N != 2 || gotRows.D != 3 || len(gotRows.Values) != 6 {
		t.Fatalf("rows: got %+v", gotRows)
	}
	for i, v := range rows.Values {
		if math.Float64bits(gotRows.Values[i]) != math.Float64bits(v) {
			t.Errorf("rows value %d: bits differ (NaN must survive the wire)", i)
		}
	}

	grid := &gridReq{GridID: "g-1", DataFP: "d-2", Phi: 5,
		Cuts: [][]float64{{0.1, 0.2, 0.3, 0.4}, {1, 2, 3, nan}}}
	gotGrid := &gridReq{}
	check("grid", grid, gotGrid)
	if gotGrid.GridID != "g-1" || gotGrid.DataFP != "d-2" || gotGrid.Phi != 5 ||
		len(gotGrid.Cuts) != 2 || math.Float64bits(gotGrid.Cuts[1][3]) != math.Float64bits(nan) {
		t.Errorf("grid: got %+v", gotGrid)
	}

	cnt := &countReq{GridID: "g-1", D: 6, Cubes: []cube.Cube{c1, c2}}
	gotCnt := &countReq{}
	check("count", cnt, gotCnt)
	if !reflect.DeepEqual(cnt, gotCnt) {
		t.Errorf("count: got %+v want %+v", gotCnt, cnt)
	}

	cr := &countResp{Counts: []int{0, 7, 1 << 30}}
	gotCr := &countResp{}
	check("countResp", cr, gotCr)
	if !reflect.DeepEqual(cr, gotCr) {
		t.Errorf("countResp: got %+v want %+v", gotCr, cr)
	}

	cov := &coverReq{GridID: "g-1", Cube: c1}
	gotCov := &coverReq{}
	check("cover", cov, gotCov)
	if !reflect.DeepEqual(cov, gotCov) {
		t.Errorf("cover: got %+v want %+v", gotCov, cov)
	}

	covR := &coverResp{Indices: []int{1, 5, 9}}
	gotCovR := &coverResp{}
	check("coverResp", covR, gotCovR)
	if !reflect.DeepEqual(covR, gotCovR) {
		t.Errorf("coverResp: got %+v want %+v", gotCovR, covR)
	}

	mp := &modelPush{FP: "m-abc", JSON: []byte(`{"version":1}`)}
	gotMp := &modelPush{}
	check("model", mp, gotMp)
	if gotMp.FP != mp.FP || !bytes.Equal(gotMp.JSON, mp.JSON) {
		t.Errorf("model: got %+v", gotMp)
	}

	sc := &scoreReq{ModelFP: "m-abc", N: 2, D: 2, Workers: 4,
		Values: []float64{nan, 1, 2, 3}}
	gotSc := &scoreReq{}
	check("score", sc, gotSc)
	if gotSc.ModelFP != sc.ModelFP || gotSc.N != 2 || gotSc.D != 2 || gotSc.Workers != 4 ||
		math.Float64bits(gotSc.Values[0]) != math.Float64bits(nan) {
		t.Errorf("score: got %+v", gotSc)
	}

	sr := &scoreResp{Alerts: []wireAlert{{Score: -2.5, Matches: []int{0, 3}}, {Score: 0}}}
	gotSr := &scoreResp{}
	check("scoreResp", sr, gotSr)
	if !reflect.DeepEqual(sr, gotSr) {
		t.Errorf("scoreResp: got %+v want %+v", gotSr, sr)
	}

	tn := &topNReq{ModelFP: "m-abc", N: 10}
	gotTn := &topNReq{}
	check("topn", tn, gotTn)
	if !reflect.DeepEqual(tn, gotTn) {
		t.Errorf("topn: got %+v want %+v", gotTn, tn)
	}

	tr := &topNResp{Rows: 500, Items: []topNItem{
		{Index: 3, Score: -4.2, Flagged: true}, {Index: 0, Score: 0.1}}}
	gotTr := &topNResp{}
	check("topnResp", tr, gotTr)
	if !reflect.DeepEqual(tr, gotTr) {
		t.Errorf("topnResp: got %+v want %+v", gotTr, tr)
	}
}

// TestDecodeRejectsHostileFrames spells out the attacks the decoders
// must survive: truncation everywhere, length prefixes bigger than
// the buffer, and oversized declared allocations.
func TestDecodeRejectsHostileFrames(t *testing.T) {
	valid := (&countReq{GridID: "g", D: 3, Cubes: []cube.Cube{cube.New(3).With(0, 1)}}).encode()

	// Every strict prefix of a valid frame must error, never panic.
	for i := 0; i < len(valid); i++ {
		typ, payload, err := decodeFrame(valid[:i])
		if err != nil {
			continue
		}
		var req countReq
		if err := req.decode(payload); err == nil {
			t.Errorf("truncated frame of %d/%d bytes decoded as type %d", i, len(valid), typ)
		}
	}

	// A declared element count far beyond the payload must be rejected
	// before any allocation happens.
	var e enc
	e.str("g")
	e.u32(3)
	e.u32(0xffffffff) // one billion cubes, four bytes of payload left
	e.u32(0)
	frame := encodeFrame(msgCountReq, e.b)
	_, payload, err := decodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	var req countReq
	if err := req.decode(payload); err == nil {
		t.Error("billion-element count request decoded")
	}

	// Frame header lies about its length.
	long := append([]byte(nil), valid...)
	long[5] = 0xff // payload length high byte
	if _, _, err := decodeFrame(long); err == nil {
		t.Error("frame with inflated declared length accepted")
	}

	// Unknown message type.
	bad := append([]byte(nil), valid...)
	bad[4] = 0xee
	if _, _, err := decodeFrame(bad); err == nil {
		t.Error("unknown message type accepted")
	}

	// Trailing garbage after a complete message body.
	withJunk := encodeFrame(msgCountReq, append(valid[9:], 0xde, 0xad))
	_, payload, err = decodeFrame(withJunk)
	if err != nil {
		t.Fatal(err)
	}
	if err := req.decode(payload); err == nil {
		t.Error("trailing garbage accepted")
	}

	// Every strict prefix of a trace-response payload must error: span
	// and attr lists truncate at arbitrary byte positions.
	tvalid := (&traceResp{Spans: []obs.SpanData{{TraceID: "t-1", SpanID: "s-1",
		ParentID: "s-0", Name: "storage:score", Node: "storage :9001",
		Start: time.Unix(1700000000, 0).UTC(), DurMS: 1.25,
		Attrs: obs.SpanAttrs{{Key: "code", Value: "200"}}}}}).encode()
	_, tpayload, err := decodeFrame(tvalid)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tpayload); i++ {
		var tr traceResp
		if err := tr.decode(tpayload[:i]); err == nil {
			t.Errorf("truncated traceResp payload of %d/%d bytes decoded", i, len(tpayload))
		}
	}

	// A declared span count far beyond the payload must be rejected
	// before any allocation.
	var te enc
	te.u32(0xffffffff)
	var tr traceResp
	if err := tr.decode(te.b); err == nil {
		t.Error("billion-span trace response decoded")
	}
}

// FuzzClusterDecode throws hostile bytes at the frame parser and
// every message decoder. The property is total: no panic, no runaway
// allocation, errors for everything malformed.
func FuzzClusterDecode(f *testing.F) {
	nan := math.Float64frombits(0x7ff8000000000001)
	c := cube.New(4).With(1, 2).With(3, 3)
	seeds := [][]byte{
		(&infoResp{N: 9, Names: []string{"x", "y"}, Fingerprint: "d-1"}).encode(),
		(&rowsResp{N: 1, D: 2, Values: []float64{nan, 0.5}}).encode(),
		(&gridReq{GridID: "g", DataFP: "d", Phi: 4, Cuts: [][]float64{{1, 2, 3}}}).encode(),
		(&countReq{GridID: "g", D: 4, Cubes: []cube.Cube{c}}).encode(),
		(&countResp{Counts: []int{3}}).encode(),
		(&coverReq{GridID: "g", Cube: c}).encode(),
		(&coverResp{Indices: []int{0, 2}}).encode(),
		(&modelPush{FP: "m-1", JSON: []byte("{}")}).encode(),
		(&scoreReq{ModelFP: "m-1", N: 1, D: 2, Workers: 1, Values: []float64{nan, 1}}).encode(),
		(&scoreResp{Alerts: []wireAlert{{Score: nan, Matches: []int{1}}}}).encode(),
		(&topNReq{ModelFP: "m-1", N: 5}).encode(),
		(&topNResp{Rows: 7, Items: []topNItem{{Index: 1, Score: -1, Flagged: true}}}).encode(),
		(&traceReq{TraceID: "t-1"}).encode(),
		(&traceResp{Spans: []obs.SpanData{{TraceID: "t-1", SpanID: "s-1", Name: "storage:score",
			Start: time.Unix(1700000000, 0).UTC(), DurMS: 0.5,
			Attrs: obs.SpanAttrs{{Key: "code", Value: "200"}}}}}).encode(),
		emptyFrame(msgInfoReq),
		{},
		[]byte("hcp1"),
		[]byte{'h', 'c', 'p', '1', 1, 0xff, 0xff, 0xff, 0xff},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := decodeFrame(data)
		if err != nil {
			return
		}
		switch typ {
		case msgInfoResp:
			var m infoResp
			_ = m.decode(payload)
		case msgRowsResp:
			var m rowsResp
			_ = m.decode(payload)
		case msgGridReq:
			var m gridReq
			_ = m.decode(payload)
		case msgCountReq:
			var m countReq
			_ = m.decode(payload)
		case msgCountResp:
			var m countResp
			_ = m.decode(payload)
		case msgCoverReq:
			var m coverReq
			_ = m.decode(payload)
		case msgCoverResp:
			var m coverResp
			_ = m.decode(payload)
		case msgModelPush:
			var m modelPush
			_ = m.decode(payload)
		case msgScoreReq:
			var m scoreReq
			_ = m.decode(payload)
		case msgScoreResp:
			var m scoreResp
			_ = m.decode(payload)
		case msgTopNReq:
			var m topNReq
			_ = m.decode(payload)
		case msgTopNResp:
			var m topNResp
			_ = m.decode(payload)
		case msgTraceReq:
			var m traceReq
			_ = m.decode(payload)
		case msgTraceResp:
			var m traceResp
			_ = m.decode(payload)
		}
	})
}
