package evo_test

import (
	"fmt"

	"hido/internal/evo"
)

// BestSet keeps the m best (lowest-fitness) solutions seen across the
// whole run, deduplicated by genome — Figure 3's BestSet.
func ExampleBestSet() {
	bs := evo.NewBestSet(2)
	bs.Offer(evo.Genome{1, 0}, -1.0)
	bs.Offer(evo.Genome{0, 2}, -3.0)
	bs.Offer(evo.Genome{0, 2}, -3.0) // duplicate: ignored
	bs.Offer(evo.Genome{2, 2}, -2.0) // evicts the -1.0 entry
	for _, e := range bs.Entries() {
		fmt.Printf("%v %.1f\n", e.Genome, e.Fitness)
	}
	fmt.Printf("mean quality %.1f\n", bs.MeanFitness())
	// Output:
	// [0 2] -3.0
	// [2 2] -2.0
	// mean quality -2.5
}

// De Jong's criterion: a population converges when 95% of its members
// agree on every gene.
func ExamplePopulation_Converged() {
	pop := evo.NewPopulation(20, 2)
	for i := range pop.Members {
		pop.Members[i] = evo.Genome{3, 1}
	}
	fmt.Println(pop.Converged())
	pop.Members[0] = evo.Genome{2, 1} // 95% still agree
	fmt.Println(pop.Converged())
	pop.Members[1] = evo.Genome{2, 1} // 90%: not converged
	fmt.Println(pop.Converged())
	// Output:
	// true
	// true
	// false
}
