// Package evo supplies the population machinery of the paper's
// evolutionary search (§2.1–2.2): rank-based roulette selection with
// weights p − r(i) (Figure 4), pairing for crossover, the De Jong 95%
// gene-convergence termination criterion, best-set tracking, and
// per-generation statistics.
//
// The genome is a plain []uint16 — the paper's string encoding, where
// 0 is the don't-care '*' and 1..φ identify grid ranges. The
// problem-specific operators (optimized crossover, the two mutation
// types) live in the core package because they need grid counts; this
// package owns everything that is generic evolutionary bookkeeping.
package evo

import (
	"fmt"
	"math"
	"sort"

	"hido/internal/xrand"
)

// Genome is the string representation of a solution (Figure 3's
// population elements).
type Genome []uint16

// Clone returns a copy of the genome.
func (g Genome) Clone() Genome {
	out := make(Genome, len(g))
	copy(out, g)
	return out
}

// Key returns a compact map key unique to the genome's contents.
func (g Genome) Key() string {
	b := make([]byte, 0, len(g)*3)
	for i, v := range g {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendUint(b, v)
	}
	return string(b)
}

func appendUint(b []byte, v uint16) []byte {
	if v >= 10 {
		b = appendUint(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// compare orders two equal-length genomes lexicographically.
func (g Genome) compare(o Genome) int {
	for i := range g {
		if g[i] != o[i] {
			if g[i] < o[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Population is a set of genomes with cached fitness values. Lower
// fitness is better throughout (the paper minimizes the sparsity
// coefficient).
type Population struct {
	Members []Genome
	Fitness []float64
}

// NewPopulation allocates a population of size p with genomes of the
// given length, all zero. Callers fill the members before use.
func NewPopulation(p, genomeLen int) *Population {
	pop := &Population{
		Members: make([]Genome, p),
		Fitness: make([]float64, p),
	}
	for i := range pop.Members {
		pop.Members[i] = make(Genome, genomeLen)
	}
	return pop
}

// Len returns the population size.
func (pop *Population) Len() int { return len(pop.Members) }

// Best returns the index of the member with the lowest fitness.
func (pop *Population) Best() int {
	best := 0
	for i, f := range pop.Fitness {
		if f < pop.Fitness[best] {
			best = i
		}
	}
	return best
}

// Stats summarizes one generation.
type Stats struct {
	Gen        int
	BestFit    float64 // lowest fitness in the population
	MeanFit    float64
	WorstFit   float64
	Converged  float64 // fraction of genes meeting the De Jong criterion
	Distinct   int     // distinct genomes in the population (diversity)
	Evaluated  int     // cumulative fitness evaluations
	BestSoFar  float64 // best fitness ever seen (from the BestSet)
	BestString string
}

// Snapshot computes the population statistics for generation gen.
func (pop *Population) Snapshot(gen int) Stats {
	s := pop.FitnessStats(gen)
	s.Distinct = pop.Distinct()
	s.Converged = pop.ConvergedFraction(0.95)
	return s
}

// FitnessStats computes only the fitness aggregates (best, mean,
// worst) — the cheap part of Snapshot. Callers that already track
// convergence and diversity (the core search does both as byproducts)
// fill those fields themselves instead of recomputing them.
func (pop *Population) FitnessStats(gen int) Stats {
	s := Stats{Gen: gen, BestFit: math.Inf(1), WorstFit: math.Inf(-1)}
	sum := 0.0
	for _, f := range pop.Fitness {
		if f < s.BestFit {
			s.BestFit = f
		}
		if f > s.WorstFit {
			s.WorstFit = f
		}
		sum += f
	}
	if pop.Len() > 0 {
		s.MeanFit = sum / float64(pop.Len())
	}
	return s
}

// Distinct counts the distinct genomes by sorting member indices
// lexicographically — exact, and far cheaper than building a string
// key per member.
func (pop *Population) Distinct() int {
	if pop.Len() == 0 {
		return 0
	}
	idx := make([]int, pop.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return pop.Members[idx[a]].compare(pop.Members[idx[b]]) < 0
	})
	n := 1
	for i := 1; i < len(idx); i++ {
		if pop.Members[idx[i-1]].compare(pop.Members[idx[i]]) != 0 {
			n++
		}
	}
	return n
}

// Selection chooses the next generation's parents.
type Selection int

const (
	// RankRoulette is the paper's mechanism (Figure 4): sampling
	// probability proportional to p − r(i) with r(i) the 1-based rank in
	// ascending fitness order (most negative sparsity first).
	RankRoulette Selection = iota
	// Tournament picks the better of two uniformly drawn members.
	// Included for the selection-pressure ablation.
	Tournament
	// Uniform ignores fitness entirely; the no-pressure control.
	Uniform
)

func (s Selection) String() string {
	switch s {
	case RankRoulette:
		return "rank-roulette"
	case Tournament:
		return "tournament"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// Select replaces the population with p members drawn according to the
// strategy. Fitness values travel with their genomes, so no
// re-evaluation is needed. Genomes are copied, never aliased, because
// crossover and mutation edit them in place.
func (pop *Population) Select(strategy Selection, rng *xrand.RNG) {
	p := pop.Len()
	if p == 0 {
		return
	}
	newMembers := make([]Genome, p)
	newFitness := make([]float64, p)
	switch strategy {
	case RankRoulette:
		// r(i): 1-based rank, most negative fitness ranked first.
		order := make([]int, p)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return pop.Fitness[order[a]] < pop.Fitness[order[b]]
		})
		// weight of the member with rank r is p - r; the best member
		// (r=1) gets weight p-1, the worst gets 0 and is never selected
		// (except when p == 1).
		weights := make([]float64, p)
		for rank, idx := range order {
			weights[idx] = float64(p - (rank + 1))
		}
		if p == 1 {
			weights[0] = 1
		}
		// Draw p members against the cumulative weights with binary
		// search — O(p log p) against WeightedChoice's O(p²) — while
		// reproducing its draws bit for bit: the prefix sums are built by
		// the same sequential additions, so `x < cum[j+1]` is the same
		// float comparison the linear scan performs.
		cum := make([]float64, p+1)
		for i, w := range weights {
			cum[i+1] = cum[i] + w
		}
		total := cum[p]
		for i := 0; i < p; i++ {
			x := rng.Float64() * total
			j := sort.Search(p, func(k int) bool { return x < cum[k+1] })
			if j == p {
				// Floating-point slack, mirroring WeightedChoice: fall
				// back to the last index with positive weight.
				for j = p - 1; j > 0 && weights[j] <= 0; j-- {
				}
			}
			newMembers[i] = pop.Members[j].Clone()
			newFitness[i] = pop.Fitness[j]
		}
	case Tournament:
		for i := 0; i < p; i++ {
			a, b := rng.Intn(p), rng.Intn(p)
			if pop.Fitness[b] < pop.Fitness[a] {
				a = b
			}
			newMembers[i] = pop.Members[a].Clone()
			newFitness[i] = pop.Fitness[a]
		}
	case Uniform:
		for i := 0; i < p; i++ {
			j := rng.Intn(p)
			newMembers[i] = pop.Members[j].Clone()
			newFitness[i] = pop.Fitness[j]
		}
	default:
		panic("evo: unknown selection strategy")
	}
	pop.Members = newMembers
	pop.Fitness = newFitness
}

// Pairs returns a random pairing of the population for crossover
// (Figure 5 matches solutions pairwise). With odd p, the last member
// sits the round out.
func (pop *Population) Pairs(rng *xrand.RNG) [][2]int {
	perm := rng.Perm(pop.Len())
	out := make([][2]int, 0, pop.Len()/2)
	for i := 0; i+1 < len(perm); i += 2 {
		out = append(out, [2]int{perm[i], perm[i+1]})
	}
	return out
}

// ConvergedFraction returns the fraction of gene positions at which at
// least threshold of the population share one value.
func (pop *Population) ConvergedFraction(threshold float64) float64 {
	if pop.Len() == 0 || len(pop.Members[0]) == 0 {
		return 0
	}
	genomeLen := len(pop.Members[0])
	// Gene values are grid ranges bounded by φ (0 = don't-care), so a
	// dense counter array beats a map; size it to the largest value
	// present.
	maxVal := uint16(0)
	for _, g := range pop.Members {
		for _, v := range g {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	counts := make([]int, int(maxVal)+1)
	converged := 0
	need := threshold * float64(pop.Len())
	for pos := 0; pos < genomeLen; pos++ {
		clear(counts)
		max := 0
		for _, g := range pop.Members {
			counts[g[pos]]++
			if counts[g[pos]] > max {
				max = counts[g[pos]]
			}
		}
		if float64(max) >= need {
			converged++
		}
	}
	return float64(converged) / float64(genomeLen)
}

// Converged implements De Jong's criterion: the population has
// converged when every gene position has 95% of the population
// agreeing on its value.
func (pop *Population) Converged() bool {
	return pop.ConvergedFraction(0.95) >= 1
}

// BestSet tracks the m best solutions seen so far (Figure 3's
// BestSet), deduplicated by genome key. Lower fitness is better.
type BestSet struct {
	m       int
	entries []BestEntry
	seen    map[string]int // key → index in entries
}

// BestEntry is one retained solution.
type BestEntry struct {
	Genome  Genome
	Fitness float64
}

// NewBestSet returns a tracker retaining the m best solutions.
func NewBestSet(m int) *BestSet {
	if m <= 0 {
		panic("evo: BestSet size must be positive")
	}
	return &BestSet{m: m, seen: map[string]int{}}
}

// Offer submits a solution. It reports whether the set changed. The
// genome is cloned on retention.
func (bs *BestSet) Offer(g Genome, fitness float64) bool {
	key := g.Key()
	if _, dup := bs.seen[key]; dup {
		return false
	}
	if len(bs.entries) < bs.m {
		bs.seen[key] = len(bs.entries)
		bs.entries = append(bs.entries, BestEntry{Genome: g.Clone(), Fitness: fitness})
		bs.fixupLast()
		return true
	}
	// entries is kept sorted ascending by fitness; worst is last.
	if fitness >= bs.entries[bs.m-1].Fitness {
		return false
	}
	evicted := bs.entries[bs.m-1]
	delete(bs.seen, evicted.Genome.Key())
	bs.entries[bs.m-1] = BestEntry{Genome: g.Clone(), Fitness: fitness}
	bs.seen[key] = bs.m - 1
	bs.fixupLast()
	return true
}

// fixupLast restores sortedness after the last entry changed,
// updating the seen map as entries shift.
func (bs *BestSet) fixupLast() {
	i := len(bs.entries) - 1
	for i > 0 && bs.entries[i].Fitness < bs.entries[i-1].Fitness {
		bs.entries[i], bs.entries[i-1] = bs.entries[i-1], bs.entries[i]
		bs.seen[bs.entries[i].Genome.Key()] = i
		bs.seen[bs.entries[i-1].Genome.Key()] = i - 1
		i--
	}
}

// Len returns the number of retained solutions.
func (bs *BestSet) Len() int { return len(bs.entries) }

// Entries returns the retained solutions, best (lowest fitness) first.
// The slice is a copy; genomes are shared and must not be mutated.
func (bs *BestSet) Entries() []BestEntry {
	return append([]BestEntry(nil), bs.entries...)
}

// Worst returns the fitness of the worst retained solution, or +Inf
// when the set is not yet full — the threshold a new solution must
// beat.
func (bs *BestSet) Worst() float64 {
	if len(bs.entries) < bs.m {
		return math.Inf(1)
	}
	return bs.entries[len(bs.entries)-1].Fitness
}

// MeanFitness returns the average fitness of the retained solutions —
// the "quality" column of the paper's Table 1. It returns NaN when
// empty.
func (bs *BestSet) MeanFitness() float64 {
	if len(bs.entries) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, e := range bs.entries {
		sum += e.Fitness
	}
	return sum / float64(len(bs.entries))
}
