package evo

import (
	"math"
	"testing"
	"testing/quick"

	"hido/internal/xrand"
)

func TestGenomeCloneKey(t *testing.T) {
	g := Genome{0, 3, 0, 9}
	c := g.Clone()
	c[0] = 5
	if g[0] != 0 {
		t.Error("Clone shares storage")
	}
	if g.Key() != "0,3,0,9" {
		t.Errorf("Key = %q", g.Key())
	}
	// keys must be unambiguous across multi-digit values
	a := Genome{1, 23}
	b := Genome{12, 3}
	if a.Key() == b.Key() {
		t.Errorf("ambiguous keys %q", a.Key())
	}
}

func TestNewPopulation(t *testing.T) {
	pop := NewPopulation(5, 3)
	if pop.Len() != 5 || len(pop.Members[0]) != 3 {
		t.Fatalf("population shape wrong")
	}
}

func TestBest(t *testing.T) {
	pop := NewPopulation(3, 1)
	pop.Fitness = []float64{-1, -5, -3}
	if pop.Best() != 1 {
		t.Errorf("Best = %d", pop.Best())
	}
}

func TestSnapshot(t *testing.T) {
	pop := NewPopulation(4, 2)
	pop.Fitness = []float64{-4, -2, 0, 2}
	s := pop.Snapshot(7)
	if s.Gen != 7 || s.BestFit != -4 || s.WorstFit != 2 || s.MeanFit != -1 {
		t.Errorf("Snapshot = %+v", s)
	}
}

func TestRankRouletteFavorsBest(t *testing.T) {
	// With fitnesses -10 (best) .. 0 (worst), the best member should be
	// selected far more often than the worst; the worst (weight 0)
	// should vanish.
	rng := xrand.New(1)
	counts := map[uint16]int{}
	for trial := 0; trial < 300; trial++ {
		pop := NewPopulation(5, 1)
		for i := range pop.Members {
			pop.Members[i][0] = uint16(i + 1)
			pop.Fitness[i] = float64(i) * 2.5
		}
		pop.Select(RankRoulette, rng)
		for _, m := range pop.Members {
			counts[m[0]]++
		}
	}
	if counts[5] != 0 {
		t.Errorf("worst member selected %d times, want 0 (weight p-r = 0)", counts[5])
	}
	if counts[1] <= counts[4] {
		t.Errorf("best selected %d, near-worst %d; want strong bias", counts[1], counts[4])
	}
	// Expected shares: weights 4,3,2,1,0 → best ~40%.
	total := 0
	for _, c := range counts {
		total += c
	}
	share := float64(counts[1]) / float64(total)
	if share < 0.35 || share > 0.45 {
		t.Errorf("best share = %v, want ≈0.40", share)
	}
}

func TestSelectPreservesFitnessPairing(t *testing.T) {
	rng := xrand.New(2)
	pop := NewPopulation(6, 1)
	for i := range pop.Members {
		pop.Members[i][0] = uint16(i)
		pop.Fitness[i] = -float64(i)
	}
	for _, strat := range []Selection{RankRoulette, Tournament, Uniform} {
		p := NewPopulation(6, 1)
		copy(p.Fitness, pop.Fitness)
		for i := range p.Members {
			copy(p.Members[i], pop.Members[i])
		}
		p.Select(strat, rng)
		for i, m := range p.Members {
			if p.Fitness[i] != -float64(m[0]) {
				t.Errorf("%v: fitness %v does not match genome %v", strat, p.Fitness[i], m)
			}
		}
	}
}

func TestSelectCopiesGenomes(t *testing.T) {
	rng := xrand.New(3)
	pop := NewPopulation(2, 1)
	pop.Fitness = []float64{-1, 0}
	pop.Select(RankRoulette, rng)
	pop.Members[0][0] = 42
	for i := 1; i < pop.Len(); i++ {
		if pop.Members[i][0] == 42 && &pop.Members[i][0] == &pop.Members[0][0] {
			t.Fatal("selected genomes alias each other")
		}
	}
}

func TestSelectSingleton(t *testing.T) {
	rng := xrand.New(4)
	pop := NewPopulation(1, 2)
	pop.Fitness[0] = -3
	pop.Select(RankRoulette, rng) // must not panic on all-zero weights
	if pop.Len() != 1 || pop.Fitness[0] != -3 {
		t.Error("singleton selection broke population")
	}
}

func TestSelectUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown selection did not panic")
		}
	}()
	NewPopulation(2, 1).Select(Selection(99), xrand.New(1))
}

func TestSelectionString(t *testing.T) {
	if RankRoulette.String() != "rank-roulette" || Tournament.String() != "tournament" ||
		Uniform.String() != "uniform" || Selection(9).String() == "" {
		t.Error("Selection.String wrong")
	}
}

func TestPairsDisjointCover(t *testing.T) {
	rng := xrand.New(5)
	pop := NewPopulation(10, 1)
	pairs := pop.Pairs(rng)
	if len(pairs) != 5 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	seen := map[int]bool{}
	for _, p := range pairs {
		if seen[p[0]] || seen[p[1]] || p[0] == p[1] {
			t.Fatalf("pairing reuses members: %v", pairs)
		}
		seen[p[0]], seen[p[1]] = true, true
	}
}

func TestPairsOdd(t *testing.T) {
	rng := xrand.New(6)
	pop := NewPopulation(7, 1)
	if got := len(pop.Pairs(rng)); got != 3 {
		t.Errorf("odd population: %d pairs, want 3", got)
	}
}

func TestConvergence(t *testing.T) {
	pop := NewPopulation(20, 3)
	for i := range pop.Members {
		pop.Members[i] = Genome{1, 2, 3}
	}
	if !pop.Converged() {
		t.Error("identical population not converged")
	}
	// Perturb one gene on 2 of 20 members (90% agreement < 95%).
	pop.Members[0] = Genome{9, 2, 3}
	pop.Members[1] = Genome{8, 2, 3}
	if pop.Converged() {
		t.Error("90%-agreeing gene counted as converged")
	}
	if got := pop.ConvergedFraction(0.95); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("ConvergedFraction = %v, want 2/3", got)
	}
	// One dissenter in 20 → 95% agreement → converged.
	pop.Members[1] = Genome{1, 2, 3}
	if !pop.Converged() {
		t.Error("95%-agreeing population not converged")
	}
}

func TestBestSetOrderingAndDedup(t *testing.T) {
	bs := NewBestSet(3)
	if !bs.Offer(Genome{1}, -1) || !bs.Offer(Genome{2}, -5) || !bs.Offer(Genome{3}, -3) {
		t.Fatal("initial offers rejected")
	}
	if bs.Offer(Genome{2}, -5) {
		t.Error("duplicate accepted")
	}
	e := bs.Entries()
	if e[0].Fitness != -5 || e[1].Fitness != -3 || e[2].Fitness != -1 {
		t.Fatalf("entries not sorted: %+v", e)
	}
	// Better solution evicts the worst.
	if !bs.Offer(Genome{4}, -4) {
		t.Error("improving offer rejected")
	}
	e = bs.Entries()
	if len(e) != 3 || e[2].Fitness != -3 {
		t.Fatalf("eviction wrong: %+v", e)
	}
	// The evicted genome may now be re-offered (and rejected on fitness).
	if bs.Offer(Genome{1}, -1) {
		t.Error("worse-than-worst accepted")
	}
	// Equal-to-worst is rejected (strict improvement required).
	if bs.Offer(Genome{9}, -3) {
		t.Error("equal-to-worst accepted")
	}
}

func TestBestSetWorstThreshold(t *testing.T) {
	bs := NewBestSet(2)
	if !math.IsInf(bs.Worst(), 1) {
		t.Error("Worst of non-full set not +Inf")
	}
	bs.Offer(Genome{1}, -1)
	if !math.IsInf(bs.Worst(), 1) {
		t.Error("Worst of non-full set not +Inf")
	}
	bs.Offer(Genome{2}, -2)
	if bs.Worst() != -1 {
		t.Errorf("Worst = %v", bs.Worst())
	}
}

func TestBestSetMeanFitness(t *testing.T) {
	bs := NewBestSet(5)
	if !math.IsNaN(bs.MeanFitness()) {
		t.Error("empty MeanFitness not NaN")
	}
	bs.Offer(Genome{1}, -2)
	bs.Offer(Genome{2}, -4)
	if got := bs.MeanFitness(); got != -3 {
		t.Errorf("MeanFitness = %v", got)
	}
}

func TestBestSetClones(t *testing.T) {
	bs := NewBestSet(2)
	g := Genome{7}
	bs.Offer(g, -1)
	g[0] = 9
	if bs.Entries()[0].Genome[0] != 7 {
		t.Error("BestSet did not clone the genome")
	}
}

func TestBestSetSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBestSet(0) did not panic")
		}
	}()
	NewBestSet(0)
}

// Property: after arbitrary offers, entries are sorted, within size,
// deduplicated, and contain the true best offer.
func TestQuickBestSetInvariants(t *testing.T) {
	f := func(fits []int8, mRaw uint8) bool {
		m := int(mRaw)%5 + 1
		bs := NewBestSet(m)
		best := math.Inf(1)
		seen := map[string]bool{}
		for i, fr := range fits {
			g := Genome{uint16(i % 7)}
			f := float64(fr)
			if !seen[g.Key()] && f < best {
				best = f
			}
			// mirror dedup semantics: only first offer of a key counts for
			// the "best" tracking above (later dup offers are ignored)
			bs.Offer(g, f)
			seen[g.Key()] = true
		}
		e := bs.Entries()
		if len(e) > m {
			return false
		}
		keys := map[string]bool{}
		for i := range e {
			if i > 0 && e[i].Fitness < e[i-1].Fitness {
				return false
			}
			if keys[e[i].Genome.Key()] {
				return false
			}
			keys[e[i].Genome.Key()] = true
		}
		if len(fits) > 0 && len(e) > 0 && e[0].Fitness > best {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
