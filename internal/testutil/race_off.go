//go:build !race

// Package testutil holds tiny cross-package test helpers.
package testutil

// RaceEnabled reports whether the binary was built with -race.
// Allocation-count assertions (testing.AllocsPerRun) skip themselves
// under the race detector, whose instrumentation allocates.
const RaceEnabled = false
