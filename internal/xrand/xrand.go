// Package xrand provides a deterministic, splittable random number
// generator used by every stochastic component of the library: the
// evolutionary search, the synthetic data generators, and the
// benchmark workloads.
//
// The generator is xoshiro256** seeded through splitmix64, the
// combination recommended by its authors. Streams created by Split are
// statistically independent for practical purposes, so each experiment
// can derive a private stream from a single user-visible seed and
// remain reproducible regardless of how much randomness other
// components consume.
package xrand

import "math"

// RNG is a xoshiro256** pseudo-random generator. It is not safe for
// concurrent use; Split off a stream per goroutine instead.
type RNG struct {
	s [4]uint64
	// cached second Gaussian from the polar transform
	gauss    float64
	hasGauss bool
}

// splitmix64 advances the seed state and returns the next value.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Distinct seeds
// yield well-separated streams; the all-zero internal state is
// unreachable by construction.
func New(seed uint64) *RNG {
	r := &RNG{}
	for i := range r.s {
		r.s[i] = splitmix64(&seed)
	}
	return r
}

// Split derives an independent child stream. The parent advances, so
// successive Splits give distinct children.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// State returns the generator's internal xoshiro256** state for
// checkpointing. The cached Gaussian from Norm is not part of the
// state: checkpoint at points where no paired variate is pending (any
// point, for streams that never call Norm).
func (r *RNG) State() [4]uint64 { return r.s }

// FromState reconstructs a generator from a State snapshot; the
// restored stream continues exactly where the snapshot was taken. The
// all-zero state is degenerate (xoshiro256** is stuck at zero there)
// and never produced by New or a real stream — callers restoring
// untrusted snapshots should reject it.
func FromState(s [4]uint64) *RNG { return &RNG{s: s} }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit random integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Rejection sampling removes modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	un := uint64(n)
	// Lemire-style bounded generation with rejection.
	threshold := -un % un
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % un)
		}
	}
}

// IntRange returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm returns a standard normal variate via the Marsaglia polar
// method, caching the paired value.
func (r *RNG) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// NormMS returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) NormMS(mean, sd float64) float64 { return mean + sd*r.Norm() }

// Exp returns an exponential variate with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place (Fisher-Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the given swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct integers drawn uniformly from [0, n) in
// random order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Sample k out of range")
	}
	if k == 0 {
		return nil
	}
	// Partial Fisher-Yates over a dense index array: O(n) memory but
	// exact and simple; n is bounded by the data dimensionality here.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k:k]
}

// WeightedChoice returns an index sampled in proportion to the
// non-negative weights. It panics if the weights are empty or sum to a
// non-positive value.
func (r *RNG) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: negative or NaN weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("xrand: WeightedChoice with no mass")
	}
	x := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	// Floating-point slack: return the last index with positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf returns a variate in [0, n) following a Zipf distribution with
// exponent s >= 0 (s=0 is uniform). Used by skewed synthetic workloads.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("xrand: Zipf with non-positive n")
	}
	if s == 0 {
		return r.Intn(n)
	}
	// Inverse-CDF over the finite support. n is small (grid ranges or
	// cluster counts), so the linear scan is fine.
	total := 0.0
	for i := 1; i <= n; i++ {
		total += math.Pow(float64(i), -s)
	}
	x := r.Float64() * total
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += math.Pow(float64(i), -s)
		if x < acc {
			return i - 1
		}
	}
	return n - 1
}
