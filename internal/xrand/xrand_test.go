package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs from distinct seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("successive Split children produced identical first output")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	exp := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-exp) > 5*math.Sqrt(exp) {
			t.Errorf("bucket %d count %d far from expected %.0f", i, c, exp)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntRange(3,5) = %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Errorf("IntRange(4,4) = %d", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v", f)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestNormMS(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormMS(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("NormMS(10,2) mean = %v", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(19)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("Exp() = %v < 0", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Errorf("Exp mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm(50) invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(29)
	for trial := 0; trial < 100; trial++ {
		s := r.Sample(20, 5)
		if len(s) != 5 {
			t.Fatalf("Sample returned %d elements", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("Sample(20,5) invalid: %v", s)
			}
			seen[v] = true
		}
	}
	if got := r.Sample(5, 0); got != nil {
		t.Errorf("Sample(n,0) = %v, want nil", got)
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestSampleCoversAll(t *testing.T) {
	// Sampling k=n must return a permutation of all items.
	r := New(31)
	s := r.Sample(10, 10)
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("Sample(10,10) missing %d", i)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(37)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.WeightedChoice(w)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {-1, 2}}
	for _, w := range cases {
		func() {
			defer func() { recover() }()
			New(1).WeightedChoice(w)
			if len(w) == 0 || allZeroOrNeg(w) {
				t.Errorf("WeightedChoice(%v) did not panic", w)
			}
		}()
	}
}

func allZeroOrNeg(w []float64) bool {
	for _, x := range w {
		if x > 0 {
			return false
		}
	}
	return true
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(41)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[r.Zipf(5, 0)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Zipf(5,0) bucket %d = %d, want ~10000", i, c)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(43)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		counts[r.Zipf(10, 1.5)]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("Zipf(10,1.5) not skewed: first=%d last=%d", counts[0], counts[9])
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(47)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

// Property: Intn(n) always lies in range for arbitrary positive n.
func TestQuickIntnInRange(t *testing.T) {
	r := New(53)
	f := func(n uint16) bool {
		m := int(n)%1000 + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: same seed and same call sequence produce identical Perm.
func TestQuickPermDeterministic(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n)%30 + 1
		p1 := New(seed).Perm(m)
		p2 := New(seed).Perm(m)
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}

// State/FromState must round-trip mid-stream: a generator restored
// from a snapshot produces the exact continuation of the original.
// This is what search checkpointing leans on for bit-identical resume.
func TestStateRoundTrip(t *testing.T) {
	r := New(42)
	for i := 0; i < 1000; i++ {
		r.Uint64()
	}
	snap := r.State()
	clone := FromState(snap)
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("draw %d diverged: %d vs %d", i, a, b)
		}
	}
	// The snapshot is a copy, not a live view: advancing the original
	// must not change it.
	if again := FromState(snap); again.State() != snap {
		t.Error("FromState mutated the snapshot")
	}
	// A freshly seeded generator never has the degenerate all-zero
	// state that restore paths reject.
	if New(0).State() == [4]uint64{} {
		t.Error("New(0) produced the all-zero state")
	}
}
