package dataset

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hido/internal/testutil"
)

// TestStrictCSVPerRecordAllocs guards the streaming strict parser:
// the record slice and the destination storage are reused, so the only
// per-record allocations left are encoding/csv's own field-string
// conversion (~2 per record, inherent to its API). The old two-pass
// parser retained every record and field (8+ allocations per record);
// a regression toward that shape trips the bound.
func TestStrictCSVPerRecordAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are unreliable under -race")
	}
	build := func(n int) []byte {
		var b strings.Builder
		b.WriteString("a,b,c,d,e,f\n")
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "%d.5,?,0.25,%d,-1e3,NA\n", i%7, i%13)
		}
		return []byte(b.String())
	}
	small, big := build(100), build(5000)
	var dst *Dataset
	parse := func(body []byte) {
		var err error
		dst, err = ReadCSVInto(dst, bytes.NewReader(body), ReadCSVOptions{Header: true, Strict: true})
		if err != nil {
			t.Fatal(err)
		}
	}
	parse(big) // size the reused dataset once
	aSmall := testing.AllocsPerRun(20, func() { parse(small) })
	aBig := testing.AllocsPerRun(20, func() { parse(big) })
	perRow := (aBig - aSmall) / 4900
	if perRow > 3 {
		t.Fatalf("strict CSV parse allocates %.2f per record (%v allocs for 100 rows, %v for 5000), want <= 3",
			perRow, aSmall, aBig)
	}
	t.Logf("strict parse: %v allocs (100 rows), %v allocs (5000 rows), %.2f per record", aSmall, aBig, perRow)
}
