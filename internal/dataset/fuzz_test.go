package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV drives the CSV reader with arbitrary input; it must
// never panic, and any dataset it accepts must round-trip through
// WriteCSV → ReadCSV with the same shape.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"a,b\n1,2\n",
		"a,b\n1,?\n,2\n",
		"h\nx\ny\nx\n",
		"1,2\n3,4\n",
		"a,b,label\n1,2,pos\n3,4,neg\n",
		"\"q,uoted\",2\n1,2\n",
		"",
		"a\n",
	}
	for _, s := range seeds {
		f.Add(s, true, -1)
	}
	f.Fuzz(func(t *testing.T, input string, header bool, labelCol int) {
		if labelCol > 10 {
			labelCol = 10
		}
		ds, err := ReadCSV(strings.NewReader(input), ReadCSVOptions{
			Header: header, LabelColumn: labelCol,
		})
		if err != nil {
			return
		}
		if ds.N() == 0 || ds.D() < 0 {
			t.Fatalf("accepted dataset with shape %dx%d", ds.N(), ds.D())
		}
		if ds.D() == 0 {
			return // label-only input; nothing to round-trip
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV failed on accepted dataset: %v", err)
		}
		lc := -1
		if ds.Labels != nil {
			lc = ds.D()
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()), ReadCSVOptions{
			Header: true, LabelColumn: lc,
		})
		if err != nil {
			t.Fatalf("round trip failed: %v\ncsv:\n%s", err, buf.String())
		}
		if back.N() != ds.N() || back.D() != ds.D() {
			t.Fatalf("round trip shape %dx%d, want %dx%d", back.N(), back.D(), ds.N(), ds.D())
		}
	})
}
