package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV drives the CSV reader with arbitrary input; it must
// never panic, any dataset it accepts must round-trip through
// WriteCSV → ReadCSV with the same shape, and strict mode must be a
// strengthening: whatever strict accepts, lenient accepts identically,
// and nothing strict accepts is categorical.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"a,b\n1,2\n",
		"a,b\n1,?\n,2\n",
		"h\nx\ny\nx\n",
		"1,2\n3,4\n",
		"a,b,label\n1,2,pos\n3,4,neg\n",
		"\"q,uoted\",2\n1,2\n",
		"",
		"a\n",
		// Quoted fields: embedded delimiters, quotes, newlines.
		"\"a,1\",\"b\"\"2\"\n\"3\n4\",5\n",
		// Ragged rows (width drift) must be rejected, not truncated.
		"a,b,c\n1,2,3\n4,5\n",
		"a,b\n1\n2,3,4\n",
		// NaN/missing tokens: "?"/"NA"/empty are missing; literal NaN
		// and Inf parse as floats; mixed case does not.
		"a,b\nNaN,2\n?,NA\n,nan\n",
		"x\n+Inf\n-Inf\nInf\n",
		"v\n1e308\n-1.5e-300\n0x1p4\n",
		// A numeric typo (letter O) silently flips a column
		// categorical in lenient mode; strict must refuse.
		"a,b\n1O.5,2\n3,4\n",
		// Missing tokens with surrounding whitespace.
		"a,b\n 1 , ? \n\t2\t,\tNA\t\n",
	}
	for _, s := range seeds {
		f.Add(s, true, -1)
		f.Add(s, false, 0)
	}
	f.Fuzz(func(t *testing.T, input string, header bool, labelCol int) {
		if labelCol > 10 {
			labelCol = 10
		}
		// Strict is a strengthening of lenient: it must never accept
		// something lenient rejects, never disagree on shape, and never
		// yield a categorical column.
		strict, strictErr := ReadCSV(strings.NewReader(input), ReadCSVOptions{
			Header: header, LabelColumn: labelCol, Strict: true,
		})
		ds, err := ReadCSV(strings.NewReader(input), ReadCSVOptions{
			Header: header, LabelColumn: labelCol,
		})
		if strictErr == nil {
			if err != nil {
				t.Fatalf("strict accepted what lenient rejected: %v", err)
			}
			if strict.N() != ds.N() || strict.D() != ds.D() {
				t.Fatalf("strict shape %dx%d != lenient %dx%d",
					strict.N(), strict.D(), ds.N(), ds.D())
			}
			for j := 0; j < strict.D(); j++ {
				if strict.IsCategorical(j) {
					t.Fatalf("strict mode produced categorical column %d", j)
				}
			}
		}
		if err != nil {
			return
		}
		if ds.N() == 0 || ds.D() < 0 {
			t.Fatalf("accepted dataset with shape %dx%d", ds.N(), ds.D())
		}
		if ds.D() == 0 {
			return // label-only input; nothing to round-trip
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV failed on accepted dataset: %v", err)
		}
		lc := -1
		if ds.Labels != nil {
			lc = ds.D()
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()), ReadCSVOptions{
			Header: true, LabelColumn: lc,
		})
		if err != nil {
			t.Fatalf("round trip failed: %v\ncsv:\n%s", err, buf.String())
		}
		if back.N() != ds.N() || back.D() != ds.D() {
			t.Fatalf("round trip shape %dx%d, want %dx%d", back.N(), back.D(), ds.N(), ds.D())
		}
	})
}
