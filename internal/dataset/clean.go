package dataset

import (
	"math"

	"hido/internal/stats"
)

// ImputeStrategy selects how ImputeMissing fills NaN entries. The
// projection method itself never needs imputation (§1.2 of the paper:
// sparse projections are minable with missing attributes); imputation
// exists for the full-dimensional distance baselines, which require
// complete vectors.
type ImputeStrategy int

const (
	// ImputeMean replaces missing entries with the column mean.
	ImputeMean ImputeStrategy = iota
	// ImputeMedian replaces missing entries with the column median.
	ImputeMedian
	// ImputeZero replaces missing entries with zero.
	ImputeZero
)

// ImputeMissing returns a copy with every NaN replaced according to
// the strategy. A column that is entirely missing is filled with zero.
func (ds *Dataset) ImputeMissing(strategy ImputeStrategy) *Dataset {
	out := ds.Clone()
	for j := 0; j < ds.d; j++ {
		col := ds.Column(j)
		var fill float64
		switch strategy {
		case ImputeMean:
			fill = stats.Mean(col)
		case ImputeMedian:
			fill = stats.Quantile(col, 0.5)
		case ImputeZero:
			fill = 0
		default:
			panic("dataset: unknown impute strategy")
		}
		if math.IsNaN(fill) {
			fill = 0
		}
		for i := 0; i < ds.n; i++ {
			if math.IsNaN(out.At(i, j)) {
				out.SetAt(i, j, fill)
			}
		}
	}
	return out
}

// DropConstantColumns returns a copy without columns whose non-missing
// values are all identical (or entirely missing). Constant columns
// carry no density information and break equi-depth discretization.
// It also returns the retained column indices.
func (ds *Dataset) DropConstantColumns() (*Dataset, []int) {
	keep := make([]int, 0, ds.d)
	for j := 0; j < ds.d; j++ {
		col := ds.Column(j)
		min, max, ok := stats.MinMax(col)
		if ok && min != max {
			keep = append(keep, j)
		}
	}
	return ds.SelectColumns(keep), keep
}

// Standardize returns a z-scored copy (per column mean 0, sd 1),
// leaving NaNs in place. Columns with zero variance become all-zero.
// Full-dimensional distance baselines need this so no single attribute
// dominates the L2 norm; the grid method is scale-invariant by
// construction (equi-depth ranges) and does not.
func (ds *Dataset) Standardize() *Dataset {
	out := ds.Clone()
	for j := 0; j < ds.d; j++ {
		col := ds.Column(j)
		mean := stats.Mean(col)
		sd := stats.StdDev(col)
		for i := 0; i < ds.n; i++ {
			v := out.At(i, j)
			if math.IsNaN(v) {
				continue
			}
			if math.IsNaN(sd) || sd == 0 {
				out.SetAt(i, j, 0)
			} else {
				out.SetAt(i, j, (v-mean)/sd)
			}
		}
	}
	return out
}

// SummarizeColumns returns per-column descriptive statistics.
func (ds *Dataset) SummarizeColumns() []stats.Summary {
	out := make([]stats.Summary, ds.d)
	for j := 0; j < ds.d; j++ {
		out[j] = stats.Summarize(ds.Column(j))
	}
	return out
}
