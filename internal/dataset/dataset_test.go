package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sample() *Dataset {
	return FromRows([]string{"a", "b", "c"}, [][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	})
}

func TestShape(t *testing.T) {
	ds := sample()
	if ds.N() != 3 || ds.D() != 3 {
		t.Fatalf("shape = %dx%d", ds.N(), ds.D())
	}
	if got := ds.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v", got)
	}
}

func TestAppendRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched row")
		}
	}()
	sample().AppendRow([]float64{1}, "")
}

func TestFromRowsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on ragged rows")
		}
	}()
	FromRows([]string{"a"}, [][]float64{{1}, {1, 2}})
}

func TestIndexPanics(t *testing.T) {
	ds := sample()
	for name, fn := range map[string]func(){
		"At row":     func() { ds.At(3, 0) },
		"At col":     func() { ds.At(0, 3) },
		"At neg":     func() { ds.At(-1, 0) },
		"Row":        func() { ds.Row(3) },
		"Column":     func() { ds.Column(-1) },
		"SetAt":      func() { ds.SetAt(0, 9, 1) },
		"SelectCols": func() { ds.SelectColumns([]int{5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRowColumnCopies(t *testing.T) {
	ds := sample()
	r := ds.Row(0)
	r[0] = 99
	if ds.At(0, 0) == 99 {
		t.Error("Row returned a view, want copy")
	}
	c := ds.Column(0)
	c[0] = 99
	if ds.At(0, 0) == 99 {
		t.Error("Column returned a view, want copy")
	}
}

func TestRowView(t *testing.T) {
	ds := sample()
	v := ds.RowView(1)
	if v[0] != 4 || v[2] != 6 {
		t.Errorf("RowView(1) = %v", v)
	}
}

func TestLabels(t *testing.T) {
	ds := New([]string{"x"}, 0)
	ds.AppendRow([]float64{1}, "")
	ds.AppendRow([]float64{2}, "pos")
	ds.AppendRow([]float64{3}, "neg")
	if got := ds.Label(0); got != "" {
		t.Errorf("Label(0) = %q", got)
	}
	if got := ds.Label(1); got != "pos" {
		t.Errorf("Label(1) = %q", got)
	}
	dist := ds.ClassDistribution()
	if dist[""] != 1 || dist["pos"] != 1 || dist["neg"] != 1 {
		t.Errorf("ClassDistribution = %v", dist)
	}
}

func TestUnlabeled(t *testing.T) {
	ds := sample()
	if ds.Label(0) != "" {
		t.Error("unlabeled Label not empty")
	}
	if ds.ClassDistribution() != nil {
		t.Error("unlabeled ClassDistribution not nil")
	}
	if rare, frac := ds.RareClasses(0.05); rare != nil || frac != 0 {
		t.Error("unlabeled RareClasses not nil")
	}
}

func TestRareClasses(t *testing.T) {
	ds := New([]string{"x"}, 0)
	for i := 0; i < 95; i++ {
		ds.AppendRow([]float64{float64(i)}, "common")
	}
	for i := 0; i < 3; i++ {
		ds.AppendRow([]float64{float64(i)}, "rare1")
	}
	for i := 0; i < 2; i++ {
		ds.AppendRow([]float64{float64(i)}, "rare2")
	}
	rare, frac := ds.RareClasses(0.05)
	if !rare["rare1"] || !rare["rare2"] || rare["common"] {
		t.Errorf("RareClasses = %v", rare)
	}
	if math.Abs(frac-0.05) > 1e-12 {
		t.Errorf("rare fraction = %v, want 0.05", frac)
	}
}

func TestMissing(t *testing.T) {
	ds := sample()
	ds.SetAt(1, 1, math.NaN())
	if !ds.IsMissing(1, 1) || ds.IsMissing(0, 0) {
		t.Error("IsMissing wrong")
	}
	if got := ds.MissingCount(); got != 1 {
		t.Errorf("MissingCount = %d", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := sample()
	c := ds.Clone()
	c.SetAt(0, 0, 42)
	if ds.At(0, 0) == 42 {
		t.Error("Clone shares storage")
	}
}

func TestSelectColumns(t *testing.T) {
	ds := sample()
	sub := ds.SelectColumns([]int{2, 0})
	if sub.D() != 2 || sub.Names[0] != "c" || sub.Names[1] != "a" {
		t.Fatalf("SelectColumns names = %v", sub.Names)
	}
	if sub.At(1, 0) != 6 || sub.At(1, 1) != 4 {
		t.Errorf("SelectColumns values wrong: %v", sub.Row(1))
	}
}

func TestSelectRows(t *testing.T) {
	ds := sample()
	sub := ds.SelectRows([]int{2, 0})
	if sub.N() != 2 || sub.At(0, 0) != 7 || sub.At(1, 0) != 1 {
		t.Errorf("SelectRows wrong: %v %v", sub.Row(0), sub.Row(1))
	}
}

func TestColumnIndex(t *testing.T) {
	ds := sample()
	if ds.ColumnIndex("b") != 1 {
		t.Error("ColumnIndex(b) wrong")
	}
	if ds.ColumnIndex("zzz") != -1 {
		t.Error("ColumnIndex missing not -1")
	}
}

func TestDescribe(t *testing.T) {
	if s := sample().Describe(); !strings.Contains(s, "3 rows x 3 cols") {
		t.Errorf("Describe = %q", s)
	}
}

func TestReadCSVNumeric(t *testing.T) {
	in := "a,b,label\n1,2,x\n3,4,y\n"
	ds, err := ReadCSV(strings.NewReader(in), ReadCSVOptions{Header: true, LabelColumn: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.D() != 2 {
		t.Fatalf("shape %dx%d", ds.N(), ds.D())
	}
	if ds.Names[0] != "a" || ds.Names[1] != "b" {
		t.Errorf("names %v", ds.Names)
	}
	if ds.At(1, 1) != 4 {
		t.Errorf("At(1,1) = %v", ds.At(1, 1))
	}
	if ds.Label(0) != "x" || ds.Label(1) != "y" {
		t.Errorf("labels %q %q", ds.Label(0), ds.Label(1))
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("1,2\n3,4\n"), ReadCSVOptions{LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Names[0] != "c0" || ds.Names[1] != "c1" {
		t.Errorf("names %v", ds.Names)
	}
	if ds.Labels != nil {
		t.Error("unexpected labels")
	}
}

func TestReadCSVMissingTokens(t *testing.T) {
	in := "a,b\n1,?\n,2\nNA,3\n"
	ds, err := ReadCSV(strings.NewReader(in), ReadCSVOptions{Header: true, LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.IsMissing(0, 1) || !ds.IsMissing(1, 0) || !ds.IsMissing(2, 0) {
		t.Error("missing tokens not NaN")
	}
	if ds.MissingCount() != 3 {
		t.Errorf("MissingCount = %d", ds.MissingCount())
	}
}

func TestReadCSVCategoricalEncoding(t *testing.T) {
	in := "color,v\nred,1\nblue,2\nred,3\n"
	ds, err := ReadCSV(strings.NewReader(in), ReadCSVOptions{Header: true, LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.At(0, 0) != ds.At(2, 0) {
		t.Error("same category encoded differently")
	}
	if ds.At(0, 0) == ds.At(1, 0) {
		t.Error("different categories encoded identically")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), ReadCSVOptions{}); err == nil {
		t.Error("empty input: no error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), ReadCSVOptions{Header: true}); err == nil {
		t.Error("header only: no error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), ReadCSVOptions{LabelColumn: -1}); err == nil {
		t.Error("ragged rows: no error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n"), ReadCSVOptions{LabelColumn: 5}); err == nil {
		t.Error("label column out of range: no error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := New([]string{"x", "y"}, 0)
	ds.AppendRow([]float64{1.5, math.NaN()}, "a")
	ds.AppendRow([]float64{-2, 7}, "b")
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), ReadCSVOptions{Header: true, LabelColumn: 2})
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 || back.D() != 2 {
		t.Fatalf("round trip shape %dx%d", back.N(), back.D())
	}
	if back.At(0, 0) != 1.5 || !back.IsMissing(0, 1) || back.At(1, 1) != 7 {
		t.Error("round trip values wrong")
	}
	if back.Label(0) != "a" || back.Label(1) != "b" {
		t.Error("round trip labels wrong")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	ds := sample()
	path := t.TempDir() + "/out.csv"
	if err := ds.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path, ReadCSVOptions{Header: true, LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 || back.At(2, 2) != 9 {
		t.Error("file round trip wrong")
	}
}

func TestImputeMean(t *testing.T) {
	ds := FromRows([]string{"a"}, [][]float64{{1}, {math.NaN()}, {3}})
	imp := ds.ImputeMissing(ImputeMean)
	if got := imp.At(1, 0); got != 2 {
		t.Errorf("mean impute = %v, want 2", got)
	}
	if !ds.IsMissing(1, 0) {
		t.Error("ImputeMissing mutated the original")
	}
}

func TestImputeMedianAndZero(t *testing.T) {
	ds := FromRows([]string{"a"}, [][]float64{{1}, {math.NaN()}, {2}, {100}})
	if got := ds.ImputeMissing(ImputeMedian).At(1, 0); got != 2 {
		t.Errorf("median impute = %v, want 2", got)
	}
	if got := ds.ImputeMissing(ImputeZero).At(1, 0); got != 0 {
		t.Errorf("zero impute = %v, want 0", got)
	}
}

func TestImputeAllMissingColumn(t *testing.T) {
	ds := FromRows([]string{"a"}, [][]float64{{math.NaN()}, {math.NaN()}})
	if got := ds.ImputeMissing(ImputeMean).At(0, 0); got != 0 {
		t.Errorf("all-missing impute = %v, want 0", got)
	}
}

func TestDropConstantColumns(t *testing.T) {
	ds := FromRows([]string{"const", "var", "allnan"}, [][]float64{
		{5, 1, math.NaN()},
		{5, 2, math.NaN()},
	})
	out, keep := ds.DropConstantColumns()
	if out.D() != 1 || out.Names[0] != "var" {
		t.Errorf("kept %v", out.Names)
	}
	if len(keep) != 1 || keep[0] != 1 {
		t.Errorf("keep = %v", keep)
	}
}

func TestStandardize(t *testing.T) {
	ds := FromRows([]string{"a", "b"}, [][]float64{
		{1, 5}, {2, 5}, {3, 5},
	})
	z := ds.Standardize()
	col := z.Column(0)
	if math.Abs(col[0]+1) > 1e-12 || math.Abs(col[1]) > 1e-12 || math.Abs(col[2]-1) > 1e-12 {
		t.Errorf("standardized col = %v", col)
	}
	// constant column becomes zeros
	for i := 0; i < 3; i++ {
		if z.At(i, 1) != 0 {
			t.Errorf("constant col standardized to %v", z.At(i, 1))
		}
	}
}

func TestStandardizePreservesNaN(t *testing.T) {
	ds := FromRows([]string{"a"}, [][]float64{{1}, {math.NaN()}, {3}})
	z := ds.Standardize()
	if !z.IsMissing(1, 0) {
		t.Error("Standardize filled a NaN")
	}
}

func TestSummarizeColumns(t *testing.T) {
	ds := sample()
	sums := ds.SummarizeColumns()
	if len(sums) != 3 {
		t.Fatalf("got %d summaries", len(sums))
	}
	if sums[0].Mean != 4 || sums[2].Max != 9 {
		t.Errorf("summaries wrong: %+v", sums)
	}
}

func TestCategoricalMetadata(t *testing.T) {
	in := "color,v\nred,1\nblue,2\nred,3\ngreen,4\n"
	ds, err := ReadCSV(strings.NewReader(in), ReadCSVOptions{Header: true, LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.IsCategorical(0) || ds.IsCategorical(1) {
		t.Fatal("categorical flags wrong")
	}
	if got := ds.CategoryOf(0, ds.At(0, 0)); got != "red" {
		t.Errorf("CategoryOf = %q", got)
	}
	if got := ds.CategoryOf(1, 1); got != "" {
		t.Errorf("numeric CategoryOf = %q", got)
	}
	// CategoriesIn over the full span lists every category in code order.
	all := ds.CategoriesIn(0, math.Inf(-1), math.Inf(1))
	if len(all) != 3 || all[0] != "red" || all[1] != "blue" || all[2] != "green" {
		t.Errorf("CategoriesIn = %v", all)
	}
	if ds.CategoriesIn(1, 0, 10) != nil {
		t.Error("numeric CategoriesIn not nil")
	}
	// Clone and SelectColumns preserve the mapping.
	c := ds.Clone()
	if c.CategoryOf(0, ds.At(1, 0)) != "blue" {
		t.Error("Clone lost categories")
	}
	sub := ds.SelectColumns([]int{1, 0})
	if !sub.IsCategorical(1) || sub.IsCategorical(0) {
		t.Error("SelectColumns lost or misplaced categories")
	}
	if sub.CategoryOf(1, ds.At(3, 0)) != "green" {
		t.Error("SelectColumns category lookup broken")
	}
}

func TestSetCategoriesPanics(t *testing.T) {
	ds := sample()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range SetCategories did not panic")
		}
	}()
	ds.SetCategories(9, nil)
}
