package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// ReadCSVOptions configures CSV ingestion.
type ReadCSVOptions struct {
	// Header indicates the first row carries column names. Without a
	// header, columns are named c0, c1, ...
	Header bool
	// LabelColumn, if non-negative, designates a column holding class
	// labels rather than a feature.
	LabelColumn int
	// Missing lists the tokens (besides the empty string) interpreted
	// as a missing value. Defaults to "?" and "NA" if nil.
	Missing []string
	// Comma is the field delimiter; ',' if zero.
	Comma rune
	// Strict rejects feature tokens that are neither numeric nor a
	// missing marker instead of integer-encoding the whole column as
	// categorical. Scoring paths (hidomon -score, the hidod server)
	// use it: a model's grid cuts are numeric, so a malformed number
	// like "1O.5" must be an error, not a silent reinterpretation of
	// the column.
	Strict bool
}

// ReadCSV parses a CSV stream into a Dataset. Non-numeric feature
// columns are integer-encoded per distinct string value, reproducing
// the paper's cleaning of categorical attributes; missing tokens
// become NaN.
func ReadCSV(r io.Reader, opts ReadCSVOptions) (*Dataset, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty csv input")
	}

	missing := map[string]bool{"": true}
	tokens := opts.Missing
	if tokens == nil {
		tokens = []string{"?", "NA"}
	}
	for _, tok := range tokens {
		missing[tok] = true
	}

	var header []string
	body := records
	if opts.Header {
		header = records[0]
		body = records[1:]
		if len(body) == 0 {
			return nil, fmt.Errorf("dataset: csv has header but no data rows")
		}
	}
	width := len(body[0])
	for i, rec := range body {
		if len(rec) != width {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", i+1, len(rec), width)
		}
	}
	if header != nil && len(header) != width {
		return nil, fmt.Errorf("dataset: header has %d fields, data rows have %d", len(header), width)
	}
	if opts.LabelColumn >= width {
		return nil, fmt.Errorf("dataset: label column %d out of range (width %d)", opts.LabelColumn, width)
	}

	featCols := make([]int, 0, width)
	for j := 0; j < width; j++ {
		if j != opts.LabelColumn || opts.LabelColumn < 0 {
			featCols = append(featCols, j)
		}
	}
	names := make([]string, len(featCols))
	for i, j := range featCols {
		if header != nil {
			names[i] = strings.TrimSpace(header[j])
		}
		if names[i] == "" {
			// Unnamed (or headerless) columns get positional names so
			// the header always survives a write/read round trip.
			names[i] = fmt.Sprintf("c%d", j)
		}
	}

	// First pass: decide per feature column whether it is numeric.
	numeric := make([]bool, len(featCols))
	for i, j := range featCols {
		numeric[i] = true
		for ri, rec := range body {
			f := strings.TrimSpace(rec[j])
			if missing[f] {
				continue
			}
			if _, err := strconv.ParseFloat(f, 64); err != nil {
				if opts.Strict {
					return nil, fmt.Errorf("dataset: row %d column %s: %q is not numeric (strict mode)",
						ri+1, names[i], f)
				}
				numeric[i] = false
				break
			}
		}
	}

	// Categorical encoding tables, per column.
	codes := make([]map[string]float64, len(featCols))
	for i := range codes {
		codes[i] = map[string]float64{}
	}

	ds := New(names, len(body))
	row := make([]float64, len(featCols))
	for _, rec := range body {
		for i, j := range featCols {
			f := strings.TrimSpace(rec[j])
			switch {
			case missing[f]:
				row[i] = math.NaN()
			case numeric[i]:
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: parsing %q in column %s: %w", f, names[i], err)
				}
				row[i] = v
			default:
				code, ok := codes[i][f]
				if !ok {
					code = float64(len(codes[i]))
					codes[i][f] = code
				}
				row[i] = code
			}
		}
		label := ""
		if opts.LabelColumn >= 0 {
			label = strings.TrimSpace(rec[opts.LabelColumn])
		}
		ds.AppendRow(row, label)
	}
	// Record the reverse code→string mappings so explanations can name
	// categories instead of showing integer codes.
	for i := range featCols {
		if numeric[i] || len(codes[i]) == 0 {
			continue
		}
		rev := make(map[float64]string, len(codes[i]))
		for s, code := range codes[i] {
			rev[code] = s
		}
		ds.SetCategories(i, rev)
	}
	return ds, nil
}

// ReadCSVFile is ReadCSV over a file path.
func ReadCSVFile(path string, opts ReadCSVOptions) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(f, opts)
}

// WriteCSV emits the dataset with a header row; missing values are
// written as "?" (one of ReadCSV's default missing tokens — an empty
// field would make a single-column missing row an all-empty record,
// which encoding/csv emits as a blank line and readers then skip).
// A final "label" column is appended when the dataset is labeled.
func (ds *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string(nil), ds.Names...)
	if ds.Labels != nil {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing csv header: %w", err)
	}
	rec := make([]string, 0, len(header))
	for i := 0; i < ds.n; i++ {
		rec = rec[:0]
		for j := 0; j < ds.d; j++ {
			v := ds.At(i, j)
			if math.IsNaN(v) {
				rec = append(rec, "?")
			} else {
				rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		if ds.Labels != nil {
			rec = append(rec, ds.Labels[i])
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile is WriteCSV to a file path.
func (ds *Dataset) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := ds.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
