package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// ReadCSVOptions configures CSV ingestion.
type ReadCSVOptions struct {
	// Header indicates the first row carries column names. Without a
	// header, columns are named c0, c1, ...
	Header bool
	// LabelColumn, if non-negative, designates a column holding class
	// labels rather than a feature.
	LabelColumn int
	// Missing lists the tokens (besides the empty string) interpreted
	// as a missing value. Defaults to "?" and "NA" if nil.
	Missing []string
	// Comma is the field delimiter; ',' if zero.
	Comma rune
	// Strict rejects feature tokens that are neither numeric nor a
	// missing marker instead of integer-encoding the whole column as
	// categorical. Scoring paths (hidomon -score, the hidod server)
	// use it: a model's grid cuts are numeric, so a malformed number
	// like "1O.5" must be an error, not a silent reinterpretation of
	// the column.
	Strict bool
}

// ReadCSV parses a CSV stream into a Dataset. Non-numeric feature
// columns are integer-encoded per distinct string value, reproducing
// the paper's cleaning of categorical attributes; missing tokens
// become NaN.
func ReadCSV(r io.Reader, opts ReadCSVOptions) (*Dataset, error) {
	return ReadCSVInto(nil, r, opts)
}

// ReadCSVInto is ReadCSV parsing into dst, which is Reset in place (a
// nil dst allocates a fresh dataset) — the pooled-decode form of the
// hidod server. In Strict mode records stream through one reused parse
// buffer (csv.Reader.ReuseRecord) instead of being materialized, so
// parse garbage is O(1) in the row count; lenient mode still buffers
// all records because categorical detection needs two passes.
func ReadCSVInto(dst *Dataset, r io.Reader, opts ReadCSVOptions) (*Dataset, error) {
	if opts.Strict {
		return readCSVStrict(dst, r, opts)
	}
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty csv input")
	}

	missing := missingSet(opts)

	var header []string
	body := records
	if opts.Header {
		header = records[0]
		body = records[1:]
		if len(body) == 0 {
			return nil, fmt.Errorf("dataset: csv has header but no data rows")
		}
	}
	width := len(body[0])
	for i, rec := range body {
		if len(rec) != width {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", i+1, len(rec), width)
		}
	}
	if header != nil && len(header) != width {
		return nil, fmt.Errorf("dataset: header has %d fields, data rows have %d", len(header), width)
	}
	if opts.LabelColumn >= width {
		return nil, fmt.Errorf("dataset: label column %d out of range (width %d)", opts.LabelColumn, width)
	}

	featCols := make([]int, 0, width)
	for j := 0; j < width; j++ {
		if j != opts.LabelColumn || opts.LabelColumn < 0 {
			featCols = append(featCols, j)
		}
	}
	names := make([]string, len(featCols))
	for i, j := range featCols {
		if header != nil {
			names[i] = strings.TrimSpace(header[j])
		}
		if names[i] == "" {
			// Unnamed (or headerless) columns get positional names so
			// the header always survives a write/read round trip.
			names[i] = fmt.Sprintf("c%d", j)
		}
	}

	// First pass: decide per feature column whether it is numeric.
	numeric := make([]bool, len(featCols))
	for i, j := range featCols {
		numeric[i] = true
		for _, rec := range body {
			f := strings.TrimSpace(rec[j])
			if missing[f] {
				continue
			}
			if _, err := strconv.ParseFloat(f, 64); err != nil {
				numeric[i] = false
				break
			}
		}
	}

	// Categorical encoding tables, per column.
	codes := make([]map[string]float64, len(featCols))
	for i := range codes {
		codes[i] = map[string]float64{}
	}

	ds := resetOrNew(dst, names, len(body))
	row := make([]float64, len(featCols))
	for _, rec := range body {
		for i, j := range featCols {
			f := strings.TrimSpace(rec[j])
			switch {
			case missing[f]:
				row[i] = math.NaN()
			case numeric[i]:
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: parsing %q in column %s: %w", f, names[i], err)
				}
				row[i] = v
			default:
				code, ok := codes[i][f]
				if !ok {
					code = float64(len(codes[i]))
					codes[i][f] = code
				}
				row[i] = code
			}
		}
		label := ""
		if opts.LabelColumn >= 0 {
			label = strings.TrimSpace(rec[opts.LabelColumn])
		}
		ds.AppendRow(row, label)
	}
	// Record the reverse code→string mappings so explanations can name
	// categories instead of showing integer codes.
	for i := range featCols {
		if numeric[i] || len(codes[i]) == 0 {
			continue
		}
		rev := make(map[float64]string, len(codes[i]))
		for s, code := range codes[i] {
			rev[code] = s
		}
		ds.SetCategories(i, rev)
	}
	return ds, nil
}

// readCSVStrict is the streaming Strict-mode reader: every feature
// token must be numeric or a missing marker, so no categorical
// detection pass is needed and each record can be parsed straight out
// of the csv.Reader's reused buffer. Error messages match the buffered
// reader's spellings.
func readCSVStrict(dst *Dataset, r io.Reader, opts ReadCSVOptions) (*Dataset, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1
	// Records alias one parse buffer; anything that outlives the loop
	// iteration (header names, labels) is cloned explicitly.
	cr.ReuseRecord = true

	missing := missingSet(opts)
	var header []string
	if opts.Header {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil, fmt.Errorf("dataset: empty csv input")
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading csv: %w", err)
		}
		header = make([]string, len(rec))
		for j, f := range rec {
			header[j] = strings.Clone(strings.TrimSpace(f))
		}
	}

	ds := dst
	width := -1
	var (
		featCols []int
		names    []string
		row      []float64
	)
	for ri := 1; ; ri++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading csv: %w", err)
		}
		if width < 0 {
			width = len(rec)
			if header != nil && len(header) != width {
				return nil, fmt.Errorf("dataset: header has %d fields, data rows have %d", len(header), width)
			}
			if opts.LabelColumn >= width {
				return nil, fmt.Errorf("dataset: label column %d out of range (width %d)", opts.LabelColumn, width)
			}
			featCols = make([]int, 0, width)
			for j := 0; j < width; j++ {
				if j != opts.LabelColumn || opts.LabelColumn < 0 {
					featCols = append(featCols, j)
				}
			}
			if header == nil && opts.LabelColumn < 0 {
				names = GenericNames(width)
			} else {
				names = make([]string, len(featCols))
				for i, j := range featCols {
					if header != nil {
						names[i] = header[j]
					}
					if names[i] == "" {
						names[i] = fmt.Sprintf("c%d", j)
					}
				}
			}
			ds = resetOrNew(dst, names, 0)
			row = make([]float64, len(featCols))
		}
		if len(rec) != width {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", ri, len(rec), width)
		}
		for i, j := range featCols {
			f := strings.TrimSpace(rec[j])
			if missing[f] {
				row[i] = math.NaN()
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d column %s: %q is not numeric (strict mode)",
					ri, names[i], f)
			}
			row[i] = v
		}
		label := ""
		if opts.LabelColumn >= 0 {
			label = strings.Clone(strings.TrimSpace(rec[opts.LabelColumn]))
		}
		ds.AppendRow(row, label)
	}
	if width < 0 {
		if header != nil {
			return nil, fmt.Errorf("dataset: csv has header but no data rows")
		}
		return nil, fmt.Errorf("dataset: empty csv input")
	}
	return ds, nil
}

// defaultMissing is the shared token set when ReadCSVOptions.Missing
// is nil; read-only.
var defaultMissing = map[string]bool{"": true, "?": true, "NA": true}

// missingSet resolves the missing-token set for a read.
func missingSet(opts ReadCSVOptions) map[string]bool {
	if opts.Missing == nil {
		return defaultMissing
	}
	m := map[string]bool{"": true}
	for _, tok := range opts.Missing {
		m[tok] = true
	}
	return m
}

// resetOrNew points dst at the given columns, allocating a fresh
// dataset when dst is nil.
func resetOrNew(dst *Dataset, names []string, rowCap int) *Dataset {
	if dst == nil {
		return New(names, rowCap)
	}
	dst.Reset(names)
	return dst
}

// ReadCSVFile is ReadCSV over a file path.
func ReadCSVFile(path string, opts ReadCSVOptions) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(f, opts)
}

// WriteCSV emits the dataset with a header row; missing values are
// written as "?" (one of ReadCSV's default missing tokens — an empty
// field would make a single-column missing row an all-empty record,
// which encoding/csv emits as a blank line and readers then skip).
// A final "label" column is appended when the dataset is labeled.
func (ds *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string(nil), ds.Names...)
	if ds.Labels != nil {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing csv header: %w", err)
	}
	rec := make([]string, 0, len(header))
	for i := 0; i < ds.n; i++ {
		rec = rec[:0]
		for j := 0; j < ds.d; j++ {
			v := ds.At(i, j)
			if math.IsNaN(v) {
				rec = append(rec, "?")
			} else {
				rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		if ds.Labels != nil {
			rec = append(rec, ds.Labels[i])
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile is WriteCSV to a file path.
func (ds *Dataset) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := ds.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
