// Package dataset provides the in-memory table abstraction underneath
// the outlier detectors: a row-major matrix of float64 values with NaN
// encoding missing attributes, named columns, and optional class
// labels used only for evaluation (rare-class recall in the paper's
// arrhythmia study), never by the detectors themselves.
//
// The paper's §3 notes the UCI data sets "were cleaned in order to
// take care of categorical and missing attributes"; the Clean helpers
// in this package implement that step: categorical columns are
// integer-encoded, and missing entries either stay NaN (the projection
// method handles them natively, §1.2) or are imputed for the
// full-dimensional distance baselines which cannot.
package dataset

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Dataset is an N×D table of float64 features with optional labels.
type Dataset struct {
	Names  []string  // D column names
	Labels []string  // optional, length N when present
	vals   []float64 // row-major N×D
	n, d   int
	// cats[j] maps a categorical column's integer codes back to the
	// original strings (nil for numeric columns). Populated by ReadCSV
	// and preserved by Clone/SelectColumns so explanations can render
	// category names instead of opaque codes.
	cats []map[float64]string
}

// New returns an empty dataset with the given column names, with
// capacity hints for rows.
func New(names []string, rowCap int) *Dataset {
	ds := &Dataset{
		Names: append([]string(nil), names...),
		d:     len(names),
	}
	ds.vals = make([]float64, 0, rowCap*ds.d)
	return ds
}

// Reset empties the dataset in place for reuse with the given column
// names, keeping the value storage's capacity — the pooled-decode path
// of the hidod server. Unlike New, the names slice is retained as-is
// (not copied), so callers passing a shared slice such as GenericNames
// must not mutate it afterwards.
func (ds *Dataset) Reset(names []string) {
	ds.Names = names
	ds.d = len(names)
	ds.n = 0
	ds.vals = ds.vals[:0]
	ds.Labels = nil
	ds.cats = nil
}

// genericNames caches the canonical positional column names c0, c1, …
// — the spelling of headerless CSV and JSON-lines ingestion. The names
// are prefix-stable, so one monotonically grown shared slice serves
// every width.
var genericNames struct {
	mu    sync.Mutex
	cache atomic.Value // []string, read lock-free
}

// GenericNames returns the positional column names c0 … c{d-1} as a
// shared read-only slice; callers must not mutate it.
func GenericNames(d int) []string {
	cur, _ := genericNames.cache.Load().([]string)
	if len(cur) < d {
		genericNames.mu.Lock()
		cur, _ = genericNames.cache.Load().([]string)
		if len(cur) < d {
			grown := make([]string, d)
			copy(grown, cur)
			for j := len(cur); j < d; j++ {
				grown[j] = fmt.Sprintf("c%d", j)
			}
			genericNames.cache.Store(grown)
			cur = grown
		}
		genericNames.mu.Unlock()
	}
	return cur[:d:d]
}

// FromRows builds a dataset from a slice of rows. Every row must have
// len(names) entries.
func FromRows(names []string, rows [][]float64) *Dataset {
	ds := New(names, len(rows))
	for i, r := range rows {
		if len(r) != ds.d {
			panic(fmt.Sprintf("dataset: row %d has %d values, want %d", i, len(r), ds.d))
		}
		ds.AppendRow(r, "")
	}
	return ds
}

// N returns the number of rows.
func (ds *Dataset) N() int { return ds.n }

// D returns the number of columns.
func (ds *Dataset) D() int { return ds.d }

// AppendRow adds one row. label may be empty; once any non-empty label
// has been supplied, all rows carry labels (empty strings fill gaps).
func (ds *Dataset) AppendRow(row []float64, label string) {
	if len(row) != ds.d {
		panic(fmt.Sprintf("dataset: AppendRow with %d values, want %d", len(row), ds.d))
	}
	ds.vals = append(ds.vals, row...)
	ds.n++
	if label != "" && ds.Labels == nil {
		ds.Labels = make([]string, ds.n-1)
	}
	if ds.Labels != nil {
		ds.Labels = append(ds.Labels, label)
	}
}

// AppendRows extends the dataset by n zero rows (empty-labeled when
// the dataset is labeled) and returns the appended block as a writable
// row-major view — the bulk-fill path of the binary batch decoder,
// which writes values column by column and so cannot use AppendRow.
// The view is invalidated by the next append.
func (ds *Dataset) AppendRows(n int) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("dataset: AppendRows(%d)", n))
	}
	start := len(ds.vals)
	need := start + n*ds.d
	if cap(ds.vals) < need {
		grown := make([]float64, need)
		copy(grown, ds.vals)
		ds.vals = grown
	} else {
		ds.vals = ds.vals[:need]
		clear(ds.vals[start:])
	}
	ds.n += n
	if ds.Labels != nil {
		for i := 0; i < n; i++ {
			ds.Labels = append(ds.Labels, "")
		}
	}
	return ds.vals[start:need:need]
}

// At returns the value at row i, column j. NaN means missing.
func (ds *Dataset) At(i, j int) float64 {
	ds.check(i, j)
	return ds.vals[i*ds.d+j]
}

// SetAt overwrites the value at row i, column j.
func (ds *Dataset) SetAt(i, j int, v float64) {
	ds.check(i, j)
	ds.vals[i*ds.d+j] = v
}

func (ds *Dataset) check(i, j int) {
	if i < 0 || i >= ds.n || j < 0 || j >= ds.d {
		panic(fmt.Sprintf("dataset: index (%d,%d) out of range %dx%d", i, j, ds.n, ds.d))
	}
}

// Row returns row i as a copy.
func (ds *Dataset) Row(i int) []float64 {
	if i < 0 || i >= ds.n {
		panic(fmt.Sprintf("dataset: Row(%d) out of range [0,%d)", i, ds.n))
	}
	out := make([]float64, ds.d)
	copy(out, ds.vals[i*ds.d:(i+1)*ds.d])
	return out
}

// RowView returns row i as a view into the underlying storage; the
// caller must not mutate or retain it across appends.
func (ds *Dataset) RowView(i int) []float64 {
	if i < 0 || i >= ds.n {
		panic(fmt.Sprintf("dataset: RowView(%d) out of range [0,%d)", i, ds.n))
	}
	return ds.vals[i*ds.d : (i+1)*ds.d : (i+1)*ds.d]
}

// Column returns column j as a fresh slice.
func (ds *Dataset) Column(j int) []float64 {
	if j < 0 || j >= ds.d {
		panic(fmt.Sprintf("dataset: Column(%d) out of range [0,%d)", j, ds.d))
	}
	out := make([]float64, ds.n)
	for i := 0; i < ds.n; i++ {
		out[i] = ds.vals[i*ds.d+j]
	}
	return out
}

// Label returns the label of row i, or "" if the dataset is unlabeled.
func (ds *Dataset) Label(i int) string {
	if ds.Labels == nil {
		return ""
	}
	return ds.Labels[i]
}

// IsMissing reports whether the value at (i, j) is missing.
func (ds *Dataset) IsMissing(i, j int) bool { return math.IsNaN(ds.At(i, j)) }

// MissingCount returns the total number of missing entries.
func (ds *Dataset) MissingCount() int {
	c := 0
	for _, v := range ds.vals {
		if math.IsNaN(v) {
			c++
		}
	}
	return c
}

// Clone returns a deep copy.
func (ds *Dataset) Clone() *Dataset {
	c := &Dataset{
		Names: append([]string(nil), ds.Names...),
		vals:  append([]float64(nil), ds.vals...),
		n:     ds.n,
		d:     ds.d,
	}
	if ds.Labels != nil {
		c.Labels = append([]string(nil), ds.Labels...)
	}
	if ds.cats != nil {
		c.cats = make([]map[float64]string, len(ds.cats))
		for j, m := range ds.cats {
			if m == nil {
				continue
			}
			c.cats[j] = make(map[float64]string, len(m))
			for k, v := range m {
				c.cats[j][k] = v
			}
		}
	}
	return c
}

// SetCategories records the code→string mapping of a categorical
// column, replacing any existing one. A nil mapping marks the column
// numeric again.
func (ds *Dataset) SetCategories(j int, codes map[float64]string) {
	if j < 0 || j >= ds.d {
		panic(fmt.Sprintf("dataset: SetCategories(%d) out of range [0,%d)", j, ds.d))
	}
	if ds.cats == nil {
		if codes == nil {
			return
		}
		ds.cats = make([]map[float64]string, ds.d)
	}
	ds.cats[j] = codes
}

// IsCategorical reports whether column j carries category mappings.
func (ds *Dataset) IsCategorical(j int) bool {
	if j < 0 || j >= ds.d {
		panic(fmt.Sprintf("dataset: IsCategorical(%d) out of range [0,%d)", j, ds.d))
	}
	return ds.cats != nil && ds.cats[j] != nil
}

// CategoryOf returns the original string of a categorical code, or
// "" when the column is numeric or the code unknown.
func (ds *Dataset) CategoryOf(j int, code float64) string {
	if !ds.IsCategorical(j) {
		return ""
	}
	return ds.cats[j][code]
}

// CategoriesIn returns the category names whose codes fall inside the
// half-open interval (lo, hi], sorted by code — the vocabulary a grid
// range covers. It returns nil for numeric columns.
func (ds *Dataset) CategoriesIn(j int, lo, hi float64) []string {
	if !ds.IsCategorical(j) {
		return nil
	}
	type pair struct {
		code float64
		name string
	}
	var ps []pair
	for code, name := range ds.cats[j] {
		if code > lo && code <= hi {
			ps = append(ps, pair{code, name})
		}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].code < ps[b].code })
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.name
	}
	return out
}

// SelectColumns returns a new dataset keeping only the given columns,
// in the given order. Labels are carried over.
func (ds *Dataset) SelectColumns(cols []int) *Dataset {
	names := make([]string, len(cols))
	for i, j := range cols {
		if j < 0 || j >= ds.d {
			panic(fmt.Sprintf("dataset: SelectColumns index %d out of range", j))
		}
		names[i] = ds.Names[j]
	}
	out := New(names, ds.n)
	row := make([]float64, len(cols))
	for i := 0; i < ds.n; i++ {
		for c, j := range cols {
			row[c] = ds.vals[i*ds.d+j]
		}
		out.AppendRow(row, ds.Label(i))
	}
	for c, j := range cols {
		if ds.IsCategorical(j) {
			m := make(map[float64]string, len(ds.cats[j]))
			for k, v := range ds.cats[j] {
				m[k] = v
			}
			out.SetCategories(c, m)
		}
	}
	return out
}

// SelectRows returns a new dataset keeping only the given rows, in the
// given order.
func (ds *Dataset) SelectRows(rows []int) *Dataset {
	out := New(ds.Names, len(rows))
	for _, i := range rows {
		out.AppendRow(ds.RowView(i), ds.Label(i))
	}
	return out
}

// ColumnIndex returns the index of the named column, or -1.
func (ds *Dataset) ColumnIndex(name string) int {
	for j, n := range ds.Names {
		if n == name {
			return j
		}
	}
	return -1
}

// Describe returns a one-line shape description.
func (ds *Dataset) Describe() string {
	lbl := "unlabeled"
	if ds.Labels != nil {
		lbl = "labeled"
	}
	return fmt.Sprintf("dataset: %d rows x %d cols, %d missing, %s",
		ds.n, ds.d, ds.MissingCount(), lbl)
}

// ClassDistribution returns label → count for a labeled dataset. It
// returns nil for unlabeled data.
func (ds *Dataset) ClassDistribution() map[string]int {
	if ds.Labels == nil {
		return nil
	}
	out := make(map[string]int)
	for _, l := range ds.Labels {
		out[l]++
	}
	return out
}

// RareClasses returns the set of labels whose relative frequency is
// strictly below threshold (the paper uses 5% for the arrhythmia
// study), plus the total fraction of rows carrying a rare label.
func (ds *Dataset) RareClasses(threshold float64) (rare map[string]bool, fraction float64) {
	dist := ds.ClassDistribution()
	if dist == nil {
		return nil, 0
	}
	rare = make(map[string]bool)
	total := float64(ds.n)
	count := 0
	for label, c := range dist {
		if float64(c)/total < threshold {
			rare[label] = true
			count += c
		}
	}
	return rare, float64(count) / total
}
