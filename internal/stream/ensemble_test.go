package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"hido/internal/core"
	"hido/internal/ensemble"
	"hido/internal/grid"
	"hido/internal/xrand"
)

func ensembleMonitor(t *testing.T, eo *EnsembleOptions) *Monitor {
	t.Helper()
	m, err := NewMonitor(reference(400, 1), Options{Phi: 5, Seed: 2, Ensemble: eo})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEnsembleMonitorFlagsContrarian(t *testing.T) {
	m := ensembleMonitor(t, &EnsembleOptions{Members: 6})
	if m.Kind() != "ensemble" {
		t.Fatalf("Kind() = %q, want ensemble", m.Kind())
	}
	if m.Members() != 6 {
		t.Fatalf("Members() = %d, want 6", m.Members())
	}
	r := xrand.New(3)
	bad := m.Score(contrarian(r))
	good := m.Score(typical(r))
	if bad.Score >= good.Score {
		t.Fatalf("contrarian score %v not more outlying than typical %v", bad.Score, good.Score)
	}
	if !bad.Flagged() {
		t.Fatal("contrarian record not flagged")
	}
	// Matches index the union list and must explain cleanly.
	for _, line := range m.Explain(bad) {
		if !strings.Contains(line, "∈") {
			t.Fatalf("unexpected explanation %q", line)
		}
	}
}

// Serving a reference-window record must reproduce the fit-time
// combine bit-exactly. The expected value is built independently from
// public APIs: run the same ensemble.Fit the monitor runs, filter each
// member at the retention threshold, recompute its evidence column,
// and aggregate with ensemble.Combine (which scoreEnsemble does NOT
// call — this is a cross-implementation check of the serving path).
func TestEnsembleServeMatchesFit(t *testing.T) {
	ds := reference(300, 7)
	const targetS = -3.0
	for _, combiner := range []string{"rank", "zscore", "max"} {
		m, err := NewMonitor(ds, Options{
			Phi: 4, TargetS: targetS, Seed: 11,
			Ensemble: &EnsembleOptions{Members: 5, Combiner: combiner},
		})
		if err != nil {
			t.Fatal(err)
		}
		det := core.NewDetector(ds, 4)
		advice := det.Advise(targetS)
		comb, _ := ensemble.ParseCombiner(combiner)
		res, err := ensemble.Fit(det, ensemble.Options{
			Members: 5, K: advice.K, M: 100, MinCoverage: -1,
			Combiner: comb, Workers: -1, Seed: 11, Cache: grid.NewCache(det.Index),
		})
		if err != nil {
			t.Fatal(err)
		}
		n := ds.N()
		evidence := make([][]float64, len(res.Members))
		for r, mem := range res.Members {
			col := make([]float64, n)
			for i := 0; i < n; i++ {
				cells := det.Grid.CellsRow(i)
				best := 0.0
				for _, p := range mem.Projections {
					if p.Sparsity <= targetS && p.Sparsity < best && p.Cube.Covers(cells) {
						best = p.Sparsity
					}
				}
				col[i] = -best
			}
			evidence[r] = col
		}
		want, err := ensemble.Combine(comb, evidence)
		if err != nil {
			t.Fatal(err)
		}
		alerts := m.ScoreBatch(ds)
		for i, a := range alerts {
			if a.Score != -want[i] {
				t.Fatalf("combiner %s: served score[%d] = %v, want %v",
					combiner, i, a.Score, -want[i])
			}
		}
	}
}

// Save → Load must reconstruct serving exactly: identical kind, union,
// and bit-identical scores and matches on fresh records, at any batch
// worker count.
func TestEnsembleModelRoundTrip(t *testing.T) {
	for _, combiner := range []string{"rank", "zscore", "max"} {
		m := ensembleMonitor(t, &EnsembleOptions{Members: 5, BagSize: 5, Combiner: combiner})
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("combiner %s: %v", combiner, err)
		}
		if loaded.Kind() != "ensemble" || loaded.Members() != m.Members() {
			t.Fatalf("combiner %s: loaded kind=%s members=%d", combiner, loaded.Kind(), loaded.Members())
		}
		if len(loaded.Projections()) != len(m.Projections()) {
			t.Fatalf("combiner %s: union size %d != %d", combiner, len(loaded.Projections()), len(m.Projections()))
		}
		r := xrand.New(17)
		for i := 0; i < 50; i++ {
			var row []float64
			if i%2 == 0 {
				row = contrarian(r)
			} else {
				row = typical(r)
			}
			want, got := m.Score(row), loaded.Score(row)
			if want.Score != got.Score {
				t.Fatalf("combiner %s: loaded score %v != %v", combiner, got.Score, want.Score)
			}
			if len(want.Matches) != len(got.Matches) {
				t.Fatalf("combiner %s: matches %v != %v", combiner, got.Matches, want.Matches)
			}
			for j := range want.Matches {
				if want.Matches[j] != got.Matches[j] {
					t.Fatalf("combiner %s: matches %v != %v", combiner, got.Matches, want.Matches)
				}
			}
		}
	}
}

// Batch scoring must be worker-count-invariant for ensemble models too.
func TestEnsembleScoreBatchWorkers(t *testing.T) {
	m := ensembleMonitor(t, &EnsembleOptions{Members: 4})
	ds := reference(600, 9)
	base, err := m.ScoreBatchContext(context.Background(), ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		got, err := m.ScoreBatchContext(context.Background(), ds, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if base[i].Score != got[i].Score {
				t.Fatalf("workers=%d: score[%d] = %v, want %v", w, i, got[i].Score, base[i].Score)
			}
		}
	}
}

func TestEnsembleOptionsValidation(t *testing.T) {
	ds := reference(100, 4)
	cases := []EnsembleOptions{
		{Members: -1},
		{Algo: "annealing"},
		{Combiner: "median"},
		{BagSize: -2},
	}
	for _, eo := range cases {
		eo := eo
		if _, err := NewMonitor(ds, Options{Phi: 5, Seed: 1, Ensemble: &eo}); err == nil {
			t.Fatalf("accepted invalid ensemble options %+v", eo)
		}
	}
}

// Version gating: a v1 model must not carry an ensemble section, a v2
// model must, and corrupt ensemble sections are rejected.
func TestEnsembleModelValidate(t *testing.T) {
	m := ensembleMonitor(t, &EnsembleOptions{Members: 3})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	decode := func(t *testing.T) *Model {
		t.Helper()
		var model Model
		if err := json.Unmarshal(pristine, &model); err != nil {
			t.Fatal(err)
		}
		return &model
	}

	model := decode(t)
	if model.Version != 2 {
		t.Fatalf("saved ensemble model version %d, want 2", model.Version)
	}
	if err := model.Validate(); err != nil {
		t.Fatalf("pristine model rejected: %v", err)
	}

	corruptions := []struct {
		name   string
		break_ func(*Model)
	}{
		{"v1 with ensemble", func(m *Model) { m.Version = 1 }},
		{"v2 without ensemble", func(m *Model) { m.Ensemble = nil }},
		{"unknown version", func(m *Model) { m.Version = 3 }},
		{"bad combiner", func(m *Model) { m.Ensemble.Combiner = "median" }},
		{"no members", func(m *Model) { m.Ensemble.Members = nil }},
		{"empty bag", func(m *Model) { m.Ensemble.Members[0].Dims = nil }},
		{"bag out of range", func(m *Model) { m.Ensemble.Members[0].Dims[0] = 99 }},
		{"bag not increasing", func(m *Model) {
			d := m.Ensemble.Members[0].Dims
			if len(d) > 1 {
				d[1] = d[0]
			} else {
				m.Ensemble.Members[0].Dims = []int{1, 1}
			}
		}},
		{"calibration unsorted", func(m *Model) {
			s := m.Ensemble.Members[0].Sorted
			if len(s) > 1 {
				s[0], s[len(s)-1] = s[len(s)-1]+1, s[0]
			}
		}},
		{"negative std", func(m *Model) { m.Ensemble.Members[0].Std = -1 }},
	}
	for _, c := range corruptions {
		model := decode(t)
		c.break_(model)
		if err := model.Validate(); err == nil {
			t.Fatalf("%s: corruption accepted", c.name)
		}
	}
}

// A single-search model still saves as v1 and loads unchanged.
func TestSingleModelStaysV1(t *testing.T) {
	m, err := NewMonitor(reference(300, 2), Options{Phi: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var model Model
	if err := json.Unmarshal(buf.Bytes(), &model); err != nil {
		t.Fatal(err)
	}
	if model.Version != 1 || model.Ensemble != nil {
		t.Fatalf("single model saved as version %d (ensemble %v)", model.Version, model.Ensemble)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind() != "single" || loaded.Members() != 0 {
		t.Fatalf("loaded kind=%s members=%d", loaded.Kind(), loaded.Members())
	}
}
