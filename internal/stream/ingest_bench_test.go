package stream

import (
	"context"
	"testing"

	"hido/internal/dataset"
	"hido/internal/xrand"
)

// benchIngestMonitor fits a monitor on the shared correlated window
// and switches it into ingest mode with the given cadence.
func benchIngestMonitor(b *testing.B, window, refitEvery int) *Monitor {
	b.Helper()
	ds := reference(800, 40)
	m, err := NewMonitor(ds, Options{Phi: 5, Seed: 41})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.EnableIngest(IngestOptions{Window: window, RefitEvery: refitEvery}); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkIngest measures the sustained per-record ingest cost:
// score-on-arrival plus the epoch-ring append and sketch update. The
// norefit variant pins the steady-state hot path; the refit variant
// lets background refits fire every 2048 records so their snapshot
// cost (and nothing else — the fit itself runs concurrently) lands in
// the measured stream.
func BenchmarkIngest(b *testing.B) {
	rows := make([][]float64, 1024)
	r := xrand.New(7)
	for i := range rows {
		rows[i] = typical(r)
	}
	b.Run("record-norefit", func(b *testing.B) {
		m := benchIngestMonitor(b, 4096, 1<<30)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Ingest(rows[i%len(rows)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("record-refit-2k", func(b *testing.B) {
		m := benchIngestMonitor(b, 4096, 2048)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Ingest(rows[i%len(rows)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		m.WaitIngest()
		st := m.IngestStats()
		b.ReportMetric(float64(st.Refits), "refits")
	})
	b.Run("batch-256", func(b *testing.B) {
		m := benchIngestMonitor(b, 4096, 1<<30)
		batch := dataset.New(dataset.GenericNames(8), 256)
		for i := 0; i < 256; i++ {
			batch.AppendRow(rows[i%len(rows)], "")
		}
		var buf []Alert
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			alerts, err := m.IngestBatch(context.Background(), batch, 0, buf)
			if err != nil {
				b.Fatal(err)
			}
			buf = alerts
		}
	})
}
