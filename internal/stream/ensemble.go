package stream

import (
	"fmt"
	"math"
	"sort"

	"hido/internal/core"
	"hido/internal/dataset"
	"hido/internal/ensemble"
	"hido/internal/grid"
)

// EnsembleOptions selects the subspace-ensemble model kind: Members
// independent searches over sampled feature bags, combined into one
// score per record (see internal/ensemble). All fields are
// JSON-serializable spellings so the options round-trip through the
// persisted model and the hidod fit API.
type EnsembleOptions struct {
	// Members is the number of independent member searches (0 selects
	// the ensemble default, 10).
	Members int `json:"members,omitempty"`
	// BagSize is the feature-bag width (0 selects the default,
	// (D+1)/2 clamped to at least the projection dimensionality).
	BagSize int `json:"bag_size,omitempty"`
	// Algo is the per-member search: "evo" (default) or "brute".
	Algo string `json:"algo,omitempty"`
	// Combiner aggregates member evidence: "rank" (default), "zscore",
	// or "max".
	Combiner string `json:"combiner,omitempty"`
}

func (o *EnsembleOptions) validate() error {
	if o.Members < 0 {
		return fmt.Errorf("stream: ensemble members=%d must not be negative", o.Members)
	}
	if o.BagSize < 0 {
		return fmt.Errorf("stream: ensemble bag size %d must not be negative", o.BagSize)
	}
	if _, err := ensemble.ParseAlgo(o.Algo); err != nil {
		return err
	}
	if _, err := ensemble.ParseCombiner(o.Combiner); err != nil {
		return err
	}
	return nil
}

// memberModel is one fitted ensemble member as the serving path needs
// it: its retained projections plus the score calibration computed on
// the reference window, so a served record's combined score is exactly
// what the fit-time combine would have produced for it.
type memberModel struct {
	// dims is the member's feature bag (strictly increasing).
	dims []int
	// projections are the member's projections retained at the TargetS
	// threshold, most negative sparsity first.
	projections []core.Projection
	// unionIdx maps projections[i] to its index in the monitor's
	// deduplicated union list — the index space of Alert.Matches.
	unionIdx []int
	// sorted is the member's reference-window evidence, ascending —
	// the ECDF the rank combiner interpolates new records into.
	sorted []float64
	// mean and std are the reference evidence moments for the z-score
	// combiner (population std; 0 freezes the member's contribution).
	mean, std float64
}

// refitEnsemble is the ensemble branch of Refit: fit the ensemble on
// the reference window, filter each member's projections at the
// retention threshold, and calibrate each member's evidence
// distribution so serving can reproduce the fit-time combine.
func (m *Monitor) refitEnsemble(reference *dataset.Dataset, det *core.Detector) error {
	// Same up-front shape check as Refit: never start Members expensive
	// searches on a window the final swap would reject anyway. (Refit
	// already checked, but refitDetector callers can reach here with a
	// detector built off-lock.)
	if err := m.checkDims(det.D()); err != nil {
		return err
	}
	eo := m.opt.Ensemble
	algo, err := ensemble.ParseAlgo(eo.Algo)
	if err != nil {
		return err
	}
	comb, err := ensemble.ParseCombiner(eo.Combiner)
	if err != nil {
		return err
	}
	advice := det.Advise(m.opt.TargetS)
	cache := grid.NewCache(det.Index)
	// MinCoverage -1 for the same reason as the single-search path:
	// cubes empty in the reference window are the strongest online
	// alarms.
	res, err := ensemble.Fit(det, ensemble.Options{
		Members: eo.Members, BagSize: eo.BagSize, Algo: algo,
		K: advice.K, M: m.opt.M, MinCoverage: -1, Combiner: comb,
		Workers: -1, Seed: m.opt.Seed, Cache: cache,
		Observer: m.opt.Observer, RunID: "fit",
	})
	if err != nil {
		return err
	}

	n := det.N()
	members := make([]memberModel, len(res.Members))
	for r, mem := range res.Members {
		var kept []core.Projection
		for _, p := range mem.Projections {
			if p.Sparsity <= m.opt.TargetS {
				kept = append(kept, p)
			}
		}
		// Calibrate against the RETAINED projections: the served
		// evidence of a reference record must equal its calibration
		// evidence, or rank/z-score lookups would be biased.
		ev := make([]float64, n)
		for i := 0; i < n; i++ {
			ev[i] = memberEvidence(kept, det.Grid.CellsRow(i))
		}
		mu, sd := ensemble.MeanStd(ev)
		sort.Float64s(ev)
		members[r] = memberModel{dims: mem.Dims, projections: kept, sorted: ev, mean: mu, std: sd}
	}
	union := buildUnion(members)

	m.mu.Lock()
	defer m.mu.Unlock()
	// Backstop for the up-front checkDims (a racing Refit could have
	// swapped the model while this fit ran off-lock).
	if m.grid != nil && det.D() != m.grid.D {
		return fmt.Errorf("stream: refit window has %d dims, model has %d", det.D(), m.grid.D)
	}
	m.grid = det.Grid
	m.names = append([]string(nil), reference.Names...)
	m.projections = union
	m.k = advice.K
	m.fitStats = cache.Stats()
	m.members = members
	m.combiner = comb
	return nil
}

// memberEvidence is one member's outlierness for a record: the negated
// most-negative sparsity among its projections covering the record's
// cells, 0 when none covers (core.Result.Score negated — the ensemble
// evidence convention).
func memberEvidence(projs []core.Projection, cells []uint16) float64 {
	best := 0.0
	for _, p := range projs {
		if p.Sparsity < best && p.Cube.Covers(cells) {
			best = p.Sparsity
		}
	}
	return -best
}

// buildUnion deduplicates the members' projections into one flat list —
// the Alert.Matches index space — ordered by (sparsity ascending, cube
// key) so the list is deterministic regardless of member order, and
// fills each member's unionIdx mapping in place.
func buildUnion(members []memberModel) []core.Projection {
	type entry struct {
		p   core.Projection
		key string
	}
	seen := make(map[string]bool)
	var entries []entry
	for _, mm := range members {
		for _, p := range mm.projections {
			k := p.Cube.Key()
			if !seen[k] {
				seen[k] = true
				entries = append(entries, entry{p, k})
			}
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].p.Sparsity != entries[b].p.Sparsity {
			return entries[a].p.Sparsity < entries[b].p.Sparsity
		}
		return entries[a].key < entries[b].key
	})
	union := make([]core.Projection, len(entries))
	pos := make(map[string]int, len(entries))
	for i, e := range entries {
		union[i] = e.p
		pos[e.key] = i
	}
	for mi := range members {
		mm := &members[mi]
		mm.unionIdx = make([]int, len(mm.projections))
		for pi, p := range mm.projections {
			mm.unionIdx[pi] = pos[p.Cube.Key()]
		}
	}
	return union
}

// scoreEnsemble evaluates one record's grid cells against the ensemble
// members, mirroring ensemble.Combine per record: each member
// contributes its evidence through the calibration fitted on the
// reference window. Alert.Score is the negated combined score (lower =
// more outlying, like the single-model path); Matches lists the union
// indices of every member projection covering the record, ascending.
// Dedup across members runs on the scorer's matched scratch instead of
// a per-record map; the marks are restored to all false on return.
func (s *Scorer) scoreEnsemble(cells []uint16, matches []int) Alert {
	v := s.v
	a := Alert{Matches: matches[:0]}
	sum := 0.0
	best := math.Inf(-1)
	for i := range v.members {
		mm := &v.members[i]
		memberBest := 0.0
		for pi, p := range mm.projections {
			if p.Cube.Covers(cells) {
				if ui := mm.unionIdx[pi]; !s.matched[ui] {
					s.matched[ui] = true
					a.Matches = append(a.Matches, ui)
				}
				if p.Sparsity < memberBest {
					memberBest = p.Sparsity
				}
			}
		}
		ev := -memberBest
		switch v.combiner {
		case ensemble.MaxCombiner:
			if ev > best {
				best = ev
			}
		case ensemble.ZScoreCombiner:
			if mm.std > 0 {
				sum += (ev - mm.mean) / mm.std
			}
		default: // RankCombiner
			sum += ensemble.RankWithin(mm.sorted, ev)
		}
	}
	var combined float64
	if v.combiner == ensemble.MaxCombiner {
		combined = best
	} else {
		combined = sum / float64(len(v.members))
	}
	a.Score = -combined
	for _, ui := range a.Matches {
		s.matched[ui] = false
	}
	sort.Ints(a.Matches)
	return a
}

// Ensemble returns the monitor's ensemble configuration, or nil for a
// single-search model.
func (m *Monitor) Ensemble() *EnsembleOptions {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.opt.Ensemble == nil {
		return nil
	}
	cp := *m.opt.Ensemble
	return &cp
}

// Members returns the number of fitted ensemble members (0 for a
// single-search model).
func (m *Monitor) Members() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.members)
}

// Kind names the model kind: "ensemble" or "single".
func (m *Monitor) Kind() string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.members) > 0 {
		return "ensemble"
	}
	return "single"
}
