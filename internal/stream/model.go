package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"hido/internal/core"
	"hido/internal/cube"
	"hido/internal/discretize"
)

// Model is the JSON-serializable form of a fitted Monitor: the grid's
// cut points, the retained projections, and the fitting options. A
// model mined once can be shipped to scoring processes that never see
// the reference data.
type Model struct {
	Version     int               `json:"version"`
	Phi         int               `json:"phi"`
	K           int               `json:"k"`
	Options     Options           `json:"options"`
	Names       []string          `json:"names"`
	Cuts        [][]float64       `json:"cuts"`
	Projections []ModelProjection `json:"projections"`
}

// ModelProjection is one persisted projection.
type ModelProjection struct {
	Cube     []uint16 `json:"cube"`
	Sparsity float64  `json:"sparsity"`
	Count    int      `json:"count"`
}

// modelVersion guards the wire format.
const modelVersion = 1

// Save writes the current model as JSON.
func (m *Monitor) Save(w io.Writer) error {
	m.mu.RLock()
	model := Model{
		Version: modelVersion,
		Phi:     m.opt.Phi,
		K:       m.k,
		Options: m.opt,
		Names:   append([]string(nil), m.names...),
		Cuts:    m.grid.AllCuts(),
	}
	for _, p := range m.projections {
		model.Projections = append(model.Projections, ModelProjection{
			Cube: append([]uint16(nil), p.Cube...), Sparsity: p.Sparsity, Count: p.Count,
		})
	}
	m.mu.RUnlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(model); err != nil {
		return fmt.Errorf("stream: encoding model: %w", err)
	}
	return nil
}

// Validate checks the structural integrity of a decoded model: the
// version and grid shape, strictly finite and non-decreasing cut
// points, a plausible projection dimensionality, and per-projection
// sanity (in-range cells, non-negative counts, non-NaN sparsity). A
// model that fails any of these would load into a monitor that scores
// garbage silently — out-of-order cuts break the binary-search range
// assignment, NaN sparsity poisons every alert score it touches — so
// Load rejects it instead. The store's startup recovery relies on the
// same checks to quarantine corrupt files.
func (model *Model) Validate() error {
	if model.Version != modelVersion {
		return fmt.Errorf("stream: model version %d, want %d", model.Version, modelVersion)
	}
	if model.Phi < 2 || model.Phi > math.MaxUint16 {
		return fmt.Errorf("stream: model phi=%d invalid", model.Phi)
	}
	if len(model.Cuts) == 0 || len(model.Names) != len(model.Cuts) {
		return fmt.Errorf("stream: model has %d name(s) for %d dimension(s)",
			len(model.Names), len(model.Cuts))
	}
	d := len(model.Cuts)
	if model.K < 1 || model.K > d {
		return fmt.Errorf("stream: model k=%d outside [1,%d]", model.K, d)
	}
	for j, c := range model.Cuts {
		if len(c) != model.Phi-1 {
			return fmt.Errorf("stream: dimension %d has %d cuts, want %d",
				j, len(c), model.Phi-1)
		}
		for i, v := range c {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("stream: dimension %d cut %d is %v", j, i, v)
			}
			if i > 0 && v < c[i-1] {
				return fmt.Errorf("stream: dimension %d cuts not non-decreasing at %d (%v < %v)",
					j, i, v, c[i-1])
			}
		}
	}
	for pi, p := range model.Projections {
		if len(p.Cube) != d {
			return fmt.Errorf("stream: projection %d spans %d dims, model has %d",
				pi, len(p.Cube), d)
		}
		if !cube.Cube(p.Cube).Valid(model.Phi) {
			return fmt.Errorf("stream: projection %d has out-of-range cells", pi)
		}
		if p.Count < 0 {
			return fmt.Errorf("stream: projection %d has negative count %d", pi, p.Count)
		}
		if math.IsNaN(p.Sparsity) {
			return fmt.Errorf("stream: projection %d has NaN sparsity", pi)
		}
	}
	return nil
}

// Load reconstructs a Monitor from a persisted model, validating it
// first: corrupt models — non-monotonic or non-finite cut points,
// negative counts, NaN sparsity — are rejected with a descriptive
// error instead of loading silently and poisoning scoring. The loaded
// monitor scores and explains exactly as the original; Refit works as
// long as the new window matches the model's dimensionality.
func Load(r io.Reader) (*Monitor, error) {
	var model Model
	if err := json.NewDecoder(r).Decode(&model); err != nil {
		return nil, fmt.Errorf("stream: decoding model: %w", err)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	m := &Monitor{
		opt:   model.Options.withDefaults(),
		grid:  discretize.FromCuts(model.Phi, model.Cuts),
		names: model.Names,
		k:     model.K,
	}
	m.opt.Phi = model.Phi
	for _, p := range model.Projections {
		m.projections = append(m.projections, core.Projection{
			Cube: cube.Cube(p.Cube), Sparsity: p.Sparsity, Count: p.Count,
		})
	}
	return m, nil
}
