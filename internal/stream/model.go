package stream

import (
	"encoding/json"
	"fmt"
	"io"

	"hido/internal/core"
	"hido/internal/cube"
	"hido/internal/discretize"
)

// Model is the JSON-serializable form of a fitted Monitor: the grid's
// cut points, the retained projections, and the fitting options. A
// model mined once can be shipped to scoring processes that never see
// the reference data.
type Model struct {
	Version     int               `json:"version"`
	Phi         int               `json:"phi"`
	K           int               `json:"k"`
	Options     Options           `json:"options"`
	Names       []string          `json:"names"`
	Cuts        [][]float64       `json:"cuts"`
	Projections []ModelProjection `json:"projections"`
}

// ModelProjection is one persisted projection.
type ModelProjection struct {
	Cube     []uint16 `json:"cube"`
	Sparsity float64  `json:"sparsity"`
	Count    int      `json:"count"`
}

// modelVersion guards the wire format.
const modelVersion = 1

// Save writes the current model as JSON.
func (m *Monitor) Save(w io.Writer) error {
	m.mu.RLock()
	model := Model{
		Version: modelVersion,
		Phi:     m.opt.Phi,
		K:       m.k,
		Options: m.opt,
		Names:   append([]string(nil), m.names...),
		Cuts:    m.grid.AllCuts(),
	}
	for _, p := range m.projections {
		model.Projections = append(model.Projections, ModelProjection{
			Cube: append([]uint16(nil), p.Cube...), Sparsity: p.Sparsity, Count: p.Count,
		})
	}
	m.mu.RUnlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(model); err != nil {
		return fmt.Errorf("stream: encoding model: %w", err)
	}
	return nil
}

// Load reconstructs a Monitor from a persisted model. The loaded
// monitor scores and explains exactly as the original; Refit works as
// long as the new window matches the model's dimensionality.
func Load(r io.Reader) (*Monitor, error) {
	var model Model
	if err := json.NewDecoder(r).Decode(&model); err != nil {
		return nil, fmt.Errorf("stream: decoding model: %w", err)
	}
	if model.Version != modelVersion {
		return nil, fmt.Errorf("stream: model version %d, want %d", model.Version, modelVersion)
	}
	if model.Phi < 2 {
		return nil, fmt.Errorf("stream: model phi=%d invalid", model.Phi)
	}
	if len(model.Cuts) == 0 || len(model.Names) != len(model.Cuts) {
		return nil, fmt.Errorf("stream: model has %d name(s) for %d dimension(s)",
			len(model.Names), len(model.Cuts))
	}
	for j, c := range model.Cuts {
		if len(c) != model.Phi-1 {
			return nil, fmt.Errorf("stream: dimension %d has %d cuts, want %d",
				j, len(c), model.Phi-1)
		}
	}
	d := len(model.Cuts)
	m := &Monitor{
		opt:   model.Options.withDefaults(),
		grid:  discretize.FromCuts(model.Phi, model.Cuts),
		names: model.Names,
		k:     model.K,
	}
	m.opt.Phi = model.Phi
	for pi, p := range model.Projections {
		if len(p.Cube) != d {
			return nil, fmt.Errorf("stream: projection %d spans %d dims, model has %d",
				pi, len(p.Cube), d)
		}
		c := cube.Cube(p.Cube)
		if !c.Valid(model.Phi) {
			return nil, fmt.Errorf("stream: projection %d has out-of-range cells", pi)
		}
		m.projections = append(m.projections, core.Projection{
			Cube: c, Sparsity: p.Sparsity, Count: p.Count,
		})
	}
	return m, nil
}
