package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"hido/internal/core"
	"hido/internal/cube"
	"hido/internal/discretize"
	"hido/internal/ensemble"
)

// Model is the JSON-serializable form of a fitted Monitor: the grid's
// cut points, the retained projections, and the fitting options. A
// model mined once can be shipped to scoring processes that never see
// the reference data.
type Model struct {
	Version     int               `json:"version"`
	Phi         int               `json:"phi"`
	K           int               `json:"k"`
	Options     Options           `json:"options"`
	Names       []string          `json:"names"`
	Cuts        [][]float64       `json:"cuts"`
	Projections []ModelProjection `json:"projections"`
	// Ensemble carries the per-member state of an ensemble model
	// (version 2). Projections then holds the deduplicated union the
	// members reference — the Alert.Matches index space.
	Ensemble *ModelEnsemble `json:"ensemble,omitempty"`
}

// ModelProjection is one persisted projection.
type ModelProjection struct {
	Cube     []uint16 `json:"cube"`
	Sparsity float64  `json:"sparsity"`
	Count    int      `json:"count"`
}

// ModelEnsemble is the persisted ensemble section: the combiner plus
// each member's projections and score calibration. Loading it
// reconstructs serving exactly — scores are bit-identical to the
// monitor that fitted the model.
type ModelEnsemble struct {
	Combiner string        `json:"combiner"`
	Members  []ModelMember `json:"members"`
}

// ModelMember is one persisted ensemble member.
type ModelMember struct {
	// Dims is the member's feature bag, strictly increasing.
	Dims []int `json:"dims"`
	// Projections are the member's retained projections.
	Projections []ModelProjection `json:"projections"`
	// Sorted is the member's reference-window evidence, ascending
	// (rank-combiner calibration).
	Sorted []float64 `json:"sorted,omitempty"`
	// Mean and Std are the reference evidence moments (z-score
	// calibration; population std).
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

// Model wire versions: 1 is a single-search model (no ensemble
// section), 2 an ensemble model (ensemble section required).
const (
	modelVersion         = 1
	modelVersionEnsemble = 2
)

// Save writes the current model as JSON.
func (m *Monitor) Save(w io.Writer) error {
	m.mu.RLock()
	model := Model{
		Version: modelVersion,
		Phi:     m.opt.Phi,
		K:       m.k,
		Options: m.opt,
		Names:   append([]string(nil), m.names...),
		Cuts:    m.grid.AllCuts(),
	}
	for _, p := range m.projections {
		model.Projections = append(model.Projections, ModelProjection{
			Cube: append([]uint16(nil), p.Cube...), Sparsity: p.Sparsity, Count: p.Count,
		})
	}
	if len(m.members) > 0 {
		model.Version = modelVersionEnsemble
		me := &ModelEnsemble{Combiner: m.combiner.String()}
		for _, mm := range m.members {
			member := ModelMember{
				Dims:   append([]int(nil), mm.dims...),
				Sorted: append([]float64(nil), mm.sorted...),
				Mean:   mm.mean,
				Std:    mm.std,
			}
			for _, p := range mm.projections {
				member.Projections = append(member.Projections, ModelProjection{
					Cube: append([]uint16(nil), p.Cube...), Sparsity: p.Sparsity, Count: p.Count,
				})
			}
			me.Members = append(me.Members, member)
		}
		model.Ensemble = me
	}
	m.mu.RUnlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(model); err != nil {
		return fmt.Errorf("stream: encoding model: %w", err)
	}
	return nil
}

// Validate checks the structural integrity of a decoded model: the
// version and grid shape, strictly finite and non-decreasing cut
// points, a plausible projection dimensionality, and per-projection
// sanity (in-range cells, non-negative counts, non-NaN sparsity). A
// model that fails any of these would load into a monitor that scores
// garbage silently — out-of-order cuts break the binary-search range
// assignment, NaN sparsity poisons every alert score it touches — so
// Load rejects it instead. The store's startup recovery relies on the
// same checks to quarantine corrupt files.
func (model *Model) Validate() error {
	switch model.Version {
	case modelVersion:
		if model.Ensemble != nil {
			return fmt.Errorf("stream: version-1 model carries an ensemble section")
		}
	case modelVersionEnsemble:
		if model.Ensemble == nil {
			return fmt.Errorf("stream: version-2 model missing its ensemble section")
		}
	default:
		return fmt.Errorf("stream: model version %d, want %d or %d",
			model.Version, modelVersion, modelVersionEnsemble)
	}
	if model.Phi < 2 || model.Phi > math.MaxUint16 {
		return fmt.Errorf("stream: model phi=%d invalid", model.Phi)
	}
	if len(model.Cuts) == 0 || len(model.Names) != len(model.Cuts) {
		return fmt.Errorf("stream: model has %d name(s) for %d dimension(s)",
			len(model.Names), len(model.Cuts))
	}
	d := len(model.Cuts)
	if model.K < 1 || model.K > d {
		return fmt.Errorf("stream: model k=%d outside [1,%d]", model.K, d)
	}
	for j, c := range model.Cuts {
		if len(c) != model.Phi-1 {
			return fmt.Errorf("stream: dimension %d has %d cuts, want %d",
				j, len(c), model.Phi-1)
		}
		for i, v := range c {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("stream: dimension %d cut %d is %v", j, i, v)
			}
			if i > 0 && v < c[i-1] {
				return fmt.Errorf("stream: dimension %d cuts not non-decreasing at %d (%v < %v)",
					j, i, v, c[i-1])
			}
		}
	}
	if err := validateProjections(model.Projections, d, model.Phi, "projection"); err != nil {
		return err
	}
	if model.Ensemble != nil {
		if err := model.Ensemble.validate(d, model.Phi); err != nil {
			return err
		}
	}
	return nil
}

// validateProjections applies the per-projection sanity checks to any
// persisted projection list (top-level union or a member's).
func validateProjections(projs []ModelProjection, d, phi int, what string) error {
	for pi, p := range projs {
		if len(p.Cube) != d {
			return fmt.Errorf("stream: %s %d spans %d dims, model has %d",
				what, pi, len(p.Cube), d)
		}
		if !cube.Cube(p.Cube).Valid(phi) {
			return fmt.Errorf("stream: %s %d has out-of-range cells", what, pi)
		}
		if p.Count < 0 {
			return fmt.Errorf("stream: %s %d has negative count %d", what, pi, p.Count)
		}
		if math.IsNaN(p.Sparsity) {
			return fmt.Errorf("stream: %s %d has NaN sparsity", what, pi)
		}
	}
	return nil
}

// validate checks the ensemble section: a parseable combiner and, per
// member, a strictly increasing in-range feature bag, sane projections
// constraining only bag dimensions, a finite non-decreasing calibration
// vector, and finite moments. A member that fails any of these would
// serve silently wrong combined scores.
func (me *ModelEnsemble) validate(d, phi int) error {
	if _, err := ensemble.ParseCombiner(me.Combiner); err != nil {
		return err
	}
	if len(me.Members) == 0 {
		return fmt.Errorf("stream: ensemble model has no members")
	}
	for mi, mem := range me.Members {
		if len(mem.Dims) == 0 {
			return fmt.Errorf("stream: ensemble member %d has an empty feature bag", mi)
		}
		inBag := make(map[int]bool, len(mem.Dims))
		for i, dim := range mem.Dims {
			if dim < 0 || dim >= d {
				return fmt.Errorf("stream: ensemble member %d bag dim %d outside [0,%d)", mi, dim, d)
			}
			if i > 0 && dim <= mem.Dims[i-1] {
				return fmt.Errorf("stream: ensemble member %d bag not strictly increasing at %d", mi, i)
			}
			inBag[dim] = true
		}
		if err := validateProjections(mem.Projections, d, phi,
			fmt.Sprintf("ensemble member %d projection", mi)); err != nil {
			return err
		}
		for pi, p := range mem.Projections {
			for _, dim := range cube.Cube(p.Cube).Dims() {
				if !inBag[dim] {
					return fmt.Errorf("stream: ensemble member %d projection %d constrains dim %d outside its bag",
						mi, pi, dim)
				}
			}
		}
		for i, v := range mem.Sorted {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("stream: ensemble member %d calibration value %d is %v", mi, i, v)
			}
			if i > 0 && v < mem.Sorted[i-1] {
				return fmt.Errorf("stream: ensemble member %d calibration not sorted at %d", mi, i)
			}
		}
		if math.IsNaN(mem.Mean) || math.IsInf(mem.Mean, 0) ||
			math.IsNaN(mem.Std) || math.IsInf(mem.Std, 0) || mem.Std < 0 {
			return fmt.Errorf("stream: ensemble member %d has invalid moments (mean=%v std=%v)",
				mi, mem.Mean, mem.Std)
		}
	}
	return nil
}

// Load reconstructs a Monitor from a persisted model, validating it
// first: corrupt models — non-monotonic or non-finite cut points,
// negative counts, NaN sparsity — are rejected with a descriptive
// error instead of loading silently and poisoning scoring. The loaded
// monitor scores and explains exactly as the original; Refit works as
// long as the new window matches the model's dimensionality.
func Load(r io.Reader) (*Monitor, error) {
	var model Model
	if err := json.NewDecoder(r).Decode(&model); err != nil {
		return nil, fmt.Errorf("stream: decoding model: %w", err)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	m := &Monitor{
		opt:   model.Options.withDefaults(),
		grid:  discretize.FromCuts(model.Phi, model.Cuts),
		names: model.Names,
		k:     model.K,
	}
	m.opt.Phi = model.Phi
	for _, p := range model.Projections {
		m.projections = append(m.projections, core.Projection{
			Cube: cube.Cube(p.Cube), Sparsity: p.Sparsity, Count: p.Count,
		})
	}
	if model.Ensemble != nil {
		// Validate guaranteed the combiner parses.
		m.combiner, _ = ensemble.ParseCombiner(model.Ensemble.Combiner)
		members := make([]memberModel, len(model.Ensemble.Members))
		for mi, mem := range model.Ensemble.Members {
			mm := memberModel{
				dims:   mem.Dims,
				sorted: mem.Sorted,
				mean:   mem.Mean,
				std:    mem.Std,
			}
			for _, p := range mem.Projections {
				mm.projections = append(mm.projections, core.Projection{
					Cube: cube.Cube(p.Cube), Sparsity: p.Sparsity, Count: p.Count,
				})
			}
			members[mi] = mm
		}
		// Rebuild the union (and the members' indices into it) from the
		// members rather than trusting the persisted top-level list —
		// the construction is deterministic, so it reproduces what Save
		// wrote.
		m.projections = buildUnion(members)
		m.members = members
	}
	return m, nil
}
