package stream

import "hido/internal/dataset"

// RecordResult is the JSON wire form of one scored record. It is the
// unit both of the hidod server's /api/v1/score response and of
// `hidomon -json` output, so piping the CLI and scraping the server
// yield interchangeable streams.
type RecordResult struct {
	// Record is the zero-based row index within the scored batch.
	Record int `json:"record"`
	// Score is the most negative sparsity coefficient among matching
	// projections (0 when none matched).
	Score float64 `json:"score"`
	// Flagged reports whether any projection matched.
	Flagged bool `json:"flagged"`
	// Matches indexes the model's retained projections.
	Matches []int `json:"matches,omitempty"`
	// Label carries the input's class label when present (evaluation
	// only — never used in scoring).
	Label string `json:"label,omitempty"`
	// Explanations renders the matching projections as attribute
	// ranges; populated only on request.
	Explanations []string `json:"explanations,omitempty"`
}

// Results converts a batch of alerts into wire results. When
// flaggedOnly is set, clean records are omitted (the alert-stream
// shape); otherwise every record appears. With explain set, each
// flagged result carries its projection descriptions.
func (m *Monitor) Results(ds *dataset.Dataset, alerts []Alert, explain, flaggedOnly bool) []RecordResult {
	return m.ResultsAppend(nil, ds, alerts, explain, flaggedOnly)
}

// ResultsAppend is Results writing into dst's backing storage (dst is
// truncated first) — the allocation-free form the hidod scoring arena
// reuses across requests. Ownership of dst transfers to the returned
// slice.
func (m *Monitor) ResultsAppend(dst []RecordResult, ds *dataset.Dataset, alerts []Alert, explain, flaggedOnly bool) []RecordResult {
	v := m.snapshot() // one consistent model for every explanation
	if dst == nil {
		// Never return a nil slice: the score response encodes an empty
		// result set as [], not null.
		dst = make([]RecordResult, 0, len(alerts))
	}
	out := dst[:0]
	for i, a := range alerts {
		if flaggedOnly && !a.Flagged() {
			continue
		}
		r := RecordResult{
			Record:  i,
			Score:   a.Score,
			Flagged: a.Flagged(),
			Matches: a.Matches,
			Label:   ds.Label(i),
		}
		if explain && a.Flagged() {
			r.Explanations = v.explain(a)
		}
		out = append(out, r)
	}
	return out
}
