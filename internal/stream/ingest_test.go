package stream

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"hido/internal/obs"
	"hido/internal/synth"
	"hido/internal/xrand"
)

func TestIngestValidation(t *testing.T) {
	m, err := NewMonitor(reference(300, 1), Options{Phi: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(make([]float64, 8)); err != ErrIngestDisabled {
		t.Fatalf("ingest before enable: %v, want ErrIngestDisabled", err)
	}
	if err := m.RefitFromWindow(); err != ErrIngestDisabled {
		t.Fatalf("refit before enable: %v, want ErrIngestDisabled", err)
	}
	if err := m.EnableIngest(IngestOptions{Window: 0, RefitEvery: 10}); err == nil {
		t.Error("zero window accepted")
	}
	if err := m.EnableIngest(IngestOptions{Window: 100, RefitEvery: 0}); err == nil {
		t.Error("zero refit-every accepted")
	}
	if err := m.EnableIngest(IngestOptions{Window: 100, RefitEvery: 10}); err != nil {
		t.Fatal(err)
	}
	if err := m.EnableIngest(IngestOptions{Window: 100, RefitEvery: 10}); err == nil {
		t.Error("double enable accepted")
	}
	if _, err := m.Ingest([]float64{1, 2}); err == nil {
		t.Error("wrong-width record accepted")
	}
	if !m.IngestEnabled() {
		t.Error("IngestEnabled false after enable")
	}
}

func TestIngestScoresLikeScore(t *testing.T) {
	m, err := NewMonitor(reference(800, 1), Options{Phi: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// RefitEvery beyond the test's volume: the model never swaps, so
	// Ingest must agree with Score exactly.
	if err := m.EnableIngest(IngestOptions{Window: 500, RefitEvery: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	for i := 0; i < 50; i++ {
		rec := typical(r)
		if i%10 == 0 {
			rec = contrarian(r)
		}
		want := m.Score(rec)
		got, err := m.Ingest(rec)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score || !reflect.DeepEqual(got.Matches, want.Matches) {
			t.Fatalf("record %d: ingest alert %+v, score alert %+v", i, got, want)
		}
	}
	st := m.IngestStats()
	if st.WindowRows != 50 || st.SinceRefit != 50 {
		t.Fatalf("stats after 50 ingests: %+v", st)
	}
}

func TestIngestWindowSlides(t *testing.T) {
	m, err := NewMonitor(reference(300, 5), Options{Phi: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableIngest(IngestOptions{Window: 100, RefitEvery: 1 << 20, Epochs: 4}); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(7)
	for i := 0; i < 1000; i++ {
		if _, err := m.Ingest(typical(r)); err != nil {
			t.Fatal(err)
		}
		st := m.IngestStats()
		if st.WindowRows > 100 {
			t.Fatalf("after %d ingests window holds %d rows, cap 100", i+1, st.WindowRows)
		}
	}
	st := m.IngestStats()
	// Whole-epoch expiry keeps at least window − epochSize rows around.
	if st.WindowRows <= 100-25 {
		t.Fatalf("window shrank to %d rows", st.WindowRows)
	}
	if st.Epochs > 5 {
		t.Fatalf("ring grew to %d epochs", st.Epochs)
	}
}

// TestIngestRefitMatchesOffline is the load-bearing exactness check:
// with the window inside the sketch capacity, a refit driven by the
// merged epoch sketches must produce bit-identical projections to an
// offline fit over the same rows — the sketch path is the sorted pass,
// just incremental.
func TestIngestRefitMatchesOffline(t *testing.T) {
	opt := Options{Phi: 5, Seed: 11}
	m, err := NewMonitor(reference(500, 10), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableIngest(IngestOptions{Window: 1000, RefitEvery: 1 << 20, SketchCap: 1024}); err != nil {
		t.Fatal(err)
	}
	win := reference(400, 99)
	for i := 0; i < win.N(); i++ {
		if _, err := m.Ingest(win.RowView(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RefitFromWindow(); err != nil {
		t.Fatal(err)
	}
	offline, err := NewMonitor(win, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != offline.K() {
		t.Fatalf("sketch-refit k=%d, offline k=%d", m.K(), offline.K())
	}
	if !reflect.DeepEqual(m.Projections(), offline.Projections()) {
		t.Fatalf("sketch-refit projections diverge from offline fit:\n%d vs %d projections",
			len(m.Projections()), len(offline.Projections()))
	}
	st := m.IngestStats()
	if st.Refits != 1 || st.RefitErrs != 0 {
		t.Fatalf("stats after one refit: %+v", st)
	}
}

func TestIngestBackgroundRefitOnDrift(t *testing.T) {
	m, err := NewMonitor(reference(500, 20), Options{Phi: 5, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var results []RefitResult
	var resMu sync.Mutex
	if err := m.EnableIngest(IngestOptions{
		Window: 300, RefitEvery: 200,
		OnRefit: func(r RefitResult) {
			resMu.Lock()
			results = append(results, r)
			resMu.Unlock()
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Stream from a shifted regime: every value moved up by 3, so the
	// reference grid's boundaries all sit below the live data.
	r := xrand.New(22)
	shifted := func() []float64 {
		row := typical(r)
		for j := range row {
			row[j] += 3
		}
		return row
	}
	for i := 0; i < 200; i++ {
		if _, err := m.Ingest(shifted()); err != nil {
			t.Fatal(err)
		}
	}
	if d := m.Drift(); d < 0.2 {
		t.Fatalf("drift %v for a fully shifted window, want large", d)
	}
	before := m.Projections()
	// The 200th ingest made the refit due and started it in the
	// background; scoring must keep working while it runs.
	for i := 0; i < 50; i++ {
		m.Score(shifted())
	}
	m.WaitIngest()
	st := m.IngestStats()
	if st.Refits == 0 {
		t.Fatalf("no background refit fired: %+v", st)
	}
	if st.RefitErrs != 0 {
		t.Fatalf("background refit errored: %+v", st)
	}
	resMu.Lock()
	defer resMu.Unlock()
	if len(results) == 0 {
		t.Fatal("OnRefit never called")
	}
	if results[0].Err != nil || results[0].Rows == 0 || results[0].Drift < 0.2 {
		t.Fatalf("refit result %+v", results[0])
	}
	// The refit rebuilt the grid on the shifted window, so the model
	// changed observably.
	if reflect.DeepEqual(before, m.Projections()) && m.Drift() >= 0.2 {
		t.Error("refit left both projections and drift unchanged")
	}
	// Post-refit the grid tracks the shifted stream again.
	if d := m.Drift(); d > 0.15 {
		t.Errorf("post-refit drift %v, want small", d)
	}
}

func TestIngestBatch(t *testing.T) {
	m, err := NewMonitor(reference(500, 30), Options{Phi: 5, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableIngest(IngestOptions{Window: 400, RefitEvery: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	batch := reference(120, 32)
	alerts, err := m.IngestBatch(context.Background(), batch, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != batch.N() {
		t.Fatalf("%d alerts for %d records", len(alerts), batch.N())
	}
	want := m.ScoreBatch(batch)
	for i := range want {
		if alerts[i].Score != want[i].Score {
			t.Fatalf("batch alert %d: %v vs %v", i, alerts[i].Score, want[i].Score)
		}
	}
	if st := m.IngestStats(); st.WindowRows != batch.N() {
		t.Fatalf("window holds %d rows after a %d-row batch", st.WindowRows, batch.N())
	}
	// Dimensionality mismatch is rejected before scoring.
	bad, err := synth.Generate(synth.Config{Name: "bad", N: 10, D: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.IngestBatch(context.Background(), bad, 1, nil); err == nil {
		t.Error("mismatched batch accepted")
	}
}

func TestIngestConcurrentWithRefit(t *testing.T) {
	// The acceptance shape: scoring requests issued concurrently with
	// background refits complete without blocking or error.
	m, err := NewMonitor(reference(400, 40), Options{Phi: 5, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableIngest(IngestOptions{Window: 200, RefitEvery: 100}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
					m.Score(typical(r))
				}
			}
		}(uint64(42 + w))
	}
	r := xrand.New(50)
	for i := 0; i < 600; i++ {
		if _, err := m.Ingest(typical(r)); err != nil {
			t.Fatal(err)
		}
	}
	m.WaitIngest()
	close(stop)
	wg.Wait()
	if st := m.IngestStats(); st.Refits == 0 {
		t.Fatalf("no refit fired over 600 ingests with RefitEvery=100: %+v", st)
	}
}

func TestRefitFromWindowEmpty(t *testing.T) {
	m, err := NewMonitor(reference(300, 60), Options{Phi: 5, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableIngest(IngestOptions{Window: 100, RefitEvery: 10}); err != nil {
		t.Fatal(err)
	}
	if err := m.RefitFromWindow(); err == nil {
		t.Error("refit from an empty window succeeded")
	}
	if st := m.IngestStats(); st.RefitErrs != 1 {
		t.Fatalf("empty-window refit not counted as error: %+v", st)
	}
}

// TestRefitDimMismatchSkipsSearch pins the up-front validation: a
// mismatched window must be rejected before any search work runs, not
// after the full evolutionary run. The observer would see generation
// events if a search started.
func TestRefitDimMismatchSkipsSearch(t *testing.T) {
	events := 0
	o := obs.Funcs{Generation: func(obs.GenerationEvent) { events++ }}
	m, err := NewMonitor(reference(300, 70), Options{Phi: 5, Seed: 71, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	fitEvents := events
	if fitEvents == 0 {
		t.Fatal("observer saw no events from the initial fit")
	}
	statsBefore := m.FitStats()
	bad, err := synth.Generate(synth.Config{Name: "bad", N: 200, D: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Refit(bad); err == nil {
		t.Fatal("mismatched refit accepted")
	}
	if events != fitEvents {
		t.Errorf("mismatched refit ran %d search generations before failing", events-fitEvents)
	}
	if m.FitStats() != statsBefore {
		t.Error("mismatched refit disturbed fit-cache stats")
	}

	// Same for the ensemble path.
	em, err := NewMonitor(reference(300, 72), Options{Phi: 5, Seed: 73,
		Ensemble: &EnsembleOptions{Members: 3}, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	before := events
	eStats := em.FitStats()
	if err := em.Refit(bad); err == nil {
		t.Fatal("mismatched ensemble refit accepted")
	}
	if events != before {
		t.Errorf("mismatched ensemble refit ran %d search generations", events-before)
	}
	if em.FitStats() != eStats {
		t.Error("mismatched ensemble refit disturbed fit-cache stats")
	}
}

// TestFitStatsStableOnFailedRefit pins the gauge contract: a refit
// that fails must leave the previous fit's cache counters exactly as
// hidod exported them, not zeroed and not half-updated.
func TestFitStatsStableOnFailedRefit(t *testing.T) {
	m, err := NewMonitor(reference(300, 80), Options{Phi: 5, Seed: 81,
		Ensemble: &EnsembleOptions{Members: 3}})
	if err != nil {
		t.Fatal(err)
	}
	stats := m.FitStats()
	if stats.Misses == 0 {
		t.Fatal("initial fit recorded no cache activity")
	}
	// Corrupt the ensemble config so Refit fails at parse time — the
	// shape of a bad config arriving via a loaded model.
	m.opt.Ensemble.Algo = "bogus"
	if err := m.Refit(reference(300, 82)); err == nil {
		t.Fatal("refit with a bogus ensemble algo succeeded")
	}
	if got := m.FitStats(); got != stats {
		t.Fatalf("failed refit changed fit stats: %+v -> %+v", stats, got)
	}
	// And the model still serves.
	r := xrand.New(83)
	m.Score(typical(r))
}
