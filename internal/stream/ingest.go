package stream

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hido/internal/core"
	"hido/internal/dataset"
	"hido/internal/discretize"
)

// ErrIngestDisabled is returned by the ingestion entry points of a
// monitor that never ran EnableIngest.
var ErrIngestDisabled = errors.New("stream: ingest not enabled on this monitor")

// IngestOptions configures continuous ingestion on a fitted Monitor:
// how many records the sliding reference window retains, and how often
// the model refits from it.
type IngestOptions struct {
	// Window is the maximum number of buffered records (required, > 0).
	// Records beyond it expire oldest-epoch-first.
	Window int
	// RefitEvery triggers a background refit after this many ingested
	// records (required, > 0).
	RefitEvery int
	// Epochs is the ring granularity: the window is stored as this many
	// fixed-size epochs, and expiry drops whole epochs (default 8).
	Epochs int
	// SketchCap is the per-dimension quantile-sketch capacity (default
	// discretize.DefaultSketchCap). Windows up to this size per epoch
	// get exact boundaries; larger ones trade memory for bounded rank
	// error (see discretize.Sketch).
	SketchCap int
	// OnRefit, when set, observes every background refit attempt —
	// success or failure — after the model swap (or the abort). Called
	// from the refit goroutine; keep it cheap and non-blocking.
	OnRefit func(RefitResult)
}

func (o IngestOptions) withDefaults() (IngestOptions, error) {
	if o.Window <= 0 {
		return o, fmt.Errorf("stream: ingest window %d must be positive", o.Window)
	}
	if o.RefitEvery <= 0 {
		return o, fmt.Errorf("stream: refit-every %d must be positive", o.RefitEvery)
	}
	if o.Epochs == 0 {
		o.Epochs = 8
	}
	if o.Epochs < 1 {
		return o, fmt.Errorf("stream: ingest epochs %d must be positive", o.Epochs)
	}
	if o.SketchCap == 0 {
		o.SketchCap = discretize.DefaultSketchCap
	}
	return o, nil
}

// RefitResult reports one background refit attempt to OnRefit.
type RefitResult struct {
	// Rows is how many buffered records the refit window held.
	Rows int
	// Drift is the sketch-vs-grid quantile divergence measured against
	// the model the refit replaced — the signal that made (or would have
	// made) the refit worthwhile.
	Drift float64
	// Err is nil when the new model was swapped in.
	Err error
}

// IngestStats is a point-in-time snapshot of the ingestion state.
type IngestStats struct {
	// WindowRows is the number of currently buffered records.
	WindowRows int
	// Epochs is the current ring length (including the active epoch).
	Epochs int
	// SinceRefit counts records ingested since the last refit snapshot.
	SinceRefit int
	// Refits and RefitErrs count completed background refits.
	Refits, RefitErrs uint64
	// Drift is the divergence measured at the last refit snapshot (see
	// Monitor.Drift for a live value).
	Drift float64
	// Refitting reports whether a background refit is in flight.
	Refitting bool
}

// epoch is one segment of the ring: a row-major block of buffered
// records plus the per-dimension quantile sketches summarizing them.
// Sketches travel with their epoch so expiring the epoch forgets its
// contribution to the window's boundaries exactly.
type epoch struct {
	vals     []float64 // row-major rows×d
	rows     int
	sketches []*discretize.Sketch
}

func newEpoch(d, sketchCap, rowCap int) *epoch {
	e := &epoch{vals: make([]float64, 0, rowCap*d), sketches: make([]*discretize.Sketch, d)}
	for j := range e.sketches {
		e.sketches[j] = discretize.NewSketchCap(sketchCap)
	}
	return e
}

// ingestState is the mutable half of continuous ingestion, guarded by
// its own mutex so buffer appends never contend with scoring (which
// only touches the monitor's model lock).
type ingestState struct {
	opt       IngestOptions
	d         int
	epochSize int

	mu         sync.Mutex
	epochs     []*epoch // oldest first; the last is the active one
	rows       int      // total buffered records
	sinceRefit int
	drift      float64 // divergence at the last refit snapshot
	refits     uint64
	refitErrs  uint64

	// refitting gates the single in-flight background refit; refitWG
	// lets WaitIngest observe its completion.
	refitting atomic.Bool
	refitWG   sync.WaitGroup
}

// EnableIngest switches a fitted monitor into continuous-ingestion
// mode. It can be called once per monitor; the window starts empty —
// the current model keeps serving until the first background refit.
func (m *Monitor) EnableIngest(opt IngestOptions) error {
	opt, err := opt.withDefaults()
	if err != nil {
		return err
	}
	d := m.D()
	ing := &ingestState{
		opt:       opt,
		d:         d,
		epochSize: (opt.Window + opt.Epochs - 1) / opt.Epochs,
	}
	ing.epochs = append(ing.epochs, newEpoch(d, opt.SketchCap, ing.epochSize))
	if !m.ingest.CompareAndSwap(nil, ing) {
		return errors.New("stream: ingest already enabled")
	}
	return nil
}

// IngestEnabled reports whether EnableIngest has run.
func (m *Monitor) IngestEnabled() bool { return m.ingest.Load() != nil }

// Ingest scores one arriving record against the current model and
// appends it to the sliding reference window, triggering a background
// refit when due. Scoring is lock-free against the model (snapshot
// semantics, like Score); the append takes only the ingest buffer's
// own lock — a concurrent background refit never blocks either.
func (m *Monitor) Ingest(record []float64) (Alert, error) {
	ing := m.ingest.Load()
	if ing == nil {
		return Alert{}, ErrIngestDisabled
	}
	if len(record) != ing.d {
		return Alert{}, fmt.Errorf("stream: ingest record has %d values, model has %d dims", len(record), ing.d)
	}
	a := m.Score(record)
	ing.mu.Lock()
	ing.appendLocked(record)
	due := ing.sinceRefit >= ing.opt.RefitEvery
	ing.mu.Unlock()
	if due {
		m.maybeBackgroundRefit(ing)
	}
	return a, nil
}

// IngestBatch is Ingest over a whole dataset: the batch is scored
// against one consistent model snapshot (ScoreBatchBuf semantics,
// including buf recycling), then appended to the window under a single
// buffer lock. A refit due after the append starts in the background
// before IngestBatch returns.
func (m *Monitor) IngestBatch(ctx context.Context, ds *dataset.Dataset, workers int, buf []Alert) ([]Alert, error) {
	ing := m.ingest.Load()
	if ing == nil {
		return nil, ErrIngestDisabled
	}
	if ds.D() != ing.d {
		return nil, fmt.Errorf("stream: ingest batch has %d dims, model has %d", ds.D(), ing.d)
	}
	out, err := m.ScoreBatchBuf(ctx, ds, workers, buf)
	if err != nil {
		return nil, err
	}
	ing.mu.Lock()
	for i := 0; i < ds.N(); i++ {
		ing.appendLocked(ds.RowView(i))
	}
	due := ing.sinceRefit >= ing.opt.RefitEvery
	ing.mu.Unlock()
	if due {
		m.maybeBackgroundRefit(ing)
	}
	return out, nil
}

// appendLocked adds one record to the active epoch, sealing it when
// full and expiring whole epochs once the window overflows. Caller
// holds ing.mu.
func (ing *ingestState) appendLocked(record []float64) {
	active := ing.epochs[len(ing.epochs)-1]
	active.vals = append(active.vals, record...)
	for j, v := range record {
		active.sketches[j].Add(v)
	}
	active.rows++
	ing.rows++
	ing.sinceRefit++
	if active.rows >= ing.epochSize {
		ing.epochs = append(ing.epochs, newEpoch(ing.d, ing.opt.SketchCap, ing.epochSize))
	}
	for len(ing.epochs) > 1 && ing.rows > ing.opt.Window {
		ing.rows -= ing.epochs[0].rows
		ing.epochs[0] = nil
		ing.epochs = ing.epochs[1:]
	}
}

// IngestStats snapshots the ingestion state (zero value when ingest is
// disabled).
func (m *Monitor) IngestStats() IngestStats {
	ing := m.ingest.Load()
	if ing == nil {
		return IngestStats{}
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return IngestStats{
		WindowRows: ing.rows,
		Epochs:     len(ing.epochs),
		SinceRefit: ing.sinceRefit,
		Refits:     ing.refits,
		RefitErrs:  ing.refitErrs,
		Drift:      ing.drift,
		Refitting:  ing.refitting.Load(),
	}
}

// Drift measures how far the buffered window has slid from the serving
// model: the mean absolute difference, over dimensions and interior
// grid boundaries, between each boundary's rank in the window (per the
// epoch sketches) and its equi-depth target r/phi. Zero means the
// model's grid still splits the window into equal-depth ranges; the
// theoretical maximum approaches (phi−1)/(2·phi)… in practice values
// above ~1/phi mean whole ranges have drained or flooded.
func (m *Monitor) Drift() float64 {
	ing := m.ingest.Load()
	if ing == nil {
		return 0
	}
	m.mu.RLock()
	g := m.grid
	m.mu.RUnlock()
	if g == nil {
		return 0
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return driftLocked(g, ing.epochs)
}

// driftLocked computes the sketch-vs-grid divergence over the live
// epochs. The combined rank of a boundary across epochs is the
// record-weighted mean of the per-epoch sketch ranks — exactly the
// rank a merged sketch would report, without mutating anything.
func driftLocked(g *discretize.Grid, epochs []*epoch) float64 {
	total, count := 0.0, 0
	for j := 0; j < g.D; j++ {
		var n float64
		for _, e := range epochs {
			n += float64(e.sketches[j].N())
		}
		if n == 0 {
			continue
		}
		cuts := g.Cuts(j)
		for r := 1; r < g.Phi; r++ {
			var below float64
			for _, e := range epochs {
				sk := e.sketches[j]
				below += sk.Rank(cuts[r-1]) * float64(sk.N())
			}
			total += math.Abs(below/n - float64(r)/float64(g.Phi))
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// maybeBackgroundRefit starts the background refit unless one is
// already in flight.
func (m *Monitor) maybeBackgroundRefit(ing *ingestState) {
	if !ing.refitting.CompareAndSwap(false, true) {
		return
	}
	ing.refitWG.Add(1)
	go func() {
		defer ing.refitWG.Done()
		defer ing.refitting.Store(false)
		m.runWindowRefit(ing)
	}()
}

// RefitFromWindow refits synchronously from the buffered window — the
// foreground form of the background refit, for tests and operators
// that want the error in hand. It reports ErrIngestDisabled without a
// window and fails when a background refit is already in flight.
func (m *Monitor) RefitFromWindow() error {
	ing := m.ingest.Load()
	if ing == nil {
		return ErrIngestDisabled
	}
	if !ing.refitting.CompareAndSwap(false, true) {
		return errors.New("stream: a background refit is already in flight")
	}
	defer ing.refitting.Store(false)
	return m.runWindowRefit(ing).Err
}

// WaitIngest blocks until no background refit is in flight — the
// shutdown/test barrier. It does not prevent new refits from starting.
func (m *Monitor) WaitIngest() {
	if ing := m.ingest.Load(); ing != nil {
		ing.refitWG.Wait()
	}
}

// runWindowRefit performs one refit attempt end to end: snapshot the
// window, fit off-lock, swap, book-keep, notify. Panics in the fit are
// converted to errors so a poisoned window cannot kill the process —
// the old model keeps serving.
func (m *Monitor) runWindowRefit(ing *ingestState) RefitResult {
	res := func() (res RefitResult) {
		defer func() {
			if r := recover(); r != nil {
				res.Err = fmt.Errorf("stream: ingest refit panicked: %v", r)
			}
		}()
		return m.refitFromWindow(ing)
	}()
	ing.mu.Lock()
	if res.Err != nil {
		ing.refitErrs++
	} else {
		ing.refits++
	}
	ing.mu.Unlock()
	if ing.opt.OnRefit != nil {
		ing.opt.OnRefit(res)
	}
	return res
}

// refitFromWindow copies the buffered window and its sketches under
// the ingest lock, then fits and swaps entirely off-lock: concurrent
// Score/Ingest calls proceed throughout, and the swap itself reuses
// the Refit path's exclusive-lock assignment, so scoring either sees
// the old model or the new one — never a mixture.
//
// The grid boundaries come from the merged epoch sketches (Sketch.Cuts
// per dimension), not a sorted pass over the window — the sketches are
// the online boundary state, and a window no larger than the sketch
// capacity reproduces the offline cuts exactly.
func (m *Monitor) refitFromWindow(ing *ingestState) RefitResult {
	m.mu.RLock()
	g := m.grid
	names := m.names
	m.mu.RUnlock()

	ing.mu.Lock()
	rows := ing.rows
	if rows == 0 {
		ing.mu.Unlock()
		return RefitResult{Err: errors.New("stream: ingest window is empty")}
	}
	drift := driftLocked(g, ing.epochs)
	ing.drift = drift
	win := dataset.New(names, rows)
	merged := make([]*discretize.Sketch, ing.d)
	for j := range merged {
		merged[j] = discretize.NewSketchCap(ing.opt.SketchCap)
	}
	for _, e := range ing.epochs {
		for i := 0; i < e.rows; i++ {
			win.AppendRow(e.vals[i*ing.d:(i+1)*ing.d], "")
		}
		for j, sk := range e.sketches {
			merged[j].Merge(sk)
		}
	}
	// Reset at snapshot time: records arriving while the fit runs count
	// toward the next refit, not this one.
	ing.sinceRefit = 0
	ing.mu.Unlock()

	cuts := make([][]float64, ing.d)
	for j, sk := range merged {
		cuts[j] = sk.Cuts(m.opt.Phi)
	}
	det := core.NewDetectorFromGrid(win, discretize.Apply(win, m.opt.Phi, cuts))
	res := RefitResult{Rows: rows, Drift: drift}
	res.Err = m.refitDetector(win, det)
	return res
}
