package stream

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"hido/internal/dataset"
	"hido/internal/synth"
	"hido/internal/xrand"
)

// reference builds a correlated window: dims 0-2 share a factor, the
// rest are noise.
func reference(n int, seed uint64) *dataset.Dataset {
	ds, err := synth.Generate(synth.Config{
		Name: "ref", N: n, D: 8,
		Groups: []synth.Group{{Dims: []int{0, 1, 2}, Noise: 0.03}},
	}, seed)
	if err != nil {
		panic(err)
	}
	return ds
}

// contrarian returns a record violating the (0,1) correlation while
// staying in-range marginally.
func contrarian(r *xrand.RNG) []float64 {
	row := make([]float64, 8)
	for j := range row {
		row[j] = r.Float64()
	}
	row[0], row[1], row[2] = 0.03, 0.97, 0.5
	return row
}

// typical returns a factor-consistent record.
func typical(r *xrand.RNG) []float64 {
	row := make([]float64, 8)
	f := r.Float64()
	row[0], row[1], row[2] = f, f, f
	for j := 3; j < 8; j++ {
		row[j] = r.Float64()
	}
	return row
}

func TestMonitorFlagsContrarian(t *testing.T) {
	m, err := NewMonitor(reference(800, 1), Options{Phi: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	a := m.Score(contrarian(r))
	if !a.Flagged() {
		t.Fatal("contrarian record not flagged")
	}
	if a.Score >= -3 {
		t.Errorf("alert score = %v, want <= -3", a.Score)
	}
	if exp := m.Explain(a); len(exp) == 0 || exp[0] == "" {
		t.Error("no explanation")
	}
	// Most typical records pass.
	flagged := 0
	for i := 0; i < 200; i++ {
		if m.Score(typical(r)).Flagged() {
			flagged++
		}
	}
	if flagged > 20 {
		t.Errorf("%d/200 typical records flagged", flagged)
	}
}

func TestMonitorMissingAttributes(t *testing.T) {
	m, err := NewMonitor(reference(600, 4), Options{Phi: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(6)
	rec := contrarian(r)
	rec[0] = math.NaN() // the constrained attribute is missing
	rec[1] = math.NaN()
	a := m.Score(rec)
	// With both signature attributes missing, the record cannot match
	// cubes constraining them; it may still match other projections but
	// must not match any cube constraining dims 0 or 1.
	for _, pi := range a.Matches {
		for _, pr := range m.Projections()[pi].Cube.Pairs() {
			if pr.Dim == 0 || pr.Dim == 1 {
				t.Errorf("matched projection constraining a missing attribute")
			}
		}
	}
}

func TestMonitorScoreBatch(t *testing.T) {
	m, err := NewMonitor(reference(500, 7), Options{Phi: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(9)
	batch := dataset.New(make([]string, 8), 10)
	for i := 0; i < 9; i++ {
		batch.AppendRow(typical(r), "")
	}
	batch.AppendRow(contrarian(r), "")
	alerts := m.ScoreBatch(batch)
	if len(alerts) != 10 {
		t.Fatalf("got %d alerts", len(alerts))
	}
	if !alerts[9].Flagged() {
		t.Error("batch missed the contrarian")
	}
}

func TestMonitorRefit(t *testing.T) {
	m, err := NewMonitor(reference(500, 10), Options{Phi: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Refit(reference(500, 12)); err != nil {
		t.Fatal(err)
	}
	if len(m.Projections()) == 0 {
		t.Error("refit produced no projections")
	}
	// Dimensionality mismatch is rejected.
	bad, err := synth.Generate(synth.Config{Name: "bad", N: 100, D: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Refit(bad); err == nil {
		t.Error("refit with wrong dimensionality accepted")
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(reference(100, 13), Options{Phi: 1}); err == nil {
		t.Error("phi=1 accepted")
	}
	if _, err := NewMonitor(reference(100, 13), Options{Phi: 5, TargetS: 3}); err == nil {
		t.Error("positive target accepted")
	}
	m, err := NewMonitor(reference(200, 14), Options{Phi: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong-width record did not panic")
		}
	}()
	m.Score([]float64{1, 2})
}

func TestScoreBatchContextMatchesSerial(t *testing.T) {
	m, err := NewMonitor(reference(500, 20), Options{Phi: 5, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(22)
	batch := dataset.New(make([]string, 8), 1000)
	for i := 0; i < 997; i++ {
		batch.AppendRow(typical(r), "")
	}
	for i := 0; i < 3; i++ {
		batch.AppendRow(contrarian(r), "")
	}
	want := make([]Alert, batch.N())
	for i := range want {
		want[i] = m.Score(batch.RowView(i))
	}
	for _, workers := range []int{0, 1, 2, 7} {
		got, err := m.ScoreBatchContext(context.Background(), batch, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d alerts differ from serial scoring", workers)
		}
	}
}

func TestScoreBatchContextCancelled(t *testing.T) {
	m, err := NewMonitor(reference(300, 23), Options{Phi: 5, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(25)
	batch := dataset.New(make([]string, 8), 4000)
	for i := 0; i < 4000; i++ {
		batch.AppendRow(typical(r), "")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.ScoreBatchContext(ctx, batch, 4); err != context.Canceled {
		t.Errorf("cancelled batch returned err=%v, want context.Canceled", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	<-ctx2.Done()
	if _, err := m.ScoreBatchContext(ctx2, batch, 1); err != context.DeadlineExceeded {
		t.Errorf("timed-out batch returned err=%v, want context.DeadlineExceeded", err)
	}
}

func TestResults(t *testing.T) {
	m, err := NewMonitor(reference(600, 26), Options{Phi: 5, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(28)
	batch := dataset.New(make([]string, 8), 10)
	for i := 0; i < 9; i++ {
		batch.AppendRow(typical(r), "ok")
	}
	batch.AppendRow(contrarian(r), "bad")
	alerts := m.ScoreBatch(batch)
	if !alerts[9].Flagged() {
		t.Fatal("contrarian not flagged; cannot exercise Results")
	}

	all := m.Results(batch, alerts, true, false)
	if len(all) != 10 {
		t.Fatalf("all results: got %d, want 10", len(all))
	}
	last := all[9]
	if !last.Flagged || last.Record != 9 || last.Label != "bad" ||
		last.Score != alerts[9].Score || len(last.Explanations) == 0 {
		t.Errorf("flagged result malformed: %+v", last)
	}

	flagged := m.Results(batch, alerts, false, true)
	for _, res := range flagged {
		if !res.Flagged {
			t.Errorf("flaggedOnly returned clean record %d", res.Record)
		}
		if res.Explanations != nil {
			t.Errorf("explanations present without explain: %+v", res)
		}
	}
}

// TestMonitorConcurrentRefitAndScore hammers the hot-swap path the
// server's PUT /api/v1/models/{name} relies on: many goroutines score
// single records and whole batches while several others Refit the
// shared monitor. Run under -race in CI; correctness here is "every
// alert came from one coherent model" — batch scoring snapshots the
// model, so within a batch all alerts agree.
func TestMonitorConcurrentRefitAndScore(t *testing.T) {
	m, err := NewMonitor(reference(400, 30), Options{Phi: 5, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(32)
	batch := dataset.New(make([]string, 8), 400)
	for i := 0; i < 399; i++ {
		batch.AppendRow(typical(r), "")
	}
	batch.AppendRow(contrarian(r), "")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rr := xrand.New(seed)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					_ = m.Score(typical(rr))
				case 1:
					alerts, err := m.ScoreBatchContext(context.Background(), batch, 3)
					if err != nil {
						t.Errorf("batch: %v", err)
						return
					}
					if len(alerts) != batch.N() {
						t.Errorf("batch returned %d alerts", len(alerts))
						return
					}
				case 2:
					a := m.Score(contrarian(rr))
					_ = m.Explain(a)
				}
			}
		}(uint64(100 + w))
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				if err := m.Refit(reference(400, seed+uint64(i))); err != nil {
					t.Errorf("refit: %v", err)
					return
				}
			}
		}(uint64(200 + 10*w))
	}
	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	// Let scorers overlap all refits, then stop them.
	go func() {
		time.Sleep(200 * time.Millisecond)
		close(stop)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent refit/score deadlocked")
	}
	if m.K() < 1 || m.D() != 8 {
		t.Error("model lost after concurrent refit/score")
	}
}

func TestMonitorConcurrentScore(t *testing.T) {
	m, err := NewMonitor(reference(400, 15), Options{Phi: 5, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			for i := 0; i < 200; i++ {
				_ = m.Score(typical(r))
			}
		}(uint64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = m.Refit(reference(400, 17))
	}()
	wg.Wait()
	if m.K() < 1 {
		t.Error("model lost after concurrent use")
	}
}
