// Package stream applies a fitted projection-outlier model to records
// that arrive after fitting — the deployment mode of the paper's
// motivating applications (credit-card fraud, network intrusion),
// where the abnormality patterns are mined offline on a reference
// window and incoming events are scored against them online.
//
// A Monitor holds the reference detector plus its mined sparse
// projections. Scoring one record is O(m·k): assign the record's grid
// cells (the reference grid's equi-depth cuts are reused verbatim)
// and test it against each retained projection. Missing attributes
// follow the offline semantics: a record lacking an attribute never
// matches a cube constraining it.
//
// Refit rebuilds the model on a new reference window, giving a simple
// sliding-window deployment; the paper's algorithmics are unchanged —
// this package only packages them behind an online interface.
package stream

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hido/internal/core"
	"hido/internal/dataset"
	"hido/internal/discretize"
	"hido/internal/ensemble"
	"hido/internal/grid"
	"hido/internal/obs"
)

// Alert describes why a scored record was flagged.
type Alert struct {
	// Score is the most negative sparsity coefficient among matching
	// projections (0 when none matched). For an ensemble model it is
	// the negated combined ensemble score — still "lower is more
	// outlying", though combiners whose scores can go negative (the
	// z-score combiner) make positive alert scores possible.
	Score float64
	// Matches indexes the monitor's Projections that cover the record.
	Matches []int
}

// Flagged reports whether any projection matched.
func (a Alert) Flagged() bool { return len(a.Matches) > 0 }

// Options configures model fitting.
type Options struct {
	// Phi is the grid resolution (required, >= 2).
	Phi int
	// TargetS is the §2.4 advisor target (default −3); it picks the
	// projection dimensionality k and serves as the projection
	// retention threshold.
	TargetS float64
	// M is how many best projections each search run tracks
	// (default 100).
	M int
	// Restarts unions this many evolutionary runs (default 3).
	Restarts int
	// Seed drives the searches.
	Seed uint64
	// Ensemble, when non-nil, fits a subspace-ensemble model instead of
	// the single restarted search: Members searches over sampled
	// feature bags, aggregated by a pluggable combiner (see
	// internal/ensemble). The fitted model carries per-member
	// projections plus score calibration, so serving reproduces the
	// fit-time combine exactly.
	Ensemble *EnsembleOptions `json:"ensemble,omitempty"`
	// Observer, when set, receives the fitting searches' generation
	// events and run summaries (see internal/obs). Excluded from the
	// persisted model JSON; never changes the fitted model.
	Observer obs.Observer `json:"-"`
}

func (o Options) withDefaults() Options {
	if o.TargetS == 0 {
		o.TargetS = -3
	}
	if o.M == 0 {
		o.M = 100
	}
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	return o
}

// Monitor scores records against a model mined from a reference
// window. Score is safe for concurrent use; Refit takes an exclusive
// lock.
type Monitor struct {
	opt Options

	// scorers recycles per-batch scoring scratch (grid cells, ensemble
	// dedup marks) so steady-state serving does not allocate per record.
	scorers sync.Pool

	// ingest holds the continuous-ingestion state once EnableIngest has
	// run (nil otherwise); see ingest.go. Atomic so the hot Ingest path
	// reads it without touching mu.
	ingest atomic.Pointer[ingestState]

	mu          sync.RWMutex
	grid        *discretize.Grid
	names       []string
	projections []core.Projection
	k           int
	fitStats    grid.CacheStats // count-cache counters from the last Refit
	// members and combiner are set only for ensemble models;
	// projections then holds the deduplicated union of the member
	// projections (the index space of Alert.Matches).
	members  []memberModel
	combiner ensemble.Combiner
}

// NewMonitor fits the initial model on the reference window.
func NewMonitor(reference *dataset.Dataset, opt Options) (*Monitor, error) {
	opt = opt.withDefaults()
	if opt.Phi < 2 {
		return nil, fmt.Errorf("stream: phi=%d must be at least 2", opt.Phi)
	}
	if opt.TargetS >= 0 {
		return nil, fmt.Errorf("stream: target sparsity %v must be negative", opt.TargetS)
	}
	if opt.Ensemble != nil {
		if err := opt.Ensemble.validate(); err != nil {
			return nil, err
		}
	}
	m := &Monitor{opt: opt}
	if err := m.Refit(reference); err != nil {
		return nil, err
	}
	return m, nil
}

// Refit replaces the model with one mined from a new reference window
// (same dimensionality).
func (m *Monitor) Refit(reference *dataset.Dataset) error {
	// Reject a mismatched window before discretizing or searching: the
	// mismatch used to surface only after the full evolutionary run had
	// burned CPU and fit-cache counters on a result that was then thrown
	// away.
	if err := m.checkDims(reference.D()); err != nil {
		return err
	}
	return m.refitDetector(reference, core.NewDetector(reference, m.opt.Phi))
}

// checkDims rejects a refit window whose dimensionality disagrees with
// the held model. A monitor without a model yet (first fit) accepts any
// width.
func (m *Monitor) checkDims(d int) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.grid != nil && d != m.grid.D {
		return fmt.Errorf("stream: refit window has %d dims, model has %d", d, m.grid.D)
	}
	return nil
}

// refitDetector is Refit from a pre-built detector — the shared tail of
// the offline path (detector from a full sorted pass over the window)
// and the streaming path (detector from sketch-derived cuts). On any
// error the held model, including fitStats, is left untouched.
func (m *Monitor) refitDetector(reference *dataset.Dataset, det *core.Detector) error {
	if m.opt.Ensemble != nil {
		return m.refitEnsemble(reference, det)
	}
	advice := det.Advise(m.opt.TargetS)
	// An explicit count cache (rather than the one EvolutionaryRestarts
	// auto-creates) lets the monitor retain its hit/miss/size counters
	// after the fit — cmd/hidod exposes them as hidod_fit_cache_*
	// gauges.
	cache := grid.NewCache(det.Index)
	// MinCoverage -1 admits cubes that are EMPTY in the reference
	// window — offline mining discards them (they cover no record),
	// but online they are the strongest alarms: a new record landing
	// in a region the reference never occupied.
	res, err := det.EvolutionaryRestarts(core.EvoOptions{
		K: advice.K, M: m.opt.M, Seed: m.opt.Seed, MinCoverage: -1,
		Cache: cache, Observer: m.opt.Observer, RunID: "fit",
	}, m.opt.Restarts)
	if err != nil {
		return err
	}
	res = res.FilterProjections(det, m.opt.TargetS)

	m.mu.Lock()
	defer m.mu.Unlock()
	// Backstop for the up-front checkDims: a racing Refit could have
	// swapped in a different-width model while this fit ran off-lock.
	if m.grid != nil && det.D() != m.grid.D {
		return fmt.Errorf("stream: refit window has %d dims, model has %d", det.D(), m.grid.D)
	}
	m.grid = det.Grid
	m.names = append([]string(nil), reference.Names...)
	m.projections = res.Projections
	m.k = advice.K
	m.fitStats = cache.Stats()
	m.members = nil
	return nil
}

// view is an immutable snapshot of the current model: scoring against
// a view is lock-free and a whole batch sees one consistent model even
// if Refit swaps it mid-batch.
type view struct {
	grid        *discretize.Grid
	names       []string
	projections []core.Projection
	members     []memberModel
	combiner    ensemble.Combiner
}

// snapshot captures the current model under the read lock.
func (m *Monitor) snapshot() view {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return view{grid: m.grid, names: m.names, projections: m.projections,
		members: m.members, combiner: m.combiner}
}

// explain renders the matching projections of an alert against the
// snapshot. Matches beyond the snapshot's projection list (an alert
// scored against an older, larger model) are skipped rather than
// trusted.
func (v view) explain(a Alert) []string {
	out := make([]string, 0, len(a.Matches))
	for _, pi := range a.Matches {
		if pi < 0 || pi >= len(v.projections) {
			continue
		}
		out = append(out, v.projections[pi].DescribeRanges(v.names, v.grid))
	}
	return out
}

// Scorer evaluates records against one immutable model snapshot with
// reusable scratch (grid cells, ensemble dedup marks), so steady-state
// scoring allocates only when a flagged record's match list must grow.
// A Scorer is not safe for concurrent use; batch scoring gives each
// worker its own. It keeps serving its snapshot even across a
// concurrent Refit — take a new one to pick up a newer model.
type Scorer struct {
	v     view
	cells []uint16
	// matched holds per-union-projection dedup marks for ensemble
	// scoring. Invariant: all false between records (ScoreInto restores
	// the marks it set), so a record costs O(its matches), not
	// O(projections).
	matched []bool
}

// NewScorer snapshots the current model into a reusable scorer — the
// form for callers that score many individual records (cluster storage
// RPCs) without paying a snapshot plus scratch allocation per record.
func (m *Monitor) NewScorer() *Scorer {
	s := &Scorer{}
	s.reset(m.snapshot())
	return s
}

// reset points the scorer at a model snapshot, resizing scratch only
// when the model got wider.
func (s *Scorer) reset(v view) {
	s.v = v
	d := v.grid.D
	if cap(s.cells) < d {
		s.cells = make([]uint16, d)
	}
	s.cells = s.cells[:d]
	if len(v.members) > 0 {
		if cap(s.matched) < len(v.projections) {
			s.matched = make([]bool, len(v.projections))
		}
		s.matched = s.matched[:len(v.projections)]
		// ScoreInto leaves the marks all false, but a scorer from the
		// pool may carry marks for a different model; never trust them.
		clear(s.matched)
	}
}

// Score evaluates one record. The record must have the model's
// dimensionality; NaN marks missing attributes.
func (s *Scorer) Score(record []float64) Alert {
	return s.ScoreInto(record, nil)
}

// ScoreInto is Score appending matches into matches[:0] — the
// allocation-free form batch scoring uses to recycle each alert's
// match backing across batches. The returned alert's Matches stays nil
// when matches is nil and nothing covered the record, matching Score.
func (s *Scorer) ScoreInto(record []float64, matches []int) Alert {
	v := s.v
	if len(record) != v.grid.D {
		panic(fmt.Sprintf("stream: record has %d values, model has %d dims", len(record), v.grid.D))
	}
	cells := v.grid.AssignRowInto(record, s.cells)
	if len(v.members) > 0 {
		return s.scoreEnsemble(cells, matches)
	}
	a := Alert{Matches: matches[:0]}
	for pi, p := range v.projections {
		if p.Cube.Covers(cells) {
			a.Matches = append(a.Matches, pi)
			if p.Sparsity < a.Score {
				a.Score = p.Sparsity
			}
		}
	}
	return a
}

// scratchPoolOff globally bypasses the monitors' scorer pools: every
// batch then scores on freshly allocated scratch. It exists purely as
// the unpooled reference for the differential test suite — production
// never sets it.
var scratchPoolOff atomic.Bool

// DisableScratchPooling toggles the test-only pool bypass; see
// scratchPoolOff.
func DisableScratchPooling(off bool) { scratchPoolOff.Store(off) }

// scorer hands out a pooled scorer bound to the given snapshot.
func (m *Monitor) scorer(v view) *Scorer {
	var s *Scorer
	if !scratchPoolOff.Load() {
		s, _ = m.scorers.Get().(*Scorer)
	}
	if s == nil {
		s = &Scorer{}
	}
	s.reset(v)
	return s
}

// recycle returns a scorer to the pool, dropping its model reference
// so the pool never pins a replaced model in memory.
func (m *Monitor) recycle(s *Scorer) {
	if scratchPoolOff.Load() {
		return
	}
	s.v = view{}
	m.scorers.Put(s)
}

// Score evaluates one record against the current model. The record
// must have the model's dimensionality; NaN marks missing attributes.
func (m *Monitor) Score(record []float64) Alert {
	s := m.scorer(m.snapshot())
	a := s.Score(record)
	m.recycle(s)
	return a
}

// ScoreBatch scores every row of a dataset, returning one alert per
// record. The whole batch is scored against one consistent model
// snapshot even if a concurrent Refit lands mid-batch.
func (m *Monitor) ScoreBatch(ds *dataset.Dataset) []Alert {
	out, _ := m.ScoreBatchContext(context.Background(), ds, 1)
	return out
}

// scoreChunk is how many rows a batch worker scores between context
// checks (and per claim from the shared cursor).
const scoreChunk = 256

// ScoreBatchContext scores every row of a dataset against one
// consistent model snapshot, fanning the rows across up to `workers`
// goroutines (workers <= 1, or a single-chunk batch, scores inline;
// workers == 0 means GOMAXPROCS). It returns ctx.Err if the context is
// cancelled before the batch completes; the partial alerts are
// discarded. This is the serving path of cmd/hidod: request handlers
// pass their per-request context so timeouts and client disconnects
// abandon the batch instead of burning the worker pool.
func (m *Monitor) ScoreBatchContext(ctx context.Context, ds *dataset.Dataset, workers int) ([]Alert, error) {
	return m.ScoreBatchBuf(ctx, ds, workers, nil)
}

// ScoreBatchBuf is ScoreBatchContext scoring into buf's backing
// storage when its capacity allows, recycling both the alert slice and
// each alert's Matches backing array — the allocation-free steady
// state of the hidod scoring arena. Ownership of buf transfers to the
// returned slice; results are identical to ScoreBatchContext.
func (m *Monitor) ScoreBatchBuf(ctx context.Context, ds *dataset.Dataset, workers int, buf []Alert) ([]Alert, error) {
	v := m.snapshot()
	n := ds.N()
	var out []Alert
	if cap(buf) >= n {
		// Every index below n is overwritten before return; the stale
		// alerts only donate their Matches backing arrays.
		out = buf[:n]
	} else {
		out = make([]Alert, n)
		copy(out, buf[:cap(buf)])
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunks := (n + scoreChunk - 1) / scoreChunk; workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		sc := m.scorer(v)
		defer m.recycle(sc)
		for i := 0; i < n; i++ {
			if i%scoreChunk == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			out[i] = sc.ScoreInto(ds.RowView(i), out[i].Matches)
		}
		return out, nil
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := m.scorer(v)
			defer m.recycle(sc)
			for {
				lo := int(cursor.Add(scoreChunk)) - scoreChunk
				if lo >= n || ctx.Err() != nil {
					return
				}
				hi := lo + scoreChunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					out[i] = sc.ScoreInto(ds.RowView(i), out[i].Matches)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Projections returns the current model's retained projections
// (shared slice; do not mutate).
func (m *Monitor) Projections() []core.Projection {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.projections
}

// Explain renders the matching projections of an alert with attribute
// names from the current model. Matches that no longer exist (the
// alert was scored before a Refit shrank the model) are skipped.
func (m *Monitor) Explain(a Alert) []string {
	return m.snapshot().explain(a)
}

// K returns the model's projection dimensionality.
func (m *Monitor) K() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.k
}

// D returns the model's data dimensionality (attributes per record).
func (m *Monitor) D() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.grid.D
}

// FitStats returns the projection-count cache counters from the last
// Refit (all zero for a model loaded from JSON, which never fitted in
// this process).
func (m *Monitor) FitStats() grid.CacheStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.fitStats
}
