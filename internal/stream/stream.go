// Package stream applies a fitted projection-outlier model to records
// that arrive after fitting — the deployment mode of the paper's
// motivating applications (credit-card fraud, network intrusion),
// where the abnormality patterns are mined offline on a reference
// window and incoming events are scored against them online.
//
// A Monitor holds the reference detector plus its mined sparse
// projections. Scoring one record is O(m·k): assign the record's grid
// cells (the reference grid's equi-depth cuts are reused verbatim)
// and test it against each retained projection. Missing attributes
// follow the offline semantics: a record lacking an attribute never
// matches a cube constraining it.
//
// Refit rebuilds the model on a new reference window, giving a simple
// sliding-window deployment; the paper's algorithmics are unchanged —
// this package only packages them behind an online interface.
package stream

import (
	"fmt"
	"sync"

	"hido/internal/core"
	"hido/internal/dataset"
	"hido/internal/discretize"
)

// Alert describes why a scored record was flagged.
type Alert struct {
	// Score is the most negative sparsity coefficient among matching
	// projections (0 when none matched).
	Score float64
	// Matches indexes the monitor's Projections that cover the record.
	Matches []int
}

// Flagged reports whether any projection matched.
func (a Alert) Flagged() bool { return len(a.Matches) > 0 }

// Options configures model fitting.
type Options struct {
	// Phi is the grid resolution (required, >= 2).
	Phi int
	// TargetS is the §2.4 advisor target (default −3); it picks the
	// projection dimensionality k and serves as the projection
	// retention threshold.
	TargetS float64
	// M is how many best projections each search run tracks
	// (default 100).
	M int
	// Restarts unions this many evolutionary runs (default 3).
	Restarts int
	// Seed drives the searches.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.TargetS == 0 {
		o.TargetS = -3
	}
	if o.M == 0 {
		o.M = 100
	}
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	return o
}

// Monitor scores records against a model mined from a reference
// window. Score is safe for concurrent use; Refit takes an exclusive
// lock.
type Monitor struct {
	opt Options

	mu          sync.RWMutex
	grid        *discretize.Grid
	names       []string
	projections []core.Projection
	k           int
}

// NewMonitor fits the initial model on the reference window.
func NewMonitor(reference *dataset.Dataset, opt Options) (*Monitor, error) {
	opt = opt.withDefaults()
	if opt.Phi < 2 {
		return nil, fmt.Errorf("stream: phi=%d must be at least 2", opt.Phi)
	}
	if opt.TargetS >= 0 {
		return nil, fmt.Errorf("stream: target sparsity %v must be negative", opt.TargetS)
	}
	m := &Monitor{opt: opt}
	if err := m.Refit(reference); err != nil {
		return nil, err
	}
	return m, nil
}

// Refit replaces the model with one mined from a new reference window
// (same dimensionality).
func (m *Monitor) Refit(reference *dataset.Dataset) error {
	det := core.NewDetector(reference, m.opt.Phi)
	advice := det.Advise(m.opt.TargetS)
	// MinCoverage -1 admits cubes that are EMPTY in the reference
	// window — offline mining discards them (they cover no record),
	// but online they are the strongest alarms: a new record landing
	// in a region the reference never occupied.
	res, err := det.EvolutionaryRestarts(core.EvoOptions{
		K: advice.K, M: m.opt.M, Seed: m.opt.Seed, MinCoverage: -1,
	}, m.opt.Restarts)
	if err != nil {
		return err
	}
	res = res.FilterProjections(det, m.opt.TargetS)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.grid != nil && det.D() != m.grid.D {
		return fmt.Errorf("stream: refit window has %d dims, model has %d", det.D(), m.grid.D)
	}
	m.grid = det.Grid
	m.names = append([]string(nil), reference.Names...)
	m.projections = res.Projections
	m.k = advice.K
	return nil
}

// Score evaluates one record against the current model. The record
// must have the model's dimensionality; NaN marks missing attributes.
func (m *Monitor) Score(record []float64) Alert {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(record) != m.grid.D {
		panic(fmt.Sprintf("stream: record has %d values, model has %d dims", len(record), m.grid.D))
	}
	cells := m.grid.AssignRow(record)
	var a Alert
	for pi, p := range m.projections {
		if p.Cube.Covers(cells) {
			a.Matches = append(a.Matches, pi)
			if p.Sparsity < a.Score {
				a.Score = p.Sparsity
			}
		}
	}
	return a
}

// ScoreBatch scores every row of a dataset, returning one alert per
// record.
func (m *Monitor) ScoreBatch(ds *dataset.Dataset) []Alert {
	out := make([]Alert, ds.N())
	for i := range out {
		out[i] = m.Score(ds.RowView(i))
	}
	return out
}

// Projections returns the current model's retained projections
// (shared slice; do not mutate).
func (m *Monitor) Projections() []core.Projection {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.projections
}

// Explain renders the matching projections of an alert with attribute
// names from the current model.
func (m *Monitor) Explain(a Alert) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(a.Matches))
	for _, pi := range a.Matches {
		out = append(out, m.projections[pi].DescribeRanges(m.names, m.grid))
	}
	return out
}

// K returns the model's projection dimensionality.
func (m *Monitor) K() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.k
}

// D returns the model's data dimensionality (attributes per record).
func (m *Monitor) D() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.grid.D
}
