package stream

import (
	"bytes"
	"strings"
	"testing"

	"hido/internal/xrand"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, err := NewMonitor(reference(700, 20), Options{Phi: 5, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K() != orig.K() {
		t.Errorf("K: %d vs %d", loaded.K(), orig.K())
	}
	if len(loaded.Projections()) != len(orig.Projections()) {
		t.Fatalf("projection counts differ: %d vs %d",
			len(loaded.Projections()), len(orig.Projections()))
	}

	// Identical scoring on a mixed stream.
	r := xrand.New(22)
	for i := 0; i < 100; i++ {
		var rec []float64
		if i%10 == 0 {
			rec = contrarian(r)
		} else {
			rec = typical(r)
		}
		a1, a2 := orig.Score(rec), loaded.Score(rec)
		if a1.Score != a2.Score || len(a1.Matches) != len(a2.Matches) {
			t.Fatalf("record %d scored differently: %+v vs %+v", i, a1, a2)
		}
	}

	// Explanations carry names and bounds after loading.
	a := loaded.Score(contrarian(r))
	if !a.Flagged() {
		t.Fatal("loaded model did not flag the contrarian")
	}
	if exp := loaded.Explain(a); len(exp) == 0 || !strings.Contains(exp[0], "∈") {
		t.Errorf("loaded explanations broken: %v", exp)
	}
}

func TestLoadedMonitorRefits(t *testing.T) {
	orig, err := NewMonitor(reference(400, 23), Options{Phi: 5, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Refit(reference(400, 25)); err != nil {
		t.Fatal(err)
	}
	if len(loaded.Projections()) == 0 {
		t.Error("refit after load produced no projections")
	}
}

func TestLoadRejectsCorruptModels(t *testing.T) {
	orig, err := NewMonitor(reference(300, 26), Options{Phi: 4, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"garbage":        "{not json",
		"wrong version":  strings.Replace(good, `"version":1`, `"version":99`, 1),
		"bad phi":        strings.Replace(good, `"phi":4`, `"phi":1`, 1),
		"names mismatch": strings.Replace(good, `"names":["a00"`, `"names":[`, 1),
	}
	for name, payload := range cases {
		if _, err := Load(strings.NewReader(payload)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadRejectsBadProjections(t *testing.T) {
	// Hand-build a minimal model with an out-of-range cell.
	payload := `{"version":1,"phi":3,"k":1,"options":{"Phi":3,"TargetS":-3,"M":10,"Restarts":1,"Seed":0},
		"names":["a","b"],"cuts":[[0.3,0.6],[0.3,0.6]],
		"projections":[{"cube":[9,0],"sparsity":-3,"count":0}]}`
	if _, err := Load(strings.NewReader(payload)); err == nil {
		t.Error("out-of-range projection cell accepted")
	}
	payload2 := strings.Replace(payload, `"cube":[9,0]`, `"cube":[1]`, 1)
	if _, err := Load(strings.NewReader(payload2)); err == nil {
		t.Error("wrong-width projection accepted")
	}
}
