package stream

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"hido/internal/xrand"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, err := NewMonitor(reference(700, 20), Options{Phi: 5, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K() != orig.K() {
		t.Errorf("K: %d vs %d", loaded.K(), orig.K())
	}
	if len(loaded.Projections()) != len(orig.Projections()) {
		t.Fatalf("projection counts differ: %d vs %d",
			len(loaded.Projections()), len(orig.Projections()))
	}

	// Identical scoring on a mixed stream.
	r := xrand.New(22)
	for i := 0; i < 100; i++ {
		var rec []float64
		if i%10 == 0 {
			rec = contrarian(r)
		} else {
			rec = typical(r)
		}
		a1, a2 := orig.Score(rec), loaded.Score(rec)
		if a1.Score != a2.Score || len(a1.Matches) != len(a2.Matches) {
			t.Fatalf("record %d scored differently: %+v vs %+v", i, a1, a2)
		}
	}

	// Explanations carry names and bounds after loading.
	a := loaded.Score(contrarian(r))
	if !a.Flagged() {
		t.Fatal("loaded model did not flag the contrarian")
	}
	if exp := loaded.Explain(a); len(exp) == 0 || !strings.Contains(exp[0], "∈") {
		t.Errorf("loaded explanations broken: %v", exp)
	}
}

func TestLoadedMonitorRefits(t *testing.T) {
	orig, err := NewMonitor(reference(400, 23), Options{Phi: 5, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Refit(reference(400, 25)); err != nil {
		t.Fatal(err)
	}
	if len(loaded.Projections()) == 0 {
		t.Error("refit after load produced no projections")
	}
}

func TestLoadRejectsCorruptModels(t *testing.T) {
	orig, err := NewMonitor(reference(300, 26), Options{Phi: 4, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"garbage":        "{not json",
		"wrong version":  strings.Replace(good, `"version":1`, `"version":99`, 1),
		"bad phi":        strings.Replace(good, `"phi":4`, `"phi":1`, 1),
		"names mismatch": strings.Replace(good, `"names":["a00"`, `"names":[`, 1),
	}
	for name, payload := range cases {
		if _, err := Load(strings.NewReader(payload)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadRejectsBadProjections(t *testing.T) {
	// Hand-build a minimal model with an out-of-range cell.
	payload := `{"version":1,"phi":3,"k":1,"options":{"Phi":3,"TargetS":-3,"M":10,"Restarts":1,"Seed":0},
		"names":["a","b"],"cuts":[[0.3,0.6],[0.3,0.6]],
		"projections":[{"cube":[9,0],"sparsity":-3,"count":0}]}`
	if _, err := Load(strings.NewReader(payload)); err == nil {
		t.Error("out-of-range projection cell accepted")
	}
	payload2 := strings.Replace(payload, `"cube":[9,0]`, `"cube":[1]`, 1)
	if _, err := Load(strings.NewReader(payload2)); err == nil {
		t.Error("wrong-width projection accepted")
	}
}

// Save must snapshot one coherent model even while Refit hot-swaps it:
// every serialized payload must Load back cleanly (run under -race).
func TestSaveLoadUnderConcurrentRefit(t *testing.T) {
	m, err := NewMonitor(reference(400, 40), Options{Phi: 5, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				if err := m.Save(&buf); err != nil {
					t.Errorf("save: %v", err)
					return
				}
				loaded, err := Load(&buf)
				if err != nil {
					t.Errorf("snapshot %d does not load: %v", i, err)
					return
				}
				if loaded.D() != m.D() {
					t.Errorf("snapshot %d has D=%d", i, loaded.D())
					return
				}
			}
		}(uint64(300 + w))
	}
	for i := 0; i < 3; i++ {
		if err := m.Refit(reference(400, 50+uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// Corrupt numeric content — non-monotonic or non-finite cut points,
// negative k or counts, NaN sparsity — used to load silently and
// poison every score computed against the model. Each must now fail
// with a descriptive error.
func TestLoadRejectsCorruptNumerics(t *testing.T) {
	good := `{"version":1,"phi":3,"k":1,"options":{"Phi":3,"TargetS":-3,"M":10,"Restarts":1,"Seed":0},` +
		`"names":["a","b"],"cuts":[[0.3,0.6],[0.3,0.6]],` +
		`"projections":[{"cube":[2,0],"sparsity":-3,"count":1}]}`
	if _, err := Load(strings.NewReader(good)); err != nil {
		t.Fatalf("baseline model rejected: %v", err)
	}
	cases := map[string][2]string{
		"descending cuts": {`"cuts":[[0.3,0.6],[0.3,0.6]]`, `"cuts":[[0.6,0.3],[0.3,0.6]]`},
		"NaN cut":         {`"cuts":[[0.3,0.6],[0.3,0.6]]`, `"cuts":[[0.3,"x"],[0.3,0.6]]`},
		"infinite cut":    {`"cuts":[[0.3,0.6],[0.3,0.6]]`, `"cuts":[[0.3,1e999],[0.3,0.6]]`},
		"negative k":      {`"k":1`, `"k":-2`},
		"oversized k":     {`"k":1`, `"k":7`},
		"negative count":  {`"count":1`, `"count":-4`},
		"NaN sparsity":    {`"sparsity":-3`, `"sparsity":"NaN"`},
		"huge phi":        {`"phi":3`, `"phi":70000`},
		"cut count wrong": {`"cuts":[[0.3,0.6],[0.3,0.6]]`, `"cuts":[[0.3],[0.3,0.6]]`},
		"no dimensions":   {`"names":["a","b"],"cuts":[[0.3,0.6],[0.3,0.6]]`, `"names":[],"cuts":[]`},
	}
	for name, sub := range cases {
		payload := strings.Replace(good, sub[0], sub[1], 1)
		if payload == good {
			t.Fatalf("%s: substitution did not apply", name)
		}
		mon, err := Load(strings.NewReader(payload))
		if err == nil {
			t.Errorf("%s accepted: %+v", name, mon)
		}
	}
}

// FuzzLoadModel asserts Load never panics on mutated model JSON: it
// either returns a monitor that can score a record, or a descriptive
// error. Seeds cover the valid wire shape plus each corruption class
// the validator guards.
func FuzzLoadModel(f *testing.F) {
	orig, err := NewMonitor(reference(200, 31), Options{Phi: 4, Seed: 32})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"phi":3,"k":1,"names":["a"],"cuts":[[0.6,0.3]],"projections":[]}`)
	f.Add(`{"version":1,"phi":3,"k":1,"names":["a"],"cuts":[[0.3,"NaN"]],"projections":[]}`)
	f.Add(`{"version":1,"phi":70000,"k":1,"names":["a"],"cuts":[[1,2]],"projections":[]}`)
	f.Add(`{"version":1,"phi":3,"k":-1,"names":["a"],"cuts":[[1,2]],"projections":[{"cube":[1],"sparsity":"NaN","count":-9}]}`)
	f.Add(`{"version":1`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, payload string) {
		mon, err := Load(strings.NewReader(payload))
		if err != nil {
			return
		}
		// A model that loads must be servable: scoring a well-shaped
		// record must not panic either.
		rec := make([]float64, mon.D())
		_ = mon.Score(rec)
	})
}
