package batchwire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzBinaryBatchDecode drives the hib1 decoder with hostile frames:
// it must never panic, never accept a frame whose declared lengths
// exceed the bytes present (so allocation is always bounded by the
// input size), and every accepted frame must re-encode byte-identically
// — hib1 is a canonical format.
func FuzzBinaryBatchDecode(f *testing.F) {
	ds := sample(false)
	f.Add(Encode(ds), 0)
	f.Add(Encode(ds), 3)
	f.Add(Encode(sample(true)), 3)
	f.Add([]byte("hib1"), 0)
	f.Add([]byte{}, -1)

	// Truncated length: header promises more values than the body holds.
	trunc := Encode(ds)
	f.Add(trunc[:headerLen+7], 0)
	// Oversized pre-allocation bait: 4 billion declared records on a
	// tiny payload.
	huge := append([]byte(nil), trunc[:headerLen]...)
	binary.BigEndian.PutUint32(huge[5:], math.MaxUint32)
	f.Add(huge, 0)
	// NaN/Inf payloads: every special bit pattern as a value.
	var spec []byte
	spec = append(spec, magic...)
	spec = append(spec, 0)
	spec = binary.BigEndian.AppendUint32(spec, 4)
	spec = binary.BigEndian.AppendUint32(spec, 1)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0} {
		spec = binary.BigEndian.AppendUint64(spec, math.Float64bits(v))
	}
	f.Add(spec, 1)
	// Signalling-NaN bit patterns and a labels flag with garbage tail.
	f.Add(append(append([]byte(nil), "hib1\x01"...), 0, 0, 0, 1, 0, 0, 0, 1, 0x7f, 0xf0, 0, 0, 0, 0, 0, 1, 0xff), 0)

	f.Fuzz(func(t *testing.T, b []byte, wantD int) {
		ds, err := Decode(nil, b, wantD)
		if err != nil {
			return
		}
		if ds.N() == 0 || ds.D() < 1 || ds.D() > maxDims {
			t.Fatalf("accepted batch with shape %dx%d", ds.N(), ds.D())
		}
		if wantD > 0 && ds.D() != wantD {
			t.Fatalf("accepted %d dims with wantD=%d", ds.D(), wantD)
		}
		back := Encode(ds)
		if !bytes.Equal(back, b) {
			t.Fatalf("accepted frame does not re-encode canonically:\n in: %x\nout: %x", b, back)
		}
		// Decoding into a reused dataset must agree bit for bit.
		again, err := Decode(ds, b, wantD)
		if err != nil {
			t.Fatalf("reused decode rejected an accepted frame: %v", err)
		}
		if !bytes.Equal(Encode(again), back) {
			t.Fatal("reused decode disagrees with fresh decode")
		}
	})
}
