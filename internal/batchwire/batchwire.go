// Package batchwire implements hib1, hido's length-prefixed binary
// columnar batch format — the third Content-Type of the hidod scoring
// API next to CSV and JSON lines, and the cheapest one to decode:
// values travel as raw big-endian IEEE 754 bits (NaN encodes missing
// exactly, like the hcp1 cluster protocol), laid out column-major so a
// client can emit one column of a columnar store without transposing.
//
// Wire layout (all integers big-endian):
//
//	offset 0   magic "hib1" (4 bytes)
//	offset 4   flags (1 byte; bit0 = labels present)
//	offset 5   N, record count (uint32)
//	offset 9   D, attribute count (uint32)
//	offset 13  D columns × N float64 bit patterns (8 bytes each)
//	then       N × (uint32 length + raw bytes) labels, iff flags bit0
//
// The decoder follows the hcp1 discipline: every declared length is
// validated against the bytes actually present before anything is
// allocated, so a hostile frame can never make the server allocate
// more than the frame's own size.
package batchwire

import (
	"encoding/binary"
	"fmt"
	"math"

	"hido/internal/dataset"
)

// ContentType is the HTTP media type of a hib1 batch.
const ContentType = "application/x-hido-batch"

const magic = "hib1"

const (
	flagLabels = 1 << 0

	headerLen = len(magic) + 1 + 4 + 4

	// maxDims mirrors the cluster protocol's per-record dimension cap.
	maxDims = 4096
	// maxLabel bounds any single label string.
	maxLabel = 1 << 20
)

// Append appends the wire form of ds to dst and returns the extended
// buffer.
func Append(dst []byte, ds *dataset.Dataset) []byte {
	n, d := ds.N(), ds.D()
	flags := byte(0)
	if ds.Labels != nil {
		flags |= flagLabels
	}
	dst = append(dst, magic...)
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = binary.BigEndian.AppendUint32(dst, uint32(d))
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(ds.At(i, j)))
		}
	}
	if ds.Labels != nil {
		for _, l := range ds.Labels {
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(l)))
			dst = append(dst, l...)
		}
	}
	return dst
}

// Encode returns the wire form of ds.
func Encode(ds *dataset.Dataset) []byte {
	n, d := ds.N(), ds.D()
	size := headerLen + n*d*8
	if ds.Labels != nil {
		for _, l := range ds.Labels {
			size += 4 + len(l)
		}
	}
	return Append(make([]byte, 0, size), ds)
}

// Decode parses a hib1 batch into dst, which is Reset in place (a nil
// dst allocates a fresh dataset). wantD, when positive, enforces the
// batch's attribute count — the decoder rejects a mismatched batch
// before touching the values. Column names are the positional
// c0 … c{D-1}; in steady state with a reused dst, decoding an
// unlabeled batch allocates nothing.
func Decode(dst *dataset.Dataset, b []byte, wantD int) (*dataset.Dataset, error) {
	if len(b) < headerLen {
		return nil, fmt.Errorf("batchwire: batch truncated (%d bytes, want at least %d)", len(b), headerLen)
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("batchwire: bad magic")
	}
	flags := b[len(magic)]
	if flags&^byte(flagLabels) != 0 {
		return nil, fmt.Errorf("batchwire: unknown flag bits %#x", flags)
	}
	n := int(binary.BigEndian.Uint32(b[len(magic)+1:]))
	d := int(binary.BigEndian.Uint32(b[len(magic)+5:]))
	if n == 0 {
		return nil, fmt.Errorf("batchwire: empty batch")
	}
	if d < 1 || d > maxDims {
		return nil, fmt.Errorf("batchwire: dimension count %d outside [1,%d]", d, maxDims)
	}
	if wantD > 0 && d != wantD {
		return nil, fmt.Errorf("batchwire: batch has %d attributes, model expects %d", d, wantD)
	}
	body := b[headerLen:]
	need := int64(n) * int64(d) * 8
	if need > int64(len(body)) {
		return nil, fmt.Errorf("batchwire: batch declares %dx%d values (%d bytes), carries %d", n, d, need, len(body))
	}
	if flags&flagLabels == 0 && need != int64(len(body)) {
		return nil, fmt.Errorf("batchwire: %d trailing bytes after values", int64(len(body))-need)
	}

	if dst == nil {
		dst = dataset.New(dataset.GenericNames(d), n)
	} else {
		dst.Reset(dataset.GenericNames(d))
	}
	vals := dst.AppendRows(n)
	for j := 0; j < d; j++ {
		col := body[j*n*8:]
		for i := 0; i < n; i++ {
			vals[i*d+j] = math.Float64frombits(binary.BigEndian.Uint64(col[i*8:]))
		}
	}

	if flags&flagLabels != 0 {
		rest := body[need:]
		labels := make([]string, n)
		for i := range labels {
			if len(rest) < 4 {
				return nil, fmt.Errorf("batchwire: labels truncated at record %d", i)
			}
			l := int(binary.BigEndian.Uint32(rest))
			if l > maxLabel {
				return nil, fmt.Errorf("batchwire: label of %d bytes exceeds limit %d", l, maxLabel)
			}
			rest = rest[4:]
			if l > len(rest) {
				return nil, fmt.Errorf("batchwire: label of %d bytes exceeds payload (%d left)", l, len(rest))
			}
			labels[i] = string(rest[:l])
			rest = rest[l:]
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("batchwire: %d trailing bytes after labels", len(rest))
		}
		dst.Labels = labels
	}
	return dst, nil
}
