package batchwire

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"hido/internal/dataset"
	"hido/internal/testutil"
)

func sample(labels bool) *dataset.Dataset {
	ds := dataset.New([]string{"a", "b", "c"}, 4)
	rows := [][]float64{
		{1.5, -2.25, math.NaN()},
		{math.Inf(1), 0, -0},
		{math.Inf(-1), 1e-308, 3},
		{42, math.NaN(), math.NaN()},
	}
	for i, r := range rows {
		l := ""
		if labels {
			l = []string{"pos", "", "neg", "x"}[i]
		}
		ds.AppendRow(r, l)
	}
	return ds
}

func TestRoundTrip(t *testing.T) {
	for _, labeled := range []bool{false, true} {
		ds := sample(labeled)
		b := Encode(ds)
		got, err := Decode(nil, b, ds.D())
		if err != nil {
			t.Fatalf("labeled=%v: decode: %v", labeled, err)
		}
		if got.N() != ds.N() || got.D() != ds.D() {
			t.Fatalf("labeled=%v: shape %dx%d, want %dx%d", labeled, got.N(), got.D(), ds.N(), ds.D())
		}
		for i := 0; i < ds.N(); i++ {
			for j := 0; j < ds.D(); j++ {
				w, g := math.Float64bits(ds.At(i, j)), math.Float64bits(got.At(i, j))
				if w != g {
					t.Fatalf("labeled=%v: value (%d,%d) bits %x, want %x", labeled, i, j, g, w)
				}
			}
			if got.Label(i) != ds.Label(i) {
				t.Fatalf("labeled=%v: label %d = %q, want %q", labeled, i, got.Label(i), ds.Label(i))
			}
		}
		// The format is canonical: re-encoding reproduces the input.
		if !bytes.Equal(Encode(got), b) {
			t.Fatalf("labeled=%v: re-encode is not byte-identical", labeled)
		}
	}
}

func TestDecodeReuse(t *testing.T) {
	big := Encode(sample(false))
	smallDS := dataset.New([]string{"x"}, 1)
	smallDS.AppendRow([]float64{7}, "")
	small := Encode(smallDS)

	var dst *dataset.Dataset
	var err error
	dst, err = Decode(dst, big, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err = Decode(dst, small, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dst.N() != 1 || dst.D() != 1 || dst.At(0, 0) != 7 {
		t.Fatalf("reused decode got %dx%d", dst.N(), dst.D())
	}
	// A labeled decode followed by an unlabeled one must not leak labels.
	dst, err = Decode(dst, Encode(sample(true)), 0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err = Decode(dst, big, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Labels != nil {
		t.Fatal("labels leaked across a reused decode")
	}
}

func TestDecodeSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are unreliable under -race")
	}
	b := Encode(sample(false))
	dst, err := Decode(nil, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if dst, err = Decode(dst, b, 3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode allocates %v per run, want 0", allocs)
	}
}

func TestDecodeRejectsHostileFrames(t *testing.T) {
	valid := Encode(sample(true))
	corrupt := func(mut func(b []byte) []byte) []byte {
		return mut(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		b    []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"short header", []byte("hib1"), "truncated"},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), "bad magic"},
		{"unknown flags", corrupt(func(b []byte) []byte { b[4] |= 0x80; return b }), "unknown flag"},
		{"zero records", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[5:], 0)
			return b
		}), "empty batch"},
		{"zero dims", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[9:], 0)
			return b
		}), "dimension count"},
		{"huge dims", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[9:], maxDims+1)
			return b
		}), "dimension count"},
		// A declared count far beyond the payload must fail before any
		// allocation is sized from it.
		{"oversized count", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[5:], math.MaxUint32)
			return b
		}), "carries"},
		{"truncated values", valid[:headerLen+5], "carries"},
		{"trailing bytes", append(append([]byte(nil), Encode(sample(false))...), 0xff), "trailing"},
		{"truncated labels", valid[:len(valid)-1], "label"},
		{"oversized label", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[headerLen+4*3*8:], math.MaxUint32)
			return b
		}), "label"},
	}
	for _, tc := range cases {
		_, err := Decode(nil, tc.b, 0)
		if err == nil {
			t.Errorf("%s: decode accepted a hostile frame", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestDecodeDimensionCheck(t *testing.T) {
	b := Encode(sample(false))
	if _, err := Decode(nil, b, 5); err == nil || !strings.Contains(err.Error(), "model expects 5") {
		t.Fatalf("wantD mismatch not rejected: %v", err)
	}
	if _, err := Decode(nil, b, 3); err != nil {
		t.Fatalf("matching wantD rejected: %v", err)
	}
	if _, err := Decode(nil, b, 0); err != nil {
		t.Fatalf("wantD=0 rejected: %v", err)
	}
}
