package eval

import (
	"math"
	"testing"
)

// Score distributions from rank-aggregated ensembles are mostly exact
// ties, and undefined scores (NaN) appear when a member covers
// nothing. These tests pin the behavior the audit fixed: NaN must
// order deterministically (least outlying) and tie with other NaNs.

func TestRocAUCMassTies(t *testing.T) {
	// All scores identical: ranking carries no information → AUC 0.5.
	scores := []float64{1, 1, 1, 1, 1, 1}
	positive := []bool{true, false, true, false, false, false}
	if got := RocAUC(scores, positive); got != 0.5 {
		t.Fatalf("all-tied AUC = %v, want 0.5", got)
	}
	// One tie group above, one below: a positive inside the top group
	// gets the group's average rank.
	scores = []float64{2, 2, 2, 1, 1, 1}
	positive = []bool{true, false, false, false, false, false}
	// Ranks: top group 5, bottom group 2. AUC = (5 - 1)/ (1*5) = 0.8.
	if got := RocAUC(scores, positive); got != 0.8 {
		t.Fatalf("grouped-tie AUC = %v, want 0.8", got)
	}
}

func TestRocAUCNaN(t *testing.T) {
	nan := math.NaN()
	// NaN ranks below every real score: a positive with a NaN score is
	// maximally missed, one with the top score maximally found.
	scores := []float64{nan, 0.2, 0.9}
	if got := RocAUC(scores, []bool{false, false, true}); got != 1 {
		t.Fatalf("AUC = %v, want 1 (positive on top, NaN at bottom)", got)
	}
	if got := RocAUC(scores, []bool{true, false, false}); got != 0 {
		t.Fatalf("AUC = %v, want 0 (positive is NaN-scored)", got)
	}
	// NaNs tie with each other: two NaN records, one positive, behave
	// like an exact tie group (average rank), not like two ordered
	// records.
	scores = []float64{nan, nan, 1}
	got := RocAUC(scores, []bool{true, false, false})
	// Ranks: NaN group average 1.5, real score 3. AUC = (1.5-1)/2 = 0.25.
	if got != 0.25 {
		t.Fatalf("NaN tie-group AUC = %v, want 0.25", got)
	}
}

// The metric must not depend on where NaNs sit in the input: permuting
// records never changes the result.
func TestRocAUCNaNPermutationInvariant(t *testing.T) {
	nan := math.NaN()
	scores := []float64{0.3, nan, 0.9, nan, 0.3, 0.1}
	positive := []bool{false, true, true, false, false, false}
	want := RocAUC(scores, positive)
	perm := []int{5, 3, 0, 2, 4, 1}
	ps := make([]float64, len(scores))
	pp := make([]bool, len(positive))
	for to, from := range perm {
		ps[to] = scores[from]
		pp[to] = positive[from]
	}
	if got := RocAUC(ps, pp); got != want {
		t.Fatalf("permuted AUC = %v, want %v", got, want)
	}
}

func TestAveragePrecisionNaNLast(t *testing.T) {
	nan := math.NaN()
	// The NaN-scored positive is visited last: hits at visit 1 (score
	// 0.9) and visit 4 (NaN) → AP = (1/1 + 2/4)/2 = 0.75.
	scores := []float64{0.9, 0.5, 0.1, nan}
	positive := []bool{true, false, false, true}
	if got := AveragePrecision(scores, positive); got != 0.75 {
		t.Fatalf("AP = %v, want 0.75", got)
	}
}

func TestPrecisionAtKNaNLast(t *testing.T) {
	nan := math.NaN()
	scores := []float64{nan, 0.9, nan, 0.8}
	positive := []bool{true, true, false, true}
	// Top-2 by score are indices 1 and 3 (both positive); the NaNs sit
	// below despite holding positives.
	if got := PrecisionAtK(scores, positive, 2); got != 1 {
		t.Fatalf("P@2 = %v, want 1", got)
	}
	// Within the NaN tie group, index order breaks the tie: top-3 adds
	// index 0 (positive).
	if got := PrecisionAtK(scores, positive, 3); got != 1 {
		t.Fatalf("P@3 = %v, want 1", got)
	}
}

func TestPrecisionAtKTieByIndex(t *testing.T) {
	// Exact ties across the k boundary resolve by ascending index, so
	// the cut is deterministic.
	scores := []float64{1, 1, 1, 1}
	positive := []bool{true, true, false, false}
	if got := PrecisionAtK(scores, positive, 2); got != 1 {
		t.Fatalf("P@2 = %v, want 1 (indices 0,1 win the tie)", got)
	}
}
