// Package eval provides the detection-quality metrics the experiment
// harness and examples report: precision/recall at a budget, ROC AUC
// and average precision over continuous scores, and rare-class lift.
// All metrics take ground truth as a set of positive indices, matching
// the planted-outlier labels of the synth package.
package eval

import (
	"fmt"
	"math"
	"sort"
)

// Confusion summarizes a fixed-budget detection outcome.
type Confusion struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	// Positives is the ground-truth positive count; Flagged the number
	// of records the detector reported.
	Positives, Flagged int
}

// Precision returns TP / flagged (0 when nothing was flagged).
func (c Confusion) Precision() float64 {
	if c.Flagged == 0 {
		return 0
	}
	return float64(c.TruePositives) / float64(c.Flagged)
}

// Recall returns TP / positives (0 when there are no positives).
func (c Confusion) Recall() float64 {
	if c.Positives == 0 {
		return 0
	}
	return float64(c.TruePositives) / float64(c.Positives)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (c Confusion) String() string {
	return fmt.Sprintf("tp=%d fp=%d fn=%d precision=%.3f recall=%.3f f1=%.3f",
		c.TruePositives, c.FalsePositives, c.FalseNegatives,
		c.Precision(), c.Recall(), c.F1())
}

// AtBudget scores a flagged set against ground-truth positives.
func AtBudget(flagged, positives []int) Confusion {
	pos := make(map[int]bool, len(positives))
	for _, i := range positives {
		pos[i] = true
	}
	c := Confusion{Positives: len(pos), Flagged: len(flagged)}
	seen := make(map[int]bool, len(flagged))
	for _, i := range flagged {
		if seen[i] {
			continue
		}
		seen[i] = true
		if pos[i] {
			c.TruePositives++
		} else {
			c.FalsePositives++
		}
	}
	c.FalseNegatives = c.Positives - c.TruePositives
	return c
}

// Lift returns precision divided by the base rate of positives among
// total records — how many times better than random flagging the
// detector is. The arrhythmia study's headline (rare classes at 3.5×
// their 14.6% base rate) is a lift.
func Lift(flagged, positives []int, total int) float64 {
	if total == 0 || len(positives) == 0 {
		return 0
	}
	base := float64(len(positives)) / float64(total)
	return AtBudget(flagged, positives).Precision() / base
}

// scoreLess orders scores ascending with NaN first: an undefined
// score ranks as least outlying, deterministically. Plain `<` is not a
// strict weak ordering once NaN appears (NaN is incomparable to
// everything), which would make the sort — and every metric built on
// it — input-order-dependent.
func scoreLess(a, b float64) bool {
	aN, bN := math.IsNaN(a), math.IsNaN(b)
	if aN || bN {
		return aN && !bN
	}
	return a < b
}

// scoreEq is the tie predicate matching scoreLess: NaNs tie with each
// other (IEEE `==` would give every NaN its own singleton tie group at
// whatever position the sort left it).
func scoreEq(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// RocAUC returns the area under the ROC curve for continuous scores
// where HIGHER scores mean more positive (more outlying). Ties are
// handled by the rank-sum (Mann-Whitney) formulation — exact tie
// groups share their average rank, so score distributions that are
// mostly ties (rank-aggregated ensemble scores) are handled without
// bias. NaN scores rank below everything and tie with each other. It
// returns NaN when either class is empty.
func RocAUC(scores []float64, positive []bool) float64 {
	if len(scores) != len(positive) {
		panic("eval: RocAUC length mismatch")
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scoreLess(scores[idx[a]], scores[idx[b]]) })

	// Average ranks over ties.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scoreEq(scores[idx[j]], scores[idx[i]]) {
			j++
		}
		avg := float64(i+j-1)/2 + 1 // 1-based average rank
		for t := i; t < j; t++ {
			ranks[idx[t]] = avg
		}
		i = j
	}
	nPos, nNeg := 0, 0
	rankSum := 0.0
	for i, p := range positive {
		if p {
			nPos++
			rankSum += ranks[i]
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return math.NaN()
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// AveragePrecision returns the area under the precision-recall curve
// (higher scores = more positive), computed as the mean of precision
// at each positive hit when records are visited best-score-first.
// Ties are broken by index for determinism; NaN scores visit last.
// NaN when no positives.
func AveragePrecision(scores []float64, positive []bool) float64 {
	if len(scores) != len(positive) {
		panic("eval: AveragePrecision length mismatch")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := scores[idx[a]], scores[idx[b]]
		if !scoreEq(sa, sb) {
			return scoreLess(sb, sa)
		}
		return idx[a] < idx[b]
	})
	hits, sum := 0, 0.0
	for rank, i := range idx {
		if positive[i] {
			hits++
			sum += float64(hits) / float64(rank+1)
		}
	}
	if hits == 0 {
		return math.NaN()
	}
	return sum / float64(hits)
}

// PrecisionAtK returns precision of the top-k records by score
// (higher = more positive), ties broken by index; NaN scores rank
// last.
func PrecisionAtK(scores []float64, positive []bool, k int) float64 {
	if len(scores) != len(positive) {
		panic("eval: PrecisionAtK length mismatch")
	}
	if k <= 0 {
		return 0
	}
	if k > len(scores) {
		k = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := scores[idx[a]], scores[idx[b]]
		if !scoreEq(sa, sb) {
			return scoreLess(sb, sa)
		}
		return idx[a] < idx[b]
	})
	hits := 0
	for _, i := range idx[:k] {
		if positive[i] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}
