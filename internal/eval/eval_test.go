package eval

import (
	"math"
	"testing"
	"testing/quick"

	"hido/internal/xrand"
)

func TestAtBudget(t *testing.T) {
	c := AtBudget([]int{1, 2, 3, 4}, []int{3, 4, 5})
	if c.TruePositives != 2 || c.FalsePositives != 2 || c.FalseNegatives != 1 {
		t.Fatalf("%+v", c)
	}
	if c.Precision() != 0.5 {
		t.Errorf("precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", c.Recall())
	}
	wantF1 := 2 * 0.5 * (2.0 / 3) / (0.5 + 2.0/3)
	if math.Abs(c.F1()-wantF1) > 1e-12 {
		t.Errorf("f1 = %v, want %v", c.F1(), wantF1)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func TestAtBudgetDeduplicates(t *testing.T) {
	c := AtBudget([]int{1, 1, 1, 2}, []int{1})
	if c.TruePositives != 1 || c.FalsePositives != 1 {
		t.Errorf("duplicates not collapsed: %+v", c)
	}
}

func TestAtBudgetEmpty(t *testing.T) {
	c := AtBudget(nil, nil)
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Errorf("empty case: %+v", c)
	}
}

func TestLift(t *testing.T) {
	// 10 positives of 100 records (base rate 0.1); flag 10 with 5 hits
	// → precision 0.5 → lift 5.
	positives := make([]int, 10)
	for i := range positives {
		positives[i] = i
	}
	flagged := []int{0, 1, 2, 3, 4, 50, 51, 52, 53, 54}
	if got := Lift(flagged, positives, 100); math.Abs(got-5) > 1e-12 {
		t.Errorf("lift = %v, want 5", got)
	}
	if Lift(nil, nil, 100) != 0 {
		t.Error("empty lift not 0")
	}
}

func TestRocAUCPerfectAndInverse(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	pos := []bool{true, true, false, false}
	if got := RocAUC(scores, pos); got != 1 {
		t.Errorf("perfect AUC = %v", got)
	}
	inv := []bool{false, false, true, true}
	if got := RocAUC(scores, inv); got != 0 {
		t.Errorf("inverse AUC = %v", got)
	}
}

func TestRocAUCRandomIsHalf(t *testing.T) {
	r := xrand.New(1)
	n := 4000
	scores := make([]float64, n)
	pos := make([]bool, n)
	for i := range scores {
		scores[i] = r.Float64()
		pos[i] = r.Bool()
	}
	if got := RocAUC(scores, pos); math.Abs(got-0.5) > 0.03 {
		t.Errorf("random AUC = %v, want ≈0.5", got)
	}
}

func TestRocAUCTies(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 via average ranks.
	scores := []float64{1, 1, 1, 1}
	pos := []bool{true, false, true, false}
	if got := RocAUC(scores, pos); got != 0.5 {
		t.Errorf("all-ties AUC = %v, want 0.5", got)
	}
}

func TestRocAUCDegenerate(t *testing.T) {
	if !math.IsNaN(RocAUC([]float64{1, 2}, []bool{true, true})) {
		t.Error("single-class AUC not NaN")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	RocAUC([]float64{1}, []bool{true, false})
}

func TestAveragePrecision(t *testing.T) {
	// ranking: pos, neg, pos → AP = (1/1 + 2/3)/2
	scores := []float64{0.9, 0.8, 0.7}
	pos := []bool{true, false, true}
	want := (1.0 + 2.0/3) / 2
	if got := AveragePrecision(scores, pos); math.Abs(got-want) > 1e-12 {
		t.Errorf("AP = %v, want %v", got, want)
	}
	if !math.IsNaN(AveragePrecision(scores, []bool{false, false, false})) {
		t.Error("no-positive AP not NaN")
	}
}

func TestPrecisionAtK(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	pos := []bool{true, false, true, false}
	if got := PrecisionAtK(scores, pos, 1); got != 1 {
		t.Errorf("P@1 = %v", got)
	}
	if got := PrecisionAtK(scores, pos, 2); got != 0.5 {
		t.Errorf("P@2 = %v", got)
	}
	if got := PrecisionAtK(scores, pos, 100); got != 0.5 {
		t.Errorf("P@100 (clamped) = %v", got)
	}
	if got := PrecisionAtK(scores, pos, 0); got != 0 {
		t.Errorf("P@0 = %v", got)
	}
}

// Property: AUC is invariant under monotone score transforms.
func TestQuickAUCMonotoneInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 30
		scores := make([]float64, n)
		trans := make([]float64, n)
		pos := make([]bool, n)
		anyPos, anyNeg := false, false
		for i := range scores {
			scores[i] = r.Float64()
			trans[i] = math.Exp(3*scores[i]) + 7 // strictly monotone
			pos[i] = r.Bool()
			anyPos = anyPos || pos[i]
			anyNeg = anyNeg || !pos[i]
		}
		if !anyPos || !anyNeg {
			return true
		}
		return math.Abs(RocAUC(scores, pos)-RocAUC(trans, pos)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: precision and recall lie in [0,1] and recall(all flagged)=1.
func TestQuickConfusionBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		total := 40
		var positives, flagged []int
		for i := 0; i < total; i++ {
			if r.Bool() {
				positives = append(positives, i)
			}
			if r.Bool() {
				flagged = append(flagged, i)
			}
		}
		c := AtBudget(flagged, positives)
		if c.Precision() < 0 || c.Precision() > 1 || c.Recall() < 0 || c.Recall() > 1 {
			return false
		}
		all := make([]int, total)
		for i := range all {
			all[i] = i
		}
		cAll := AtBudget(all, positives)
		return len(positives) == 0 || cAll.Recall() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
