package synth

import (
	"fmt"
	"math"

	"hido/internal/dataset"
	"hido/internal/xrand"
)

// ArrhythmiaClass describes one diagnostic class of the arrhythmia
// stand-in. Counts reproduce the UCI class distribution exactly, which
// yields the paper's Table 2: common classes (≥5%) cover 85.4% of the
// 452 records and the eight rare classes cover 14.6%.
type ArrhythmiaClass struct {
	Code  string
	Count int
	Rare  bool
}

// ArrhythmiaClasses returns the 13 non-empty classes with the UCI
// instance counts (452 records total).
func ArrhythmiaClasses() []ArrhythmiaClass {
	return []ArrhythmiaClass{
		{"01", 245, false}, // no heart disease
		{"02", 44, false},  // ischemic changes
		{"03", 15, true},
		{"04", 15, true},
		{"05", 13, true},
		{"06", 25, false},
		{"07", 3, true},
		{"08", 2, true},
		{"09", 9, true},
		{"10", 50, false},
		{"14", 4, true},
		{"15", 5, true},
		{"16", 22, false},
	}
}

// ArrhythmiaDims is the dimensionality of the arrhythmia stand-in,
// matching the UCI original's 279 attributes.
const ArrhythmiaDims = 279

// Arrhythmia generates the 452×279 arrhythmia stand-in:
//
//   - ten latent physiological factors drive overlapping groups of
//     attributes (ECG channels correlate strongly in the original);
//   - records of each rare class additionally carry a class-specific
//     signature: 2–3 attributes pushed into a jointly-rare combination
//     of an attribute group, the low-dimensional abnormality the
//     projection method is designed to find;
//   - one record reproduces the paper's recording-error anecdote: a
//     height of 780 cm with a weight of 6 kg (attributes 2 and 3 hold
//     height and weight in the UCI layout);
//   - common-class records carry no signature, so full-dimensional
//     distances see rare and common records as near-equidistant once
//     the 279 dimensions' noise accumulates.
//
// Labels are the class codes; RareLabel reports rare membership.
func Arrhythmia(seed uint64) (*dataset.Dataset, error) {
	r := xrand.New(seed)
	classes := ArrhythmiaClasses()
	total := 0
	for _, c := range classes {
		total += c.Count
	}

	const d = ArrhythmiaDims
	names := make([]string, d)
	for j := range names {
		names[j] = fmt.Sprintf("att%03d", j)
	}
	names[0], names[1], names[2], names[3] = "age", "sex", "height", "weight"
	ds := dataset.New(names, total)

	// Attribute groups: 10 factors × ~24 attributes each; the first 4
	// attributes (demographics) form their own weakly-correlated group.
	const nFactors = 10
	groupOf := make([]int, d)
	for j := 4; j < d; j++ {
		groupOf[j] = (j - 4) % nFactors
	}

	// Class signatures: each rare class owns a distinct trio of
	// same-group (hence mutually correlated) attributes. Each rare
	// record picks two of its class's three dims and takes a factor-low
	// value in one and a factor-high value in the other — individually
	// unremarkable, jointly in an off-diagonal grid cell that correlated
	// common records cannot reach. The random choice of pair,
	// orientation, and level spreads a class's members across many such
	// cells, so each stays sparse (1–2 records).
	type signature struct {
		dims [3]int
	}
	sigs := map[string]signature{}
	next := 4
	for _, c := range classes {
		if !c.Rare {
			continue
		}
		// three same-group attributes: j, j+nFactors, j+2·nFactors
		sigs[c.Code] = signature{dims: [3]int{next, next + nFactors, next + 2*nFactors}}
		next++
	}

	row := make([]float64, d)
	factors := make([]float64, nFactors)
	emit := func(code string, rare bool) {
		for fi := range factors {
			factors[fi] = r.Float64()
		}
		age := 16 + 70*r.Float64()
		row[0] = math.Floor(age)
		row[1] = float64(r.Intn(2))
		// Height and weight are tightly coupled (the population's usual
		// build), so a tall-and-featherweight combination — the paper's
		// recording error — occupies an otherwise empty grid cell.
		row[2] = math.Floor(150 + age/3 + r.NormMS(0, 4))           // height, cm
		row[3] = math.Floor((row[2]-150)*1.2 + 30 + r.NormMS(0, 4)) // weight, kg
		// Rare-class records carry slightly elevated measurement noise
		// across the board (diseased ECGs are globally noisier), which
		// is what lets the full-dimensional kNN baseline recover *some*
		// of them, as it does in the paper (28/85, not 12/85).
		noise := 0.05
		if rare {
			noise = 0.075
		}
		for j := 4; j < d; j++ {
			f := factors[groupOf[j]]
			row[j] = f + r.NormMS(0, noise)
		}
		if rare {
			s := sigs[code]
			pair := r.Sample(3, 2)
			lo := r.Float64() / 3   // lands in the bottom third
			hi := 1 - r.Float64()/3 // lands in the top third
			row[s.dims[pair[0]]] = lo
			row[s.dims[pair[1]]] = hi
		}
		ds.AppendRow(row, code)
	}

	for _, c := range classes {
		for i := 0; i < c.Count; i++ {
			emit(c.Code, c.Rare)
		}
	}

	// The paper's recording-error record: physically impossible height
	// and weight. Overwrite a common-class record so it does not change
	// the class distribution.
	ds.SetAt(0, 2, 780)
	ds.SetAt(0, 3, 6)

	return ds, nil
}

// RareLabel reports whether an arrhythmia class code is one of the
// paper's rare classes (< 5% of instances).
func RareLabel(code string) bool {
	for _, c := range ArrhythmiaClasses() {
		if c.Code == code {
			return c.Rare
		}
	}
	return false
}
