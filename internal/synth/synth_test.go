package synth

import (
	"math"
	"testing"

	"hido/internal/core"
	"hido/internal/stats"
)

func TestGenerateShapeAndLabels(t *testing.T) {
	cfg := Config{
		Name: "t", N: 200, D: 10,
		Groups:   []Group{{Dims: []int{0, 1, 2}}, {Dims: []int{5, 6}}},
		Outliers: 4,
	}
	ds, err := Generate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 204 || ds.D() != 10 {
		t.Fatalf("shape %dx%d", ds.N(), ds.D())
	}
	truth := OutlierIndices(ds)
	if len(truth) != 4 {
		t.Fatalf("truth = %v", truth)
	}
	for i, idx := range truth {
		if idx != 200+i {
			t.Errorf("outlier %d at index %d, want %d", i, idx, 200+i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "t", N: 100, D: 6, Groups: []Group{{Dims: []int{0, 1}}}, Outliers: 2}
	a, err := Generate(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.D(); j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("value (%d,%d) differs across same-seed runs", i, j)
			}
		}
	}
	c, err := Generate(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) == c.At(0, 0) && a.At(1, 1) == c.At(1, 1) {
		t.Error("different seeds produced identical values")
	}
}

func TestGenerateGroupCorrelation(t *testing.T) {
	cfg := Config{Name: "t", N: 500, D: 6,
		Groups: []Group{{Dims: []int{0, 1, 2}, Flip: []int{2}}}}
	ds, err := Generate(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	r01 := stats.Pearson(ds.Column(0), ds.Column(1))
	if r01 < 0.9 {
		t.Errorf("grouped dims correlation = %v, want > 0.9", r01)
	}
	r02 := stats.Pearson(ds.Column(0), ds.Column(2))
	if r02 > -0.9 {
		t.Errorf("flipped dim correlation = %v, want < -0.9", r02)
	}
	r04 := stats.Pearson(ds.Column(0), ds.Column(4))
	if math.Abs(r04) > 0.15 {
		t.Errorf("noise dim correlation = %v, want ≈0", r04)
	}
}

func TestGenerateMissing(t *testing.T) {
	cfg := Config{Name: "t", N: 1000, D: 5, MissingRate: 0.1}
	ds, err := Generate(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(ds.MissingCount()) / float64(ds.N()*ds.D())
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("missing fraction = %v, want ≈0.1", frac)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{N: 0, D: 5},
		{N: 5, D: 0},
		{N: 5, D: 5, MissingRate: 1},
		{N: 5, D: 5, Groups: []Group{{Dims: []int{0}}}},
		{N: 5, D: 5, Groups: []Group{{Dims: []int{0, 9}}}},
		{N: 5, D: 5, Groups: []Group{{Dims: []int{0, 1}}, {Dims: []int{1, 2}}}},
		{N: 5, D: 5, Groups: []Group{{Dims: []int{0, 1}, Flip: []int{5}}}},
		{N: 5, D: 5, Outliers: 1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, 1); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPlantedOutliersAreDetectable(t *testing.T) {
	// End-to-end: the core detector must recover most planted outliers.
	cfg := Config{
		Name: "t", N: 600, D: 12,
		Groups:   []Group{{Dims: []int{0, 1, 2, 3}}, {Dims: []int{6, 7, 8}}},
		Outliers: 5,
	}
	ds, err := Generate(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(ds, 5)
	res, err := det.Evolutionary(core.EvoOptions{K: 2, M: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rec := Recall(res.Outliers, OutlierIndices(ds))
	if rec < 0.8 {
		t.Errorf("detector recalled %.0f%% of planted outliers, want >= 80%%", rec*100)
	}
}

func TestRecall(t *testing.T) {
	if got := Recall([]int{1, 2, 3}, []int{2, 3, 4, 5}); got != 0.5 {
		t.Errorf("Recall = %v", got)
	}
	if got := Recall(nil, nil); got != 0 {
		t.Errorf("empty Recall = %v", got)
	}
}

func TestTable1Profiles(t *testing.T) {
	profiles := Table1Profiles()
	if len(profiles) != 5 {
		t.Fatalf("got %d profiles", len(profiles))
	}
	wantD := map[string]int{
		"BreastCancer": 14, "Ionosphere": 34, "Segmentation": 19,
		"Musk": 160, "Machine": 8,
	}
	for _, p := range profiles {
		if wantD[p.Name] != p.D {
			t.Errorf("%s: D=%d, want %d (paper's Table 1)", p.Name, p.D, wantD[p.Name])
		}
		ds, err := p.Generate(1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if ds.N() != p.N || ds.D() != p.D {
			t.Errorf("%s: shape %dx%d, want %dx%d", p.Name, ds.N(), ds.D(), p.N, p.D)
		}
		if len(OutlierIndices(ds)) != p.Outliers {
			t.Errorf("%s: %d planted, want %d", p.Name, len(OutlierIndices(ds)), p.Outliers)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("Musk")
	if err != nil || p.D != 160 {
		t.Errorf("ProfileByName(Musk) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestArrhythmiaDistributionMatchesTable2(t *testing.T) {
	ds, err := Arrhythmia(1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 452 || ds.D() != ArrhythmiaDims {
		t.Fatalf("shape %dx%d, want 452x279", ds.N(), ds.D())
	}
	// Table 2: the paper's eight rare classes cover 14.6% of instances.
	rareCount := 0
	for i := 0; i < ds.N(); i++ {
		if RareLabel(ds.Label(i)) {
			rareCount++
		}
	}
	frac := float64(rareCount) / float64(ds.N())
	if math.Abs(frac-0.146) > 0.002 {
		t.Errorf("rare fraction = %.4f, want 0.146", frac)
	}
	// The generic threshold helper agrees on the paper's eight rare
	// classes (class 16, at 4.87%, additionally trips the strict <5%
	// cut; the paper lists it as common — see RareLabel).
	rare, _ := ds.RareClasses(0.05)
	for code := range map[string]bool{"03": true, "04": true, "05": true,
		"07": true, "08": true, "09": true, "14": true, "15": true} {
		if !rare[code] {
			t.Errorf("class %s not detected as rare", code)
		}
	}
	for _, code := range []string{"01", "02", "06", "10"} {
		if rare[code] {
			t.Errorf("common class %s flagged rare", code)
		}
	}
	// Note: class 16 sits at 22/452 = 4.87%, technically below 5%; the
	// paper's Table 2 lists it as common, so RareLabel must follow the
	// paper, not the threshold.
	if RareLabel("16") {
		t.Error("RareLabel(16) = true; the paper lists 16 as common")
	}
	if !RareLabel("07") || RareLabel("01") {
		t.Error("RareLabel wrong")
	}
}

func TestArrhythmiaRecordingError(t *testing.T) {
	ds, err := Arrhythmia(2)
	if err != nil {
		t.Fatal(err)
	}
	h, w := ds.ColumnIndex("height"), ds.ColumnIndex("weight")
	if ds.At(0, h) != 780 || ds.At(0, w) != 6 {
		t.Errorf("recording-error record = (%v, %v), want (780, 6)", ds.At(0, h), ds.At(0, w))
	}
}

func TestHousingShape(t *testing.T) {
	ds := Housing(1)
	if ds.N() != HousingN || ds.D() != 13 {
		t.Fatalf("shape %dx%d", ds.N(), ds.D())
	}
	// Narrated correlations hold in the bulk.
	crim, dis := ds.Column(0), ds.Column(6)
	if r := stats.Pearson(crim, dis); r < 0.4 {
		t.Errorf("CRIM-DIS correlation = %v, want positive (paper's narration)", r)
	}
	nox, age := ds.Column(3), ds.Column(5)
	if r := stats.Pearson(nox, age); r < 0.5 {
		t.Errorf("NOX-AGE correlation = %v, want strongly positive", r)
	}
	medv := ds.Column(12)
	if r := stats.Pearson(crim, medv); r > -0.2 {
		t.Errorf("CRIM-MEDV correlation = %v, want negative", r)
	}
	planted := HousingPlanted()
	for _, i := range planted {
		if ds.Label(i) != LabelOutlier {
			t.Errorf("planted record %d not labeled", i)
		}
	}
	// Paper's exact narrated values survive generation.
	if ds.At(planted[0], 0) != 1.628 || ds.At(planted[0], 9) != 21.20 || ds.At(planted[0], 6) != 1.4394 {
		t.Error("planted record 1 values wrong")
	}
}

func TestFigureOneStructure(t *testing.T) {
	ds := FigureOne(1)
	if ds.N() != FigureOneN+2 || ds.D() != FigureOneD {
		t.Fatalf("shape %dx%d", ds.N(), ds.D())
	}
	normals := make([]int, 0, FigureOneN)
	for i := 0; i < FigureOneN; i++ {
		normals = append(normals, i)
	}
	bulk := ds.SelectRows(normals)
	// View 1 structured, views 2-3 noise, view 4 anti-structured.
	if r := stats.Pearson(bulk.Column(0), bulk.Column(1)); r < 0.95 {
		t.Errorf("view 1 correlation = %v", r)
	}
	if r := stats.Pearson(bulk.Column(2), bulk.Column(3)); math.Abs(r) > 0.15 {
		t.Errorf("view 2 correlation = %v, want ≈0", r)
	}
	if r := stats.Pearson(bulk.Column(6), bulk.Column(7)); r > -0.95 {
		t.Errorf("view 4 correlation = %v, want ≈-1", r)
	}
	if ds.Label(FigureOneN) != "A" || ds.Label(FigureOneN+1) != "B" {
		t.Error("A/B labels missing")
	}
}

func TestFigureOneDetectorFindsAandB(t *testing.T) {
	// The projection method must expose A and B through views 1 and 4.
	ds := FigureOne(2)
	det := core.NewDetector(ds, 5)
	res, err := det.BruteForce(core.BruteForceOptions{K: 2, M: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutlierSet.Test(FigureOneN) {
		t.Error("point A not detected")
	}
	if !res.OutlierSet.Test(FigureOneN + 1) {
		t.Error("point B not detected")
	}
	// The exposing projections must constrain the structured views.
	foundView1, foundView4 := false, false
	for _, p := range res.Projections {
		dims := p.Cube.Dims()
		if len(dims) == 2 && dims[0] == 0 && dims[1] == 1 {
			foundView1 = true
		}
		if len(dims) == 2 && dims[0] == 6 && dims[1] == 7 {
			foundView4 = true
		}
	}
	if !foundView1 || !foundView4 {
		t.Errorf("exposing views not among projections (view1=%v view4=%v)", foundView1, foundView4)
	}
}

func TestAdversarialShape(t *testing.T) {
	ds := Adversarial(500, 1)
	if ds.D() != 8 {
		t.Fatalf("D = %d", ds.D())
	}
	if ds.N() != 500+50+3 {
		t.Fatalf("N = %d", ds.N())
	}
	if ds.MissingCount() == 0 {
		t.Error("no missing values planted")
	}
	if len(OutlierIndices(ds)) != 3 {
		t.Errorf("planted = %v", OutlierIndices(ds))
	}
	// Duplicates really are exact copies.
	for j := 0; j < ds.D(); j++ {
		a, b := ds.At(0, j), ds.At(500, j)
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Errorf("duplicate record differs in column %d: %v vs %v", j, a, b)
		}
	}
}

func TestAdversarialPipelineSurvives(t *testing.T) {
	// The whole stack must run on hostile data and still recover the
	// planted outliers.
	ds := Adversarial(800, 2)
	det := core.NewDetector(ds, 5)
	res, err := det.EvolutionaryRestarts(core.EvoOptions{K: 2, M: 30, Seed: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := Recall(res.Outliers, OutlierIndices(ds))
	if rec < 1 {
		t.Errorf("adversarial recall = %.0f%%, want 100%%", rec*100)
	}
	// Sampled scoring also survives (NaNs only where rows are missing).
	sc, err := det.SampleScores(core.SampledScoreOptions{K: 2, Samples: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.TailMean) != ds.N() {
		t.Error("score vector wrong length")
	}
}

func TestAdversarialPanicsSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n<50 did not panic")
		}
	}()
	Adversarial(10, 1)
}
