package synth

import (
	"math"

	"hido/internal/dataset"
	"hido/internal/xrand"
)

// Adversarial generates a data set deliberately hostile to naive
// discretization and distance code — the messy shapes §3 says the UCI
// files were "cleaned" of, exercised on purpose:
//
//   - a heavily tied discrete column (Zipf-distributed small integers,
//     so equi-depth ranges cannot be balanced);
//   - a column that is one constant except for a handful of records;
//   - an exponentially skewed column spanning six orders of magnitude;
//   - a column with 30% missing values;
//   - two correlated continuous columns carrying the planted
//     structure, plus uniform noise columns;
//   - duplicated records (exact copies), which break naive
//     kNN assumptions (zero distances) and test LOF's duplicate
//     handling.
//
// The planted outliers (label LabelOutlier) violate the correlated
// pair exactly as in Generate. Downstream code must survive — and
// still find them.
func Adversarial(n int, seed uint64) *dataset.Dataset {
	if n < 50 {
		panic("synth: Adversarial needs n >= 50")
	}
	r := xrand.New(seed)
	names := []string{
		"zipf", "almost_const", "logscale", "holey",
		"corr_a", "corr_b", "noise_1", "noise_2",
	}
	ds := dataset.New(names, n+n/10+3)

	row := make([]float64, len(names))
	emit := func() {
		f := r.Float64()
		row[0] = float64(r.Zipf(8, 1.4) + 1)
		row[1] = 7
		if r.Bernoulli(0.02) {
			row[1] = float64(r.IntRange(8, 12))
		}
		row[2] = math.Exp(14 * r.Float64()) // 1 .. ~1.2e6
		if r.Bernoulli(0.3) {
			row[3] = math.NaN()
		} else {
			row[3] = r.Float64()
		}
		row[4] = f
		row[5] = clamp01(f + 0.03*r.Norm())
		row[6] = r.Float64()
		row[7] = r.Float64()
		ds.AppendRow(row, LabelNormal)
	}
	for i := 0; i < n; i++ {
		emit()
	}
	// Exact duplicates of early records.
	for i := 0; i < n/10; i++ {
		ds.AppendRow(ds.RowView(i), LabelNormal)
	}
	// Planted outliers: anti-correlated (corr_a, corr_b) pairs.
	for i := 0; i < 3; i++ {
		emit()
		last := ds.N() - 1
		ds.SetAt(last, 4, 0.02+0.02*r.Float64())
		ds.SetAt(last, 5, 0.98-0.02*r.Float64())
		ds.Labels[last] = LabelOutlier
	}
	return ds
}
