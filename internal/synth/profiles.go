package synth

import (
	"fmt"

	"hido/internal/dataset"
)

// Profile identifies one of the data-set shapes used in the paper's
// Table 1. N and D match the UCI originals the paper reports
// (dimensionality in parentheses in the table); the correlation
// structure is synthetic with known ground truth.
type Profile struct {
	Name string
	N, D int
	// GroupSpec: sizes of the correlated groups planted in the data.
	GroupSizes []int
	// Outliers planted.
	Outliers int
	// Phi and K are the grid parameters the experiment harness uses
	// for this profile (chosen per §2.4 so that singleton cubes remain
	// meaningfully sparse).
	Phi, K int
}

// Table1Profiles returns the five data-set shapes of Table 1, in the
// paper's row order.
// Grid parameters follow §2.4: phi^k is sized so a singleton cube
// sits near the paper's reported qualities (S ≈ −2.8 .. −3.6), i.e.
// phi^k ≈ N/13.
func Table1Profiles() []Profile {
	return []Profile{
		{Name: "BreastCancer", N: 699, D: 14, GroupSizes: []int{4, 3}, Outliers: 8, Phi: 7, K: 2},
		{Name: "Ionosphere", N: 351, D: 34, GroupSizes: []int{5, 4, 3}, Outliers: 6, Phi: 3, K: 3},
		{Name: "Segmentation", N: 2310, D: 19, GroupSizes: []int{5, 4}, Outliers: 12, Phi: 6, K: 3},
		{Name: "Musk", N: 6598, D: 160, GroupSizes: []int{8, 6, 6, 5, 5}, Outliers: 20, Phi: 9, K: 3},
		{Name: "Machine", N: 209, D: 8, GroupSizes: []int{3, 2}, Outliers: 4, Phi: 4, K: 2},
	}
}

// ProfileByName returns the named Table 1 profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Table1Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("synth: unknown profile %q", name)
}

// Generate builds the profile's data set, deterministic per seed.
func (p Profile) Generate(seed uint64) (*dataset.Dataset, error) {
	groups := make([]Group, len(p.GroupSizes))
	next := 0
	for gi, sz := range p.GroupSizes {
		dims := make([]int, sz)
		for i := range dims {
			dims[i] = next
			next++
		}
		// Moderate noise keeps the correlation band wide enough that
		// off-diagonal cell counts decay gradually; the best-m landscape
		// then has genuine structure for the searches to differ on,
		// rather than saturating at identical singleton cells.
		g := Group{Dims: dims, Noise: 0.15}
		if sz >= 3 {
			g.Flip = []int{sz - 1} // one anti-correlated member per group
		}
		groups[gi] = g
	}
	if next > p.D {
		return nil, fmt.Errorf("synth: profile %s groups need %d dims, have %d", p.Name, next, p.D)
	}
	ds, err := Generate(Config{
		Name:        p.Name,
		N:           p.N - p.Outliers,
		D:           p.D,
		Groups:      groups,
		Outliers:    p.Outliers,
		OutlierDims: 2,
		Scale:       true,
	}, seed)
	if err != nil {
		return nil, err
	}
	return ds, nil
}
