package synth

import (
	"hido/internal/dataset"
	"hido/internal/xrand"
)

// FigureOneViews are the four 2-dimensional views of Figure 1, as
// (dimension, dimension) pairs into the generated data set. Views 1
// and 4 are structured (tightly correlated) and expose the planted
// points A and B; views 2 and 3 are diffuse noise in which A and B
// look perfectly average.
var FigureOneViews = [4][2]int{
	{0, 1}, // view 1: structured, exposes A
	{2, 3}, // view 2: noisy
	{4, 5}, // view 3: noisy
	{6, 7}, // view 4: structured, exposes B
}

// FigureOneN is the number of background records in the Figure 1
// stand-in; the planted points A and B follow at indices FigureOneN
// and FigureOneN+1.
const FigureOneN = 500

// FigureOneD is the dimensionality of the Figure 1 stand-in.
const FigureOneD = 10

// FigureOne generates the data set behind Figure 1's argument: a
// 10-dimensional set where dims (0,1) and (6,7) carry tight linear
// structure, dims (2,3) and (4,5) are pure noise, and dims (8,9) are
// additional noise. Point A (index FigureOneN, label "A") violates
// the (0,1) structure only; point B (index FigureOneN+1, label "B")
// violates the (6,7) structure only. In every other view — and in
// full-dimensional distance — both look average, which is the paper's
// argument for mining projections.
func FigureOne(seed uint64) *dataset.Dataset {
	r := xrand.New(seed)
	names := make([]string, FigureOneD)
	for j := range names {
		names[j] = []string{"v1x", "v1y", "v2x", "v2y", "v3x", "v3y", "v4x", "v4y", "n1", "n2"}[j]
	}
	ds := dataset.New(names, FigureOneN+2)

	row := make([]float64, FigureOneD)
	for i := 0; i < FigureOneN; i++ {
		f1 := r.Float64()
		row[0] = f1
		row[1] = clamp01(f1 + r.NormMS(0, 0.02))
		row[2], row[3] = r.Float64(), r.Float64()
		row[4], row[5] = r.Float64(), r.Float64()
		f4 := r.Float64()
		row[6] = f4
		row[7] = clamp01(1 - f4 + r.NormMS(0, 0.02)) // anti-correlated band
		row[8], row[9] = r.Float64(), r.Float64()
		ds.AppendRow(row, LabelNormal)
	}

	// Point A: off the view-1 diagonal, average in every other dim.
	row[0], row[1] = 0.15, 0.9
	row[2], row[3] = 0.5, 0.45
	row[4], row[5] = 0.55, 0.5
	f4 := 0.5
	row[6], row[7] = f4, 1-f4
	row[8], row[9] = 0.48, 0.52
	ds.AppendRow(row, "A")

	// Point B: off the view-4 anti-diagonal, average elsewhere.
	f1 := 0.5
	row[0], row[1] = f1, f1
	row[2], row[3] = 0.45, 0.55
	row[4], row[5] = 0.5, 0.48
	row[6], row[7] = 0.12, 0.08
	row[8], row[9] = 0.52, 0.5
	ds.AppendRow(row, "B")

	return ds
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
