package synth

import (
	"math"

	"hido/internal/dataset"
	"hido/internal/xrand"
)

// HousingNames are the 13 attributes of the Boston housing stand-in
// (the paper drops the original's single binary attribute, CHAS).
var HousingNames = []string{
	"CRIM",    // per-capita crime rate
	"ZN",      // residential land zoned for large lots
	"INDUS",   // non-retail business acres per town
	"NOX",     // nitric oxide concentration
	"RM",      // average rooms per dwelling
	"AGE",     // proportion of pre-1940 units
	"DIS",     // distance to employment centers
	"RAD",     // index of accessibility to radial highways
	"TAX",     // property tax rate
	"PTRATIO", // pupil-teacher ratio
	"B",       // demographic index
	"LSTAT",   // % lower-status population
	"MEDV",    // median home value, $1000s
}

// HousingN matches the UCI Boston housing record count.
const HousingN = 506

// Housing generates the 506×13 Boston-housing stand-in with the
// correlation structure the paper's case study narrates, plus three
// planted contrarian records reproducing its examples (indices
// returned by HousingPlanted):
//
//   - high crime and high pupil-teacher ratio but *low* distance to
//     employment centers (typically such localities are far out);
//   - low NOX despite a high proportion of pre-1940 houses and high
//     highway accessibility (the latter two usually mean high NOX);
//   - low crime and modest business acreage but a *low* median price
//     (those features usually indicate high prices).
//
// A single latent "urbanization" factor u drives the attributes:
// urban areas have high crime, NOX, AGE, RAD, TAX, PTRATIO, LSTAT and
// high DIS (per the paper's narration that high-crime localities are
// typically far from employment centers), while ZN, RM and MEDV fall
// with u.
func Housing(seed uint64) *dataset.Dataset {
	r := xrand.New(seed)
	ds := dataset.New(HousingNames, HousingN)

	row := make([]float64, len(HousingNames))
	fill := func(u float64) {
		jitter := func(sd float64) float64 { return r.NormMS(0, sd) }
		row[0] = math.Max(0.005, math.Exp(4.2*u-3.5)+jitter(0.05)) // CRIM: 0.03..2+
		row[1] = math.Max(0, 90*(1-u)+jitter(8))                   // ZN
		row[2] = 2 + 20*u + jitter(1.5)                            // INDUS
		row[3] = 0.38 + 0.42*u + jitter(0.02)                      // NOX
		row[4] = 7.2 - 1.8*u + jitter(0.25)                        // RM
		row[5] = math.Min(100, math.Max(3, 25+75*u+jitter(8)))     // AGE
		row[6] = 1.1 + 9.5*u + jitter(0.6)                         // DIS (paper's narration)
		row[7] = math.Max(1, math.Floor(1+23*u+jitter(1.2)))       // RAD
		row[8] = 190 + 500*u + jitter(25)                          // TAX
		row[9] = 13 + 8.5*u + jitter(0.7)                          // PTRATIO
		row[10] = 396 - 120*u + jitter(15)                         // B
		row[11] = 2 + 28*u + jitter(2)                             // LSTAT
		row[12] = math.Max(5, 46-32*u+jitter(2.5))                 // MEDV
	}

	for i := 0; i < HousingN-3; i++ {
		fill(r.Float64())
		ds.AppendRow(row, LabelNormal)
	}

	// Planted record 1 (paper: crime 1.628, PT ratio 21.20, DIS 1.4394):
	// an urban-looking locality that is nevertheless close in.
	fill(0.9)
	row[0], row[9], row[6] = 1.628, 21.20, 1.4394
	ds.AppendRow(row, LabelOutlier)

	// Planted record 2 (paper: NOX 0.453, AGE 93.40, RAD 8): old,
	// highway-accessible, yet clean air.
	fill(0.75)
	row[3], row[5], row[7] = 0.453, 93.40, 8
	ds.AppendRow(row, LabelOutlier)

	// Planted record 3 (paper: CRIM 0.04741, INDUS 11.93, MEDV 11.9):
	// the contrarian cheap-but-safe locality.
	fill(0.25)
	row[0], row[2], row[12] = 0.04741, 11.93, 11.9
	ds.AppendRow(row, LabelOutlier)

	return ds
}

// HousingPlanted returns the indices of the three planted contrarian
// records, in the order documented on Housing.
func HousingPlanted() [3]int {
	return [3]int{HousingN - 3, HousingN - 2, HousingN - 1}
}
