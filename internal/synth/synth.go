// Package synth generates the synthetic data sets that stand in for
// the UCI files used by the paper's evaluation (the environment is
// offline; see DESIGN.md §3 for the substitution argument).
//
// The generators plant exactly the structure the paper's claims rest
// on:
//
//   - correlated attribute groups driven by latent factors, so that
//     anti-correlated grid-cell combinations in those subspaces are
//     empty — the "needle in a haystack" cells of §1.4 (young age ∧
//     diabetes);
//   - planted outliers placed in such cells: points that look average
//     in every individual attribute but occupy a rare combination —
//     the points A and B of Figure 1;
//   - pure-noise attributes that dilute full-dimensional distances,
//     which is what defeats the kNN baselines in high dimensions;
//   - optional missing values (§1.2 notes the projection method
//     tolerates them natively).
//
// Every record is labeled ("normal" or "outlier"/a class code), giving
// the ground truth the evaluation harness scores against.
package synth

import (
	"fmt"
	"math"

	"hido/internal/dataset"
	"hido/internal/xrand"
)

// LabelNormal and LabelOutlier are the ground-truth labels attached by
// the generic generator.
const (
	LabelNormal  = "normal"
	LabelOutlier = "outlier"
)

// Group describes one correlated attribute group: all member
// dimensions are monotone transforms of a shared latent factor plus
// noise, so their pairwise grids are concentrated near a diagonal.
type Group struct {
	// Dims lists the member dimensions (indices into the data set).
	Dims []int
	// Noise is the per-dimension Gaussian noise standard deviation
	// applied to the latent factor (factor is uniform on [0,1]); small
	// values give tight correlation and thus emptier off-diagonal
	// cells. Zero selects the default 0.03.
	Noise float64
	// Flip lists member positions (indices into Dims) whose transform
	// decreases in the factor, giving negative correlation.
	Flip []int
}

// Config parameterizes the generic generator.
type Config struct {
	// Name labels the data set (used in reports).
	Name string
	// N is the number of normal records; D the dimensionality.
	N, D int
	// Groups are the correlated attribute groups. Dimensions not in
	// any group are independent noise attributes.
	Groups []Group
	// Outliers is the number of planted outliers appended after the N
	// normal records (indices N..N+Outliers-1).
	Outliers int
	// OutlierDims is how many dimensions of one group each planted
	// outlier perturbs (default 2). The planted point takes a
	// factor-low value in some members and a factor-high value in
	// others — individually unremarkable, jointly near-impossible.
	OutlierDims int
	// MissingRate is the probability that any normal record's
	// attribute is missing (NaN). Planted outliers are never missing.
	MissingRate float64
	// Scale, when true, gives each dimension a random affine scale and
	// offset so attributes have realistic heterogeneous units.
	Scale bool
}

func (c Config) validate() error {
	if c.N < 1 || c.D < 1 {
		return fmt.Errorf("synth: N=%d, D=%d must be positive", c.N, c.D)
	}
	if c.MissingRate < 0 || c.MissingRate >= 1 {
		return fmt.Errorf("synth: missing rate %v outside [0,1)", c.MissingRate)
	}
	seen := make([]bool, c.D)
	for gi, g := range c.Groups {
		if len(g.Dims) < 2 {
			return fmt.Errorf("synth: group %d has %d dims, need >= 2", gi, len(g.Dims))
		}
		for _, j := range g.Dims {
			if j < 0 || j >= c.D {
				return fmt.Errorf("synth: group %d dim %d out of range", gi, j)
			}
			if seen[j] {
				return fmt.Errorf("synth: dim %d in multiple groups", j)
			}
			seen[j] = true
		}
		for _, f := range g.Flip {
			if f < 0 || f >= len(g.Dims) {
				return fmt.Errorf("synth: group %d flip index %d out of range", gi, f)
			}
		}
	}
	if c.Outliers > 0 && len(c.Groups) == 0 {
		return fmt.Errorf("synth: planted outliers need at least one group")
	}
	return nil
}

// Generate builds the data set described by the config, deterministic
// per seed. The first cfg.N records are normal; the remaining
// cfg.Outliers records are planted outliers labeled LabelOutlier.
func Generate(cfg Config, seed uint64) (*dataset.Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.OutlierDims == 0 {
		cfg.OutlierDims = 2
	}
	r := xrand.New(seed)

	names := make([]string, cfg.D)
	for j := range names {
		names[j] = fmt.Sprintf("a%02d", j)
	}
	ds := dataset.New(names, cfg.N+cfg.Outliers)

	// Per-dimension affine transforms.
	scale := make([]float64, cfg.D)
	offset := make([]float64, cfg.D)
	for j := range scale {
		scale[j], offset[j] = 1, 0
		if cfg.Scale {
			scale[j] = math.Exp(r.NormMS(0, 1.2))
			offset[j] = r.NormMS(0, 10)
		}
	}

	grouped := make([]int, cfg.D) // dim → group index, -1 for noise dims
	flipped := make([]bool, cfg.D)
	for j := range grouped {
		grouped[j] = -1
	}
	for gi, g := range cfg.Groups {
		for pi, j := range g.Dims {
			grouped[j] = gi
			for _, f := range g.Flip {
				if f == pi {
					flipped[j] = true
				}
			}
		}
	}

	noiseOf := func(g Group) float64 {
		if g.Noise == 0 {
			return 0.03
		}
		return g.Noise
	}

	// value produces dimension j's raw value given its group factor.
	value := func(j int, factors []float64) float64 {
		gi := grouped[j]
		var base float64
		if gi < 0 {
			base = r.Float64()
		} else {
			f := factors[gi]
			if flipped[j] {
				f = 1 - f
			}
			base = f + r.NormMS(0, noiseOf(cfg.Groups[gi]))
		}
		return base*scale[j] + offset[j]
	}

	row := make([]float64, cfg.D)
	factors := make([]float64, len(cfg.Groups))
	for i := 0; i < cfg.N; i++ {
		for gi := range factors {
			factors[gi] = r.Float64()
		}
		for j := range row {
			if cfg.MissingRate > 0 && r.Bernoulli(cfg.MissingRate) {
				row[j] = math.NaN()
			} else {
				row[j] = value(j, factors)
			}
		}
		ds.AppendRow(row, LabelNormal)
	}

	// Planted outliers: a normal-looking record except that, inside one
	// group, some members read a low factor and the rest of the
	// perturbed members read a high factor.
	for o := 0; o < cfg.Outliers; o++ {
		for gi := range factors {
			factors[gi] = r.Float64()
		}
		for j := range row {
			row[j] = value(j, factors)
		}
		g := cfg.Groups[o%len(cfg.Groups)]
		k := cfg.OutlierDims
		if k > len(g.Dims) {
			k = len(g.Dims)
		}
		chosen := r.Sample(len(g.Dims), k)
		lo := 0.02 + 0.03*r.Float64()
		hi := 0.98 - 0.03*r.Float64()
		for ci, pi := range chosen {
			j := g.Dims[pi]
			f := lo
			if ci >= (k+1)/2 {
				f = hi
			}
			if flipped[j] {
				f = 1 - f
			}
			row[j] = f*scale[j] + offset[j]
		}
		ds.AppendRow(row, LabelOutlier)
	}
	return ds, nil
}

// OutlierIndices returns the ground-truth planted outlier indices of a
// generated data set (all records labeled LabelOutlier).
func OutlierIndices(ds *dataset.Dataset) []int {
	var out []int
	for i := 0; i < ds.N(); i++ {
		if ds.Label(i) == LabelOutlier {
			out = append(out, i)
		}
	}
	return out
}

// Recall returns the fraction of truth indices present in found.
func Recall(found []int, truth []int) float64 {
	if len(truth) == 0 {
		return 0
	}
	set := make(map[int]bool, len(found))
	for _, i := range found {
		set[i] = true
	}
	hit := 0
	for _, i := range truth {
		if set[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}
