package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hido/internal/core"
	"hido/internal/discretize"
	"hido/internal/evo"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenAblationResult is a fixed, fully-populated result so the
// golden file exercises every section of the report — including the
// workers × cache table — without depending on timing or hardware.
func goldenAblationResult() *AblationResult {
	return &AblationResult{
		Crossover: []CrossoverAblationRow{
			{Profile: "Ionosphere", Kind: core.OptimizedCrossover, Quality: -3.412,
				Time: 1520 * time.Millisecond, Recall: 0.92, Converge: true},
			{Profile: "Ionosphere", Kind: core.TwoPointCrossover, Quality: -2.871,
				Time: 1730 * time.Millisecond, Recall: 0.67, Converge: false},
		},
		Selection: []SelectionAblationRow{
			{Strategy: evo.RankRoulette, Quality: -3.412, Recall: 0.92},
			{Strategy: evo.Tournament, Quality: -3.298, Recall: 0.83},
			{Strategy: evo.Uniform, Quality: -2.455, Recall: 0.50},
		},
		GridMethod: []GridAblationRow{
			{Method: discretize.EquiDepth, Quality: -3.412, Recall: 0.92},
			{Method: discretize.EquiWidth, Quality: -3.120, Recall: 0.75},
		},
		PopSize: []PopAblationRow{
			{PopSize: 20, Quality: -2.950, Time: 310 * time.Millisecond},
			{PopSize: 50, Quality: -3.221, Time: 760 * time.Millisecond},
			{PopSize: 100, Quality: -3.412, Time: 1520 * time.Millisecond},
			{PopSize: 200, Quality: -3.440, Time: 3110 * time.Millisecond},
		},
		Topology: []TopologyAblationRow{
			{Name: "single-pop-120", Quality: -3.430, Distinct: 20, Evals: 48211, Time: 1830 * time.Millisecond},
			{Name: "restarts-3x40", Quality: -3.310, Distinct: 43, Evals: 51877, Time: 2010 * time.Millisecond},
			{Name: "islands-3x40", Quality: -3.355, Distinct: 37, Evals: 50104, Time: 1960 * time.Millisecond},
		},
		Parallel: []ParallelAblationRow{
			{Workers: 1, Cache: false, Quality: -3.412, Time: 4510 * time.Millisecond,
				Speedup: 1.0, Identical: true},
			{Workers: 1, Cache: true, Quality: -3.412, Time: 3120 * time.Millisecond,
				Speedup: 1.45, Hits: 30518, Misses: 17693, Size: 17693, Identical: true},
			{Workers: 2, Cache: false, Quality: -3.412, Time: 2410 * time.Millisecond,
				Speedup: 1.87, Identical: true},
			{Workers: 2, Cache: true, Quality: -3.412, Time: 1690 * time.Millisecond,
				Speedup: 2.67, Hits: 30518, Misses: 17693, Size: 17693, Identical: true},
			{Workers: 4, Cache: false, Quality: -3.412, Time: 1350 * time.Millisecond,
				Speedup: 3.34, Identical: true},
			{Workers: 4, Cache: true, Quality: -3.412, Time: 980 * time.Millisecond,
				Speedup: 4.60, Hits: 30518, Misses: 17693, Size: 17693, Identical: true},
		},
		Brute: []BruteAblationRow{
			{Workers: 1, Pruning: false, Time: 980 * time.Millisecond,
				Speedup: 1.0, Evals: 48450000, Identical: true},
			{Workers: 1, Pruning: true, Time: 265 * time.Millisecond,
				Speedup: 3.70, Evals: 9797560, Pruned: 429993, Identical: true},
			{Workers: 2, Pruning: false, Time: 505 * time.Millisecond,
				Speedup: 1.94, Evals: 48450000, Identical: true},
			{Workers: 2, Pruning: true, Time: 140 * time.Millisecond,
				Speedup: 7.00, Evals: 9797560, Pruned: 429993, Identical: true},
			{Workers: 4, Pruning: false, Time: 262 * time.Millisecond,
				Speedup: 3.74, Evals: 48450000, Identical: true},
			{Workers: 4, Pruning: true, Time: 76 * time.Millisecond,
				Speedup: 12.89, Evals: 9797560, Pruned: 429993, Identical: true},
			{Workers: 8, Pruning: false, Time: 143 * time.Millisecond,
				Speedup: 6.85, Evals: 48450000, Identical: true},
			{Workers: 8, Pruning: true, Time: 44 * time.Millisecond,
				Speedup: 22.27, Evals: 9797560, Pruned: 429993, Identical: true},
		},
		PhiSweep: []PhiAblationRow{
			{Phi: 3, AdvisedK: 7, SingletonSparsity: -0.71, Quality: -3.050, Recall: 0.83},
			{Phi: 5, AdvisedK: 4, SingletonSparsity: -1.33, Quality: -3.412, Recall: 0.92},
			{Phi: 8, AdvisedK: 3, SingletonSparsity: -1.92, Quality: -3.388, Recall: 0.92},
			{Phi: 12, AdvisedK: 2, SingletonSparsity: -2.46, Quality: -3.154, Recall: 0.83},
		},
	}
}

// TestFormatAblationGolden pins the `hidobench -exp ablation` report
// byte for byte, so format drift — a reordered column, a changed
// verb — is a visible diff instead of a silent change to downstream
// parsers. Regenerate with: go test ./internal/bench -run Golden -update
func TestFormatAblationGolden(t *testing.T) {
	got := FormatAblation(goldenAblationResult())
	path := filepath.Join("testdata", "ablation_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("ablation report drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
