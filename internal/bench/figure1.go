package bench

import (
	"fmt"
	"strings"

	"hido/internal/baseline/knnout"
	"hido/internal/core"
	"hido/internal/dataset"
	"hido/internal/synth"
)

// Figure1Result reproduces the argument of Figure 1: the planted
// points A and B are exposed by the structured 2-d views and missed
// by full-dimensional distance ranking.
type Figure1Result struct {
	// FoundA and FoundB report whether the projection search covered
	// the planted points.
	FoundA, FoundB bool
	// ViewExposes[v] reports whether one of the retained projections
	// constrains exactly the dims of view v (0-based; views 0 and 3
	// are structured, 1 and 2 are noise).
	ViewExposes [4]bool
	// KNNRankA and KNNRankB are the 1-based ranks of A and B under the
	// full-dimensional kth-NN distance score (larger rank = less
	// outlying). The paper's argument predicts ranks far from the top.
	KNNRankA, KNNRankB int
	// N is the total number of records.
	N int
}

// RunFigure1 regenerates the Figure 1 demonstration.
func RunFigure1(seed uint64) (*Figure1Result, error) {
	ds := synth.FigureOne(seed)
	det := core.NewDetector(ds, 5)
	res, err := det.BruteForce(core.BruteForceOptions{K: 2, M: 10})
	if err != nil {
		return nil, err
	}
	out := &Figure1Result{N: ds.N()}
	out.FoundA = res.OutlierSet.Test(synth.FigureOneN)
	out.FoundB = res.OutlierSet.Test(synth.FigureOneN + 1)
	for _, p := range res.Projections {
		dims := p.Cube.Dims()
		if len(dims) != 2 {
			continue
		}
		for v, view := range synth.FigureOneViews {
			if dims[0] == view[0] && dims[1] == view[1] {
				out.ViewExposes[v] = true
			}
		}
	}

	// Full-dimensional ranking: where do A and B fall?
	scores, err := knnout.Scores(ds.Standardize(), 5, 0)
	if err != nil {
		return nil, err
	}
	rank := func(idx int) int {
		r := 1
		for j, s := range scores {
			if j != idx && s > scores[idx] {
				r++
			}
		}
		return r
	}
	out.KNNRankA = rank(synth.FigureOneN)
	out.KNNRankB = rank(synth.FigureOneN + 1)
	return out, nil
}

// Figure1Views extracts the four 2-d views as small datasets (columns
// x, y plus labels), ready to be written as CSV for plotting — the
// data behind each panel of Figure 1.
func Figure1Views(seed uint64) [4]*dataset.Dataset {
	ds := synth.FigureOne(seed)
	var out [4]*dataset.Dataset
	for v, view := range synth.FigureOneViews {
		out[v] = ds.SelectColumns([]int{view[0], view[1]})
	}
	return out
}

// FormatFigure1 renders the demonstration outcome.
func FormatFigure1(r *Figure1Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "figure 1 demonstration (N=%d)\n", r.N)
	fmt.Fprintf(&b, "  projection search found A: %v, B: %v\n", r.FoundA, r.FoundB)
	for v, ok := range r.ViewExposes {
		kind := "noise"
		if v == 0 || v == 3 {
			kind = "structured"
		}
		fmt.Fprintf(&b, "  view %d (%s) among retained projections: %v\n", v+1, kind, ok)
	}
	fmt.Fprintf(&b, "  full-dimensional kNN rank of A: %d/%d, B: %d/%d (1 = most outlying)\n",
		r.KNNRankA, r.N, r.KNNRankB, r.N)
	return b.String()
}
