package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"hido/internal/core"
	"hido/internal/cube"
	"hido/internal/synth"
)

// ScalingRow is one dimensionality point of the combinatorial-scaling
// experiment behind §3's argument that brute force is untenable: the
// search space C(d,k)·φ^k against measured brute-force and
// evolutionary cost.
type ScalingRow struct {
	D, K, Phi int
	SpaceSize uint64

	BruteOK    bool
	BruteTime  time.Duration
	BruteEvals int

	EvoTime  time.Duration
	EvoEvals int
}

// ScalingOptions configures the sweep.
type ScalingOptions struct {
	Seed uint64
	// Dims lists the dimensionalities to sweep (default 8..24 step 4,
	// plus the paper's d=20 reference point).
	Dims []int
	// K and Phi fix the projection parameters (defaults 3 and 6).
	K, Phi int
	// N is the record count (default 500).
	N int
	// BruteBudget bounds each brute-force run (default 5s).
	BruteBudget time.Duration
}

func (o ScalingOptions) withDefaults() ScalingOptions {
	if o.Dims == nil {
		o.Dims = []int{8, 12, 16, 20, 24}
	}
	if o.K == 0 {
		o.K = 3
	}
	if o.Phi == 0 {
		o.Phi = 6
	}
	if o.N == 0 {
		o.N = 500
	}
	if o.BruteBudget == 0 {
		o.BruteBudget = 5 * time.Second
	}
	return o
}

// RunScaling measures brute-force vs evolutionary cost as the data
// dimensionality grows.
func RunScaling(opt ScalingOptions) ([]ScalingRow, error) {
	opt = opt.withDefaults()
	rows := make([]ScalingRow, 0, len(opt.Dims))
	for _, d := range opt.Dims {
		ds, err := synth.Generate(synth.Config{
			Name: fmt.Sprintf("scale-d%d", d), N: opt.N, D: d,
			Groups:   []synth.Group{{Dims: []int{0, 1, 2}}},
			Outliers: 3,
		}, opt.Seed)
		if err != nil {
			return nil, err
		}
		det := core.NewDetector(ds, opt.Phi)
		row := ScalingRow{D: d, K: opt.K, Phi: opt.Phi,
			SpaceSize: cube.SpaceSize(d, opt.K, opt.Phi)}

		// The experiment's claim is that the *unpruned* enumeration cost
		// tracks the closed form C(d,k)·φ^k exactly; coverage pruning
		// would break that identity (its speedup is measured separately
		// in the brute-force ablation).
		res, err := det.BruteForce(core.BruteForceOptions{
			K: opt.K, M: 10, MaxDuration: opt.BruteBudget,
			DisablePruning: true,
		})
		switch {
		case errors.Is(err, core.ErrBudgetExceeded):
			row.BruteOK = false
			row.BruteEvals = res.Evaluations
		case err != nil:
			return nil, err
		default:
			row.BruteOK = true
			row.BruteTime = res.Elapsed
			row.BruteEvals = res.Evaluations
		}

		evo, err := det.Evolutionary(core.EvoOptions{K: opt.K, M: 10, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		row.EvoTime = evo.Elapsed
		row.EvoEvals = evo.Evaluations
		rows = append(rows, row)
	}
	return rows, nil
}

// PaperCombinatoricsClaim returns the paper's example: at d=20, k=4,
// φ=10 the space holds C(20,4)·10⁴ ≈ 4.8·10⁷ candidates ("7·10⁷" in
// the paper's rounding).
func PaperCombinatoricsClaim() uint64 {
	return cube.SpaceSize(20, 4, 10)
}

// FormatScaling renders the sweep.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %12s %12s %12s %12s %12s\n",
		"d", "space", "brute(ms)", "bruteEvals", "evo(ms)", "evoEvals")
	for _, r := range rows {
		brute := "-"
		if r.BruteOK {
			brute = fmt.Sprintf("%.0f", float64(r.BruteTime.Microseconds())/1000)
		}
		fmt.Fprintf(&b, "%6d %12d %12s %12d %12.0f %12d\n",
			r.D, r.SpaceSize, brute, r.BruteEvals,
			float64(r.EvoTime.Microseconds())/1000, r.EvoEvals)
	}
	fmt.Fprintf(&b, "paper's reference point: C(20,4)*10^4 = %d\n", PaperCombinatoricsClaim())
	return b.String()
}
