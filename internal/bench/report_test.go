package bench

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// parseCSV asserts the buffer is well-formed CSV with a header and at
// least minRows data rows, returning the records.
func parseCSV(t *testing.T, buf *bytes.Buffer, minRows int) [][]string {
	t.Helper()
	recs, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("invalid csv: %v\n%s", err, buf.String())
	}
	if len(recs) < minRows+1 {
		t.Fatalf("csv has %d rows, want >= %d\n%s", len(recs)-1, minRows, buf.String())
	}
	return recs
}

func TestTable1CSV(t *testing.T) {
	rows, err := RunTable1(Table1Options{
		Seed: 1, M: 5, BruteBudget: 20 * time.Second, Profiles: smallProfiles(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Table1CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf, len(rows))
	if recs[0][0] != "dataset" {
		t.Errorf("header = %v", recs[0])
	}
	// Numeric fields must parse.
	for _, rec := range recs[1:] {
		if _, err := strconv.ParseFloat(rec[6], 64); err != nil {
			t.Errorf("gen_quality %q not numeric", rec[6])
		}
	}
}

func TestTable2AndArrhythmiaCSV(t *testing.T) {
	rows, err := RunTable2(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Table2CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 2)

	arr := &ArrhythmiaResult{Phi: 6, K: 2, Threshold: -3, Covered: 100,
		RareCovered: 50, RareKNN: 20, RareLOF: 18, RecordingErrorSparsity: -3.3}
	buf.Reset()
	if err := ArrhythmiaCSV(&buf, arr); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf, 1)
	if recs[1][3] != "100" {
		t.Errorf("covered column = %q", recs[1][3])
	}
}

func TestScalingAndShellCSV(t *testing.T) {
	sc, err := RunScaling(ScalingOptions{Seed: 1, Dims: []int{6, 8}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ScalingCSV(&buf, sc); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 2)

	sh, err := RunShell(ShellOptions{Seed: 1, Dims: []int{2, 10}, N: 150})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ShellCSV(&buf, sh); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 2)
}

func TestEnsembleQualityCSV(t *testing.T) {
	rows := []EnsembleQualityRow{
		{Generator: "planted(Machine)", Method: "single-evo[x3]", AUC: 0.99, AP: 0.9, P10: 0.8},
		{Generator: "planted(Machine)", Method: "ensemble-rank[16]", AUC: 0.95, AP: 0.85, P10: 0.7},
	}
	var buf bytes.Buffer
	if err := EnsembleQualityCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf, 2)
	if recs[0][0] != "generator" || recs[0][2] != "auc" {
		t.Errorf("header = %v", recs[0])
	}
	if recs[1][1] != "single-evo[x3]" {
		t.Errorf("method column = %q", recs[1][1])
	}
	for _, rec := range recs[1:] {
		if _, err := strconv.ParseFloat(rec[2], 64); err != nil {
			t.Errorf("auc %q not numeric", rec[2])
		}
	}
}

func TestAblationCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ab, err := RunAblation(AblationOptions{Seed: 1, Profile: "Machine", BrutePhi: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := AblationCSV(&buf, ab); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf, 10)
	sections := map[string]bool{}
	for _, rec := range recs[1:] {
		sections[rec[0]] = true
	}
	for _, want := range []string{"crossover", "selection", "grid", "popsize", "topology", "phi", "brute"} {
		if !sections[want] {
			t.Errorf("section %q missing", want)
		}
	}
}

func TestWriteAllCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	paths, err := WriteAllCSV(dir, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 9 {
		t.Fatalf("only %d files written: %v", len(paths), paths)
	}
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil || info.Size() == 0 {
			t.Errorf("file %s missing or empty", p)
		}
		if filepath.Dir(p) != dir {
			t.Errorf("file %s outside target dir", p)
		}
	}
}
