// Package bench drives the reproduction of every table and figure in
// the paper's evaluation (§3): Table 1 (brute force vs the two
// evolutionary variants on five data sets), Table 2 and the arrhythmia
// rare-class study, the Figure 1 subspace-visibility demonstration,
// the Boston-housing interpretability case study, the combinatorial
// scaling argument, and this reproduction's own ablations.
//
// Every experiment is deterministic per seed and returns a structured
// result plus a text rendering, so the same drivers back the
// hidobench CLI, the root-level testing.B benchmarks, and the
// EXPERIMENTS.md record.
package bench

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"hido/internal/core"
	"hido/internal/obs"
	"hido/internal/synth"
)

// Table1Options configures the Table 1 reproduction.
type Table1Options struct {
	// Seed drives data generation and the evolutionary searches.
	Seed uint64
	// M is the number of best projections tracked (the paper uses 20).
	M int
	// BruteBudget bounds each brute-force run; runs that exceed it are
	// reported as the paper reports musk: no time, no quality ("-").
	BruteBudget time.Duration
	// Profiles defaults to the paper's five data sets.
	Profiles []synth.Profile
	// SkipBruteAboveD skips brute force entirely for data sets with
	// more dimensions (0 = never skip; the budget still applies).
	SkipBruteAboveD int
	// BruteWorkers is the worker count for the brute-force column
	// (0 = serial, <0 = all CPUs); results are identical either way.
	BruteWorkers int
	// Observer, when set, receives every search's events, with run IDs
	// derived from the profile and column ("shuttle/brute",
	// "shuttle/gen-opt"). Never changes the rows.
	Observer obs.Observer
}

func (o Table1Options) withDefaults() Table1Options {
	if o.M == 0 {
		o.M = 20
	}
	if o.BruteBudget == 0 {
		o.BruteBudget = 30 * time.Second
	}
	if o.Profiles == nil {
		o.Profiles = synth.Table1Profiles()
	}
	return o
}

// Table1Row is one data-set row of Table 1: wall time and mean
// sparsity quality of the best M non-empty projections for the brute
// force, the two-point GA ("Gen"), and the optimized-crossover GA
// ("Gen°").
type Table1Row struct {
	Profile synth.Profile

	BruteOK      bool // false → "-" (budget exceeded, as for musk)
	BruteTime    time.Duration
	BruteQuality float64
	BruteEvals   int

	GenTime    time.Duration
	GenQuality float64
	GenEvals   int

	GenOptTime    time.Duration
	GenOptQuality float64
	GenOptEvals   int

	// QualityMatch marks rows where the optimized GA attains the
	// brute-force optimum (the paper's "*" annotation).
	QualityMatch bool
}

// RunTable1 regenerates Table 1.
func RunTable1(opt Table1Options) ([]Table1Row, error) {
	opt = opt.withDefaults()
	rows := make([]Table1Row, 0, len(opt.Profiles))
	for _, p := range opt.Profiles {
		row, err := runTable1Row(p, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: profile %s: %w", p.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runTable1Row(p synth.Profile, opt Table1Options) (Table1Row, error) {
	row := Table1Row{Profile: p}
	ds, err := p.Generate(opt.Seed)
	if err != nil {
		return row, err
	}
	det := core.NewDetector(ds, p.Phi)

	if opt.SkipBruteAboveD == 0 || p.D <= opt.SkipBruteAboveD {
		res, err := det.BruteForce(core.BruteForceOptions{
			K: p.K, M: opt.M, MaxDuration: opt.BruteBudget,
			Workers:  opt.BruteWorkers,
			Observer: opt.Observer, RunID: p.Name + "/brute",
		})
		switch {
		case errors.Is(err, core.ErrBudgetExceeded):
			row.BruteOK = false
			row.BruteEvals = res.Evaluations
		case err != nil:
			return row, err
		default:
			row.BruteOK = true
			row.BruteTime = res.Elapsed
			row.BruteQuality = res.Quality()
			row.BruteEvals = res.Evaluations
		}
	}

	gen, err := det.Evolutionary(core.EvoOptions{
		K: p.K, M: opt.M, Seed: opt.Seed, Crossover: core.TwoPointCrossover,
		Observer: opt.Observer, RunID: p.Name + "/gen",
	})
	if err != nil {
		return row, err
	}
	row.GenTime = gen.Elapsed
	row.GenQuality = gen.Quality()
	row.GenEvals = gen.Evaluations

	genOpt, err := det.Evolutionary(core.EvoOptions{
		K: p.K, M: opt.M, Seed: opt.Seed, Crossover: core.OptimizedCrossover,
		Observer: opt.Observer, RunID: p.Name + "/gen-opt",
	})
	if err != nil {
		return row, err
	}
	row.GenOptTime = genOpt.Elapsed
	row.GenOptQuality = genOpt.Quality()
	row.GenOptEvals = genOpt.Evaluations

	if row.BruteOK && !math.IsNaN(row.GenOptQuality) &&
		math.Abs(row.GenOptQuality-row.BruteQuality) < 5e-3 {
		row.QualityMatch = true
	}
	return row, nil
}

// FormatTable1 renders the rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %12s %12s %12s\n",
		"Data Set", "Brute(ms)", "Gen(ms)", "Gen°(ms)",
		"Brute(qual)", "Gen(qual)", "Gen°(qual)")
	for _, r := range rows {
		bruteT, bruteQ := "-", "-"
		if r.BruteOK {
			bruteT = fmt.Sprintf("%.0f", float64(r.BruteTime.Microseconds())/1000)
			bruteQ = fmt.Sprintf("%.2f", r.BruteQuality)
		}
		mark := ""
		if r.QualityMatch {
			mark = " (*)"
		}
		fmt.Fprintf(&b, "%-22s %10s %10.0f %10.0f %12s %12.2f %9.2f%s\n",
			fmt.Sprintf("%s (%d)", r.Profile.Name, r.Profile.D),
			bruteT,
			float64(r.GenTime.Microseconds())/1000,
			float64(r.GenOptTime.Microseconds())/1000,
			bruteQ, r.GenQuality, r.GenOptQuality, mark)
	}
	return b.String()
}
