package bench

import (
	"math"
	"strings"
	"testing"
	"time"

	"hido/internal/core"
	"hido/internal/synth"
)

// smallProfiles keeps unit tests fast: only the low-dimensional rows.
func smallProfiles(t *testing.T) []synth.Profile {
	t.Helper()
	var out []synth.Profile
	for _, p := range synth.Table1Profiles() {
		if p.D <= 20 {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		t.Fatal("no small profiles")
	}
	return out
}

func TestRunTable1SmallProfiles(t *testing.T) {
	rows, err := RunTable1(Table1Options{
		Seed: 1, M: 10, BruteBudget: 20 * time.Second, Profiles: smallProfiles(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.BruteOK {
			t.Errorf("%s: brute force exceeded budget on a small profile", r.Profile.Name)
			continue
		}
		// Brute force is the optimum: no GA may beat it.
		if r.GenOptQuality < r.BruteQuality-1e-9 {
			t.Errorf("%s: Gen° quality %.4f beats brute optimum %.4f",
				r.Profile.Name, r.GenOptQuality, r.BruteQuality)
		}
		if r.GenQuality < r.BruteQuality-1e-9 {
			t.Errorf("%s: Gen quality %.4f beats brute optimum %.4f",
				r.Profile.Name, r.GenQuality, r.BruteQuality)
		}
		// The optimized crossover is at least as good as two-point
		// (allowing a small tolerance for stochastic inversions).
		if r.GenOptQuality > r.GenQuality+0.35 {
			t.Errorf("%s: Gen° quality %.4f much worse than Gen %.4f",
				r.Profile.Name, r.GenOptQuality, r.GenQuality)
		}
		if math.IsNaN(r.GenQuality) || math.IsNaN(r.GenOptQuality) {
			t.Errorf("%s: NaN quality", r.Profile.Name)
		}
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "Machine (8)") {
		t.Errorf("FormatTable1 missing profile line:\n%s", text)
	}
}

func TestRunTable1BudgetMarksBruteUnfinished(t *testing.T) {
	p, err := synth.ProfileByName("Ionosphere")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunTable1(Table1Options{
		Seed: 1, M: 5, BruteBudget: time.Nanosecond, Profiles: []synth.Profile{p},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].BruteOK {
		t.Error("1ns budget did not mark brute force unfinished")
	}
	if !strings.Contains(FormatTable1(rows), "-") {
		t.Error("unfinished brute not rendered as \"-\"")
	}
}

func TestRunTable2MatchesPaper(t *testing.T) {
	rows, err := RunTable2(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if math.Abs(rows[0].Percentage-85.4) > 0.1 {
		t.Errorf("common percentage %.2f, paper reports 85.4", rows[0].Percentage)
	}
	if math.Abs(rows[1].Percentage-14.6) > 0.1 {
		t.Errorf("rare percentage %.2f, paper reports 14.6", rows[1].Percentage)
	}
	if len(rows[0].ClassCodes) != 5 || len(rows[1].ClassCodes) != 8 {
		t.Errorf("class code counts %d/%d, want 5/8", len(rows[0].ClassCodes), len(rows[1].ClassCodes))
	}
	if !strings.Contains(FormatTable2(rows), "85.4%") {
		t.Error("FormatTable2 missing percentage")
	}
}

func TestRunArrhythmiaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunArrhythmia(ArrhythmiaOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Errorf("advised k = %d, want 2 at N=452 phi=6 s=-3", res.K)
	}
	if res.Covered < 40 {
		t.Fatalf("only %d covered outliers", res.Covered)
	}
	// The paper's central claim: rare classes are over-represented in
	// the projection method's outliers (base rate 14.6%, paper 50.6%),
	// and more so than in the kNN baseline's.
	projFrac := res.RareFractionProjection()
	knnFrac := res.RareFractionKNN()
	if projFrac < 0.30 {
		t.Errorf("projection rare fraction %.2f, want >> 0.146 base rate", projFrac)
	}
	if projFrac <= knnFrac {
		t.Errorf("projection rare fraction %.2f not above kNN baseline %.2f", projFrac, knnFrac)
	}
	// The recording-error cube qualifies by construction.
	if res.RecordingErrorSparsity > res.Threshold {
		t.Errorf("recording-error cube S=%.2f above threshold %.2f",
			res.RecordingErrorSparsity, res.Threshold)
	}
	if !strings.Contains(FormatArrhythmia(res), "rare-class") {
		t.Error("FormatArrhythmia missing content")
	}
}

func TestRunFigure1(t *testing.T) {
	res, err := RunFigure1(1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FoundA || !res.FoundB {
		t.Errorf("planted points found: A=%v B=%v", res.FoundA, res.FoundB)
	}
	if !res.ViewExposes[0] || !res.ViewExposes[3] {
		t.Error("structured views 1/4 not among projections")
	}
	if res.ViewExposes[1] || res.ViewExposes[2] {
		t.Error("noise views 2/3 among projections")
	}
	// Full-dimensional kNN must NOT rank A and B at the very top —
	// that masking is the figure's whole point.
	if res.KNNRankA <= 2 && res.KNNRankB <= 2 {
		t.Errorf("full-dim kNN ranked A=%d B=%d at top; masking failed",
			res.KNNRankA, res.KNNRankB)
	}
	if !strings.Contains(FormatFigure1(res), "view 4") {
		t.Error("FormatFigure1 missing view lines")
	}
}

func TestFigure1Views(t *testing.T) {
	views := Figure1Views(1)
	for v, ds := range views {
		if ds.N() != synth.FigureOneN+2 || ds.D() != 2 {
			t.Errorf("view %d shape %dx%d", v, ds.N(), ds.D())
		}
	}
	if views[0].Label(synth.FigureOneN) != "A" {
		t.Error("view datasets lost labels")
	}
}

func TestRunHousing(t *testing.T) {
	res, err := RunHousing(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Projections3) == 0 || len(res.Projections4) == 0 {
		t.Fatal("no projections retained")
	}
	covered := 0
	for _, ok := range res.PlantedCovered {
		if ok {
			covered++
		}
	}
	if covered < 2 {
		t.Errorf("only %d/3 planted contrarians covered", covered)
	}
	text := FormatHousing(res)
	if !strings.Contains(text, "CRIM") && !strings.Contains(text, "planted") {
		t.Errorf("FormatHousing missing content:\n%s", text)
	}
}

func TestRunScaling(t *testing.T) {
	rows, err := RunScaling(ScalingOptions{
		Seed: 1, Dims: []int{6, 10, 14}, BruteBudget: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SpaceSize <= rows[i-1].SpaceSize {
			t.Error("space size not growing with d")
		}
		if rows[i].BruteOK && rows[i-1].BruteOK && rows[i].BruteEvals <= rows[i-1].BruteEvals {
			t.Error("brute evaluations not growing with d")
		}
	}
	// Brute evaluates the whole space; the GA must not.
	last := rows[len(rows)-1]
	if last.BruteOK && uint64(last.BruteEvals) != last.SpaceSize {
		t.Errorf("brute evals %d != space %d", last.BruteEvals, last.SpaceSize)
	}
	if uint64(last.EvoEvals) >= last.SpaceSize {
		t.Errorf("GA evaluated %d >= space %d", last.EvoEvals, last.SpaceSize)
	}
	if PaperCombinatoricsClaim() != 48450000 {
		t.Errorf("paper claim = %d", PaperCombinatoricsClaim())
	}
	if !strings.Contains(FormatScaling(rows), "space") {
		t.Error("FormatScaling missing header")
	}
}

func TestRunAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunAblation(AblationOptions{Seed: 1, Profile: "Machine", BrutePhi: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crossover) != 2 || len(res.Selection) != 3 ||
		len(res.GridMethod) != 2 || len(res.PopSize) != 4 || len(res.PhiSweep) != 4 ||
		len(res.Topology) != 3 || len(res.Brute) != 8 {
		t.Fatalf("ablation row counts wrong: %+v", res)
	}
	for _, row := range res.Brute {
		if !row.Identical {
			t.Errorf("brute cell w=%d pruning=%v diverged from the serial reference",
				row.Workers, row.Pruning)
		}
		if row.Pruning && row.Evals > res.Brute[0].Evals {
			t.Errorf("pruned cell w=%d evaluated more (%d) than the unpruned baseline (%d)",
				row.Workers, row.Evals, res.Brute[0].Evals)
		}
	}
	if res.Brute[0].Workers != 1 || res.Brute[0].Pruning || res.Brute[0].Speedup != 1.0 {
		t.Errorf("brute baseline cell wrong: %+v", res.Brute[0])
	}
	if res.Crossover[0].Kind != core.OptimizedCrossover {
		t.Error("crossover rows out of order")
	}
	// Optimized must not be much worse than two-point.
	if res.Crossover[0].Quality > res.Crossover[1].Quality+0.35 {
		t.Errorf("optimized quality %.3f much worse than two-point %.3f",
			res.Crossover[0].Quality, res.Crossover[1].Quality)
	}
	report := FormatAblation(res)
	if !strings.Contains(report, "phi sweep") || !strings.Contains(report, "brute-force ablation") {
		t.Error("FormatAblation missing sections")
	}
}

func TestRunAblationUnknownProfile(t *testing.T) {
	if _, err := RunAblation(AblationOptions{Profile: "nope"}); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestRunShell(t *testing.T) {
	rows, err := RunShell(ShellOptions{Seed: 1, Dims: []int{2, 20, 60}, N: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Relative contrast must fall monotonically with dimensionality,
	// and the usable λ window must narrow (§1's thin-shell argument).
	for i := 1; i < len(rows); i++ {
		if rows[i].RelContrast >= rows[i-1].RelContrast {
			t.Errorf("contrast not shrinking: d=%d %.3f vs d=%d %.3f",
				rows[i].D, rows[i].RelContrast, rows[i-1].D, rows[i-1].RelContrast)
		}
		if rows[i].WindowRel >= rows[i-1].WindowRel {
			t.Errorf("λ window not narrowing: d=%d %.3f vs d=%d %.3f",
				rows[i].D, rows[i].WindowRel, rows[i-1].D, rows[i-1].WindowRel)
		}
	}
	for _, r := range rows {
		if r.LambdaAll >= r.LambdaNone {
			t.Errorf("d=%d: inverted λ window [%v, %v]", r.D, r.LambdaAll, r.LambdaNone)
		}
		if r.MinNN > r.MeanNN || r.MeanNN > r.MaxNN {
			t.Errorf("d=%d: NN stats disordered", r.D)
		}
	}
	if !strings.Contains(FormatShell(rows), "relContrast") {
		t.Error("FormatShell missing header")
	}
}

func TestRunQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := RunQuality(QualityOptions{Seed: 1, Samples: 256, Profile: "Machine"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]QualityRow{}
	for _, r := range rows {
		if math.IsNaN(r.AUC) || r.AUC < 0 || r.AUC > 1 {
			t.Errorf("%s: AUC = %v", r.Method, r.AUC)
		}
		byName[r.Method] = r
	}
	// The subspace scorer must beat chance decisively on planted data.
	if tail := byName["projection-sampled-tail"]; tail.AUC < 0.7 {
		t.Errorf("tail AUC = %v, want >= 0.7", tail.AUC)
	}
	if !strings.Contains(FormatQuality(rows), "AUC") {
		t.Error("FormatQuality missing header")
	}
}

func TestRunQualityUnknownProfile(t *testing.T) {
	if _, err := RunQuality(QualityOptions{Profile: "nope"}); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestRunConvergence(t *testing.T) {
	rows, err := RunConvergence(ConvergenceOptions{Seed: 1, Profile: "Machine", Generations: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d generations traced", len(rows))
	}
	// Best-set quality is monotone non-increasing for both operators.
	for i := 1; i < len(rows); i++ {
		if rows[i].Optimized > rows[i-1].Optimized+1e-9 {
			t.Errorf("optimized quality worsened at gen %d", i)
		}
		if rows[i].TwoPoint > rows[i-1].TwoPoint+1e-9 {
			t.Errorf("two-point quality worsened at gen %d", i)
		}
		if rows[i].OptimizedEvals < rows[i-1].OptimizedEvals {
			t.Errorf("optimized evals decreased at gen %d", i)
		}
	}
	// The optimized operator's final quality is at least as good.
	last := rows[len(rows)-1]
	if last.Optimized > last.TwoPoint+0.3 {
		t.Errorf("optimized final quality %.3f much worse than two-point %.3f",
			last.Optimized, last.TwoPoint)
	}
	if !strings.Contains(FormatConvergence(rows), "Gen°(quality)") {
		t.Error("FormatConvergence missing header")
	}
}

func TestRunConvergenceUnknownProfile(t *testing.T) {
	if _, err := RunConvergence(ConvergenceOptions{Profile: "nope"}); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestShellVPPruningCollapses(t *testing.T) {
	rows, err := RunShell(ShellOptions{Seed: 1, Dims: []int{2, 60}, N: 400})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].VPPruneRate >= rows[0].VPPruneRate {
		t.Errorf("VP pruning did not collapse: d=2 %.2f vs d=60 %.2f",
			rows[0].VPPruneRate, rows[1].VPPruneRate)
	}
}
