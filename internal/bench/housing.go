package bench

import (
	"fmt"
	"strings"

	"hido/internal/core"
	"hido/internal/synth"
)

// HousingResult is the Boston-housing interpretability case study of
// §3.1: 3- and 4-dimensional sparse projections with attribute-level
// explanations, and whether each planted contrarian record was
// exposed.
type HousingResult struct {
	// Projections3 and Projections4 are the retained projections at
	// k=3 and k=4, with their human-readable descriptions.
	Projections3, Projections4 []string
	// PlantedCovered[i] reports whether planted record i (see
	// synth.HousingPlanted) was covered at either dimensionality.
	PlantedCovered [3]bool
	// PlantedExplanations holds, for each covered planted record, one
	// covering projection's description.
	PlantedExplanations [3]string
}

// RunHousing regenerates the housing case study.
func RunHousing(seed uint64) (*HousingResult, error) {
	ds := synth.Housing(seed)
	out := &HousingResult{}
	planted := synth.HousingPlanted()

	run := func(phi, k, m int) ([]string, *core.Result, *core.Detector, error) {
		det := core.NewDetector(ds, phi)
		res, err := det.Evolutionary(core.EvoOptions{K: k, M: m, Seed: seed})
		if err != nil {
			return nil, nil, nil, err
		}
		descs := make([]string, len(res.Projections))
		for i, p := range res.Projections {
			descs[i] = p.Describe(det)
		}
		return descs, res, det, nil
	}

	// §2.4: with N=506 a singleton cube stays below -3 only while
	// phi^k <~ 46, so k=3 uses phi=3; k=4 relaxes the threshold.
	descs3, res3, det3, err := run(3, 3, 15)
	if err != nil {
		return nil, err
	}
	out.Projections3 = descs3
	descs4, res4, det4, err := run(3, 4, 15)
	if err != nil {
		return nil, err
	}
	out.Projections4 = descs4

	for pi, rec := range planted {
		for _, rd := range []struct {
			res *core.Result
			det *core.Detector
		}{{res3, det3}, {res4, det4}} {
			if rd.res.OutlierSet.Test(rec) {
				out.PlantedCovered[pi] = true
				if cov := rd.res.CoveringProjections(rd.det, rec); len(cov) > 0 {
					out.PlantedExplanations[pi] = rd.res.Projections[cov[0]].Describe(rd.det)
				}
				break
			}
		}
	}
	return out, nil
}

// FormatHousing renders the case study.
func FormatHousing(r *HousingResult) string {
	var b strings.Builder
	b.WriteString("housing case study (506 records, 13 attributes)\n")
	b.WriteString("  best 3-d projections:\n")
	for _, d := range r.Projections3[:minInt(5, len(r.Projections3))] {
		fmt.Fprintf(&b, "    %s\n", d)
	}
	b.WriteString("  best 4-d projections:\n")
	for _, d := range r.Projections4[:minInt(5, len(r.Projections4))] {
		fmt.Fprintf(&b, "    %s\n", d)
	}
	names := []string{
		"high CRIM + high PTRATIO + low DIS",
		"low NOX + high AGE + high RAD",
		"low CRIM + modest INDUS + low MEDV",
	}
	for i, ok := range r.PlantedCovered {
		fmt.Fprintf(&b, "  planted contrarian %d (%s): covered=%v\n", i+1, names[i], ok)
		if ok && r.PlantedExplanations[i] != "" {
			fmt.Fprintf(&b, "    explained by %s\n", r.PlantedExplanations[i])
		}
	}
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
