package bench

import (
	"fmt"
	"math"
	"strings"

	"hido/internal/baseline/dbout"
	"hido/internal/baseline/neighbors"
	"hido/internal/synth"
)

// ShellRow is one dimensionality point of the distance-concentration
// experiment behind §1's argument against full-dimensional detectors:
// as d grows, nearest-neighbor distances concentrate into a thin
// shell, and the λ window in which DB(k, λ) outliers are neither
// "everything" nor "nothing" collapses.
type ShellRow struct {
	D int
	// MeanNN and relative contrast of the 1-NN distance distribution.
	MeanNN, MinNN, MaxNN float64
	// RelContrast = (max − min) / min over all records' NN distances —
	// the Beyer et al. contrast measure; it shrinks toward 0 as d grows.
	RelContrast float64
	// LambdaAll is the largest tested λ at which every record is a
	// DB(k, λ) outlier; LambdaNone the smallest at which none is. The
	// window between them, normalized by the mean NN distance, is how
	// much slack a user has when picking λ (§1: "a user would need to
	// pick λ to a very high degree of accuracy").
	LambdaAll, LambdaNone float64
	// WindowRel = (LambdaNone − LambdaAll) / MeanNN.
	WindowRel float64
	// VPPruneRate is the mean fraction of distance computations a
	// vantage-point tree avoids on 5-NN queries — metric-index
	// effectiveness, which the same concentration effect destroys.
	VPPruneRate float64
}

// ShellOptions configures the sweep.
type ShellOptions struct {
	Seed uint64
	// Dims to sweep (default 2, 10, 50, 100).
	Dims []int
	// N is the record count (default 500).
	N int
	// K is the DB-outlier neighbor threshold (default 1).
	K int
	// Steps is the λ grid resolution (default 64).
	Steps int
}

func (o ShellOptions) withDefaults() ShellOptions {
	if o.Dims == nil {
		o.Dims = []int{2, 10, 50, 100}
	}
	if o.N == 0 {
		o.N = 500
	}
	if o.K == 0 {
		o.K = 1
	}
	if o.Steps == 0 {
		o.Steps = 64
	}
	return o
}

// RunShell measures distance concentration and the DB(k, λ) usability
// window on uniform data of growing dimensionality.
func RunShell(opt ShellOptions) ([]ShellRow, error) {
	opt = opt.withDefaults()
	rows := make([]ShellRow, 0, len(opt.Dims))
	for _, d := range opt.Dims {
		ds, err := synth.Generate(synth.Config{
			Name: fmt.Sprintf("shell-d%d", d), N: opt.N, D: d,
		}, opt.Seed)
		if err != nil {
			return nil, err
		}
		search := neighbors.NewSearch(ds, neighbors.Euclidean)
		nn := search.AllKDist(1)
		row := ShellRow{D: d, MinNN: math.Inf(1), MaxNN: math.Inf(-1)}
		sum := 0.0
		for _, v := range nn {
			sum += v
			if v < row.MinNN {
				row.MinNN = v
			}
			if v > row.MaxNN {
				row.MaxNN = v
			}
		}
		row.MeanNN = sum / float64(len(nn))
		if row.MinNN > 0 {
			row.RelContrast = (row.MaxNN - row.MinNN) / row.MinNN
		}

		// λ sweep around the NN shell: everything below MinNN makes all
		// points outliers; find the transition edges.
		lambdas := make([]float64, opt.Steps)
		lo, hi := row.MinNN*0.5, row.MaxNN*1.5
		for i := range lambdas {
			lambdas[i] = lo + (hi-lo)*float64(i)/float64(opt.Steps-1)
		}
		counts, err := dbout.LambdaSweep(ds, opt.K, lambdas, neighbors.Euclidean)
		if err != nil {
			return nil, err
		}
		row.LambdaAll = lo
		row.LambdaNone = hi
		for i, c := range counts {
			if c == opt.N {
				row.LambdaAll = lambdas[i] // still everything
			}
			if c == 0 {
				row.LambdaNone = lambdas[i] // first nothing
				break
			}
		}
		if row.MeanNN > 0 {
			row.WindowRel = (row.LambdaNone - row.LambdaAll) / row.MeanNN
		}

		// Metric-index effectiveness at this dimensionality.
		tree := neighbors.NewVPTree(ds, neighbors.Euclidean, opt.Seed)
		probes := 30
		if probes > opt.N {
			probes = opt.N
		}
		total := 0.0
		for i := 0; i < probes; i++ {
			tree.KNN(i, 5)
			total += tree.PruningRate()
		}
		row.VPPruneRate = total / float64(probes)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatShell renders the sweep.
func FormatShell(rows []ShellRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %10s %12s %12s %12s %10s %10s\n",
		"d", "meanNN", "relContrast", "λ(all out)", "λ(none out)", "window/NN", "vp-prune")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %10.3f %12.3f %12.3f %12.3f %10.3f %10.2f\n",
			r.D, r.MeanNN, r.RelContrast, r.LambdaAll, r.LambdaNone, r.WindowRel, r.VPPruneRate)
	}
	b.WriteString("relContrast → 0, the usable λ window narrowing, and VP-tree pruning\n")
	b.WriteString("collapsing with d reproduce §1's argument that distance-based\n")
	b.WriteString("definitions (and metric indexes) lose meaning in high dimensions\n")
	return b.String()
}
