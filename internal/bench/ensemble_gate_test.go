package bench

import (
	"strings"
	"testing"
)

// Recorded detection-quality floors for the ensemble harness at seed 1
// (measured 2026-08: planted(Machine) ensemble-max 0.990, planted
// (Ionosphere) ensemble-rank 0.959 / ensemble-max 0.954, adversarial
// ensemble-max 0.972). The floors sit below the measurements with
// margin for benign search drift; a drop below them means an ensemble
// regression, and this gate fails CI.
const (
	plantedLowDAUCFloor  = 0.95 // planted(Machine), best ensemble row
	plantedHighDAUCFloor = 0.90 // planted(Ionosphere), best ensemble row
)

// TestEnsembleQualityGate is the CI detection-quality gate for the
// ensemble mode: on every generator the best ensemble combiner must
// rank at least as well as the single restarted search, and on the
// planted generators the ensemble AUC must stay above the recorded
// floors.
func TestEnsembleQualityGate(t *testing.T) {
	if testing.Short() {
		t.Skip("quality gate runs full searches; skipped in -short")
	}
	rows, err := RunEnsembleQuality(EnsembleQualityOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	single := map[string]float64{}
	bestEnsemble := map[string]float64{}
	for _, r := range rows {
		switch {
		case strings.HasPrefix(r.Method, "single-"):
			single[r.Generator] = r.AUC
		case strings.HasPrefix(r.Method, "ensemble-"):
			if r.AUC > bestEnsemble[r.Generator] {
				bestEnsemble[r.Generator] = r.AUC
			}
		}
	}
	if len(single) == 0 || len(bestEnsemble) != len(single) {
		t.Fatalf("harness shape changed: single=%v ensemble=%v", single, bestEnsemble)
	}
	for gen, s := range single {
		e := bestEnsemble[gen]
		if e < s {
			t.Errorf("%s: best ensemble AUC %.3f below single-search %.3f", gen, e, s)
		}
	}
	if auc := bestEnsemble["planted(Machine)"]; auc < plantedLowDAUCFloor {
		t.Errorf("planted(Machine): ensemble AUC %.3f below recorded floor %.2f", auc, plantedLowDAUCFloor)
	}
	if auc := bestEnsemble["planted(Ionosphere)"]; auc < plantedHighDAUCFloor {
		t.Errorf("planted(Ionosphere): ensemble AUC %.3f below recorded floor %.2f", auc, plantedHighDAUCFloor)
	}
}
