package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"hido/internal/core"
	"hido/internal/discretize"
	"hido/internal/evo"
	"hido/internal/grid"
	"hido/internal/synth"
)

// AblationResult collects the design-choice ablations DESIGN.md calls
// out: crossover operator, selection strategy, grid construction,
// population size, grid resolution, search topology, and the
// worker-pool/count-cache machinery.
type AblationResult struct {
	Crossover  []CrossoverAblationRow
	Selection  []SelectionAblationRow
	GridMethod []GridAblationRow
	PopSize    []PopAblationRow
	PhiSweep   []PhiAblationRow
	Topology   []TopologyAblationRow
	Parallel   []ParallelAblationRow
	Brute      []BruteAblationRow
}

// BruteAblationRow measures one workers × pruning cell of the sharded
// brute-force enumeration on the paper's d=20, k=4 reference workload
// (§3's C(20,4)·φ⁴ combinatorics argument, with every attribute in a
// correlated group so anti-correlated subtrees actually empty out).
// Identical re-checks the determinism guarantee against the serial
// unpruned reference in situ.
type BruteAblationRow struct {
	Workers   int
	Pruning   bool
	Time      time.Duration
	Speedup   float64 // serial pruning-off wall clock / this cell's
	Evals     int
	Pruned    int // subtrees skipped by coverage pruning
	Identical bool
}

// ParallelAblationRow measures one workers × cache cell: several
// repeated searches with derived seeds (the repeated-search shape of
// restarts and islands, isolated for measurement), optionally sharing
// one projection-count cache. Identical reports whether the first
// run's projections matched the serial reference — the determinism
// guarantee, re-checked in situ.
type ParallelAblationRow struct {
	Workers      int
	Cache        bool
	Quality      float64 // mean over the repeated runs
	Time         time.Duration
	Speedup      float64 // serial cache-off wall clock / this cell's
	Hits, Misses uint64  // shared-cache counters (zero when Cache=false)
	Size         int     // distinct cube counts memoized (zero when Cache=false)
	Identical    bool
}

// TopologyAblationRow compares search topologies at an equal total
// population budget: one population, unioned restarts, and the island
// model. Distinct counts how many distinct projections were retained —
// the diversity the topologies trade off.
type TopologyAblationRow struct {
	Name     string
	Quality  float64
	Distinct int
	Evals    int
	Time     time.Duration
}

// CrossoverAblationRow compares the two crossover operators on one
// profile (the Gen vs Gen° columns of Table 1, isolated).
type CrossoverAblationRow struct {
	Profile  string
	Kind     core.CrossoverKind
	Quality  float64
	Time     time.Duration
	Recall   float64 // planted-outlier recall
	Converge bool    // stopped on the De Jong criterion
}

// SelectionAblationRow compares selection strategies.
type SelectionAblationRow struct {
	Strategy evo.Selection
	Quality  float64
	Recall   float64
}

// GridAblationRow compares equi-depth against equi-width grids.
type GridAblationRow struct {
	Method  discretize.Method
	Quality float64
	Recall  float64
}

// PopAblationRow sweeps the population size.
type PopAblationRow struct {
	PopSize int
	Quality float64
	Time    time.Duration
}

// PhiAblationRow sweeps the grid resolution, reporting the advised k
// and the singleton-cube sparsity that governs coverage (§2.4).
type PhiAblationRow struct {
	Phi               int
	AdvisedK          int
	SingletonSparsity float64
	Quality           float64
	Recall            float64
}

// AblationOptions configures the ablations.
type AblationOptions struct {
	Seed uint64
	// Profile defaults to Ionosphere (34 dims: large enough for the
	// operators to matter, small enough to iterate).
	Profile string
	// M is the best-set size (default 20).
	M int
	// Workers caps the worker sweep of the parallel ablation
	// (0 selects GOMAXPROCS).
	Workers int
	// BrutePhi is the grid resolution of the brute-force workers ×
	// pruning sweep (default 10, the paper's d=20, k=4, φ=10 reference
	// point; tests pass a smaller φ to keep the enumeration cheap).
	BrutePhi int
}

func (o AblationOptions) withDefaults() AblationOptions {
	if o.Profile == "" {
		o.Profile = "Ionosphere"
	}
	if o.M == 0 {
		o.M = 20
	}
	if o.BrutePhi == 0 {
		o.BrutePhi = 10
	}
	return o
}

// RunAblation runs every ablation on the configured profile.
func RunAblation(opt AblationOptions) (*AblationResult, error) {
	opt = opt.withDefaults()
	p, err := synth.ProfileByName(opt.Profile)
	if err != nil {
		return nil, err
	}
	ds, err := p.Generate(opt.Seed)
	if err != nil {
		return nil, err
	}
	truth := synth.OutlierIndices(ds)
	out := &AblationResult{}

	// Crossover.
	det := core.NewDetector(ds, p.Phi)
	for _, kind := range []core.CrossoverKind{core.OptimizedCrossover, core.TwoPointCrossover} {
		res, err := det.Evolutionary(core.EvoOptions{
			K: p.K, M: opt.M, Seed: opt.Seed, Crossover: kind,
		})
		if err != nil {
			return nil, err
		}
		out.Crossover = append(out.Crossover, CrossoverAblationRow{
			Profile: p.Name, Kind: kind,
			Quality: res.Quality(), Time: res.Elapsed,
			Recall:   synth.Recall(res.Outliers, truth),
			Converge: res.ConvergedDeJong,
		})
	}

	// Selection.
	for _, strat := range []evo.Selection{evo.RankRoulette, evo.Tournament, evo.Uniform} {
		res, err := det.Evolutionary(core.EvoOptions{
			K: p.K, M: opt.M, Seed: opt.Seed, Selection: strat,
		})
		if err != nil {
			return nil, err
		}
		out.Selection = append(out.Selection, SelectionAblationRow{
			Strategy: strat, Quality: res.Quality(),
			Recall: synth.Recall(res.Outliers, truth),
		})
	}

	// Grid method.
	for _, method := range []discretize.Method{discretize.EquiDepth, discretize.EquiWidth} {
		d := core.NewDetectorMethod(ds, p.Phi, method)
		res, err := d.Evolutionary(core.EvoOptions{K: p.K, M: opt.M, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		out.GridMethod = append(out.GridMethod, GridAblationRow{
			Method: method, Quality: res.Quality(),
			Recall: synth.Recall(res.Outliers, truth),
		})
	}

	// Population size.
	for _, pop := range []int{20, 50, 100, 200} {
		res, err := det.Evolutionary(core.EvoOptions{
			K: p.K, M: opt.M, Seed: opt.Seed, PopSize: pop,
		})
		if err != nil {
			return nil, err
		}
		out.PopSize = append(out.PopSize, PopAblationRow{
			PopSize: pop, Quality: res.Quality(), Time: res.Elapsed,
		})
	}

	// Search topology at equal total population budget (120 members).
	addTopology := func(name string, res *core.Result, err error) error {
		if err != nil {
			return err
		}
		out.Topology = append(out.Topology, TopologyAblationRow{
			Name: name, Quality: res.Quality(),
			Distinct: len(res.Projections),
			Evals:    res.Evaluations, Time: res.Elapsed,
		})
		return nil
	}
	single, err := det.Evolutionary(core.EvoOptions{K: p.K, M: opt.M, Seed: opt.Seed, PopSize: 120})
	if err := addTopology("single-pop-120", single, err); err != nil {
		return nil, err
	}
	restarts, err := det.EvolutionaryRestarts(core.EvoOptions{K: p.K, M: opt.M, Seed: opt.Seed, PopSize: 40}, 3)
	if err := addTopology("restarts-3x40", restarts, err); err != nil {
		return nil, err
	}
	isl, err := det.EvolutionaryIslands(core.IslandOptions{
		Evo: core.EvoOptions{K: p.K, M: opt.M, Seed: opt.Seed, PopSize: 40}, Islands: 3,
	})
	if err := addTopology("islands-3x40", isl, err); err != nil {
		return nil, err
	}

	// Workers × shared count cache. Each cell repeats the search with
	// derived seeds; with the cache enabled, later runs reuse earlier
	// runs' cube counts exactly as restarts and islands do.
	maxW := opt.Workers
	if maxW <= 0 {
		maxW = runtime.GOMAXPROCS(0)
	}
	sweep := []int{}
	for _, w := range []int{1, 2, 4} {
		if w <= maxW {
			sweep = append(sweep, w)
		}
	}
	if sweep[len(sweep)-1] != maxW {
		sweep = append(sweep, maxW)
	}
	const parallelRuns = 3
	var refProjections []core.Projection
	var baseTime time.Duration
	for _, w := range sweep {
		for _, cached := range []bool{false, true} {
			var cache *grid.Cache
			if cached {
				cache = grid.NewCache(det.Index)
			}
			start := time.Now()
			quality := 0.0
			identical := true
			for r := 0; r < parallelRuns; r++ {
				res, err := det.Evolutionary(core.EvoOptions{
					K: p.K, M: opt.M,
					Seed:    opt.Seed + uint64(r)*0x9e3779b97f4a7c15,
					Workers: w, Cache: cache,
				})
				if err != nil {
					return nil, err
				}
				quality += res.Quality()
				if r == 0 {
					if refProjections == nil {
						refProjections = res.Projections
					} else {
						identical = sameProjections(refProjections, res.Projections)
					}
				}
			}
			elapsed := time.Since(start)
			if baseTime == 0 {
				baseTime = elapsed
			}
			row := ParallelAblationRow{
				Workers: w, Cache: cached,
				Quality:   quality / parallelRuns,
				Time:      elapsed,
				Speedup:   float64(baseTime) / float64(elapsed),
				Identical: identical,
			}
			if cache != nil {
				st := cache.Stats()
				row.Hits, row.Misses, row.Size = st.Hits, st.Misses, st.Size
			}
			out.Parallel = append(out.Parallel, row)
		}
	}

	// Brute-force workers × pruning on the paper's d=20, k=4 reference
	// workload. Every attribute belongs to a correlated group, so the
	// anti-correlated grid-cell combinations the paper mines are empty
	// and coverage pruning has real subtrees to skip.
	if out.Brute, err = runBruteAblation(opt); err != nil {
		return nil, err
	}

	// Phi sweep (rebuilds the grid each time; k follows §2.4).
	for _, phi := range []int{3, 5, 8, 12} {
		d := core.NewDetector(ds, phi)
		advice := d.Advise(-3)
		res, err := d.Evolutionary(core.EvoOptions{K: advice.K, M: opt.M, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		out.PhiSweep = append(out.PhiSweep, PhiAblationRow{
			Phi: phi, AdvisedK: advice.K,
			SingletonSparsity: advice.SingletonSparsity,
			Quality:           res.Quality(),
			Recall:            synth.Recall(res.Outliers, truth),
		})
	}
	return out, nil
}

// runBruteAblation sweeps worker count × coverage pruning over one
// exact enumeration of the d=20, k=4 space. The baseline cell
// (workers=1, pruning off) is the pre-sharding serial path; every
// other cell must reproduce its projections bit for bit.
func runBruteAblation(opt AblationOptions) ([]BruteAblationRow, error) {
	ds, err := synth.Generate(synth.Config{
		Name: "brute-d20", N: 600, D: 20,
		Groups: []synth.Group{
			{Dims: []int{0, 1, 2, 3, 4, 5, 6}, Noise: 0.015},
			{Dims: []int{7, 8, 9, 10, 11, 12, 13}, Noise: 0.015},
			{Dims: []int{14, 15, 16, 17, 18, 19}, Noise: 0.015},
		},
		Outliers: 6, Scale: true,
	}, opt.Seed)
	if err != nil {
		return nil, err
	}
	det := core.NewDetector(ds, opt.BrutePhi)
	var rows []BruteAblationRow
	var ref []core.Projection
	var baseTime time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		for _, pruning := range []bool{false, true} {
			start := time.Now()
			res, err := det.BruteForce(core.BruteForceOptions{
				K: 4, M: opt.M, Workers: w, DisablePruning: !pruning,
			})
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if ref == nil {
				ref = res.Projections
				baseTime = elapsed
			}
			rows = append(rows, BruteAblationRow{
				Workers: w, Pruning: pruning,
				Time:    elapsed,
				Speedup: float64(baseTime) / float64(elapsed),
				Evals:   res.Evaluations, Pruned: res.Pruned,
				Identical: sameProjections(ref, res.Projections),
			})
		}
	}
	return rows, nil
}

// sameProjections reports whether two projection lists agree exactly
// (cube, sparsity, count, order).
func sameProjections(a, b []core.Projection) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Cube.Equal(b[i].Cube) || a[i].Sparsity != b[i].Sparsity || a[i].Count != b[i].Count {
			return false
		}
	}
	return true
}

// FormatAblation renders every ablation table.
func FormatAblation(r *AblationResult) string {
	var b strings.Builder
	b.WriteString("crossover ablation:\n")
	for _, row := range r.Crossover {
		fmt.Fprintf(&b, "  %-10s quality=%.3f recall=%.2f time=%s dejong=%v\n",
			row.Kind, row.Quality, row.Recall, row.Time.Round(time.Millisecond), row.Converge)
	}
	b.WriteString("selection ablation:\n")
	for _, row := range r.Selection {
		fmt.Fprintf(&b, "  %-14s quality=%.3f recall=%.2f\n", row.Strategy, row.Quality, row.Recall)
	}
	b.WriteString("grid-method ablation:\n")
	for _, row := range r.GridMethod {
		fmt.Fprintf(&b, "  %-11s quality=%.3f recall=%.2f\n", row.Method, row.Quality, row.Recall)
	}
	b.WriteString("population-size ablation:\n")
	for _, row := range r.PopSize {
		fmt.Fprintf(&b, "  p=%-4d quality=%.3f time=%s\n",
			row.PopSize, row.Quality, row.Time.Round(time.Millisecond))
	}
	b.WriteString("search-topology ablation (equal 120-member budget):\n")
	for _, row := range r.Topology {
		fmt.Fprintf(&b, "  %-15s quality=%.3f distinct=%d evals=%d time=%s\n",
			row.Name, row.Quality, row.Distinct, row.Evals, row.Time.Round(time.Millisecond))
	}
	b.WriteString("parallel ablation (workers × shared count cache, 3 repeated runs):\n")
	for _, row := range r.Parallel {
		cache := "off"
		if row.Cache {
			cache = "on"
		}
		fmt.Fprintf(&b, "  w=%-2d cache=%-3s quality=%.3f time=%s speedup=%.2fx hits=%d misses=%d size=%d identical=%v\n",
			row.Workers, cache, row.Quality, row.Time.Round(time.Millisecond),
			row.Speedup, row.Hits, row.Misses, row.Size, row.Identical)
	}
	b.WriteString("brute-force ablation (workers × coverage pruning, d=20 k=4):\n")
	for _, row := range r.Brute {
		pruning := "off"
		if row.Pruning {
			pruning = "on"
		}
		fmt.Fprintf(&b, "  w=%-2d pruning=%-3s time=%s speedup=%.2fx evals=%d pruned=%d identical=%v\n",
			row.Workers, pruning, row.Time.Round(time.Millisecond),
			row.Speedup, row.Evals, row.Pruned, row.Identical)
	}
	b.WriteString("phi sweep (k from Eq. 2 at s=-3):\n")
	for _, row := range r.PhiSweep {
		fmt.Fprintf(&b, "  phi=%-3d k*=%d singletonS=%.2f quality=%.3f recall=%.2f\n",
			row.Phi, row.AdvisedK, row.SingletonSparsity, row.Quality, row.Recall)
	}
	return b.String()
}
