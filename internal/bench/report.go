package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// CSV renderings of every experiment, for spreadsheet/plotting
// pipelines. Each writer emits a header row; durations are reported
// in milliseconds, qualities and fractions as plain floats.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("bench: writing csv: %w", err)
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("bench: writing csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func ms(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Microseconds())/1000, 'f', 3, 64)
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Table1CSV writes the Table 1 rows.
func Table1CSV(w io.Writer, rows []Table1Row) error {
	header := []string{"dataset", "d", "brute_ok", "brute_ms", "brute_quality",
		"gen_ms", "gen_quality", "genopt_ms", "genopt_quality", "quality_match"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		bruteMS, bruteQ := "", ""
		if r.BruteOK {
			bruteMS, bruteQ = ms(r.BruteTime), f64(r.BruteQuality)
		}
		out = append(out, []string{
			r.Profile.Name, strconv.Itoa(r.Profile.D),
			strconv.FormatBool(r.BruteOK), bruteMS, bruteQ,
			ms(r.GenTime), f64(r.GenQuality),
			ms(r.GenOptTime), f64(r.GenOptQuality),
			strconv.FormatBool(r.QualityMatch),
		})
	}
	return writeCSV(w, header, out)
}

// Table2CSV writes the class-distribution rows.
func Table2CSV(w io.Writer, rows []Table2Row) error {
	header := []string{"case", "classes", "percentage"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Case, fmt.Sprintf("%v", r.ClassCodes), f64(r.Percentage),
		})
	}
	return writeCSV(w, header, out)
}

// ArrhythmiaCSV writes the rare-class study as one row.
func ArrhythmiaCSV(w io.Writer, r *ArrhythmiaResult) error {
	header := []string{"phi", "k", "threshold", "covered", "rare_covered",
		"rare_knn", "rare_lof", "recording_error_found", "recording_error_sparsity"}
	row := []string{
		strconv.Itoa(r.Phi), strconv.Itoa(r.K), f64(r.Threshold),
		strconv.Itoa(r.Covered), strconv.Itoa(r.RareCovered),
		strconv.Itoa(r.RareKNN), strconv.Itoa(r.RareLOF),
		strconv.FormatBool(r.RecordingErrorFound), f64(r.RecordingErrorSparsity),
	}
	return writeCSV(w, header, [][]string{row})
}

// ScalingCSV writes the scaling sweep.
func ScalingCSV(w io.Writer, rows []ScalingRow) error {
	header := []string{"d", "k", "phi", "space", "brute_ok", "brute_ms",
		"brute_evals", "evo_ms", "evo_evals"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		bruteMS := ""
		if r.BruteOK {
			bruteMS = ms(r.BruteTime)
		}
		out = append(out, []string{
			strconv.Itoa(r.D), strconv.Itoa(r.K), strconv.Itoa(r.Phi),
			strconv.FormatUint(r.SpaceSize, 10),
			strconv.FormatBool(r.BruteOK), bruteMS,
			strconv.Itoa(r.BruteEvals), ms(r.EvoTime), strconv.Itoa(r.EvoEvals),
		})
	}
	return writeCSV(w, header, out)
}

// ShellCSV writes the distance-concentration sweep.
func ShellCSV(w io.Writer, rows []ShellRow) error {
	header := []string{"d", "mean_nn", "min_nn", "max_nn", "rel_contrast",
		"lambda_all", "lambda_none", "window_rel", "vp_prune_rate"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.D), f64(r.MeanNN), f64(r.MinNN), f64(r.MaxNN),
			f64(r.RelContrast), f64(r.LambdaAll), f64(r.LambdaNone), f64(r.WindowRel),
			f64(r.VPPruneRate),
		})
	}
	return writeCSV(w, header, out)
}

// QualityCSV writes the detection-quality comparison.
func QualityCSV(w io.Writer, rows []QualityRow) error {
	header := []string{"method", "auc", "ap", "p_at_10"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Method, f64(r.AUC), f64(r.AP), f64(r.P10)})
	}
	return writeCSV(w, header, out)
}

// EnsembleQualityCSV writes the ensemble detection-quality comparison.
func EnsembleQualityCSV(w io.Writer, rows []EnsembleQualityRow) error {
	header := []string{"generator", "method", "auc", "ap", "p_at_10"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Generator, r.Method, f64(r.AUC), f64(r.AP), f64(r.P10)})
	}
	return writeCSV(w, header, out)
}

// AblationCSV writes every ablation table into one file with a
// section column.
func AblationCSV(w io.Writer, r *AblationResult) error {
	header := []string{"section", "variant", "quality", "recall", "time_ms", "extra"}
	var out [][]string
	for _, row := range r.Crossover {
		out = append(out, []string{"crossover", row.Kind.String(),
			f64(row.Quality), f64(row.Recall), ms(row.Time),
			fmt.Sprintf("dejong=%v", row.Converge)})
	}
	for _, row := range r.Selection {
		out = append(out, []string{"selection", row.Strategy.String(),
			f64(row.Quality), f64(row.Recall), "", ""})
	}
	for _, row := range r.GridMethod {
		out = append(out, []string{"grid", row.Method.String(),
			f64(row.Quality), f64(row.Recall), "", ""})
	}
	for _, row := range r.PopSize {
		out = append(out, []string{"popsize", strconv.Itoa(row.PopSize),
			f64(row.Quality), "", ms(row.Time), ""})
	}
	for _, row := range r.Topology {
		out = append(out, []string{"topology", row.Name,
			f64(row.Quality), "", ms(row.Time),
			fmt.Sprintf("distinct=%d evals=%d", row.Distinct, row.Evals)})
	}
	for _, row := range r.PhiSweep {
		out = append(out, []string{"phi", strconv.Itoa(row.Phi),
			f64(row.Quality), f64(row.Recall), "",
			fmt.Sprintf("k=%d singletonS=%.3f", row.AdvisedK, row.SingletonSparsity)})
	}
	for _, row := range r.Brute {
		pruning := "off"
		if row.Pruning {
			pruning = "on"
		}
		out = append(out, []string{"brute", fmt.Sprintf("w%d-prune-%s", row.Workers, pruning),
			"", "", ms(row.Time),
			fmt.Sprintf("speedup=%.2f evals=%d pruned=%d identical=%v",
				row.Speedup, row.Evals, row.Pruned, row.Identical)})
	}
	return writeCSV(w, header, out)
}

// WriteAllCSV runs every experiment and writes one CSV per experiment
// into dir, returning the file paths. Table 1's brute budget follows
// bruteBudget.
func WriteAllCSV(dir string, seed uint64, bruteBudget time.Duration) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var paths []string
	save := func(name string, fn func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		paths = append(paths, path)
		return nil
	}

	t1, err := RunTable1(Table1Options{Seed: seed, BruteBudget: bruteBudget})
	if err != nil {
		return nil, err
	}
	if err := save("table1.csv", func(w io.Writer) error { return Table1CSV(w, t1) }); err != nil {
		return nil, err
	}
	t2, err := RunTable2(seed)
	if err != nil {
		return nil, err
	}
	if err := save("table2.csv", func(w io.Writer) error { return Table2CSV(w, t2) }); err != nil {
		return nil, err
	}
	arr, err := RunArrhythmia(ArrhythmiaOptions{Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := save("arrhythmia.csv", func(w io.Writer) error { return ArrhythmiaCSV(w, arr) }); err != nil {
		return nil, err
	}
	sc, err := RunScaling(ScalingOptions{Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := save("scaling.csv", func(w io.Writer) error { return ScalingCSV(w, sc) }); err != nil {
		return nil, err
	}
	sh, err := RunShell(ShellOptions{Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := save("shell.csv", func(w io.Writer) error { return ShellCSV(w, sh) }); err != nil {
		return nil, err
	}
	ab, err := RunAblation(AblationOptions{Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := save("ablation.csv", func(w io.Writer) error { return AblationCSV(w, ab) }); err != nil {
		return nil, err
	}
	q, err := RunQuality(QualityOptions{Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := save("quality.csv", func(w io.Writer) error { return QualityCSV(w, q) }); err != nil {
		return nil, err
	}
	eq, err := RunEnsembleQuality(EnsembleQualityOptions{Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := save("ensemble.csv", func(w io.Writer) error { return EnsembleQualityCSV(w, eq) }); err != nil {
		return nil, err
	}
	views := Figure1Views(seed)
	for v, ds := range views {
		name := fmt.Sprintf("figure1_view%d.csv", v+1)
		if err := save(name, ds.WriteCSV); err != nil {
			return nil, err
		}
	}
	return paths, nil
}
