package bench

import (
	"fmt"
	"strings"

	"hido/internal/core"
	"hido/internal/evo"
	"hido/internal/synth"
)

// ConvergenceRow is one generation of the crossover convergence
// comparison: the best-set mean quality after each generation for the
// optimized and the two-point operator — the time-resolved view of
// Table 1's Gen vs Gen° quality gap.
type ConvergenceRow struct {
	Gen            int
	Optimized      float64
	TwoPoint       float64
	OptimizedConv  float64 // fraction of genes De Jong-converged
	TwoPointConv   float64
	OptimizedEvals int
	TwoPointEvals  int
}

// ConvergenceOptions configures the comparison.
type ConvergenceOptions struct {
	Seed uint64
	// Profile defaults to Ionosphere.
	Profile string
	// Generations caps the observation window (default 60).
	Generations int
	// M is the best-set size (default 20).
	M int
}

func (o ConvergenceOptions) withDefaults() ConvergenceOptions {
	if o.Profile == "" {
		o.Profile = "Ionosphere"
	}
	if o.Generations == 0 {
		o.Generations = 60
	}
	if o.M == 0 {
		o.M = 20
	}
	return o
}

// RunConvergence traces best-set quality generation by generation for
// both crossover operators on the same data and seed.
func RunConvergence(opt ConvergenceOptions) ([]ConvergenceRow, error) {
	opt = opt.withDefaults()
	p, err := synth.ProfileByName(opt.Profile)
	if err != nil {
		return nil, err
	}
	ds, err := p.Generate(opt.Seed)
	if err != nil {
		return nil, err
	}
	det := core.NewDetector(ds, p.Phi)

	trace := func(kind core.CrossoverKind) ([]evo.Stats, error) {
		var stats []evo.Stats
		_, err := det.Evolutionary(core.EvoOptions{
			K: p.K, M: opt.M, Seed: opt.Seed, Crossover: kind,
			MaxGenerations: opt.Generations, Patience: -1,
			OnGeneration: func(s evo.Stats) { stats = append(stats, s) },
		})
		return stats, err
	}
	optStats, err := trace(core.OptimizedCrossover)
	if err != nil {
		return nil, err
	}
	twoStats, err := trace(core.TwoPointCrossover)
	if err != nil {
		return nil, err
	}

	n := len(optStats)
	if len(twoStats) < n {
		n = len(twoStats)
	}
	rows := make([]ConvergenceRow, 0, n)
	for g := 0; g < n; g++ {
		rows = append(rows, ConvergenceRow{
			Gen:            g,
			Optimized:      optStats[g].BestSoFar,
			TwoPoint:       twoStats[g].BestSoFar,
			OptimizedConv:  optStats[g].Converged,
			TwoPointConv:   twoStats[g].Converged,
			OptimizedEvals: optStats[g].Evaluated,
			TwoPointEvals:  twoStats[g].Evaluated,
		})
	}
	return rows, nil
}

// FormatConvergence renders the trace (every 5th generation plus the
// last, to keep the table readable).
func FormatConvergence(rows []ConvergenceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %14s %14s %12s %12s\n",
		"gen", "Gen°(quality)", "Gen(quality)", "Gen°(evals)", "Gen(evals)")
	for i, r := range rows {
		if i%5 != 0 && i != len(rows)-1 {
			continue
		}
		fmt.Fprintf(&b, "%6d %14.3f %14.3f %12d %12d\n",
			r.Gen, r.Optimized, r.TwoPoint, r.OptimizedEvals, r.TwoPointEvals)
	}
	return b.String()
}
