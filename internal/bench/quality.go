package bench

import (
	"fmt"
	"strings"

	"hido/internal/baseline/knnout"
	"hido/internal/baseline/lof"
	"hido/internal/core"
	"hido/internal/dataset"
	"hido/internal/eval"
	"hido/internal/synth"
)

// QualityRow is one detector's ranking quality on a planted data set.
type QualityRow struct {
	Method string
	// AUC is the ROC area over the full ranking (1 = perfect).
	AUC float64
	// AP is the average precision.
	AP float64
	// P10 is precision among the 10 highest-scored records.
	P10 float64
}

// QualityOptions configures the detection-quality comparison.
type QualityOptions struct {
	Seed uint64
	// Profile names the Table 1 data-set shape to plant outliers in
	// (default Ionosphere).
	Profile string
	// Samples for the subspace-sampled scorer (default 512).
	Samples int
}

func (o QualityOptions) withDefaults() QualityOptions {
	if o.Profile == "" {
		o.Profile = "Ionosphere"
	}
	if o.Samples == 0 {
		o.Samples = 512
	}
	return o
}

// RunQuality ranks every record with the subspace-sampled projection
// score, the kNN-distance baseline, and LOF, and reports ROC AUC /
// average precision / P@10 against the planted ground truth. This is
// the modern metric view of the paper's rare-class experiment: the
// subspace method should dominate the full-dimensional rankings on
// data whose anomalies live in low-dimensional combinations.
func RunQuality(opt QualityOptions) ([]QualityRow, error) {
	opt = opt.withDefaults()
	p, err := synth.ProfileByName(opt.Profile)
	if err != nil {
		return nil, err
	}
	ds, err := p.Generate(opt.Seed)
	if err != nil {
		return nil, err
	}
	positive := make([]bool, ds.N())
	for _, i := range synth.OutlierIndices(ds) {
		positive[i] = true
	}

	var rows []QualityRow
	add := func(method string, outlierScores []float64) {
		rows = append(rows, QualityRow{
			Method: method,
			AUC:    eval.RocAUC(outlierScores, positive),
			AP:     eval.AveragePrecision(outlierScores, positive),
			P10:    eval.PrecisionAtK(outlierScores, positive, 10),
		})
	}

	det := core.NewDetector(ds, p.Phi)
	sampled, err := det.SampleScores(core.SampledScoreOptions{
		K: p.K, Samples: opt.Samples, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	// eval expects higher = more outlying; sparsity is lower = worse.
	neg := func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = -x
		}
		return out
	}
	add("projection-sampled-tail", neg(sampled.TailMean))
	add("projection-sampled-min", neg(sampled.Min))
	add("projection-sampled-mean", neg(sampled.Mean))

	full := ds.ImputeMissing(dataset.ImputeMean).Standardize()
	knnScores, err := knnout.Scores(full, 5, 0)
	if err != nil {
		return nil, err
	}
	add("knn-dist[25]", knnScores)

	lofRes, err := lof.Compute(full, lof.Options{K: 10})
	if err != nil {
		return nil, err
	}
	add("lof[10]", lofRes.Scores)
	return rows, nil
}

// FormatQuality renders the comparison.
func FormatQuality(rows []QualityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %8s %8s %8s\n", "method", "AUC", "AP", "P@10")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %8.3f %8.3f %8.3f\n", r.Method, r.AUC, r.AP, r.P10)
	}
	return b.String()
}
