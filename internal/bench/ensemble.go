package bench

import (
	"fmt"
	"strings"

	"hido/internal/baseline/dod"
	"hido/internal/core"
	"hido/internal/dataset"
	"hido/internal/ensemble"
	"hido/internal/eval"
	"hido/internal/synth"
)

// EnsembleQualityRow is one (generator, method) cell of the ensemble
// detection-quality comparison.
type EnsembleQualityRow struct {
	Generator string
	Method    string
	// AUC is the ROC area over the full ranking (1 = perfect), AP the
	// average precision, P10 precision among the 10 highest scores.
	AUC, AP, P10 float64
}

// EnsembleQualityOptions configures the comparison.
type EnsembleQualityOptions struct {
	Seed uint64
	// Members sizes the ensemble (default 16).
	Members int
	// BagFraction sizes each member's feature bag as a fraction of D,
	// clamped to at least k+1 (default 0.75 — wide enough that a
	// 2-dimensional signal subspace lands in most bags even at low D,
	// narrow enough that members still diversify).
	BagFraction float64
	// Workers fans out the searches (0 = all CPUs). Scores are
	// worker-count-invariant, so this only changes wall clock.
	Workers int
}

func (o EnsembleQualityOptions) withDefaults() EnsembleQualityOptions {
	if o.Members == 0 {
		o.Members = 16
	}
	if o.BagFraction == 0 {
		o.BagFraction = 0.75
	}
	if o.Workers == 0 {
		o.Workers = -1
	}
	return o
}

// bagSize resolves the bag width for a generator: BagFraction·D,
// clamped to [k+1, D].
func (o EnsembleQualityOptions) bagSize(d, k int) int {
	b := int(o.BagFraction * float64(d))
	if b < k+1 {
		b = k + 1
	}
	if b > d {
		b = d
	}
	return b
}

// ensembleGenerator is one ground-truth data source of the comparison.
type ensembleGenerator struct {
	name string
	ds   *dataset.Dataset
	// phi and k are the grid parameters (profile-tuned for the planted
	// shapes, §2.4-style for the adversarial set).
	phi, k int
}

// ensembleGenerators builds the comparison's data sets: two planted
// Table 1 shapes (a low-D and a high-D one) plus the adversarial
// generator (ties, skew, missing values, duplicates).
func ensembleGenerators(seed uint64) ([]ensembleGenerator, error) {
	var gens []ensembleGenerator
	for _, name := range []string{"Machine", "Ionosphere"} {
		p, err := synth.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		ds, err := p.Generate(seed)
		if err != nil {
			return nil, err
		}
		gens = append(gens, ensembleGenerator{
			name: "planted(" + name + ")", ds: ds, phi: p.Phi, k: p.K,
		})
	}
	// The adversarial outliers violate one correlated pair, so k=2
	// cubes carry the signal; phi=5 keeps singleton cells sparse at
	// n≈440.
	gens = append(gens, ensembleGenerator{
		name: "adversarial", ds: synth.Adversarial(400, seed), phi: 5, k: 2,
	})
	return gens, nil
}

// RunEnsembleQuality ranks every record of each generator three ways —
// the single restarted evolutionary search, the subspace ensemble
// (rank combiner), and the full-dimensional DOD baseline — and scores
// each ranking against the planted ground truth. This is the
// EXPERIMENTS.md §full-ranking view extended to the ensemble mode: on
// data whose anomalies live in low-dimensional combinations the
// ensemble's aggregated evidence should rank at least as well as any
// single search, and both should beat the full-dimensional baseline.
func RunEnsembleQuality(opt EnsembleQualityOptions) ([]EnsembleQualityRow, error) {
	opt = opt.withDefaults()
	gens, err := ensembleGenerators(opt.Seed)
	if err != nil {
		return nil, err
	}
	var rows []EnsembleQualityRow
	for _, g := range gens {
		positive := make([]bool, g.ds.N())
		for _, i := range synth.OutlierIndices(g.ds) {
			positive[i] = true
		}
		add := func(method string, scores []float64) {
			rows = append(rows, EnsembleQualityRow{
				Generator: g.name,
				Method:    method,
				AUC:       eval.RocAUC(scores, positive),
				AP:        eval.AveragePrecision(scores, positive),
				P10:       eval.PrecisionAtK(scores, positive, 10),
			})
		}

		det := core.NewDetector(g.ds, g.phi)

		// Single search: the repo's standard offline path, three
		// restarts unioned, full feature set.
		single, err := det.EvolutionaryRestarts(core.EvoOptions{
			K: g.k, M: 100, Seed: opt.Seed, Workers: opt.Workers,
		}, 3)
		if err != nil {
			return nil, err
		}
		singleScores := make([]float64, g.ds.N())
		for i := range singleScores {
			singleScores[i] = -single.Score(det, i)
		}
		add("single-evo[x3]", singleScores)

		// Subspace ensemble, both averaging (rank) and extreme (max)
		// aggregation. Max recovers the union-of-searches behavior and
		// never trails a single search; rank rewards records many
		// members agree on and shines when any one search is unreliable
		// (the high-D profile).
		for _, comb := range []ensemble.Combiner{ensemble.RankCombiner, ensemble.MaxCombiner} {
			ens, err := ensemble.Fit(det, ensemble.Options{
				Members: opt.Members, BagSize: opt.bagSize(g.ds.D(), g.k), K: g.k, M: 100,
				Combiner: comb, Workers: opt.Workers, Seed: opt.Seed,
			})
			if err != nil {
				return nil, err
			}
			add(fmt.Sprintf("ensemble-%s[%d]", comb, opt.Members), ens.Combined)
		}

		// DOD: the modern full-dimensional comparator; needs complete
		// standardized data like the other distance baselines.
		full := g.ds.ImputeMissing(dataset.ImputeMean).Standardize()
		dodScores, err := dod.Scores(full, dod.Options{K: 10})
		if err != nil {
			return nil, err
		}
		add("dod[10]", dodScores)
	}
	return rows, nil
}

// FormatEnsembleQuality renders the comparison grouped by generator.
func FormatEnsembleQuality(rows []EnsembleQualityRow) string {
	var b strings.Builder
	last := ""
	for _, r := range rows {
		if r.Generator != last {
			if last != "" {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "%s\n", r.Generator)
			fmt.Fprintf(&b, "  %-20s %8s %8s %8s\n", "method", "AUC", "AP", "P@10")
			last = r.Generator
		}
		fmt.Fprintf(&b, "  %-20s %8.3f %8.3f %8.3f\n", r.Method, r.AUC, r.AP, r.P10)
	}
	return b.String()
}
