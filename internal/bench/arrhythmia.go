package bench

import (
	"fmt"
	"strings"

	"hido/internal/baseline/knnout"
	"hido/internal/baseline/lof"
	"hido/internal/baseline/neighbors"
	"hido/internal/core"
	"hido/internal/cube"
	"hido/internal/dataset"
	"hido/internal/synth"
)

// Table2Row is one row of the paper's Table 2 (class distribution of
// the arrhythmia data set).
type Table2Row struct {
	Case       string
	ClassCodes []string
	Percentage float64
}

// RunTable2 regenerates Table 2 from the arrhythmia stand-in.
func RunTable2(seed uint64) ([]Table2Row, error) {
	ds, err := synth.Arrhythmia(seed)
	if err != nil {
		return nil, err
	}
	var common, rare []string
	commonN, rareN := 0, 0
	for _, c := range synth.ArrhythmiaClasses() {
		if c.Rare {
			rare = append(rare, c.Code)
		} else {
			common = append(common, c.Code)
		}
	}
	for i := 0; i < ds.N(); i++ {
		if synth.RareLabel(ds.Label(i)) {
			rareN++
		} else {
			commonN++
		}
	}
	total := float64(ds.N())
	return []Table2Row{
		{Case: "Commonly Occurring Classes (>= 5%)", ClassCodes: common,
			Percentage: 100 * float64(commonN) / total},
		{Case: "Rare Classes (< 5%)", ClassCodes: rare,
			Percentage: 100 * float64(rareN) / total},
	}, nil
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %-34s %s\n", "Case", "Class Codes", "Percentage of Instances")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %-34s %.1f%%\n", r.Case, strings.Join(r.ClassCodes, ", "), r.Percentage)
	}
	return b.String()
}

// ArrhythmiaOptions configures the §3.1 rare-class study.
type ArrhythmiaOptions struct {
	Seed uint64
	// Phi is the grid resolution (default 6, which puts the advised
	// projection dimensionality at k=2 for N=452 and target s=-3).
	Phi int
	// Threshold is the sparsity cutoff defining the reported
	// projections (the paper uses -3).
	Threshold float64
	// M is how many best projections the evolutionary search tracks
	// before thresholding (default 200).
	M int
	// BaselineK is the neighbor rank for the kNN comparison (the paper
	// reports 1-NN, noting k-NN did not improve).
	BaselineK int
	// Restarts is how many evolutionary runs (distinct seeds) are
	// unioned (default 3). The genetic search is stochastic and each
	// convergence finds a subset of the qualifying sparse projections;
	// the paper reports "all the sparse projections ... with a sparsity
	// coefficient of -3 or less", which a single converged population
	// does not exhaust.
	Restarts int
}

func (o ArrhythmiaOptions) withDefaults() ArrhythmiaOptions {
	if o.Phi == 0 {
		o.Phi = 6
	}
	if o.Threshold == 0 {
		o.Threshold = -3
	}
	if o.M == 0 {
		o.M = 200
	}
	if o.BaselineK == 0 {
		o.BaselineK = 1
	}
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	return o
}

// ArrhythmiaResult is the outcome of the §3.1 study. The paper
// reports 85 covered points of which 43 belong to a rare class for
// the projection method, against 28 of the 85 best kNN outliers.
type ArrhythmiaResult struct {
	Phi, K    int
	Threshold float64

	// Projection method: points covered by projections with sparsity
	// <= Threshold, and how many are rare-class.
	Covered     int
	RareCovered int

	// kNN baseline [25] at the same outlier count.
	RareKNN int
	// LOF baseline [10] at the same outlier count (extension: the
	// introduction discusses LOF; the paper does not run it).
	RareLOF int

	// RecordingErrorFound reports whether the planted impossible
	// height/weight record (index 0) was among the covered points —
	// the paper's anecdote about data-entry errors surfacing. Exactly
	// one qualifying cube covers it, so the stochastic search surfaces
	// it only in some runs; RecordingErrorSparsity shows the cube
	// qualifies regardless.
	RecordingErrorFound bool
	// RecordingErrorSparsity is the sparsity coefficient of the
	// (height, weight) cube holding the impossible record — it is at
	// or below the threshold by construction, demonstrating that the
	// definition flags data-entry errors even when a particular search
	// run does not enumerate that cube.
	RecordingErrorSparsity float64
}

// RareFractionProjection returns the projection method's rare-class
// fraction.
func (r *ArrhythmiaResult) RareFractionProjection() float64 {
	if r.Covered == 0 {
		return 0
	}
	return float64(r.RareCovered) / float64(r.Covered)
}

// RareFractionKNN returns the kNN baseline's rare-class fraction.
func (r *ArrhythmiaResult) RareFractionKNN() float64 {
	if r.Covered == 0 {
		return 0
	}
	return float64(r.RareKNN) / float64(r.Covered)
}

// RunArrhythmia regenerates the arrhythmia rare-class study.
func RunArrhythmia(opt ArrhythmiaOptions) (*ArrhythmiaResult, error) {
	opt = opt.withDefaults()
	ds, err := synth.Arrhythmia(opt.Seed)
	if err != nil {
		return nil, err
	}
	det := core.NewDetector(ds, opt.Phi)
	advice := det.Advise(opt.Threshold)

	out := &ArrhythmiaResult{Phi: opt.Phi, K: advice.K, Threshold: opt.Threshold}

	// Union the qualifying projections over several restarts; keep only
	// projections at or below the threshold; their covered points are
	// the outliers.
	countRare := func(points []int) int {
		n := 0
		for _, i := range points {
			if synth.RareLabel(ds.Label(i)) {
				n++
			}
		}
		return n
	}
	coveredSet := map[int]bool{}
	for restart := 0; restart < opt.Restarts; restart++ {
		res, err := det.Evolutionary(core.EvoOptions{
			K: advice.K, M: opt.M, Seed: opt.Seed + uint64(restart)*0x9e37,
		})
		if err != nil {
			return nil, err
		}
		for _, p := range res.Projections {
			if p.Sparsity > opt.Threshold {
				continue
			}
			cov := det.Index.Cover(p.Cube)
			cov.ForEach(func(i int) bool {
				coveredSet[i] = true
				return true
			})
		}
	}
	covered := make([]int, 0, len(coveredSet))
	for i := range coveredSet {
		covered = append(covered, i)
	}
	out.Covered = len(covered)
	out.RareCovered = countRare(covered)
	out.RecordingErrorFound = coveredSet[0]
	// Evaluate the recording-error cube directly: height in its top
	// range, weight in its bottom range.
	h, w := ds.ColumnIndex("height"), ds.ColumnIndex("weight")
	errCube := cube.New(det.D()).
		With(h, det.Grid.Cell(0, h)).
		With(w, det.Grid.Cell(0, w))
	out.RecordingErrorSparsity = det.Index.Sparsity(errCube)
	if out.Covered == 0 {
		return out, nil
	}

	// Baselines rank every point and take the same number of outliers.
	// They need complete, comparable-scale vectors.
	full := ds.ImputeMissing(dataset.ImputeMean).Standardize()
	knn, err := knnout.TopN(full, knnout.Options{K: opt.BaselineK, N: out.Covered})
	if err != nil {
		return nil, err
	}
	knnIdx := make([]int, len(knn))
	for i, o := range knn {
		knnIdx[i] = o.Index
	}
	out.RareKNN = countRare(knnIdx)

	lofRes, err := lof.Compute(full, lof.Options{K: 10, Metric: neighbors.Euclidean})
	if err != nil {
		return nil, err
	}
	out.RareLOF = countRare(lofRes.TopN(out.Covered))
	return out, nil
}

// FormatArrhythmia renders the study outcome next to the paper's
// numbers.
func FormatArrhythmia(r *ArrhythmiaResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "arrhythmia study (phi=%d, k=%d, S <= %.1f)\n", r.Phi, r.K, r.Threshold)
	fmt.Fprintf(&b, "  projection method: %d/%d rare-class among covered outliers (%.0f%%)  [paper: 43/85]\n",
		r.RareCovered, r.Covered, 100*r.RareFractionProjection())
	fmt.Fprintf(&b, "  kNN baseline [25]: %d/%d rare-class among top outliers (%.0f%%)      [paper: 28/85]\n",
		r.RareKNN, r.Covered, 100*r.RareFractionKNN())
	fmt.Fprintf(&b, "  LOF baseline [10]: %d/%d rare-class among top outliers (%.0f%%)      [extension]\n",
		r.RareLOF, r.Covered, 100*float64(r.RareLOF)/float64(max(1, r.Covered)))
	fmt.Fprintf(&b, "  recording-error record surfaced this run: %v (its cube qualifies at S=%.2f)\n",
		r.RecordingErrorFound, r.RecordingErrorSparsity)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
