package discretize

import (
	"math"
	"testing"

	"hido/internal/xrand"
)

// exactRank is the fraction of vals ≤ v, the oracle Rank is tested
// against.
func exactRank(vals []float64, v float64) float64 {
	_, hi := rankInterval(vals, v)
	return hi
}

// rankInterval returns the fraction of vals strictly below v and the
// fraction ≤ v. With ties these differ by the tie group's whole mass:
// the interval is what an ε-approximate quantile guarantee speaks
// about, since no cut can land inside a tie group.
func rankInterval(vals []float64, v float64) (lo, hi float64) {
	n, below, at := 0, 0, 0
	for _, x := range vals {
		if math.IsNaN(x) {
			continue
		}
		n++
		if x < v {
			below++
		} else if x == v {
			at++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(below) / float64(n), float64(below+at) / float64(n)
}

func TestSketchExactWhileUncompacted(t *testing.T) {
	// Windows no larger than the capacity never compact, so Cuts must be
	// bit-identical to the offline sorted pass at every phi.
	r := xrand.New(1)
	for _, n := range []int{1, 2, 3, 7, 50, 512, 1000} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormMS(3, 10)
		}
		s := NewSketch()
		for _, v := range vals {
			s.Add(v)
		}
		if s.RankErrorBound() != 0 {
			t.Fatalf("n=%d: exact sketch reports error bound %v", n, s.RankErrorBound())
		}
		for _, phi := range []int{2, 3, 5, 10} {
			got := s.Cuts(phi)
			want := equiDepthCuts(vals, phi)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d phi=%d cut %d: sketch %v, exact %v", n, phi, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSketchDifferentialRandomWindows(t *testing.T) {
	// The acceptance differential: on 1000 random windows the sketch
	// cuts stay within the rank-error bound of the exact equi-depth
	// cuts. Small capacities force compaction so the approximate path is
	// genuinely exercised.
	r := xrand.New(7)
	windows := 1000
	if testing.Short() {
		windows = 100
	}
	for w := 0; w < windows; w++ {
		n := 16 + r.Intn(3000)
		capacity := 32 << r.Intn(4) // 32..256: most windows compact
		phi := 2 + r.Intn(14)
		vals := make([]float64, n)
		switch w % 3 {
		case 0: // smooth
			for i := range vals {
				vals[i] = r.NormMS(0, 1)
			}
		case 1: // heavy ties (discrete attribute)
			for i := range vals {
				vals[i] = float64(r.Intn(7))
			}
		case 2: // skewed with missing entries
			for i := range vals {
				if r.Bernoulli(0.05) {
					vals[i] = math.NaN()
				} else {
					vals[i] = r.Exp() * 100
				}
			}
		}
		s := NewSketchCap(capacity)
		for _, v := range vals {
			s.Add(v)
		}
		got := s.Cuts(phi)
		// Tolerance: the sketch's own conservative bound plus the 1/n
		// discreteness of the exact order statistic.
		tol := s.RankErrorBound() + 1.5/float64(maxInt(1, s.N()))
		for i, cut := range got {
			if i > 0 && cut < got[i-1] {
				t.Fatalf("window %d: cuts not monotone at %d: %v", w, i, got)
			}
			want := float64(i+1) / float64(phi)
			// ε-quantile guarantee: the cut's rank interval (ties span a
			// whole mass step no cut can split) must meet [want−tol, want+tol].
			lo, hi := rankInterval(vals, cut)
			if lo > want+tol || hi < want-tol {
				t.Fatalf("window %d (n=%d cap=%d phi=%d) cut %d=%v: rank in [%v,%v], want %v ± %v",
					w, n, capacity, phi, i, cut, lo, hi, want, tol)
			}
		}
	}
}

func TestSketchMergeMatchesUnion(t *testing.T) {
	// Merging epoch sketches must answer like one sketch over the
	// concatenated stream, within the error bound.
	r := xrand.New(11)
	parts := make([][]float64, 5)
	var all []float64
	for p := range parts {
		n := 200 + r.Intn(800)
		parts[p] = make([]float64, n)
		for i := range parts[p] {
			parts[p][i] = r.NormMS(float64(p), 2)
		}
		all = append(all, parts[p]...)
	}
	merged := NewSketchCap(128)
	for _, part := range parts {
		ps := NewSketchCap(128)
		for _, v := range part {
			ps.Add(v)
		}
		merged.Merge(ps)
	}
	if merged.N() != len(all) {
		t.Fatalf("merged N=%d, want %d", merged.N(), len(all))
	}
	tol := merged.RankErrorBound() + 2.0/float64(len(all))
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		v := merged.Quantile(q)
		if got := exactRank(all, v); math.Abs(got-q) > tol {
			t.Errorf("quantile(%v)=%v has exact rank %v (tol %v)", q, v, got, tol)
		}
	}
}

func TestSketchDeterministic(t *testing.T) {
	// Same stream, same capacity → byte-identical retained state. The
	// repo-wide reproducibility invariant: no coin flips in compaction.
	r1, r2 := xrand.New(3), xrand.New(3)
	a, b := NewSketchCap(64), NewSketchCap(64)
	for i := 0; i < 10000; i++ {
		a.Add(r1.Float64())
		b.Add(r2.Float64())
	}
	ca, cb := a.Cuts(10), b.Cuts(10)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("cut %d differs: %v vs %v", i, ca[i], cb[i])
		}
	}
}

func TestSketchDegenerateWindows(t *testing.T) {
	// Empty sketch: all-+Inf cuts, the all-missing convention.
	s := NewSketch()
	for _, c := range s.Cuts(5) {
		if !math.IsInf(c, 1) {
			t.Fatalf("empty sketch cut %v, want +Inf", c)
		}
	}
	if s.Quantile(0.5) != math.Inf(1) {
		t.Error("empty sketch quantile not +Inf")
	}
	// NaN-only stream behaves as empty.
	s.Add(math.NaN())
	if s.N() != 0 {
		t.Error("NaN counted")
	}
	// One value: every cut collapses onto it; FromCuts accepts it.
	s.Add(42)
	cuts := s.Cuts(5)
	for _, c := range cuts {
		if c != 42 {
			t.Fatalf("single-value cuts %v", cuts)
		}
	}
	FromCuts(5, [][]float64{cuts}) // must not panic
	// Constant stream past compaction: still one repeated boundary.
	c := NewSketchCap(16)
	for i := 0; i < 5000; i++ {
		c.Add(7)
	}
	for _, cut := range c.Cuts(4) {
		if cut != 7 {
			t.Fatalf("constant stream cuts %v", c.Cuts(4))
		}
	}
}

func TestSketchWeightConservation(t *testing.T) {
	// Compaction must preserve total weight exactly, or Cuts targets
	// drift from the true stream length.
	s := NewSketchCap(32)
	r := xrand.New(5)
	for i := 0; i < 12345; i++ {
		s.Add(r.Float64())
	}
	var total uint64
	for h, lv := range s.levels {
		total += uint64(len(lv)) << uint(h)
	}
	if total != s.n {
		t.Fatalf("retained weight %d, want %d", total, s.n)
	}
	if s.Retained() >= 12345/4 {
		t.Fatalf("sketch retained %d items of 12345 — not compacting", s.Retained())
	}
}

func TestSketchReset(t *testing.T) {
	s := NewSketchCap(32)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	s.Reset()
	if s.N() != 0 || s.Retained() != 0 {
		t.Fatalf("reset left N=%d retained=%d", s.N(), s.Retained())
	}
	s.Add(1)
	if got := s.Cuts(2); got[0] != 1 {
		t.Fatalf("post-reset cuts %v", got)
	}
}

func TestSketchColumns(t *testing.T) {
	vals := []float64{
		1, 10,
		2, 20,
		3, math.NaN(),
	}
	cols := SketchColumns(vals, 2, 64)
	if cols[0].N() != 3 || cols[1].N() != 2 {
		t.Fatalf("column counts %d,%d", cols[0].N(), cols[1].N())
	}
	if cols[0].Quantile(1) != 3 || cols[1].Quantile(1) != 20 {
		t.Error("column maxima wrong")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
