// Package discretize builds the grid over which sparse subspace cubes
// are mined (§1.3 of the paper). Each attribute is divided into φ
// ranges; with equi-depth ranges (the paper's choice) each range holds
// a fraction f = 1/φ of the records, so that locality adapts to the
// data's density. Equi-width ranges are provided for the ablation
// study.
//
// The output is a per-record cell assignment: for record i and
// dimension j, Cell(i, j) is the 1-based range containing the value,
// or 0 when the attribute is missing — missing attributes simply never
// match a constrained cube position, which is what lets the method
// mine data with missing values (§1.2).
package discretize

import (
	"fmt"
	"math"
	"sort"

	"hido/internal/dataset"
)

// Method selects the range-construction strategy.
type Method int

const (
	// EquiDepth gives every range an (approximately) equal number of
	// records per dimension — the paper's choice.
	EquiDepth Method = iota
	// EquiWidth gives every range an equal share of the value span.
	EquiWidth
)

func (m Method) String() string {
	switch m {
	case EquiDepth:
		return "equi-depth"
	case EquiWidth:
		return "equi-width"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Grid is a fitted discretization: per-dimension cut points plus the
// per-record cell assignments.
type Grid struct {
	Phi    int
	N, D   int
	Method Method
	// cuts[j] holds phi-1 ascending boundaries for dimension j: value v
	// falls in range r (1-based) iff cuts[r-2] < v <= cuts[r-1] with the
	// conventions cuts[-1] = -inf, cuts[phi-1] = +inf.
	cuts [][]float64
	// cells is row-major N×D; 0 = missing.
	cells []uint16
}

// Fit builds a grid with phi ranges per dimension over the dataset.
// phi must be at least 2 and fit in uint16.
func Fit(ds *dataset.Dataset, phi int, method Method) *Grid {
	if phi < 2 || phi > math.MaxUint16 {
		panic(fmt.Sprintf("discretize: phi=%d out of range [2,%d]", phi, math.MaxUint16))
	}
	if ds.N() == 0 || ds.D() == 0 {
		panic("discretize: empty dataset")
	}
	g := &Grid{
		Phi:    phi,
		N:      ds.N(),
		D:      ds.D(),
		Method: method,
		cuts:   make([][]float64, ds.D()),
		cells:  make([]uint16, ds.N()*ds.D()),
	}
	for j := 0; j < ds.D(); j++ {
		col := ds.Column(j)
		switch method {
		case EquiDepth:
			g.cuts[j] = equiDepthCuts(col, phi)
		case EquiWidth:
			g.cuts[j] = equiWidthCuts(col, phi)
		default:
			panic("discretize: unknown method")
		}
		for i, v := range col {
			g.cells[i*g.D+j] = g.assign(j, v)
		}
	}
	return g
}

// equiDepthCuts places boundaries at the q = r/phi quantiles of the
// non-missing values. Ties in the data can make some ranges larger
// than N/phi and others empty; this mirrors how equi-depth histograms
// behave on discrete-valued attributes.
func equiDepthCuts(col []float64, phi int) []float64 {
	clean := make([]float64, 0, len(col))
	for _, v := range col {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	cuts := make([]float64, phi-1)
	if len(clean) == 0 {
		// All missing: boundaries are irrelevant; every cell is 0.
		for i := range cuts {
			cuts[i] = math.Inf(1)
		}
		return cuts
	}
	sort.Float64s(clean)
	n := len(clean)
	for r := 1; r < phi; r++ {
		// Boundary after the ceil(r·n/phi)-th order statistic, so each of
		// the phi ranges receives floor-or-ceil of n/phi records.
		idx := (r*n + phi - 1) / phi // ceil(r·n/phi)
		if idx < 1 {
			idx = 1
		}
		if idx > n {
			idx = n
		}
		cuts[r-1] = clean[idx-1]
	}
	return cuts
}

// equiWidthCuts splits [min, max] into phi equal-width intervals.
func equiWidthCuts(col []float64, phi int) []float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range col {
		if math.IsNaN(v) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	cuts := make([]float64, phi-1)
	if math.IsInf(min, 1) || min == max {
		// All missing or constant: single effective range.
		for i := range cuts {
			cuts[i] = math.Inf(1)
		}
		return cuts
	}
	w := (max - min) / float64(phi)
	for r := 1; r < phi; r++ {
		cuts[r-1] = min + w*float64(r)
	}
	return cuts
}

// Apply discretizes a dataset with externally fitted cut points: the
// grid carries the given boundaries and the dataset's cell
// assignments under them. This is the shard-side half of a
// distributed fit — the coordinator computes global cuts over the
// concatenated data, and each shard applies them to its rows, so the
// shards' cell assignments concatenate to exactly what a single-node
// Fit over all rows would have produced. The cuts contract matches
// FromCuts: phi−1 ascending boundaries per dimension.
func Apply(ds *dataset.Dataset, phi int, cuts [][]float64) *Grid {
	if ds.N() == 0 || ds.D() == 0 {
		panic("discretize: empty dataset")
	}
	if len(cuts) != ds.D() {
		panic(fmt.Sprintf("discretize: %d cut dimensions for a %d-dimensional dataset", len(cuts), ds.D()))
	}
	g := FromCuts(phi, cuts)
	g.N = ds.N()
	g.cells = make([]uint16, ds.N()*ds.D())
	for j := 0; j < ds.D(); j++ {
		for i, v := range ds.Column(j) {
			g.cells[i*g.D+j] = g.assign(j, v)
		}
	}
	return g
}

// FromCuts reconstructs a grid from previously fitted cut points —
// the deserialization path for persisted models. The grid carries no
// record assignments (N = 0): Cell and CellsRow are unavailable, but
// AssignValue, AssignRow, RangeBounds and DescribeRange work exactly
// as on the original. Each dimension must supply phi−1 ascending cuts.
func FromCuts(phi int, cuts [][]float64) *Grid {
	if phi < 2 || phi > math.MaxUint16 {
		panic(fmt.Sprintf("discretize: phi=%d out of range [2,%d]", phi, math.MaxUint16))
	}
	if len(cuts) == 0 {
		panic("discretize: FromCuts with no dimensions")
	}
	g := &Grid{Phi: phi, N: 0, D: len(cuts), Method: EquiDepth,
		cuts: make([][]float64, len(cuts))}
	for j, c := range cuts {
		if len(c) != phi-1 {
			panic(fmt.Sprintf("discretize: dimension %d has %d cuts, want %d", j, len(c), phi-1))
		}
		for i := 1; i < len(c); i++ {
			if c[i] < c[i-1] {
				panic(fmt.Sprintf("discretize: dimension %d cuts not ascending", j))
			}
		}
		g.cuts[j] = append([]float64(nil), c...)
	}
	return g
}

// AllCuts returns every dimension's boundaries as a deep copy — the
// serialization counterpart of FromCuts.
func (g *Grid) AllCuts() [][]float64 {
	out := make([][]float64, g.D)
	for j := range out {
		out[j] = append([]float64(nil), g.cuts[j]...)
	}
	return out
}

// AssignValue maps an arbitrary value (not necessarily from the
// fitted data) to its 1-based range in dimension j, or 0 for NaN.
// This is how records that arrive after fitting — a scoring stream —
// are placed on the existing grid.
func (g *Grid) AssignValue(j int, v float64) uint16 {
	if j < 0 || j >= g.D {
		panic(fmt.Sprintf("discretize: AssignValue(%d) out of range [0,%d)", j, g.D))
	}
	return g.assign(j, v)
}

// AssignRow maps a full record onto the grid, one range per dimension
// (0 where the attribute is missing). The result slice is freshly
// allocated.
func (g *Grid) AssignRow(row []float64) []uint16 {
	return g.AssignRowInto(row, make([]uint16, g.D))
}

// AssignRowInto is AssignRow writing into a caller-owned slice of
// length D — the allocation-free form the serving hot path uses with
// per-worker scratch. It returns out.
func (g *Grid) AssignRowInto(row []float64, out []uint16) []uint16 {
	if len(row) != g.D {
		panic(fmt.Sprintf("discretize: AssignRow with %d values, want %d", len(row), g.D))
	}
	if len(out) != g.D {
		panic(fmt.Sprintf("discretize: AssignRowInto scratch has %d cells, want %d", len(out), g.D))
	}
	for j, v := range row {
		out[j] = g.assign(j, v)
	}
	return out
}

// assign maps value v in dimension j to its 1-based range; 0 for NaN.
func (g *Grid) assign(j int, v float64) uint16 {
	if math.IsNaN(v) {
		return 0
	}
	cuts := g.cuts[j]
	// First range whose upper boundary is >= v; values above every cut
	// land in range phi.
	r := sort.SearchFloat64s(cuts, v)
	// SearchFloat64s returns the first index with cuts[i] >= v; a value
	// exactly equal to a boundary belongs to the lower range, which the
	// search already achieves since cuts[i] >= v includes equality.
	return uint16(r + 1)
}

// Cell returns the 1-based range of record i in dimension j, or 0 when
// the attribute is missing.
func (g *Grid) Cell(i, j int) uint16 {
	if i < 0 || i >= g.N || j < 0 || j >= g.D {
		panic(fmt.Sprintf("discretize: Cell(%d,%d) out of range %dx%d", i, j, g.N, g.D))
	}
	return g.cells[i*g.D+j]
}

// CellsRow returns record i's assignment vector as a view; callers
// must not mutate it.
func (g *Grid) CellsRow(i int) []uint16 {
	if i < 0 || i >= g.N {
		panic(fmt.Sprintf("discretize: CellsRow(%d) out of range [0,%d)", i, g.N))
	}
	return g.cells[i*g.D : (i+1)*g.D : (i+1)*g.D]
}

// Cuts returns dimension j's boundaries (phi-1 ascending values) as a
// copy.
func (g *Grid) Cuts(j int) []float64 {
	if j < 0 || j >= g.D {
		panic(fmt.Sprintf("discretize: Cuts(%d) out of range [0,%d)", j, g.D))
	}
	return append([]float64(nil), g.cuts[j]...)
}

// RangeBounds returns the half-open value interval (lo, hi] covered by
// range r (1-based) of dimension j, using ±inf at the extremes.
func (g *Grid) RangeBounds(j int, r uint16) (lo, hi float64) {
	if r < 1 || int(r) > g.Phi {
		panic(fmt.Sprintf("discretize: RangeBounds range %d out of [1,%d]", r, g.Phi))
	}
	cuts := g.cuts[j]
	if r == 1 {
		lo = math.Inf(-1)
	} else {
		lo = cuts[r-2]
	}
	if int(r) == g.Phi {
		hi = math.Inf(1)
	} else {
		hi = cuts[r-1]
	}
	return lo, hi
}

// RangeCounts returns, for dimension j, the number of records assigned
// to each of the phi ranges (index 0 ↦ range 1) plus the number of
// missing entries.
func (g *Grid) RangeCounts(j int) (counts []int, missing int) {
	counts = make([]int, g.Phi)
	for i := 0; i < g.N; i++ {
		c := g.cells[i*g.D+j]
		if c == 0 {
			missing++
		} else {
			counts[c-1]++
		}
	}
	return counts, missing
}

// DescribeRange renders range r of dimension j with its value bounds,
// e.g. "crime∈(0.25,1.63]"; used to report interpretable projections
// as in the paper's housing study.
func (g *Grid) DescribeRange(name string, j int, r uint16) string {
	lo, hi := g.RangeBounds(j, r)
	return fmt.Sprintf("%s∈(%.4g,%.4g]", name, lo, hi)
}
