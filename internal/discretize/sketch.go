package discretize

import (
	"fmt"
	"math"
	"sort"
)

// Sketch is a mergeable equi-depth quantile sketch in the KLL family:
// a ladder of fixed-capacity compactors where level h holds items of
// weight 2^h. Adding is amortized O(1); when a level overflows it is
// sorted and every other item is promoted with doubled weight, so the
// sketch holds O(cap·log(n/cap)) items regardless of stream length.
//
// It exists so grid boundaries can track a stream online: each ingest
// epoch keeps one sketch per dimension, sketches of live epochs merge
// into a window sketch, and Cuts(phi) yields equi-depth boundaries
// without the full sorted pass discretize.Fit needs. While no
// compaction has happened (n ≤ cap) the sketch is exact and Cuts is
// bit-identical to equiDepthCuts; past that, quantile ranks are off by
// at most ~log2(n/cap)/cap of the stream (see RankErrorBound).
//
// Compaction keeps alternating parities instead of coin flips, so a
// sketch fed the same stream is byte-deterministic — the repo-wide
// reproducibility invariant — at the cost of the adversarial-stream
// guarantees randomized KLL has.
//
// A Sketch is not safe for concurrent use.
type Sketch struct {
	cap    int
	n      uint64 // non-NaN values observed (total weight)
	levels [][]float64
	// parity[h] selects which half survives level h's next compaction;
	// alternating it centers the error instead of drifting one way.
	parity []bool
	// scratch recycles the weighted-item buffer Cuts and Rank sort.
	scratch []weighted
}

// weighted is one retained item with its level weight materialized.
type weighted struct {
	v float64
	w uint64
}

// DefaultSketchCap is the per-level compactor capacity used by
// NewSketch: windows up to this size are represented exactly.
const DefaultSketchCap = 1024

// NewSketch returns an empty sketch with the default capacity.
func NewSketch() *Sketch { return NewSketchCap(DefaultSketchCap) }

// NewSketchCap returns an empty sketch whose compactors hold up to k
// items per level. k below 8 is raised to 8 (tiny compactors give
// useless error bounds); k must fit in memory comfortably — each level
// is one []float64 of length ≤ k.
func NewSketchCap(k int) *Sketch {
	if k < 8 {
		k = 8
	}
	// An even capacity keeps compaction exact in total weight: odd
	// lengths always leave one item behind at the level.
	if k%2 == 1 {
		k++
	}
	return &Sketch{cap: k}
}

// N returns how many non-missing values the sketch has absorbed
// (including merged-in sketches).
func (s *Sketch) N() int { return int(s.n) }

// Reset empties the sketch in place, keeping its buffers.
func (s *Sketch) Reset() {
	s.n = 0
	for h := range s.levels {
		s.levels[h] = s.levels[h][:0]
		s.parity[h] = false
	}
}

// Add absorbs one value. NaN (the missing-attribute encoding) is
// ignored, mirroring equiDepthCuts dropping missing entries.
func (s *Sketch) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.grow(1)
	s.levels[0] = append(s.levels[0], v)
	s.n++
	if len(s.levels[0]) >= s.cap {
		s.compactFrom(0)
	}
}

// grow ensures at least h levels exist.
func (s *Sketch) grow(h int) {
	for len(s.levels) < h {
		s.levels = append(s.levels, nil)
		s.parity = append(s.parity, false)
	}
}

// compactFrom cascades compactions upward from level h until every
// level is under capacity again.
func (s *Sketch) compactFrom(h int) {
	for ; h < len(s.levels) && len(s.levels[h]) >= s.cap; h++ {
		buf := s.levels[h]
		sort.Float64s(buf)
		// An odd-length buffer keeps its maximum at this level so the
		// promoted pairs are exact halves and total weight is preserved.
		m := len(buf)
		keepMax := m%2 == 1
		if keepMax {
			m--
		}
		start := 0
		if s.parity[h] {
			start = 1
		}
		s.parity[h] = !s.parity[h]
		s.grow(h + 2)
		for i := start; i < m; i += 2 {
			s.levels[h+1] = append(s.levels[h+1], buf[i])
		}
		if keepMax {
			buf[0] = buf[len(buf)-1]
			s.levels[h] = buf[:1]
		} else {
			s.levels[h] = buf[:0]
		}
	}
}

// Merge absorbs another sketch; o is left unchanged. The two sketches
// may have different capacities — the receiver's governs from here on.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	s.grow(len(o.levels))
	for h, lv := range o.levels {
		s.levels[h] = append(s.levels[h], lv...)
	}
	s.n += o.n
	for h := 0; h < len(s.levels); h++ {
		if len(s.levels[h]) >= s.cap {
			s.compactFrom(h)
		}
	}
}

// items materializes the retained values with their weights, sorted by
// value, into the reusable scratch buffer.
func (s *Sketch) items() []weighted {
	out := s.scratch[:0]
	for h, lv := range s.levels {
		w := uint64(1) << uint(h)
		for _, v := range lv {
			out = append(out, weighted{v, w})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].v < out[b].v })
	s.scratch = out
	return out
}

// Rank estimates the fraction of the stream that is ≤ v, in [0,1].
// An empty sketch reports 0.
func (s *Sketch) Rank(v float64) float64 {
	if s.n == 0 || math.IsNaN(v) {
		return 0
	}
	var below uint64
	for h, lv := range s.levels {
		w := uint64(1) << uint(h)
		for _, x := range lv {
			if x <= v {
				below += w
			}
		}
	}
	return float64(below) / float64(s.n)
}

// Quantile estimates the q-quantile (q in [0,1]) of the stream. An
// empty sketch reports +Inf, matching the all-missing convention of
// equiDepthCuts.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return math.Inf(1)
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	items := s.items()
	target := uint64(math.Ceil(q * float64(s.n)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for _, it := range items {
		cum += it.w
		if cum >= target {
			return it.v
		}
	}
	return items[len(items)-1].v
}

// Cuts returns phi−1 non-decreasing equi-depth boundaries over the
// absorbed stream — the online counterpart of equiDepthCuts, and
// bit-identical to it while the sketch is still exact (no compaction
// yet). Degenerate windows degrade gracefully: an empty sketch yields
// all-+Inf cuts (every record lands in range 1 via NaN handling
// upstream), and windows smaller than phi repeat values, leaving some
// ranges empty exactly as equi-depth histograms do on tiny or
// tie-heavy data. The result is always valid input for FromCuts/Apply.
func (s *Sketch) Cuts(phi int) []float64 {
	if phi < 2 || phi > math.MaxUint16 {
		panic(fmt.Sprintf("discretize: sketch cuts phi=%d out of range [2,%d]", phi, math.MaxUint16))
	}
	cuts := make([]float64, phi-1)
	if s.n == 0 {
		for i := range cuts {
			cuts[i] = math.Inf(1)
		}
		return cuts
	}
	items := s.items()
	var cum uint64
	idx := 0
	for r := 1; r < phi; r++ {
		// Boundary after the ceil(r·n/phi)-th weighted order statistic —
		// the same placement rule as equiDepthCuts.
		target := (uint64(r)*s.n + uint64(phi) - 1) / uint64(phi)
		if target < 1 {
			target = 1
		}
		for idx < len(items) && cum+items[idx].w < target {
			cum += items[idx].w
			idx++
		}
		if idx >= len(items) {
			cuts[r-1] = items[len(items)-1].v
		} else {
			cuts[r-1] = items[idx].v
		}
	}
	return cuts
}

// RankErrorBound is a conservative bound on the rank error of Cuts and
// Rank as a fraction of the stream: zero while the sketch is exact,
// and ~log2(n/cap)/cap·(cap grows a level per doubling) once
// compaction starts. Tests use it as the differential tolerance
// against the exact sorted pass.
func (s *Sketch) RankErrorBound() float64 {
	if s.n == 0 {
		return 0
	}
	// Levels above 0 only exist after compaction; each compaction at
	// level h displaces any fixed rank by at most 2^h, and level h
	// compacts at most n/(cap·2^h) times — so each level contributes at
	// most n/cap rank error.
	levels := 0
	for h := 1; h < len(s.levels); h++ {
		if len(s.levels[h]) > 0 {
			levels = h
		}
	}
	if levels == 0 {
		return 0
	}
	return float64(levels+1) / float64(s.cap)
}

// Retained reports how many items the sketch currently holds across
// all levels — the memory footprint knob tests and benchmarks watch.
func (s *Sketch) Retained() int {
	total := 0
	for _, lv := range s.levels {
		total += len(lv)
	}
	return total
}

// SketchColumns builds one sketch per dimension over a row-major
// values slice (NaN = missing), the epoch-ingest helper. d must divide
// len(vals).
func SketchColumns(vals []float64, d, capacity int) []*Sketch {
	if d <= 0 || len(vals)%d != 0 {
		panic(fmt.Sprintf("discretize: SketchColumns d=%d over %d values", d, len(vals)))
	}
	out := make([]*Sketch, d)
	for j := range out {
		out[j] = NewSketchCap(capacity)
	}
	for i := 0; i < len(vals); i += d {
		for j := 0; j < d; j++ {
			out[j].Add(vals[i+j])
		}
	}
	return out
}
