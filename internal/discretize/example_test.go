package discretize_test

import (
	"fmt"
	"math"

	"hido/internal/dataset"
	"hido/internal/discretize"
)

// Equi-depth ranges hold equal record counts regardless of the value
// distribution — the paper's locality-adaptive grid (§1.3). Missing
// values take cell 0 and match no constrained cube position.
func ExampleFit() {
	ds := dataset.New([]string{"x"}, 0)
	for _, v := range []float64{1, 2, 3, 4, 100, 200, 300, 400, math.NaN()} {
		ds.AppendRow([]float64{v}, "")
	}
	g := discretize.Fit(ds, 4, discretize.EquiDepth)
	counts, missing := g.RangeCounts(0)
	fmt.Println("per-range counts:", counts, "missing:", missing)
	fmt.Println("value 250 lands in range", g.AssignValue(0, 250))
	lo, hi := g.RangeBounds(0, 1)
	fmt.Printf("range 1 covers (%.0f,%.0f]\n", lo, hi)
	// Output:
	// per-range counts: [2 2 2 2] missing: 1
	// value 250 lands in range 4
	// range 1 covers (-Inf,2]
}
