package discretize

import (
	"encoding/binary"
	"math"
	"testing"

	"hido/internal/dataset"
)

// FuzzEquiDepth feeds arbitrary float columns — including NaN, ±Inf,
// and heavy duplicates — through Fit and checks the invariants every
// caller relies on: no panic, cells in [0, phi] with 0 exactly for
// missing values, ascending cut points, and assignment idempotence
// (re-assigning a fitted value reproduces its cell).
func FuzzEquiDepth(f *testing.F) {
	nan := math.Float64bits(math.NaN())
	posInf := math.Float64bits(math.Inf(1))
	negInf := math.Float64bits(math.Inf(-1))
	seed := func(phi, d byte, vals ...uint64) []byte {
		b := []byte{phi, d}
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, v)
		}
		return b
	}
	f.Add(seed(3, 2, nan, posInf, negInf, math.Float64bits(1.5)))
	f.Add(seed(2, 1, nan, nan, nan))
	f.Add(seed(9, 3, math.Float64bits(7.0), math.Float64bits(7.0), math.Float64bits(7.0),
		math.Float64bits(7.0), math.Float64bits(7.0), math.Float64bits(-7.0)))
	f.Add(seed(255, 1, posInf, posInf, negInf))
	f.Add(seed(0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		phi := 2 + int(data[0])%15 // [2, 16]
		d := 1 + int(data[1])%4    // [1, 4]
		data = data[2:]

		vals := make([]float64, 0, len(data)/8+1)
		for len(data) >= 8 {
			vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(data)))
			data = data[8:]
		}
		if len(vals) == 0 {
			vals = append(vals, 0)
		}
		n := (len(vals) + d - 1) / d

		names := make([]string, d)
		for j := range names {
			names[j] = "x"
		}
		ds := dataset.New(names, n)
		row := make([]float64, d)
		for i := 0; i < n; i++ {
			for j := range row {
				row[j] = vals[(i*d+j)%len(vals)]
			}
			ds.AppendRow(row, "")
		}

		for _, method := range []Method{EquiDepth, EquiWidth} {
			g := Fit(ds, phi, method)
			for j := 0; j < d; j++ {
				cuts := g.Cuts(j)
				if len(cuts) != phi-1 {
					t.Fatalf("%v dim %d: %d cuts, want %d", method, j, len(cuts), phi-1)
				}
				for i := 1; i < len(cuts); i++ {
					if cuts[i] < cuts[i-1] {
						t.Fatalf("%v dim %d: cuts not ascending: %v", method, j, cuts)
					}
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < d; j++ {
					v := ds.RowView(i)[j]
					c := g.Cell(i, j)
					if math.IsNaN(v) {
						if c != 0 {
							t.Fatalf("%v: NaN at (%d,%d) assigned range %d", method, i, j, c)
						}
						continue
					}
					if c < 1 || int(c) > phi {
						t.Fatalf("%v: value %v at (%d,%d) assigned range %d outside [1,%d]",
							method, v, i, j, c, phi)
					}
					if re := g.AssignValue(j, v); re != c {
						t.Fatalf("%v: re-assigning %v at dim %d gives %d, fitted cell %d",
							method, v, j, re, c)
					}
				}
			}
		}
	})
}
