package discretize

import (
	"math"
	"testing"
	"testing/quick"

	"hido/internal/dataset"
	"hido/internal/xrand"
)

func uniformDS(n, d int, seed uint64) *dataset.Dataset {
	r := xrand.New(seed)
	names := make([]string, d)
	for j := range names {
		names[j] = "x"
	}
	ds := dataset.New(names, n)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = r.Float64()
		}
		ds.AppendRow(row, "")
	}
	return ds
}

func TestEquiDepthBalanced(t *testing.T) {
	// With distinct continuous values, each of the phi ranges must hold
	// floor(n/phi) or ceil(n/phi) records.
	ds := uniformDS(1000, 3, 1)
	g := Fit(ds, 10, EquiDepth)
	for j := 0; j < 3; j++ {
		counts, missing := g.RangeCounts(j)
		if missing != 0 {
			t.Fatalf("dim %d: %d missing", j, missing)
		}
		for r, c := range counts {
			if c != 100 {
				t.Errorf("dim %d range %d: count %d, want 100", j, r+1, c)
			}
		}
	}
}

func TestEquiDepthUnevenN(t *testing.T) {
	ds := uniformDS(103, 1, 2)
	g := Fit(ds, 10, EquiDepth)
	counts, _ := g.RangeCounts(0)
	total := 0
	for r, c := range counts {
		if c < 10 || c > 11 {
			t.Errorf("range %d count %d, want 10 or 11", r+1, c)
		}
		total += c
	}
	if total != 103 {
		t.Errorf("counts sum to %d", total)
	}
}

func TestEquiDepthWithHeavyTies(t *testing.T) {
	// A discrete attribute where one value holds half the mass: that
	// value's range absorbs the excess; counts still sum to N and every
	// record is assigned.
	ds := dataset.New([]string{"x"}, 0)
	for i := 0; i < 50; i++ {
		ds.AppendRow([]float64{7}, "")
	}
	for i := 0; i < 50; i++ {
		ds.AppendRow([]float64{float64(i)}, "")
	}
	g := Fit(ds, 5, EquiDepth)
	counts, missing := g.RangeCounts(0)
	if missing != 0 {
		t.Fatalf("missing = %d", missing)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 100 {
		t.Errorf("counts sum to %d, want 100", total)
	}
	// All copies of the tied value land in one range.
	r := g.Cell(0, 0)
	for i := 1; i < 50; i++ {
		if g.Cell(i, 0) != r {
			t.Fatal("tied values split across ranges")
		}
	}
}

func TestEquiWidthBounds(t *testing.T) {
	ds := dataset.New([]string{"x"}, 0)
	for i := 0; i <= 100; i++ {
		ds.AppendRow([]float64{float64(i)}, "") // 0..100
	}
	g := Fit(ds, 4, EquiWidth)
	cuts := g.Cuts(0)
	want := []float64{25, 50, 75}
	for i, c := range cuts {
		if math.Abs(c-want[i]) > 1e-9 {
			t.Errorf("cut %d = %v, want %v", i, c, want[i])
		}
	}
	if g.Cell(0, 0) != 1 {
		t.Errorf("value 0 in range %d", g.Cell(0, 0))
	}
	if g.Cell(100, 0) != 4 {
		t.Errorf("value 100 in range %d", g.Cell(100, 0))
	}
	// Boundary value belongs to the lower range.
	if g.Cell(25, 0) != 1 {
		t.Errorf("value 25 in range %d, want 1", g.Cell(25, 0))
	}
	if g.Cell(26, 0) != 2 {
		t.Errorf("value 26 in range %d, want 2", g.Cell(26, 0))
	}
}

func TestMissingValuesGetCellZero(t *testing.T) {
	ds := dataset.New([]string{"x", "y"}, 0)
	ds.AppendRow([]float64{1, math.NaN()}, "")
	ds.AppendRow([]float64{2, 5}, "")
	ds.AppendRow([]float64{3, 6}, "")
	g := Fit(ds, 2, EquiDepth)
	if g.Cell(0, 1) != 0 {
		t.Errorf("missing cell = %d, want 0", g.Cell(0, 1))
	}
	if g.Cell(0, 0) == 0 {
		t.Error("present value assigned missing cell")
	}
	counts, missing := g.RangeCounts(1)
	if missing != 1 {
		t.Errorf("missing count = %d", missing)
	}
	if counts[0]+counts[1] != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestAllMissingColumn(t *testing.T) {
	ds := dataset.New([]string{"x", "y"}, 0)
	ds.AppendRow([]float64{1, math.NaN()}, "")
	ds.AppendRow([]float64{2, math.NaN()}, "")
	for _, m := range []Method{EquiDepth, EquiWidth} {
		g := Fit(ds, 3, m)
		if g.Cell(0, 1) != 0 || g.Cell(1, 1) != 0 {
			t.Errorf("%v: all-missing column produced non-zero cells", m)
		}
	}
}

func TestConstantColumnEquiWidth(t *testing.T) {
	ds := dataset.New([]string{"x"}, 0)
	ds.AppendRow([]float64{5}, "")
	ds.AppendRow([]float64{5}, "")
	g := Fit(ds, 3, EquiWidth)
	if g.Cell(0, 0) != g.Cell(1, 0) || g.Cell(0, 0) == 0 {
		t.Errorf("constant column cells: %d %d", g.Cell(0, 0), g.Cell(1, 0))
	}
}

func TestCellsRowMatchesCell(t *testing.T) {
	ds := uniformDS(50, 4, 3)
	g := Fit(ds, 5, EquiDepth)
	for i := 0; i < 50; i++ {
		row := g.CellsRow(i)
		for j := 0; j < 4; j++ {
			if row[j] != g.Cell(i, j) {
				t.Fatalf("CellsRow(%d)[%d] = %d != Cell = %d", i, j, row[j], g.Cell(i, j))
			}
		}
	}
}

func TestRangeBounds(t *testing.T) {
	ds := uniformDS(100, 1, 4)
	g := Fit(ds, 4, EquiDepth)
	lo, hi := g.RangeBounds(0, 1)
	if !math.IsInf(lo, -1) {
		t.Errorf("range 1 lo = %v, want -inf", lo)
	}
	lo2, hi2 := g.RangeBounds(0, 4)
	if !math.IsInf(hi2, 1) {
		t.Errorf("range 4 hi = %v, want +inf", hi2)
	}
	if hi != g.Cuts(0)[0] || lo2 != g.Cuts(0)[2] {
		t.Error("interior bounds do not match cuts")
	}
	// Each record's value lies inside its range's bounds.
	for i := 0; i < 100; i++ {
		r := g.Cell(i, 0)
		lo, hi := g.RangeBounds(0, r)
		v := ds.At(i, 0)
		if !(v > lo && v <= hi) {
			t.Fatalf("record %d value %v outside (%v,%v] of range %d", i, v, lo, hi, r)
		}
	}
}

func TestRangeBoundsPanics(t *testing.T) {
	ds := uniformDS(10, 1, 5)
	g := Fit(ds, 3, EquiDepth)
	for _, r := range []uint16{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RangeBounds(%d) did not panic", r)
				}
			}()
			g.RangeBounds(0, r)
		}()
	}
}

func TestFitPanics(t *testing.T) {
	ds := uniformDS(10, 2, 6)
	for name, fn := range map[string]func(){
		"phi=1":  func() { Fit(ds, 1, EquiDepth) },
		"method": func() { Fit(ds, 3, Method(99)) },
		"empty":  func() { Fit(dataset.New([]string{"x"}, 0), 3, EquiDepth) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAccessorPanics(t *testing.T) {
	g := Fit(uniformDS(10, 2, 7), 3, EquiDepth)
	for name, fn := range map[string]func(){
		"Cell row": func() { g.Cell(10, 0) },
		"Cell col": func() { g.Cell(0, 2) },
		"CellsRow": func() { g.CellsRow(-1) },
		"Cuts":     func() { g.Cuts(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMethodString(t *testing.T) {
	if EquiDepth.String() != "equi-depth" || EquiWidth.String() != "equi-width" {
		t.Error("Method.String wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown Method empty string")
	}
}

func TestDescribeRange(t *testing.T) {
	g := Fit(uniformDS(100, 1, 8), 4, EquiDepth)
	s := g.DescribeRange("crime", 0, 2)
	if s == "" || s[0:5] != "crime" {
		t.Errorf("DescribeRange = %q", s)
	}
}

// Property: every non-missing value is assigned a range in 1..phi, and
// assignment is monotone in the value.
func TestQuickAssignmentValidAndMonotone(t *testing.T) {
	f := func(seed uint64, phiRaw uint8) bool {
		phi := int(phiRaw)%9 + 2
		ds := uniformDS(200, 1, seed)
		g := Fit(ds, phi, EquiDepth)
		type pair struct {
			v float64
			r uint16
		}
		ps := make([]pair, 200)
		for i := range ps {
			r := g.Cell(i, 0)
			if r < 1 || int(r) > phi {
				return false
			}
			ps[i] = pair{ds.At(i, 0), r}
		}
		for a := range ps {
			for b := range ps {
				if ps[a].v < ps[b].v && ps[a].r > ps[b].r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: equi-depth range sizes never differ by more than 1 on
// tie-free data.
func TestQuickEquiDepthBalance(t *testing.T) {
	f := func(seed uint64, nRaw uint16, phiRaw uint8) bool {
		n := int(nRaw)%500 + 20
		phi := int(phiRaw)%8 + 2
		if phi > n {
			return true
		}
		g := Fit(uniformDS(n, 1, seed), phi, EquiDepth)
		counts, _ := g.RangeCounts(0)
		min, max := n, 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFitEquiDepth(b *testing.B) {
	ds := uniformDS(2000, 50, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Fit(ds, 10, EquiDepth)
	}
}

func TestFromCutsRoundTrip(t *testing.T) {
	ds := uniformDS(300, 4, 9)
	orig := Fit(ds, 5, EquiDepth)
	re := FromCuts(5, orig.AllCuts())
	if re.D != 4 || re.Phi != 5 || re.N != 0 {
		t.Fatalf("reconstructed grid shape wrong: %+v", re)
	}
	// Assignment agrees on every fitted value and on fresh values.
	for i := 0; i < 300; i++ {
		for j := 0; j < 4; j++ {
			v := ds.At(i, j)
			if orig.AssignValue(j, v) != re.AssignValue(j, v) {
				t.Fatalf("assignment diverges at (%d,%d)", i, j)
			}
		}
	}
	for j := 0; j < 4; j++ {
		for _, v := range []float64{-100, 0.5, 100, math.NaN()} {
			if orig.AssignValue(j, v) != re.AssignValue(j, v) {
				t.Fatalf("fresh-value assignment diverges at dim %d value %v", j, v)
			}
		}
		lo1, hi1 := orig.RangeBounds(j, 2)
		lo2, hi2 := re.RangeBounds(j, 2)
		if lo1 != lo2 || hi1 != hi2 {
			t.Fatalf("bounds diverge at dim %d", j)
		}
	}
}

func TestFromCutsValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"phi":        func() { FromCuts(1, [][]float64{{}}) },
		"empty":      func() { FromCuts(3, nil) },
		"wrong cuts": func() { FromCuts(3, [][]float64{{0.5}}) },
		"descending": func() { FromCuts(3, [][]float64{{0.9, 0.1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAssignRow(t *testing.T) {
	ds := uniformDS(100, 3, 10)
	g := Fit(ds, 4, EquiDepth)
	row := []float64{0.5, math.NaN(), 0.99}
	cells := g.AssignRow(row)
	if len(cells) != 3 || cells[1] != 0 {
		t.Fatalf("AssignRow = %v", cells)
	}
	for j, v := range row {
		if !math.IsNaN(v) && cells[j] != g.AssignValue(j, v) {
			t.Fatal("AssignRow disagrees with AssignValue")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong-width AssignRow did not panic")
		}
	}()
	g.AssignRow([]float64{1})
}

func TestAssignValuePanics(t *testing.T) {
	g := Fit(uniformDS(10, 2, 11), 3, EquiDepth)
	defer func() {
		if recover() == nil {
			t.Error("AssignValue out-of-range dim did not panic")
		}
	}()
	g.AssignValue(5, 0.5)
}
