// Package metrics implements the Prometheus text exposition format on
// the standard library alone: counters, gauges and histograms with
// optional labels, collected in a Registry and written by WriteText in
// the format scrapers expect (# HELP / # TYPE comments, one series per
// line, histogram _bucket/_sum/_count expansion).
//
// The package exists so the serving daemon (cmd/hidod) can expose a
// /metrics endpoint without pulling in the Prometheus client library —
// the repo builds from the Go standard library only. Only the features
// the server needs are implemented: no exemplars, no summaries, no
// timestamps, no metric expiry.
//
// All metric operations are safe for concurrent use. Series (label
// value combinations) are created on first touch and never removed.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind discriminates the three metric types.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one label-value combination of a family.
type series struct {
	labelValues []string
	value       float64  // counter/gauge
	buckets     []uint64 // histogram: cumulative-at-write, stored per bucket
	sum         float64  // histogram
	count       uint64   // histogram
}

// family is one named metric with its label schema and live series.
type family struct {
	name       string
	help       string
	kind       kind
	labelNames []string
	bounds     []float64 // histogram bucket upper bounds, ascending

	mu     sync.Mutex
	series map[string]*series
}

// get returns (creating if needed) the series for the label values.
// Callers hold f.mu.
func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s expects %d label value(s), got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		if f.kind == kindHistogram {
			s.buckets = make([]uint64, len(f.bounds))
		}
		f.series[key] = s
	}
	return s
}

// Registry collects metric families and renders them as Prometheus
// text. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help string, k kind, bounds []float64, labelNames []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("metrics: %s re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k,
		labelNames: append([]string(nil), labelNames...),
		bounds:     bounds,
		series:     make(map[string]*series),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or returns the existing) monotonically increasing
// counter. labelNames fixes the label schema; every Inc/Add must then
// supply exactly that many label values.
func (r *Registry) Counter(name, help string, labelNames ...string) *Counter {
	return &Counter{r.register(name, help, kindCounter, nil, labelNames)}
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labelNames ...string) *Gauge {
	return &Gauge{r.register(name, help, kindGauge, nil, labelNames)}
}

// Histogram registers (or returns the existing) histogram with the
// given ascending bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s buckets not strictly ascending", name))
		}
	}
	return &Histogram{r.register(name, help, kindHistogram, append([]float64(nil), buckets...), labelNames)}
}

// DefBuckets are latency-shaped default histogram bounds (seconds).
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing metric.
type Counter struct{ f *family }

// Inc adds 1 to the series selected by the label values.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Add adds v (must be >= 0) to the series selected by the label values.
func (c *Counter) Add(v float64, labelValues ...string) {
	if v < 0 {
		panic(fmt.Sprintf("metrics: counter %s decreased by %v", c.f.name, v))
	}
	c.f.mu.Lock()
	c.f.get(labelValues).value += v
	c.f.mu.Unlock()
}

// Value returns the current value of the series (0 if never touched);
// intended for tests.
func (c *Counter) Value(labelValues ...string) float64 {
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	return c.f.get(labelValues).value
}

// Bind resolves the series for one label-value combination up front
// and returns a handle whose Inc/Add skip the label join and variadic
// boxing on every call — the allocation-free form for hot paths that
// touch the same series per request. Series are never removed, so the
// resolved pointer stays valid for the registry's lifetime. The series
// appears in the text exposition immediately (value 0).
func (c *Counter) Bind(labelValues ...string) *BoundCounter {
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	return &BoundCounter{f: c.f, s: c.f.get(labelValues)}
}

// BoundCounter is a Counter pinned to one label-value combination.
type BoundCounter struct {
	f *family
	s *series
}

// Inc adds 1 without allocating.
func (b *BoundCounter) Inc() { b.Add(1) }

// Add adds v (must be >= 0) without allocating.
func (b *BoundCounter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("metrics: counter %s decreased by %v", b.f.name, v))
	}
	b.f.mu.Lock()
	b.s.value += v
	b.f.mu.Unlock()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ f *family }

// Set stores v in the series selected by the label values.
func (g *Gauge) Set(v float64, labelValues ...string) {
	g.f.mu.Lock()
	g.f.get(labelValues).value = v
	g.f.mu.Unlock()
}

// Add adds v (possibly negative) to the series.
func (g *Gauge) Add(v float64, labelValues ...string) {
	g.f.mu.Lock()
	g.f.get(labelValues).value += v
	g.f.mu.Unlock()
}

// Value returns the current value of the series; intended for tests.
func (g *Gauge) Value(labelValues ...string) float64 {
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	return g.f.get(labelValues).value
}

// Histogram counts observations into cumulative buckets.
type Histogram struct{ f *family }

// Observe records one observation in the series selected by the label
// values.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	s := h.f.get(labelValues)
	for i, ub := range h.f.bounds {
		if v <= ub {
			s.buckets[i]++
		}
	}
	s.sum += v
	s.count++
}

// Count returns the number of observations in the series; for tests.
func (h *Histogram) Count(labelValues ...string) uint64 {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return h.f.get(labelValues).count
}

// Bind resolves the series for one label-value combination up front;
// see Counter.Bind for the contract.
func (h *Histogram) Bind(labelValues ...string) *BoundHistogram {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return &BoundHistogram{f: h.f, s: h.f.get(labelValues)}
}

// BoundHistogram is a Histogram pinned to one label-value combination.
type BoundHistogram struct {
	f *family
	s *series
}

// Observe records one observation without allocating.
func (b *BoundHistogram) Observe(v float64) {
	b.f.mu.Lock()
	for i, ub := range b.f.bounds {
		if v <= ub {
			b.s.buckets[i]++
		}
	}
	b.s.sum += v
	b.s.count++
	b.f.mu.Unlock()
}

// WriteText renders every registered family in the Prometheus text
// exposition format, families in registration order, series sorted by
// label values within a family.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case kindCounter, kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labelNames, s.labelValues, "", ""), formatFloat(s.value))
			case kindHistogram:
				for i, ub := range f.bounds {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelString(f.labelNames, s.labelValues, "le", formatFloat(ub)), s.buckets[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(f.labelNames, s.labelValues, "le", "+Inf"), s.count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name,
					labelString(f.labelNames, s.labelValues, "", ""), formatFloat(s.sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name,
					labelString(f.labelNames, s.labelValues, "", ""), s.count)
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {k="v",...}; extraName/extraValue append one
// synthetic label (the histogram "le"). Returns "" with no labels.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

// validName reports whether s is a legal Prometheus metric/label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
