package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterAndGaugeText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.", "path", "code")
	c.Inc("/score", "200")
	c.Add(4, "/score", "200")
	c.Inc("/fit", "202")
	g := r.Gauge("in_flight", "In-flight requests.")
	g.Add(3)
	g.Add(-1)

	out := render(t, r)
	for _, want := range []string{
		"# HELP requests_total Requests served.",
		"# TYPE requests_total counter",
		`requests_total{path="/fit",code="202"} 1`,
		`requests_total{path="/score",code="200"} 5`,
		"# TYPE in_flight gauge",
		"in_flight 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if c.Value("/score", "200") != 5 {
		t.Errorf("counter value = %v, want 5", c.Value("/score", "200"))
	}
	if g.Value() != 2 {
		t.Errorf("gauge value = %v, want 2", g.Value())
	}
}

func TestHistogramText(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1}, "path")
	h.Observe(0.05, "/score")
	h.Observe(0.5, "/score")
	h.Observe(5, "/score")

	out := render(t, r)
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{path="/score",le="0.1"} 1`,
		`latency_seconds_bucket{path="/score",le="1"} 2`,
		`latency_seconds_bucket{path="/score",le="+Inf"} 3`,
		`latency_seconds_sum{path="/score"} 5.55`,
		`latency_seconds_count{path="/score"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count("/score") != 3 {
		t.Errorf("histogram count = %d, want 3", h.Count("/score"))
	}
}

// TestTextFormatWellFormed checks every non-comment line parses as
// `name{labels} value` with balanced quotes — the shape a Prometheus
// scraper requires.
func TestTextFormatWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "with \"quotes\" and \\slashes\\.", "l").Inc(`va"l\ue` + "\nx")
	r.Gauge("b", "").Set(math.Inf(1))
	r.Histogram("h", "h.", []float64{1}).Observe(2)

	out := render(t, r)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("bad comment line %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("line %q has no value separator", line)
		}
		id := line[:sp]
		if i := strings.IndexByte(id, '{'); i >= 0 {
			if !strings.HasSuffix(id, "}") {
				t.Errorf("unbalanced braces in %q", line)
			}
			inner := id[i+1 : len(id)-1]
			// Quotes must balance after removing escaped ones.
			unescaped := strings.ReplaceAll(strings.ReplaceAll(inner, `\\`, ``), `\"`, ``)
			if strings.Count(unescaped, `"`)%2 != 0 {
				t.Errorf("unbalanced quotes in %q", line)
			}
		}
		if strings.ContainsAny(line[:sp], "\n") {
			t.Errorf("newline leaked into series %q", line)
		}
	}
	if !strings.Contains(out, "b +Inf\n") {
		t.Errorf("gauge +Inf not rendered:\n%s", out)
	}
}

func TestReregistrationReturnsSameFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", "l")
	b := r.Counter("x_total", "x", "l")
	a.Inc("v")
	b.Inc("v")
	if got := a.Value("v"); got != 2 {
		t.Errorf("re-registered counter split state: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("schema change on re-registration not caught")
		}
	}()
	r.Gauge("x_total", "x", "l")
}

func TestInvalidUsePanics(t *testing.T) {
	r := NewRegistry()
	for name, fn := range map[string]func(){
		"bad metric name": func() { r.Counter("bad name", "") },
		"bad label name":  func() { r.Counter("ok_total", "", "bad-label") },
		"negative add":    func() { r.Counter("c_total", "").Add(-1) },
		"label arity":     func() { r.Counter("d_total", "", "l").Inc() },
		"bad buckets":     func() { r.Histogram("h", "", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "", "worker")
	h := r.Histogram("lat", "", []float64{1, 10}, "worker")
	var wg sync.WaitGroup
	const workers, iters = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc(id)
				h.Observe(float64(i%20), id)
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WriteText(&b)
				}
			}
		}(string(rune('a' + w)))
	}
	wg.Wait()
	total := 0.0
	for w := 0; w < workers; w++ {
		total += c.Value(string(rune('a' + w)))
	}
	if total != workers*iters {
		t.Errorf("lost increments: %v, want %d", total, workers*iters)
	}
}

func TestBoundSeries(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bound_total", "bound counter", "path", "code")
	b := c.Bind("/score", "200")
	b.Inc()
	b.Add(2)
	c.Inc("/score", "200") // unbound writes land on the same series
	if got := c.Value("/score", "200"); got != 4 {
		t.Fatalf("bound counter = %v, want 4", got)
	}
	if got := c.Value("/score", "500"); got != 0 {
		t.Fatalf("sibling series = %v, want 0", got)
	}

	h := r.Histogram("bound_seconds", "bound histogram", []float64{1, 10}, "path")
	hb := h.Bind("/score")
	hb.Observe(0.5)
	hb.Observe(5)
	h.Observe(20, "/score")
	if got := h.Count("/score"); got != 3 {
		t.Fatalf("bound histogram count = %v, want 3", got)
	}

	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`bound_total{path="/score",code="200"} 4`,
		`bound_seconds_bucket{path="/score",le="1"} 1`,
		`bound_seconds_bucket{path="/score",le="10"} 2`,
		`bound_seconds_count{path="/score"} 3`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

func TestBoundAllocFree(t *testing.T) {
	r := NewRegistry()
	b := r.Counter("hot_total", "", "a").Bind("x")
	hb := r.Histogram("hot_seconds", "", nil, "a").Bind("x")
	allocs := testing.AllocsPerRun(100, func() {
		b.Inc()
		hb.Observe(0.01)
	})
	if allocs != 0 {
		t.Fatalf("bound metric ops allocate %v per run, want 0", allocs)
	}
}
