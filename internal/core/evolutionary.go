package core

import (
	"fmt"
	"math"
	"time"

	"hido/internal/cube"
	"hido/internal/evo"
	"hido/internal/grid"
	"hido/internal/obs"
	"hido/internal/stats"
	"hido/internal/xrand"
)

// CrossoverKind selects the recombination operator (§2.2).
type CrossoverKind int

const (
	// OptimizedCrossover is the paper's problem-specific operator
	// (Figure 5): exhaustive search over the Type II positions, greedy
	// extension over the Type III positions, complementary second
	// child. Children are always feasible k-dimensional projections.
	OptimizedCrossover CrossoverKind = iota
	// TwoPointCrossover is the unbiased baseline: swap the segments to
	// the right of a random cut point. Children may be infeasible
	// (wrong dimensionality) and then receive the worst fitness.
	TwoPointCrossover
)

func (c CrossoverKind) String() string {
	switch c {
	case OptimizedCrossover:
		return "optimized"
	case TwoPointCrossover:
		return "two-point"
	default:
		return fmt.Sprintf("CrossoverKind(%d)", int(c))
	}
}

// EvoOptions configures Figure 3's evolutionary search. Zero values
// select the documented defaults.
type EvoOptions struct {
	// K is the projection dimensionality; M the number of projections
	// to retain. Required.
	K, M int
	// Dims, when non-nil, restricts the search to this feature bag:
	// genomes constrain only the listed dimensions (strictly increasing,
	// unique, at least K of them). The ensemble layer samples one bag
	// per member; nil searches every dimension. Searching the full bag
	// [0..D) is bit-identical to Dims == nil.
	Dims []int
	// PopSize is the population size p (default 100).
	PopSize int
	// Crossover selects the recombination operator (default optimized).
	Crossover CrossoverKind
	// Selection selects the parent-sampling strategy (default the
	// paper's rank roulette).
	Selection evo.Selection
	// MutateP1 and MutateP2 are the per-string probabilities of the
	// Type I (dimension swap) and Type II (range change) mutations of
	// Figure 6. The paper sets p1 = p2; zero selects the default of
	// 0.3 each, a negative value disables that mutation type.
	MutateP1, MutateP2 float64
	// MaxGenerations caps the search (default 300).
	MaxGenerations int
	// Patience stops the search after this many generations without a
	// best-set improvement (default 40; 0 keeps the default, negative
	// disables).
	Patience int
	// MinCoverage excludes cubes covering fewer records from the result
	// set (zero selects the default of 1 — the paper's non-empty
	// projections; negative admits empty cubes). Population dynamics
	// are unaffected; sparser-than-covered cubes still steer the search.
	MinCoverage int
	// TypeIIExhaustiveLimit caps the exhaustive 2^k'' search over
	// differing Type II positions; beyond it each position is resolved
	// greedily. The paper notes k' is typically small. Default 16.
	TypeIIExhaustiveLimit int
	// Workers is the size of the worker pool scoring each generation's
	// population and recombining its pairs. Zero runs serially;
	// negative selects GOMAXPROCS. Results are bit-for-bit identical
	// at every worker count: each crossover pair gets a private RNG
	// stream drawn serially from the master stream, fitness evaluation
	// is batched and deduplicated before it fans out, and best-set
	// offers happen in population order after the barrier.
	Workers int
	// Cache optionally shares a memoized projection-count cache across
	// searches (restarts, islands, repeated runs over one detector).
	// It must have been built over this detector's Index (see
	// grid.NewCache); nil keeps counting uncached. The cache changes
	// only speed, never results: Evaluations still counts this run's
	// distinct fitness lookups.
	Cache *grid.Cache
	// Seed drives all randomness; runs are reproducible per seed.
	Seed uint64
	// OnGeneration, when set, observes per-generation statistics.
	OnGeneration func(evo.Stats)
	// Observer, when set, receives structured per-generation events and
	// a terminal run summary (see internal/obs). A nil observer costs
	// zero allocations on the hot path, and an attached observer never
	// changes the Result — it only reads derived snapshots. Restarts
	// and islands deliver events from several goroutines, so
	// implementations must be safe for concurrent use.
	Observer obs.Observer
	// RunID labels this run's observer events and trace lines (default
	// "evo"). Restarts and islands derive per-run IDs from it
	// ("evo.r0", "evo.i2").
	RunID string
	// Checkpoint, when non-nil with a Path, persists the search state
	// at generation boundaries so a killed run can be resumed (see
	// CheckpointOptions). The snapshot carries the population, the
	// fitness memo, the best set, and the master RNG stream state, so
	// a resumed run follows the exact trajectory the dead process
	// would have — bit-for-bit, at any worker count. Not supported
	// under restarts or islands, which interleave several searches.
	Checkpoint *CheckpointOptions
}

func (o EvoOptions) withDefaults() EvoOptions {
	if o.RunID == "" {
		o.RunID = "evo"
	}
	if o.PopSize == 0 {
		o.PopSize = 100
	}
	switch {
	case o.MutateP1 == 0:
		o.MutateP1 = 0.3
	case o.MutateP1 < 0:
		o.MutateP1 = 0
	}
	switch {
	case o.MutateP2 == 0:
		o.MutateP2 = 0.3
	case o.MutateP2 < 0:
		o.MutateP2 = 0
	}
	if o.MaxGenerations == 0 {
		o.MaxGenerations = 300
	}
	if o.Patience == 0 {
		o.Patience = 40
	}
	switch {
	case o.MinCoverage == 0:
		o.MinCoverage = 1
	case o.MinCoverage < 0:
		o.MinCoverage = 0
	}
	if o.TypeIIExhaustiveLimit == 0 {
		o.TypeIIExhaustiveLimit = 16
	}
	return o
}

// search carries the mutable state of one evolutionary run.
type search struct {
	src     CountSource
	opt     EvoOptions
	dims    []int      // searched dimensions (the bag, or all of them)
	rng     *xrand.RNG // master stream: selection, pairing, mutation, per-pair seeds
	bs      *evo.BestSet
	cache   map[string]fitEntry // run-local fitness memo; also defines Evaluations
	shared  *grid.Cache         // optional cross-run count cache (detector-backed runs)
	workers int
	evals   int
	ctxs    []*xoverCtx // lazily built per-worker scratch contexts
	// lastDistinct is the latest generation's distinct-genome count,
	// maintained by evaluateAll only when the run is observed.
	lastDistinct int
}

type fitEntry struct {
	sparsity float64
	count    int
}

// newSearch assembles a run context over an already-validated source.
// opt must already carry its defaults.
func newSearch(src CountSource, opt EvoOptions) *search {
	return &search{
		src:     src,
		opt:     opt,
		dims:    resolveDims(src.D(), opt.Dims),
		rng:     xrand.New(opt.Seed),
		bs:      evo.NewBestSet(opt.M),
		cache:   make(map[string]fitEntry),
		shared:  opt.Cache,
		workers: resolveWorkers(opt.Workers),
	}
}

func validateEvoOptions(src CountSource, opt EvoOptions) error {
	if err := validateKM(src.D(), opt.K, opt.M); err != nil {
		return err
	}
	if err := validateDims(src.D(), opt.Dims, opt.K); err != nil {
		return err
	}
	if opt.PopSize != 0 && opt.PopSize < 2 {
		return fmt.Errorf("core: population size %d too small", opt.PopSize)
	}
	if opt.MutateP1 > 1 || opt.MutateP2 > 1 {
		return fmt.Errorf("core: mutation probabilities (%v, %v) outside [0,1]",
			opt.MutateP1, opt.MutateP2)
	}
	return nil
}

// Evolutionary runs the genetic search of Figure 3 and returns the M
// best projections with their covered points. With opt.Workers > 1
// the population is scored and recombined by a worker pool; results
// are identical to the serial run.
func (d *Detector) Evolutionary(opt EvoOptions) (*Result, error) {
	if err := validateCache(d, opt.Cache); err != nil {
		return nil, err
	}
	return evolutionaryOver(d.source(opt.Cache), opt)
}

// EvolutionaryOver runs the same search against an arbitrary
// CountSource — the entry point of the distributed fit, where the
// source sums per-shard cube counts. The trajectory depends on the
// data only through counts, so any source that reports the counts of
// the concatenated data reproduces the single-node Result bit for
// bit. Options bound to a detector's index (Cache) are rejected.
func EvolutionaryOver(src CountSource, opt EvoOptions) (*Result, error) {
	if opt.Cache != nil {
		return nil, fmt.Errorf("core: EvoOptions.Cache requires a detector-backed search")
	}
	return evolutionaryOver(src, opt)
}

func evolutionaryOver(src CountSource, opt EvoOptions) (*Result, error) {
	if err := validateEvoOptions(src, opt); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	start := time.Now()

	s := newSearch(src, opt)

	pop := evo.NewPopulation(opt.PopSize, src.D())
	var cp *evoCheckpointer
	var err error
	startGen, stall := 0, 0
	restored := false
	if copt := opt.Checkpoint; copt != nil && copt.Path != "" {
		cp = newEvoCheckpointer(*copt, evoFingerprint(src, opt))
		if copt.Resume {
			startGen, stall, restored, err = cp.restore(s, pop)
			if err != nil {
				return nil, err
			}
		}
	}
	if !restored {
		for i := range pop.Members {
			s.randomGenome(pop.Members[i])
		}
		s.evaluateAll(pop)
	}

	res := &Result{}
	gen := startGen
	for ; gen < opt.MaxGenerations; gen++ {
		pop.Select(opt.Selection, s.rng)
		s.crossoverAll(pop)
		s.mutateAll(pop)
		s.evaluateAll(pop)
		improved := s.offerAll(pop)
		// The De Jong fraction doubles as the event's convergence field,
		// so compute it once per generation.
		frac := pop.ConvergedFraction(0.95)
		s.notifyGeneration(pop, gen, frac)
		if improved {
			stall = 0
		} else {
			stall++
		}
		if cp != nil {
			cp.snapshot(s, pop, gen+1, stall, false)
		}
		if frac >= 1 {
			res.ConvergedDeJong = true
			gen++
			break
		}
		if opt.Patience > 0 && stall >= opt.Patience {
			gen++
			break
		}
	}

	res.Generations = gen
	res.Evaluations = s.evals
	finalizeOver(src, s.bs, res)
	res.Elapsed = time.Since(start)
	notifySummary(opt.Observer, opt.RunID, "evo", res, false, opt.Cache)
	if cp != nil {
		if err := cp.flush(s, pop, gen, stall); err != nil {
			return res, err
		}
	}
	return res, nil
}

// randomGenome fills g with a uniform random k-dimensional projection
// over the searched dimensions.
func (s *search) randomGenome(g evo.Genome) {
	for i := range g {
		g[i] = cube.DontCare
	}
	for _, i := range s.rng.Sample(len(s.dims), s.opt.K) {
		g[s.dims[i]] = uint16(s.rng.IntRange(1, s.src.Phi()))
	}
}

// sparsityOf converts a raw count into the sparsity coefficient
// (Equation 1) at this search's projection dimensionality.
func (s *search) sparsityOf(n int) float64 {
	return stats.Sparsity(n, s.src.N(), s.opt.K, s.src.Phi())
}

// evaluateAll scores every member of the population, filling
// pop.Fitness. The batch is deduplicated serially against the
// run-local memo — which also fixes Evaluations independent of the
// worker count — and the surviving distinct cubes are counted by the
// worker pool. Infeasible genomes (wrong dimensionality, possible
// only under two-point crossover) receive +Inf, the worst value for
// the minimizing search ("assigned very low fitness values", §2.2).
func (s *search) evaluateAll(pop *evo.Population) {
	n := pop.Len()
	keys := make([]string, n)
	parallelFor(n, s.workers, func(i int) {
		keys[i] = pop.Members[i].Key()
	})

	var jobs []int // representative member index per distinct uncached key
	queued := make(map[string]bool)
	for i := 0; i < n; i++ {
		key := keys[i]
		if _, ok := s.cache[key]; ok || queued[key] {
			continue
		}
		if cube.Cube(pop.Members[i]).K() != s.opt.K {
			s.cache[key] = fitEntry{sparsity: math.Inf(1), count: -1}
			continue
		}
		queued[key] = true
		jobs = append(jobs, i)
		s.evals++
	}

	// One source batch per generation: a local source fans the counts
	// out on the worker pool; a remote source resolves them in a single
	// round trip across the shards.
	cs := make([]cube.Cube, len(jobs))
	ks := make([]string, len(jobs))
	for j, i := range jobs {
		cs[j] = cube.Cube(pop.Members[i])
		ks[j] = keys[i]
	}
	counts := s.src.CountBatch(cs, ks, s.workers)
	for j, i := range jobs {
		s.cache[keys[i]] = fitEntry{
			sparsity: s.sparsityOf(counts[j]),
			count:    counts[j],
		}
	}

	for i := 0; i < n; i++ {
		pop.Fitness[i] = s.cache[keys[i]].sparsity
	}

	// The keys are already in hand, so the population's diversity count
	// is nearly free here; notifyGeneration reads it instead of paying
	// for a fresh comparison-sort over the members. Only observed runs
	// need it.
	if s.opt.OnGeneration != nil || s.opt.Observer != nil {
		seen := make(map[string]struct{}, n)
		for _, k := range keys {
			seen[k] = struct{}{}
		}
		s.lastDistinct = len(seen)
	}
}

// evaluate scores one genome through the run-local memo — the scalar
// form of evaluateAll, used by operator-level tests.
func (s *search) evaluate(g evo.Genome) float64 {
	key := g.Key()
	if e, ok := s.cache[key]; ok {
		return e.sparsity
	}
	c := cube.Cube(g)
	var e fitEntry
	if c.K() != s.opt.K {
		e = fitEntry{sparsity: math.Inf(1), count: -1}
	} else {
		s.evals++
		e.count = s.src.CountKey(c, key)
		e.sparsity = s.sparsityOf(e.count)
	}
	s.cache[key] = e
	return e.sparsity
}

// offerAll submits the whole population to the best set in member
// order and reports whether the set improved.
func (s *search) offerAll(pop *evo.Population) bool {
	improved := false
	for i := range pop.Members {
		if s.offer(pop.Members[i], pop.Fitness[i]) {
			improved = true
		}
	}
	return improved
}

// offer submits a genome to the best set, respecting feasibility and
// the MinCoverage filter. It reports whether the set improved.
func (s *search) offer(g evo.Genome, fitness float64) bool {
	if math.IsInf(fitness, 1) {
		return false
	}
	if fitness >= s.bs.Worst() {
		return false
	}
	e := s.cache[g.Key()]
	if e.count < s.opt.MinCoverage {
		return false
	}
	return s.bs.Offer(g, fitness)
}

// mutateAll applies Figure 6 to every string in the population.
func (s *search) mutateAll(pop *evo.Population) {
	for i := range pop.Members {
		s.mutate(pop.Members[i])
	}
}

// mutate applies the two mutation types to one string in place.
//
// Type I (probability p1): exchange a dimension — a random '*'
// position receives a random range and a random non-'*' position
// becomes '*', preserving the projection dimensionality.
//
// Type II (probability p2): a random non-'*' position changes to a
// different random range.
func (s *search) mutate(g evo.Genome) {
	if s.rng.Bernoulli(s.opt.MutateP1) {
		var stars, filled []int
		// Only searched dimensions participate: a Type I swap must not
		// leak a constraint outside the feature bag. Genomes constrain
		// bag dimensions only, so `filled` is unaffected by the
		// restriction and the full-bag iteration is identical to the
		// historical all-dimensions loop.
		for _, j := range s.dims {
			if g[j] == cube.DontCare {
				stars = append(stars, j)
			} else {
				filled = append(filled, j)
			}
		}
		if len(stars) > 0 && len(filled) > 0 {
			in := stars[s.rng.Intn(len(stars))]
			out := filled[s.rng.Intn(len(filled))]
			g[in] = uint16(s.rng.IntRange(1, s.src.Phi()))
			g[out] = cube.DontCare
		}
	}
	if s.rng.Bernoulli(s.opt.MutateP2) {
		var filled []int
		for j, v := range g {
			if v != cube.DontCare {
				filled = append(filled, j)
			}
		}
		if len(filled) > 0 {
			j := filled[s.rng.Intn(len(filled))]
			if phi := s.src.Phi(); phi > 1 {
				old := g[j]
				for {
					g[j] = uint16(s.rng.IntRange(1, phi))
					if g[j] != old {
						break
					}
				}
			}
		}
	}
}
