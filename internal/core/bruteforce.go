package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"hido/internal/cube"
	"hido/internal/evo"
	"hido/internal/grid"
	"hido/internal/obs"
	"hido/internal/stats"
)

// ErrBudgetExceeded reports that brute force hit its candidate or time
// budget before finishing the enumeration; the returned Result holds
// the best projections found so far. The paper's Table 1 reports "-"
// for the musk data set for exactly this reason: at d=160 the space
// C(d,k)·φ^k is astronomically large.
var ErrBudgetExceeded = errors.New("core: brute-force budget exceeded")

// BruteForceOptions configures Figure 2's exhaustive search.
type BruteForceOptions struct {
	// K is the projection dimensionality; M the number of projections
	// to retain.
	K, M int
	// Dims, when non-nil, restricts the enumeration to this feature bag
	// (strictly increasing, unique, at least K dims): only cubes whose
	// constrained dimensions all lie in the bag are visited. The
	// ensemble layer samples one bag per member; nil enumerates every
	// dimension. Enumerating the full bag [0..D) is bit-identical to
	// Dims == nil.
	Dims []int
	// MinCoverage excludes cubes covering fewer records from the result
	// set. Zero selects the default of 1 — the paper reports the best
	// "non-empty" projections; a negative value admits empty cubes.
	MinCoverage int
	// MaxCandidates aborts after evaluating this many k-dimensional
	// cubes (0 = unlimited). Accounting is atomic across workers: when
	// the budget is hit, exactly MaxCandidates leaves were evaluated.
	MaxCandidates uint64
	// MaxDuration aborts after this much wall-clock time (0 = unlimited).
	// The deadline is checked at interior levels of the enumeration as
	// well as at leaves, so a run cannot overshoot by a whole subtree
	// even when pruning skips every leaf in it.
	MaxDuration time.Duration
	// Workers sizes the pool mining the enumeration subtrees. Zero runs
	// serially; negative selects GOMAXPROCS. Results are bit-for-bit
	// identical at every worker count (see BruteForce).
	Workers int
	// Cache optionally shares a memoized projection-count cache across
	// searches, mirroring EvoOptions.Cache: leaf counts are resolved
	// through (and stored into) the cache, so a later evolutionary run
	// or repeated sweep over the same detector reuses them. It must
	// have been built over this detector's Index; nil keeps the
	// incremental bitmap counting uncached. The cache changes only
	// speed, never results.
	Cache *grid.Cache
	// DisablePruning turns off coverage pruning, visiting every leaf
	// like Figure 2 verbatim. The pruned and unpruned searches retain
	// identical projections (pruned subtrees contain only cubes below
	// MinCoverage, which the leaf filter would discard anyway); only
	// Evaluations and Pruned differ. Used by the pruning-correctness
	// differential test and the speedup ablation.
	DisablePruning bool
	// Observer, when set, receives periodic progress heartbeats (tasks
	// completed, leaves evaluated, subtrees pruned, evaluations/sec)
	// and a terminal run summary (see internal/obs). A nil observer
	// costs zero allocations on the hot path; an attached observer only
	// reads the shared telemetry counters from a side goroutine, so the
	// Result stays bit-identical with or without one, at every worker
	// count. Implementations must be safe for concurrent use.
	Observer obs.Observer
	// ProgressInterval is the heartbeat period when an Observer is
	// attached (default 1s). Ignored without an Observer.
	ProgressInterval time.Duration
	// RunID labels observer events and trace lines (default "brute").
	RunID string
	// Checkpoint, when non-nil with a Path, periodically persists
	// completed subtree tasks so a killed run can be resumed (see
	// CheckpointOptions). A resumed run skips the checkpointed tasks
	// and its Result — projections, outliers, Evaluations, Pruned —
	// is bit-for-bit what the uninterrupted run would have produced,
	// at any worker count.
	Checkpoint *CheckpointOptions
}

// bfTask is one top-level (dimension, range) prefix of the enumeration
// tree — the unit of work sharding. Each cube is generated under
// exactly one prefix (dimensions are taken in increasing order), so
// tasks are independent and their best sets merge without overlap.
// di indexes into bfShared.dims, not the raw dimension, so the
// recursion can continue from the next searched dimension.
type bfTask struct {
	di  int
	rng uint16
}

// bfShared is the state one BruteForce run shares across its workers.
type bfShared struct {
	src      CountSource
	opt      BruteForceOptions
	dims     []int // searched dimensions (the bag, or all of them)
	n        int   // src.N(), cached off the hot loops
	phi      int   // src.Phi(), cached off the hot loops
	k        int
	minCov   int
	prune    bool
	deadline time.Time

	tasks []bfTask
	next  atomic.Int64
	// results[t] is task t's best set, filled by whichever worker
	// claimed it; nil marks a task skipped after the budget was hit.
	results []*evo.BestSet
	// done[t] marks tasks restored from a checkpoint (nil without a
	// resume); workers skip them. cp records newly completed tasks.
	done []bool
	cp   *bruteCheckpointer

	// evaluated is the atomic candidate-budget reservation counter
	// (only advanced when MaxCandidates > 0); evals and pruned
	// accumulate the per-worker telemetry.
	evaluated atomic.Uint64
	budgetHit atomic.Bool
	evals     atomic.Uint64
	pruned    atomic.Uint64
	// tasksDone counts completed subtree tasks for progress heartbeats;
	// advanced (and read) only when an observer is attached.
	tasksDone atomic.Int64
}

// bfWorker carries one worker's scratch: the per-level partial record
// sets, the in-progress cube, and the local telemetry counters merged
// into bfShared when the worker drains.
type bfWorker struct {
	sh         *bfShared
	bs         *evo.BestSet // current task's best set
	partials   []Partial
	c          cube.Cube
	evals      uint64
	pruned     uint64
	sinceCheck int
	// evalsFlushed/prunedFlushed track how much of the local telemetry
	// has been folded into the shared counters already; with an
	// observer attached checkTime flushes the delta every budget stride
	// so heartbeats see live counts, and the drain flushes the rest.
	evalsFlushed  uint64
	prunedFlushed uint64
}

// flushCounts folds the not-yet-flushed local telemetry into the
// shared counters.
func (w *bfWorker) flushCounts() {
	w.sh.evals.Add(w.evals - w.evalsFlushed)
	w.sh.pruned.Add(w.pruned - w.prunedFlushed)
	w.evalsFlushed = w.evals
	w.prunedFlushed = w.pruned
}

// Budget checks are amortized: leaves weigh 1, interior nodes weigh
// bfInteriorWeight (their bitmap AND is ~an order of magnitude more
// work than a leaf's fused intersection-count), and the wall clock is
// consulted every bfBudgetStride units. Pruning can discard entire
// subtrees between leaves, so interior nodes must advance the counter
// too or a skewed grid could run far past its deadline unchecked.
const (
	bfBudgetStride   = 1024
	bfInteriorWeight = 64
)

// BruteForce enumerates every k-dimensional cube — the candidate sets
// R_i of Figure 2, built as R_{i−1} ⊕ Q_1 with dimensions taken in
// increasing order so each cube is generated exactly once — and
// retains the M with the most negative sparsity coefficients.
//
// The enumeration is depth-first with an incrementally maintained
// record bitmap per level, so a leaf costs one bitmap intersection
// count. Two accelerations preserve the exact result:
//
//   - Sharding: the top-level (dimension, range) prefixes are
//     distributed over opt.Workers goroutines, each mining its
//     subtrees with private scratch bitmaps and a per-task best set;
//     the per-task sets are merged in prefix order, so the Result —
//     projections, sparsity values, outliers, Evaluations — is
//     bit-for-bit identical at every worker count.
//   - Coverage pruning: when a partial record set's count falls below
//     MinCoverage, every cube in the subtree below it is also below
//     MinCoverage (counts only shrink as constraints are added) and
//     would be discarded by the leaf filter, so the subtree is skipped
//     without enumerating its φ^(k−depth) leaves. Result.Pruned counts
//     the skipped subtrees.
//
// If a budget is exceeded, the partial result is returned along with
// ErrBudgetExceeded; which subtrees completed then depends on
// scheduling, but the MaxCandidates accounting stays exact.
func (d *Detector) BruteForce(opt BruteForceOptions) (*Result, error) {
	if err := validateCache(d, opt.Cache); err != nil {
		return nil, err
	}
	return bruteForceOver(d.source(nil), opt)
}

// BruteForceOver runs the same enumeration against an arbitrary
// CountSource — the entry point of the distributed fit. The walk
// depends on the data only through partial-set counts, so any source
// reporting the counts of the concatenated data reproduces the
// single-node Result bit for bit. Options bound to a detector's index
// (Cache) are rejected.
func BruteForceOver(src CountSource, opt BruteForceOptions) (*Result, error) {
	if opt.Cache != nil {
		return nil, fmt.Errorf("core: BruteForceOptions.Cache requires a detector-backed search")
	}
	return bruteForceOver(src, opt)
}

func bruteForceOver(src CountSource, opt BruteForceOptions) (*Result, error) {
	if err := validateKM(src.D(), opt.K, opt.M); err != nil {
		return nil, err
	}
	if err := validateDims(src.D(), opt.Dims, opt.K); err != nil {
		return nil, err
	}
	if opt.MinCoverage == 0 {
		opt.MinCoverage = 1
	} else if opt.MinCoverage < 0 {
		opt.MinCoverage = 0
	}
	if opt.RunID == "" {
		opt.RunID = "brute"
	}
	start := time.Now()

	sh := &bfShared{
		src:  src,
		opt:  opt,
		dims: resolveDims(src.D(), opt.Dims),
		n:    src.N(),
		phi:  src.Phi(),
		k:    opt.K,
		// Pruning cuts subtrees whose partial count is already below
		// MinCoverage; at MinCoverage 0 no count qualifies (empty cubes
		// are admissible results), so pruning is a no-op there.
		minCov: opt.MinCoverage,
		prune:  !opt.DisablePruning && opt.MinCoverage > 0,
	}
	if opt.MaxDuration > 0 {
		sh.deadline = start.Add(opt.MaxDuration)
	}
	for di := 0; di <= len(sh.dims)-opt.K; di++ {
		for r := 1; r <= sh.phi; r++ {
			sh.tasks = append(sh.tasks, bfTask{di: di, rng: uint16(r)})
		}
	}
	sh.results = make([]*evo.BestSet, len(sh.tasks))

	if copt := opt.Checkpoint; copt != nil && copt.Path != "" {
		sh.cp = newBruteCheckpointer(*copt, bruteFingerprint(src, opt))
		if copt.Resume {
			if err := sh.cp.restore(sh); err != nil {
				return nil, err
			}
		}
	}

	workers := resolveWorkers(opt.Workers)
	if workers > len(sh.tasks) {
		workers = len(sh.tasks)
	}
	if opt.Observer != nil {
		interval := opt.ProgressInterval
		if interval <= 0 {
			interval = time.Second
		}
		stop, done := make(chan struct{}), make(chan struct{})
		go sh.heartbeat(start, interval, stop, done)
		sh.run(workers)
		close(stop)
		<-done
	} else {
		sh.run(workers)
	}

	// Deterministic merge: per-task best sets in prefix order, entries
	// already sorted by fitness within each. No genome appears under
	// two prefixes, so ties are resolved identically at every worker
	// count.
	merged := evo.NewBestSet(opt.M)
	for _, bs := range sh.results {
		if bs == nil {
			continue
		}
		for _, e := range bs.Entries() {
			merged.Offer(e.Genome, e.Fitness)
		}
	}
	res := &Result{
		Evaluations: int(sh.evals.Load()),
		Pruned:      int(sh.pruned.Load()),
	}
	finalizeOver(src, merged, res)
	res.Elapsed = time.Since(start)
	sh.notifyProgress(start)
	notifySummary(opt.Observer, opt.RunID, "brute", res, sh.budgetHit.Load(), opt.Cache)
	// The final snapshot makes a budget-stopped run resumable; a failed
	// snapshot surfaces unless the budget error takes precedence (the
	// partial Result is valid either way).
	var cpErr error
	if sh.cp != nil {
		cpErr = sh.cp.flush()
	}
	if sh.budgetHit.Load() {
		return res, ErrBudgetExceeded
	}
	if cpErr != nil {
		return res, cpErr
	}
	return res, nil
}

// runWorker claims tasks from the shared counter until they run out,
// then folds the local telemetry into the shared counters.
func (sh *bfShared) runWorker() {
	w := &bfWorker{
		sh:       sh,
		partials: make([]Partial, sh.k),
		c:        cube.New(sh.src.D()),
	}
	for i := range w.partials {
		w.partials[i] = sh.src.NewPartial()
	}
	for {
		t := int(sh.next.Add(1)) - 1
		if t >= len(sh.tasks) {
			break
		}
		if sh.done != nil && sh.done[t] {
			continue // restored from a checkpoint
		}
		if sh.budgetHit.Load() {
			continue // drain the remaining task indices
		}
		ev0, pr0 := w.evals, w.pruned
		completed := w.runTask(t)
		if completed && sh.cp != nil {
			sh.cp.taskDone(t, w.bs, w.evals-ev0, w.pruned-pr0)
		}
		if sh.opt.Observer != nil {
			sh.tasksDone.Add(1)
		}
	}
	w.flushCounts()
}

// runTask mines the subtree under one top-level prefix into a fresh
// per-task best set. It reports whether the subtree was enumerated to
// completion — a budget or deadline stop returns false, and the task
// is then excluded from checkpoints so a resume re-runs it whole.
func (w *bfWorker) runTask(t int) bool {
	sh := w.sh
	w.bs = evo.NewBestSet(sh.opt.M)
	sh.results[t] = w.bs
	tk := sh.tasks[t]
	dim := sh.dims[tk.di]
	if sh.k == 1 {
		// The prefix is the leaf: the range bitmap itself is the cube.
		return w.leaf(dim, tk.rng, nil)
	}
	root := w.partials[0]
	root.Reset()
	root.Constrain(dim, tk.rng)
	if sh.prune && root.Count() < sh.minCov {
		w.pruned++
		return true
	}
	w.c[dim] = tk.rng
	ok := w.rec(1, tk.di+1, root)
	w.c[dim] = cube.DontCare
	return ok
}

// rec enumerates the cubes extending the partial record set parent
// (whose constraints occupy searched dimensions below index startIdx
// into sh.dims), reporting false when a budget stop was hit.
func (w *bfWorker) rec(depth, startIdx int, parent Partial) bool {
	sh := w.sh
	if sh.budgetHit.Load() {
		return false
	}
	lastLevel := depth == sh.k-1
	for idx := startIdx; idx <= len(sh.dims)-(sh.k-depth); idx++ {
		j := sh.dims[idx]
		for r := 1; r <= sh.phi; r++ {
			if lastLevel {
				if !w.leaf(j, uint16(r), parent) {
					return false
				}
				continue
			}
			if w.checkTime(bfInteriorWeight) {
				return false
			}
			next := w.partials[depth]
			n := next.ConstrainFrom(parent, j, uint16(r))
			if sh.prune && n < sh.minCov {
				w.pruned++
				continue
			}
			w.c[j] = uint16(r)
			ok := w.rec(depth+1, idx+1, next)
			w.c[j] = cube.DontCare
			if !ok {
				return false
			}
		}
	}
	return true
}

// leaf evaluates one full k-dimensional cube: the parent partial
// extended by range r of dimension j (parent is nil only at k=1). It
// reports false when a budget stop was hit.
func (w *bfWorker) leaf(j int, r uint16, parent Partial) bool {
	sh := w.sh
	var ev uint64
	if sh.opt.MaxCandidates > 0 {
		// Reserve a budget slot before evaluating: reservations past
		// the cap are abandoned, so exactly MaxCandidates leaves are
		// evaluated no matter how many workers race here.
		ev = sh.evaluated.Add(1)
		if ev > sh.opt.MaxCandidates {
			sh.budgetHit.Store(true)
			return false
		}
	}
	w.c[j] = r
	var n int
	switch {
	case sh.opt.Cache != nil:
		n = sh.opt.Cache.CountWith(w.c.Key(), func() int {
			if parent == nil {
				return sh.src.CountKey(w.c, w.c.Key())
			}
			return parent.Extend(j, r)
		})
	case parent == nil:
		// k = 1: the top-level prefix is the whole cube.
		n = sh.src.CountKey(w.c, w.c.Key())
	default:
		n = parent.Extend(j, r)
	}
	w.evals++
	if n >= sh.minCov {
		if s := stats.Sparsity(n, sh.n, sh.k, sh.phi); s < w.bs.Worst() {
			w.bs.Offer(evo.Genome(w.c), s)
		}
	}
	w.c[j] = cube.DontCare
	if ev != 0 && ev == sh.opt.MaxCandidates {
		sh.budgetHit.Store(true)
		return false
	}
	return !w.checkTime(1)
}

// checkTime advances the amortized budget counter by weight and, every
// bfBudgetStride units, consults the shared stop flag and the wall
// clock. It reports whether the worker should abort.
func (w *bfWorker) checkTime(weight int) bool {
	w.sinceCheck += weight
	if w.sinceCheck < bfBudgetStride {
		return false
	}
	w.sinceCheck = 0
	if w.sh.opt.Observer != nil {
		// Live counts for the heartbeat goroutine; without an observer
		// the shared counters are touched only at the drain.
		w.flushCounts()
	}
	if w.sh.budgetHit.Load() {
		return true
	}
	if !w.sh.deadline.IsZero() && time.Now().After(w.sh.deadline) {
		w.sh.budgetHit.Store(true)
		return true
	}
	return false
}
