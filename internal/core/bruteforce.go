package core

import (
	"errors"
	"time"

	"hido/internal/bitset"
	"hido/internal/cube"
	"hido/internal/evo"
)

// ErrBudgetExceeded reports that brute force hit its candidate or time
// budget before finishing the enumeration; the returned Result holds
// the best projections found so far. The paper's Table 1 reports "-"
// for the musk data set for exactly this reason: at d=160 the space
// C(d,k)·φ^k is astronomically large.
var ErrBudgetExceeded = errors.New("core: brute-force budget exceeded")

// BruteForceOptions configures Figure 2's exhaustive search.
type BruteForceOptions struct {
	// K is the projection dimensionality; M the number of projections
	// to retain.
	K, M int
	// MinCoverage excludes cubes covering fewer records from the result
	// set. Zero selects the default of 1 — the paper reports the best
	// "non-empty" projections; a negative value admits empty cubes.
	MinCoverage int
	// MaxCandidates aborts after evaluating this many k-dimensional
	// cubes (0 = unlimited).
	MaxCandidates uint64
	// MaxDuration aborts after this much wall-clock time (0 = unlimited).
	MaxDuration time.Duration
}

// BruteForce enumerates every k-dimensional cube — the candidate sets
// R_i of Figure 2, built as R_{i−1} ⊕ Q_1 with dimensions taken in
// increasing order so each cube is generated exactly once — and
// retains the M with the most negative sparsity coefficients.
//
// The enumeration is depth-first with an incrementally maintained
// record bitmap per level, so a leaf costs one bitmap intersection
// count. If a budget is exceeded, the partial result is returned along
// with ErrBudgetExceeded.
func (d *Detector) BruteForce(opt BruteForceOptions) (*Result, error) {
	if err := d.validateKM(opt.K, opt.M); err != nil {
		return nil, err
	}
	if opt.MinCoverage == 0 {
		opt.MinCoverage = 1
	} else if opt.MinCoverage < 0 {
		opt.MinCoverage = 0
	}
	start := time.Now()
	var deadline time.Time
	if opt.MaxDuration > 0 {
		deadline = start.Add(opt.MaxDuration)
	}

	bs := evo.NewBestSet(opt.M)
	res := &Result{}
	k := opt.K

	// partial[i] holds the record set of the first i constraints.
	partials := make([]*bitset.Set, k)
	for i := range partials {
		partials[i] = bitset.New(d.N())
	}
	c := cube.New(d.D())
	evaluated := uint64(0)
	budgetHit := false

	// checkBudget is sampled every budgetStride leaves to keep the
	// time.Now() overhead out of the inner loop.
	const budgetStride = 4096
	sinceCheck := 0

	var rec func(depth, startDim int, parent *bitset.Set) bool
	rec = func(depth, startDim int, parent *bitset.Set) bool {
		lastLevel := depth == k-1
		for j := startDim; j <= d.D()-(k-depth); j++ {
			for r := 1; r <= d.Phi(); r++ {
				if lastLevel {
					var n int
					if parent == nil {
						// k == 1: the range bitmap itself is the cube.
						n = d.Index.RangeSet(j, uint16(r)).Count()
					} else {
						n = d.Index.ExtendCount(parent, j, uint16(r))
					}
					evaluated++
					if n >= opt.MinCoverage {
						c[j] = uint16(r)
						s := d.Index.SparsityOf(n, k)
						if s < bs.Worst() {
							bs.Offer(evo.Genome(c), s)
						}
						c[j] = cube.DontCare
					}
					if opt.MaxCandidates > 0 && evaluated >= opt.MaxCandidates {
						budgetHit = true
						return false
					}
					sinceCheck++
					if sinceCheck >= budgetStride {
						sinceCheck = 0
						if !deadline.IsZero() && time.Now().After(deadline) {
							budgetHit = true
							return false
						}
					}
					continue
				}
				// Interior level: materialize the partial record set.
				next := partials[depth]
				if parent == nil {
					next.CopyFrom(d.Index.RangeSet(j, uint16(r)))
				} else {
					next.CopyFrom(parent)
					next.And(d.Index.RangeSet(j, uint16(r)))
				}
				c[j] = uint16(r)
				ok := rec(depth+1, j+1, next)
				c[j] = cube.DontCare
				if !ok {
					return false
				}
			}
		}
		return true
	}
	rec(0, 0, nil)

	res.Evaluations = int(evaluated)
	d.finalize(bs, res)
	res.Elapsed = time.Since(start)
	if budgetHit {
		return res, ErrBudgetExceeded
	}
	return res, nil
}
