package core

import (
	"fmt"

	"hido/internal/stats"
)

// Advice is the parameter recommendation of §2.4.
type Advice struct {
	Phi int
	K   int
	// EmptySparsity is the sparsity coefficient of an empty cube at the
	// advised (Phi, K) — the most negative value attainable. The
	// rounding in K's formula makes it at least as negative as the
	// requested target.
	EmptySparsity float64
	// SingletonSparsity is the coefficient of a cube holding exactly
	// one point; §2.4 requires it to remain "reasonably negative" for
	// outliers covering real records to be minable.
	SingletonSparsity float64
}

func (a Advice) String() string {
	return fmt.Sprintf("phi=%d k=%d (empty cube S=%.3f, singleton S=%.3f)",
		a.Phi, a.K, a.EmptySparsity, a.SingletonSparsity)
}

// Advise computes the projection parameters of §2.4 for a data set of
// N records: given a grid resolution phi and a target sparsity
// coefficient s (e.g. −3, the paper's 99.9%-significance reference
// point), it returns k* = floor(log_phi(N/s² + 1)) — the largest
// dimensionality at which abnormally sparse projections exist before
// high dimensionality makes every cube sparse by default.
func Advise(N, phi int, s float64) Advice {
	k := stats.KStar(N, phi, s)
	return Advice{
		Phi:               phi,
		K:                 k,
		EmptySparsity:     stats.EmptySparsity(N, k, phi),
		SingletonSparsity: stats.Sparsity(1, N, k, phi),
	}
}

// Advise applies §2.4 to the detector's own N and phi.
func (d *Detector) Advise(s float64) Advice {
	return Advise(d.N(), d.Phi(), s)
}

// AdviseTable tabulates the advice across a range of targets s — the
// "intuitively interpretable parameter" a user is expected to sweep
// (§2.4). Targets must be negative and are reported in input order.
func AdviseTable(N, phi int, targets []float64) []Advice {
	out := make([]Advice, len(targets))
	for i, s := range targets {
		out[i] = Advise(N, phi, s)
	}
	return out
}
