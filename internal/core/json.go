package core

import (
	"encoding/json"
	"io"
	"math"
)

// resultJSON is the machine-readable rendering of a Result, written
// by WriteJSON for CLI pipelines (`hido -json`). Sparsities are
// finite by construction; scores of uncovered records are omitted.
type resultJSON struct {
	Projections []projectionJSON `json:"projections"`
	Outliers    []outlierJSON    `json:"outliers"`
	Evaluations int              `json:"evaluations"`
	Pruned      int              `json:"pruned,omitempty"`
	Generations int              `json:"generations,omitempty"`
	ElapsedMS   float64          `json:"elapsed_ms"`
	Quality     *float64         `json:"quality,omitempty"`
}

type projectionJSON struct {
	Cube        string  `json:"cube"`
	Description string  `json:"description"`
	Sparsity    float64 `json:"sparsity"`
	Count       int     `json:"count"`
}

type outlierJSON struct {
	Record int     `json:"record"`
	Score  float64 `json:"score"`
	Label  string  `json:"label,omitempty"`
}

// WriteJSON emits the result as a JSON document with projections
// (including human-readable descriptions), ranked outliers with their
// scores and labels, and search telemetry.
func (r *Result) WriteJSON(w io.Writer, d *Detector) error {
	out := resultJSON{
		Evaluations: r.Evaluations,
		Pruned:      r.Pruned,
		Generations: r.Generations,
		ElapsedMS:   float64(r.Elapsed.Microseconds()) / 1000,
	}
	if q := r.Quality(); !math.IsNaN(q) {
		out.Quality = &q
	}
	for _, p := range r.Projections {
		out.Projections = append(out.Projections, projectionJSON{
			Cube:        p.Cube.String(),
			Description: p.Describe(d),
			Sparsity:    p.Sparsity,
			Count:       p.Count,
		})
	}
	for _, rec := range r.RankedOutliers(d) {
		out.Outliers = append(out.Outliers, outlierJSON{
			Record: rec,
			Score:  r.Score(d, rec),
			Label:  d.Data.Label(rec),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
