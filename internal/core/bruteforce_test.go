package core

import (
	"errors"
	"testing"

	"hido/internal/cube"
	"hido/internal/grid"
	"hido/internal/xrand"
)

// projectionsEqual compares the retained projections and covered
// points of two results, leaving the telemetry (Evaluations, Pruned)
// free to differ — the comparison the pruning differential needs.
func projectionsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Projections) != len(b.Projections) {
		t.Fatalf("%s: projection counts %d vs %d", label, len(a.Projections), len(b.Projections))
	}
	for i := range a.Projections {
		pa, pb := a.Projections[i], b.Projections[i]
		if !pa.Cube.Equal(pb.Cube) || pa.Sparsity != pb.Sparsity || pa.Count != pb.Count {
			t.Fatalf("%s: projection %d (%v S=%v n=%d) vs (%v S=%v n=%d)", label, i,
				pa.Cube, pa.Sparsity, pa.Count, pb.Cube, pb.Sparsity, pb.Count)
		}
	}
	if !a.OutlierSet.Equal(b.OutlierSet) {
		t.Fatalf("%s: outlier sets differ", label)
	}
}

// Coverage pruning must be invisible in the retained projections: a
// pruned subtree contains only cubes below MinCoverage, which the
// leaf filter would have discarded anyway. Swept over pseudo-random
// (n, d, k, phi) shapes so the differential covers skews no
// hand-picked case would.
func TestBruteForcePruningDifferential(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 6; trial++ {
		n := 120 + rng.Intn(250)
		d := 4 + rng.Intn(5)
		k := 2 + rng.Intn(3)
		if k > d {
			k = d
		}
		phi := 3 + rng.Intn(4)
		ds := plantedDataset(n, d, 500+uint64(trial))
		det := NewDetector(ds, phi)
		opt := BruteForceOptions{K: k, M: 10}

		pruned, err := det.BruteForce(opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.DisablePruning = true
		full, err := det.BruteForce(opt)
		if err != nil {
			t.Fatal(err)
		}

		label := labelShape(n, d, k, phi)
		projectionsEqual(t, label, full, pruned)
		if full.Pruned != 0 {
			t.Errorf("%s: unpruned run reports %d pruned subtrees", label, full.Pruned)
		}
		if want := int(cube.SpaceSize(det.D(), k, phi)); full.Evaluations != want {
			t.Errorf("%s: unpruned evaluations %d, space %d", label, full.Evaluations, want)
		}
		if pruned.Evaluations > full.Evaluations {
			t.Errorf("%s: pruned run evaluated more (%d) than unpruned (%d)",
				label, pruned.Evaluations, full.Evaluations)
		}
		if k >= 3 && pruned.Pruned == 0 {
			// The planted correlation empties cells in the (0,1) plane,
			// so deeper searches must find something to skip.
			t.Errorf("%s: no subtree pruned despite planted empty cells", label)
		}
	}
}

// With MinCoverage <= 0 empty cubes are admissible results, so pruning
// must disarm itself rather than discard them.
func TestBruteForceNoPruningWhenEmptyAdmitted(t *testing.T) {
	ds := plantedDataset(300, 5, 46)
	det := NewDetector(ds, 5)
	res, err := det.BruteForce(BruteForceOptions{K: 3, M: 5, MinCoverage: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned != 0 {
		t.Errorf("pruned %d subtrees with empty cubes admitted", res.Pruned)
	}
	if want := int(cube.SpaceSize(det.D(), 3, det.Phi())); res.Evaluations != want {
		t.Errorf("evaluations %d, want full space %d", res.Evaluations, want)
	}
	if res.Projections[0].Count != 0 {
		t.Errorf("best projection count = %d, want an empty cube", res.Projections[0].Count)
	}
}

// A shared count cache must change only speed: same result, and a
// second search over the same detector resolves its leaves from the
// first search's entries.
func TestBruteForceCacheEquivalence(t *testing.T) {
	ds := plantedDataset(250, 6, 47)
	det := NewDetector(ds, 4)
	base := BruteForceOptions{K: 2, M: 8}

	ref, err := det.BruteForce(base)
	if err != nil {
		t.Fatal(err)
	}
	cache := grid.NewCache(det.Index)
	withCache := base
	withCache.Cache = cache
	got, err := det.BruteForce(withCache)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "bruteforce/cache", ref, got)
	st := cache.Stats()
	if st.Misses == 0 {
		t.Fatal("cache was never consulted")
	}
	if st.Size != ref.Evaluations {
		t.Errorf("cache holds %d cubes, evaluated %d", st.Size, ref.Evaluations)
	}

	again, err := det.BruteForce(withCache)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "bruteforce/cache-rerun", ref, again)
	st2 := cache.Stats()
	if st2.Misses != st.Misses {
		t.Errorf("rerun missed %d times, want 0 new misses", st2.Misses-st.Misses)
	}
	if st2.Hits < uint64(ref.Evaluations) {
		t.Errorf("rerun hit %d times, want >= %d", st2.Hits-st.Hits, ref.Evaluations)
	}
}

// The candidate budget is an atomic reservation: when the run reports
// ErrBudgetExceeded, exactly MaxCandidates leaves were evaluated, at
// any worker count.
func TestBruteForceMaxCandidatesExact(t *testing.T) {
	ds := plantedDataset(200, 8, 48)
	det := NewDetector(ds, 4)
	for _, workers := range []int{1, 3, 8} {
		res, err := det.BruteForce(BruteForceOptions{
			K: 3, M: 5, MaxCandidates: 777, Workers: workers,
			// Pruning off so enough leaves exist to exhaust the budget
			// regardless of the data's empty-cell structure.
			DisablePruning: true,
		})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("workers=%d: err = %v, want ErrBudgetExceeded", workers, err)
		}
		if res.Evaluations != 777 {
			t.Errorf("workers=%d: evaluations = %d, want exactly 777", workers, res.Evaluations)
		}
	}
}

// Brute force is exact, so its best sparsity is a lower bound for any
// evolutionary run on the same detector — the sanity differential the
// CI bruteforce job pins.
func TestBruteForceLowerBoundsEvolutionary(t *testing.T) {
	ds := plantedDataset(300, 7, 49)
	det := NewDetector(ds, 4)
	bf, err := det.BruteForce(BruteForceOptions{K: 2, M: 5})
	if err != nil {
		t.Fatal(err)
	}
	ga, err := det.Evolutionary(EvoOptions{K: 2, M: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.Projections) == 0 || len(ga.Projections) == 0 {
		t.Fatal("empty result")
	}
	if ga.Projections[0].Sparsity < bf.Projections[0].Sparsity {
		t.Errorf("evolutionary best %v beats the exact optimum %v",
			ga.Projections[0].Sparsity, bf.Projections[0].Sparsity)
	}
}

func labelShape(n, d, k, phi int) string {
	return "n=" + itoa(n) + "/d=" + itoa(d) + "/k=" + itoa(k) + "/phi=" + itoa(phi)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
