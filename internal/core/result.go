package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"hido/internal/bitset"
	"hido/internal/cube"
	"hido/internal/discretize"
	"hido/internal/evo"
	"hido/internal/stats"
)

// Projection is one mined sparse cube with its statistics.
type Projection struct {
	Cube     cube.Cube
	Sparsity float64 // Equation 1; more negative = more abnormal
	Count    int     // records inside the cube
}

// Significance returns the one-sided probability of observing a count
// this low under the paper's uniform-data normal approximation.
func (p Projection) Significance() float64 { return stats.Significance(p.Sparsity) }

// String renders the projection with its statistics.
func (p Projection) String() string {
	return fmt.Sprintf("%s  S=%.3f  n=%d", p.Cube, p.Sparsity, p.Count)
}

// Describe renders the projection's constraints with attribute names
// and value bounds — the paper's interpretability requirement (§1.1):
// the reasoning behind why a point is an outlier. Categorical columns
// (integer-encoded by the CSV reader) render their category names
// instead of code intervals.
func (p Projection) Describe(d *Detector) string {
	parts := make([]string, 0, p.Cube.K())
	for _, pr := range p.Cube.Pairs() {
		name := d.Data.Names[pr.Dim]
		if d.Data.IsCategorical(pr.Dim) {
			lo, hi := d.Grid.RangeBounds(pr.Dim, pr.Range)
			cats := d.Data.CategoriesIn(pr.Dim, lo, hi)
			if len(cats) > 0 {
				const maxShown = 4
				if len(cats) > maxShown {
					cats = append(cats[:maxShown:maxShown],
						fmt.Sprintf("+%d more", len(cats)-maxShown))
				}
				parts = append(parts, fmt.Sprintf("%s∈{%s}", name, strings.Join(cats, ",")))
				continue
			}
		}
		parts = append(parts, d.Grid.DescribeRange(name, pr.Dim, pr.Range))
	}
	return fmt.Sprintf("%s  (S=%.3f, %d records)", strings.Join(parts, " ∧ "), p.Sparsity, p.Count)
}

// DescribeRanges is Describe decoupled from a Detector: any grid
// carrying the fitted cut points works, including one reconstructed
// from a persisted model.
func (p Projection) DescribeRanges(names []string, g *discretize.Grid) string {
	parts := make([]string, 0, p.Cube.K())
	for _, pr := range p.Cube.Pairs() {
		parts = append(parts, g.DescribeRange(names[pr.Dim], pr.Dim, pr.Range))
	}
	return fmt.Sprintf("%s  (S=%.3f, %d records)", strings.Join(parts, " ∧ "), p.Sparsity, p.Count)
}

// Result is the output of a projection search: the best projections,
// the covered points (§2.3's postprocessing), and search telemetry.
type Result struct {
	// Projections holds the m best cubes, most negative sparsity first.
	Projections []Projection
	// OutlierSet marks the covered records.
	OutlierSet *bitset.Set
	// Outliers lists the covered records in increasing index order.
	Outliers []int

	// Evaluations counts distinct fitness (cube count) computations.
	Evaluations int
	// Pruned counts the enumeration subtrees skipped by brute-force
	// coverage pruning (every cube below them falls under MinCoverage).
	// Zero for the evolutionary search and for unpruned runs.
	Pruned int
	// Generations is the number of GA generations (0 for brute force).
	Generations int
	// ConvergedDeJong reports whether the GA stopped on the De Jong
	// criterion (as opposed to the generation cap or stall patience).
	ConvergedDeJong bool
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
}

// Quality returns the mean sparsity coefficient of the retained
// projections — the "quality" column of the paper's Table 1. NaN when
// no projection was retained.
func (r *Result) Quality() float64 {
	if len(r.Projections) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, p := range r.Projections {
		sum += p.Sparsity
	}
	return sum / float64(len(r.Projections))
}

// CoveringProjections returns the indices (into r.Projections) of the
// projections covering record i — the per-point explanation.
func (r *Result) CoveringProjections(d *Detector, i int) []int {
	cells := d.Grid.CellsRow(i)
	var out []int
	for pi, p := range r.Projections {
		if p.Cube.Covers(cells) {
			out = append(out, pi)
		}
	}
	return out
}

// Score returns a per-record outlier score: the most negative sparsity
// among the projections covering the record, or 0 when none does.
// Lower is more outlying. This ranking view is used when comparing
// against top-n baselines.
func (r *Result) Score(d *Detector, i int) float64 {
	best := 0.0
	cells := d.Grid.CellsRow(i)
	for _, p := range r.Projections {
		if p.Sparsity < best && p.Cube.Covers(cells) {
			best = p.Sparsity
		}
	}
	return best
}

// RankedOutliers returns the covered records ordered by ascending
// Score (most outlying first), ties broken by record index.
func (r *Result) RankedOutliers(d *Detector) []int {
	type scored struct {
		idx   int
		score float64
	}
	ss := make([]scored, 0, len(r.Outliers))
	for _, i := range r.Outliers {
		ss = append(ss, scored{i, r.Score(d, i)})
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score < ss[b].score
		}
		return ss[a].idx < ss[b].idx
	})
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = s.idx
	}
	return out
}

// finalizeOver converts a BestSet into the Result's projections and
// runs the §2.3 postprocessing: the outliers are the records covered
// by at least one retained projection. It goes through the source's
// Cover so remote sources resolve coverage across their shards.
func finalizeOver(src CountSource, bs *evo.BestSet, r *Result) {
	entries := bs.Entries()
	r.Projections = make([]Projection, 0, len(entries))
	r.OutlierSet = bitset.New(src.N())
	for _, e := range entries {
		c := cube.Cube(e.Genome).Clone()
		idx := src.Cover(c)
		r.Projections = append(r.Projections, Projection{Cube: c, Sparsity: e.Fitness, Count: len(idx)})
		for _, i := range idx {
			r.OutlierSet.Set(i)
		}
	}
	r.Outliers = r.OutlierSet.Indices()
}
