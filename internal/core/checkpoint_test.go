package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A brute-force run killed mid-enumeration (here: stopped by a
// candidate budget) and resumed from its checkpoint must produce the
// exact Result of an uninterrupted run — projections, outliers,
// Evaluations, Pruned — at every worker count, including worker
// counts different from the interrupted run's.
func TestBruteCheckpointResumeDeterminism(t *testing.T) {
	ds := plantedDataset(300, 7, 60)
	det := NewDetector(ds, 4)
	base := BruteForceOptions{K: 3, M: 8}

	ref, err := det.BruteForce(base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Evaluations == 0 || len(ref.Projections) == 0 {
		t.Fatal("reference run degenerate")
	}

	for _, workers := range []int{1, 4, 8} {
		path := filepath.Join(t.TempDir(), "brute.ckpt")

		// Interrupt partway: the budget plays the role of the kill.
		interrupted := base
		interrupted.Workers = workers
		interrupted.MaxCandidates = uint64(ref.Evaluations) / 3
		interrupted.Checkpoint = &CheckpointOptions{Path: path}
		if _, err := det.BruteForce(interrupted); !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("workers=%d: interrupted run: err=%v, want budget stop", workers, err)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("workers=%d: no checkpoint written: %v", workers, err)
		}

		resumed := base
		resumed.Workers = workers
		resumed.Checkpoint = &CheckpointOptions{Path: path, Resume: true}
		got, err := det.BruteForce(resumed)
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		resultsEqual(t, labelW("brute resume", workers), ref, got)

		// A second resume over the now-complete checkpoint is a no-op
		// re-merge and still exact.
		again, err := det.BruteForce(resumed)
		if err != nil {
			t.Fatalf("workers=%d: second resume: %v", workers, err)
		}
		resultsEqual(t, labelW("brute re-resume", workers), ref, again)
	}
}

// An evolutionary run interrupted at a generation boundary and
// resumed must follow the exact trajectory of the uninterrupted run:
// same projections, outliers, Evaluations, and Generations, at every
// worker count.
func TestEvoCheckpointResumeDeterminism(t *testing.T) {
	ds := plantedDataset(300, 8, 61)
	det := NewDetector(ds, 4)
	base := EvoOptions{K: 3, M: 8, Seed: 9, MaxGenerations: 30, Patience: -1}

	ref, err := det.Evolutionary(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Projections) == 0 || ref.Generations != 30 {
		t.Fatalf("reference run degenerate: %d projections, %d generations",
			len(ref.Projections), ref.Generations)
	}

	for _, workers := range []int{1, 4, 8} {
		path := filepath.Join(t.TempDir(), "evo.ckpt")

		// Interrupt after 7 generations (MaxGenerations plays the role
		// of the kill; it is excluded from the fingerprint exactly so a
		// short run can be continued longer).
		interrupted := base
		interrupted.Workers = workers
		interrupted.MaxGenerations = 7
		interrupted.Checkpoint = &CheckpointOptions{Path: path}
		if _, err := det.Evolutionary(interrupted); err != nil {
			t.Fatalf("workers=%d: interrupted run: %v", workers, err)
		}

		resumed := base
		resumed.Workers = workers
		resumed.Checkpoint = &CheckpointOptions{Path: path, Resume: true}
		got, err := det.Evolutionary(resumed)
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		resultsEqual(t, labelW("evo resume", workers), ref, got)
	}
}

// Resuming across worker counts: interrupt at one worker count,
// resume at another, result unchanged.
func TestCheckpointResumeAcrossWorkerCounts(t *testing.T) {
	ds := plantedDataset(250, 7, 62)
	det := NewDetector(ds, 4)
	base := EvoOptions{K: 3, M: 6, Seed: 11, MaxGenerations: 20, Patience: -1}

	ref, err := det.Evolutionary(base)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "evo.ckpt")
	interrupted := base
	interrupted.Workers = 8
	interrupted.MaxGenerations = 5
	interrupted.Checkpoint = &CheckpointOptions{Path: path}
	if _, err := det.Evolutionary(interrupted); err != nil {
		t.Fatal(err)
	}
	resumed := base
	resumed.Workers = 1
	resumed.Checkpoint = &CheckpointOptions{Path: path, Resume: true}
	got, err := det.Evolutionary(resumed)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "evo resume 8→1 workers", ref, got)
}

// A checkpoint written by an incompatible search must be rejected
// loudly, not silently restarted: resuming someone else's progress
// would masquerade as a complete run.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	ds := plantedDataset(200, 6, 63)
	det := NewDetector(ds, 4)
	path := filepath.Join(t.TempDir(), "search.ckpt")

	evoOpt := EvoOptions{K: 3, M: 6, Seed: 5, MaxGenerations: 3, Patience: -1,
		Checkpoint: &CheckpointOptions{Path: path}}
	if _, err := det.Evolutionary(evoOpt); err != nil {
		t.Fatal(err)
	}

	// Different seed → different trajectory → rejected.
	diverged := evoOpt
	diverged.Seed = 6
	diverged.Checkpoint = &CheckpointOptions{Path: path, Resume: true}
	if _, err := det.Evolutionary(diverged); err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("mismatched seed resumed: %v", err)
	}

	// Wrong search kind entirely → rejected.
	brute := BruteForceOptions{K: 3, M: 6,
		Checkpoint: &CheckpointOptions{Path: path, Resume: true}}
	if _, err := det.BruteForce(brute); err == nil {
		t.Fatal("evo checkpoint accepted by brute force")
	}

	// Corrupt file → rejected.
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	resume := evoOpt
	resume.Checkpoint = &CheckpointOptions{Path: path, Resume: true}
	if _, err := det.Evolutionary(resume); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt checkpoint resumed: %v", err)
	}
}

// Resume with no checkpoint file on disk starts fresh — the first run
// of a to-be-resumable job needs no special casing — and leaves a
// checkpoint behind.
func TestResumeMissingFileStartsFresh(t *testing.T) {
	ds := plantedDataset(200, 6, 64)
	det := NewDetector(ds, 4)
	path := filepath.Join(t.TempDir(), "fresh.ckpt")

	base := EvoOptions{K: 3, M: 6, Seed: 13, MaxGenerations: 4, Patience: -1}
	ref, err := det.Evolutionary(base)
	if err != nil {
		t.Fatal(err)
	}
	withCkpt := base
	withCkpt.Checkpoint = &CheckpointOptions{Path: path, Resume: true}
	got, err := det.Evolutionary(withCkpt)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "fresh resume", ref, got)
	if _, err := os.Stat(path); err != nil {
		t.Errorf("no checkpoint left behind: %v", err)
	}
}

// Checkpointing must not perturb the search it observes: a
// checkpointed run equals a plain run.
func TestCheckpointingIsInvisible(t *testing.T) {
	ds := plantedDataset(250, 7, 65)
	det := NewDetector(ds, 4)

	evoBase := EvoOptions{K: 3, M: 6, Seed: 17, MaxGenerations: 10, Patience: -1}
	ref, err := det.Evolutionary(evoBase)
	if err != nil {
		t.Fatal(err)
	}
	observed := evoBase
	observed.Checkpoint = &CheckpointOptions{Path: filepath.Join(t.TempDir(), "e.ckpt")}
	got, err := det.Evolutionary(observed)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "evo checkpointed vs plain", ref, got)

	bfBase := BruteForceOptions{K: 2, M: 6, Workers: 4}
	bref, err := det.BruteForce(bfBase)
	if err != nil {
		t.Fatal(err)
	}
	bObserved := bfBase
	bObserved.Checkpoint = &CheckpointOptions{Path: filepath.Join(t.TempDir(), "b.ckpt")}
	bGot, err := det.BruteForce(bObserved)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "brute checkpointed vs plain", bref, bGot)
}

// Restarts and islands interleave several searches over one options
// struct; a single checkpoint file cannot represent that and the
// combination is rejected.
func TestCheckpointRejectedUnderRestartsAndIslands(t *testing.T) {
	ds := plantedDataset(200, 6, 66)
	det := NewDetector(ds, 4)
	opt := EvoOptions{K: 3, M: 6, Seed: 1, MaxGenerations: 3,
		Checkpoint: &CheckpointOptions{Path: filepath.Join(t.TempDir(), "x.ckpt")}}
	if _, err := det.EvolutionaryRestarts(opt, 2); err == nil {
		t.Error("restarts accepted a checkpoint")
	}
	if _, err := det.EvolutionaryIslands(IslandOptions{Evo: opt}); err == nil {
		t.Error("islands accepted a checkpoint")
	}
}

func labelW(name string, workers int) string {
	return fmt.Sprintf("%s workers=%d", name, workers)
}
