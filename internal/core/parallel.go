package core

import "sync"

// run executes the task list on a pool of workers, each with its own
// scratch bitsets and partials stack. With one worker the loop runs
// inline on the calling goroutine — the serial search is literally the
// parallel search at pool size 1, which is what makes the bit-identical
// guarantee checkable rather than aspirational.
func (sh *bfShared) run(workers int) {
	if workers <= 1 {
		sh.runWorker()
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for t := 0; t < workers; t++ {
		go func() {
			defer wg.Done()
			sh.runWorker()
		}()
	}
	wg.Wait()
}

// BruteForceParallel is BruteForce with an explicit worker count:
// workers <= 0 selects GOMAXPROCS. It predates BruteForceOptions.Workers
// and is kept for callers that size the pool at the call site; the
// result is bit-for-bit identical to BruteForce at any worker count.
func (d *Detector) BruteForceParallel(opt BruteForceOptions, workers int) (*Result, error) {
	if workers <= 0 {
		workers = -1
	}
	opt.Workers = workers
	return d.BruteForce(opt)
}
