package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hido/internal/bitset"
	"hido/internal/cube"
	"hido/internal/evo"
)

// BruteForceParallel is BruteForce fanned out over worker goroutines:
// the first-level (dimension, range) branches of the enumeration tree
// are distributed over a work queue and each worker mines its subtree
// with a private best-set; the sets are merged at the end. Quality is
// identical to the sequential search (both retain the optimum);
// tie-breaking among equal-sparsity cubes may differ.
//
// workers <= 0 selects GOMAXPROCS. The candidate and time budgets are
// shared across workers (approximately for the candidate budget: each
// worker checks the global counter at leaf granularity).
func (d *Detector) BruteForceParallel(opt BruteForceOptions, workers int) (*Result, error) {
	if err := d.validateKM(opt.K, opt.M); err != nil {
		return nil, err
	}
	if opt.MinCoverage == 0 {
		opt.MinCoverage = 1
	} else if opt.MinCoverage < 0 {
		opt.MinCoverage = 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opt.K == 1 || workers == 1 {
		// No useful first-level fan-out at k=1; fall back.
		return d.BruteForce(opt)
	}
	start := time.Now()
	var deadline time.Time
	if opt.MaxDuration > 0 {
		deadline = start.Add(opt.MaxDuration)
	}

	type job struct {
		dim int
		rng uint16
	}
	jobs := make(chan job)
	var evaluated atomic.Uint64
	var budgetHit atomic.Bool

	k := opt.K
	results := make([]*evo.BestSet, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		results[w] = evo.NewBestSet(opt.M)
		wg.Add(1)
		go func(bs *evo.BestSet) {
			defer wg.Done()
			partials := make([]*bitset.Set, k)
			for i := range partials {
				partials[i] = bitset.New(d.N())
			}
			c := cube.New(d.D())
			sinceCheck := 0
			const budgetStride = 4096

			var rec func(depth, startDim int, parent *bitset.Set) bool
			rec = func(depth, startDim int, parent *bitset.Set) bool {
				lastLevel := depth == k-1
				for j := startDim; j <= d.D()-(k-depth); j++ {
					for r := 1; r <= d.Phi(); r++ {
						if lastLevel {
							n := d.Index.ExtendCount(parent, j, uint16(r))
							ev := evaluated.Add(1)
							if n >= opt.MinCoverage {
								c[j] = uint16(r)
								s := d.Index.SparsityOf(n, k)
								if s < bs.Worst() {
									bs.Offer(evo.Genome(c), s)
								}
								c[j] = cube.DontCare
							}
							if opt.MaxCandidates > 0 && ev >= opt.MaxCandidates {
								budgetHit.Store(true)
								return false
							}
							sinceCheck++
							if sinceCheck >= budgetStride {
								sinceCheck = 0
								if budgetHit.Load() {
									return false
								}
								if !deadline.IsZero() && time.Now().After(deadline) {
									budgetHit.Store(true)
									return false
								}
							}
							continue
						}
						next := partials[depth]
						next.CopyFrom(parent)
						next.And(d.Index.RangeSet(j, uint16(r)))
						c[j] = uint16(r)
						ok := rec(depth+1, j+1, next)
						c[j] = cube.DontCare
						if !ok {
							return false
						}
					}
				}
				return true
			}

			for jb := range jobs {
				if budgetHit.Load() {
					continue // drain
				}
				partials[0].CopyFrom(d.Index.RangeSet(jb.dim, jb.rng))
				c[jb.dim] = jb.rng
				rec(1, jb.dim+1, partials[0])
				c[jb.dim] = cube.DontCare
			}
		}(results[w])
	}

	for j := 0; j <= d.D()-k; j++ {
		for r := 1; r <= d.Phi(); r++ {
			jobs <- job{dim: j, rng: uint16(r)}
		}
	}
	close(jobs)
	wg.Wait()

	merged := evo.NewBestSet(opt.M)
	for _, bs := range results {
		for _, e := range bs.Entries() {
			merged.Offer(e.Genome, e.Fitness)
		}
	}
	res := &Result{Evaluations: int(evaluated.Load())}
	d.finalize(merged, res)
	res.Elapsed = time.Since(start)
	if budgetHit.Load() {
		return res, ErrBudgetExceeded
	}
	return res, nil
}
