package core

import (
	"fmt"
	"sort"
	"time"

	"hido/internal/bitset"
	"hido/internal/cube"
	"hido/internal/grid"
)

// EvolutionaryRestarts runs the genetic search `restarts` times with
// derived seeds and merges the outcomes. Each converged population
// finds a subset of the sparse projections (the search is stochastic
// and the best-set holds only M cubes), so studies that need *all*
// qualifying projections — the paper's arrhythmia study collects every
// projection with S ≤ −3 — union several runs.
//
// Restarts execute concurrently on opt.Workers goroutines (the budget
// is split: surplus workers fan out inside each run's evaluator), and
// all runs share one projection-count cache — opt.Cache, auto-created
// when more than one restart runs — so a cube counted by any run is
// free for the rest. Results are merged in restart order and each run
// owns a derived seed, so the outcome is identical at every worker
// count. When opt.OnGeneration is set, runs stay sequential so the
// callback never executes concurrently. An opt.Observer does NOT
// serialize the restarts — it must be concurrency-safe, and each
// restart labels its events with a derived run ID ("evo.r0", "evo.r1",
// …); a final aggregate summary is emitted under the parent ID.
//
// The merged result holds every distinct projection found (up to
// restarts·M), sorted by ascending sparsity; Outliers is the union of
// covered records; Evaluations and Generations are summed (Elapsed is
// wall clock), and ConvergedDeJong reports whether every run met the
// De Jong criterion.
func (d *Detector) EvolutionaryRestarts(opt EvoOptions, restarts int) (*Result, error) {
	if err := validateCache(d, opt.Cache); err != nil {
		return nil, err
	}
	if opt.Cache == nil && restarts > 1 {
		opt.Cache = grid.NewCache(d.Index)
	}
	return evolutionaryRestartsOver(d.source(opt.Cache), opt, restarts)
}

// EvolutionaryRestartsOver is EvolutionaryRestarts against an
// arbitrary CountSource (see EvolutionaryOver). The source is shared
// by the concurrent restarts, so it must be safe for concurrent use;
// no shared grid.Cache is auto-created — a memoizing source provides
// its own cross-run reuse. Options bound to a detector's index
// (Cache) are rejected.
func EvolutionaryRestartsOver(src CountSource, opt EvoOptions, restarts int) (*Result, error) {
	if opt.Cache != nil {
		return nil, fmt.Errorf("core: EvoOptions.Cache requires a detector-backed search")
	}
	return evolutionaryRestartsOver(src, opt, restarts)
}

func evolutionaryRestartsOver(src CountSource, opt EvoOptions, restarts int) (*Result, error) {
	if restarts < 1 {
		return nil, fmt.Errorf("core: restarts=%d must be positive", restarts)
	}
	if err := validateEvoOptions(src, opt); err != nil {
		return nil, err
	}
	if opt.Checkpoint != nil {
		return nil, fmt.Errorf("core: checkpointing is not supported with restarts")
	}
	start := time.Now()
	w := resolveWorkers(opt.Workers)
	outer := w
	if outer > restarts {
		outer = restarts
	}
	if opt.OnGeneration != nil {
		outer = 1
	}
	inner := w / outer
	if inner < 1 {
		inner = 1
	}

	runID := opt.RunID
	if runID == "" {
		runID = "evo"
	}
	results := make([]*Result, restarts)
	errs := make([]error, restarts)
	parallelFor(restarts, outer, func(r int) {
		o := opt
		// Derive well-separated seeds; 0x9e3779b97f4a7c15 is the 64-bit
		// golden-ratio increment, so successive restarts never collide.
		o.Seed = opt.Seed + uint64(r)*0x9e3779b97f4a7c15
		o.Workers = inner
		if restarts > 1 {
			o.RunID = fmt.Sprintf("%s.r%d", runID, r)
		}
		results[r], errs[r] = evolutionaryOver(src, o)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	merged := &Result{
		OutlierSet:      bitset.New(src.N()),
		ConvergedDeJong: true,
	}
	seen := map[string]bool{}
	for _, res := range results {
		merged.Evaluations += res.Evaluations
		merged.Generations += res.Generations
		merged.ConvergedDeJong = merged.ConvergedDeJong && res.ConvergedDeJong
		for _, p := range res.Projections {
			key := p.Cube.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			merged.Projections = append(merged.Projections, p)
		}
		merged.OutlierSet.Or(res.OutlierSet)
	}
	merged.Elapsed = time.Since(start)
	sort.SliceStable(merged.Projections, func(a, b int) bool {
		return merged.Projections[a].Sparsity < merged.Projections[b].Sparsity
	})
	merged.Outliers = merged.OutlierSet.Indices()
	if restarts > 1 {
		// Each restart already emitted its own summary; this is the
		// aggregate record for the whole union.
		notifySummary(opt.Observer, runID, "evo-restarts", merged, false, opt.Cache)
	}
	return merged, nil
}

// EvolutionarySweepK runs the evolutionary search at every projection
// dimensionality in [kmin, kmax] and returns the per-k results keyed
// by k. The paper's desiderata note that thresholds at different k
// are not directly comparable (§1.1); the sparsity coefficient is the
// normalizer, so callers typically merge the per-k projections after
// filtering each at the same target coefficient.
func (d *Detector) EvolutionarySweepK(opt EvoOptions, kmin, kmax int) (map[int]*Result, error) {
	if kmin < 1 || kmax < kmin || kmax > d.D() {
		return nil, fmt.Errorf("core: k sweep [%d,%d] outside [1,%d]", kmin, kmax, d.D())
	}
	out := make(map[int]*Result, kmax-kmin+1)
	for k := kmin; k <= kmax; k++ {
		o := opt
		o.K = k
		res, err := d.Evolutionary(o)
		if err != nil {
			return nil, err
		}
		out[k] = res
	}
	return out, nil
}

// FilterProjections returns a copy of the result keeping only
// projections with sparsity at or below the threshold, with outliers
// recomputed over the surviving projections (the §3.1 procedure:
// "all the sparse projections ... with a sparsity coefficient of -3
// or less").
func (r *Result) FilterProjections(d *Detector, threshold float64) *Result {
	return r.FilterProjectionsOver(d.source(nil), threshold)
}

// FilterProjectionsOver is FilterProjections against an arbitrary
// CountSource — the cluster fit filters through the shard fan-out.
func (r *Result) FilterProjectionsOver(src CountSource, threshold float64) *Result {
	out := &Result{
		Evaluations:     r.Evaluations,
		Generations:     r.Generations,
		ConvergedDeJong: r.ConvergedDeJong,
		Elapsed:         r.Elapsed,
		OutlierSet:      bitset.New(src.N()),
	}
	for _, p := range r.Projections {
		if p.Sparsity > threshold {
			continue
		}
		out.Projections = append(out.Projections, p)
		for _, i := range src.Cover(p.Cube) {
			out.OutlierSet.Set(i)
		}
	}
	out.Outliers = out.OutlierSet.Indices()
	return out
}

// Explanation is a minimal sparse sub-cube explaining one record: no
// constraint can be dropped without the sparsity coefficient rising
// above the threshold. It is the library's rendering of the
// "intensional knowledge" of [23] that §1 of the paper discusses —
// the smallest attribute combination that makes the record abnormal.
type Explanation struct {
	Cube     cube.Cube
	Sparsity float64
	Count    int
}

// Describe renders the explanation with attribute names.
func (e Explanation) Describe(d *Detector) string {
	return Projection{Cube: e.Cube, Sparsity: e.Sparsity, Count: e.Count}.Describe(d)
}

// MinimalExplanations reduces each projection covering record i to a
// minimal sub-cube still at or below the threshold, deduplicating the
// results. Constraints are dropped greedily, always removing the one
// whose removal keeps the sparsity lowest, so each explanation is
// locally minimal (dropping any remaining constraint would exceed the
// threshold). Projections above the threshold are skipped.
func (r *Result) MinimalExplanations(d *Detector, i int, threshold float64) []Explanation {
	cells := d.Grid.CellsRow(i)
	seen := map[string]bool{}
	var out []Explanation
	for _, p := range r.Projections {
		if p.Sparsity > threshold || !p.Cube.Covers(cells) {
			continue
		}
		c := p.Cube.Clone()
		s := p.Sparsity
		for c.K() > 1 {
			bestDim := -1
			bestS := 0.0
			for _, dim := range c.Dims() {
				reduced := c.With(dim, cube.DontCare)
				rs := d.Index.Sparsity(reduced)
				if rs <= threshold && (bestDim < 0 || rs < bestS) {
					bestDim, bestS = dim, rs
				}
			}
			if bestDim < 0 {
				break // dropping anything would exceed the threshold
			}
			c = c.With(bestDim, cube.DontCare)
			s = bestS
		}
		key := c.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Explanation{Cube: c, Sparsity: s, Count: d.Index.Count(c)})
	}
	// Drop dominated explanations: if one explanation's constraints are
	// a subset of another's, the broader statement subsumes the
	// narrower one.
	kept := out[:0]
	for i, e := range out {
		dominated := false
		for j, other := range out {
			if i == j {
				continue
			}
			if e.Cube.Contains(other.Cube) && !other.Cube.Contains(e.Cube) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, e)
		}
	}
	out = kept
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Cube.K() != out[b].Cube.K() {
			return out[a].Cube.K() < out[b].Cube.K()
		}
		return out[a].Sparsity < out[b].Sparsity
	})
	return out
}
