package core

import (
	"fmt"
	"sort"
	"time"

	"hido/internal/evo"
	"hido/internal/grid"
	"hido/internal/xrand"
)

// IslandOptions extends the evolutionary search with an island model:
// several populations evolve independently and periodically exchange
// their best members around a ring. Isolation preserves diversity —
// each island converges on a different region of the projection space
// — while migration still spreads strong building blocks. This is the
// library's structured alternative to unioning independent restarts
// (EvolutionaryRestarts): one run, wider coverage of the qualifying
// sparse projections.
type IslandOptions struct {
	// Evo carries the per-island parameters; Evo.PopSize is the size
	// of EACH island. Evo.OnGeneration observes island 0; Evo.Observer
	// receives one generation event per island per generation (run IDs
	// "evo.i0", "evo.i1", …) plus an "evo-islands" summary. Evo.Workers
	// is the TOTAL worker budget: islands evolve concurrently, and
	// leftover workers fan out inside each island's evaluator. Results
	// are identical at every worker count — each island owns an
	// independent RNG stream seeded from the master seed, islands
	// synchronize at a generation barrier, and migration plus best-set
	// merging happen in island order.
	Evo EvoOptions
	// Islands is the number of populations (default 4).
	Islands int
	// MigrateEvery is the generation interval between migrations
	// (default 10).
	MigrateEvery int
	// Migrants is how many members each island sends to its ring
	// neighbor per migration, replacing the neighbor's worst members
	// (default 2).
	Migrants int
}

func (o IslandOptions) withDefaults() IslandOptions {
	if o.Islands == 0 {
		o.Islands = 4
	}
	if o.MigrateEvery == 0 {
		o.MigrateEvery = 10
	}
	if o.Migrants == 0 {
		o.Migrants = 2
	}
	return o
}

// EvolutionaryIslands runs the island-model genetic search. The
// result's projections are the best M across all islands. Islands
// share one projection-count cache (Evo.Cache, auto-created when more
// than one island runs), so a cube counted by any island is free for
// the rest.
func (d *Detector) EvolutionaryIslands(opt IslandOptions) (*Result, error) {
	opt = opt.withDefaults()
	if opt.Islands < 1 || opt.MigrateEvery < 1 || opt.Migrants < 0 {
		return nil, fmt.Errorf("core: invalid island parameters %+v", opt)
	}
	eo := opt.Evo
	if err := validateEvoOptions(d.source(nil), eo); err != nil {
		return nil, err
	}
	if err := validateCache(d, eo.Cache); err != nil {
		return nil, err
	}
	if eo.Checkpoint != nil {
		return nil, fmt.Errorf("core: checkpointing is not supported with islands")
	}
	eo = eo.withDefaults()
	if opt.Migrants >= eo.PopSize {
		return nil, fmt.Errorf("core: %d migrants with island size %d", opt.Migrants, eo.PopSize)
	}
	start := time.Now()

	if eo.Cache == nil && opt.Islands > 1 {
		eo.Cache = grid.NewCache(d.Index)
	}

	// Worker budget: islands evolve concurrently; leftover workers fan
	// out inside each island's evaluator.
	w := resolveWorkers(eo.Workers)
	outer := w
	if outer > opt.Islands {
		outer = opt.Islands
	}
	inner := w / outer
	if inner < 1 {
		inner = 1
	}

	// Each island owns an independent search state — RNG stream, best
	// set, run-local fitness memo — seeded serially from the master
	// stream, so the per-island trajectories are fixed by eo.Seed alone.
	master := xrand.New(eo.Seed)
	searches := make([]*search, opt.Islands)
	islands := make([]*evo.Population, opt.Islands)
	runID := eo.RunID
	if runID == "" {
		runID = "evo"
	}
	for i := range searches {
		io := eo
		io.Seed = master.Uint64()
		io.Workers = inner
		// Per-island generation events are emitted at the barrier below
		// (not by the island itself); the legacy callback still observes
		// island 0 only.
		io.OnGeneration = nil
		io.RunID = fmt.Sprintf("%s.i%d", runID, i)
		searches[i] = newSearch(d.source(io.Cache), io)
		islands[i] = evo.NewPopulation(eo.PopSize, d.D())
	}
	parallelFor(opt.Islands, outer, func(i int) {
		s, pop := searches[i], islands[i]
		for m := range pop.Members {
			s.randomGenome(pop.Members[m])
		}
		s.evaluateAll(pop)
		s.offerAll(pop)
	})

	res := &Result{}
	improvedBy := make([]bool, opt.Islands)
	stall := 0
	gen := 0
	for ; gen < eo.MaxGenerations; gen++ {
		// One generation per island, concurrently; the barrier below
		// keeps migration and observation deterministic.
		parallelFor(opt.Islands, outer, func(i int) {
			s, pop := searches[i], islands[i]
			pop.Select(eo.Selection, s.rng)
			s.crossoverAll(pop)
			s.mutateAll(pop)
			s.evaluateAll(pop)
			improvedBy[i] = s.offerAll(pop)
		})
		if eo.OnGeneration != nil {
			st := islands[0].Snapshot(gen)
			st.Evaluated = sumEvals(searches)
			st.BestSoFar = mergeBestSets(searches, eo.M).MeanFitness()
			eo.OnGeneration(st)
		}
		if eo.Observer != nil {
			// One event per island, in island order at the barrier, so
			// delivery is deterministic.
			for i, s := range searches {
				s.notifyGeneration(islands[i], gen, islands[i].ConvergedFraction(0.95))
			}
		}
		if (gen+1)%opt.MigrateEvery == 0 && opt.Islands > 1 && opt.Migrants > 0 {
			migrate(islands, opt.Migrants)
		}
		improved := false
		for _, b := range improvedBy {
			improved = improved || b
		}
		if improved {
			stall = 0
		} else {
			stall++
		}
		allConverged := true
		for _, pop := range islands {
			if !pop.Converged() {
				allConverged = false
				break
			}
		}
		if allConverged {
			res.ConvergedDeJong = true
			gen++
			break
		}
		if eo.Patience > 0 && stall >= eo.Patience {
			gen++
			break
		}
	}

	res.Generations = gen
	res.Evaluations = sumEvals(searches)
	finalizeOver(d.source(nil), mergeBestSets(searches, eo.M), res)
	res.Elapsed = time.Since(start)
	notifySummary(eo.Observer, runID, "evo-islands", res, false, eo.Cache)
	return res, nil
}

// sumEvals totals the per-island logical evaluation counters.
func sumEvals(searches []*search) int {
	total := 0
	for _, s := range searches {
		total += s.evals
	}
	return total
}

// mergeBestSets folds the per-island best sets — in island order, so
// the merge is deterministic — into one global top-M. Offer dedups by
// genome key, so the result is exactly the M best distinct solutions
// across all islands.
func mergeBestSets(searches []*search, m int) *evo.BestSet {
	bs := evo.NewBestSet(m)
	for _, s := range searches {
		for _, e := range s.bs.Entries() {
			bs.Offer(e.Genome, e.Fitness)
		}
	}
	return bs
}

// migrate copies each island's best `migrants` members over the next
// island's worst members (ring topology).
func migrate(islands []*evo.Population, migrants int) {
	type ranked struct {
		idx []int
	}
	order := make([]ranked, len(islands))
	for i, pop := range islands {
		idx := make([]int, pop.Len())
		for m := range idx {
			idx[m] = m
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return pop.Fitness[idx[a]] < pop.Fitness[idx[b]]
		})
		order[i] = ranked{idx: idx}
	}
	// Collect emigrants first so a member is never overwritten before
	// being copied out.
	type emigrant struct {
		genome  evo.Genome
		fitness float64
	}
	out := make([][]emigrant, len(islands))
	for i, pop := range islands {
		for m := 0; m < migrants && m < pop.Len(); m++ {
			src := order[i].idx[m]
			out[i] = append(out[i], emigrant{pop.Members[src].Clone(), pop.Fitness[src]})
		}
	}
	for i := range islands {
		dst := islands[(i+1)%len(islands)]
		dstOrder := order[(i+1)%len(islands)].idx
		for m, em := range out[i] {
			// replace the destination's worst members
			slot := dstOrder[len(dstOrder)-1-m]
			dst.Members[slot] = em.genome
			dst.Fitness[slot] = em.fitness
		}
	}
}
