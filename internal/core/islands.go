package core

import (
	"fmt"
	"sort"
	"time"

	"hido/internal/evo"
	"hido/internal/xrand"
)

// IslandOptions extends the evolutionary search with an island model:
// several populations evolve independently and periodically exchange
// their best members around a ring. Isolation preserves diversity —
// each island converges on a different region of the projection space
// — while migration still spreads strong building blocks. This is the
// library's structured alternative to unioning independent restarts
// (EvolutionaryRestarts): one run, wider coverage of the qualifying
// sparse projections.
type IslandOptions struct {
	// Evo carries the per-island parameters; Evo.PopSize is the size
	// of EACH island. Evo.OnGeneration observes island 0.
	Evo EvoOptions
	// Islands is the number of populations (default 4).
	Islands int
	// MigrateEvery is the generation interval between migrations
	// (default 10).
	MigrateEvery int
	// Migrants is how many members each island sends to its ring
	// neighbor per migration, replacing the neighbor's worst members
	// (default 2).
	Migrants int
}

func (o IslandOptions) withDefaults() IslandOptions {
	if o.Islands == 0 {
		o.Islands = 4
	}
	if o.MigrateEvery == 0 {
		o.MigrateEvery = 10
	}
	if o.Migrants == 0 {
		o.Migrants = 2
	}
	return o
}

// EvolutionaryIslands runs the island-model genetic search. The
// result's projections come from a best-set shared by all islands.
func (d *Detector) EvolutionaryIslands(opt IslandOptions) (*Result, error) {
	opt = opt.withDefaults()
	if opt.Islands < 1 || opt.MigrateEvery < 1 || opt.Migrants < 0 {
		return nil, fmt.Errorf("core: invalid island parameters %+v", opt)
	}
	eo := opt.Evo
	if err := d.validateKM(eo.K, eo.M); err != nil {
		return nil, err
	}
	eo = eo.withDefaults()
	if eo.PopSize < 2 {
		return nil, fmt.Errorf("core: population size %d too small", eo.PopSize)
	}
	if opt.Migrants >= eo.PopSize {
		return nil, fmt.Errorf("core: %d migrants with island size %d", opt.Migrants, eo.PopSize)
	}
	start := time.Now()

	// One search context shared across islands: common fitness cache,
	// best set, and RNG (the loop is sequential, so this stays
	// deterministic per seed).
	s := &search{
		d:     d,
		opt:   eo,
		rng:   xrand.New(eo.Seed),
		bs:    evo.NewBestSet(eo.M),
		cache: make(map[string]fitEntry),
	}

	islands := make([]*evo.Population, opt.Islands)
	for i := range islands {
		pop := evo.NewPopulation(eo.PopSize, d.D())
		for m := range pop.Members {
			s.randomGenome(pop.Members[m])
			pop.Fitness[m] = s.evaluate(pop.Members[m])
			s.offer(pop.Members[m], pop.Fitness[m])
		}
		islands[i] = pop
	}

	res := &Result{}
	stall := 0
	gen := 0
	for ; gen < eo.MaxGenerations; gen++ {
		improved := false
		for _, pop := range islands {
			pop.Select(eo.Selection, s.rng)
			s.crossoverAll(pop)
			s.mutateAll(pop)
			for m := range pop.Members {
				pop.Fitness[m] = s.evaluate(pop.Members[m])
				if s.offer(pop.Members[m], pop.Fitness[m]) {
					improved = true
				}
			}
		}
		if eo.OnGeneration != nil {
			st := islands[0].Snapshot(gen)
			st.Evaluated = s.evals
			st.BestSoFar = s.bs.MeanFitness()
			eo.OnGeneration(st)
		}
		if (gen+1)%opt.MigrateEvery == 0 && opt.Islands > 1 && opt.Migrants > 0 {
			migrate(islands, opt.Migrants)
		}
		if improved {
			stall = 0
		} else {
			stall++
		}
		allConverged := true
		for _, pop := range islands {
			if !pop.Converged() {
				allConverged = false
				break
			}
		}
		if allConverged {
			res.ConvergedDeJong = true
			gen++
			break
		}
		if eo.Patience > 0 && stall >= eo.Patience {
			gen++
			break
		}
	}

	res.Generations = gen
	res.Evaluations = s.evals
	d.finalize(s.bs, res)
	res.Elapsed = time.Since(start)
	return res, nil
}

// migrate copies each island's best `migrants` members over the next
// island's worst members (ring topology).
func migrate(islands []*evo.Population, migrants int) {
	type ranked struct {
		idx []int
	}
	order := make([]ranked, len(islands))
	for i, pop := range islands {
		idx := make([]int, pop.Len())
		for m := range idx {
			idx[m] = m
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return pop.Fitness[idx[a]] < pop.Fitness[idx[b]]
		})
		order[i] = ranked{idx: idx}
	}
	// Collect emigrants first so a member is never overwritten before
	// being copied out.
	type emigrant struct {
		genome  evo.Genome
		fitness float64
	}
	out := make([][]emigrant, len(islands))
	for i, pop := range islands {
		for m := 0; m < migrants && m < pop.Len(); m++ {
			src := order[i].idx[m]
			out[i] = append(out[i], emigrant{pop.Members[src].Clone(), pop.Fitness[src]})
		}
	}
	for i := range islands {
		dst := islands[(i+1)%len(islands)]
		dstOrder := order[(i+1)%len(islands)].idx
		for m, em := range out[i] {
			// replace the destination's worst members
			slot := dstOrder[len(dstOrder)-1-m]
			dst.Members[slot] = em.genome
			dst.Fitness[slot] = em.fitness
		}
	}
}
