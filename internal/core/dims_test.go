package core

import (
	"strings"
	"testing"

	"hido/internal/cube"
)

// fullBag returns the explicit list of every dimension — the bag that
// must behave bit-identically to no bag at all.
func fullBag(d int) []int {
	all := make([]int, d)
	for i := range all {
		all[i] = i
	}
	return all
}

// resultsIdentical compares everything a caller can observe: retained
// projections (cube, sparsity, count), outlier set, and telemetry.
func resultsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	projectionsEqual(t, label, a, b)
	if a.Evaluations != b.Evaluations || a.Pruned != b.Pruned {
		t.Fatalf("%s: telemetry differs: evals %d vs %d, pruned %d vs %d",
			label, a.Evaluations, b.Evaluations, a.Pruned, b.Pruned)
	}
}

// A full bag [0..D) must be indistinguishable from no bag: same
// enumeration order, same RNG stream, same telemetry.
func TestFullBagEquivalence(t *testing.T) {
	ds := plantedDataset(200, 6, 31)
	det := NewDetector(ds, 4)

	t.Run("brute", func(t *testing.T) {
		base, err := det.BruteForce(BruteForceOptions{K: 3, M: 8})
		if err != nil {
			t.Fatal(err)
		}
		bag, err := det.BruteForce(BruteForceOptions{K: 3, M: 8, Dims: fullBag(det.D())})
		if err != nil {
			t.Fatal(err)
		}
		resultsIdentical(t, "brute full bag", base, bag)
	})

	t.Run("evo", func(t *testing.T) {
		opt := EvoOptions{K: 3, M: 8, Seed: 7, PopSize: 30, MaxGenerations: 40}
		base, err := det.Evolutionary(opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Dims = fullBag(det.D())
		bag, err := det.Evolutionary(opt)
		if err != nil {
			t.Fatal(err)
		}
		resultsIdentical(t, "evo full bag", base, bag)
	})
}

// A restricted search must only constrain dimensions in the bag, and a
// brute-force bag must enumerate exactly the cubes within it.
func TestBagRestriction(t *testing.T) {
	ds := plantedDataset(200, 7, 32)
	det := NewDetector(ds, 3)
	bag := []int{0, 2, 3, 5}

	inBag := make(map[int]bool)
	for _, j := range bag {
		inBag[j] = true
	}
	checkCubes := func(t *testing.T, res *Result) {
		t.Helper()
		if len(res.Projections) == 0 {
			t.Fatal("no projections retained")
		}
		for _, p := range res.Projections {
			for j, v := range p.Cube {
				if v != cube.DontCare && !inBag[j] {
					t.Fatalf("projection %v constrains dim %d outside bag %v", p.Cube, j, bag)
				}
			}
		}
	}

	t.Run("brute", func(t *testing.T) {
		res, err := det.BruteForce(BruteForceOptions{K: 2, M: 6, Dims: bag})
		if err != nil {
			t.Fatal(err)
		}
		checkCubes(t, res)
		// The unpruned enumeration over a bag of b dims visits exactly
		// C(b, k) * phi^k leaves.
		full, err := det.BruteForce(BruteForceOptions{K: 2, M: 6, Dims: bag, DisablePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		want := 6 * 9 // C(4,2) * 3^2
		if full.Evaluations != want {
			t.Fatalf("bag enumeration evaluated %d leaves, want %d", full.Evaluations, want)
		}
	})

	t.Run("evo", func(t *testing.T) {
		res, err := det.Evolutionary(EvoOptions{K: 2, M: 6, Seed: 9, Dims: bag,
			PopSize: 30, MaxGenerations: 60})
		if err != nil {
			t.Fatal(err)
		}
		checkCubes(t, res)
	})
}

// Restricted searches stay bit-identical across worker counts, like
// everything else in the package.
func TestBagWorkerDeterminism(t *testing.T) {
	ds := plantedDataset(250, 8, 33)
	det := NewDetector(ds, 4)
	bag := []int{1, 2, 4, 6, 7}

	bBase, err := det.BruteForce(BruteForceOptions{K: 3, M: 8, Dims: bag})
	if err != nil {
		t.Fatal(err)
	}
	eBase, err := det.Evolutionary(EvoOptions{K: 3, M: 8, Seed: 11, Dims: bag,
		PopSize: 30, MaxGenerations: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		b, err := det.BruteForce(BruteForceOptions{K: 3, M: 8, Dims: bag, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		resultsIdentical(t, "brute workers", bBase, b)
		e, err := det.Evolutionary(EvoOptions{K: 3, M: 8, Seed: 11, Dims: bag,
			PopSize: 30, MaxGenerations: 40, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		resultsIdentical(t, "evo workers", eBase, e)
	}
}

func TestValidateDims(t *testing.T) {
	ds := plantedDataset(80, 5, 34)
	det := NewDetector(ds, 3)

	cases := []struct {
		name string
		dims []int
		want string // substring of the error, "" for ok
	}{
		{"nil", nil, ""},
		{"valid", []int{0, 2, 4}, ""},
		{"too few", []int{1}, "need at least"},
		{"out of range", []int{0, 1, 5}, "outside"},
		{"negative", []int{-1, 0, 1}, "outside"},
		{"duplicate", []int{0, 1, 1}, "strictly increasing"},
		{"unsorted", []int{2, 1, 3}, "strictly increasing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateDims(det.D(), tc.dims, 2)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
			// Both entry points must reject the same bags.
			if _, err := det.BruteForce(BruteForceOptions{K: 2, M: 3, Dims: tc.dims}); err == nil {
				t.Fatal("BruteForce accepted invalid bag")
			}
			if _, err := det.Evolutionary(EvoOptions{K: 2, M: 3, Dims: tc.dims}); err == nil {
				t.Fatal("Evolutionary accepted invalid bag")
			}
		})
	}
}

// Bag fingerprints must differ from the unrestricted fingerprint (and
// from each other), while nil keeps the historical bytes.
func TestDimsFingerprint(t *testing.T) {
	if got := dimsFingerprint(nil); got != "" {
		t.Fatalf("nil bag fingerprint = %q, want empty", got)
	}
	a := dimsFingerprint([]int{0, 1, 2})
	b := dimsFingerprint([]int{0, 1, 3})
	if a == "" || a == b {
		t.Fatalf("bag fingerprints not distinct: %q vs %q", a, b)
	}
}
