package core

import (
	"math"
	"time"

	"hido/internal/cube"
	"hido/internal/evo"
	"hido/internal/grid"
	"hido/internal/obs"
)

// This file is the only bridge between the searches and the
// observability layer. Every emission helper returns immediately when
// no observer is attached, before building any event payload — the
// nil-observer path adds zero allocations to the search hot paths
// (guarded by TestNilObserverZeroAlloc) and an attached observer only
// ever reads derived snapshots, so Results stay bit-identical with or
// without one.

// cacheSnapshot converts the shared count cache's counters into the
// obs wire type; nil cache stays nil (the event omits cache fields).
func cacheSnapshot(c *grid.Cache) *obs.CacheStats {
	if c == nil {
		return nil
	}
	st := c.Stats()
	return &obs.CacheStats{Hits: st.Hits, Misses: st.Misses, Size: st.Size}
}

// finiteOr0 maps the sentinel non-finite fitness values (+Inf for "no
// member", NaN for "empty best set") to 0 so trace events stay valid
// JSON.
func finiteOr0(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}

// notifyGeneration computes the per-generation snapshot and delivers
// it to the legacy OnGeneration callback and/or the Observer. With
// neither attached it returns before computing anything. converged is
// the generation's De Jong fraction, which the caller already needs
// for its termination check; the distinct count comes from
// evaluateAll's key pass.
func (s *search) notifyGeneration(pop *evo.Population, gen int, converged float64) {
	if s.opt.OnGeneration == nil && s.opt.Observer == nil {
		return
	}
	st := pop.FitnessStats(gen)
	st.Converged = converged
	st.Distinct = s.lastDistinct
	st.Evaluated = s.evals
	st.BestSoFar = s.bs.MeanFitness()
	if e := s.bs.Entries(); len(e) > 0 {
		st.BestString = cube.Cube(e[0].Genome).String()
	}
	if s.opt.OnGeneration != nil {
		s.opt.OnGeneration(st)
	}
	if o := s.opt.Observer; o != nil {
		o.OnGeneration(obs.GenerationEvent{
			Run:         s.opt.RunID,
			Gen:         gen,
			PopSize:     pop.Len(),
			BestFit:     finiteOr0(st.BestFit),
			MeanFit:     finiteOr0(st.MeanFit),
			WorstFit:    finiteOr0(st.WorstFit),
			BestSoFar:   finiteOr0(st.BestSoFar),
			Best:        st.BestString,
			Converged:   st.Converged,
			Distinct:    st.Distinct,
			Evaluations: s.evals,
			Cache:       cacheSnapshot(s.shared),
		})
	}
}

// notifySummary delivers the terminal run record for a finished
// search; a nil observer returns immediately.
func notifySummary(o obs.Observer, run, algo string, res *Result, budgetExceeded bool, cache *grid.Cache) {
	if o == nil {
		return
	}
	ev := obs.SummaryEvent{
		Run:             run,
		Algo:            algo,
		Evaluations:     res.Evaluations,
		Pruned:          res.Pruned,
		Generations:     res.Generations,
		Projections:     len(res.Projections),
		Outliers:        len(res.Outliers),
		MeanSparsity:    finiteOr0(res.Quality()),
		ConvergedDeJong: res.ConvergedDeJong,
		BudgetExceeded:  budgetExceeded,
		Elapsed:         res.Elapsed,
		Cache:           cacheSnapshot(cache),
	}
	if len(res.Projections) > 0 {
		ev.BestSparsity = res.Projections[0].Sparsity
	}
	o.OnDone(ev)
}

// notifyProgress delivers one brute-force heartbeat from the shared
// counters; a nil observer returns immediately. Called from the
// heartbeat goroutine and once after the workers drain, never from the
// enumeration itself.
func (sh *bfShared) notifyProgress(start time.Time) {
	o := sh.opt.Observer
	if o == nil {
		return
	}
	evals := sh.evals.Load()
	elapsed := time.Since(start)
	rate := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(evals) / secs
	}
	o.OnProgress(obs.ProgressEvent{
		Run:         sh.opt.RunID,
		TasksDone:   int(sh.tasksDone.Load()),
		TasksTotal:  len(sh.tasks),
		Evaluations: evals,
		Pruned:      sh.pruned.Load(),
		EvalsPerSec: rate,
		Elapsed:     elapsed,
		Cache:       cacheSnapshot(sh.opt.Cache),
	})
}

// heartbeat emits periodic progress events until stopped. It only
// reads the shared atomic counters, so it cannot perturb the search.
func (sh *bfShared) heartbeat(start time.Time, every time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			sh.notifyProgress(start)
		case <-stop:
			return
		}
	}
}
