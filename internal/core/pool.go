package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// resolveWorkers maps an options-style worker count to a concrete
// pool size: zero is the serial default, negative selects GOMAXPROCS.
func resolveWorkers(w int) int {
	switch {
	case w == 0:
		return 1
	case w < 0:
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// parallelFor runs fn(i) for every i in [0, n) on up to workers
// goroutines, returning after all calls complete. With one worker (or
// one item) it runs inline on the calling goroutine. Work is handed
// out through an atomic counter, so callers must make fn independent
// across indices; determinism is then inherited from fn itself.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for t := 0; t < workers; t++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
