package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	ds := plantedDataset(200, 4, 63)
	det := NewDetector(ds, 4)
	res, err := det.BruteForce(BruteForceOptions{K: 2, M: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, det); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Projections []struct {
			Cube        string  `json:"cube"`
			Description string  `json:"description"`
			Sparsity    float64 `json:"sparsity"`
		} `json:"projections"`
		Outliers []struct {
			Record int     `json:"record"`
			Score  float64 `json:"score"`
			Label  string  `json:"label"`
		} `json:"outliers"`
		Quality *float64 `json:"quality"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.Projections) != len(res.Projections) {
		t.Errorf("projections %d, want %d", len(decoded.Projections), len(res.Projections))
	}
	if decoded.Quality == nil {
		t.Error("quality missing")
	}
	if len(decoded.Outliers) != len(res.Outliers) {
		t.Errorf("outliers %d, want %d", len(decoded.Outliers), len(res.Outliers))
	}
	foundPlanted := false
	for _, o := range decoded.Outliers {
		if o.Record == 200 && o.Label == "planted" {
			foundPlanted = true
		}
	}
	if !foundPlanted {
		t.Error("planted record missing from JSON outliers")
	}
}
