package core

import (
	"math"
	"testing"

	"hido/internal/cube"
)

func TestEvolutionaryRestartsMergesDistinct(t *testing.T) {
	ds := plantedDataset(300, 8, 30)
	det := NewDetector(ds, 4)
	single, err := det.Evolutionary(EvoOptions{K: 2, M: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := det.EvolutionaryRestarts(EvoOptions{K: 2, M: 10, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Projections) < len(single.Projections) {
		t.Errorf("merged %d projections < single run's %d",
			len(merged.Projections), len(single.Projections))
	}
	if len(merged.Projections) > 40 {
		t.Errorf("merged %d projections > restarts*M", len(merged.Projections))
	}
	// No duplicates, sorted ascending by sparsity.
	seen := map[string]bool{}
	for i, p := range merged.Projections {
		if seen[p.Cube.Key()] {
			t.Fatalf("duplicate projection %v", p.Cube)
		}
		seen[p.Cube.Key()] = true
		if i > 0 && p.Sparsity < merged.Projections[i-1].Sparsity {
			t.Fatal("merged projections not sorted")
		}
	}
	// Union semantics for outliers and summed telemetry.
	if merged.Evaluations <= single.Evaluations {
		t.Error("merged evaluations not accumulated")
	}
	for _, i := range single.Outliers {
		if !merged.OutlierSet.Test(i) {
			t.Errorf("record %d lost in the union", i)
		}
	}
}

func TestEvolutionaryRestartsValidation(t *testing.T) {
	det := NewDetector(plantedDataset(50, 3, 31), 3)
	if _, err := det.EvolutionaryRestarts(EvoOptions{K: 2, M: 5}, 0); err == nil {
		t.Error("restarts=0 accepted")
	}
	if _, err := det.EvolutionaryRestarts(EvoOptions{K: 9, M: 5}, 2); err == nil {
		t.Error("bad K accepted")
	}
}

func TestFilterProjections(t *testing.T) {
	ds := plantedDataset(400, 5, 32)
	det := NewDetector(ds, 5)
	res, err := det.BruteForce(BruteForceOptions{K: 2, M: 20})
	if err != nil {
		t.Fatal(err)
	}
	threshold := res.Projections[0].Sparsity + 1e-9 // keep only the best tier
	filtered := res.FilterProjections(det, threshold)
	if len(filtered.Projections) == 0 {
		t.Fatal("filter removed everything")
	}
	for _, p := range filtered.Projections {
		if p.Sparsity > threshold {
			t.Errorf("projection %v above threshold survived", p.Cube)
		}
	}
	if len(filtered.Projections) >= len(res.Projections) {
		t.Skip("all projections tied at the optimum; nothing filtered")
	}
	// Outliers recomputed: every remaining outlier covered by a
	// surviving projection.
	for _, i := range filtered.Outliers {
		if len(filtered.CoveringProjections(det, i)) == 0 {
			t.Errorf("outlier %d not covered after filtering", i)
		}
	}
}

func TestMinimalExplanations(t *testing.T) {
	// Dims 0,1 are tightly correlated; dim 2+ noise. A planted record in
	// the off-diagonal (0,1) cell is explained minimally by those two
	// dims even when the covering projection carries k=3 constraints.
	ds := plantedDataset(500, 6, 33)
	det := NewDetector(ds, 4)
	res, err := det.BruteForce(BruteForceOptions{K: 3, M: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutlierSet.Test(500) {
		t.Skip("planted record not covered at k=3 with m=30")
	}
	threshold := -2.0
	exps := res.MinimalExplanations(det, 500, threshold)
	if len(exps) == 0 {
		t.Fatal("no explanations")
	}
	for _, e := range exps {
		if e.Sparsity > threshold {
			t.Errorf("explanation %v above threshold (S=%v)", e.Cube, e.Sparsity)
		}
		if !e.Cube.Covers(det.Grid.CellsRow(500)) {
			t.Errorf("explanation %v does not cover the record", e.Cube)
		}
		// Local minimality: dropping any constraint exceeds the threshold.
		if e.Cube.K() > 1 {
			for _, dim := range e.Cube.Dims() {
				if s := det.Index.Sparsity(e.Cube.With(dim, cube.DontCare)); s <= threshold {
					t.Errorf("explanation %v not minimal: dropping dim %d keeps S=%v", e.Cube, dim, s)
				}
			}
		}
		if e.Describe(det) == "" {
			t.Error("empty description")
		}
	}
	// Explanations are sorted by dimensionality then sparsity.
	for i := 1; i < len(exps); i++ {
		if exps[i].Cube.K() < exps[i-1].Cube.K() {
			t.Error("explanations not sorted by dimensionality")
		}
	}
}

func TestBruteForceParallelMatchesSequential(t *testing.T) {
	ds := plantedDataset(400, 8, 34)
	det := NewDetector(ds, 4)
	seq, err := det.BruteForce(BruteForceOptions{K: 3, M: 15})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 0} {
		par, err := det.BruteForceParallel(BruteForceOptions{K: 3, M: 15}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Evaluations != seq.Evaluations {
			t.Errorf("workers=%d: evaluations %d vs sequential %d",
				workers, par.Evaluations, seq.Evaluations)
		}
		if len(par.Projections) != len(seq.Projections) {
			t.Fatalf("workers=%d: %d projections vs %d", workers,
				len(par.Projections), len(seq.Projections))
		}
		// Quality identical position by position (cube identity may
		// differ on exact ties).
		for i := range par.Projections {
			if math.Abs(par.Projections[i].Sparsity-seq.Projections[i].Sparsity) > 1e-9 {
				t.Errorf("workers=%d pos %d: sparsity %v vs %v", workers, i,
					par.Projections[i].Sparsity, seq.Projections[i].Sparsity)
			}
		}
	}
}

func TestBruteForceParallelK1FallsBack(t *testing.T) {
	det := NewDetector(plantedDataset(100, 4, 35), 4)
	res, err := det.BruteForceParallel(BruteForceOptions{K: 1, M: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 4*4 {
		t.Errorf("k=1 evaluations = %d, want 16", res.Evaluations)
	}
}

func TestBruteForceParallelBudget(t *testing.T) {
	det := NewDetector(plantedDataset(200, 10, 36), 5)
	res, err := det.BruteForceParallel(BruteForceOptions{K: 3, M: 5, MaxCandidates: 500}, 4)
	if err == nil {
		t.Fatal("budget not reported")
	}
	if res == nil || res.Evaluations < 500 {
		t.Errorf("partial result evaluations = %v", res)
	}
}

func TestBruteForceParallelValidation(t *testing.T) {
	det := NewDetector(plantedDataset(50, 3, 37), 3)
	if _, err := det.BruteForceParallel(BruteForceOptions{K: 0, M: 5}, 2); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestMinimalExplanationsDropDominated(t *testing.T) {
	ds := plantedDataset(500, 6, 61)
	det := NewDetector(ds, 4)
	res, err := det.BruteForce(BruteForceOptions{K: 3, M: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutlierSet.Test(500) {
		t.Skip("planted record not covered")
	}
	exps := res.MinimalExplanations(det, 500, -2.0)
	for i, a := range exps {
		for j, b := range exps {
			if i != j && a.Cube.Contains(b.Cube) && !b.Cube.Contains(a.Cube) {
				t.Errorf("explanation %v dominated by %v but kept", a.Cube, b.Cube)
			}
		}
	}
}

func TestEvolutionarySweepK(t *testing.T) {
	det := NewDetector(plantedDataset(300, 6, 62), 4)
	results, err := det.EvolutionarySweepK(EvoOptions{M: 10, Seed: 1}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for k, res := range results {
		for _, p := range res.Projections {
			if p.Cube.K() != k {
				t.Errorf("k=%d result holds a %d-dim projection", k, p.Cube.K())
			}
		}
	}
	if _, err := det.EvolutionarySweepK(EvoOptions{M: 10}, 2, 1); err == nil {
		t.Error("inverted sweep accepted")
	}
	if _, err := det.EvolutionarySweepK(EvoOptions{M: 10}, 0, 2); err == nil {
		t.Error("kmin=0 accepted")
	}
}
