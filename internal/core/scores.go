package core

import (
	"fmt"
	"math"

	"hido/internal/xrand"
)

// SampledScoreOptions configures subspace-sampled scoring.
type SampledScoreOptions struct {
	// K is the subspace dimensionality (as in the projection search).
	K int
	// Samples is how many random k-dimensional subspaces to draw
	// (default 512). More samples raise the probability of hitting the
	// subspace where a given record is abnormal.
	Samples int
	// Seed drives the subspace sampling.
	Seed uint64
}

// SampledScores holds per-record continuous outlier scores derived
// from random subspaces: in each sampled subspace every record sits
// in exactly one grid cell whose occupancy has a sparsity coefficient
// (Equation 1); a record's scores aggregate those coefficients.
// Lower is more outlying for both aggregates.
type SampledScores struct {
	// Min is the most negative per-subspace sparsity each record saw —
	// the record's own best evidence of abnormality. Records whose
	// sampled cells were always dense stay near positive values.
	Min []float64
	// Mean is the average per-subspace sparsity; it reflects global
	// eccentricity rather than a single abnormal combination.
	Mean []float64
	// TailMean is the mean of each record's tailWidth lowest
	// per-subspace sparsities. Min alone ties heavily — every record
	// that ever occupies a singleton cell shares the same extreme
	// value — while TailMean separates records by how *consistently*
	// their worst subspaces are sparse. It is the recommended ranking
	// aggregate.
	TailMean []float64
	// Subspaces is the number of subspaces actually evaluated.
	Subspaces int
}

// tailWidth is the number of lowest per-record values averaged into
// TailMean.
const tailWidth = 8

// SampleScores scores every record by subspace sampling. Unlike the
// projection search — which returns the globally sparsest cubes and
// the records inside them — this produces a complete ranking of all
// records, comparable against the kNN-distance and LOF baselines'
// score vectors (see the detection-quality experiment).
//
// Each subspace costs one pass over the records: cell occupancies are
// counted with a hash key packing the k cell indices, then each
// record receives the sparsity coefficient of its own cell. Records
// missing any sampled attribute skip that subspace; a record missing
// everything keeps NaN scores.
func (d *Detector) SampleScores(opt SampledScoreOptions) (*SampledScores, error) {
	if err := d.validateKM(opt.K, 1); err != nil {
		return nil, err
	}
	if opt.Samples == 0 {
		opt.Samples = 512
	}
	if opt.Samples < 1 {
		return nil, fmt.Errorf("core: samples=%d must be positive", opt.Samples)
	}
	if opt.K > 4 {
		// Key packing uses 16 bits per dimension; beyond k=4 the cells
		// are almost surely singletons anyway (§2.4).
		return nil, fmt.Errorf("core: sampled scoring supports k <= 4, got %d", opt.K)
	}
	rng := xrand.New(opt.Seed)
	n := d.N()

	out := &SampledScores{
		Min:      make([]float64, n),
		Mean:     make([]float64, n),
		TailMean: make([]float64, n),
	}
	sums := make([]float64, n)
	seen := make([]int, n)
	// tails[i] keeps record i's tailWidth lowest values as a max-heap
	// laid out in a flat array (root = largest retained).
	tails := make([]float64, n*tailWidth)
	tailLen := make([]int, n)
	for i := range out.Min {
		out.Min[i] = math.Inf(1)
	}

	counts := make(map[uint64]int, n)
	keys := make([]uint64, n)
	const missingKey = ^uint64(0)
	for s := 0; s < opt.Samples; s++ {
		dims := rng.Sample(d.D(), opt.K)
		clear(counts)
		for i := 0; i < n; i++ {
			cells := d.Grid.CellsRow(i)
			key := uint64(0)
			ok := true
			for _, j := range dims {
				c := cells[j]
				if c == 0 {
					ok = false
					break
				}
				key = key<<16 | uint64(c)
			}
			if !ok {
				keys[i] = missingKey
				continue
			}
			keys[i] = key
			counts[key]++
		}
		for i := 0; i < n; i++ {
			if keys[i] == missingKey {
				continue
			}
			sp := d.Index.SparsityOf(counts[keys[i]], opt.K)
			sums[i] += sp
			seen[i]++
			if sp < out.Min[i] {
				out.Min[i] = sp
			}
			tailPush(tails[i*tailWidth:(i+1)*tailWidth], &tailLen[i], sp)
		}
		out.Subspaces++
	}
	for i := 0; i < n; i++ {
		if seen[i] == 0 {
			out.Min[i] = math.NaN()
			out.Mean[i] = math.NaN()
			out.TailMean[i] = math.NaN()
			continue
		}
		out.Mean[i] = sums[i] / float64(seen[i])
		t := tails[i*tailWidth : i*tailWidth+tailLen[i]]
		sum := 0.0
		for _, v := range t {
			sum += v
		}
		out.TailMean[i] = sum / float64(len(t))
	}
	return out, nil
}

// tailPush maintains a bounded max-heap of the lowest values seen.
func tailPush(heap []float64, length *int, v float64) {
	if *length < len(heap) {
		heap[*length] = v
		*length++
		// sift up
		i := *length - 1
		for i > 0 {
			parent := (i - 1) / 2
			if heap[parent] >= heap[i] {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
		return
	}
	if v >= heap[0] {
		return
	}
	heap[0] = v
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(heap) && heap[l] > heap[largest] {
			largest = l
		}
		if r < len(heap) && heap[r] > heap[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		heap[i], heap[largest] = heap[largest], heap[i]
		i = largest
	}
}
