package core

import (
	"sync"
	"sync/atomic"

	"hido/internal/cube"
	"hido/internal/evo"
	"hido/internal/xrand"
)

// xoverCtx carries the per-worker state of the crossover operator: a
// private RNG stream, reusable partial record sets, and an evaluation
// counter drained by the scheduler after each pair. One ctx serves one
// goroutine at a time, so none of it needs locking.
type xoverCtx struct {
	s       *search
	rng     *xrand.RNG
	evals   int
	partial Partial
	scratch []Partial
}

func newXoverCtx(s *search) *xoverCtx {
	return &xoverCtx{s: s, partial: s.src.NewPartial()}
}

// takeEvals drains the context's evaluation counter.
func (x *xoverCtx) takeEvals() int {
	n := x.evals
	x.evals = 0
	return n
}

// scratchAt returns the depth-th scratch partial, growing on demand.
// Buffers persist across pairs, so steady state allocates nothing.
func (x *xoverCtx) scratchAt(depth int) Partial {
	for len(x.scratch) <= depth {
		x.scratch = append(x.scratch, x.s.src.NewPartial())
	}
	return x.scratch[depth]
}

// crossoverAll matches the population pairwise and replaces each pair
// with its two children (Figure 5's outer loop). Pairs are recombined
// by the worker pool; determinism across worker counts holds because
// one RNG seed per pair is drawn from the master stream before the
// fan-out, so each pair's stochastic choices are independent of
// scheduling, and pairs write disjoint population slots.
func (s *search) crossoverAll(pop *evo.Population) {
	pairs := pop.Pairs(s.rng)
	seeds := make([]uint64, len(pairs))
	for i := range seeds {
		seeds[i] = s.rng.Uint64()
	}
	pairEvals := make([]int, len(pairs))
	s.forEachPair(len(pairs), func(ctx *xoverCtx, i int) {
		ctx.rng = xrand.New(seeds[i])
		pair := pairs[i]
		a, b := pop.Members[pair[0]], pop.Members[pair[1]]
		var ca, cb evo.Genome
		switch s.opt.Crossover {
		case OptimizedCrossover:
			ca, cb = ctx.recombine(a, b)
		case TwoPointCrossover:
			ca, cb = ctx.twoPoint(a, b)
		default:
			panic("core: unknown crossover kind")
		}
		pop.Members[pair[0]], pop.Members[pair[1]] = ca, cb
		pairEvals[i] = ctx.takeEvals()
		// Fitness is stale until re-evaluated by the caller.
	})
	for _, e := range pairEvals {
		s.evals += e
	}
}

// forEachPair runs fn(ctx, i) for every i in [0, n) on up to
// s.workers goroutines, handing each goroutine its own reusable
// xoverCtx. With one worker it runs inline.
func (s *search) forEachPair(n int, fn func(ctx *xoverCtx, i int)) {
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ctx := s.serialCtx()
		for i := 0; i < n; i++ {
			fn(ctx, i)
		}
		return
	}
	for len(s.ctxs) < workers {
		s.ctxs = append(s.ctxs, newXoverCtx(s))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for t := 0; t < workers; t++ {
		go func(ctx *xoverCtx) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(ctx, i)
			}
		}(s.ctxs[t])
	}
	wg.Wait()
}

// serialCtx returns a reusable crossover context bound to the master
// RNG, for operator-level callers outside the worker pool.
func (s *search) serialCtx() *xoverCtx {
	if len(s.ctxs) == 0 {
		s.ctxs = append(s.ctxs, newXoverCtx(s))
	}
	ctx := s.ctxs[0]
	ctx.rng = s.rng
	return ctx
}

// recombine applies the optimized crossover on the master RNG stream —
// the scalar form of crossoverAll, used by operator-level tests.
func (s *search) recombine(a, b evo.Genome) (evo.Genome, evo.Genome) {
	ctx := s.serialCtx()
	ca, cb := ctx.recombine(a, b)
	s.evals += ctx.takeEvals()
	return ca, cb
}

// twoPoint is the scalar form of the two-point baseline on the master
// RNG stream.
func (s *search) twoPoint(a, b evo.Genome) (evo.Genome, evo.Genome) {
	ctx := s.serialCtx()
	ca, cb := ctx.twoPoint(a, b)
	s.evals += ctx.takeEvals()
	return ca, cb
}

// twoPoint is the unbiased baseline: exchange the segments to the
// right of a uniformly random cut point. Following the paper's
// example (3*2*1 × 1*33* → 3*23* and 1*3*1), the cut falls strictly
// inside the string. Children of the wrong dimensionality survive
// into the population and are penalized by evaluate.
func (x *xoverCtx) twoPoint(a, b evo.Genome) (evo.Genome, evo.Genome) {
	d := len(a)
	ca, cb := a.Clone(), b.Clone()
	if d < 2 {
		return ca, cb
	}
	cut := x.rng.IntRange(1, d-1)
	for j := cut; j < d; j++ {
		ca[j], cb[j] = cb[j], ca[j]
	}
	return ca, cb
}

// recombine implements the optimized crossover of Figure 5 on two
// feasible parents. Positions are classified per §2.2:
//
//	Type I   — both parents '*': the children inherit '*'.
//	Type II  — neither parent '*' (k' positions): the 2^k'' value
//	           combinations over the k'' positions where the parents
//	           disagree are searched exhaustively for the lowest count
//	           (equivalently, at fixed dimensionality, the most
//	           negative sparsity coefficient).
//	Type III — exactly one parent '*' (2·(k−k') positions, disjoint
//	           between the parents): the first child is extended
//	           greedily, always adding the position whose range yields
//	           the most negative sparsity coefficient, until it has k
//	           positions.
//
// The second child is complementary: at every position it derives from
// the opposite parent than the first child did, which makes it, too, a
// k-dimensional projection.
//
// If either parent is infeasible (dimensionality ≠ k — possible only
// when resuming from a two-point population), the operator degrades to
// the two-point baseline, which is defined for any pair.
func (x *xoverCtx) recombine(a, b evo.Genome) (evo.Genome, evo.Genome) {
	k := x.s.opt.K
	ca, cb := cube.Cube(a), cube.Cube(b)
	if ca.K() != k || cb.K() != k {
		return x.twoPoint(a, b)
	}

	var typeIIEqual, typeIIDiff []int // both non-*, equal / differing values
	var typeIII []int                 // exactly one non-*
	for j := range a {
		av, bv := a[j], b[j]
		switch {
		case av != cube.DontCare && bv != cube.DontCare:
			if av == bv {
				typeIIEqual = append(typeIIEqual, j)
			} else {
				typeIIDiff = append(typeIIDiff, j)
			}
		case av != cube.DontCare || bv != cube.DontCare:
			typeIII = append(typeIII, j)
		}
	}

	child := make(evo.Genome, len(a))
	// fromA[j] records which parent child position j derives from, so
	// the complementary child can invert the derivation.
	fromA := make([]bool, len(a))

	// Type II, equal values: either parent works; attribute to A.
	for _, j := range typeIIEqual {
		child[j] = a[j]
		fromA[j] = true
	}

	// Type II, differing values: exhaustive search for the combination
	// with the lowest record count. The partial record set is threaded
	// through a DFS so shared prefixes cost one intersection each.
	partial := x.partial
	x.bestTypeII(child, fromA, typeIIEqual, typeIIDiff, a, b, partial)

	// partial now holds the record set of the chosen Type II prefix;
	// extend greedily over the Type III candidates.
	x.greedyTypeIII(child, fromA, typeIII, a, b, partial, k)

	// Complementary child: derive every position from the other parent.
	comp := make(evo.Genome, len(a))
	for j := range comp {
		if fromA[j] {
			comp[j] = b[j]
		} else {
			comp[j] = a[j]
		}
	}
	return child, comp
}

// bestTypeII fills child's Type II positions. Equal-valued positions
// are fixed already; differing ones are searched exhaustively (up to
// the configured limit, greedily beyond it). On return, partial holds
// the record set of all Type II constraints.
func (x *xoverCtx) bestTypeII(child evo.Genome, fromA []bool, equal, diff []int, a, b evo.Genome, partial Partial) {
	// Seed the partial set with the equal-valued constraints.
	partial.Reset()
	for _, j := range equal {
		partial.Constrain(j, child[j])
	}
	if len(diff) == 0 {
		return
	}

	if len(diff) > x.s.opt.TypeIIExhaustiveLimit {
		// Fallback: resolve each differing position independently by
		// marginal count. Keeps the operator polynomial for adversarial
		// k'; the paper's observation is that k' is typically small, so
		// this path is rare.
		for _, j := range diff {
			x.evals++
			na := partial.Extend(j, a[j])
			x.evals++
			nb := partial.Extend(j, b[j])
			if na <= nb {
				child[j] = a[j]
				fromA[j] = true
			} else {
				child[j] = b[j]
			}
			partial.Constrain(j, child[j])
		}
		return
	}

	// Exhaustive DFS over the 2^k'' assignments, sharing prefix
	// intersections. Per-depth scratch partials persist on the ctx, so
	// repeated crossovers avoid allocation churn.
	bestCount := -1
	bestMask := 0
	var dfs func(depth, mask int, cur Partial)
	dfs = func(depth, mask int, cur Partial) {
		if depth == len(diff) {
			n := cur.Count()
			x.evals++
			if bestCount < 0 || n < bestCount {
				bestCount = n
				bestMask = mask
			}
			return
		}
		j := diff[depth]
		next := x.scratchAt(depth)
		// take parent A's value
		next.CopyFrom(cur)
		next.Constrain(j, a[j])
		dfs(depth+1, mask|1<<depth, next)
		// take parent B's value
		next.CopyFrom(cur)
		next.Constrain(j, b[j])
		dfs(depth+1, mask, next)
	}
	dfs(0, 0, partial)

	for i, j := range diff {
		if bestMask&(1<<i) != 0 {
			child[j] = a[j]
			fromA[j] = true
		} else {
			child[j] = b[j]
		}
		partial.Constrain(j, child[j])
	}
}

// greedyTypeIII extends child from the Type III candidate positions —
// at each position exactly one parent carries a range — always picking
// the candidate whose added constraint leaves the fewest records
// (most negative sparsity at the resulting dimensionality), until the
// child has k constrained positions. Ties break uniformly at random so
// repeated crossovers explore distinct optima.
func (x *xoverCtx) greedyTypeIII(child evo.Genome, fromA []bool, typeIII []int, a, b evo.Genome, partial Partial, k int) {
	type cand struct {
		pos   int
		rng   uint16
		fromA bool
	}
	cands := make([]cand, 0, len(typeIII))
	for _, j := range typeIII {
		if a[j] != cube.DontCare {
			cands = append(cands, cand{j, a[j], true})
		} else {
			cands = append(cands, cand{j, b[j], false})
		}
	}
	need := k - cube.Cube(child).K()
	for t := 0; t < need; t++ {
		bestIdx := -1
		bestCount := -1
		nbest := 0
		for ci, c := range cands {
			if c.pos < 0 {
				continue // consumed
			}
			x.evals++
			n := partial.Extend(c.pos, c.rng)
			switch {
			case bestIdx < 0 || n < bestCount:
				bestIdx, bestCount, nbest = ci, n, 1
			case n == bestCount:
				// Reservoir-style uniform tie-break.
				nbest++
				if x.rng.Intn(nbest) == 0 {
					bestIdx = ci
				}
			}
		}
		if bestIdx < 0 {
			break // fewer candidates than needed: parents were infeasible
		}
		c := cands[bestIdx]
		child[c.pos] = c.rng
		fromA[c.pos] = c.fromA
		partial.Constrain(c.pos, c.rng)
		cands[bestIdx].pos = -1
	}
	// Positions not chosen keep DontCare in child; their derivation
	// flag must point at the parent whose entry is '*' there, so the
	// complementary child picks up the other parent's range.
	for _, c := range cands {
		if c.pos >= 0 {
			fromA[c.pos] = !c.fromA
		}
	}
}
