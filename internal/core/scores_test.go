package core

import (
	"math"
	"testing"
)

func TestSampleScoresPlantedOutlierIsSparsest(t *testing.T) {
	ds := plantedDataset(500, 8, 50)
	det := NewDetector(ds, 5)
	sc, err := det.SampleScores(SampledScoreOptions{K: 2, Samples: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Subspaces != 400 {
		t.Errorf("subspaces = %d", sc.Subspaces)
	}
	// The planted record's Min score must be among the lowest few.
	planted := sc.Min[500]
	lower := 0
	for i := 0; i < 500; i++ {
		if sc.Min[i] < planted {
			lower++
		}
	}
	if lower > 10 {
		t.Errorf("%d records score below the planted outlier (Min=%v)", lower, planted)
	}
}

func TestSampleScoresDeterministic(t *testing.T) {
	det := NewDetector(plantedDataset(150, 5, 51), 4)
	a, err := det.SampleScores(SampledScoreOptions{K: 2, Samples: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := det.SampleScores(SampledScoreOptions{K: 2, Samples: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Min {
		if a.Min[i] != b.Min[i] || a.Mean[i] != b.Mean[i] {
			t.Fatalf("record %d scored differently across identical runs", i)
		}
	}
}

func TestSampleScoresBounds(t *testing.T) {
	det := NewDetector(plantedDataset(200, 6, 52), 4)
	sc, err := det.SampleScores(SampledScoreOptions{K: 2, Samples: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sc.Min {
		if math.IsNaN(sc.Min[i]) || math.IsNaN(sc.Mean[i]) {
			t.Fatalf("record %d has NaN score without missing values", i)
		}
		if sc.Min[i] > sc.Mean[i]+1e-12 {
			t.Fatalf("record %d: Min %v above Mean %v", i, sc.Min[i], sc.Mean[i])
		}
	}
}

func TestSampleScoresMissingAttributes(t *testing.T) {
	ds := plantedDataset(100, 4, 53)
	// Record 0 loses every attribute: it can join no subspace.
	for j := 0; j < 4; j++ {
		ds.SetAt(0, j, math.NaN())
	}
	det := NewDetector(ds, 3)
	sc, err := det.SampleScores(SampledScoreOptions{K: 2, Samples: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(sc.Min[0]) || !math.IsNaN(sc.Mean[0]) {
		t.Errorf("all-missing record scored: Min=%v Mean=%v", sc.Min[0], sc.Mean[0])
	}
	if math.IsNaN(sc.Min[1]) {
		t.Error("complete record left unscored")
	}
}

func TestSampleScoresValidation(t *testing.T) {
	det := NewDetector(plantedDataset(50, 6, 54), 3)
	if _, err := det.SampleScores(SampledScoreOptions{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := det.SampleScores(SampledScoreOptions{K: 5}); err == nil {
		t.Error("k=5 accepted (key packing limit)")
	}
	if _, err := det.SampleScores(SampledScoreOptions{K: 2, Samples: -1}); err == nil {
		t.Error("negative samples accepted")
	}
}

func BenchmarkSampleScores(b *testing.B) {
	det := NewDetector(plantedDataset(2000, 20, 55), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.SampleScores(SampledScoreOptions{K: 3, Samples: 100, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSampleScoresTailMean(t *testing.T) {
	ds := plantedDataset(400, 8, 56)
	det := NewDetector(ds, 5)
	sc, err := det.SampleScores(SampledScoreOptions{K: 2, Samples: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sc.TailMean {
		// Min <= TailMean <= Mean by construction.
		if sc.Min[i] > sc.TailMean[i]+1e-12 || sc.TailMean[i] > sc.Mean[i]+1e-12 {
			t.Fatalf("record %d: Min=%v TailMean=%v Mean=%v out of order",
				i, sc.Min[i], sc.TailMean[i], sc.Mean[i])
		}
	}
	// The planted record's TailMean should rank at or near the top.
	planted := sc.TailMean[400]
	lower := 0
	for i := 0; i < 400; i++ {
		if sc.TailMean[i] < planted {
			lower++
		}
	}
	if lower > 5 {
		t.Errorf("%d records below the planted outlier's TailMean", lower)
	}
}

func TestTailPushKeepsLowest(t *testing.T) {
	heap := make([]float64, 4)
	n := 0
	for _, v := range []float64{5, 1, 9, 3, 7, 0, 2, 8} {
		tailPush(heap, &n, v)
	}
	if n != 4 {
		t.Fatalf("heap length %d", n)
	}
	sum := 0.0
	for _, v := range heap[:n] {
		sum += v
	}
	// lowest four of the stream: 0,1,2,3
	if sum != 6 {
		t.Errorf("tail sum = %v, want 6 (kept %v)", sum, heap[:n])
	}
}
