package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hido/internal/evo"
	"hido/internal/obs"
)

// countingObserver records every event behind a mutex so restarts and
// islands can hammer it from many goroutines under -race.
type countingObserver struct {
	mu          sync.Mutex
	generations int
	progress    int
	summaries   []obs.SummaryEvent
	runs        map[string]bool
}

func newCountingObserver() *countingObserver {
	return &countingObserver{runs: map[string]bool{}}
}

func (c *countingObserver) OnGeneration(e obs.GenerationEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.generations++
	c.runs[e.Run] = true
}

func (c *countingObserver) OnProgress(e obs.ProgressEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.progress++
	c.runs[e.Run] = true
}

func (c *countingObserver) OnDone(e obs.SummaryEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.summaries = append(c.summaries, e)
	c.runs[e.Run] = true
}

func (c *countingObserver) summaryFor(run string) (obs.SummaryEvent, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.summaries {
		if s.Run == run {
			return s, true
		}
	}
	return obs.SummaryEvent{}, false
}

// An attached observer must be invisible in the Result at every
// worker count: same projections, outliers, and telemetry as the
// nil-observer run.
func TestObserverDoesNotPerturbEvolutionary(t *testing.T) {
	ds := plantedDataset(300, 8, 40)
	det := NewDetector(ds, 4)
	base := EvoOptions{K: 3, M: 8, Seed: 7, MaxGenerations: 25, Patience: -1}

	ref, err := det.Evolutionary(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		o := base
		o.Workers = workers
		co := newCountingObserver()
		o.Observer = co
		got, err := det.Evolutionary(o)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, fmt.Sprintf("evo+observer/w%d", workers), ref, got)
		if co.generations != got.Generations {
			t.Errorf("w%d: %d generation events for %d generations", workers, co.generations, got.Generations)
		}
		sum, ok := co.summaryFor("evo")
		if !ok {
			t.Fatalf("w%d: no summary event for run %q", workers, "evo")
		}
		if sum.Algo != "evo" || sum.Evaluations != got.Evaluations ||
			sum.Projections != len(got.Projections) {
			t.Errorf("w%d: summary %+v disagrees with result", workers, sum)
		}
	}
}

func TestObserverDoesNotPerturbBruteForce(t *testing.T) {
	ds := plantedDataset(350, 9, 45)
	det := NewDetector(ds, 4)
	base := BruteForceOptions{K: 3, M: 12}

	ref, err := det.BruteForce(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		o := base
		o.Workers = workers
		co := newCountingObserver()
		o.Observer = co
		o.ProgressInterval = time.Millisecond
		got, err := det.BruteForce(o)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, fmt.Sprintf("brute+observer/w%d", workers), ref, got)
		// The post-drain progress event always fires and must agree
		// with the final counters.
		if co.progress == 0 {
			t.Fatalf("w%d: no progress events", workers)
		}
		sum, ok := co.summaryFor("brute")
		if !ok {
			t.Fatalf("w%d: no summary event for run %q", workers, "brute")
		}
		if sum.Algo != "brute" || sum.Evaluations != got.Evaluations || sum.Pruned != got.Pruned {
			t.Errorf("w%d: summary %+v disagrees with result", workers, sum)
		}
	}
}

// Restarts and islands deliver events from several goroutines into
// ONE shared observer; under -race this is the concurrency-safety
// hammer, and the results must still match the unobserved baseline.
func TestObserverSharedAcrossRestartsAndIslands(t *testing.T) {
	ds := plantedDataset(250, 7, 41)
	det := NewDetector(ds, 4)

	evoBase := EvoOptions{K: 2, M: 6, Seed: 11, MaxGenerations: 20, Patience: -1, Workers: 8}
	refR, err := det.EvolutionaryRestarts(evoBase, 4)
	if err != nil {
		t.Fatal(err)
	}
	o := evoBase
	co := newCountingObserver()
	o.Observer = co
	gotR, err := det.EvolutionaryRestarts(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "restarts+observer", refR, gotR)
	for r := 0; r < 4; r++ {
		run := fmt.Sprintf("evo.r%d", r)
		if !co.runs[run] {
			t.Errorf("restarts: no events for derived run %q", run)
		}
		if _, ok := co.summaryFor(run); !ok {
			t.Errorf("restarts: no summary for %q", run)
		}
	}
	if sum, ok := co.summaryFor("evo"); !ok {
		t.Error("restarts: aggregate summary missing")
	} else if sum.Algo != "evo-restarts" || sum.Evaluations != gotR.Evaluations {
		t.Errorf("restarts: aggregate summary %+v disagrees with merged result", sum)
	}

	islBase := IslandOptions{
		Evo:     EvoOptions{K: 2, M: 6, Seed: 13, MaxGenerations: 15, Patience: -1, PopSize: 30, Workers: 8},
		Islands: 3,
	}
	refI, err := det.EvolutionaryIslands(islBase)
	if err != nil {
		t.Fatal(err)
	}
	oi := islBase
	ci := newCountingObserver()
	oi.Evo.Observer = ci
	gotI, err := det.EvolutionaryIslands(oi)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "islands+observer", refI, gotI)
	for i := 0; i < 3; i++ {
		run := fmt.Sprintf("evo.i%d", i)
		if !ci.runs[run] {
			t.Errorf("islands: no generation events for island run %q", run)
		}
	}
	if sum, ok := ci.summaryFor("evo"); !ok {
		t.Error("islands: final summary missing")
	} else if sum.Algo != "evo-islands" {
		t.Errorf("islands: summary algo %q", sum.Algo)
	}
}

// BenchmarkEvolutionaryObserver backs the EXPERIMENTS.md
// observer-overhead table (d=20, k=4, φ=10): the attached and
// trace-to-file variants must stay within a few percent of the nil
// run.
func BenchmarkEvolutionaryObserver(b *testing.B) {
	ds := plantedDataset(800, 20, 47)
	det := NewDetector(ds, 10)
	base := EvoOptions{K: 4, M: 10, Seed: 5, MaxGenerations: 30, Patience: -1}

	run := func(b *testing.B, o obs.Observer) {
		opt := base
		opt.Observer = o
		for i := 0; i < b.N; i++ {
			if _, err := det.Evolutionary(opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nil", func(b *testing.B) { run(b, nil) })
	b.Run("attached", func(b *testing.B) { run(b, newCountingObserver()) })
	b.Run("trace", func(b *testing.B) {
		f, err := os.Create(filepath.Join(b.TempDir(), "trace.jsonl"))
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		run(b, obs.NewTracer(f).Observer())
	})
}

// BenchmarkBruteForceObserver measures the heartbeat observer's cost
// on the reference brute-force space (d=20, k=4, φ=10): the attached
// run must stay within 5% of the nil run (EXPERIMENTS.md).
func BenchmarkBruteForceObserver(b *testing.B) {
	ds := plantedDataset(800, 20, 47)
	det := NewDetector(ds, 10)
	base := BruteForceOptions{K: 4, M: 10, Workers: -1}

	run := func(b *testing.B, o obs.Observer) {
		opt := base
		opt.Observer = o
		opt.ProgressInterval = 250 * time.Millisecond
		for i := 0; i < b.N; i++ {
			if _, err := det.BruteForce(opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nil", func(b *testing.B) { run(b, nil) })
	b.Run("heartbeat", func(b *testing.B) { run(b, newCountingObserver()) })
}

// The nil-observer contract: every emission helper returns before
// building any payload, so an unobserved search allocates nothing for
// observability on its hot path.
func TestNilObserverZeroAlloc(t *testing.T) {
	ds := plantedDataset(100, 5, 46)
	det := NewDetector(ds, 4)
	opt := EvoOptions{K: 2, M: 4, Seed: 3}.withDefaults()
	s := newSearch(det.source(opt.Cache), opt)
	pop := evo.NewPopulation(opt.PopSize, det.D())
	for i := range pop.Members {
		s.randomGenome(pop.Members[i])
	}
	if n := testing.AllocsPerRun(100, func() { s.notifyGeneration(pop, 1, 0) }); n != 0 {
		t.Errorf("notifyGeneration with nil observer: %v allocs/run", n)
	}

	res := &Result{Evaluations: 10}
	if n := testing.AllocsPerRun(100, func() { notifySummary(nil, "evo", "evo", res, false, nil) }); n != 0 {
		t.Errorf("notifySummary with nil observer: %v allocs/run", n)
	}

	sh := &bfShared{opt: BruteForceOptions{}}
	start := time.Now()
	if n := testing.AllocsPerRun(100, func() { sh.notifyProgress(start) }); n != 0 {
		t.Errorf("notifyProgress with nil observer: %v allocs/run", n)
	}
}
