package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"hido/internal/evo"
	"hido/internal/xrand"
)

// CheckpointOptions makes a search resumable across process deaths.
// Progress is periodically serialized to Path so a killed run can be
// continued with Resume and produce the same Result an uninterrupted
// run would have — bit-for-bit, at any worker count.
//
// Brute force checkpoints completed top-level (dimension, range)
// subtree tasks with their best sets and telemetry; a resumed run
// skips them and mines only the remainder. The evolutionary search
// checkpoints at generation boundaries: population, fitness memo,
// best set, and the master RNG stream state, so the resumed
// trajectory is the one the dead process would have followed.
//
// Checkpointing composes with budgets (a budget-stopped run writes a
// final snapshot before returning ErrBudgetExceeded) but not with
// restarts or islands, which interleave several searches.
type CheckpointOptions struct {
	// Path is the checkpoint file. Snapshots replace it atomically
	// (write-temp → fsync → rename in the same directory), so a crash
	// mid-write leaves the previous snapshot intact.
	Path string
	// Interval is the minimum spacing between snapshot writes; zero
	// snapshots at every boundary (each completed brute-force task,
	// each evolutionary generation). A final snapshot is always
	// written when the search returns.
	Interval time.Duration
	// Resume loads Path before searching and continues from it. A
	// missing file starts fresh; a corrupt file, or one written by an
	// incompatible search (different data shape, k, m, seed, …), is
	// an error — silently restarting would masquerade as progress.
	Resume bool
}

const checkpointVersion = 1

// checkpointFile is the on-disk envelope. Float64 values (fitness,
// sparsity) are stored as IEEE-754 bit patterns: JSON cannot encode
// ±Inf or NaN, and a checkpoint must restore them exactly.
type checkpointFile struct {
	Version     int         `json:"version"`
	Kind        string      `json:"kind"` // "brute" or "evo"
	Fingerprint string      `json:"fingerprint"`
	Brute       *bruteState `json:"brute,omitempty"`
	Evo         *evoState   `json:"evo,omitempty"`
}

type bestEntryState struct {
	Genome  []uint16 `json:"genome"`
	FitBits uint64   `json:"fit_bits"`
}

type bruteTaskState struct {
	Task   int              `json:"task"`
	Evals  uint64           `json:"evals"`
	Pruned uint64           `json:"pruned"`
	Best   []bestEntryState `json:"best,omitempty"`
}

type bruteState struct {
	Tasks []bruteTaskState `json:"tasks"`
}

type memoEntryState struct {
	Key      string `json:"key"`
	SparBits uint64 `json:"spar_bits"`
	Count    int    `json:"count"`
}

type evoState struct {
	NextGen int              `json:"next_gen"`
	Stall   int              `json:"stall"`
	Evals   int              `json:"evals"`
	RNG     [4]uint64        `json:"rng"`
	Members [][]uint16       `json:"members"`
	FitBits []uint64         `json:"fit_bits"`
	Best    []bestEntryState `json:"best"`
	Memo    []memoEntryState `json:"memo"`
}

// bruteFingerprint pins a brute-force checkpoint to the search that
// wrote it: the task sharding and leaf enumeration are fixed by the
// data shape and these options, so any difference makes restored task
// indices meaningless. Budgets and worker counts are deliberately
// excluded — the whole point of a resume is to continue a
// budget-stopped run, possibly on different hardware.
func bruteFingerprint(src CountSource, opt BruteForceOptions) string {
	return fmt.Sprintf("brute|n=%d|d=%d|phi=%d|k=%d|m=%d|mincov=%d|prune=%v",
		src.N(), src.D(), src.Phi(), opt.K, opt.M, opt.MinCoverage, opt.DisablePruning) +
		dimsFingerprint(opt.Dims)
}

// evoFingerprint pins an evolutionary checkpoint: everything that
// shapes the random trajectory participates. MaxGenerations and
// Patience are excluded so an interrupted short run can be resumed
// with a larger budget.
func evoFingerprint(src CountSource, opt EvoOptions) string {
	return fmt.Sprintf("evo|n=%d|d=%d|phi=%d|k=%d|m=%d|pop=%d|xover=%d|sel=%d|p1=%x|p2=%x|mincov=%d|t2=%d|seed=%d",
		src.N(), src.D(), src.Phi(), opt.K, opt.M, opt.PopSize, opt.Crossover, opt.Selection,
		math.Float64bits(opt.MutateP1), math.Float64bits(opt.MutateP2),
		opt.MinCoverage, opt.TypeIIExhaustiveLimit, opt.Seed) +
		dimsFingerprint(opt.Dims)
}

// writeCheckpointFile atomically replaces path with the marshalled
// snapshot: temp file in the same directory, fsync, rename. A crash
// at any point leaves either the previous snapshot or the new one,
// never a torn file.
func writeCheckpointFile(path string, cf *checkpointFile) (err error) {
	data, err := json.Marshal(cf)
	if err != nil {
		return fmt.Errorf("core: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	defer func() {
		if err != nil {
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: sync checkpoint: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("core: close checkpoint: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: commit checkpoint: %w", err)
	}
	return nil
}

// loadCheckpointFile reads a checkpoint for a Resume. A missing file
// returns (nil, nil) — start fresh; anything unreadable, of the wrong
// kind, or fingerprint-mismatched is an error.
func loadCheckpointFile(path, kind, fingerprint string) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("core: corrupt checkpoint %s: %w", path, err)
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint %s has version %d, want %d", path, cf.Version, checkpointVersion)
	}
	if cf.Kind != kind {
		return nil, fmt.Errorf("core: checkpoint %s holds a %q search, want %q", path, cf.Kind, kind)
	}
	if cf.Fingerprint != fingerprint {
		return nil, fmt.Errorf("core: checkpoint %s was written by an incompatible search:\n  have %s\n  want %s",
			path, cf.Fingerprint, fingerprint)
	}
	return &cf, nil
}

// encodeBest snapshots a best set for serialization.
func encodeBest(bs *evo.BestSet) []bestEntryState {
	entries := bs.Entries()
	out := make([]bestEntryState, len(entries))
	for i, e := range entries {
		out[i] = bestEntryState{
			Genome:  append([]uint16(nil), e.Genome...),
			FitBits: math.Float64bits(e.Fitness),
		}
	}
	return out
}

// decodeBest rebuilds a best set from its snapshot. Entries were
// stored best-first, so re-offering in order reproduces the set (and
// its internal ordering) exactly.
func decodeBest(entries []bestEntryState, m, genomeLen int) (*evo.BestSet, error) {
	bs := evo.NewBestSet(m)
	for _, e := range entries {
		if len(e.Genome) != genomeLen {
			return nil, fmt.Errorf("core: checkpoint genome has %d positions, want %d", len(e.Genome), genomeLen)
		}
		bs.Offer(evo.Genome(e.Genome), math.Float64frombits(e.FitBits))
	}
	return bs, nil
}

// bruteCheckpointer accumulates completed-task snapshots and writes
// them out with Interval throttling. Workers call taskDone
// concurrently; writes are serialized under the mutex.
type bruteCheckpointer struct {
	opt CheckpointOptions
	fp  string

	mu        sync.Mutex
	tasks     map[int]bruteTaskState
	lastWrite time.Time
	firstErr  error
}

func newBruteCheckpointer(opt CheckpointOptions, fp string) *bruteCheckpointer {
	return &bruteCheckpointer{opt: opt, fp: fp, tasks: make(map[int]bruteTaskState)}
}

// restore loads a prior run's completed tasks into the shared state:
// marks them done, installs their best sets, and re-credits their
// telemetry so the final Result sums are those of an uninterrupted
// run.
func (cp *bruteCheckpointer) restore(sh *bfShared) error {
	cf, err := loadCheckpointFile(cp.opt.Path, "brute", cp.fp)
	if err != nil || cf == nil {
		return err
	}
	if cf.Brute == nil {
		return fmt.Errorf("core: checkpoint %s has no brute-force state", cp.opt.Path)
	}
	sh.done = make([]bool, len(sh.tasks))
	var restoredEvals uint64
	for _, ts := range cf.Brute.Tasks {
		if ts.Task < 0 || ts.Task >= len(sh.tasks) {
			return fmt.Errorf("core: checkpoint task %d out of range (have %d tasks)", ts.Task, len(sh.tasks))
		}
		if sh.done[ts.Task] {
			return fmt.Errorf("core: checkpoint task %d duplicated", ts.Task)
		}
		bs, err := decodeBest(ts.Best, sh.opt.M, sh.src.D())
		if err != nil {
			return err
		}
		sh.done[ts.Task] = true
		sh.results[ts.Task] = bs
		sh.evals.Add(ts.Evals)
		sh.pruned.Add(ts.Pruned)
		restoredEvals += ts.Evals
		cp.tasks[ts.Task] = ts
	}
	if sh.opt.MaxCandidates > 0 {
		// Restored leaves count against the candidate budget, so the
		// budget bounds total work across the whole resumed chain.
		sh.evaluated.Store(restoredEvals)
	}
	sh.tasksDone.Store(int64(len(cf.Brute.Tasks)))
	return nil
}

// taskDone records one completed task and snapshots the file when the
// interval has elapsed.
func (cp *bruteCheckpointer) taskDone(t int, bs *evo.BestSet, evals, pruned uint64) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.tasks[t] = bruteTaskState{Task: t, Evals: evals, Pruned: pruned, Best: encodeBest(bs)}
	if time.Since(cp.lastWrite) < cp.opt.Interval {
		return
	}
	cp.writeLocked()
}

// flush writes the final snapshot and reports the first error any
// write hit.
func (cp *bruteCheckpointer) flush() error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.writeLocked()
	return cp.firstErr
}

func (cp *bruteCheckpointer) writeLocked() {
	tasks := make([]bruteTaskState, 0, len(cp.tasks))
	for _, ts := range cp.tasks {
		tasks = append(tasks, ts)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Task < tasks[j].Task })
	cf := &checkpointFile{
		Version:     checkpointVersion,
		Kind:        "brute",
		Fingerprint: cp.fp,
		Brute:       &bruteState{Tasks: tasks},
	}
	if err := writeCheckpointFile(cp.opt.Path, cf); err != nil {
		if cp.firstErr == nil {
			cp.firstErr = err
		}
		return
	}
	cp.lastWrite = time.Now()
}

// evoCheckpointer writes generation-boundary snapshots of one
// evolutionary run. The search loop is single-threaded at generation
// boundaries, so no locking is needed.
type evoCheckpointer struct {
	opt       CheckpointOptions
	fp        string
	lastWrite time.Time
	firstErr  error
}

func newEvoCheckpointer(opt CheckpointOptions, fp string) *evoCheckpointer {
	return &evoCheckpointer{opt: opt, fp: fp}
}

// restore rebuilds the search and population from a prior snapshot,
// returning the generation to continue from, the stall counter, and
// whether anything was restored.
func (cp *evoCheckpointer) restore(s *search, pop *evo.Population) (nextGen, stall int, ok bool, err error) {
	cf, err := loadCheckpointFile(cp.opt.Path, "evo", cp.fp)
	if err != nil || cf == nil {
		return 0, 0, false, err
	}
	st := cf.Evo
	if st == nil {
		return 0, 0, false, fmt.Errorf("core: checkpoint %s has no evolutionary state", cp.opt.Path)
	}
	if len(st.Members) != pop.Len() || len(st.FitBits) != pop.Len() {
		return 0, 0, false, fmt.Errorf("core: checkpoint population has %d members, want %d", len(st.Members), pop.Len())
	}
	if st.RNG == ([4]uint64{}) {
		return 0, 0, false, fmt.Errorf("core: checkpoint %s has a degenerate RNG state", cp.opt.Path)
	}
	if st.NextGen < 1 || st.Stall < 0 || st.Evals < 0 {
		return 0, 0, false, fmt.Errorf("core: checkpoint %s has inconsistent counters", cp.opt.Path)
	}
	for i, mem := range st.Members {
		if len(mem) != s.src.D() {
			return 0, 0, false, fmt.Errorf("core: checkpoint member %d has %d positions, want %d", i, len(mem), s.src.D())
		}
		copy(pop.Members[i], mem)
		pop.Fitness[i] = math.Float64frombits(st.FitBits[i])
	}
	bs, err := decodeBest(st.Best, s.opt.M, s.src.D())
	if err != nil {
		return 0, 0, false, err
	}
	s.bs = bs
	s.rng = xrand.FromState(st.RNG)
	s.evals = st.Evals
	s.cache = make(map[string]fitEntry, len(st.Memo))
	for _, me := range st.Memo {
		s.cache[me.Key] = fitEntry{sparsity: math.Float64frombits(me.SparBits), count: me.Count}
	}
	return st.NextGen, st.Stall, true, nil
}

// flush forces a final snapshot and reports the first error any write
// hit.
func (cp *evoCheckpointer) flush(s *search, pop *evo.Population, nextGen, stall int) error {
	cp.snapshot(s, pop, nextGen, stall, true)
	return cp.firstErr
}

// snapshot writes the end-of-generation state when the interval has
// elapsed (nextGen is the generation a resumed run continues with).
func (cp *evoCheckpointer) snapshot(s *search, pop *evo.Population, nextGen, stall int, force bool) {
	if !force && time.Since(cp.lastWrite) < cp.opt.Interval {
		return
	}
	n := pop.Len()
	st := &evoState{
		NextGen: nextGen,
		Stall:   stall,
		Evals:   s.evals,
		RNG:     s.rng.State(),
		Members: make([][]uint16, n),
		FitBits: make([]uint64, n),
		Best:    encodeBest(s.bs),
		Memo:    make([]memoEntryState, 0, len(s.cache)),
	}
	for i := range pop.Members {
		st.Members[i] = append([]uint16(nil), pop.Members[i]...)
		st.FitBits[i] = math.Float64bits(pop.Fitness[i])
	}
	// The memo is a map; sort for stable files (content is what
	// matters for the resume, but stable bytes make snapshots
	// comparable and diffable).
	keys := make([]string, 0, len(s.cache))
	for k := range s.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := s.cache[k]
		st.Memo = append(st.Memo, memoEntryState{Key: k, SparBits: math.Float64bits(e.sparsity), Count: e.count})
	}
	cf := &checkpointFile{Version: checkpointVersion, Kind: "evo", Fingerprint: cp.fp, Evo: st}
	if err := writeCheckpointFile(cp.opt.Path, cf); err != nil {
		if cp.firstErr == nil {
			cp.firstErr = err
		}
		return
	}
	cp.lastWrite = time.Now()
}
