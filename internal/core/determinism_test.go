package core

import (
	"testing"

	"hido/internal/grid"
)

// resultsEqual compares everything deterministic about two Results:
// projections (cube, sparsity, count), the covered point set, and the
// search telemetry. Elapsed is wall clock and excluded.
func resultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Projections) != len(b.Projections) {
		t.Fatalf("%s: projection counts %d vs %d", label, len(a.Projections), len(b.Projections))
	}
	for i := range a.Projections {
		pa, pb := a.Projections[i], b.Projections[i]
		if !pa.Cube.Equal(pb.Cube) {
			t.Fatalf("%s: projection %d cube %v vs %v", label, i, pa.Cube, pb.Cube)
		}
		if pa.Sparsity != pb.Sparsity || pa.Count != pb.Count {
			t.Fatalf("%s: projection %d stats (S=%v n=%d) vs (S=%v n=%d)",
				label, i, pa.Sparsity, pa.Count, pb.Sparsity, pb.Count)
		}
	}
	if len(a.Outliers) != len(b.Outliers) {
		t.Fatalf("%s: outlier counts %d vs %d", label, len(a.Outliers), len(b.Outliers))
	}
	for i := range a.Outliers {
		if a.Outliers[i] != b.Outliers[i] {
			t.Fatalf("%s: outlier %d is record %d vs %d", label, i, a.Outliers[i], b.Outliers[i])
		}
	}
	if a.Evaluations != b.Evaluations {
		t.Fatalf("%s: evaluations %d vs %d", label, a.Evaluations, b.Evaluations)
	}
	if a.Pruned != b.Pruned {
		t.Fatalf("%s: pruned %d vs %d", label, a.Pruned, b.Pruned)
	}
	if a.Generations != b.Generations {
		t.Fatalf("%s: generations %d vs %d", label, a.Generations, b.Generations)
	}
	if a.ConvergedDeJong != b.ConvergedDeJong {
		t.Fatalf("%s: converged %v vs %v", label, a.ConvergedDeJong, b.ConvergedDeJong)
	}
}

// The parallel evaluator must be invisible in the results: any worker
// count, with or without a shared count cache, yields the same Result
// as the serial run.
func TestEvolutionaryDeterministicAcrossWorkers(t *testing.T) {
	ds := plantedDataset(300, 8, 40)
	det := NewDetector(ds, 4)
	base := EvoOptions{K: 3, M: 8, Seed: 7, MaxGenerations: 25, Patience: -1}

	ref, err := det.Evolutionary(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Projections) == 0 {
		t.Fatal("reference run found nothing; test dataset too easy to misconfigure silently")
	}
	for _, workers := range []int{1, 2, 8} {
		for _, cached := range []bool{false, true} {
			o := base
			o.Workers = workers
			if cached {
				o.Cache = grid.NewCache(det.Index)
			}
			got, err := det.Evolutionary(o)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, labelWC("evolutionary", workers, cached), ref, got)
		}
	}
}

func TestEvolutionaryRestartsDeterministicAcrossWorkers(t *testing.T) {
	ds := plantedDataset(250, 7, 41)
	det := NewDetector(ds, 4)
	base := EvoOptions{K: 2, M: 6, Seed: 11, MaxGenerations: 20, Patience: -1}

	ref, err := det.EvolutionaryRestarts(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		o := base
		o.Workers = workers
		got, err := det.EvolutionaryRestarts(o, 3)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, labelWC("restarts", workers, false), ref, got)
	}
	// An explicit shared cache must not change results either.
	o := base
	o.Workers = 4
	o.Cache = grid.NewCache(det.Index)
	got, err := det.EvolutionaryRestarts(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, labelWC("restarts", 4, true), ref, got)
	if st := o.Cache.Stats(); st.Misses == 0 {
		t.Error("shared cache was never consulted")
	}
}

func TestEvolutionaryIslandsDeterministicAcrossWorkers(t *testing.T) {
	ds := plantedDataset(250, 7, 42)
	det := NewDetector(ds, 4)
	base := IslandOptions{
		Evo:     EvoOptions{K: 2, M: 6, Seed: 13, MaxGenerations: 20, Patience: -1, PopSize: 30},
		Islands: 3,
	}

	ref, err := det.EvolutionaryIslands(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		o := base
		o.Evo.Workers = workers
		got, err := det.EvolutionaryIslands(o)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, labelWC("islands", workers, false), ref, got)
	}
}

// The sharded brute-force enumeration must be invisible in the
// results: any worker count, with or without a shared count cache,
// yields the same Result — projections, sparsity values, outliers,
// Evaluations, Pruned — as the serial run.
func TestBruteForceDeterministicAcrossWorkers(t *testing.T) {
	ds := plantedDataset(350, 9, 45)
	det := NewDetector(ds, 4)
	base := BruteForceOptions{K: 3, M: 12}

	ref, err := det.BruteForce(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Projections) == 0 {
		t.Fatal("reference run found nothing; test dataset too easy to misconfigure silently")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, cached := range []bool{false, true} {
			o := base
			o.Workers = workers
			if cached {
				o.Cache = grid.NewCache(det.Index)
			}
			got, err := det.BruteForce(o)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, labelWC("bruteforce", workers, cached), ref, got)
		}
	}
}

// A cache bound to a different detector's index must be rejected, not
// silently produce wrong counts.
func TestCacheIndexMismatchRejected(t *testing.T) {
	detA := NewDetector(plantedDataset(100, 4, 43), 3)
	detB := NewDetector(plantedDataset(100, 4, 44), 3)
	opt := EvoOptions{K: 2, M: 3, Seed: 1, MaxGenerations: 3, Cache: grid.NewCache(detB.Index)}
	if _, err := detA.Evolutionary(opt); err == nil {
		t.Error("evolutionary accepted a foreign cache")
	}
	if _, err := detA.EvolutionaryRestarts(opt, 2); err == nil {
		t.Error("restarts accepted a foreign cache")
	}
	if _, err := detA.EvolutionaryIslands(IslandOptions{Evo: opt}); err == nil {
		t.Error("islands accepted a foreign cache")
	}
	bf := BruteForceOptions{K: 2, M: 3, Cache: grid.NewCache(detB.Index)}
	if _, err := detA.BruteForce(bf); err == nil {
		t.Error("brute force accepted a foreign cache")
	}
}

func labelWC(algo string, workers int, cached bool) string {
	l := algo
	switch workers {
	case 1:
		l += "/w1"
	case 2:
		l += "/w2"
	case 4:
		l += "/w4"
	case 8:
		l += "/w8"
	}
	if cached {
		l += "/cache"
	}
	return l
}
