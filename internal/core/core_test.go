package core

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"hido/internal/cube"
	"hido/internal/dataset"
	"hido/internal/evo"
	"hido/internal/grid"
	"hido/internal/xrand"
)

// plantedDataset builds n uniform points over d dims where dims 0 and
// 1 are tightly correlated (so off-diagonal grid cells in that plane
// are empty), plus one planted outlier at (low dim0, high dim1). The
// planted point's index is n.
func plantedDataset(n, d int, seed uint64) *dataset.Dataset {
	r := xrand.New(seed)
	names := make([]string, d)
	for j := range names {
		names[j] = "x"
	}
	ds := dataset.New(names, n+1)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		base := r.Float64()
		row[0] = base
		row[1] = clamp01(base + 0.01*r.Norm())
		for j := 2; j < d; j++ {
			row[j] = r.Float64()
		}
		ds.AppendRow(row, "normal")
	}
	row[0] = 0.01
	row[1] = 0.99
	for j := 2; j < d; j++ {
		row[j] = r.Float64()
	}
	ds.AppendRow(row, "planted")
	return ds
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func TestNewDetectorShape(t *testing.T) {
	ds := plantedDataset(200, 5, 1)
	det := NewDetector(ds, 4)
	if det.N() != 201 || det.D() != 5 || det.Phi() != 4 {
		t.Fatalf("detector shape N=%d D=%d Phi=%d", det.N(), det.D(), det.Phi())
	}
}

func TestValidation(t *testing.T) {
	det := NewDetector(plantedDataset(50, 3, 2), 3)
	if _, err := det.BruteForce(BruteForceOptions{K: 0, M: 5}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := det.BruteForce(BruteForceOptions{K: 4, M: 5}); err == nil {
		t.Error("k>d accepted")
	}
	if _, err := det.BruteForce(BruteForceOptions{K: 2, M: 0}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := det.Evolutionary(EvoOptions{K: 9, M: 1}); err == nil {
		t.Error("evolutionary k>d accepted")
	}
	if _, err := det.Evolutionary(EvoOptions{K: 1, M: 1, PopSize: 1}); err == nil {
		t.Error("population of 1 accepted")
	}
	if _, err := det.Evolutionary(EvoOptions{K: 1, M: 1, MutateP1: 2}); err == nil {
		t.Error("mutation probability 2 accepted")
	}
}

// TestBruteForceMatchesExhaustiveOracle re-derives the best m cubes by
// brute enumeration with the naive counter and compares qualities.
func TestBruteForceMatchesExhaustiveOracle(t *testing.T) {
	ds := plantedDataset(150, 4, 3)
	det := NewDetector(ds, 3)
	const k, m = 2, 5
	res, err := det.BruteForce(BruteForceOptions{K: k, M: m, MinCoverage: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: enumerate everything, keep the m best non-empty sparsities.
	var all []float64
	cube.Enumerate(det.D(), k, det.Phi(), func(c cube.Cube) bool {
		n := grid.NaiveCount(det.Grid, c)
		if n >= 1 {
			all = append(all, det.Index.SparsityOf(n, k))
		}
		return true
	})
	if len(all) < m {
		t.Fatalf("oracle found only %d non-empty cubes", len(all))
	}
	// selection-sort the m smallest
	for i := 0; i < m; i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j] < all[i] {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	if len(res.Projections) != m {
		t.Fatalf("retained %d projections, want %d", len(res.Projections), m)
	}
	for i := 0; i < m; i++ {
		if math.Abs(res.Projections[i].Sparsity-all[i]) > 1e-9 {
			t.Errorf("projection %d sparsity %v, oracle %v", i, res.Projections[i].Sparsity, all[i])
		}
	}
	wantEvals := int(cube.SpaceSize(det.D(), k, det.Phi()))
	if res.Evaluations != wantEvals {
		t.Errorf("evaluations = %d, want %d", res.Evaluations, wantEvals)
	}
}

func TestBruteForceFindsPlantedOutlier(t *testing.T) {
	ds := plantedDataset(400, 4, 4)
	det := NewDetector(ds, 5)
	res, err := det.BruteForce(BruteForceOptions{K: 2, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Projections) == 0 {
		t.Fatal("no projections")
	}
	best := res.Projections[0]
	// The planted cell (dim0 range 1, dim1 range 5) holds one point.
	if best.Count != 1 {
		t.Errorf("best projection count = %d, want 1", best.Count)
	}
	if !res.OutlierSet.Test(400) {
		t.Error("planted outlier (index 400) not in outlier set")
	}
	if best.Sparsity >= -3 {
		t.Errorf("best sparsity %v, want < -3", best.Sparsity)
	}
}

func TestBruteForceCandidateBudget(t *testing.T) {
	det := NewDetector(plantedDataset(100, 6, 5), 4)
	res, err := det.BruteForce(BruteForceOptions{K: 3, M: 5, MaxCandidates: 100})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res == nil || res.Evaluations < 100 || res.Evaluations > 200 {
		t.Errorf("partial result evaluations = %v", res.Evaluations)
	}
}

func TestBruteForceTimeBudget(t *testing.T) {
	det := NewDetector(plantedDataset(2000, 18, 6), 8)
	res, err := det.BruteForce(BruteForceOptions{K: 4, M: 5, MaxDuration: 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Skipf("machine finished %d evals within 1ns budget?", res.Evaluations)
	}
	if res == nil {
		t.Fatal("nil partial result")
	}
}

func TestBruteForceMinCoverageNegativeAdmitsEmpty(t *testing.T) {
	ds := plantedDataset(300, 4, 7)
	det := NewDetector(ds, 6)
	strict, err := det.BruteForce(BruteForceOptions{K: 2, M: 3, MinCoverage: -1})
	if err != nil {
		t.Fatal(err)
	}
	// With correlation between dims 0 and 1, empty cells exist; an
	// empty cube is sparser than any covering cube.
	if strict.Projections[0].Count != 0 {
		t.Errorf("MinCoverage=-1 best count = %d, want 0", strict.Projections[0].Count)
	}
	nonEmpty, err := det.BruteForce(BruteForceOptions{K: 2, M: 3, MinCoverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range nonEmpty.Projections {
		if p.Count < 1 {
			t.Errorf("MinCoverage=1 retained empty cube %v", p.Cube)
		}
	}
}

func TestEvolutionaryFindsPlantedOutlier(t *testing.T) {
	ds := plantedDataset(400, 10, 8)
	det := NewDetector(ds, 5)
	res, err := det.Evolutionary(EvoOptions{K: 2, M: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutlierSet.Test(400) {
		t.Error("evolutionary search missed the planted outlier")
	}
	if res.Generations == 0 || res.Evaluations == 0 {
		t.Errorf("telemetry empty: %+v", res)
	}
}

func TestEvolutionaryQualityNearBruteForce(t *testing.T) {
	// Table 1's claim: the evolutionary search achieves (nearly) the
	// brute-force quality. On a small problem, require >= 90%.
	ds := plantedDataset(300, 8, 9)
	det := NewDetector(ds, 4)
	bf, err := det.BruteForce(BruteForceOptions{K: 2, M: 10})
	if err != nil {
		t.Fatal(err)
	}
	ga, err := det.Evolutionary(EvoOptions{K: 2, M: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ga.Quality() > 0 || bf.Quality() > 0 {
		t.Fatalf("qualities positive: bf=%v ga=%v", bf.Quality(), ga.Quality())
	}
	if ratio := ga.Quality() / bf.Quality(); ratio < 0.9 {
		t.Errorf("GA quality %v vs brute %v (ratio %v), want >= 0.9",
			ga.Quality(), bf.Quality(), ratio)
	}
	// Note: on a problem this small the brute force needs fewer
	// evaluations than the GA — the paper's Table 1 shows the same
	// inversion on the 8-dimensional machine data set. The savings
	// claim is asserted separately on a larger space.
}

func TestEvolutionaryCheaperThanBruteOnLargeSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ds := plantedDataset(500, 24, 27)
	det := NewDetector(ds, 4)
	ga, err := det.Evolutionary(EvoOptions{K: 3, M: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	space := cube.SpaceSize(24, 3, 4) // C(24,3)·4³ = 129,536
	if uint64(ga.Evaluations) >= space/4 {
		t.Errorf("GA used %d evaluations on a space of %d — expected far fewer",
			ga.Evaluations, space)
	}
	if q := ga.Quality(); !(q < -2) {
		t.Errorf("GA quality %v, want clearly negative", q)
	}
}

func TestEvolutionaryDeterministicPerSeed(t *testing.T) {
	ds := plantedDataset(200, 6, 10)
	det := NewDetector(ds, 4)
	a, err := det.Evolutionary(EvoOptions{K: 2, M: 5, Seed: 3, MaxGenerations: 30})
	if err != nil {
		t.Fatal(err)
	}
	b, err := det.Evolutionary(EvoOptions{K: 2, M: 5, Seed: 3, MaxGenerations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Projections) != len(b.Projections) {
		t.Fatalf("different projection counts %d vs %d", len(a.Projections), len(b.Projections))
	}
	for i := range a.Projections {
		if !a.Projections[i].Cube.Equal(b.Projections[i].Cube) {
			t.Errorf("projection %d differs across identical seeds", i)
		}
	}
	c, err := det.Evolutionary(EvoOptions{K: 2, M: 5, Seed: 4, MaxGenerations: 30})
	if err != nil {
		t.Fatal(err)
	}
	same := len(c.Projections) == len(a.Projections)
	if same {
		for i := range a.Projections {
			if !a.Projections[i].Cube.Equal(c.Projections[i].Cube) {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("note: different seeds converged to identical projections (possible but unusual)")
	}
}

func TestEvolutionaryTwoPointStillWorks(t *testing.T) {
	ds := plantedDataset(300, 6, 11)
	det := NewDetector(ds, 4)
	res, err := det.Evolutionary(EvoOptions{K: 2, M: 5, Seed: 5, Crossover: TwoPointCrossover})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Projections) == 0 {
		t.Fatal("two-point crossover found nothing")
	}
	for _, p := range res.Projections {
		if p.Cube.K() != 2 {
			t.Errorf("retained infeasible projection %v", p.Cube)
		}
		if p.Count < 1 {
			t.Errorf("retained empty projection %v", p.Cube)
		}
	}
}

func TestEvolutionaryOnGenerationObserver(t *testing.T) {
	ds := plantedDataset(150, 5, 12)
	det := NewDetector(ds, 4)
	var gens []evo.Stats
	_, err := det.Evolutionary(EvoOptions{
		K: 2, M: 3, Seed: 1, MaxGenerations: 10, Patience: -1,
		OnGeneration: func(s evo.Stats) { gens = append(gens, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) == 0 {
		t.Fatal("observer never called")
	}
	for i := 1; i < len(gens); i++ {
		if gens[i].Gen != gens[i-1].Gen+1 {
			t.Errorf("generation numbering gap at %d", i)
		}
		if gens[i].Evaluated < gens[i-1].Evaluated {
			t.Errorf("evaluation counter decreased at generation %d", i)
		}
	}
}

func TestTwoPointCrossoverPaperExample(t *testing.T) {
	// §2.2: 3*2*1 × 1*33* cut after position 3 → 3*23* and 1*3*1.
	det := NewDetector(plantedDataset(50, 5, 13), 4)
	s := &search{src: det.source(nil), opt: EvoOptions{K: 3}.withDefaults(), dims: resolveDims(det.D(), nil), rng: xrand.New(0)}
	a := mustGenome(t, "3*2*1")
	b := mustGenome(t, "1*33*")
	// Force the cut: try seeds until IntRange(1,4) yields 3.
	for seed := uint64(0); ; seed++ {
		r := xrand.New(seed)
		if r.IntRange(1, 4) == 3 {
			s.rng = xrand.New(seed)
			break
		}
	}
	ca, cb := s.twoPoint(a, b)
	if got := cube.Cube(ca).String(); got != "3*23*" {
		t.Errorf("child A = %s, want 3*23*", got)
	}
	if got := cube.Cube(cb).String(); got != "1*3*1" {
		t.Errorf("child B = %s, want 1*3*1", got)
	}
}

func mustGenome(t *testing.T, s string) evo.Genome {
	t.Helper()
	c, err := cube.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return evo.Genome(c)
}

func TestOptimizedCrossoverFeasibility(t *testing.T) {
	// Children of the optimized crossover are always k-dimensional.
	det := NewDetector(plantedDataset(200, 8, 14), 4)
	const k = 3
	s := newTestSearch(det, EvoOptions{K: k, M: 5, Seed: 9})
	for trial := 0; trial < 200; trial++ {
		a, b := make(evo.Genome, 8), make(evo.Genome, 8)
		s.randomGenome(a)
		s.randomGenome(b)
		ca, cb := s.recombine(a, b)
		if cube.Cube(ca).K() != k || cube.Cube(cb).K() != k {
			t.Fatalf("infeasible children %v (K=%d), %v (K=%d) from %v × %v",
				ca, cube.Cube(ca).K(), cb, cube.Cube(cb).K(), a, b)
		}
	}
}

func TestOptimizedCrossoverComplementarity(t *testing.T) {
	// At every position, the two children derive from different parents:
	// child[j] == a[j] implies comp[j] == b[j] and vice versa.
	det := NewDetector(plantedDataset(200, 6, 15), 4)
	s := newTestSearch(det, EvoOptions{K: 3, M: 5, Seed: 10})
	for trial := 0; trial < 100; trial++ {
		a, b := make(evo.Genome, 6), make(evo.Genome, 6)
		s.randomGenome(a)
		s.randomGenome(b)
		ca, cb := s.recombine(a, b)
		for j := range ca {
			fromA := ca[j] == a[j]
			fromB := ca[j] == b[j]
			switch {
			case fromA && fromB: // parents agree; both children agree too
				if cb[j] != a[j] {
					t.Fatalf("pos %d: parents agree on %d but comp has %d", j, a[j], cb[j])
				}
			case fromA:
				if cb[j] != b[j] {
					t.Fatalf("pos %d: child from A but comp not from B (%v×%v → %v,%v)", j, a, b, ca, cb)
				}
			case fromB:
				if cb[j] != a[j] {
					t.Fatalf("pos %d: child from B but comp not from A (%v×%v → %v,%v)", j, a, b, ca, cb)
				}
			default:
				t.Fatalf("pos %d: child value %d from neither parent (%v×%v)", j, ca[j], a, b)
			}
		}
	}
}

func TestOptimizedCrossoverChildNoWorseThanTypeIIChoices(t *testing.T) {
	// With identical dimension sets (pure Type II), the child must have
	// the minimum count over all 2^k'' recombinations.
	det := NewDetector(plantedDataset(300, 5, 16), 4)
	s := newTestSearch(det, EvoOptions{K: 2, M: 5, Seed: 11})
	a := evo.Genome(cube.FromPairs(5, cube.DimRange{Dim: 0, Range: 1}, cube.DimRange{Dim: 1, Range: 4}))
	b := evo.Genome(cube.FromPairs(5, cube.DimRange{Dim: 0, Range: 2}, cube.DimRange{Dim: 1, Range: 1}))
	ca, _ := s.recombine(a, b)
	bestCount := math.MaxInt
	for _, r0 := range []uint16{1, 2} {
		for _, r1 := range []uint16{4, 1} {
			c := cube.FromPairs(5, cube.DimRange{Dim: 0, Range: r0}, cube.DimRange{Dim: 1, Range: r1})
			if n := det.Index.Count(c); n < bestCount {
				bestCount = n
			}
		}
	}
	if got := det.Index.Count(cube.Cube(ca)); got != bestCount {
		t.Errorf("optimized child count = %d, exhaustive best = %d", got, bestCount)
	}
}

func TestOptimizedCrossoverInfeasibleParentFallsBack(t *testing.T) {
	det := NewDetector(plantedDataset(100, 5, 17), 4)
	s := newTestSearch(det, EvoOptions{K: 2, M: 5, Seed: 12})
	a := mustGenome(t, "12*3*") // K=3, infeasible for k=2
	b := mustGenome(t, "*1*2*")
	ca, cb := s.recombine(a, b)
	if len(ca) != 5 || len(cb) != 5 {
		t.Fatal("fallback children malformed")
	}
}

func TestMutationTypeIPreservesK(t *testing.T) {
	det := NewDetector(plantedDataset(100, 6, 18), 4)
	s := newTestSearch(det, EvoOptions{K: 3, M: 5, Seed: 13, MutateP1: 1, MutateP2: -1})
	g := make(evo.Genome, 6)
	s.randomGenome(g)
	for trial := 0; trial < 100; trial++ {
		s.mutate(g)
		if got := cube.Cube(g).K(); got != 3 {
			t.Fatalf("Type I mutation changed K to %d", got)
		}
		for _, v := range g {
			if int(v) > det.Phi() {
				t.Fatalf("mutation produced out-of-range value %d", v)
			}
		}
	}
}

func TestMutationTypeIIChangesValueOnly(t *testing.T) {
	det := NewDetector(plantedDataset(100, 6, 19), 4)
	s := newTestSearch(det, EvoOptions{K: 3, M: 5, Seed: 14, MutateP1: -1, MutateP2: 1})
	g := make(evo.Genome, 6)
	s.randomGenome(g)
	dims := cube.Cube(g).Dims()
	for trial := 0; trial < 100; trial++ {
		before := g.Clone()
		s.mutate(g)
		after := cube.Cube(g).Dims()
		if len(after) != len(dims) {
			t.Fatalf("Type II mutation changed dimensionality")
		}
		for i := range dims {
			if dims[i] != after[i] {
				t.Fatalf("Type II mutation moved a dimension: %v → %v", before, g)
			}
		}
		changed := 0
		for j := range g {
			if g[j] != before[j] {
				changed++
			}
		}
		if changed != 1 {
			t.Fatalf("Type II mutation changed %d positions, want exactly 1", changed)
		}
	}
}

func TestMutationFullDimensionalitySkipsTypeI(t *testing.T) {
	// k == d leaves no '*' position; Type I must be a no-op, not a panic.
	det := NewDetector(plantedDataset(100, 3, 20), 4)
	s := newTestSearch(det, EvoOptions{K: 3, M: 5, Seed: 15, MutateP1: 1, MutateP2: -1})
	g := make(evo.Genome, 3)
	s.randomGenome(g)
	before := g.Clone()
	s.mutate(g)
	for j := range g {
		if g[j] == cube.DontCare {
			t.Fatalf("Type I mutation introduced '*' at full dimensionality: %v → %v", before, g)
		}
	}
}

func TestResultScoreAndRanking(t *testing.T) {
	ds := plantedDataset(400, 5, 21)
	det := NewDetector(ds, 5)
	res, err := det.BruteForce(BruteForceOptions{K: 2, M: 10})
	if err != nil {
		t.Fatal(err)
	}
	ranked := res.RankedOutliers(det)
	if len(ranked) != len(res.Outliers) {
		t.Fatalf("ranked %d, outliers %d", len(ranked), len(res.Outliers))
	}
	// The planted record must be covered and must share the minimum
	// score; other count-1 cubes can tie it exactly, so equality of
	// score — not first rank — is the invariant.
	if !res.OutlierSet.Test(400) {
		t.Error("planted outlier not covered")
	} else if len(ranked) > 0 && res.Score(det, 400) != res.Score(det, ranked[0]) {
		t.Errorf("planted outlier score %v, top score %v",
			res.Score(det, 400), res.Score(det, ranked[0]))
	}
	prev := math.Inf(-1)
	for _, i := range ranked {
		sc := res.Score(det, i)
		if sc < prev {
			t.Fatal("ranking not monotone in score")
		}
		prev = sc
	}
	// A record covered by no projection scores 0.
	uncovered := -1
	for i := 0; i < det.N(); i++ {
		if !res.OutlierSet.Test(i) {
			uncovered = i
			break
		}
	}
	if uncovered >= 0 {
		if got := res.Score(det, uncovered); got != 0 {
			t.Errorf("uncovered record score = %v, want 0", got)
		}
	}
}

func TestCoveringProjections(t *testing.T) {
	ds := plantedDataset(300, 4, 22)
	det := NewDetector(ds, 5)
	res, err := det.BruteForce(BruteForceOptions{K: 2, M: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range res.Outliers {
		if len(res.CoveringProjections(det, i)) == 0 {
			t.Errorf("outlier %d covered by no projection", i)
		}
	}
	covering := res.CoveringProjections(det, 300)
	for _, pi := range covering {
		if !res.Projections[pi].Cube.Covers(det.Grid.CellsRow(300)) {
			t.Error("CoveringProjections returned non-covering projection")
		}
	}
}

func TestProjectionDescribe(t *testing.T) {
	ds := plantedDataset(100, 3, 23)
	ds.Names[0], ds.Names[1], ds.Names[2] = "crime", "tax", "age"
	det := NewDetector(ds, 4)
	res, err := det.BruteForce(BruteForceOptions{K: 2, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	desc := res.Projections[0].Describe(det)
	if desc == "" {
		t.Fatal("empty description")
	}
	if res.Projections[0].String() == "" {
		t.Fatal("empty String")
	}
	if sig := res.Projections[0].Significance(); sig <= 0 || sig >= 1 {
		t.Errorf("significance = %v", sig)
	}
}

func TestQualityNaNWhenEmpty(t *testing.T) {
	r := &Result{}
	if !math.IsNaN(r.Quality()) {
		t.Error("empty Quality not NaN")
	}
}

func TestAdvise(t *testing.T) {
	a := Advise(10000, 10, -3)
	if a.K != 3 || a.Phi != 10 {
		t.Errorf("Advise = %+v", a)
	}
	if a.EmptySparsity > -3 {
		t.Errorf("empty sparsity %v should be <= target -3", a.EmptySparsity)
	}
	if a.SingletonSparsity >= 0 {
		t.Errorf("singleton sparsity %v should be negative", a.SingletonSparsity)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
	det := NewDetector(plantedDataset(999, 4, 24), 10)
	da := det.Advise(-3)
	if da.Phi != 10 {
		t.Errorf("detector Advise phi = %d", da.Phi)
	}
	tbl := AdviseTable(10000, 10, []float64{-2, -3, -4})
	if len(tbl) != 3 || tbl[0].K < tbl[2].K {
		t.Errorf("AdviseTable = %+v", tbl)
	}
}

// newTestSearch builds a search with initialized internals for
// operator-level tests.
func newTestSearch(det *Detector, opt EvoOptions) *search {
	return &search{
		src:   det.source(nil),
		opt:   opt.withDefaults(),
		dims:  resolveDims(det.D(), opt.Dims),
		rng:   xrand.New(opt.Seed),
		bs:    evo.NewBestSet(opt.M),
		cache: make(map[string]fitEntry),
	}
}

// Property: on random parents, optimized-crossover children are
// feasible, valid cubes, and every position comes from a parent.
func TestQuickRecombineInvariants(t *testing.T) {
	det := NewDetector(plantedDataset(150, 7, 25), 3)
	s := newTestSearch(det, EvoOptions{K: 3, M: 5, Seed: 16})
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a, b := make(evo.Genome, 7), make(evo.Genome, 7)
		for _, g := range []evo.Genome{a, b} {
			for _, j := range r.Sample(7, 3) {
				g[j] = uint16(r.IntRange(1, 3))
			}
		}
		ca, cb := s.recombine(a, b)
		if cube.Cube(ca).K() != 3 || cube.Cube(cb).K() != 3 {
			return false
		}
		if !cube.Cube(ca).Valid(3) || !cube.Cube(cb).Valid(3) {
			return false
		}
		for j := range ca {
			if ca[j] != a[j] && ca[j] != b[j] {
				return false
			}
			if cb[j] != a[j] && cb[j] != b[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: two-point crossover conserves multiset of positions
// (each position value ends up in exactly one child).
func TestQuickTwoPointConservation(t *testing.T) {
	det := NewDetector(plantedDataset(60, 6, 26), 3)
	s := newTestSearch(det, EvoOptions{K: 2, M: 5, Seed: 17})
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a, b := make(evo.Genome, 6), make(evo.Genome, 6)
		for _, g := range []evo.Genome{a, b} {
			for _, j := range r.Sample(6, 2) {
				g[j] = uint16(r.IntRange(1, 3))
			}
		}
		ca, cb := s.twoPoint(a, b)
		for j := range ca {
			ok := (ca[j] == a[j] && cb[j] == b[j]) || (ca[j] == b[j] && cb[j] == a[j])
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestProjectionDescribeCategorical(t *testing.T) {
	// A categorical column rendered by name, not code interval.
	ds := dataset.New([]string{"color", "x"}, 0)
	r := xrand.New(60)
	codes := map[float64]string{0: "red", 1: "blue", 2: "green"}
	for i := 0; i < 120; i++ {
		// color correlates with x; (green, low x) never occurs
		c := float64(r.Intn(3))
		ds.AppendRow([]float64{c, clamp01(c/3 + 0.1*r.Float64())}, "")
	}
	ds.AppendRow([]float64{2, 0.05}, "planted") // green with low x
	ds.SetCategories(0, codes)
	det := NewDetector(ds, 3)
	res, err := det.BruteForce(BruteForceOptions{K: 2, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.Projections {
		desc := p.Describe(det)
		if strings.Contains(desc, "color∈{") {
			found = true
		}
		if strings.Contains(desc, "color∈(") {
			t.Errorf("categorical column rendered as a numeric interval: %s", desc)
		}
	}
	if !found {
		t.Error("no projection rendered category names")
	}
}
