package core

import (
	"fmt"

	"hido/internal/bitset"
	"hido/internal/cube"
	"hido/internal/grid"
)

// CountSource is the data-access seam of the searches. Both search
// algorithms touch the records exclusively through cube counts and
// incrementally constrained record sets, so running them against a
// CountSource instead of a concrete Detector keeps the trajectory —
// every fitness value, every crossover choice, every pruning decision
// — a pure function of the counts. That is what makes the cluster
// mode exact: cube counts are additive across disjoint row shards, so
// a source that sums per-shard counts (internal/cluster) reproduces
// the single-node search bit for bit on the concatenated data.
//
// The local implementation wraps a Detector's bitmap index (and an
// optional shared grid.Cache); it is what the Detector methods use, so
// the seam costs the classic paths nothing but an interface call.
//
// Implementations must be safe for concurrent use: the worker pools
// issue counts from several goroutines.
type CountSource interface {
	// N, D and Phi mirror the Detector accessors: total records, data
	// dimensionality, grid resolution.
	N() int
	D() int
	Phi() int
	// CountKey returns the number of records inside the cube. key must
	// be the cube's canonical c.Key(); callers that already hold it
	// avoid a second construction, and memoizing sources use it
	// directly.
	CountKey(c cube.Cube, key string) int
	// CountBatch counts several cubes at once (keys[i] == cs[i].Key()).
	// workers is a parallelism hint for local sources; batching sources
	// (the cluster fan-out) resolve the whole batch in one round trip.
	CountBatch(cs []cube.Cube, keys []string, workers int) []int
	// Cover returns the indices of the records inside the cube, in
	// increasing order — the §2.3 postprocessing that turns retained
	// projections into the outlier set.
	Cover(c cube.Cube) []int
	// NewPartial returns a fresh partial record set positioned at the
	// full record set. Partials from one source must not be mixed with
	// another source's.
	NewPartial() Partial
}

// Partial is an incrementally constrained record set — the state the
// optimized crossover (Figure 5) and the brute-force enumeration
// (Figure 2) thread through their recursions. Every operation is
// defined purely in terms of the records inside the current
// constraint cube, so a remote implementation that only tracks the
// cube and asks a CountSource for cardinalities behaves identically
// to the local bitmap-backed one.
type Partial interface {
	// Reset repositions the partial at the full record set.
	Reset()
	// Constrain intersects the set with range r (1-based) of dimension
	// j.
	Constrain(j int, r uint16)
	// ConstrainFrom sets the partial to parent ∩ range(j, r) and
	// returns the resulting cardinality (the fused form the brute-force
	// inner loop depends on). parent must come from the same source.
	ConstrainFrom(parent Partial, j int, r uint16) int
	// Count returns the current cardinality.
	Count() int
	// Extend returns the cardinality the set would have after
	// Constrain(j, r), without mutating it.
	Extend(j int, r uint16) int
	// CopyFrom makes this partial a copy of other (same source).
	CopyFrom(other Partial)
}

// detectorSource is the local CountSource: the detector's bitmap
// index, fronted by the optional shared count cache.
type detectorSource struct {
	d     *Detector
	cache *grid.Cache
}

// source wraps the detector (and an optional cache already validated
// against its index) as a CountSource.
func (d *Detector) source(cache *grid.Cache) detectorSource {
	return detectorSource{d: d, cache: cache}
}

func (s detectorSource) N() int   { return s.d.N() }
func (s detectorSource) D() int   { return s.d.D() }
func (s detectorSource) Phi() int { return s.d.Phi() }

func (s detectorSource) CountKey(c cube.Cube, key string) int {
	if s.cache != nil {
		return s.cache.CountKey(c, key)
	}
	return s.d.Index.Count(c)
}

func (s detectorSource) CountBatch(cs []cube.Cube, keys []string, workers int) []int {
	counts := make([]int, len(cs))
	parallelFor(len(cs), workers, func(i int) {
		counts[i] = s.CountKey(cs[i], keys[i])
	})
	return counts
}

func (s detectorSource) Cover(c cube.Cube) []int {
	return s.d.Index.Cover(c).Indices()
}

func (s detectorSource) NewPartial() Partial {
	return &bitsetPartial{ix: s.d.Index, set: bitset.New(s.d.N())}
}

// bitsetPartial is the local Partial: a dense bitmap intersected with
// range bitmaps in place — exactly the representation the serial
// searches have always used.
type bitsetPartial struct {
	ix  *grid.Index
	set *bitset.Set
}

func (p *bitsetPartial) Reset() { p.set.Fill() }

func (p *bitsetPartial) Constrain(j int, r uint16) {
	p.set.And(p.ix.RangeSet(j, r))
}

func (p *bitsetPartial) ConstrainFrom(parent Partial, j int, r uint16) int {
	return p.set.AndFrom(parent.(*bitsetPartial).set, p.ix.RangeSet(j, r))
}

func (p *bitsetPartial) Count() int { return p.set.Count() }

func (p *bitsetPartial) Extend(j int, r uint16) int {
	return p.ix.ExtendCount(p.set, j, r)
}

func (p *bitsetPartial) CopyFrom(other Partial) {
	p.set.CopyFrom(other.(*bitsetPartial).set)
}

// validateCache checks that a shared count cache (when present) was
// built over this detector's index.
func validateCache(d *Detector, c *grid.Cache) error {
	if c != nil && c.Index() != d.Index {
		return fmt.Errorf("core: count cache was built over a different index")
	}
	return nil
}
