// Package core implements the paper's contribution: outlier detection
// in high-dimensional data by mining abnormally sparse low-dimensional
// grid projections (Aggarwal & Yu, SIGMOD 2001).
//
// A Detector wraps a data set with its grid discretization (§1.3) and
// bitmap index, and exposes the two search algorithms over the space
// of k-dimensional cubes:
//
//   - BruteForce — Figure 2's exhaustive bottom-up enumeration of
//     R_k = R_{k−1} ⊕ Q_1, feasible only for modest d and k.
//   - Evolutionary — Figure 3's genetic search with rank-roulette
//     selection (Figure 4), the problem-specific optimized crossover
//     (Figure 5) or the unbiased two-point baseline, and the two
//     mutation types of Figure 6, terminated by the De Jong
//     convergence criterion.
//
// Both return the m projections with the most negative sparsity
// coefficients (Equation 1) and, per §2.3's postprocessing, the set of
// data points covered by those projections — the outliers.
package core

import (
	"fmt"

	"hido/internal/dataset"
	"hido/internal/discretize"
	"hido/internal/grid"
)

// Detector binds a data set to a fitted grid and its bitmap index.
// It is immutable after construction and safe for concurrent searches.
type Detector struct {
	Data  *dataset.Dataset
	Grid  *discretize.Grid
	Index *grid.Index
}

// NewDetector discretizes the data set into phi equi-depth ranges per
// attribute (the paper's construction) and builds the counting index.
func NewDetector(ds *dataset.Dataset, phi int) *Detector {
	return NewDetectorMethod(ds, phi, discretize.EquiDepth)
}

// NewDetectorMethod is NewDetector with an explicit discretization
// method (equi-width exists for the ablation study).
func NewDetectorMethod(ds *dataset.Dataset, phi int, method discretize.Method) *Detector {
	g := discretize.Fit(ds, phi, method)
	return &Detector{Data: ds, Grid: g, Index: grid.Build(g)}
}

// NewDetectorFromGrid binds a dataset to an externally built grid — the
// streaming refit path, where the boundaries come from online quantile
// sketches (discretize.Apply over Sketch.Cuts) instead of the full
// sorted pass Fit performs. The grid must already carry the dataset's
// cell assignments: build it with discretize.Apply, not FromCuts.
func NewDetectorFromGrid(ds *dataset.Dataset, g *discretize.Grid) *Detector {
	if g.N != ds.N() || g.D != ds.D() {
		panic(fmt.Sprintf("core: grid is %dx%d, dataset is %dx%d", g.N, g.D, ds.N(), ds.D()))
	}
	return &Detector{Data: ds, Grid: g, Index: grid.Build(g)}
}

// N returns the number of records.
func (d *Detector) N() int { return d.Grid.N }

// D returns the data dimensionality.
func (d *Detector) D() int { return d.Grid.D }

// Phi returns the grid resolution.
func (d *Detector) Phi() int { return d.Grid.Phi }

func (d *Detector) validateKM(k, m int) error {
	return validateKM(d.D(), k, m)
}

// validateKM is the Detector-free form, used when a search runs over
// an arbitrary CountSource.
func validateKM(dimCount, k, m int) error {
	switch {
	case k < 1 || k > dimCount:
		return fmt.Errorf("core: projection dimensionality k=%d outside [1,%d]", k, dimCount)
	case m < 1:
		return fmt.Errorf("core: number of projections m=%d must be positive", m)
	default:
		return nil
	}
}
