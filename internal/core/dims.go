package core

import (
	"fmt"
	"strconv"
	"strings"
)

// validateDims checks a feature-bag restriction: strictly increasing,
// unique dimensions within [0, dimCount), at least k of them. A nil
// bag is valid and means "all dimensions".
func validateDims(dimCount int, dims []int, k int) error {
	if dims == nil {
		return nil
	}
	if len(dims) < k {
		return fmt.Errorf("core: feature bag has %d dims, need at least k=%d", len(dims), k)
	}
	for i, j := range dims {
		if j < 0 || j >= dimCount {
			return fmt.Errorf("core: feature bag dim %d outside [0,%d)", j, dimCount)
		}
		if i > 0 && j <= dims[i-1] {
			return fmt.Errorf("core: feature bag dims not strictly increasing at position %d", i)
		}
	}
	return nil
}

// resolveDims returns the search's dimension list: the bag when one is
// set, every dimension otherwise. Searching the full list [0..D) is
// bit-identical to a nil bag: index i maps to dimension i, so every
// RNG draw and enumeration step coincides.
func resolveDims(dimCount int, dims []int) []int {
	if dims != nil {
		return dims
	}
	all := make([]int, dimCount)
	for i := range all {
		all[i] = i
	}
	return all
}

// dimsFingerprint renders a bag for checkpoint fingerprints. The empty
// string for a nil bag keeps fingerprints of unrestricted searches
// byte-identical to those written before bags existed.
func dimsFingerprint(dims []int) string {
	if dims == nil {
		return ""
	}
	parts := make([]string, len(dims))
	for i, j := range dims {
		parts[i] = strconv.Itoa(j)
	}
	return "|dims=" + strings.Join(parts, ".")
}
