package core

import (
	"testing"

	"hido/internal/evo"
)

func TestIslandsFindPlantedOutlier(t *testing.T) {
	ds := plantedDataset(400, 10, 40)
	det := NewDetector(ds, 5)
	res, err := det.EvolutionaryIslands(IslandOptions{
		Evo: EvoOptions{K: 2, M: 10, Seed: 1, PopSize: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutlierSet.Test(400) {
		t.Error("island search missed the planted outlier")
	}
	if res.Generations == 0 || res.Evaluations == 0 {
		t.Error("telemetry empty")
	}
	for _, p := range res.Projections {
		if p.Cube.K() != 2 {
			t.Errorf("infeasible projection %v retained", p.Cube)
		}
	}
}

func TestIslandsDeterministicPerSeed(t *testing.T) {
	ds := plantedDataset(200, 6, 41)
	det := NewDetector(ds, 4)
	opt := IslandOptions{Evo: EvoOptions{K: 2, M: 8, Seed: 5, PopSize: 30, MaxGenerations: 40}}
	a, err := det.EvolutionaryIslands(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := det.EvolutionaryIslands(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Projections) != len(b.Projections) {
		t.Fatalf("projection counts differ: %d vs %d", len(a.Projections), len(b.Projections))
	}
	for i := range a.Projections {
		if !a.Projections[i].Cube.Equal(b.Projections[i].Cube) {
			t.Fatalf("projection %d differs across identical runs", i)
		}
	}
}

func TestIslandsCoverAtLeastSingleRun(t *testing.T) {
	// With the same total population budget, the island model should
	// retain at least as many distinct qualifying projections as one
	// big population (diversity preservation) — allow slack of a few.
	ds := plantedDataset(500, 12, 42)
	det := NewDetector(ds, 5)
	single, err := det.Evolutionary(EvoOptions{K: 2, M: 30, Seed: 3, PopSize: 120})
	if err != nil {
		t.Fatal(err)
	}
	isl, err := det.EvolutionaryIslands(IslandOptions{
		Evo:     EvoOptions{K: 2, M: 30, Seed: 3, PopSize: 30},
		Islands: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(isl.Projections)+5 < len(single.Projections) {
		t.Errorf("islands retained %d projections, single population %d",
			len(isl.Projections), len(single.Projections))
	}
}

func TestIslandsValidation(t *testing.T) {
	det := NewDetector(plantedDataset(50, 3, 43), 3)
	if _, err := det.EvolutionaryIslands(IslandOptions{Evo: EvoOptions{K: 9, M: 5}}); err == nil {
		t.Error("bad K accepted")
	}
	if _, err := det.EvolutionaryIslands(IslandOptions{
		Evo: EvoOptions{K: 2, M: 5, PopSize: 4}, Migrants: 4,
	}); err == nil {
		t.Error("migrants >= island size accepted")
	}
	if _, err := det.EvolutionaryIslands(IslandOptions{
		Evo: EvoOptions{K: 2, M: 5}, Islands: -1,
	}); err == nil {
		t.Error("negative islands accepted")
	}
}

func TestMigrateRing(t *testing.T) {
	// Two islands of three members; best of each must land on the other,
	// replacing the worst.
	a := evo.NewPopulation(3, 1)
	a.Members[0], a.Fitness[0] = evo.Genome{1}, -10 // best of a
	a.Members[1], a.Fitness[1] = evo.Genome{2}, -5
	a.Members[2], a.Fitness[2] = evo.Genome{3}, 0 // worst of a
	b := evo.NewPopulation(3, 1)
	b.Members[0], b.Fitness[0] = evo.Genome{4}, -8 // best of b
	b.Members[1], b.Fitness[1] = evo.Genome{5}, -4
	b.Members[2], b.Fitness[2] = evo.Genome{6}, 1 // worst of b

	migrate([]*evo.Population{a, b}, 1)

	// a's best (genome 1, fitness -10) replaced b's worst slot.
	found := false
	for m := range b.Members {
		if b.Members[m][0] == 1 && b.Fitness[m] == -10 {
			found = true
		}
		if b.Members[m][0] == 6 {
			t.Error("b's worst member survived migration")
		}
	}
	if !found {
		t.Error("a's best did not migrate to b")
	}
	// b's best (genome 4) replaced a's worst slot.
	found = false
	for m := range a.Members {
		if a.Members[m][0] == 4 && a.Fitness[m] == -8 {
			found = true
		}
		if a.Members[m][0] == 3 {
			t.Error("a's worst member survived migration")
		}
	}
	if !found {
		t.Error("b's best did not migrate to a")
	}
}
