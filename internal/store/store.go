// Package store persists hidod's model registry on disk so a crashed
// or restarted server recovers its full model set. Durability is the
// missing half of the paper's deployment story: the fraud/intrusion
// services it motivates fit models over hours of reference traffic,
// and a registry that lives only in memory re-pays that cost on every
// restart.
//
// Layout: one JSON model file per registered model (the hidomon wire
// format, so files are interchangeable with the CLI) plus a versioned
// manifest mapping model names to files and serving metadata. Every
// mutation is committed with write-temp → fsync → rename → fsync-dir,
// so a crash at any instant leaves the previously committed state
// readable: a torn write is confined to an anonymous temp file and a
// half-finished Save simply never entered the manifest.
//
// Recovery (Open) is deliberately forgiving: a corrupt model file —
// truncated JSON, non-monotonic cuts, NaN sparsity, any failure of
// stream.Load's validation — is quarantined (renamed aside with a
// .corrupt suffix) and reported, never fatal, so one bad file cannot
// keep a fleet member from serving its remaining models. Model files
// present on disk but missing from the manifest (a crash between the
// two commit steps, or a lost manifest) are adopted back under the
// name encoded in their filename.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"hido/internal/stream"
)

// manifestVersion guards the on-disk manifest format.
const manifestVersion = 1

const (
	manifestName = "manifest.json"
	modelSuffix  = ".model.json"
	// corruptSuffix marks quarantined files; recovery skips them.
	corruptSuffix = ".corrupt"
)

// manifest is the on-disk commit record: a model exists iff its entry
// is here (orphan adoption aside).
type manifest struct {
	Version int                      `json:"version"`
	Models  map[string]manifestEntry `json:"models"`
}

type manifestEntry struct {
	File     string    `json:"file"`
	FittedAt time.Time `json:"fitted_at"`
	Source   string    `json:"source"`
}

// Store is an atomic on-disk model store. All methods are safe for
// concurrent use; mutations serialize on an internal lock.
type Store struct {
	dir string
	fs  FS

	mu sync.Mutex
	m  manifest
}

// RecoveredModel is one model read back during Open.
type RecoveredModel struct {
	Name     string
	Monitor  *stream.Monitor
	FittedAt time.Time
	Source   string
}

// Report summarizes what Open found on disk.
type Report struct {
	// Models are the successfully recovered models, sorted by name.
	Models []RecoveredModel
	// Quarantined lists files renamed aside because they failed to
	// load (with the reason), keyed by the original file name.
	Quarantined map[string]string
	// Adopted counts model files recovered despite missing from the
	// manifest (a crash between the model and manifest commits).
	Adopted int
}

// Open opens (creating if needed) a model store rooted at dir on the
// real filesystem and recovers its contents.
func Open(dir string) (*Store, Report, error) {
	return OpenFS(dir, OSFS{})
}

// OpenFS is Open over an explicit filesystem (test and fault-injection
// seam). Corrupt model files are quarantined, never fatal; only an
// unusable directory fails.
func OpenFS(dir string, fsys FS) (*Store, Report, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, Report{}, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, fs: fsys, m: manifest{Version: manifestVersion, Models: map[string]manifestEntry{}}}
	rep := Report{Quarantined: map[string]string{}}

	onDisk, err := s.loadManifest(&rep)
	if err != nil {
		return nil, Report{}, err
	}

	// Sweep the directory once: leftover temp files are deleted, model
	// files are noted so orphans (present on disk, absent from the
	// manifest) can be adopted.
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, Report{}, fmt.Errorf("store: reading %s: %w", dir, err)
	}
	present := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir():
		case strings.HasPrefix(name, tempPrefix):
			_ = fsys.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, modelSuffix):
			present[name] = true
		}
	}

	// Manifest entries first: the committed state.
	for name, me := range onDisk.Models {
		if !present[me.File] {
			// Model file lost (crash between a delete's file removal and
			// its manifest commit): drop the entry.
			continue
		}
		delete(present, me.File)
		mon, why := s.loadModel(me.File)
		if mon == nil {
			s.quarantine(me.File, why, &rep)
			continue
		}
		s.m.Models[name] = me
		rep.Models = append(rep.Models, RecoveredModel{
			Name: name, Monitor: mon, FittedAt: me.FittedAt, Source: me.Source,
		})
	}

	// Orphans: model files with no manifest entry. Adopt the loadable
	// ones under the name their filename encodes, quarantine the rest.
	for file := range present {
		name, ok := decodeName(file)
		if !ok {
			s.quarantine(file, "unparseable file name", &rep)
			continue
		}
		if _, taken := s.m.Models[name]; taken {
			s.quarantine(file, "duplicate of manifest entry", &rep)
			continue
		}
		mon, why := s.loadModel(file)
		if mon == nil {
			s.quarantine(file, why, &rep)
			continue
		}
		me := manifestEntry{File: file, Source: "recovered"}
		s.m.Models[name] = me
		rep.Adopted++
		rep.Models = append(rep.Models, RecoveredModel{Name: name, Monitor: mon, Source: me.Source})
	}
	sort.Slice(rep.Models, func(i, j int) bool { return rep.Models[i].Name < rep.Models[j].Name })

	// Re-commit the reconciled manifest so the next recovery starts
	// from a clean record. Failure here is not fatal: the in-memory
	// manifest is correct and the next successful mutation rewrites it.
	_ = s.writeManifest()
	return s, rep, nil
}

// loadManifest reads the manifest if present; a corrupt manifest is
// quarantined and recovery proceeds from the model files alone.
func (s *Store) loadManifest(rep *Report) (manifest, error) {
	empty := manifest{Models: map[string]manifestEntry{}}
	path := filepath.Join(s.dir, manifestName)
	f, err := s.fs.Open(path)
	if err != nil {
		return empty, nil // no manifest yet: a fresh (or pre-manifest) dir
	}
	var m manifest
	derr := json.NewDecoder(f).Decode(&m)
	f.Close()
	if derr != nil || m.Version != manifestVersion || m.Models == nil {
		why := "unsupported version"
		if derr != nil {
			why = derr.Error()
		}
		s.quarantine(manifestName, why, rep)
		return empty, nil
	}
	return m, nil
}

// loadModel reads and validates one model file, returning nil and the
// reason on failure.
func (s *Store) loadModel(file string) (*stream.Monitor, string) {
	f, err := s.fs.Open(filepath.Join(s.dir, file))
	if err != nil {
		return nil, err.Error()
	}
	mon, err := stream.Load(f)
	f.Close()
	if err != nil {
		return nil, err.Error()
	}
	return mon, ""
}

// quarantine renames a bad file aside so startup never fails on it and
// an operator can inspect it later. A file that cannot even be renamed
// is left in place and still skipped.
func (s *Store) quarantine(file, why string, rep *Report) {
	full := filepath.Join(s.dir, file)
	_ = s.fs.Remove(full + corruptSuffix) // make room for re-quarantine
	_ = s.fs.Rename(full, full+corruptSuffix)
	rep.Quarantined[file] = why
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Save durably commits one model under the given name, overwriting any
// previous version. The model file is committed before the manifest,
// so a crash between the two leaves an adoptable orphan, never a
// manifest entry pointing at a torn file.
func (s *Store) Save(name string, mon *stream.Monitor, fittedAt time.Time, source string) error {
	if name == "" {
		return fmt.Errorf("store: empty model name")
	}
	if mon == nil {
		return fmt.Errorf("store: nil monitor for model %q", name)
	}
	var buf bytes.Buffer
	if err := mon.Save(&buf); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	file := encodeName(name) + modelSuffix
	if err := writeFileAtomic(s.fs, filepath.Join(s.dir, file), buf.Bytes()); err != nil {
		return err
	}
	prev, had := s.m.Models[name]
	s.m.Models[name] = manifestEntry{File: file, FittedAt: fittedAt, Source: source}
	if err := s.writeManifest(); err != nil {
		// Roll the in-memory manifest back so it keeps describing the
		// last durable commit.
		if had {
			s.m.Models[name] = prev
		} else {
			delete(s.m.Models, name)
		}
		return err
	}
	return nil
}

// Delete durably removes the named model. Removing an unknown name is
// a no-op. The model file goes first: a crash before the manifest
// commit leaves a dangling manifest entry, which recovery drops.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	me, ok := s.m.Models[name]
	if !ok {
		return nil
	}
	_ = s.fs.Remove(filepath.Join(s.dir, me.File))
	delete(s.m.Models, name)
	if err := s.writeManifest(); err != nil {
		s.m.Models[name] = me
		return err
	}
	return nil
}

// Names returns the names of the durably committed models, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m.Models))
	for n := range s.m.Models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// writeManifest commits the manifest; the caller holds s.mu.
func (s *Store) writeManifest() error {
	data, err := json.MarshalIndent(s.m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	return writeFileAtomic(s.fs, filepath.Join(s.dir, manifestName), append(data, '\n'))
}

// encodeName maps an arbitrary model name to a safe, reversible file
// stem: alphanumerics, '.', '_' and '-' pass through, every other byte
// becomes %XX. The encoding keeps names readable in a directory
// listing while making orphan adoption exact.
func encodeName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '%' || !isSafeFilenameByte(c) {
			fmt.Fprintf(&b, "%%%02X", c)
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

// decodeName inverts encodeName on a model file name (with its
// modelSuffix still attached), reporting failure on malformed input.
func decodeName(file string) (string, bool) {
	stem, ok := strings.CutSuffix(file, modelSuffix)
	if !ok || stem == "" {
		return "", false
	}
	var b strings.Builder
	for i := 0; i < len(stem); i++ {
		c := stem[i]
		if c == '%' {
			if i+2 >= len(stem) {
				return "", false
			}
			var v byte
			if _, err := fmt.Sscanf(stem[i+1:i+3], "%02X", &v); err != nil {
				return "", false
			}
			b.WriteByte(v)
			i += 2
			continue
		}
		if !isSafeFilenameByte(c) {
			return "", false
		}
		b.WriteByte(c)
	}
	return b.String(), true
}

func isSafeFilenameByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '.' || c == '_' || c == '-':
		return true
	}
	return false
}
