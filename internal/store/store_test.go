package store_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hido/internal/store"
	"hido/internal/stream"
)

// modelJSON hand-builds a valid hidomon-format model so tests get a
// Monitor without paying for a fit. The seed varies the cut points so
// two models are distinguishable byte-for-byte.
func modelJSON(t *testing.T, seed int) []byte {
	t.Helper()
	phi := 3
	m := map[string]any{
		"version": 1,
		"phi":     phi,
		"k":       2,
		"options": map[string]any{"Phi": phi, "TargetS": -3, "M": 10, "Restarts": 1, "Seed": 1},
		"names":   []string{"a", "b", "c", "d"},
		"cuts": [][]float64{
			{0.1 + float64(seed), 0.5 + float64(seed)},
			{1, 2}, {3, 4}, {5, 6},
		},
		"projections": []map[string]any{
			{"cube": []int{1, 0, 2, 0}, "sparsity": -3.5, "count": 1},
			{"cube": []int{0, 3, 0, 1}, "sparsity": -3.1, "count": 2},
		},
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func loadMonitor(t *testing.T, data []byte) *stream.Monitor {
	t.Helper()
	mon, err := stream.Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return mon
}

// saveBytes renders a monitor back to its wire form for comparison.
func saveBytes(t *testing.T, mon *stream.Monitor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := mon.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustOpen(t *testing.T, dir string) (*store.Store, store.Report) {
	t.Helper()
	s, rep, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s, rep
}

func TestSaveRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rep := mustOpen(t, dir)
	if len(rep.Models) != 0 || len(rep.Quarantined) != 0 {
		t.Fatalf("fresh dir not empty: %+v", rep)
	}
	monA := loadMonitor(t, modelJSON(t, 0))
	monB := loadMonitor(t, modelJSON(t, 7))
	at := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	if err := s.Save("default", monA, at, "fit:job-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("fraud/eu", monB, at.Add(time.Hour), "put"); err != nil {
		t.Fatal(err)
	}

	// A fresh Open over the same dir — the crash/restart path — must
	// recover both models bit-identically, with metadata intact.
	_, rep2 := mustOpen(t, dir)
	if len(rep2.Models) != 2 || len(rep2.Quarantined) != 0 || rep2.Adopted != 0 {
		t.Fatalf("recovery: %+v", rep2)
	}
	byName := map[string]store.RecoveredModel{}
	for _, m := range rep2.Models {
		byName[m.Name] = m
	}
	got := byName["default"]
	if !bytes.Equal(saveBytes(t, got.Monitor), saveBytes(t, monA)) {
		t.Error("recovered model differs from saved model")
	}
	if !got.FittedAt.Equal(at) || got.Source != "fit:job-1" {
		t.Errorf("metadata lost: %+v", got)
	}
	if b := byName["fraud/eu"]; !bytes.Equal(saveBytes(t, b.Monitor), saveBytes(t, monB)) {
		t.Error("second model differs after recovery")
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	now := time.Now()
	if err := s.Save("m", loadMonitor(t, modelJSON(t, 0)), now, "put"); err != nil {
		t.Fatal(err)
	}
	v2 := loadMonitor(t, modelJSON(t, 3))
	if err := s.Save("m", v2, now, "put"); err != nil {
		t.Fatal(err)
	}
	_, rep := mustOpen(t, dir)
	if len(rep.Models) != 1 || !bytes.Equal(saveBytes(t, rep.Models[0].Monitor), saveBytes(t, v2)) {
		t.Fatalf("overwrite not durable: %+v", rep)
	}

	if err := s.Delete("m"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatal(err)
	}
	_, rep = mustOpen(t, dir)
	if len(rep.Models) != 0 {
		t.Fatalf("delete not durable: %+v", rep)
	}
}

// A corrupt model file must be quarantined at startup — renamed aside,
// reported, and excluded — while every healthy model still loads.
func TestCorruptModelQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	now := time.Now()
	if err := s.Save("good", loadMonitor(t, modelJSON(t, 0)), now, "put"); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("bad", loadMonitor(t, modelJSON(t, 1)), now, "put"); err != nil {
		t.Fatal(err)
	}

	// Corruptions: torn JSON, and valid JSON that fails validation
	// (NaN-free decode but non-monotonic cuts).
	badPath := filepath.Join(dir, "bad.model.json")
	for name, corrupt := range map[string][]byte{
		"torn":       []byte(`{"version":1,"phi":3,"k":2,"names":["a"`),
		"descending": []byte(`{"version":1,"phi":3,"k":1,"names":["a"],"cuts":[[2,1]],"projections":[]}`),
	} {
		if err := os.WriteFile(badPath, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		_, rep := mustOpen(t, dir)
		if len(rep.Models) != 1 || rep.Models[0].Name != "good" {
			t.Fatalf("%s: healthy model lost: %+v", name, rep)
		}
		why, ok := rep.Quarantined["bad.model.json"]
		if !ok {
			t.Fatalf("%s: corrupt file not quarantined: %+v", name, rep)
		}
		if why == "" {
			t.Errorf("%s: quarantine reason empty", name)
		}
		if _, err := os.Stat(badPath + ".corrupt"); err != nil {
			t.Errorf("%s: quarantined file not renamed aside: %v", name, err)
		}
		if _, err := os.Stat(badPath); !os.IsNotExist(err) {
			t.Errorf("%s: corrupt file still in place: %v", name, err)
		}
		// Re-arm for the next corruption round: re-save the model.
		s2, _ := mustOpen(t, dir)
		if err := s2.Save("bad", loadMonitor(t, modelJSON(t, 1)), now, "put"); err != nil {
			t.Fatal(err)
		}
	}
}

// A lost or corrupt manifest must not lose the committed models: the
// model files are self-describing enough (name-encoding filenames) to
// be adopted back.
func TestManifestLossAdoptsModels(t *testing.T) {
	for name, damage := range map[string]func(t *testing.T, path string){
		"deleted": func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		},
		"corrupt": func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, _ := mustOpen(t, dir)
			mon := loadMonitor(t, modelJSON(t, 2))
			if err := s.Save("weird name/v2", mon, time.Now(), "put"); err != nil {
				t.Fatal(err)
			}
			damage(t, filepath.Join(dir, "manifest.json"))
			_, rep := mustOpen(t, dir)
			if len(rep.Models) != 1 || rep.Models[0].Name != "weird name/v2" || rep.Adopted != 1 {
				t.Fatalf("adoption failed: %+v", rep)
			}
			if !bytes.Equal(saveBytes(t, rep.Models[0].Monitor), saveBytes(t, mon)) {
				t.Error("adopted model differs")
			}
			// The reconciled manifest is rewritten, so the next open is a
			// plain manifest recovery again.
			_, rep = mustOpen(t, dir)
			if len(rep.Models) != 1 || rep.Adopted != 0 {
				t.Fatalf("manifest not reconciled: %+v", rep)
			}
		})
	}
}

// Leftover temp files from a crash mid-write are swept at startup and
// never surface as models.
func TestTempFilesSwept(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	if err := s.Save("m", loadMonitor(t, modelJSON(t, 0)), time.Now(), "put"); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ".tmp-123456")
	if err := os.WriteFile(tmp, []byte("half a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep := mustOpen(t, dir)
	if len(rep.Models) != 1 || len(rep.Quarantined) != 0 {
		t.Fatalf("temp file disturbed recovery: %+v", rep)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("temp file not swept: %v", err)
	}
}

// Concurrent saves and deletes must serialize cleanly (run with -race)
// and leave a consistent, recoverable store.
func TestConcurrentMutations(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	mon := loadMonitor(t, modelJSON(t, 0))
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			name := fmt.Sprintf("m%d", g%4)
			for i := 0; i < 10; i++ {
				if err := s.Save(name, mon, time.Now(), "put"); err != nil {
					done <- err
					return
				}
				if g%2 == 0 {
					if err := s.Delete(name); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	_, rep := mustOpen(t, dir)
	for _, m := range rep.Models {
		if !strings.HasPrefix(m.Name, "m") {
			t.Errorf("unexpected model %q", m.Name)
		}
	}
	if len(rep.Quarantined) != 0 {
		t.Errorf("quarantines after concurrent mutations: %+v", rep.Quarantined)
	}
}
