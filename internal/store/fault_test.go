package store_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hido/internal/store"
	"hido/internal/store/faultfs"
)

// commitOne opens a store over a fault-capable fs and commits one
// healthy model, so each fault scenario starts from durable state.
func commitOne(t *testing.T, dir string, fs *faultfs.FS) *store.Store {
	t.Helper()
	s, _, err := store.OpenFS(dir, fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("committed", loadMonitor(t, modelJSON(t, 0)), time.Now(), "put"); err != nil {
		t.Fatal(err)
	}
	return s
}

// recoverClean re-opens the directory on the real filesystem and
// asserts the originally committed model survived intact. Extra
// adopted models (a fault that fired after the model-file commit but
// before the manifest commit) are tolerated; quarantines are not.
func recoverClean(t *testing.T, label, dir string) {
	t.Helper()
	_, rep, err := store.Open(dir)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("%s: fault corrupted committed state: %+v", label, rep.Quarantined)
	}
	want := saveBytes(t, loadMonitor(t, modelJSON(t, 0)))
	for _, m := range rep.Models {
		if m.Name == "committed" {
			if !bytes.Equal(saveBytes(t, m.Monitor), want) {
				t.Fatalf("%s: committed model bytes changed", label)
			}
			return
		}
	}
	t.Fatalf("%s: committed model lost: %+v", label, rep)
}

// Every step of the Save commit sequence — the data write, the file
// fsync, the rename, the directory fsync, for both the model file and
// the manifest — is failed in turn. The Save must surface an error
// (except for the advisory post-rename dir syncs, where the commit
// already happened) and the previously committed state must recover
// byte-identically, with nothing quarantined.
func TestSaveFaultAtEveryStep(t *testing.T) {
	type arm func(fs *faultfs.FS, n int)
	steps := []struct {
		name    string
		arm     arm
		points  int  // Save performs this many of the op (model file, then manifest)
		mustErr bool // whether Save must report the fault
	}{
		{"short-write", func(fs *faultfs.FS, n int) { fs.FailWrite(n) }, 2, true},
		{"fsync", func(fs *faultfs.FS, n int) { fs.FailSync(n) }, 2, true},
		{"rename", func(fs *faultfs.FS, n int) { fs.FailRename(n) }, 2, true},
		{"dir-fsync", func(fs *faultfs.FS, n int) { fs.FailSyncDir(n) }, 2, true},
	}
	for _, step := range steps {
		for point := 1; point <= step.points; point++ {
			label := step.name
			if point == 2 {
				label += "/manifest"
			} else {
				label += "/model"
			}
			t.Run(label, func(t *testing.T) {
				dir := t.TempDir()
				fs := faultfs.New(store.OSFS{})
				s := commitOne(t, dir, fs)
				step.arm(fs, point)
				err := s.Save("victim", loadMonitor(t, modelJSON(t, 5)), time.Now(), "put")
				if step.mustErr && err == nil {
					t.Fatal("Save swallowed the injected fault")
				}
				if err != nil && !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("unexpected error source: %v", err)
				}
				if fs.Injected() != 1 {
					t.Fatalf("fault fired %d times, want 1", fs.Injected())
				}
				recoverClean(t, label, dir)
			})
		}
	}
}

// A failed Save must not poison the store handle: after the fault
// clears, the same store commits the same model durably.
func TestStoreUsableAfterFault(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(store.OSFS{})
	s := commitOne(t, dir, fs)
	fs.FailSync(1)
	if err := s.Save("victim", loadMonitor(t, modelJSON(t, 5)), time.Now(), "put"); err == nil {
		t.Fatal("expected injected failure")
	}
	if err := s.Save("victim", loadMonitor(t, modelJSON(t, 5)), time.Now(), "put"); err != nil {
		t.Fatalf("store unusable after fault: %v", err)
	}
	_, rep, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, m := range rep.Models {
		names[m.Name] = true
	}
	if !names["committed"] || !names["victim"] {
		t.Fatalf("models after retry: %+v", rep)
	}
}

// Delete with a failing manifest commit must keep the deletion
// un-committed in memory too — the store's view must always describe
// the last durable state. (The model file itself may already be gone;
// recovery then drops the dangling manifest entry.)
func TestDeleteFaultRollsBack(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(store.OSFS{})
	s := commitOne(t, dir, fs)
	fs.FailSync(1)
	if err := s.Delete("committed"); err == nil {
		t.Fatal("expected injected failure")
	}
	if got := s.Names(); len(got) != 1 || got[0] != "committed" {
		t.Fatalf("in-memory manifest diverged from durable state: %v", got)
	}
	// The durable manifest still names the model; its file is gone, so
	// recovery drops it without quarantining anything.
	_, rep, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("dangling entry quarantined: %+v", rep.Quarantined)
	}
}
