// Package faultfs wraps the store's filesystem interface with
// injectable faults — short writes, fsync errors, rename failures — so
// tests can prove the store's crash-consistency claims: an injected
// failure at any point of the commit sequence must leave the
// previously committed state fully recoverable.
//
// Faults are armed as countdowns: FailSync(3) makes the third Sync
// call fail and every later one succeed, which lets one test walk a
// fault through every step of a commit. All methods are safe for
// concurrent use.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"sync"

	"hido/internal/store"
)

// ErrInjected is the error every injected fault returns (wrapped), so
// tests can assert a failure came from the harness and not the real
// filesystem.
var ErrInjected = errors.New("faultfs: injected fault")

// FS wraps an inner store.FS with fault injection.
type FS struct {
	inner store.FS

	mu          sync.Mutex
	writeAt     int // countdown to a short write (0 = disarmed)
	syncAt      int // countdown to a failing Sync
	renameAt    int // countdown to a failing Rename
	dirSyncAt   int // countdown to a failing SyncDir
	writes      int
	syncs       int
	renames     int
	dirSyncs    int
	injected    int
	dropOnWrite bool // short writes persist half the data, mimicking a torn page
}

// New wraps inner (pass store.OSFS{} for the real filesystem).
func New(inner store.FS) *FS { return &FS{inner: inner, dropOnWrite: true} }

// FailWrite arms the nth Write call from now (1-based, counted across
// all files) to write only half its buffer and return ErrInjected — a
// short write.
func (f *FS) FailWrite(n int) { f.mu.Lock(); f.writeAt = f.writes + n; f.mu.Unlock() }

// FailSync arms the nth file Sync call from now to fail.
func (f *FS) FailSync(n int) { f.mu.Lock(); f.syncAt = f.syncs + n; f.mu.Unlock() }

// FailRename arms the nth Rename call from now to fail.
func (f *FS) FailRename(n int) { f.mu.Lock(); f.renameAt = f.renames + n; f.mu.Unlock() }

// FailSyncDir arms the nth SyncDir call from now to fail.
func (f *FS) FailSyncDir(n int) { f.mu.Lock(); f.dirSyncAt = f.dirSyncs + n; f.mu.Unlock() }

// Injected reports how many faults actually fired.
func (f *FS) Injected() int { f.mu.Lock(); defer f.mu.Unlock(); return f.injected }

// trip advances a counter and reports whether the armed fault fires.
func (f *FS) trip(count *int, at *int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	*count++
	if *at != 0 && *count == *at {
		f.injected++
		return true
	}
	return false
}

func (f *FS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

func (f *FS) CreateTemp(dir, pattern string) (store.File, error) {
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if f.trip(&f.renames, &f.renameAt) {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: ErrInjected}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error { return f.inner.Remove(name) }

func (f *FS) Open(name string) (io.ReadCloser, error) { return f.inner.Open(name) }

func (f *FS) ReadDir(dir string) ([]fs.DirEntry, error) { return f.inner.ReadDir(dir) }

func (f *FS) SyncDir(dir string) error {
	if f.trip(&f.dirSyncs, &f.dirSyncAt) {
		return &fs.PathError{Op: "syncdir", Path: dir, Err: ErrInjected}
	}
	return f.inner.SyncDir(dir)
}

// file intercepts Write and Sync on one handle.
type file struct {
	fs    *FS
	inner store.File
}

func (w *file) Write(p []byte) (int, error) {
	if w.fs.trip(&w.fs.writes, &w.fs.writeAt) {
		// A short write: half the payload lands, then the "device"
		// errors — the torn-page shape recovery must survive.
		n := 0
		if w.fs.dropOnWrite && len(p) > 0 {
			n, _ = w.inner.Write(p[:len(p)/2])
		}
		return n, &fs.PathError{Op: "write", Path: w.inner.Name(), Err: ErrInjected}
	}
	return w.inner.Write(p)
}

func (w *file) Sync() error {
	if w.fs.trip(&w.fs.syncs, &w.fs.syncAt) {
		return &fs.PathError{Op: "sync", Path: w.inner.Name(), Err: ErrInjected}
	}
	return w.inner.Sync()
}

func (w *file) Close() error { return w.inner.Close() }
func (w *file) Name() string { return w.inner.Name() }
