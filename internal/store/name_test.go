package store

import "testing"

// Model names arrive from URL paths, so the filename encoding must be
// reversible on anything — slashes, spaces, percent signs, UTF-8 —
// and must never emit a byte the filesystem could reinterpret.
func TestEncodeDecodeNameRoundTrip(t *testing.T) {
	names := []string{
		"default", "fraud-v2", "a.b_c-d", "has space", "slash/name",
		"dot..dots", "per%cent", "ünïcode-модель", "..", "%2F", "x",
	}
	for _, name := range names {
		enc := encodeName(name)
		for i := 0; i < len(enc); i++ {
			if enc[i] != '%' && !isSafeFilenameByte(enc[i]) {
				t.Errorf("encodeName(%q) = %q contains unsafe byte %q", name, enc, enc[i])
			}
		}
		got, ok := decodeName(enc + modelSuffix)
		if !ok || got != name {
			t.Errorf("decodeName(encodeName(%q)) = %q, %v", name, got, ok)
		}
	}
}

func TestDecodeNameRejectsMalformed(t *testing.T) {
	for _, file := range []string{
		"noext", ".model.json", "bad%" + modelSuffix, "bad%2" + modelSuffix,
		"bad%ZZ" + modelSuffix, "un safe" + modelSuffix,
	} {
		if name, ok := decodeName(file); ok {
			t.Errorf("decodeName(%q) accepted as %q", file, name)
		}
	}
}
