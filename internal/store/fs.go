package store

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// FS abstracts the handful of filesystem operations the store
// performs, so tests can substitute a fault-injecting implementation
// (see the faultfs subpackage) and prove the crash-consistency
// guarantees instead of asserting them.
type FS interface {
	MkdirAll(dir string) error
	// CreateTemp creates a new temp file in dir whose name starts with
	// the pattern's prefix (os.CreateTemp semantics).
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Open(name string) (io.ReadCloser, error)
	ReadDir(dir string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory so a preceding rename is durable.
	SyncDir(dir string) error
}

// File is the writable handle CreateTemp returns.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }

func (OSFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (OSFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFileAtomic commits data to path with the classic
// write-temp → fsync → rename → fsync-dir sequence: after it returns
// nil the file is durably in place under its final name, and a crash
// at any earlier point leaves the previous version of path (or its
// absence) intact — readers never observe a torn file. The temp file
// is created in path's directory so the rename never crosses a
// filesystem, and is removed on any failure.
func writeFileAtomic(fsys FS, path string, data []byte) (err error) {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, tempPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: creating temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			fsys.Remove(tmp)
		}
	}()
	if n, werr := f.Write(data); werr != nil {
		return fmt.Errorf("store: writing %s: %w", tmp, werr)
	} else if n < len(data) {
		return fmt.Errorf("store: short write to %s: %d of %d bytes", tmp, n, len(data))
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: renaming %s into place: %w", tmp, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("store: fsync dir %s: %w", dir, err)
	}
	return nil
}

// tempPrefix marks in-flight temp files; recovery sweeps leftovers
// from crashes mid-write.
const tempPrefix = ".tmp-"
