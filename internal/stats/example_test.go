package stats_test

import (
	"fmt"

	"hido/internal/stats"
)

// The sparsity coefficient of Equation 1: a cube holding 2 of 10,000
// points where independence predicts 100 sits almost 10 standard
// deviations below expectation.
func ExampleSparsity() {
	fmt.Printf("%.2f\n", stats.Sparsity(2, 10000, 2, 10))
	// Output:
	// -9.85
}

// Equation 2's advisor: the largest projection dimensionality at which
// an empty cube still clears the target significance.
func ExampleKStar() {
	fmt.Println(stats.KStar(10000, 10, -3))
	fmt.Println(stats.KStar(452, 6, -3))
	// Output:
	// 3
	// 2
}

// Exact versus approximate significance of a singleton cube: the
// normal approximation of Equation 1 understates how unlikely a
// near-empty cube is when the expected count is small.
func ExampleExactSignificance() {
	exact := stats.ExactSignificance(1, 452, 2, 6)
	approx := stats.Significance(stats.Sparsity(1, 452, 2, 6))
	fmt.Printf("exact %.2g, normal approximation %.2g\n", exact, approx)
	// Output:
	// exact 4.1e-05, normal approximation 0.00047
}
