// Package stats implements the statistical machinery of the paper:
// the sparsity coefficient of a grid cube (Equation 1), the normal
// distribution used to interpret it as a level of significance, and
// the projection-dimensionality advisor (Equation 2, §2.4).
//
// It also provides the descriptive statistics (means, variances,
// quantiles) used by the dataset layer and the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sparsity returns the sparsity coefficient S(D) of a k-dimensional
// cube containing n of N points under a grid with phi equi-depth
// ranges per dimension (Equation 1 of the paper):
//
//	S(D) = (n − N·f^k) / sqrt(N·f^k·(1 − f^k)),   f = 1/phi
//
// Negative values indicate cubes sparser than the independence
// baseline; under a uniform-data assumption S(D) is the number of
// standard deviations below the expected count.
func Sparsity(n, N, k, phi int) float64 {
	if N <= 0 {
		panic("stats: Sparsity with N <= 0")
	}
	if phi < 2 {
		panic("stats: Sparsity with phi < 2")
	}
	if k <= 0 {
		panic("stats: Sparsity with k <= 0")
	}
	fk := math.Pow(1/float64(phi), float64(k))
	denom := math.Sqrt(float64(N) * fk * (1 - fk))
	if denom == 0 {
		// fk rounded to 0 or 1: the cube is degenerate; report 0 so such
		// cubes never look abnormally sparse.
		return 0
	}
	return (float64(n) - float64(N)*fk) / denom
}

// EmptySparsity returns the sparsity coefficient of an empty
// k-dimensional cube, −sqrt(N/(phi^k − 1)) (§2.4). This is the most
// negative value any cube can attain at the given parameters.
func EmptySparsity(N, k, phi int) float64 {
	return Sparsity(0, N, k, phi)
}

// KStar returns the projection dimensionality advised by §2.4 of the
// paper for a data set of N points, grid resolution phi, and target
// sparsity coefficient s (a negative number such as −3):
//
//	k* = floor(log_phi(N/s² + 1))
//
// k* is the largest dimensionality at which an empty cube is still at
// least |s| standard deviations below expectation, i.e. the highest
// dimensional embedded space in which useful outliers may be found.
// The result is clamped to at least 1.
func KStar(N, phi int, s float64) int {
	if N <= 0 || phi < 2 {
		panic("stats: KStar with invalid N or phi")
	}
	if s >= 0 {
		panic("stats: KStar requires negative target sparsity s")
	}
	k := int(math.Floor(math.Log(float64(N)/(s*s)+1) / math.Log(float64(phi))))
	if k < 1 {
		k = 1
	}
	return k
}

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// NormalCDF returns P(Z <= x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the x with NormalCDF(x) = p, for p in (0,1).
// It uses the Acklam rational approximation refined by one Halley
// step, giving full double accuracy over the open unit interval.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: NormalQuantile(%v) outside (0,1)", p))
	}
	// Coefficients of the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// Significance returns the one-sided probability, under the paper's
// uniform-data normal approximation, that a cube would contain as few
// or fewer points than observed — i.e. NormalCDF(s) for a sparsity
// coefficient s. Small values mark abnormally sparse cubes; s = −3
// corresponds to ≈0.13%, the paper's "99.9% level of significance".
func Significance(s float64) float64 {
	return NormalCDF(s)
}

// Mean returns the arithmetic mean, skipping NaN entries. It returns
// NaN if there are no valid entries.
func Mean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Variance returns the unbiased sample variance, skipping NaN entries.
// It returns NaN with fewer than two valid entries.
func Variance(xs []float64) float64 {
	mean := Mean(xs)
	if math.IsNaN(mean) {
		return math.NaN()
	}
	sum, n := 0.0, 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			d := x - mean
			sum += d * d
			n++
		}
	}
	if n < 2 {
		return math.NaN()
	}
	return sum / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest non-NaN values. ok is false
// if every entry is NaN or the slice is empty.
func MinMax(xs []float64) (min, max float64, ok bool) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		ok = true
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, ok
}

// Quantile returns the q-quantile (0 <= q <= 1) of the non-NaN values
// using linear interpolation between order statistics (type 7, the R
// and NumPy default). It returns NaN for an empty input.
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile(%v) outside [0,1]", q))
	}
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return math.NaN()
	}
	sort.Float64s(clean)
	return quantileSorted(clean, q)
}

// QuantileSorted is Quantile for data already sorted ascending and
// free of NaNs.
func QuantileSorted(sorted []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: QuantileSorted(%v) outside [0,1]", q))
	}
	if len(sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson returns the Pearson correlation of two equal-length series,
// skipping pairs where either value is NaN. It returns NaN with fewer
// than two valid pairs or zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	var sx, sy, sxx, syy, sxy float64
	n := 0
	for i := range xs {
		x, y := xs[i], ys[i]
		if math.IsNaN(x) || math.IsNaN(y) {
			continue
		}
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	fn := float64(n)
	cov := sxy - sx*sy/fn
	vx := sxx - sx*sx/fn
	vy := syy - sy*sy/fn
	if vx <= 0 || vy <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// Summary bundles the descriptive statistics of one attribute.
type Summary struct {
	N       int // valid (non-NaN) entries
	Missing int // NaN entries
	Mean    float64
	StdDev  float64
	Min     float64
	Q25     float64
	Median  float64
	Q75     float64
	Max     float64
}

// Summarize computes a Summary over one attribute's values.
func Summarize(xs []float64) Summary {
	clean := make([]float64, 0, len(xs))
	missing := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			missing++
		} else {
			clean = append(clean, x)
		}
	}
	s := Summary{N: len(clean), Missing: missing}
	if len(clean) == 0 {
		s.Mean, s.StdDev = math.NaN(), math.NaN()
		s.Min, s.Q25, s.Median, s.Q75, s.Max =
			math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return s
	}
	sort.Float64s(clean)
	s.Mean = Mean(clean)
	s.StdDev = StdDev(clean)
	s.Min = clean[0]
	s.Max = clean[len(clean)-1]
	s.Q25 = quantileSorted(clean, 0.25)
	s.Median = quantileSorted(clean, 0.5)
	s.Q75 = quantileSorted(clean, 0.75)
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d missing=%d mean=%.4g sd=%.4g min=%.4g q25=%.4g med=%.4g q75=%.4g max=%.4g",
		s.N, s.Missing, s.Mean, s.StdDev, s.Min, s.Q25, s.Median, s.Q75, s.Max)
}
