package stats

import "math"

// BinomialTail returns P(X <= n) for X ~ Binomial(N, p), computed in
// log space by direct summation. The sparsity coefficient's normal
// approximation (Equation 1) is crude exactly where it matters — cube
// counts near zero with small expected values — so the library also
// offers this exact tail: the probability that a cube would contain
// as few or fewer points than observed if the attributes were
// independent.
//
// n is clamped to [0, N]. The summation runs over n+1 terms; sparse
// cubes have tiny n, so this is effectively constant time.
func BinomialTail(n, N int, p float64) float64 {
	if N <= 0 {
		panic("stats: BinomialTail with N <= 0")
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		panic("stats: BinomialTail with p outside [0,1]")
	}
	if n < 0 {
		return 0
	}
	if n >= N {
		return 1
	}
	if p == 0 {
		return 1
	}
	if p == 1 {
		return 0 // n < N but all mass at N
	}
	logP, logQ := math.Log(p), math.Log1p(-p)
	// log C(N,0) = 0; accumulate the ratio C(N,i)/C(N,i-1) = (N-i+1)/i.
	logC := 0.0
	// Sum in log space with the running max trick.
	maxLog := math.Inf(-1)
	logs := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		if i > 0 {
			logC += math.Log(float64(N-i+1)) - math.Log(float64(i))
		}
		l := logC + float64(i)*logP + float64(N-i)*logQ
		logs = append(logs, l)
		if l > maxLog {
			maxLog = l
		}
	}
	sum := 0.0
	for _, l := range logs {
		sum += math.Exp(l - maxLog)
	}
	out := math.Exp(maxLog) * sum
	if out > 1 {
		out = 1
	}
	return out
}

// ExactSignificance returns the exact one-sided significance of a
// k-dimensional cube holding n of N points under a grid with phi
// equi-depth ranges and the independence assumption: the binomial
// probability of a count this low or lower. Compare Significance,
// which applies the paper's normal approximation to the same event.
func ExactSignificance(n, N, k, phi int) float64 {
	if N <= 0 {
		panic("stats: ExactSignificance with N <= 0")
	}
	if phi < 2 {
		panic("stats: ExactSignificance with phi < 2")
	}
	if k <= 0 {
		panic("stats: ExactSignificance with k <= 0")
	}
	p := math.Pow(1/float64(phi), float64(k))
	return BinomialTail(n, N, p)
}
