package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialTailKnownValues(t *testing.T) {
	cases := []struct {
		n, N int
		p    float64
		want float64
	}{
		// P(X <= 0) = (1-p)^N
		{0, 10, 0.5, math.Pow(0.5, 10)},
		{0, 4, 0.25, math.Pow(0.75, 4)},
		// P(X <= 1) for N=4, p=0.5: (1 + 4)/16
		{1, 4, 0.5, 5.0 / 16},
		// P(X <= 2) for N=4, p=0.5: (1+4+6)/16
		{2, 4, 0.5, 11.0 / 16},
		// full tail
		{4, 4, 0.5, 1},
	}
	for _, c := range cases {
		if got := BinomialTail(c.n, c.N, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("BinomialTail(%d,%d,%v) = %v, want %v", c.n, c.N, c.p, got, c.want)
		}
	}
}

func TestBinomialTailEdges(t *testing.T) {
	if got := BinomialTail(-1, 10, 0.3); got != 0 {
		t.Errorf("n<0: %v", got)
	}
	if got := BinomialTail(10, 10, 0.3); got != 1 {
		t.Errorf("n=N: %v", got)
	}
	if got := BinomialTail(5, 10, 0); got != 1 {
		t.Errorf("p=0: %v", got)
	}
	if got := BinomialTail(5, 10, 1); got != 0 {
		t.Errorf("p=1, n<N: %v", got)
	}
}

func TestBinomialTailPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"N=0":   func() { BinomialTail(0, 0, 0.5) },
		"p<0":   func() { BinomialTail(0, 5, -0.1) },
		"p>1":   func() { BinomialTail(0, 5, 1.1) },
		"p=NaN": func() { BinomialTail(0, 5, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBinomialTailLargeNNoOverflow(t *testing.T) {
	// N = 10^6, p = 10^-3, n = 900: far below the mean of 1000; the
	// log-space sum must return a finite probability in (0, 1).
	got := BinomialTail(900, 1_000_000, 1e-3)
	if math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 || got >= 1 {
		t.Errorf("large-N tail = %v", got)
	}
}

func TestExactSignificanceMatchesNormalAsymptotically(t *testing.T) {
	// With a large expected count the normal approximation converges to
	// the exact binomial tail (continuity correction ignored, so allow
	// a percent of slack near the mean).
	N, k, phi := 100000, 1, 2 // p=0.5, mean 50000, sd ~158
	n := 49842                // one sd below the mean
	exact := ExactSignificance(n, N, k, phi)
	s := Sparsity(n, N, k, phi)
	approx := Significance(s)
	if math.Abs(exact-approx) > 0.01 {
		t.Errorf("exact %v vs normal approx %v at 1 sd", exact, approx)
	}
}

func TestExactSignificanceSmallCountDivergesFromNormal(t *testing.T) {
	// Where the paper's approximation is crude — near-empty cubes with
	// small expectations — the exact value is the honest one; both must
	// still call the cube abnormally unlikely.
	N, k, phi := 452, 2, 6 // E = 12.6
	exact := ExactSignificance(1, N, k, phi)
	approx := Significance(Sparsity(1, N, k, phi))
	if exact >= 0.01 {
		t.Errorf("exact significance of singleton cube = %v, want << 1", exact)
	}
	if approx >= 0.01 {
		t.Errorf("approx significance of singleton cube = %v, want << 1", approx)
	}
}

// Property: the tail is monotone non-decreasing in n and lies in [0,1].
func TestQuickBinomialTailMonotone(t *testing.T) {
	f := func(NRaw uint8, pRaw uint8) bool {
		N := int(NRaw)%60 + 1
		p := float64(pRaw%100) / 100
		prev := -1.0
		for n := 0; n <= N; n++ {
			v := BinomialTail(n, N, p)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return almost(prev, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: BinomialTail agrees with direct float summation for small N.
func TestQuickBinomialTailOracle(t *testing.T) {
	binom := func(N, i int) float64 {
		out := 1.0
		for j := 0; j < i; j++ {
			out = out * float64(N-j) / float64(j+1)
		}
		return out
	}
	f := func(nRaw, NRaw uint8, pRaw uint8) bool {
		N := int(NRaw)%25 + 1
		n := int(nRaw) % (N + 1)
		p := float64(pRaw%101) / 100
		want := 0.0
		for i := 0; i <= n; i++ {
			want += binom(N, i) * math.Pow(p, float64(i)) * math.Pow(1-p, float64(N-i))
		}
		if want > 1 {
			want = 1
		}
		got := BinomialTail(n, N, p)
		return almost(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBinomialTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BinomialTail(i%20, 10000, 0.001)
	}
}
