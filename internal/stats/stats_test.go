package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSparsityExpectedCountIsZero(t *testing.T) {
	// A cube holding exactly the expected N·f^k points has S = 0.
	// N=10000, phi=10, k=2 → expected 100 points.
	if got := Sparsity(100, 10000, 2, 10); !almost(got, 0, 1e-12) {
		t.Errorf("Sparsity(expected) = %v, want 0", got)
	}
}

func TestSparsitySign(t *testing.T) {
	if s := Sparsity(10, 10000, 2, 10); s >= 0 {
		t.Errorf("under-populated cube has S = %v, want negative", s)
	}
	if s := Sparsity(500, 10000, 2, 10); s <= 0 {
		t.Errorf("over-populated cube has S = %v, want positive", s)
	}
}

func TestSparsityKnownValue(t *testing.T) {
	// N=10000, phi=10, k=2, n=0: f^k = 0.01, expected = 100,
	// sd = sqrt(10000*0.01*0.99) = sqrt(99), S = -100/sqrt(99).
	want := -100 / math.Sqrt(99)
	if got := Sparsity(0, 10000, 2, 10); !almost(got, want, 1e-12) {
		t.Errorf("Sparsity(0,10000,2,10) = %v, want %v", got, want)
	}
}

func TestEmptySparsityMatchesPaperFormula(t *testing.T) {
	// §2.4: S(empty) = −sqrt(N/(phi^k − 1)).
	for _, c := range []struct{ N, k, phi int }{
		{1000, 2, 10}, {452, 3, 5}, {10000, 4, 10}, {699, 3, 6},
	} {
		want := -math.Sqrt(float64(c.N) / (math.Pow(float64(c.phi), float64(c.k)) - 1))
		got := EmptySparsity(c.N, c.k, c.phi)
		if !almost(got, want, 1e-9) {
			t.Errorf("EmptySparsity(%d,%d,%d) = %v, want %v", c.N, c.k, c.phi, got, want)
		}
	}
}

func TestSparsityMonotoneInN(t *testing.T) {
	prev := math.Inf(-1)
	for n := 0; n <= 200; n += 10 {
		s := Sparsity(n, 10000, 2, 10)
		if s <= prev {
			t.Fatalf("Sparsity not strictly increasing in n at n=%d", n)
		}
		prev = s
	}
}

func TestSparsityPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"N=0":   func() { Sparsity(0, 0, 2, 10) },
		"phi=1": func() { Sparsity(0, 100, 2, 1) },
		"k=0":   func() { Sparsity(0, 100, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sparsity %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestKStar(t *testing.T) {
	// Verify against the closed form k* = floor(log_phi(N/s²+1)).
	cases := []struct {
		N, phi int
		s      float64
		want   int
	}{
		// N=10000, s=-3, phi=10: log10(10000/9+1) = log10(1112.1) ≈ 3.046 → 3
		{10000, 10, -3, 3},
		// N=452, s=-3, phi=5: log5(452/9+1) = ln(51.2)/ln(5) ≈ 2.446 → 2
		{452, 5, -3, 2},
		// tiny N clamps to 1
		{10, 10, -3, 1},
	}
	for _, c := range cases {
		if got := KStar(c.N, c.phi, c.s); got != c.want {
			t.Errorf("KStar(%d,%d,%v) = %d, want %d", c.N, c.phi, c.s, got, c.want)
		}
	}
}

func TestKStarEmptyCubeIsAtLeastS(t *testing.T) {
	// By construction, the empty-cube sparsity at k* must be at least as
	// negative as s (the paper notes rounding makes it slightly more so),
	// while at k*+1 it is less negative than s.
	for _, c := range []struct {
		N, phi int
		s      float64
	}{{10000, 10, -3}, {2310, 8, -3}, {6598, 10, -2.5}} {
		k := KStar(c.N, c.phi, c.s)
		if e := EmptySparsity(c.N, k, c.phi); e > c.s {
			t.Errorf("N=%d phi=%d: EmptySparsity at k*=%d is %v, want <= %v", c.N, c.phi, k, e, c.s)
		}
		if e := EmptySparsity(c.N, k+1, c.phi); e <= c.s {
			t.Errorf("N=%d phi=%d: EmptySparsity at k*+1=%d is %v, want > %v", c.N, c.phi, k+1, e, c.s)
		}
	}
}

func TestKStarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KStar with s>=0 did not panic")
		}
	}()
	KStar(100, 10, 0)
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almost(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalPDF(t *testing.T) {
	if got := NormalPDF(0); !almost(got, 0.3989422804014327, 1e-15) {
		t.Errorf("NormalPDF(0) = %v", got)
	}
	if got := NormalPDF(2); !almost(got, NormalPDF(-2), 1e-15) {
		t.Error("PDF not symmetric")
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-6, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1 - 1e-6} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !almost(got, p, 1e-12*math.Max(1, 1/p)) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if got := NormalQuantile(0.975); !almost(got, 1.959963984540054, 1e-9) {
		t.Errorf("Quantile(0.975) = %v", got)
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestSignificanceAtMinusThree(t *testing.T) {
	// The paper: s = −3 gives a 99.9% level of significance.
	sig := Significance(-3)
	if sig > 0.00135 || sig < 0.00134 {
		t.Errorf("Significance(-3) = %v, want ≈0.00135", sig)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); !almost(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestMeanSkipsNaN(t *testing.T) {
	xs := []float64{1, math.NaN(), 3}
	if got := Mean(xs); !almost(got, 2, 1e-12) {
		t.Errorf("Mean with NaN = %v, want 2", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
	if !math.IsNaN(Mean([]float64{math.NaN()})) {
		t.Error("Mean(all NaN) not NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single value not NaN")
	}
}

func TestMinMax(t *testing.T) {
	min, max, ok := MinMax([]float64{3, math.NaN(), -1, 7})
	if !ok || min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v,%v", min, max, ok)
	}
	if _, _, ok := MinMax(nil); ok {
		t.Error("MinMax(nil) ok = true")
	}
	if _, _, ok := MinMax([]float64{math.NaN()}); ok {
		t.Error("MinMax(all NaN) ok = true")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{5}, 0.7); got != 5 {
		t.Errorf("Quantile single = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
}

func TestQuantileSortedAgrees(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 10}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if a, b := Quantile(xs, q), QuantileSorted(xs, q); !almost(a, b, 1e-12) {
			t.Errorf("q=%v: Quantile=%v QuantileSorted=%v", q, a, b)
		}
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almost(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almost(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if !math.IsNaN(Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Error("zero-variance Pearson not NaN")
	}
}

func TestPearsonSkipsNaNPairs(t *testing.T) {
	xs := []float64{1, math.NaN(), 3, 4}
	ys := []float64{2, 100, 6, 8}
	if got := Pearson(xs, ys); !almost(got, 1, 1e-12) {
		t.Errorf("Pearson skipping NaN = %v, want 1", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, math.NaN(), 3, 4})
	if s.N != 4 || s.Missing != 1 {
		t.Errorf("N=%d Missing=%d", s.N, s.Missing)
	}
	if !almost(s.Mean, 2.5, 1e-12) || !almost(s.Median, 2.5, 1e-12) {
		t.Errorf("Mean=%v Median=%v", s.Mean, s.Median)
	}
	if s.Min != 1 || s.Max != 4 {
		t.Errorf("Min=%v Max=%v", s.Min, s.Max)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty Summarize = %+v", empty)
	}
}

// Property: sparsity of an empty cube is always <= sparsity of any
// occupied cube at the same parameters, and always negative.
func TestQuickEmptyCubeIsSparsest(t *testing.T) {
	f := func(nRaw, NRaw uint16, kRaw, phiRaw uint8) bool {
		N := int(NRaw)%5000 + 10
		phi := int(phiRaw)%15 + 2
		k := int(kRaw)%5 + 1
		n := int(nRaw) % (N + 1)
		e := Sparsity(0, N, k, phi)
		s := Sparsity(n, N, k, phi)
		return e <= s && e < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		min, max, _ := MinMax(xs)
		return Quantile(xs, 0) == min && Quantile(xs, 1) == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSparsity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Sparsity(i%100, 10000, 3, 10)
	}
}

func BenchmarkNormalQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NormalQuantile(0.001 + float64(i%997)/1000)
	}
}
