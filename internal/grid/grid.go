// Package grid provides the counting engine for subspace cubes: one
// bitmap per (dimension, range) pair, so that the number of records
// inside a k-dimensional cube — the n(D) of Equation 1 — is the
// cardinality of a k-way bitmap intersection, O(k·N/64) with no
// allocation.
//
// The index also supports incremental extension counting (given the
// record set of a partial cube, the count after constraining one more
// dimension), which is the inner loop of the optimized crossover's
// greedy phase (§2.2), and exposes the sparsity coefficient directly.
package grid

import (
	"fmt"

	"hido/internal/bitset"
	"hido/internal/cube"
	"hido/internal/discretize"
	"hido/internal/stats"
)

// Index is an immutable bitmap index over a fitted grid.
type Index struct {
	N, D, Phi int
	// bits[j][r-1] holds the records whose dimension-j attribute falls
	// in range r. Records missing attribute j appear in no bitmap of
	// dimension j.
	bits [][]*bitset.Set
}

// Build constructs the index from a fitted discretization.
func Build(g *discretize.Grid) *Index {
	ix := &Index{N: g.N, D: g.D, Phi: g.Phi}
	ix.bits = make([][]*bitset.Set, g.D)
	for j := 0; j < g.D; j++ {
		ix.bits[j] = make([]*bitset.Set, g.Phi)
		for r := 0; r < g.Phi; r++ {
			ix.bits[j][r] = bitset.New(g.N)
		}
	}
	for i := 0; i < g.N; i++ {
		row := g.CellsRow(i)
		for j, r := range row {
			if r != 0 {
				ix.bits[j][r-1].Set(i)
			}
		}
	}
	return ix
}

// RangeSet returns the bitmap of records in range r (1-based) of
// dimension j. The returned set is shared; callers must not mutate it.
func (ix *Index) RangeSet(j int, r uint16) *bitset.Set {
	if j < 0 || j >= ix.D {
		panic(fmt.Sprintf("grid: dimension %d out of range [0,%d)", j, ix.D))
	}
	if r < 1 || int(r) > ix.Phi {
		panic(fmt.Sprintf("grid: range %d out of [1,%d]", r, ix.Phi))
	}
	return ix.bits[j][r-1]
}

// gather collects the bitmaps of a cube's constraints into buf.
func (ix *Index) gather(c cube.Cube, buf []*bitset.Set) []*bitset.Set {
	if len(c) != ix.D {
		panic(fmt.Sprintf("grid: cube over %d dims, index over %d", len(c), ix.D))
	}
	for j, r := range c {
		if r != cube.DontCare {
			buf = append(buf, ix.RangeSet(j, r))
		}
	}
	return buf
}

// Count returns the number of records inside the cube. An
// all-DontCare cube counts every record.
func (ix *Index) Count(c cube.Cube) int {
	var buf [8]*bitset.Set
	sets := ix.gather(c, buf[:0])
	if len(sets) == 0 {
		return ix.N
	}
	return bitset.IntersectCountMany(sets)
}

// Cover returns the records inside the cube as a fresh bitmap.
func (ix *Index) Cover(c cube.Cube) *bitset.Set {
	var buf [8]*bitset.Set
	sets := ix.gather(c, buf[:0])
	out := bitset.New(ix.N)
	if len(sets) == 0 {
		out.Fill()
		return out
	}
	bitset.IntersectInto(out, sets)
	return out
}

// CoverInto stores the cube's record set into dst (capacity N) and
// returns its cardinality.
func (ix *Index) CoverInto(dst *bitset.Set, c cube.Cube) int {
	var buf [8]*bitset.Set
	sets := ix.gather(c, buf[:0])
	if len(sets) == 0 {
		dst.Fill()
		return ix.N
	}
	return bitset.IntersectInto(dst, sets)
}

// ExtendCount returns |partial ∩ range(j, r)|: the cube count after
// adding one more constraint to a partial cube whose record set is
// already known. This is the greedy-crossover inner loop.
func (ix *Index) ExtendCount(partial *bitset.Set, j int, r uint16) int {
	return partial.IntersectCount(ix.RangeSet(j, r))
}

// Sparsity returns the sparsity coefficient (Equation 1) of the cube,
// treating the cube's own K as the projection dimensionality. An
// all-DontCare cube has no dimensionality; it returns 0.
func (ix *Index) Sparsity(c cube.Cube) float64 {
	k := c.K()
	if k == 0 {
		return 0
	}
	return stats.Sparsity(ix.Count(c), ix.N, k, ix.Phi)
}

// SparsityOf converts a raw count into the sparsity coefficient at
// projection dimensionality k under this index's N and Phi.
func (ix *Index) SparsityOf(n, k int) float64 {
	return stats.Sparsity(n, ix.N, k, ix.Phi)
}

// NaiveCount scans the discretization directly, without bitmaps. It is
// the correctness oracle for Count in tests and the baseline in the
// counting-backend ablation.
func NaiveCount(g *discretize.Grid, c cube.Cube) int {
	if len(c) != g.D {
		panic(fmt.Sprintf("grid: cube over %d dims, grid over %d", len(c), g.D))
	}
	n := 0
	for i := 0; i < g.N; i++ {
		if c.Covers(g.CellsRow(i)) {
			n++
		}
	}
	return n
}

// MemoryBytes reports the approximate bitmap storage, for capacity
// planning: D·Phi bitmaps of N bits.
func (ix *Index) MemoryBytes() int {
	words := (ix.N + 63) / 64
	return ix.D * ix.Phi * words * 8
}
