package grid

import (
	"encoding/binary"
	"sync"
	"testing"

	"hido/internal/bitset"
	"hido/internal/cube"
	"hido/internal/discretize"
	"hido/internal/xrand"
)

func TestCacheAgreesWithIndex(t *testing.T) {
	g, ix := fixture(400, 6, 4, 21, 0.1)
	c := NewCache(ix)
	if c.Index() != ix {
		t.Fatal("cache lost its index binding")
	}
	r := xrand.New(5)
	for trial := 0; trial < 300; trial++ {
		k := r.IntRange(0, 4)
		cb := cube.New(6)
		for _, j := range r.Sample(6, k) {
			cb[j] = uint16(r.IntRange(1, 4))
		}
		if got, want := c.Count(cb), NaiveCount(g, cb); got != want {
			t.Fatalf("cube %v: cached=%d naive=%d", cb, got, want)
		}
		// Second lookup must hit and agree.
		if got := c.CountKey(cb, cb.Key()); got != NaiveCount(g, cb) {
			t.Fatalf("cube %v: second lookup drifted", cb)
		}
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("stats %+v: expected both hits and misses", st)
	}
	if st.Size == 0 || st.Size > int(st.Misses) {
		t.Errorf("stats %+v: size outside (0, misses]", st)
	}
	c.Reset()
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Size != 0 {
		t.Errorf("stats %+v after Reset", st)
	}
}

// CountWith must call compute exactly once per key, serve repeats from
// the table, and count the lookups in the same Stats as Count.
func TestCountWithMemoizes(t *testing.T) {
	_, ix := fixture(100, 4, 3, 31, 0)
	c := NewCache(ix)
	calls := 0
	compute := func() int { calls++; return 42 }
	if got := c.CountWith("k1", compute); got != 42 {
		t.Fatalf("first CountWith = %d, want 42", got)
	}
	if got := c.CountWith("k1", compute); got != 42 {
		t.Fatalf("second CountWith = %d, want 42", got)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	// A different key computes again; its value must not collide.
	if got := c.CountWith("k2", func() int { return 7 }); got != 7 {
		t.Fatalf("CountWith(k2) = %d, want 7", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Size != 2 {
		t.Errorf("stats %+v, want 1 hit / 2 misses / size 2", st)
	}
}

// The differential property the race layer leans on: under concurrent
// access from many goroutines, every cached count still agrees with
// the naive full-scan oracle, and CoverInto over the same cubes keeps
// matching the counts. Run with -race this doubles as the cache's
// data-race proof.
func TestCacheConcurrentAgreesWithNaive(t *testing.T) {
	g, ix := fixture(300, 5, 3, 22, 0)
	c := NewCache(ix)
	const goroutines = 8
	const trials = 400
	var wg sync.WaitGroup
	errc := make(chan string, goroutines)
	wg.Add(goroutines)
	for w := 0; w < goroutines; w++ {
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			scratch := bitset.New(300)
			for trial := 0; trial < trials; trial++ {
				k := r.IntRange(1, 3)
				cb := cube.New(5)
				// A small value domain forces heavy cross-goroutine key
				// collisions, the interesting concurrent case.
				for _, j := range r.Sample(5, k) {
					cb[j] = uint16(r.IntRange(1, 3))
				}
				want := NaiveCount(g, cb)
				if got := c.Count(cb); got != want {
					errc <- "count drift"
					return
				}
				if got := ix.CoverInto(scratch, cb); got != want || scratch.Count() != want {
					errc <- "CoverInto drift"
					return
				}
			}
		}(uint64(w) + 1)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
	st := c.Stats()
	if st.Hits+st.Misses != goroutines*trials {
		t.Errorf("stats %+v: lookups %d, want %d", st, st.Hits+st.Misses, goroutines*trials)
	}
}

// fuzzState is shared across fuzz workers on purpose: the fuzzer runs
// workers in parallel goroutines, so one process-wide cache turns the
// fuzz run itself into a concurrent differential test.
var fuzzState struct {
	once sync.Once
	g    *indexFixture
}

type indexFixture struct {
	grid  *discretize.Grid
	ix    *Index
	cache *Cache
}

func fuzzFixture() *indexFixture {
	fuzzState.once.Do(func() {
		g, ix := fixture(200, 5, 4, 77, 0.05)
		fuzzState.g = &indexFixture{grid: g, ix: ix, cache: NewCache(ix)}
	})
	return fuzzState.g
}

// FuzzCacheCount feeds arbitrary byte strings as cube descriptions and
// checks the cached count against the naive oracle. Bytes map to the
// cube's cells modulo the legal value range, so every input is a valid
// cube and the property is exact equality.
func FuzzCacheCount(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4})
	f.Add([]byte{})
	f.Add([]byte{255, 255, 255, 255, 255, 9, 9})
	f.Add(binary.LittleEndian.AppendUint64(nil, 0xdeadbeef))
	f.Fuzz(func(t *testing.T, data []byte) {
		fx := fuzzFixture()
		cb := cube.New(5)
		for j := 0; j < 5 && j < len(data); j++ {
			cb[j] = uint16(data[j]) % 5 // 0 = don't care, 1..4 = ranges
		}
		want := NaiveCount(fx.grid, cb)
		if got := fx.cache.Count(cb); got != want {
			t.Fatalf("cube %v: cached=%d naive=%d", cb, got, want)
		}
		if got := fx.ix.Count(cb); got != want {
			t.Fatalf("cube %v: index=%d naive=%d", cb, got, want)
		}
	})
}
