package grid

import (
	"sync"
	"sync/atomic"

	"hido/internal/cube"
)

// cacheShards must be a power of two so the shard mask is cheap. 64
// shards keep lock contention negligible up to far more workers than
// a machine has cores.
const cacheShards = 64

// Cache is a sharded, concurrency-safe memo of cube record counts for
// one Index, keyed by the canonical cube.Key. Independent searches
// over the same detector — evolutionary restarts, island populations,
// repeated sweeps — revisit the same cubes constantly; sharing a
// Cache lets them stop re-counting each other's work.
//
// The cache is append-only and unbounded: the key space actually
// visited by a search is a vanishing fraction of C(d,k)·phi^k, and an
// entry costs only its key string plus an int. Hit/miss/size counters
// are exposed for the bench ablations.
type Cache struct {
	ix           *Index
	shards       [cacheShards]cacheShard
	hits, misses atomic.Uint64
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]int
}

// NewCache returns an empty cache bound to the index. Counts from one
// index are meaningless for another, so the binding is explicit and
// checkable (Index).
func NewCache(ix *Index) *Cache {
	c := &Cache{ix: ix}
	for i := range c.shards {
		c.shards[i].m = make(map[string]int)
	}
	return c
}

// Index returns the index the cache was built over.
func (c *Cache) Index() *Index { return c.ix }

// Count returns the number of records inside the cube, memoized.
func (c *Cache) Count(cb cube.Cube) int { return c.CountKey(cb, cb.Key()) }

// CountKey is Count for callers that already hold the cube's
// canonical key, avoiding a second key construction.
func (c *Cache) CountKey(cb cube.Cube, key string) int {
	sh := &c.shards[shardOf(key)]
	sh.mu.RLock()
	n, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return n
	}
	// Compute outside the lock: concurrent misses on the same key do
	// redundant work but never serialize, and the index is immutable so
	// every computation stores the same value.
	n = c.ix.Count(cb)
	c.misses.Add(1)
	sh.mu.Lock()
	sh.m[key] = n
	sh.mu.Unlock()
	return n
}

// CountWith returns the memoized count for key, calling compute on a
// miss and storing its result. The caller guarantees compute returns
// the count of the cube the key canonically denotes for this cache's
// index; the brute-force enumerator uses this to reuse its
// incrementally maintained partial record sets (one bitmap
// intersection per leaf) instead of re-intersecting k bitmaps the way
// Count would on a miss.
func (c *Cache) CountWith(key string, compute func() int) int {
	sh := &c.shards[shardOf(key)]
	sh.mu.RLock()
	n, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return n
	}
	n = compute()
	c.misses.Add(1)
	sh.mu.Lock()
	sh.m[key] = n
	sh.mu.Unlock()
	return n
}

// shardOf maps a key to its shard by FNV-1a.
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h & (cacheShards - 1)
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits, Misses uint64
	// Size is the number of memoized cubes.
	Size int
}

// Stats returns the current hit/miss/size counters. Hits and misses
// are exact; Size is a consistent sum over the shards.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		st.Size += len(sh.m)
		sh.mu.RUnlock()
	}
	return st
}

// Reset drops every memoized count and zeroes the counters.
func (c *Cache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = make(map[string]int)
		sh.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
}
