package grid

import (
	"math"
	"testing"
	"testing/quick"

	"hido/internal/bitset"
	"hido/internal/cube"
	"hido/internal/dataset"
	"hido/internal/discretize"
	"hido/internal/xrand"
)

func fixture(n, d, phi int, seed uint64, missingRate float64) (*discretize.Grid, *Index) {
	r := xrand.New(seed)
	names := make([]string, d)
	for j := range names {
		names[j] = "x"
	}
	ds := dataset.New(names, n)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range row {
			if r.Bernoulli(missingRate) {
				row[j] = math.NaN()
			} else {
				row[j] = r.Float64()
			}
		}
		ds.AppendRow(row, "")
	}
	g := discretize.Fit(ds, phi, discretize.EquiDepth)
	return g, Build(g)
}

func TestCountMatchesNaive(t *testing.T) {
	g, ix := fixture(500, 6, 4, 1, 0)
	r := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		k := r.IntRange(1, 4)
		c := cube.New(6)
		for _, j := range r.Sample(6, k) {
			c[j] = uint16(r.IntRange(1, 4))
		}
		if got, want := ix.Count(c), NaiveCount(g, c); got != want {
			t.Fatalf("cube %v: Count=%d naive=%d", c, got, want)
		}
	}
}

func TestCountMatchesNaiveWithMissing(t *testing.T) {
	g, ix := fixture(400, 5, 3, 2, 0.2)
	r := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		k := r.IntRange(1, 3)
		c := cube.New(5)
		for _, j := range r.Sample(5, k) {
			c[j] = uint16(r.IntRange(1, 3))
		}
		if got, want := ix.Count(c), NaiveCount(g, c); got != want {
			t.Fatalf("cube %v: Count=%d naive=%d", c, got, want)
		}
	}
}

func TestAllDontCareCountsEverything(t *testing.T) {
	_, ix := fixture(123, 4, 3, 3, 0)
	c := cube.New(4)
	if got := ix.Count(c); got != 123 {
		t.Errorf("Count(all-*) = %d, want 123", got)
	}
	cov := ix.Cover(c)
	if cov.Count() != 123 {
		t.Errorf("Cover(all-*) = %d bits", cov.Count())
	}
}

func TestOneDimCubeCountsEquiDepth(t *testing.T) {
	// Tie-free equi-depth: each 1-d cube holds ~N/phi records.
	_, ix := fixture(1000, 3, 10, 4, 0)
	for j := 0; j < 3; j++ {
		for r := uint16(1); r <= 10; r++ {
			c := cube.New(3).With(j, r)
			if got := ix.Count(c); got != 100 {
				t.Errorf("dim %d range %d count = %d, want 100", j, r, got)
			}
		}
	}
}

func TestCoverMatchesCount(t *testing.T) {
	g, ix := fixture(300, 5, 4, 5, 0.1)
	r := xrand.New(11)
	for trial := 0; trial < 100; trial++ {
		c := cube.New(5)
		for _, j := range r.Sample(5, r.IntRange(1, 3)) {
			c[j] = uint16(r.IntRange(1, 4))
		}
		cov := ix.Cover(c)
		if cov.Count() != ix.Count(c) {
			t.Fatalf("cube %v: Cover count %d != Count %d", c, cov.Count(), ix.Count(c))
		}
		// every covered record actually matches
		cov.ForEach(func(i int) bool {
			if !c.Covers(g.CellsRow(i)) {
				t.Fatalf("cube %v: record %d covered but does not match", c, i)
			}
			return true
		})
	}
}

func TestCoverInto(t *testing.T) {
	_, ix := fixture(200, 4, 3, 6, 0)
	c := cube.New(4).With(1, 2)
	dst := bitset.New(200)
	n := ix.CoverInto(dst, c)
	if n != ix.Count(c) || dst.Count() != n {
		t.Errorf("CoverInto = %d, Count = %d, bits = %d", n, ix.Count(c), dst.Count())
	}
	// all-DontCare fills
	if n := ix.CoverInto(dst, cube.New(4)); n != 200 {
		t.Errorf("CoverInto(all-*) = %d", n)
	}
}

func TestExtendCount(t *testing.T) {
	_, ix := fixture(400, 5, 4, 8, 0)
	partialCube := cube.New(5).With(0, 1)
	partial := ix.Cover(partialCube)
	for j := 1; j < 5; j++ {
		for r := uint16(1); r <= 4; r++ {
			want := ix.Count(partialCube.With(j, r))
			if got := ix.ExtendCount(partial, j, r); got != want {
				t.Fatalf("ExtendCount(dim %d, range %d) = %d, want %d", j, r, got, want)
			}
		}
	}
}

func TestSparsityConsistency(t *testing.T) {
	_, ix := fixture(1000, 4, 5, 9, 0)
	c := cube.New(4).With(0, 1).With(2, 3)
	want := ix.SparsityOf(ix.Count(c), 2)
	if got := ix.Sparsity(c); got != want {
		t.Errorf("Sparsity = %v, want %v", got, want)
	}
	if got := ix.Sparsity(cube.New(4)); got != 0 {
		t.Errorf("Sparsity(all-*) = %v, want 0", got)
	}
}

func TestRangeSetSharedAndSized(t *testing.T) {
	_, ix := fixture(100, 3, 4, 10, 0)
	s := ix.RangeSet(0, 1)
	if s.Len() != 100 {
		t.Errorf("RangeSet capacity = %d", s.Len())
	}
	if s != ix.RangeSet(0, 1) {
		t.Error("RangeSet not shared")
	}
}

func TestPanics(t *testing.T) {
	_, ix := fixture(10, 3, 4, 11, 0)
	g, _ := fixture(10, 3, 4, 11, 0)
	for name, fn := range map[string]func(){
		"RangeSet dim":   func() { ix.RangeSet(3, 1) },
		"RangeSet range": func() { ix.RangeSet(0, 5) },
		"RangeSet zero":  func() { ix.RangeSet(0, 0) },
		"Count dims":     func() { ix.Count(cube.New(4)) },
		"Naive dims":     func() { NaiveCount(g, cube.New(4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMissingRecordsInNoRange(t *testing.T) {
	// A record with a missing attribute appears in no bitmap of that
	// dimension, so per-dimension bitmap counts sum to N - missing.
	g, ix := fixture(300, 4, 5, 12, 0.3)
	for j := 0; j < 4; j++ {
		sum := 0
		for r := uint16(1); r <= 5; r++ {
			sum += ix.RangeSet(j, r).Count()
		}
		_, missing := g.RangeCounts(j)
		if sum != 300-missing {
			t.Errorf("dim %d: bitmap sum %d, want %d", j, sum, 300-missing)
		}
	}
}

func TestMemoryBytes(t *testing.T) {
	_, ix := fixture(128, 4, 5, 13, 0)
	if got := ix.MemoryBytes(); got != 4*5*2*8 {
		t.Errorf("MemoryBytes = %d", got)
	}
}

// Property: Count agrees with NaiveCount over random cubes and grids.
func TestQuickCountOracle(t *testing.T) {
	f := func(seed uint64, kRaw, phiRaw uint8) bool {
		phi := int(phiRaw)%5 + 2
		k := int(kRaw)%3 + 1
		g, ix := fixture(150, 5, phi, seed, 0.15)
		r := xrand.New(seed ^ 0xabc)
		c := cube.New(5)
		for _, j := range r.Sample(5, k) {
			c[j] = uint16(r.IntRange(1, phi))
		}
		return ix.Count(c) == NaiveCount(g, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCountK3(b *testing.B) {
	_, ix := fixture(10000, 20, 10, 1, 0)
	c := cube.New(20).With(2, 3).With(7, 1).With(15, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Count(c)
	}
}

func BenchmarkNaiveCountK3(b *testing.B) {
	g, _ := fixture(10000, 20, 10, 1, 0)
	c := cube.New(20).With(2, 3).With(7, 1).With(15, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NaiveCount(g, c)
	}
}
