package server

import (
	"net/http"
	"strconv"

	"hido/internal/obs"
)

// This file serves the request-introspection endpoints backed by the
// span recorder (Config.Spans):
//
//	GET /api/v1/debug/traces          recent completed traces
//	GET /api/v1/debug/traces/{id}     one trace as a span tree
//	GET /api/v1/debug/requests        live in-flight requests
//
// On a select node the single-trace endpoint additionally fans out
// through Config.TraceFetcher, so one curl returns the full
// cross-node tree: root and phase spans from this node, per-peer RPC
// spans, and the storage-side spans each shard recorded.

// tracesResponse is the body of GET /api/v1/debug/traces.
type tracesResponse struct {
	Enabled bool               `json:"enabled"`
	Node    string             `json:"node,omitempty"`
	Traces  []obs.TraceSummary `json:"traces"`
}

// traceResponse is the body of GET /api/v1/debug/traces/{id}.
type traceResponse struct {
	Trace string          `json:"trace"`
	Spans int             `json:"spans"`
	Tree  []*obs.SpanNode `json:"tree"`
}

// requestsResponse is the body of GET /api/v1/debug/requests.
type requestsResponse struct {
	Enabled  bool              `json:"enabled"`
	Node     string            `json:"node,omitempty"`
	Requests []obs.LiveRequest `json:"requests"`
}

// handleDebugTraces lists recently completed traces, newest first.
// ?limit=N caps the listing (default 20).
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad limit: "+v)
			return
		}
		limit = n
	}
	traces := s.cfg.Spans.Recent(limit)
	if traces == nil {
		traces = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, tracesResponse{
		Enabled: s.cfg.Spans.Enabled(),
		Node:    s.cfg.Spans.Node(),
		Traces:  traces,
	})
}

// handleDebugTrace serves one trace's full span tree, merging local
// ring spans with whatever the cluster's storage nodes still hold.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Spans.Enabled() {
		writeError(w, http.StatusNotFound, "tracing disabled: start with -trace-sample > 0")
		return
	}
	id := r.PathValue("id")
	spans := s.cfg.Spans.Trace(id)
	if s.cfg.TraceFetcher != nil {
		remote, err := s.cfg.TraceFetcher.FetchTrace(r.Context(), id)
		if err != nil {
			// Partial answers beat no answers: serve the local spans and
			// say why the rest are missing.
			s.cfg.Logger.Warn("cross-node trace fetch incomplete",
				"trace", id, "error", err)
		}
		spans = append(spans, remote...)
	}
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "trace not found (evicted from the ring, sampled out, or never existed)")
		return
	}
	writeJSON(w, http.StatusOK, traceResponse{
		Trace: id,
		Spans: len(spans),
		Tree:  obs.BuildSpanTree(spans),
	})
}

// handleDebugRequests snapshots in-flight requests, oldest first.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	reqs := s.cfg.Spans.Live()
	if reqs == nil {
		reqs = []obs.LiveRequest{}
	}
	writeJSON(w, http.StatusOK, requestsResponse{
		Enabled:  s.cfg.Spans.Enabled(),
		Node:     s.cfg.Spans.Node(),
		Requests: reqs,
	})
}
