package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Every response carries a request ID: minted when the client sends
// none, echoed verbatim when it does.
func TestRequestIDHeader(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	rec := doJSON(t, h, "GET", "/healthz", "", nil, nil)
	minted := rec.Header().Get("X-Request-Id")
	if minted == "" {
		t.Fatal("no X-Request-Id minted")
	}
	rec2 := doJSON(t, h, "GET", "/healthz", "", nil, nil)
	if rec2.Header().Get("X-Request-Id") == minted {
		t.Error("request IDs repeat across requests")
	}

	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-Id", "client-abc-123")
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req)
	if got := rec3.Header().Get("X-Request-Id"); got != "client-abc-123" {
		t.Errorf("client request ID not echoed: %q", got)
	}
}

// The liveness probe identifies the running binary: build stamp plus
// process uptime.
func TestHealthzBuildInfo(t *testing.T) {
	s := newTestServer(t, Config{})
	var body struct {
		Status        string  `json:"status"`
		Version       string  `json:"version"`
		Go            string  `json:"go"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	rec := doJSON(t, s.Handler(), "GET", "/healthz", "", nil, &body)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	if body.Status != "ok" {
		t.Errorf("status %q", body.Status)
	}
	if !strings.HasPrefix(body.Go, "go") {
		t.Errorf("go toolchain %q", body.Go)
	}
	if body.UptimeSeconds < 0 {
		t.Errorf("negative uptime %v", body.UptimeSeconds)
	}
}

// The observability series: per-phase latency histograms, runtime
// gauges, and per-model fit-cache gauges must all appear in the
// exposition after one scored request.
func TestMetricsObservabilitySeries(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	batch := scoreWindow(t, 25, 120)
	doJSON(t, h, "POST", "/api/v1/score?label=8", "text/csv", csvBody(t, batch), nil)

	rec := doJSON(t, h, "GET", "/metrics", "", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	out := rec.Body.String()
	wants := []string{
		"# TYPE hidod_request_phase_seconds histogram",
		`hidod_request_phase_seconds_count{endpoint="/api/v1/score",phase="decode"} 1`,
		`hidod_request_phase_seconds_count{endpoint="/api/v1/score",phase="score"} 1`,
		`hidod_request_phase_seconds_count{endpoint="/api/v1/score",phase="encode"} 1`,
		"# TYPE hidod_goroutines gauge",
		"# TYPE hidod_heap_alloc_bytes gauge",
		"# TYPE hidod_gc_pause_seconds_total gauge",
		"# TYPE hidod_gc_cycles_total gauge",
		`hidod_fit_cache_hits{model="default"}`,
		`hidod_fit_cache_misses{model="default"}`,
		`hidod_fit_cache_size{model="default"}`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
