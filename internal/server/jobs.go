package server

import (
	"fmt"
	"sync"
	"time"
)

// Job states. A job is created queued, moves to running immediately
// (fit work starts on its own goroutine), and terminates in done or
// failed.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus is the wire form of one fit job, served by
// GET /api/v1/jobs/{id}.
type JobStatus struct {
	ID       string  `json:"id"`
	State    string  `json:"state"`
	Model    string  `json:"model"`
	Records  int     `json:"records"`
	Error    string  `json:"error,omitempty"`
	Elapsed  float64 `json:"elapsed_seconds"`
	finished time.Time
}

// jobHistoryLimit bounds how many finished jobs are kept queryable.
// Under sustained fit traffic byID would otherwise grow without bound;
// beyond the cap the oldest finished jobs are evicted (running jobs
// are never evicted — they still own a WaitGroup slot).
const jobHistoryLimit = 100

// jobs tracks asynchronous fit work. The WaitGroup lets graceful
// shutdown drain running fits before the process exits.
type jobs struct {
	mu      sync.Mutex
	seq     int
	byID    map[string]*jobEntry
	done    []string // finished job ids, oldest first, for eviction
	wg      sync.WaitGroup
	running int
}

type jobEntry struct {
	status  JobStatus
	started time.Time
}

func newJobs() *jobs {
	return &jobs{byID: make(map[string]*jobEntry)}
}

// start registers a new running job and returns its id. It fails when
// max jobs are already running (checked under the same lock, so the
// bound holds under concurrent fit requests).
func (js *jobs) start(model string, records, max int, now time.Time) (string, error) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.running >= max {
		return "", fmt.Errorf("%d fit job(s) already running", js.running)
	}
	js.seq++
	id := fmt.Sprintf("job-%d", js.seq)
	js.byID[id] = &jobEntry{
		status:  JobStatus{ID: id, State: JobRunning, Model: model, Records: records},
		started: now,
	}
	js.running++
	js.wg.Add(1)
	return id, nil
}

// finish terminates a job; errMsg empty means success. An unknown or
// already-finished id is ignored: it must not dereference a missing
// entry, and it must not unbalance the running counter or the
// WaitGroup.
func (js *jobs) finish(id, errMsg string, now time.Time) {
	js.mu.Lock()
	e, ok := js.byID[id]
	if !ok || e.status.State != JobRunning {
		js.mu.Unlock()
		return
	}
	if errMsg == "" {
		e.status.State = JobDone
	} else {
		e.status.State = JobFailed
		e.status.Error = errMsg
	}
	e.status.finished = now
	js.running--
	js.done = append(js.done, id)
	for len(js.done) > jobHistoryLimit {
		delete(js.byID, js.done[0])
		js.done = js.done[1:]
	}
	js.mu.Unlock()
	js.wg.Done()
}

// get returns a snapshot of the job's status.
func (js *jobs) get(id string, now time.Time) (JobStatus, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	e, ok := js.byID[id]
	if !ok {
		return JobStatus{}, false
	}
	st := e.status
	end := st.finished
	if st.State == JobRunning {
		end = now
	}
	st.Elapsed = end.Sub(e.started).Seconds()
	return st, true
}

// inFlight returns how many jobs are running.
func (js *jobs) inFlight() int {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.running
}

// wait blocks until every running job finishes (graceful shutdown).
func (js *jobs) wait() { js.wg.Wait() }
