package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// finish on an unknown id, or on an id that already finished, must be
// a no-op: no nil dereference, no double wg.Done, no running-counter
// underflow eating a fit slot.
func TestJobsFinishUnknownAndDouble(t *testing.T) {
	js := newJobs()
	now := time.Unix(0, 0)

	js.finish("never-started", "", now) // must not panic

	id, err := js.start("m", 10, 1, now)
	if err != nil {
		t.Fatal(err)
	}
	js.finish(id, "boom", now)
	js.finish(id, "", now)            // double finish: ignored
	js.finish("job-999", "late", now) // unknown id after traffic: ignored

	if got := js.inFlight(); got != 0 {
		t.Fatalf("running = %d after finish, want 0", got)
	}
	st, ok := js.get(id, now)
	if !ok || st.State != JobFailed || st.Error != "boom" {
		t.Fatalf("first finish result overwritten: %+v", st)
	}
	// The WaitGroup is balanced: wait returns immediately.
	done := make(chan struct{})
	go func() { js.wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitGroup unbalanced after duplicate finishes")
	}
	// The slot freed exactly once: a new job starts under max=1.
	if _, err := js.start("m", 10, 1, now); err != nil {
		t.Fatalf("fit slot lost: %v", err)
	}
}

// Finished jobs beyond jobHistoryLimit are evicted oldest-first, so
// byID stays bounded under sustained fit traffic. Running jobs are
// never evicted.
func TestJobsHistoryEviction(t *testing.T) {
	js := newJobs()
	now := time.Unix(0, 0)

	longRunner, err := js.start("keep", 1, 1000, now)
	if err != nil {
		t.Fatal(err)
	}
	var first, last string
	const extra = 50
	for i := 0; i < jobHistoryLimit+extra; i++ {
		id, err := js.start("m", 1, 1000, now)
		if err != nil {
			t.Fatal(err)
		}
		if first == "" {
			first = id
		}
		last = id
		js.finish(id, "", now)
	}

	if len(js.byID) != jobHistoryLimit+1 { // cap + the running job
		t.Errorf("byID holds %d entries, want %d", len(js.byID), jobHistoryLimit+1)
	}
	if _, ok := js.get(first, now); ok {
		t.Errorf("oldest finished job %s not evicted", first)
	}
	if st, ok := js.get(last, now); !ok || st.State != JobDone {
		t.Errorf("newest finished job lost: %+v", st)
	}
	if st, ok := js.get(longRunner, now); !ok || st.State != JobRunning {
		t.Errorf("running job evicted: %+v", st)
	}
	js.finish(longRunner, "", now)
	js.wait()
}

// A panicking fit must still finish its job as failed, free the fit
// slot, and let graceful drain return — the original bug leaked the
// WaitGroup and hung shutdown forever.
func TestFitPanicStillDrains(t *testing.T) {
	s := newTestServer(t, Config{MaxFitJobs: 1})
	s.testHookFitting = func() { panic("synthetic fit crash") }
	h := s.Handler()

	var fit fitResponse
	rec := doJSON(t, h, "POST", "/api/v1/fit?model=crashy", "text/csv",
		csvBody(t, refWindow(t, 100, 130)), &fit)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("fit not accepted: %d %s", rec.Code, rec.Body.String())
	}

	// The job must terminate as failed with the panic surfaced.
	deadline := time.Now().Add(10 * time.Second)
	var st JobStatus
	for {
		rec = doJSON(t, h, "GET", fit.StatusURL, "", nil, &st)
		if rec.Code != http.StatusOK {
			t.Fatalf("job status: %d", rec.Code)
		}
		if st.State != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("panicked fit job never finished")
		}
		time.Sleep(time.Millisecond)
	}
	if st.State != JobFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("job after panic: %+v", st)
	}
	if _, ok := s.registry.Get("crashy"); ok {
		t.Error("panicked fit installed a model")
	}

	// Drain returns: the WaitGroup was balanced.
	done := make(chan struct{})
	go func() { s.jobs.wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain hung after fit panic")
	}

	// The fit slot is free again: with MaxFitJobs=1 a fresh fit must
	// not be rejected as saturated.
	s.testHookFitting = nil
	rec = doJSON(t, h, "POST", "/api/v1/fit?model=ok&seed=7", "text/csv",
		csvBody(t, refWindow(t, 300, 140)), &fit)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("fit slot leaked by panic: %d %s", rec.Code, rec.Body.String())
	}
	waitForJob(t, h, fit.StatusURL, JobDone)
}

// waitForJob polls a job URL until it reaches want (or fails the test).
func waitForJob(t testing.TB, h http.Handler, url, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		rec := doJSON(t, h, "GET", url, "", nil, &st)
		if rec.Code != http.StatusOK {
			t.Fatalf("job status: %d %s", rec.Code, rec.Body.String())
		}
		if st.State == want {
			return st
		}
		if st.State != JobRunning {
			t.Fatalf("job reached %q (error %q), want %q", st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatal(fmt.Sprintf("job stuck running, want %q", want))
		}
		time.Sleep(time.Millisecond)
	}
}
